(* Regenerates the paper's evaluation: builds the five Table II sites,
   compiles the NPB + SPEC MPI2007 corpus, migrates every binary to every
   matching site, and prints Tables I-IV plus the supporting analyses. *)

open Feam_evalharness

let run_eval seed verbose =
  let params = { Params.default with Params.seed } in
  Fmt.pr "Provisioning the five Table II sites...@.";
  let sites = Sites.build_all params in
  Fmt.pr "Compiling benchmark corpus (NPB 2.4 + SPEC MPI2007)...@.";
  let benchmarks = Feam_suites.Npb.all @ Feam_suites.Specmpi.all in
  let binaries = Testset.build params sites benchmarks in
  let nas, spec = Testset.count_by_suite binaries in
  Fmt.pr "Test set: %d NPB binaries, %d SPEC MPI2007 binaries (paper: 110, 147)@."
    nas spec;
  Fmt.pr "Running migrations...@.";
  let migrations = Migrate.run_all params sites binaries in
  Fmt.pr "Migrations with a matching MPI implementation: %d (NAS %d, SPEC %d)@.@."
    (List.length migrations)
    (List.length (Migrate.of_suite Feam_suites.Benchmark.Nas migrations))
    (List.length (Migrate.of_suite Feam_suites.Benchmark.Spec_mpi2007 migrations));
  Feam_util.Table.print (Corpus_stats.table sites binaries);
  Fmt.pr "@.";
  let t1, t1_note = Tables.table1 binaries in
  Feam_util.Table.print t1;
  Fmt.pr "%s@.@." t1_note;
  Feam_util.Table.print (Tables.table2 sites);
  Fmt.pr "@.";
  Feam_util.Table.print (Tables.table3 migrations);
  Fmt.pr "(paper: basic 94%% / 92%%, extended 99%% / 93%%)@.@.";
  Feam_util.Table.print (Tables.table4 migrations);
  Fmt.pr "(paper: before 58%% / 47%%, after 78%% / 66%%, increase 33%% / 39%%)@.@.";
  Feam_util.Table.print (Tables.accuracy_by_site migrations);
  Fmt.pr "@.";
  Feam_util.Table.print (Tables.failure_breakdown migrations);
  let stats = Resolution_impact.missing_lib_breakdown migrations in
  Fmt.pr
    "missing-library failures: %d of %d pre-resolution failures; %d fixed by \
     resolution@.@."
    stats.Resolution_impact.missing_lib_failures
    stats.Resolution_impact.failures_before
    stats.Resolution_impact.missing_lib_fixed;
  Feam_util.Table.print (Tables.symbol_impact sites binaries);
  Fmt.pr "@.";
  (* differential agreement: all four verdict sources over a seeded
     perturbation corpus, scored against the dynamic-linker oracle *)
  let agree_count = 200 in
  Fmt.pr "Running the predictor-agreement corpus (%d scenarios, seed %d)...@."
    agree_count params.Params.seed;
  let agree_runs =
    Feam_agree.Harness.run_corpus ~seed:params.Params.seed ~count:agree_count ()
  in
  Feam_util.Table.print (Feam_agree.Harness.score_table agree_runs);
  Fmt.pr "@.";
  Feam_util.Table.print (Feam_agree.Harness.pairwise_table agree_runs);
  Fmt.pr "@.";
  Feam_util.Table.print (Feam_agree.Harness.disagreement_table agree_runs);
  Fmt.pr "@.";
  (* per-rule severity calibration: the same corpus, scored rule by
     rule — a rule whose warnings never co-occur with an oracle failure
     is demoted to info *)
  Feam_util.Table.print (Feam_agree.Calibrate.table agree_runs);
  (match Feam_agree.Calibrate.demotions agree_runs with
  | [] -> Fmt.pr "calibration: every warning rule co-fires with failures@.@."
  | demoted ->
    Fmt.pr "calibration demotes to info: %s@.@." (String.concat ", " demoted));
  Feam_util.Table.print (Matrix.table (Matrix.build sites migrations));
  Fmt.pr "@.";
  Feam_util.Table.print (Effort.table migrations);
  Fmt.pr "@.";
  let timings = Timing.sample_timings sites binaries in
  Fmt.pr "FEAM phase timings (simulated): max %.1f s (paper: < 5 min)@."
    (Timing.max_seconds timings);
  Fmt.pr "@.";
  Feam_util.Table.print (Timing.phase_breakdown_table ());
  Fmt.pr "@.";
  List.iter
    (fun (site, bytes) ->
      Fmt.pr "  bundle at %-10s: %.1f MB@." site (Timing.mb bytes))
    (Timing.bundle_report sites binaries);
  Fmt.pr "@.";
  (* depot-backed transfer accounting: one shared content-addressed
     store, one plan per matrix cell against the per-site possession
     index (paper §VI.C ships the full bundle per cell) *)
  print_string (Depot_stats.render (Depot_stats.run sites binaries));
  if verbose then begin
    (* mispredictions, grouped: false-ready by actual failure cause,
       then false-not-ready *)
    let dump label correct ready actual =
      Fmt.pr "@.Mispredictions (%s):@." label;
      let wrong = List.filter (fun m -> not (correct m)) migrations in
      let false_ready, false_not_ready = List.partition ready wrong in
      let by_cause = Hashtbl.create 8 in
      List.iter
        (fun m ->
          match actual m with
          | Feam_dynlinker.Exec.Success -> ()
          | Feam_dynlinker.Exec.Failure f ->
            let cause = Accuracy.cause_name (Accuracy.classify f) in
            Hashtbl.replace by_cause cause
              (m :: Option.value (Hashtbl.find_opt by_cause cause) ~default:[]))
        false_ready;
      Hashtbl.iter
        (fun cause ms ->
          Fmt.pr "  predicted ready, failed by %s (%d):@." cause (List.length ms);
          List.iter
            (fun (m : Migrate.migration) ->
              Fmt.pr "    %s -> %s: %s@." m.Migrate.binary.Testset.id
                m.Migrate.target_name
                (Feam_dynlinker.Exec.outcome_to_string (actual m)))
            ms)
        by_cause;
      if false_not_ready <> [] then begin
        Fmt.pr "  predicted not-ready, actually ran (%d):@."
          (List.length false_not_ready);
        List.iter
          (fun (m : Migrate.migration) ->
            Fmt.pr "    %s -> %s@." m.Migrate.binary.Testset.id m.Migrate.target_name)
          false_not_ready
      end
    in
    dump "extended" Migrate.extended_correct
      (fun m -> m.Migrate.extended_ready)
      (fun m -> m.Migrate.actual_after);
    dump "basic" Migrate.basic_correct
      (fun m -> m.Migrate.basic_ready)
      (fun m -> m.Migrate.actual_before)
  end

(* --journal DIR: journal the migration matrix, one self-contained
   flight-recorder journal per (binary, target) cell, each replayable
   and diffable on its own with `feam replay` / `feam diff`. *)
let run_journal seed dir =
  let params = { Params.default with Params.seed } in
  Fmt.pr "Provisioning the five Table II sites...@.";
  let sites = Sites.build_all params in
  Fmt.pr "Compiling benchmark corpus (NPB 2.4 + SPEC MPI2007)...@.";
  let benchmarks = Feam_suites.Npb.all @ Feam_suites.Specmpi.all in
  let binaries = Testset.build params sites benchmarks in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write ~name body =
    Out_channel.with_open_text (Filename.concat dir name) (fun oc ->
        Out_channel.output_string oc body)
  in
  Fmt.pr "Journaling migration-matrix cells...@.";
  let names = Journals.write_cells ~write sites binaries in
  Fmt.pr "wrote %d cell journals to %s@." (List.length names) dir

(* --depot DIR: write the depot determinism artifacts — the shared
   store's listing, every cell's transfer plan, the summary, and one
   replayable plan journal.  Two runs at the same seed must produce
   store.txt and plans.txt byte-identically (the CI depot job diffs
   them). *)
let run_depot seed dir =
  let params = { Params.default with Params.seed } in
  Fmt.pr "Provisioning the five Table II sites...@.";
  let sites = Sites.build_all params in
  Fmt.pr "Compiling benchmark corpus (NPB 2.4 + SPEC MPI2007)...@.";
  let benchmarks = Feam_suites.Npb.all @ Feam_suites.Specmpi.all in
  let binaries = Testset.build params sites benchmarks in
  Fmt.pr "Planning depot transfers over the migration matrix...@.";
  let stats = Depot_stats.run sites binaries in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write ~name body =
    Out_channel.with_open_text (Filename.concat dir name) (fun oc ->
        Out_channel.output_string oc body)
  in
  write ~name:"store.txt" (Feam_depot.Store.listing stats.Depot_stats.ds_store);
  write ~name:"plans.txt" (Depot_stats.plans_text stats);
  write ~name:"summary.txt" (Depot_stats.render stats);
  let journal = Depot_stats.journal_plan ~write stats in
  print_string (Depot_stats.render stats);
  Fmt.pr "wrote depot artifacts to %s (%d cells planned%s)@." dir
    (List.length stats.Depot_stats.ds_cells)
    (match journal with
    | Some name -> ", plan journal " ^ name
    | None -> "")

(* --costs: run the full migration matrix under the cost ledger and
   print the observatory's rollups — cost per stage, per determinant,
   the top-K most expensive cells, and the cache-efficiency table.
   The ledger's cost unit is allocated words (deterministic across
   identical runs); its clock defaults to fixed, so the ns columns stay
   zero and the whole report is byte-stable — the CI costs job diffs
   two runs.  --costs-wall swaps in the wall clock for a live profile
   at the price of determinism. *)
let run_costs seed top wall =
  let params = { Params.default with Params.seed } in
  Fmt.pr "Provisioning the five Table II sites...@.";
  let sites = Sites.build_all params in
  Fmt.pr "Compiling benchmark corpus (NPB 2.4 + SPEC MPI2007)...@.";
  let benchmarks = Feam_suites.Npb.all @ Feam_suites.Specmpi.all in
  let binaries = Testset.build params sites benchmarks in
  Fmt.pr "Running the migration matrix under the cost ledger...@.@.";
  let clock =
    if wall then Feam_obs.Clock.wall else Feam_obs.Clock.fixed ()
  in
  let ledger = Feam_obs.Ledger.create ~clock () in
  Feam_obs.Ledger.install ledger;
  let migrations =
    Fun.protect ~finally:Feam_obs.Ledger.uninstall (fun () ->
        Migrate.run_all params sites binaries)
  in
  Fmt.pr "migrations executed: %d@.@." (List.length migrations);
  print_string (Feam_obs.Ledger.render ~top ledger)

(* --audit: run the fleet-tier static-analysis rules over the whole
   simulated fleet and print the audit report.  Everything is a pure
   function of the seed, so two runs must agree byte for byte (the CI
   audit job diffs them). *)
let run_audit seed =
  let fleet =
    Feam_evalharness.Audit.of_seed ~on_progress:(Fmt.pr "%s@.") ~seed ()
  in
  let findings = Feam_analysis.Engine.run_fleet fleet in
  print_string (Feam_analysis.Engine.render_fleet_text fleet findings)

(* --drift DIR: replay the seeded drift sequence over the full matrix —
   epoch snapshots, diff-driven incremental re-evaluation, readiness
   timeline — and write the determinism artifacts (epoch_NNNN.jsonl,
   timeline.jsonl) to DIR.  Byte-deterministic per seed: the CI drift
   job diffs two runs. *)
let run_drift seed dir epochs =
  Fmt.pr "Replaying the drift sequence (%d epochs, seed %d)...@." epochs seed;
  let result =
    Driftrun.run ~progress:(Fmt.pr "  %s@.") ~seed ~epochs ()
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let store = Feam_drift.Epoch_store.open_ dir in
  List.iter
    (fun s -> ignore (Feam_drift.Epoch_store.put store s))
    (Driftrun.snapshots result);
  let timeline = Driftrun.timeline result in
  Out_channel.with_open_text (Filename.concat dir "timeline.jsonl") (fun oc ->
      Out_channel.output_string oc
        (Feam_drift.Timeline.render_history timeline));
  Fmt.pr "@.";
  print_string (Feam_drift.Timeline.render_entries timeline);
  let incr = result.Driftrun.dr_cells_reevaluated in
  let full = result.Driftrun.dr_cells_full in
  Fmt.pr
    "incremental re-evaluation: %d of %d cell evaluations over %d epochs \
     (%.1fx speedup vs full re-eval)@."
    incr full epochs
    (if incr = 0 then float_of_int full
     else float_of_int full /. float_of_int incr);
  Fmt.pr "wrote %d epoch snapshots and timeline.jsonl to %s@."
    (List.length result.Driftrun.dr_epochs)
    dir;
  match result.Driftrun.dr_crosscheck with
  | Ok () ->
    Fmt.pr "cross-check: incremental verdicts byte-identical to a full \
            re-evaluation@."
  | Error e ->
    Fmt.epr "cross-check FAILED: %s@." e;
    Feam_obs.flush ();
    exit 1

let run_sweep n_seeds =
  let aggregates =
    Sweep.run ~on_progress:(fun seed -> Fmt.pr "  seed %d done@." seed) n_seeds
  in
  Feam_util.Table.print (Sweep.table ~seeds:n_seeds aggregates)

open Cmdliner

let seed =
  Arg.(value & opt int Params.default.Params.seed & info [ "seed" ] ~doc:"Evaluation seed.")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"List every misprediction.")

let sweep =
  Arg.(
    value
    & opt (some int) None
    & info [ "sweep" ] ~docv:"N"
        ~doc:"Run the evaluation over N consecutive seeds and report each \
              headline metric as mean and range.")

let run_whatif seed =
  let params = { Params.default with Params.seed } in
  let v = Feam_util.Version.of_string_exn in
  let changes =
    [
      (* the dominant failure class: vendor runtimes absent at targets *)
      ("forge", Whatif.Add_compiler (Feam_mpi.Compiler.make Feam_mpi.Compiler.Pgi (v "10.9")));
      ("india", Whatif.Add_compiler (Feam_mpi.Compiler.make Feam_mpi.Compiler.Pgi (v "10.9")));
      (* widening the implementation universe at the OMPI-only site *)
      ( "blacklight",
        Whatif.Add_stack
          (Feam_mpi.Stack.make ~impl:Feam_mpi.Impl.Mpich2 ~impl_version:(v "1.4")
             ~compiler:(Feam_mpi.Compiler.make Feam_mpi.Compiler.Gnu (v "4.4.3"))
             ~interconnect:Feam_mpi.Interconnect.Ethernet) );
    ]
  in
  Fmt.pr "Running what-if analysis (two full evaluations per change)...@.";
  let results =
    List.map
      (fun (site_name, change) ->
        let r = Whatif.evaluate params ~site_name ~change in
        Fmt.pr "  %s: %s done@." site_name (Whatif.change_to_string change);
        r)
      changes
  in
  Feam_util.Table.print (Whatif.table results)

let run_ablation seed =
  let params = { Params.default with Params.seed } in
  Fmt.pr "Running the ablation variants (one full evaluation each)...@.";
  let results = Ablation.run params in
  Feam_util.Table.print (Ablation.table results)

(* --trace/--trace-out: stream the evaluation's spans (per-scenario
   migrations, sweep seeds, phase breakdowns) to a trace sink. *)
let setup_obs trace trace_out =
  match trace with
  | None -> ()
  | Some format ->
    let emit text =
      match trace_out with
      | Some file when file <> "-" ->
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc text)
      | _ -> (
        match format with
        | Feam_obs.Pretty -> prerr_string text
        | Feam_obs.Jsonl | Feam_obs.Chrome -> print_string text)
    in
    Feam_obs.configure ~clock:Feam_obs.Clock.wall ~emit format;
    at_exit Feam_obs.flush

let trace =
  Arg.(
    value
    & opt
        (some
           (enum
              [
                ("pretty", Feam_obs.Pretty);
                ("jsonl", Feam_obs.Jsonl);
                ("chrome", Feam_obs.Chrome);
              ]))
        None
    & info [ "trace" ] ~docv:"FORMAT"
        ~doc:"Trace the evaluation: 'pretty', 'jsonl', or 'chrome'.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write the trace to FILE instead of the terminal.")

let run seed verbose sweep_n ablation whatif audit journal_dir depot_dir
    drift_dir drift_epochs costs costs_top costs_wall trace trace_out =
  setup_obs trace trace_out;
  (if ablation then run_ablation seed
   else if whatif then run_whatif seed
   else if audit then run_audit seed
   else if costs then run_costs seed costs_top costs_wall
   else
     match (drift_dir, depot_dir, journal_dir, sweep_n) with
     | Some dir, _, _, _ -> run_drift seed dir drift_epochs
     | None, Some dir, _, _ -> run_depot seed dir
     | None, None, Some dir, _ -> run_journal seed dir
     | None, None, None, Some n when n > 0 -> run_sweep n
     | None, None, None, _ -> run_eval seed verbose);
  Feam_obs.flush ()

let ablation =
  Arg.(
    value & flag
    & info [ "ablation" ]
        ~doc:"Run the ablation study: re-measure extended accuracy and               post-resolution success with each capability stripped.")

let whatif =
  Arg.(
    value & flag
    & info [ "whatif" ]
        ~doc:"Run the administrator what-if analysis: measure the migrations               unlocked by hypothetical installs at the Table II sites.")

let audit =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:"Instead of the evaluation tables, run the fleet-tier \
              static-analysis rules over the whole simulated fleet and \
              print the audit report.  Byte-deterministic per seed.")

let journal_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:"Instead of the evaluation tables, journal the migration \
              matrix: one flight-recorder journal per (binary, target) \
              cell, written to DIR (created if absent) and individually \
              replayable with 'feam replay'.")

let depot_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "depot" ] ~docv:"DIR"
        ~doc:"Instead of the evaluation tables, run the depot transfer \
              planning over the migration matrix and write its determinism \
              artifacts to DIR (created if absent): the shared store \
              listing, every cell's plan, the summary, and one replayable \
              plan journal.")

let drift_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "drift" ] ~docv:"DIR"
        ~doc:"Instead of the evaluation tables, replay the seeded drift \
              sequence over the migration matrix — epoch snapshots, \
              diff-driven incremental re-evaluation, readiness timeline — \
              and write the determinism artifacts (epoch_NNNN.jsonl, \
              timeline.jsonl) to DIR (created if absent).")

let drift_epochs =
  Arg.(
    value & opt int 6
    & info [ "drift-epochs" ] ~docv:"N"
        ~doc:"How many perturbation epochs --drift replays after the \
              baseline.")

let costs =
  Arg.(
    value & flag
    & info [ "costs" ]
        ~doc:"Instead of the evaluation tables, run the migration matrix \
              under the cost ledger and print per-stage, per-determinant \
              and per-cell cost attribution plus cache efficiency.  Cost \
              is allocated words, so the report is byte-deterministic.")

let costs_top =
  Arg.(
    value & opt int 15
    & info [ "costs-top" ] ~docv:"K"
        ~doc:"How many of the most expensive cells --costs lists.")

let costs_wall =
  Arg.(
    value & flag
    & info [ "costs-wall" ]
        ~doc:"Attribute wall-clock nanoseconds in --costs instead of the \
              deterministic fixed clock (output varies run to run).")

let cmd =
  Cmd.v
    (Cmd.info "evaltool" ~doc:"Regenerate the FEAM paper's evaluation tables")
    Term.(
      const run $ seed $ verbose $ sweep $ ablation $ whatif $ audit
      $ journal_dir $ depot_dir $ drift_dir $ drift_epochs $ costs
      $ costs_top $ costs_wall $ trace $ trace_out)

let () = exit (Cmd.eval cmd)
