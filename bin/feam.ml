(* FEAM command-line interface.

   The real FEAM operates on live Unix systems; this reproduction's
   sites are simulated, so the CLI exposes the framework over a *scenario*:
   a named, reproducible world of sites.  Two scenarios are built in:

     eval   — the five Table II sites with the seeded fault model
     demo   — a two-site home/target world with a fault-free model

   Commands mirror the paper's workflow:

     feam sites     --scenario eval                 list the sites
     feam describe  --scenario demo --site home ... run the BDC on a binary
     feam discover  --scenario demo --site target   run the EDC
     feam predict   --scenario demo ...             source phase + target
                                                    phase + report
     feam config-check                              parse a config file body *)

open Cmdliner
open Feam_util
open Feam_sysmodel

let setup_logs debug =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if debug then Some Logs.Debug else Some Logs.Warning)

(* -- Scenarios ---------------------------------------------------------------- *)

type scenario = {
  sites : Site.t list;
  (* per-site: a freshly compiled sample binary and its install *)
  samples : (string * (string * Stack_install.t)) list;
}

let demo_scenario () =
  let open Feam_mpi in
  let v = Version.of_string_exn in
  let batch =
    Batch.make ~queues:[ { Batch.queue_name = "debug"; wait_seconds = 5.0 } ] Batch.Pbs
  in
  let make ~name ~glibc ~gcc ~distro_version =
    let compiler = Compiler.make Compiler.Gnu (v gcc) in
    let stack =
      Stack.make ~impl:Impl.Open_mpi ~impl_version:(v "1.4") ~compiler
        ~interconnect:Interconnect.Ethernet
    in
    let site =
      Site.make ~description:"demo site" ~compilers:[ compiler ] ~seed:4
        ~fault_model:Fault_model.none ~machine:Feam_elf.Types.X86_64
        ~distro:(Distro.make Distro.Centos ~version:(v distro_version) ~kernel:(v "2.6.18"))
        ~glibc:(v glibc) ~interconnect:Interconnect.Ethernet ~batch name
    in
    let installs =
      Feam_toolchain.Provision.provision_site site
        ~stacks:[ (stack, Stack_install.Functioning) ]
    in
    (site, List.hd installs)
  in
  let home, home_install = make ~name:"home" ~glibc:"2.5" ~gcc:"4.1.2" ~distro_version:"5.6" in
  let target, target_install = make ~name:"target" ~glibc:"2.12" ~gcc:"4.4.5" ~distro_version:"6.1" in
  let sample site install =
    let program =
      Feam_toolchain.Compile.program ~language:Stack.Fortran "sample_app"
    in
    match
      Feam_toolchain.Compile.compile_mpi_to site install program
        ~dir:"/home/user/bin"
    with
    | Ok path -> (path, install)
    | Error _ -> failwith "sample compile failed"
  in
  {
    sites = [ home; target ];
    samples =
      [ ("home", sample home home_install); ("target", sample target target_install) ];
  }

let eval_scenario () =
  let params = Feam_evalharness.Params.default in
  let sites = Feam_evalharness.Sites.build_all params in
  let samples =
    List.filter_map
      (fun site ->
        match Site.stack_installs site with
        | install :: _ -> (
          let program = Feam_toolchain.Compile.program "sample_app" in
          match
            Feam_toolchain.Compile.compile_mpi_to site install program
              ~dir:"/home/user/bin"
          with
          | Ok path -> Some (Site.name site, (path, install))
          | Error _ -> None)
        | [] -> None)
      sites
  in
  { sites; samples }

(* A scenario from a file: sites from the scenario DSL, with a sample
   binary compiled at every site that has a stack. *)
let file_scenario path =
  let text = In_channel.with_open_text path In_channel.input_all in
  match Feam_evalharness.Scenario.load text with
  | Error e -> failwith e
  | Ok sites ->
    let samples =
      List.filter_map
        (fun site ->
          match Site.stack_installs site with
          | install :: _ -> (
            let program =
              Feam_toolchain.Compile.program ~language:Feam_mpi.Stack.Fortran
                "sample_app"
            in
            match
              Feam_toolchain.Compile.compile_mpi_to site install program
                ~dir:"/home/user/bin"
            with
            | Ok path -> Some (Site.name site, (path, install))
            | Error _ -> None)
          | [] -> None)
        sites
    in
    { sites; samples }

let load_scenario = function
  | "demo" -> demo_scenario ()
  | "eval" -> eval_scenario ()
  | other ->
    if Sys.file_exists other then file_scenario other
    else
      failwith
        (Printf.sprintf "unknown scenario %S (use demo, eval, or a scenario file path)" other)

let find_site scenario name =
  match List.find_opt (fun s -> Site.name s = name) scenario.sites with
  | Some s -> s
  | None ->
    failwith
      (Printf.sprintf "no site %S; available: %s" name
         (String.concat ", " (List.map Site.name scenario.sites)))

(* -- Arguments ------------------------------------------------------------------ *)

let debug_arg =
  Arg.(value & flag & info [ "debug" ] ~doc:"Enable debug logging.")

(* -- Observability: --trace / --trace-out ------------------------------------- *)

let trace_arg =
  Arg.(
    value
    & opt
        (some
           (enum
              [
                ("pretty", Feam_obs.Pretty);
                ("jsonl", Feam_obs.Jsonl);
                ("chrome", Feam_obs.Chrome);
              ]))
        None
    & info [ "trace" ] ~docv:"FORMAT"
        ~doc:"Trace the run: 'pretty' (human-readable span tree, stderr), \
              'jsonl' (one JSON object per span), or 'chrome' (Chrome \
              trace_event JSON; open in chrome://tracing or perfetto).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write the trace to FILE instead of the terminal.")

let trace_alloc_arg =
  Arg.(
    value & flag
    & info [ "trace-alloc" ]
        ~doc:"Record allocation accounting on every span: alloc_minor_w \
              and alloc_major_w attributes carry the words the span's \
              body allocated on each heap (Gc counters bracketing the \
              span).")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:"Record the run's flight-recorder journal — evidence atoms, \
              determinant decisions, replay payloads — to FILE.  Feed it \
              to 'feam replay' or 'feam diff'.")

(* Turn tracing and/or journaling on for this process.  Both sinks
   drain through the single idempotent [Feam_obs.flush] (the recorder
   registers itself as a flush hook), which is also installed with
   at_exit so output survives early `exit 1` / `exit 2` paths
   (e.g. `feam lint --fail-on`); the normal end-of-command flush does
   not double-write. *)
let setup_obs ?(journal = None) ?(alloc = false) trace trace_out =
  (* Allocation accounting rides the trace: when requested, every span
     also reports the minor/major words its body allocated. *)
  if alloc then Feam_obs.Trace.set_record_alloc true;
  (match trace with
  | None -> ()
  | Some format ->
    let emit text =
      match trace_out with
      | Some file when file <> "-" ->
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc text)
      | _ -> (
        match format with
        | Feam_obs.Pretty -> prerr_string text
        | Feam_obs.Jsonl | Feam_obs.Chrome -> print_string text)
    in
    Feam_obs.configure ~clock:Feam_obs.Clock.wall ~emit format);
  (match journal with
  | None -> ()
  | Some file ->
    let emit body =
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc body)
    in
    Feam_flightrec.Recorder.configure ~tool:"feam" ~emit ());
  if trace <> None || journal <> None then at_exit Feam_obs.flush

let scenario_arg =
  Arg.(
    value
    & opt string "demo"
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:"Scenario: demo, eval, or the path of a scenario file (see \
              'feam scenario-template').")

let site_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "site" ] ~docv:"SITE" ~doc:"Site to operate on.")

let binary_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "binary" ] ~docv:"PATH"
        ~doc:"Path of the binary inside the site (defaults to the scenario's sample).")

let require_site scenario site =
  match site with
  | Some s -> find_site scenario s
  | None -> List.hd scenario.sites

let sample_binary scenario site =
  match List.assoc_opt (Site.name site) scenario.samples with
  | Some (path, install) -> (path, Some install)
  | None -> failwith "no sample binary at this site; pass --binary"

(* -- Commands -------------------------------------------------------------------- *)

let cmd_sites debug scenario_name =
  setup_logs debug;
  let scenario = load_scenario scenario_name in
  let rows =
    List.map
      (fun site ->
        [
          Site.name site;
          Feam_elf.Types.machine_uname (Site.machine site);
          Distro.name (Site.distro site);
          Version.to_string (Site.glibc site);
          string_of_int (List.length (Site.stack_installs site));
        ])
      scenario.sites
  in
  Table.print
    (Table.make ~title:("Scenario: " ^ scenario_name)
       ~header:[ "Site"; "ISA"; "OS"; "glibc"; "MPI stacks" ]
       rows)

let cmd_describe debug trace trace_out journal scenario_name site binary =
  setup_logs debug;
  setup_obs ~journal trace trace_out;
  let scenario = load_scenario scenario_name in
  let site = require_site scenario site in
  let path, install =
    match binary with
    | Some p -> (p, None)
    | None ->
      let p, i = sample_binary scenario site in
      (p, i)
  in
  let env =
    match install with
    | Some i -> Modules_tool.load_stack (Site.base_env site) i
    | None -> Site.base_env site
  in
  (match Feam_core.Bdc.describe site env ~path with
  | Ok d -> Fmt.pr "%a@." Feam_core.Description.pp d
  | Error e ->
    Fmt.epr "describe failed: %s@." e;
    Feam_obs.flush ();
    exit 1);
  Feam_obs.flush ()

let cmd_discover debug trace trace_out journal scenario_name site =
  setup_logs debug;
  setup_obs ~journal trace trace_out;
  let scenario = load_scenario scenario_name in
  let site = require_site scenario site in
  let d = Feam_core.Edc.discover ~env_type:`Target site (Site.base_env site) in
  Fmt.pr "%a@." Feam_core.Discovery.pp d;
  Feam_obs.flush ()

(* The symbol-level subset of the rule registry, run by `feam symcheck`
   and `feam predict --symbols`. *)
let symbol_rule_ids =
  [ "symbol-unresolved"; "symbol-interposed"; "soname-major-unsound" ]

let symbol_rules () =
  List.filter
    (fun r -> List.mem r.Feam_analysis.Rule.id symbol_rule_ids)
    (Feam_analysis.Registry.all ())

(* Open (or start) a depot directory and hand back the store. *)
let open_depot dir =
  match Feam_depot.Store.open_dir dir with
  | Ok store -> store
  | Error e -> failwith (Printf.sprintf "cannot open depot %s: %s" dir e)

(* The full prediction pipeline over a scenario — source phase at the
   home site, target phase (with optional lint findings) at the target —
   shared by `feam predict` and `feam metrics`.  With [depot_dir] the
   target phase stages library copies through a persistent
   content-addressed depot: objects already in the store are recognized
   (depot.hit) and the store is saved back when the run completes. *)
let run_predict_pipeline ?(announce_source = true) ?(symbols = false)
    ?(lint_fleet = false) ?depot_dir scenario_name from_site to_site binary
    basic_only lint =
  let scenario = load_scenario scenario_name in
  let home =
    require_site scenario
      (Some (Option.value from_site ~default:(Site.name (List.hd scenario.sites))))
  in
  let target =
    match to_site with
    | Some t -> find_site scenario t
    | None -> (
      match scenario.sites with
      | _ :: t :: _ -> t
      | _ -> failwith "need --to site")
  in
  let home_path, home_install =
    match binary with
    | Some p -> (p, None)
    | None ->
      let p, i = sample_binary scenario home in
      (p, i)
  in
  let config = Feam_core.Config.default in
  let home_env =
    match home_install with
    | Some i -> Modules_tool.load_stack (Site.base_env home) i
    | None -> Site.base_env home
  in
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let clock = Sim_clock.create () in
  let linted_bundle = ref None in
  let depot_store =
    Option.map (fun dir -> (dir, open_depot dir)) depot_dir
  in
  let depot =
    Option.map
      (fun (_, store) ->
        Feam_core.Resolve_model.depot ~store
          ~possession:(Feam_depot.Planner.Possession.create ()))
      depot_store
  in
  let result =
    if basic_only then begin
      (* stage the binary by hand, target phase only *)
      let bytes =
        match Vfs.find (Site.vfs home) home_path with
        | Some { Vfs.kind = Vfs.Elf b; _ } -> b
        | _ -> failwith "binary not found at source site"
      in
      let staged = "/home/user/migrated/" ^ Vfs.basename home_path in
      Vfs.add (Site.vfs target) staged (Vfs.Elf bytes);
      Feam_core.Phases.target_phase ~clock ?depot config target
        (Site.base_env target) ~binary_path:staged ()
    end
    else
      match
        Feam_core.Phases.source_phase ~clock config home home_env
          ~binary_path:home_path
      with
      | Error e -> Error e
      | Ok bundle ->
        linted_bundle := Some bundle;
        if announce_source then
          Fmt.pr "source phase at %s: bundle %.1f MB, %d copies, %d probes@.@."
            (Site.name home)
            (float_of_int (Feam_core.Bundle.total_bytes bundle) /. 1048576.0)
            (List.length bundle.Feam_core.Bundle.copies)
            (List.length bundle.Feam_core.Bundle.probes);
        Feam_core.Phases.target_phase ~clock ?depot config target
          (Site.base_env target) ~bundle ()
  in
  Option.iter
    (fun (dir, store) -> Feam_depot.Store.save_dir store dir)
    depot_store;
  let result =
    match result with
    | Error _ -> result
    | Ok report -> (
      (* the static-analysis layer feeding predict: findings ride the
         report — the whole rule set under --lint, the symbol-closure
         subset under --symbols alone *)
      match (lint || symbols || lint_fleet, !linted_bundle) with
      | true, Some bundle ->
        let ctx =
          Feam_analysis.Context.of_bundle
            ~target:(Feam_analysis.Context.target_of_site target) bundle
        in
        let rules =
          if lint || lint_fleet then None else Some (symbol_rules ())
        in
        let report =
          Feam_core.Report.with_findings report
            (Feam_analysis.Engine.run ?rules ctx)
        in
        (* findings ride the report: re-journal it so the journal's
           *last* report record (the one replay and diff read) carries
           them too *)
        Feam_core.Report.journal report;
        (* --lint-fleet (feam stats): check the same bundle against every
           other scenario site too.  The per-target contexts share one
           spec parse per distinct object through the fact base, which
           is what the elf.spec_memo cache stats measure. *)
        if lint_fleet then
          List.iter
            (fun site ->
              if Site.name site <> Site.name target then
                ignore
                  (Feam_analysis.Engine.run
                     (Feam_analysis.Context.of_bundle
                        ~target:(Feam_analysis.Context.target_of_site site)
                        bundle)))
            scenario.sites;
        Ok report
      | _ -> Ok report)
  in
  (result, clock)

let cmd_predict debug trace trace_out trace_alloc journal scenario_name
    from_site to_site binary basic_only json lint symbols depot_dir =
  setup_logs debug;
  setup_obs ~journal ~alloc:trace_alloc trace trace_out;
  let result, clock =
    run_predict_pipeline ~symbols ?depot_dir scenario_name from_site to_site
      binary basic_only lint
  in
  (match result with
  | Ok report ->
    if json then
      print_endline (Feam_util.Json.render (Feam_core.Report.to_json report))
    else begin
      print_string (Feam_core.Report.render report);
      Fmt.pr "@.total simulated time: %s@." (Sim_clock.to_string clock)
    end
  | Error e ->
    Fmt.epr "prediction failed: %s@." e;
    Feam_obs.flush ();
    exit 1);
  Feam_obs.flush ()

(* -- Metrics dump: `feam metrics` --------------------------------------------- *)

(* Run the prediction pipeline in-process and dump the metrics registry
   it populated: counters and histograms from the BDC, EDC, probes, the
   four prediction checks, and the resolution model. *)
let cmd_metrics debug trace trace_out scenario_name from_site to_site binary
    basic_only lint json =
  setup_logs debug;
  setup_obs trace trace_out;
  let result, _clock =
    run_predict_pipeline ~announce_source:false scenario_name from_site to_site
      binary basic_only lint
  in
  let verdict =
    match result with
    | Ok report ->
      if Feam_core.Predict.is_ready (Feam_core.Report.prediction report) then
        "ready"
      else "not ready"
    | Error e -> "failed: " ^ e
  in
  if json then
    print_endline
      (Json.render
         (Json.Obj
            [
              ("prediction", Json.Str verdict);
              ("metrics", Feam_obs.Metrics.to_json ());
            ]))
  else begin
    Fmt.pr "prediction: %s@." verdict;
    print_string (Feam_obs.Metrics.render_text ())
  end;
  Feam_obs.flush ()

(* -- Static analysis: `feam lint` -------------------------------------------- *)

(* Build the bundle to lint: a serialized artifact when FILE is given,
   otherwise the source phase run in-process over a scenario site. *)
let lint_bundle scenario_name site binary = function
  | Some file ->
    let text =
      if file = "-" then In_channel.input_all In_channel.stdin
      else In_channel.with_open_text file In_channel.input_all
    in
    (match Feam_core.Bundle_io.parse text with
    | Ok bundle -> bundle
    | Error e -> failwith (Printf.sprintf "cannot parse bundle %s: %s" file e))
  | None ->
    let scenario = load_scenario scenario_name in
    let site = require_site scenario site in
    let path, install =
      match binary with
      | Some p -> (p, None)
      | None ->
        let p, i = sample_binary scenario site in
        (p, i)
    in
    let env =
      match install with
      | Some i -> Modules_tool.load_stack (Site.base_env site) i
      | None -> Site.base_env site
    in
    (match
       Feam_core.Phases.source_phase Feam_core.Config.default site env
         ~binary_path:path
     with
    | Ok bundle -> bundle
    | Error e -> failwith (Printf.sprintf "source phase failed: %s" e))

let lint_target scenario_name target_site target_glibc =
  match (target_site, target_glibc) with
  | Some name, _ ->
    let scenario = load_scenario scenario_name in
    Some (Feam_analysis.Context.target_of_site (find_site scenario name))
  | None, Some v -> (
    match Version.of_string v with
    | Some glibc -> Some (Feam_analysis.Context.make_target ~glibc ())
    | None -> failwith (Printf.sprintf "bad --target-glibc version %S" v))
  | None, None -> None

let cmd_lint debug trace trace_out scenario_name site binary bundle_file
    target_site target_glibc json list_rules explain fail_on =
  setup_logs debug;
  setup_obs trace trace_out;
  if list_rules then begin
    let rows =
      List.map
        (fun r ->
          [
            r.Feam_analysis.Rule.id;
            Feam_analysis.Rule.tier r;
            Feam_core.Diagnose.level_to_string r.Feam_analysis.Rule.default_level;
            r.Feam_analysis.Rule.title;
          ])
        (Feam_analysis.Registry.all ())
    in
    Table.print
      (Table.make ~title:"feam lint rules"
         ~header:[ "Rule"; "Tier"; "Level"; "Checks" ]
         rows);
    Printf.printf "%d rules registered (%d cell, %d fleet)\n"
      (Feam_analysis.Registry.count ())
      (List.length (Feam_analysis.Registry.cell_ids ()))
      (List.length (Feam_analysis.Registry.fleet_ids ()));
    print_string
      "exit codes: 0 clean (info only), 1 warnings, 2 errors \
       (--fail-on warn|error|never tunes the gate)\n"
  end
  else
    match explain with
    | Some rule_id -> (
      (* Same contract as Engine.gate: an unknown id exits 2 naming the
         valid set. *)
      match Feam_analysis.Registry.find rule_id with
      | Some r ->
        Printf.printf "%s (%s rule, default level %s)\n  %s\n\n%s\n"
          r.Feam_analysis.Rule.id
          (Feam_analysis.Rule.tier r)
          (Feam_core.Diagnose.level_to_string
             r.Feam_analysis.Rule.default_level)
          r.Feam_analysis.Rule.title r.Feam_analysis.Rule.explain
      | None ->
        Fmt.epr "feam lint: unknown rule %S (expected one of %s)@." rule_id
          (String.concat ", " (Feam_analysis.Registry.ids ()));
        Feam_obs.flush ();
        exit 2)
    | None ->
      let bundle = lint_bundle scenario_name site binary bundle_file in
      let target = lint_target scenario_name target_site target_glibc in
      let ctx = Feam_analysis.Context.of_bundle ?target bundle in
      let findings = Feam_analysis.Engine.run ctx in
      if json then
        print_endline (Json.render (Feam_analysis.Engine.to_json ctx findings))
      else print_string (Feam_analysis.Engine.render_text ctx findings);
      let gated =
        match Feam_analysis.Engine.gate ~fail_on findings with
        | Ok code -> code
        | Error msg ->
          Fmt.epr "feam lint: %s@." msg;
          2
      in
      (* flush the trace sink before the gate's exit code short-circuits
         normal teardown (at_exit re-flushing is an idempotent no-op) *)
      Feam_obs.flush ();
      exit gated

(* -- Fleet-scale static analysis: `feam audit` -------------------------------- *)

let cmd_audit debug trace trace_out seed json fail_on baseline_file
    write_baseline =
  setup_logs debug;
  setup_obs trace trace_out;
  let baseline =
    match baseline_file with
    | None -> Feam_analysis.Baseline.empty
    | Some file -> (
      let text = In_channel.with_open_text file In_channel.input_all in
      match Feam_analysis.Baseline.parse text with
      | Ok b -> b
      | Error e ->
        Fmt.epr "feam audit: cannot parse baseline %s: %s@." file e;
        Feam_obs.flush ();
        exit 2)
  in
  (* progress goes to stderr so stdout stays the deterministic report *)
  let fleet =
    Feam_evalharness.Audit.of_seed ~on_progress:(Fmt.epr "%s@.") ~seed ()
  in
  let findings = Feam_analysis.Engine.run_fleet fleet in
  let fresh, suppressed = Feam_analysis.Baseline.apply baseline findings in
  (match write_baseline with
  | None -> ()
  | Some file ->
    Out_channel.with_open_text file (fun oc ->
        Out_channel.output_string oc
          (Feam_analysis.Baseline.render
             (Feam_analysis.Baseline.of_findings findings)));
    Fmt.epr "feam audit: wrote %d baseline entries to %s@."
      (List.length findings) file);
  if json then
    print_endline
      (Json.render (Feam_analysis.Engine.fleet_to_json fleet fresh))
  else begin
    print_string (Feam_analysis.Engine.render_fleet_text fleet fresh);
    if suppressed <> [] then
      Printf.printf "%d finding(s) suppressed by the baseline\n"
        (List.length suppressed)
  end;
  (* only findings absent from the baseline gate the exit code *)
  let gated =
    match Feam_analysis.Engine.gate ~fail_on fresh with
    | Ok code -> code
    | Error msg ->
      Fmt.epr "feam audit: %s@." msg;
      2
  in
  Feam_obs.flush ();
  exit gated

(* -- Symbol closure: `feam symcheck` ------------------------------------------ *)

let cmd_symcheck debug trace trace_out journal scenario_name site binary
    bundle_file target_site target_glibc json bind_log fail_on =
  setup_logs debug;
  setup_obs ~journal trace trace_out;
  let module S = Feam_symcheck.Symcheck in
  let bundle = lint_bundle scenario_name site binary bundle_file in
  let target = lint_target scenario_name target_site target_glibc in
  let ctx = Feam_analysis.Context.of_bundle ?target bundle in
  let result = Feam_analysis.Symscope.result ctx in
  let findings = Feam_analysis.Engine.run ~rules:(symbol_rules ()) ctx in
  if json then begin
    let scope_json =
      Json.Obj
        [
          ( "scope",
            Json.List
              (List.map (fun m -> Json.Str m.S.mb_label) result.S.scope) );
          ("complete", Json.Bool result.S.complete);
          ("bound", Json.Int (List.length result.S.bindings));
          ("unresolved_strong", Json.Int (List.length result.S.unresolved_strong));
          ("unresolved_weak", Json.Int (List.length result.S.unresolved_weak));
          ("interpositions", Json.Int (List.length result.S.interpositions));
        ]
    in
    let report =
      match Feam_analysis.Engine.to_json ctx findings with
      | Json.Obj fields -> Json.Obj (fields @ [ ("symcheck", scope_json) ])
      | other -> other
    in
    print_endline (Json.render report)
  end
  else begin
    Fmt.pr "feam symcheck: %s@."
      bundle.Feam_core.Bundle.binary_description.Feam_core.Description.path;
    Fmt.pr "scope (%d objects, load order): %s@."
      (List.length result.S.scope)
      (String.concat ", " (List.map (fun m -> m.S.mb_label) result.S.scope));
    Fmt.pr "scope %s; %d imports bound, %d unresolved strong, %d weak, %d interposed@."
      (if result.S.complete then "complete"
       else "incomplete (misses an absent object could explain are exempt)")
      (List.length result.S.bindings)
      (List.length result.S.unresolved_strong)
      (List.length result.S.unresolved_weak)
      (List.length result.S.interpositions);
    if bind_log then
      List.iter
        (fun (b : S.binding) ->
          Fmt.pr "  bind %s: %s -> %s [scope %d]@." b.S.bd_importer
            (S.symbol_ref b.S.bd_symbol b.S.bd_version)
            b.S.bd_provider b.S.bd_provider_pos)
        result.S.bindings;
    List.iter
      (fun (f : Feam_core.Diagnose.finding) ->
        Fmt.pr "%-5s %-21s %s: %s@."
          (Feam_core.Diagnose.level_to_string f.Feam_core.Diagnose.level)
          f.Feam_core.Diagnose.rule_id f.Feam_core.Diagnose.subject
          f.Feam_core.Diagnose.message)
      findings;
    Fmt.pr "%s@." (Feam_analysis.Engine.summary findings)
  end;
  let gated =
    match Feam_analysis.Engine.gate ~fail_on findings with
    | Ok code -> code
    | Error msg ->
      Fmt.epr "feam symcheck: %s@." msg;
      2
  in
  Feam_obs.flush ();
  exit gated

(* -- Flight recorder: `feam replay` / `feam diff` ----------------------------- *)

let parse_journal file =
  let text =
    if file = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_text file In_channel.input_all
  in
  match Feam_flightrec.Journal.parse text with
  | Ok journal -> journal
  | Error e -> failwith (Printf.sprintf "%s: %s" file e)

(* Re-plan a depot transfer purely from a journal's recorded wants and
   check it reproduces the recorded plan byte-for-byte. *)
let replay_plan json journal =
  match Feam_core.Replay.plan_of_journal journal with
  | Error e ->
    Fmt.epr "replay failed: %s@." e;
    exit 1
  | Ok outcome ->
    let open Feam_core.Replay in
    if json then
      print_endline
        (Json.render
           (Json.Obj
              [
                ("matches", Json.Bool outcome.plan_matches);
                ( "has_recorded_plan",
                  Json.Bool (outcome.plan_recorded <> None) );
                ("plan", Feam_depot.Planner.to_json outcome.plan);
              ]))
    else print_string outcome.plan_rendered;
    (match outcome.plan_recorded with
    | None ->
      Fmt.epr "replay: the journal records no plan text to compare against@."
    | Some _ when outcome.plan_matches ->
      Fmt.epr "replay: plan matches the journal's recorded text byte-for-byte@."
    | Some recorded ->
      Fmt.epr "replay: MISMATCH between the replayed and recorded plans@.";
      Fmt.epr "--- recorded ---@.%s--- replayed ---@.%s" recorded
        outcome.plan_rendered;
      exit 1)

(* Rebuild and rerun a journaled agreement corpus — every scenario is a
   pure function of its (seed, index, keep) coordinates — and check the
   re-rendered report matches the recorded one byte-for-byte. *)
let replay_agree json journal =
  match Feam_agree.Replay.of_journal journal with
  | Error e ->
    Fmt.epr "replay failed: %s@." e;
    exit 1
  | Ok outcome ->
    let open Feam_agree.Replay in
    if json then
      print_endline
        (Json.render
           (Json.Obj
              [
                ("matches", Json.Bool outcome.matches);
                ("has_recorded_report", Json.Bool (outcome.recorded <> None));
                ("scenarios", Json.Int (List.length outcome.runs));
              ]))
    else print_string outcome.rendered;
    (match outcome.recorded with
    | None ->
      Fmt.epr "replay: the journal records no report text to compare against@."
    | Some _ when outcome.matches ->
      Fmt.epr "replay: report matches the journal's recorded text byte-for-byte@."
    | Some recorded ->
      Fmt.epr "replay: MISMATCH between the replayed and recorded reports@.";
      Fmt.epr "--- recorded ---@.%s--- replayed ---@.%s" recorded
        outcome.rendered;
      exit 1)

(* Re-run the prediction purely from a journal's recorded evidence and
   check it reproduces the recorded report byte-for-byte.  Transfer-plan
   journals (from `feam depot plan --journal` or the evalharness) are
   dispatched to the plan replayer, agreement-corpus journals (from
   `feam agree run --journal`) to the corpus replayer. *)
let cmd_replay debug json file =
  setup_logs debug;
  let journal = parse_journal file in
  if Feam_agree.Replay.has_corpus journal then replay_agree json journal
  else if Feam_core.Replay.has_plan journal then replay_plan json journal
  else
  match Feam_core.Replay.of_journal journal with
  | Error e ->
    Fmt.epr "replay failed: %s@." e;
    exit 1
  | Ok outcome ->
    let open Feam_core.Replay in
    if json then
      print_endline
        (Json.render
           (Json.Obj
              [
                ("matches", Json.Bool outcome.matches);
                ("has_recorded_report", Json.Bool (outcome.recorded <> None));
                ("report", Feam_core.Report.to_json outcome.report);
              ]))
    else print_string outcome.rendered;
    (match outcome.recorded with
    | None ->
      Fmt.epr "replay: the journal records no report text to compare against@."
    | Some _ when outcome.matches ->
      Fmt.epr "replay: report matches the journal's recorded text byte-for-byte@."
    | Some recorded ->
      Fmt.epr "replay: MISMATCH between the replayed and recorded reports@.";
      Fmt.epr "--- recorded ---@.%s--- replayed ---@.%s" recorded
        outcome.rendered;
      exit 1)

(* Align two journals and pin what changed: evidence atoms, flipped
   determinants, the overall verdict.  Exits 1 when they differ, like
   diff(1). *)
let cmd_journal_diff debug json file_a file_b =
  setup_logs debug;
  let slurp file =
    if file = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_text file In_channel.input_all
  in
  match Feam_flightrec.Diff.of_strings ~a:(slurp file_a) ~b:(slurp file_b) with
  | Error e ->
    let file =
      match e.Feam_flightrec.Diff.je_side with `A -> file_a | `B -> file_b
    in
    Fmt.epr "diff: %s: %s@." file
      (Feam_flightrec.Diff.journal_error_to_string e);
    exit 2
  | Ok d ->
    if json then print_endline (Json.render (Feam_flightrec.Diff.to_json d))
    else print_string (Feam_flightrec.Diff.render_text d);
    if not (Feam_flightrec.Diff.is_empty d) then exit 1

(* -- Differential agreement: `feam agree` ------------------------------------- *)

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let write_file file text =
  Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc text)

(* Journal one reproducer's rerun into its own replayable journal. *)
let journal_reproducer file rp =
  Feam_flightrec.Recorder.configure ~tool:"feam"
    ~emit:(fun body -> write_file file body)
    ();
  let open Feam_agree in
  let run =
    Harness.rerun ~seed:rp.Minimize.rp_seed ~index:rp.Minimize.rp_index
      ~keep:rp.Minimize.rp_keep
  in
  Harness.record_report [ run ];
  Feam_flightrec.Recorder.flush ();
  Feam_flightrec.Recorder.disable ()

let write_minimized out_dir reproducers =
  let open Feam_agree in
  let dir = Filename.concat out_dir "minimized" in
  ensure_dir out_dir;
  ensure_dir dir;
  List.iter
    (fun rp ->
      let base = Filename.concat dir (Minimize.filename rp) in
      write_file base (Minimize.to_string rp);
      journal_reproducer
        (Filename.remove_extension base ^ ".journal")
        rp)
    reproducers

let agree_unsound_json runs =
  let open Feam_agree in
  Json.List
    (List.filter_map
       (fun r ->
         if r.Harness.r_unsound = [] then None
         else
           Some
             (Json.Obj
                [
                  ( "scenario",
                    Json.Str (Feam_evalharness.Scengen.id r.Harness.r_scenario)
                  );
                  ( "predictors",
                    Json.List
                      (List.map
                         (fun p -> Json.Str (Verdict.predictor_name p))
                         r.Harness.r_unsound) );
                  ( "failure",
                    match r.Harness.r_failure with
                    | Some f -> Json.Str (Verdict.failure_class f)
                    | None -> Json.Null );
                ]))
       runs)

let cmd_agree_run debug trace trace_out journal seed count json out minimize =
  setup_logs debug;
  setup_obs ~journal trace trace_out;
  let open Feam_agree in
  let runs = Harness.run_corpus ~seed ~count () in
  Harness.record_report runs;
  let report = Harness.render_report runs in
  let reproducers = if minimize then Minimize.shrink_all runs else [] in
  if json then
    print_endline
      (Json.render
         (Json.Obj
            [
              ("seed", Json.Int seed);
              ("scenarios", Json.Int (List.length runs));
              ( "disagreements",
                Json.Int
                  (List.length (List.filter Harness.disagrees runs)) );
              ("unsound", agree_unsound_json runs);
              ( "minimized",
                Json.List
                  (List.map
                     (fun rp -> Json.Str (Minimize.filename rp))
                     reproducers) );
            ]))
  else begin
    print_string report;
    List.iter
      (fun rp ->
        Fmt.pr "minimized %d/%d -> keep [%s]: %s unsound for %s (%s)@."
          rp.Minimize.rp_seed rp.Minimize.rp_index
          (String.concat " " (List.map string_of_int rp.Minimize.rp_keep))
          (Verdict.predictor_name rp.Minimize.rp_predictor)
          rp.Minimize.rp_failure
          (String.concat ", " rp.Minimize.rp_perturbations))
      reproducers
  end;
  (match out with
  | None -> ()
  | Some dir ->
    ensure_dir dir;
    write_file (Filename.concat dir "tables.txt") report;
    if minimize then write_minimized dir reproducers);
  Feam_obs.flush ()

let cmd_agree_minimize debug seed index out =
  setup_logs debug;
  let open Feam_agree in
  let run = Harness.run_one (Feam_evalharness.Scengen.build ~seed ~index ()) in
  if run.Harness.r_unsound = [] then begin
    Fmt.epr
      "scenario %d/%d has no unsound acceptance to minimize (oracle: %s)@."
      seed index
      (match run.Harness.r_failure with
      | Some f -> Verdict.failure_class f
      | None -> "success");
    exit 1
  end;
  List.iter
    (fun p ->
      match Minimize.shrink run p with
      | Error e ->
        Fmt.epr "minimize failed: %s@." e;
        exit 1
      | Ok (rp, probes) ->
        print_string (Minimize.to_string rp);
        Fmt.epr "minimized to %d of %d perturbations in %d probe runs@."
          (List.length rp.Minimize.rp_keep)
          (List.length run.Harness.r_scenario.Feam_evalharness.Scengen.sc_all)
          probes;
        (match out with
        | None -> ()
        | Some dir ->
          write_minimized dir [ rp ];
          Fmt.epr "wrote %s@."
            (Filename.concat (Filename.concat dir "minimized")
               (Minimize.filename rp))))
    run.Harness.r_unsound

let cmd_agree_report debug json file =
  setup_logs debug;
  let journal = parse_journal file in
  match Feam_flightrec.Journal.payload ~kind:"agree.report" journal with
  | Some (Json.Str report) ->
    if json then
      print_endline
        (Json.render
           (Json.Obj
              [
                ( "scenarios",
                  Json.Int
                    (List.length
                       (Feam_flightrec.Journal.find_all ~kind:"payload" journal
                       |> List.filter (fun r ->
                              Feam_flightrec.Journal.str_field "kind" r
                              = Some "agree.scenario"))) );
                ("report", Json.Str report);
              ]))
    else print_string report
  | Some _ | None ->
    Fmt.epr "%s: no agreement report recorded (run 'feam agree run --journal')@."
      file;
    exit 1

let cmd_bundle debug scenario_name site binary out =
  setup_logs debug;
  let scenario = load_scenario scenario_name in
  let site = require_site scenario site in
  let path, install =
    match binary with
    | Some p -> (p, None)
    | None ->
      let p, i = sample_binary scenario site in
      (p, i)
  in
  let env =
    match install with
    | Some i -> Modules_tool.load_stack (Site.base_env site) i
    | None -> Site.base_env site
  in
  match
    Feam_core.Phases.source_phase Feam_core.Config.default site env
      ~binary_path:path
  with
  | Error e ->
    Fmt.epr "source phase failed: %s@." e;
    exit 1
  | Ok bundle -> (
    let text = Feam_core.Bundle_io.render bundle in
    match out with
    | "-" -> print_string text
    | file ->
      Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc text);
      Fmt.pr "bundle written to %s (%d copies, %d probes, %.1f MB of libraries)@."
        file
        (List.length bundle.Feam_core.Bundle.copies)
        (List.length bundle.Feam_core.Bundle.probes)
        (float_of_int (Feam_core.Bundle.library_bytes bundle) /. 1048576.0))

let cmd_inspect_bundle debug file =
  setup_logs debug;
  let text =
    if file = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_text file In_channel.input_all
  in
  match Feam_core.Bundle_io.parse text with
  | Error e ->
    Fmt.epr "%s@." e;
    exit 1
  | Ok bundle ->
    let d = bundle.Feam_core.Bundle.binary_description in
    Fmt.pr "bundle created at: %s@." bundle.Feam_core.Bundle.created_at;
    Fmt.pr "binary: %a@." Feam_core.Description.pp d;
    Fmt.pr "carries binary bytes: %b@."
      (bundle.Feam_core.Bundle.binary_bytes <> None);
    Fmt.pr "library copies (%d):@."
      (List.length bundle.Feam_core.Bundle.copies);
    List.iter
      (fun c ->
        Fmt.pr "  %-28s from %s (%.1f MB)@." c.Feam_core.Bdc.copy_request
          c.Feam_core.Bdc.copy_origin_path
          (float_of_int c.Feam_core.Bdc.copy_declared_size /. 1048576.0))
      bundle.Feam_core.Bundle.copies;
    Fmt.pr "probes: %s@."
      (String.concat ", "
         (List.map
            (fun p -> p.Feam_core.Bundle.probe_name)
            bundle.Feam_core.Bundle.probes))

(* -- Content-addressed depot: `feam depot ...` -------------------------------- *)

let read_text file =
  if file = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text file In_channel.input_all

let write_text file text =
  match file with
  | "-" -> print_string text
  | f ->
    Out_channel.with_open_text f (fun oc -> Out_channel.output_string oc text)

let load_manifest file =
  match Feam_core.Bundle_io.parse_manifest (read_text file) with
  | Ok m -> m
  | Error e -> failwith (Printf.sprintf "%s: %s" file e)

(* Intern a self-contained bundle's payloads into the depot and write the
   manifest that references them by content key. *)
let cmd_depot_add debug depot_dir bundle_file out =
  setup_logs debug;
  let store = open_depot depot_dir in
  match Feam_core.Bundle_io.parse (read_text bundle_file) with
  | Error e ->
    Fmt.epr "%s@." e;
    exit 1
  | Ok bundle ->
    let before = Feam_depot.Store.object_count store in
    let manifest = Feam_core.Bundle_manifest.of_bundle store bundle in
    Feam_depot.Store.save_dir store depot_dir;
    write_text out (Feam_core.Bundle_io.render_manifest manifest);
    let added = Feam_depot.Store.object_count store - before in
    if out <> "-" then
      Fmt.pr
        "manifest written to %s (%d objects referenced, %d new; store now %d \
         objects, %.1f MB)@."
        out
        (List.length (Feam_core.Bundle_manifest.keys manifest))
        added
        (Feam_depot.Store.object_count store)
        (float_of_int (Feam_depot.Store.total_bytes store) /. 1048576.0)

let cmd_depot_ls debug depot_dir json =
  setup_logs debug;
  let store = open_depot depot_dir in
  if json then print_endline (Json.render (Feam_depot.Store.to_json store))
  else print_string (Feam_depot.Store.listing store)

(* Mark-and-sweep: keep objects reachable from the --keep manifests (and
   their recorded dependency keys), sweep the rest. *)
let cmd_depot_gc debug depot_dir keep json =
  setup_logs debug;
  let store = open_depot depot_dir in
  let roots =
    List.concat_map (fun f -> Feam_core.Bundle_manifest.keys (load_manifest f)) keep
  in
  let report = Feam_depot.Store.gc ~roots store in
  Feam_depot.Store.save_dir store depot_dir;
  let swept = report.Feam_depot.Store.swept in
  if json then
    print_endline
      (Json.render
         (Json.Obj
            [
              ( "swept",
                Json.List
                  (List.map
                     (fun k -> Json.Str (Feam_depot.Chash.to_hex k))
                     swept) );
              ("kept", Json.Int report.Feam_depot.Store.kept);
              ("swept_bytes", Json.Int report.Feam_depot.Store.swept_bytes);
            ]))
  else
    Fmt.pr "gc: swept %d objects (%.1f MB), kept %d@." (List.length swept)
      (float_of_int report.Feam_depot.Store.swept_bytes /. 1048576.0)
      report.Feam_depot.Store.kept

(* Transfer plan for a manifest against a target site: everything the
   manifest wants minus what --have says the site already possesses. *)
let cmd_depot_plan debug journal depot_dir site manifest_file have json =
  setup_logs debug;
  setup_obs ~journal None None;
  let store = open_depot depot_dir in
  let manifest = load_manifest manifest_file in
  let missing =
    List.filter
      (fun k -> not (Feam_depot.Store.mem store k))
      (Feam_core.Bundle_manifest.keys manifest)
  in
  if missing <> [] then begin
    Fmt.epr "manifest references %d objects not in the depot (first: %s)@."
      (List.length missing)
      (Feam_depot.Chash.to_hex (List.hd missing));
    exit 1
  end;
  let have_tbl = Hashtbl.create 16 in
  List.iter
    (fun h -> Hashtbl.replace have_tbl (String.lowercase_ascii h) ())
    have;
  let wants = Feam_core.Bundle_manifest.wants manifest in
  let plan =
    Feam_depot.Planner.compute ~site
      ~possessed:(fun k -> Hashtbl.mem have_tbl (Feam_depot.Chash.to_hex k))
      wants
  in
  Feam_depot.Planner.journal ~wants plan;
  if json then print_endline (Json.render (Feam_depot.Planner.to_json plan))
  else print_string (Feam_depot.Planner.render plan);
  Feam_obs.flush ()

(* Resolve a manifest back to the self-contained legacy bundle format. *)
let cmd_depot_export debug depot_dir manifest_file out =
  setup_logs debug;
  let store = open_depot depot_dir in
  let manifest = load_manifest manifest_file in
  match Feam_core.Bundle_manifest.to_bundle store manifest with
  | Error e ->
    Fmt.epr "export failed: %s@." e;
    exit 1
  | Ok bundle ->
    write_text out (Feam_core.Bundle_io.render bundle);
    if out <> "-" then
      Fmt.pr "bundle written to %s (%d copies, %d probes, %.1f MB of libraries)@."
        out
        (List.length bundle.Feam_core.Bundle.copies)
        (List.length bundle.Feam_core.Bundle.probes)
        (float_of_int (Feam_core.Bundle.library_bytes bundle) /. 1048576.0)

let cmd_advise debug scenario_name from_site to_site =
  setup_logs debug;
  let scenario = load_scenario scenario_name in
  let home = require_site scenario from_site in
  let target =
    match to_site with
    | Some t -> find_site scenario t
    | None -> (
      match List.filter (fun s -> Site.name s <> Site.name home) scenario.sites with
      | t :: _ -> t
      | [] -> failwith "need --to site")
  in
  let home_path, home_install = sample_binary scenario home in
  let env =
    match home_install with
    | Some i -> Modules_tool.load_stack (Site.base_env home) i
    | None -> Site.base_env home
  in
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let config = Feam_core.Config.default in
  match Feam_core.Phases.source_phase config home env ~binary_path:home_path with
  | Error e ->
    Fmt.epr "source phase failed: %s@." e;
    exit 1
  | Ok bundle -> (
    match
      Feam_core.Phases.target_phase config target (Site.base_env target) ~bundle ()
    with
    | Error e ->
      Fmt.epr "target phase failed: %s@." e;
      exit 1
    | Ok report ->
      let source =
        Feam_toolchain.Compile.program ~language:Feam_mpi.Stack.Fortran
          "sample_app"
      in
      let advice =
        Feam_core.Advisor.advise target
          ~binary_prediction:(Feam_core.Report.prediction report)
          ~source:(Some source)
      in
      Fmt.pr "target: %s@." (Site.name target);
      Fmt.pr "recommendation: %s@."
        (Feam_core.Advisor.strategy_to_string advice.Feam_core.Advisor.strategy);
      Fmt.pr "rationale: %s@." advice.Feam_core.Advisor.rationale)

let cmd_rank debug scenario_name from_site =
  setup_logs debug;
  let scenario = load_scenario scenario_name in
  let home = require_site scenario from_site in
  let home_path, home_install = sample_binary scenario home in
  let env =
    match home_install with
    | Some i -> Modules_tool.load_stack (Site.base_env home) i
    | None -> Site.base_env home
  in
  let config = Feam_core.Config.default in
  match Feam_core.Phases.source_phase config home env ~binary_path:home_path with
  | Error e ->
    Fmt.epr "source phase failed: %s@." e;
    exit 1
  | Ok bundle ->
    let targets =
      List.filter (fun s -> Site.name s <> Site.name home) scenario.sites
    in
    let ranked = Feam_evalharness.Ranking.rank config bundle targets in
    Table.print (Feam_evalharness.Ranking.table ranked)

let cmd_scenario_template debug =
  setup_logs debug;
  print_string Feam_evalharness.Scenario.template

let cmd_config_check debug file =
  setup_logs debug;
  let body =
    if file = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_text file In_channel.input_all
  in
  match Feam_core.Config.of_file_body body with
  | Ok _ -> Fmt.pr "configuration OK@."
  | Error errors ->
    List.iter (fun e -> Fmt.epr "error: %s@." e) errors;
    exit 1

(* -- Cmdliner wiring ---------------------------------------------------------------- *)

let sites_cmd =
  Cmd.v (Cmd.info "sites" ~doc:"List the sites of a scenario")
    Term.(const cmd_sites $ debug_arg $ scenario_arg)

let describe_cmd =
  Cmd.v
    (Cmd.info "describe" ~doc:"Run the Binary Description Component on a binary")
    Term.(
      const cmd_describe $ debug_arg $ trace_arg $ trace_out_arg $ journal_arg
      $ scenario_arg $ site_arg $ binary_arg)

let discover_cmd =
  Cmd.v
    (Cmd.info "discover" ~doc:"Run the Environment Discovery Component on a site")
    Term.(
      const cmd_discover $ debug_arg $ trace_arg $ trace_out_arg $ journal_arg
      $ scenario_arg $ site_arg)

let from_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "from" ] ~docv:"SITE" ~doc:"Guaranteed execution site.")

let to_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "to" ] ~docv:"SITE" ~doc:"Target site.")

let basic_arg =
  Arg.(
    value & flag
    & info [ "basic" ]
        ~doc:"Basic prediction only: skip the source phase (no probes, no resolution).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")

let predict_lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:"Run the static-analysis pass over the source-phase bundle and \
              attach its findings to the report.")

let predict_symbols_arg =
  Arg.(
    value & flag
    & info [ "symbols" ]
        ~doc:"Run the symbol-closure rules (symbol-unresolved, \
              symbol-interposed, soname-major-unsound) over the source-phase \
              bundle and attach their findings to the report.  Implied by \
              --lint, which runs the whole rule set.")

let predict_depot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "depot" ] ~docv:"DIR"
        ~doc:"Stage library copies through a persistent content-addressed \
              depot at $(docv) (created if needed).  Objects already \
              interned are recognized across runs and surface in the \
              depot.hit metric; the store is saved back after the run.")

let predict_cmd =
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Predict execution readiness of a binary at a target site")
    Term.(
      const cmd_predict $ debug_arg $ trace_arg $ trace_out_arg
      $ trace_alloc_arg $ journal_arg $ scenario_arg $ from_arg $ to_arg
      $ binary_arg $ basic_arg $ json_arg $ predict_lint_arg
      $ predict_symbols_arg $ predict_depot_arg)

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run the prediction pipeline and dump the metrics registry it \
             populated: counters and histograms from the BDC, EDC, probes, \
             the four prediction checks, and the resolution model.")
    Term.(
      const cmd_metrics $ debug_arg $ trace_arg $ trace_out_arg $ scenario_arg
      $ from_arg $ to_arg $ binary_arg $ basic_arg $ predict_lint_arg
      $ json_arg)

let lint_bundle_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"BUNDLE"
        ~doc:"Bundle artifact to lint ('-' for stdin).  When omitted, the \
              source phase runs in-process over --scenario/--site.")

let lint_target_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "target" ] ~docv:"SITE"
        ~doc:"Check the bundle against this scenario site's machine and C \
              library.")

let lint_target_glibc_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "target-glibc" ] ~docv:"VERSION"
        ~doc:"Check C-library version bindings against this glibc version \
              (alternative to --target).")

let lint_list_rules_arg =
  Arg.(
    value & flag
    & info [ "list-rules" ] ~doc:"List the registered rules and exit.")

let lint_explain_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"RULE"
        ~doc:"Print the long-form description and fixit guidance for one \
              rule id and exit.  An unknown rule exits 2 naming the valid \
              set, matching the gate's contract.")

(* A plain string, not Arg.enum: the gate itself (Engine.gate) owns
   validation, so an unknown level exits 2 with a usage message after
   the findings are still reported, instead of cmdliner's exit 124
   before any analysis runs. *)
let lint_fail_on_arg =
  Arg.(
    value
    & opt string "warn"
    & info [ "fail-on" ] ~docv:"LEVEL"
        ~doc:"Exit-code gate: 'warn' (default; 2 on errors, 1 on warnings), \
              'error' (2 on errors only), or 'never' (report only).  \
              Anything else is rejected with exit 2.")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the static-analysis rules over a bundle: per-symbol glibc \
             bindings, soname conflicts, dependency-graph anomalies, loader \
             and RPATH hazards, bundle staleness.  Exits 0 clean / 1 \
             warnings / 2 errors.")
    Term.(
      const cmd_lint $ debug_arg $ trace_arg $ trace_out_arg $ scenario_arg
      $ site_arg $ binary_arg $ lint_bundle_arg $ lint_target_arg
      $ lint_target_glibc_arg $ json_arg $ lint_list_rules_arg
      $ lint_explain_arg $ lint_fail_on_arg)

let audit_seed_arg =
  Arg.(
    value
    & opt int Feam_evalharness.Params.default.Feam_evalharness.Params.seed
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Master seed for the simulated fleet.  The Table II matrix is \
              a pure function of the seed, so equal seeds yield \
              byte-identical audit reports.")

let audit_baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:"Suppress findings recorded in this baseline file: suppressed \
              findings are reported as a count and never gate the exit \
              code, so CI only fails on new findings.")

let audit_write_baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "write-baseline" ] ~docv:"FILE"
        ~doc:"Write every finding of this run (including currently \
              suppressed ones) to $(docv) as a fresh baseline.")

let audit_cmd =
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Run the fleet-tier static-analysis rules over the whole \
             simulated fleet: ABI skew of shared libraries across sites, \
             binaries with no ready migration target, sites whose C \
             library lags the fleet's demands, unreferenced depot objects, \
             and MPI-stack partitions.  Exits 0 clean / 1 warnings / 2 \
             errors, like lint.")
    Term.(
      const cmd_audit $ debug_arg $ trace_arg $ trace_out_arg
      $ audit_seed_arg $ json_arg $ lint_fail_on_arg $ audit_baseline_arg
      $ audit_write_baseline_arg)

let symcheck_bind_log_arg =
  Arg.(
    value & flag
    & info [ "bind-log" ]
        ~doc:"Print every successful symbol binding (importer, symbol, \
              provider, scope position), not just the failures.")

let symcheck_cmd =
  Cmd.v
    (Cmd.info "symcheck"
       ~doc:"Simulate ld.so's symbol binding over a bundle's staged closure: \
             unresolved strong/weak imports, per-symbol version-binding \
             failures, interposition — and every edge where the soname-major \
             heuristic accepts a closure the symbols refute.  Exits 0 clean \
             / 1 warnings / 2 errors, like lint.")
    Term.(
      const cmd_symcheck $ debug_arg $ trace_arg $ trace_out_arg $ journal_arg
      $ scenario_arg $ site_arg $ binary_arg $ lint_bundle_arg
      $ lint_target_arg $ lint_target_glibc_arg $ json_arg
      $ symcheck_bind_log_arg $ lint_fail_on_arg)

let config_file_arg =
  Arg.(
    value & pos 0 string "-"
    & info [] ~docv:"FILE" ~doc:"Configuration file ('-' for stdin).")

let config_check_cmd =
  Cmd.v (Cmd.info "config-check" ~doc:"Validate a FEAM configuration file")
    Term.(const cmd_config_check $ debug_arg $ config_file_arg)

let out_arg =
  Arg.(
    value & opt string "-"
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output file ('-' for stdout).")

let bundle_cmd =
  Cmd.v
    (Cmd.info "bundle" ~doc:"Run the source phase and write the bundle artifact")
    Term.(const cmd_bundle $ debug_arg $ scenario_arg $ site_arg $ binary_arg $ out_arg)

let bundle_file_arg =
  Arg.(
    value & pos 0 string "-"
    & info [] ~docv:"FILE" ~doc:"Bundle artifact ('-' for stdin).")

let inspect_bundle_cmd =
  Cmd.v
    (Cmd.info "inspect-bundle" ~doc:"Summarize a serialized bundle artifact")
    Term.(const cmd_inspect_bundle $ debug_arg $ bundle_file_arg)

let scenario_template_cmd =
  Cmd.v
    (Cmd.info "scenario-template" ~doc:"Print a commented scenario-file template")
    Term.(const cmd_scenario_template $ debug_arg)

let rank_cmd =
  Cmd.v
    (Cmd.info "rank" ~doc:"Rank the scenario's sites for a binary by readiness                            and time-to-first-result")
    Term.(const cmd_rank $ debug_arg $ scenario_arg $ from_arg)

let journal_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"JOURNAL" ~doc:"Flight-recorder journal ('-' for stdin).")

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-run the prediction purely from a journal's recorded evidence \
             — no discovery, no probes, no staging — and verify it \
             reproduces the recorded report byte-for-byte.  Exits 1 on \
             mismatch.")
    Term.(const cmd_replay $ debug_arg $ json_arg $ journal_file_arg)

let journal_a_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"JOURNAL-A" ~doc:"First journal.")

let journal_b_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"JOURNAL-B" ~doc:"Second journal.")

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Align two journals by binary and determinant and pin what \
             changed between the runs: the evidence atoms that moved, the \
             determinants they flipped, and the overall verdict.  Exits 1 \
             when the journals differ, like diff(1).")
    Term.(
      const cmd_journal_diff $ debug_arg $ json_arg $ journal_a_arg
      $ journal_b_arg)

let advise_cmd =
  Cmd.v
    (Cmd.info "advise"
       ~doc:"Recommend binary migration vs recompilation for a target")
    Term.(const cmd_advise $ debug_arg $ scenario_arg $ from_arg $ to_arg)

let depot_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "depot" ] ~docv:"DIR"
        ~doc:"Depot directory (created if needed).")

let depot_bundle_file_arg =
  Arg.(
    value & pos 0 string "-"
    & info [] ~docv:"BUNDLE" ~doc:"Bundle artifact ('-' for stdin).")

let depot_manifest_file_arg =
  Arg.(
    value & pos 0 string "-"
    & info [] ~docv:"MANIFEST" ~doc:"Manifest artifact ('-' for stdin).")

let depot_keep_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "keep" ] ~docv:"MANIFEST"
        ~doc:"Manifest whose objects (and their recorded dependencies) are \
              GC roots.  Repeatable.  With no roots and no pins, gc sweeps \
              everything.")

let depot_site_arg =
  Arg.(
    value & opt string "target"
    & info [ "site" ] ~docv:"NAME" ~doc:"Target site name the plan ships to.")

let depot_have_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "have" ] ~docv:"KEY"
        ~doc:"Content key (hex) the target site already possesses; the plan \
              skips it.  Repeatable.")

let depot_add_cmd =
  Cmd.v
    (Cmd.info "add"
       ~doc:"Intern a self-contained bundle's payloads into the depot and \
             write the content-addressed manifest that references them.")
    Term.(
      const cmd_depot_add $ debug_arg $ depot_dir_arg $ depot_bundle_file_arg
      $ out_arg)

let depot_ls_cmd =
  Cmd.v
    (Cmd.info "ls"
       ~doc:"List the depot's objects: key, size, soname, provider.  \
             Key-ordered, so equal stores render byte-identically.")
    Term.(const cmd_depot_ls $ debug_arg $ depot_dir_arg $ json_arg)

let depot_gc_cmd =
  Cmd.v
    (Cmd.info "gc"
       ~doc:"Mark-and-sweep the depot: keep pinned objects and everything \
             reachable from --keep manifests, sweep the rest.")
    Term.(
      const cmd_depot_gc $ debug_arg $ depot_dir_arg $ depot_keep_arg
      $ json_arg)

let depot_plan_cmd =
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Compute the transfer plan for a manifest against a target \
             site: the deduplicated objects to ship, minus what the site \
             already possesses (--have).  With --journal the plan is \
             recorded for byte-for-byte verification by 'feam replay'.")
    Term.(
      const cmd_depot_plan $ debug_arg $ journal_arg $ depot_dir_arg
      $ depot_site_arg $ depot_manifest_file_arg $ depot_have_arg $ json_arg)

let depot_export_cmd =
  Cmd.v
    (Cmd.info "export"
       ~doc:"Resolve a manifest against the depot back into the legacy \
             self-contained bundle format.")
    Term.(
      const cmd_depot_export $ debug_arg $ depot_dir_arg
      $ depot_manifest_file_arg $ out_arg)

let agree_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Corpus seed.  Every scenario is a pure function of (seed, \
              index), so equal seeds yield byte-identical corpora and \
              tables.")

let agree_count_arg =
  Arg.(
    value & opt int 100
    & info [ "count" ] ~docv:"N" ~doc:"Number of scenarios to generate.")

let agree_index_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "index" ] ~docv:"INDEX" ~doc:"Scenario index within the seed.")

let agree_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ; "o" ] ~docv:"DIR"
        ~doc:"Write the report to DIR/tables.txt and minimized reproducers \
              (with replayable journals) under DIR/minimized/.")

let agree_minimize_arg =
  Arg.(
    value & flag
    & info [ "minimize" ]
        ~doc:"Shrink every unsound disagreement to a minimal reproducer by \
              iteratively undoing perturbations.")

let agree_run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Generate a seeded scenario corpus and run all four verdict \
             sources — TEC determinants, lint rules, symcheck binding, and \
             the dynamic-linker oracle — over each scenario through one \
             shared description pass.  Prints precision/recall/overturn \
             and pairwise-agreement tables plus every unsound acceptance.")
    Term.(
      const cmd_agree_run $ debug_arg $ trace_arg $ trace_out_arg
      $ journal_arg $ agree_seed_arg $ agree_count_arg $ json_arg
      $ agree_out_arg $ agree_minimize_arg)

let agree_minimize_cmd =
  Cmd.v
    (Cmd.info "minimize"
       ~doc:"Shrink one scenario's unsound disagreement to a 1-minimal \
             reproducer: the smallest perturbation subset that still makes \
             a strictly-ready predictor miss the oracle's failure.")
    Term.(
      const cmd_agree_minimize $ debug_arg $ agree_seed_arg $ agree_index_arg
      $ agree_out_arg)

let agree_report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Print the agreement report a journal recorded ('feam replay' \
             re-runs the corpus instead and verifies byte-for-byte).")
    Term.(const cmd_agree_report $ debug_arg $ json_arg $ journal_file_arg)

let agree_cmd =
  Cmd.group
    (Cmd.info "agree"
       ~doc:"Differential predictor-agreement harness: a seeded scenario \
             corpus, four verdict sources normalized into one lattice, \
             soundness scoring against the ground-truth oracle, and \
             disagreement minimization.")
    [ agree_run_cmd; agree_minimize_cmd; agree_report_cmd ]

let depot_cmd =
  Cmd.group
    (Cmd.info "depot"
       ~doc:"Content-addressed library store: intern bundles, list and \
             garbage-collect objects, plan deduplicated transfers, export \
             legacy bundles.")
    [ depot_add_cmd; depot_ls_cmd; depot_gc_cmd; depot_plan_cmd;
      depot_export_cmd ]

(* -- Cost observatory: `feam stats` / `feam bench ...` ------------------------ *)

(* Run the prediction pipeline in-process (like `feam metrics`) and
   expose the registry it populated in a machine-readable exposition
   format.  Under the default fixed clock the output is
   byte-deterministic — two identical runs produce identical bytes,
   which the CI costs job checks with cmp.  Prof timers are enabled so
   labeled duration/allocation histograms surface alongside the
   pipeline's own counters. *)
let cmd_stats debug scenario_name from_site to_site binary basic_only lint
    format out =
  setup_logs debug;
  Feam_obs.Prof.set_enabled true;
  let result, _clock =
    run_predict_pipeline ~announce_source:false ~lint_fleet:true scenario_name
      from_site to_site binary basic_only lint
  in
  (match result with
  | Ok _ -> ()
  | Error e ->
    Fmt.epr "prediction failed: %s@." e;
    exit 1);
  Feam_obs.Cachestat.set_gauges ();
  let text =
    match format with
    | `Prom -> Feam_obs.Expo.render_prom ()
    | `Json -> Feam_obs.Expo.render_jsonl ()
    | `Text -> Feam_obs.Metrics.render_text ()
  in
  write_text out text

let stats_format_arg =
  Arg.(
    value
    & opt (enum [ ("prom", `Prom); ("json", `Json); ("text", `Text) ]) `Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Output format: 'prom' (Prometheus text exposition), 'json' \
              (one JSON record per metric, JSONL), or 'text' (the metrics \
              table).")

let stats_out_arg =
  Arg.(
    value & opt string "-"
    & info [ "out"; "o" ] ~docv:"FILE"
        ~doc:"Write the snapshot to FILE instead of stdout.")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run the prediction pipeline and expose its metrics registry \
             in a machine-readable format: Prometheus text exposition or \
             a byte-deterministic JSONL snapshot — the surface a resident \
             serve daemon will mount.")
    Term.(
      const cmd_stats $ debug_arg $ scenario_arg $ from_arg $ to_arg
      $ binary_arg $ basic_arg $ predict_lint_arg $ stats_format_arg
      $ stats_out_arg)

(* The perf-regression sentinel over BENCH_history.jsonl (appended by
   the bench suite, one record per run, no timestamps). *)
let cmd_bench_report debug history window threshold =
  setup_logs debug;
  if not (Sys.file_exists history) then begin
    (* Absence is the first-run case, not an error: CI runs this before
       any history has accumulated. *)
    Fmt.pr "bench report: no runs recorded (%s missing)@." history;
    exit 0
  end;
  match Feam_obs.Benchtrend.parse_history (read_text history) with
  | Error e ->
    Fmt.epr "%s: %s@." history e;
    exit 2
  | Ok runs ->
    let outcome = Feam_obs.Benchtrend.evaluate ~window ~threshold runs in
    print_string (Feam_obs.Benchtrend.render outcome);
    Feam_obs.flush ();
    exit (Feam_obs.Benchtrend.exit_code outcome)

let cmd_bench_validate debug bench_file history_file =
  setup_logs debug;
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (if not (Sys.file_exists bench_file) then
     problem "%s: missing" bench_file
   else
     match Json.parse (read_text bench_file) with
     | Error e -> problem "%s: %s" bench_file e
     | Ok json -> (
       match Feam_obs.Benchtrend.validate_bench_json json with
       | Ok n -> Fmt.pr "%s: ok (%d benches)@." bench_file n
       | Error errs ->
         List.iter (fun e -> problem "%s: %s" bench_file e) errs));
  (if not (Sys.file_exists history_file) then
     problem "%s: missing" history_file
   else
     match Feam_obs.Benchtrend.parse_history (read_text history_file) with
     | Error e -> problem "%s: %s" history_file e
     | Ok runs -> Fmt.pr "%s: ok (%d runs)@." history_file (List.length runs));
  match List.rev !problems with
  | [] -> ()
  | problems ->
    List.iter (fun p -> Fmt.epr "%s@." p) problems;
    exit 1

let bench_history_arg =
  Arg.(
    value & opt string "BENCH_history.jsonl"
    & info [ "history" ] ~docv:"FILE"
        ~doc:"The bench-history JSONL file (one record per bench run).")

let bench_file_arg =
  Arg.(
    value & opt string "BENCH_feam.json"
    & info [ "bench-file" ] ~docv:"FILE"
        ~doc:"The bench snapshot the bench suite wrote.")

let bench_window_arg =
  Arg.(
    value & opt int 5
    & info [ "window" ] ~docv:"N"
        ~doc:"Baseline: the geometric mean of up to N runs before the \
              latest.")

let bench_threshold_arg =
  Arg.(
    value & opt float 1.30
    & info [ "threshold" ] ~docv:"RATIO"
        ~doc:"Flag a bench as regressed when latest/baseline exceeds \
              RATIO.")

let bench_report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Compare the latest bench run against the rolling baseline and \
             exit 1 when any bench regressed past the threshold.")
    Term.(
      const cmd_bench_report $ debug_arg $ bench_history_arg
      $ bench_window_arg $ bench_threshold_arg)

let bench_validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Validate BENCH_feam.json and BENCH_history.jsonl against \
             their schemas; exit 1 listing every problem found.")
    Term.(
      const cmd_bench_validate $ debug_arg $ bench_file_arg
      $ bench_history_arg)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:"The perf-regression sentinel: schema validation and \
             run-over-run trend reports for the bench suite's artifacts.")
    [ bench_report_cmd; bench_validate_cmd ]

(* -- Fleet drift observatory: `feam drift ...` -------------------------------- *)

(* Replay the seeded drift sequence and persist its artifacts — numbered
   epoch snapshots plus timeline.jsonl — to a store directory.  Defaults
   to the reduced two-site world so interactive runs stay quick; --full
   replays the whole Table II fleet like `evaltool --drift`. *)
let cmd_drift_snapshot debug seed epochs out full =
  setup_logs debug;
  let open Feam_evalharness in
  let result =
    if full then Driftrun.run ~progress:(Fmt.pr "  %s@.") ~seed ~epochs ()
    else
      Driftrun.run
        ~specs:(Driftrun.small_specs ())
        ~benchmarks:(Driftrun.small_benchmarks ())
        ~progress:(Fmt.pr "  %s@.") ~seed ~epochs ()
  in
  ensure_dir out;
  let store = Feam_drift.Epoch_store.open_ out in
  List.iter
    (fun s -> ignore (Feam_drift.Epoch_store.put store s))
    (Driftrun.snapshots result);
  let timeline = Driftrun.timeline result in
  write_file (Filename.concat out "timeline.jsonl")
    (Feam_drift.Timeline.render_history timeline);
  print_string (Feam_drift.Timeline.render_entries timeline);
  Fmt.pr "wrote %d epoch snapshots and timeline.jsonl to %s@."
    (List.length result.Driftrun.dr_epochs)
    out;
  match result.Driftrun.dr_crosscheck with
  | Ok () -> ()
  | Error e ->
    Fmt.epr "cross-check FAILED: %s@." e;
    exit 1

let epoch_a_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"EPOCH-A" ~doc:"Base epoch snapshot (epoch_NNNN.jsonl).")

let epoch_b_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"EPOCH-B" ~doc:"New epoch snapshot.")

let parse_epoch file =
  match Feam_drift.Snapshot.of_jsonl (read_text file) with
  | Ok s -> s
  | Error e ->
    Fmt.epr "drift: %s: %s@." file e;
    exit 2

(* Diff two stored epochs through the invalidation engine: the changed
   evidence atoms, the determinants they feed, the cells they
   invalidate, and the verdict flips actually recorded between the two
   snapshots. *)
let cmd_drift_diff debug json file_a file_b =
  setup_logs debug;
  let a = parse_epoch file_a in
  let b = parse_epoch file_b in
  let plan = Feam_drift.Invalidate.affected a b in
  let flips =
    Feam_drift.Invalidate.flips ~before:a.Feam_drift.Snapshot.cells
      ~after:b.Feam_drift.Snapshot.cells
  in
  if json then
    print_endline (Json.render (Feam_drift.Invalidate.to_json plan flips))
  else print_string (Feam_drift.Invalidate.render_text plan flips);
  if plan.Feam_drift.Invalidate.pl_changes <> [] then exit 1

let timeline_file_arg =
  Arg.(
    value & pos 0 string "timeline.jsonl"
    & info [] ~docv:"TIMELINE" ~doc:"Timeline history ('-' for stdin).")

let parse_timeline file =
  match Feam_drift.Timeline.parse_history (read_text file) with
  | Ok entries -> entries
  | Error e ->
    Fmt.epr "drift: %s: %s@." file e;
    exit 2

let cmd_drift_timeline debug json file =
  setup_logs debug;
  let entries = parse_timeline file in
  if json then
    print_endline
      (Json.render
         (Json.List (List.map Feam_drift.Timeline.entry_to_json entries)))
  else print_string (Feam_drift.Timeline.render_entries entries)

let drift_rules_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rules" ] ~docv:"FILE"
        ~doc:"Alert rules, one per line: 'rate-drop <fraction> <severity>', \
              'regression <severity>', 'watch <binary-id> <severity>' \
              (severity: info, warn, error; '#' comments).  Defaults to \
              rate-drop 0.30 warn plus regression info.")

let cmd_drift_check debug json rules_file fail_on file =
  setup_logs debug;
  let entries = parse_timeline file in
  let rules =
    match rules_file with
    | None -> Feam_drift.Timeline.default_rules
    | Some f -> (
      match Feam_drift.Timeline.parse_rules (read_text f) with
      | Ok rules -> rules
      | Error e ->
        Fmt.epr "drift: %s: %s@." f e;
        exit 2)
  in
  let findings = Feam_drift.Timeline.check rules entries in
  if json then
    print_endline (Json.render (Feam_drift.Timeline.findings_to_json findings))
  else print_string (Feam_drift.Timeline.render_findings findings);
  match Feam_drift.Timeline.gate ~fail_on findings with
  | Ok code -> exit code
  | Error e ->
    Fmt.epr "drift check: %s@." e;
    exit 2

let drift_epochs_arg =
  Arg.(
    value & opt int 6
    & info [ "epochs" ] ~docv:"N"
        ~doc:"Perturbation epochs to replay after the baseline.")

let drift_out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Epoch store directory (created if needed): epoch_NNNN.jsonl \
              per epoch plus timeline.jsonl.")

let drift_full_arg =
  Arg.(
    value & flag
    & info [ "full" ]
        ~doc:"Replay the whole Table II fleet and NPB+SPEC corpus instead \
              of the reduced two-site world.")

let drift_snapshot_cmd =
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:"Replay the seeded drift sequence — epoch snapshots, \
             diff-driven incremental re-evaluation, readiness timeline — \
             and persist epoch_NNNN.jsonl plus timeline.jsonl to --out.  \
             Byte-deterministic per (seed, epochs).  Exits 1 when the \
             incremental verdicts diverge from a full re-evaluation.")
    Term.(
      const cmd_drift_snapshot $ debug_arg $ agree_seed_arg $ drift_epochs_arg
      $ drift_out_arg $ drift_full_arg)

let drift_diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Diff two epoch snapshots through the invalidation engine: \
             changed evidence atoms, the determinants they feed, the cells \
             they invalidate, and the recorded verdict flips.  Exits 1 when \
             the epochs differ, like diff(1).")
    Term.(
      const cmd_drift_diff $ debug_arg $ json_arg $ epoch_a_arg $ epoch_b_arg)

let drift_timeline_cmd =
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Render a timeline.jsonl history as the per-epoch readiness \
             table: ready cells, readiness rate, cells re-evaluated, and \
             verdict flips.")
    Term.(const cmd_drift_timeline $ debug_arg $ json_arg $ timeline_file_arg)

let drift_check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Evaluate alert rules over a timeline history: readiness-rate \
             drops, ready -> not-ready regressions, watched binaries.  \
             Exit-code gated like 'feam lint' (--fail-on warn/error/never).")
    Term.(
      const cmd_drift_check $ debug_arg $ json_arg $ drift_rules_arg
      $ lint_fail_on_arg $ timeline_file_arg)

let drift_cmd =
  Cmd.group
    (Cmd.info "drift"
       ~doc:"Fleet drift observatory: epoch snapshots of fleet evidence, \
             diff-driven incremental re-evaluation of the migration matrix, \
             and an alerting readiness timeline.")
    [ drift_snapshot_cmd; drift_diff_cmd; drift_timeline_cmd; drift_check_cmd ]

(* ---- serve: the resident prediction service ---- *)

let cmd_serve debug trace trace_out journal seed full socket port =
  setup_logs debug;
  setup_obs ~journal trace trace_out;
  let open Feam_evalharness in
  let specs = if full then Sites.specs else Driftrun.small_specs () in
  let benchmarks =
    if full then Feam_suites.Npb.all @ Feam_suites.Specmpi.all
    else Driftrun.small_benchmarks ()
  in
  let engine =
    Feam_serve.Engine.create ~specs ~benchmarks ~clock:Feam_obs.Clock.wall
      ~seed ()
  in
  Fun.protect ~finally:(fun () -> Feam_serve.Engine.close engine)
  @@ fun () ->
  (* Status goes to stderr: in stdio mode stdout carries only the
     response lines, so transcripts stay byte-comparable. *)
  Fmt.epr "feam serve: resident fleet ready — %d cells at epoch 0@."
    (Feam_serve.Engine.resident_cells engine);
  let outcome =
    match (socket, port) with
    | Some path, _ ->
      Fmt.epr "feam serve: listening on unix socket %s@." path;
      Feam_serve.Daemon.run_unix_socket engine path
    | None, Some p ->
      Fmt.epr "feam serve: listening on 127.0.0.1:%d@." p;
      Feam_serve.Daemon.run_tcp engine p
    | None, None -> Feam_serve.Daemon.run_stdio engine
  in
  Fmt.epr "feam serve: drained after %d request%s (%d parse error%s)%s@."
    outcome.Feam_serve.Daemon.served
    (if outcome.Feam_serve.Daemon.served = 1 then "" else "s")
    outcome.Feam_serve.Daemon.parse_errors
    (if outcome.Feam_serve.Daemon.parse_errors = 1 then "" else "s")
    (if outcome.Feam_serve.Daemon.interrupted then " — interrupted" else "")

let serve_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Serve a unix domain socket at PATH (one client at a time).")

let serve_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"N" ~doc:"Serve TCP on 127.0.0.1:N.")

let serve_full_arg =
  Arg.(
    value & flag
    & info [ "full" ]
        ~doc:"Keep the whole Table II fleet and NPB+SPEC corpus resident \
              instead of the reduced two-site world.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-running prediction daemon: the fleet's descriptions, \
             discoveries and TEC verdicts stay resident, and a \
             line-delimited JSON protocol answers predict / predict-batch \
             / register-site / register-binary / update-evidence / \
             snapshot / crosscheck / stats / shutdown.  Evidence updates \
             re-evaluate only the cells the shared determinant<-evidence \
             dependency map marks affected.  Responses are \
             byte-deterministic for a given store state; without --socket \
             or --port the daemon serves stdin/stdout.")
    Term.(
      const cmd_serve $ debug_arg $ trace_arg $ trace_out_arg $ journal_arg
      $ agree_seed_arg $ serve_full_arg $ serve_socket_arg $ serve_port_arg)

let main =
  Cmd.group
    (Cmd.info "feam" ~version:"1.0.0"
       ~doc:"Framework for Efficient Application Migration (simulated sites)")
    [ sites_cmd; describe_cmd; discover_cmd; predict_cmd; metrics_cmd;
      stats_cmd; bench_cmd; lint_cmd; audit_cmd; symcheck_cmd; agree_cmd;
      replay_cmd; diff_cmd; drift_cmd; serve_cmd; config_check_cmd;
      bundle_cmd; inspect_bundle_cmd; depot_cmd; advise_cmd; rank_cmd;
      scenario_template_cmd ]

let () = exit (Cmd.eval main)
