(* Tests for the resident prediction service: protocol totality (typed
   errors, never an exception, under qcheck fuzz over malformed /
   truncated / oversized request lines), engine semantics (baseline
   equals a cold pass, evidence updates re-evaluate only affected
   cells, registration extends the matrix, every state crosschecks
   byte-for-byte against a full re-evaluation), transcript replay
   byte-identity, graceful drain on SIGINT with an intact journal, and
   the Prometheus exposition of the serve metrics. *)

module Json = Feam_util.Json
module Protocol = Feam_serve.Protocol
module Daemon = Feam_serve.Daemon
module Engine = Feam_serve.Engine
module Snapshot = Feam_drift.Snapshot
module Driftrun = Feam_evalharness.Driftrun

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let seed = Feam_evalharness.Params.default.Feam_evalharness.Params.seed

(* Engines warm the global describe memo; always pair create/close. *)
let with_engine f =
  let engine = Engine.create ~seed () in
  Fun.protect ~finally:(fun () -> Engine.close engine) (fun () -> f engine)

let handle = Engine.handle ~write_file:(fun _ _ -> ())

let member_exn name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "response has no %S field" name

let int_field name json =
  match member_exn name json with
  | Json.Int n -> n
  | _ -> Alcotest.failf "response field %S is not an int" name

let parse_response line =
  match Json.parse line with
  | Ok json -> json
  | Error e -> Alcotest.failf "unparseable response %s: %s" line e

(* -- protocol ----------------------------------------------------------- *)

let test_protocol_golden () =
  let ok line expected_verb =
    match Protocol.parse line with
    | Ok req ->
      Alcotest.(check string)
        line expected_verb
        (Protocol.verb_of_request req)
    | Error e -> Alcotest.failf "%s: unexpected error %s" line (Protocol.error_code e)
  in
  ok {|{"verb":"predict","binary":"b","target":"t"}|} "predict";
  ok {|{"verb":"predict-batch","queries":[{"binary":"b","target":"t"}]}|}
    "predict-batch";
  ok {|{"verb":"register-site","site":"forge"}|} "register-site";
  ok {|{"verb":"register-binary","home":"fir","benchmark":"is.A"}|}
    "register-binary";
  ok {|{"verb":"update-evidence","site":"fir","action":"stale-ld-cache"}|}
    "update-evidence";
  ok {|{"verb":"update-evidence","site":"fir","action":"remove-lib","lib":"libx.so"}|}
    "update-evidence";
  ok {|{"verb":"snapshot"}|} "snapshot";
  ok {|{"verb":"snapshot","out":"/tmp/epoch.jsonl"}|} "snapshot";
  ok {|{"verb":"crosscheck"}|} "crosscheck";
  ok {|{"verb":"stats"}|} "stats";
  ok {|{"verb":"shutdown"}|} "shutdown";
  let err line code =
    match Protocol.parse line with
    | Ok req ->
      Alcotest.failf "%s: parsed as %s" line (Protocol.verb_of_request req)
    | Error e -> Alcotest.(check string) line code (Protocol.error_code e)
  in
  err "" "empty-line";
  err "   " "empty-line";
  err "{" "malformed";
  err "[1,2]" "not-an-object";
  err {|{"a":1}|} "missing-verb";
  err {|{"verb":7}|} "bad-field";
  err {|{"verb":"frob"}|} "unknown-verb";
  err {|{"verb":"predict","binary":"b"}|} "missing-field";
  err {|{"verb":"predict","binary":1,"target":"t"}|} "bad-field";
  err {|{"verb":"update-evidence","site":"fir","action":"explode"}|} "bad-field";
  err (String.make (Protocol.max_line_bytes + 1) 'x') "oversized";
  (* Error responses are closed-form and byte-stable. *)
  (match Protocol.parse {|{"verb":"frob"}|} with
  | Error e ->
    Alcotest.(check string)
      "error response golden"
      {|{"ok":false,"error":"unknown-verb","detail":"unknown verb \"frob\""}|}
      (Protocol.error_response e)
  | Ok _ -> Alcotest.fail "expected unknown-verb")

let prop_parse_total_random =
  QCheck.Test.make ~name:"serve: protocol parser is total on random lines"
    ~count:500
    (QCheck.make ~print:Fun.id QCheck.Gen.(string_size (int_range 0 200)))
    (fun line ->
      match Protocol.parse line with Ok _ -> true | Error _ -> true)

let valid_line =
  {|{"verb":"predict-batch","queries":[{"binary":"NAS/is.A@fir/mpich2-1.3-pgi","target":"india"}]}|}

let prop_parse_total_truncations =
  QCheck.Test.make
    ~name:"serve: protocol parser is total on truncated requests" ~count:200
    (QCheck.make ~print:string_of_int
       QCheck.Gen.(int_range 0 (String.length valid_line)))
    (fun len ->
      match Protocol.parse (String.sub valid_line 0 len) with
      | Ok _ | Error _ -> true)

let prop_parse_oversized =
  QCheck.Test.make ~name:"serve: oversized lines are rejected unparsed"
    ~count:20
    (QCheck.make ~print:string_of_int
       QCheck.Gen.(int_range 1 4096))
    (fun extra ->
      match
        Protocol.parse (String.make (Protocol.max_line_bytes + extra) '{')
      with
      | Error (Protocol.Oversized n) -> n = Protocol.max_line_bytes + extra
      | _ -> false)

(* -- engine ------------------------------------------------------------- *)

let test_baseline_matches_cold_pass () =
  with_engine @@ fun engine ->
  Alcotest.(check bool)
    "baseline table equals a cold full pass" true
    (Engine.crosscheck_matches engine);
  (* A resident predict answers from the table: same cell as a cold
     prediction of the same pair. *)
  let snap = Engine.snapshot engine in
  match snap.Snapshot.cells with
  | [] -> Alcotest.fail "resident world has no cells"
  | cell :: _ ->
    let line =
      handle engine
        (Protocol.Predict
           {
             Protocol.q_binary = cell.Snapshot.cl_binary;
             q_target = cell.Snapshot.cl_target;
           })
    in
    let json = parse_response line in
    Alcotest.(check bool)
      "predict mirrors the resident cell" cell.Snapshot.cl_extended
      (match member_exn "extended" json with
      | Json.Bool b -> b
      | _ -> Alcotest.fail "extended is not a bool")

let test_update_reevaluates_only_affected () =
  with_engine @@ fun engine ->
  let total = Engine.resident_cells engine in
  let line =
    handle engine
      (Protocol.Update_evidence
         { ue_site = "fir"; ue_action = Protocol.Stale_ld_cache })
  in
  let json = parse_response line in
  let reevaluated = int_field "cells_reevaluated" json in
  Alcotest.(check bool) "some cells re-evaluated" true (reevaluated > 0);
  Alcotest.(check bool)
    "strictly fewer than the whole matrix" true (reevaluated < total);
  Alcotest.(check int) "epoch bumped" 1 (Engine.epoch engine);
  Alcotest.(check bool)
    "incremental table equals a cold full pass" true
    (Engine.crosscheck_matches engine);
  (* The inverse update restores the baseline verdicts. *)
  let line =
    handle engine
      (Protocol.Update_evidence
         { ue_site = "fir"; ue_action = Protocol.Fresh_ld_cache })
  in
  let json = parse_response line in
  Alcotest.(check bool)
    "undo re-evaluates the same cells" true
    (int_field "cells_reevaluated" json = reevaluated);
  Alcotest.(check bool)
    "restored table equals a cold full pass" true
    (Engine.crosscheck_matches engine)

let test_inert_update_reevaluates_nothing () =
  with_engine @@ fun engine ->
  (* The ld cache is already current: marking it fresh changes no atom. *)
  let line =
    handle engine
      (Protocol.Update_evidence
         { ue_site = "fir"; ue_action = Protocol.Fresh_ld_cache })
  in
  let json = parse_response line in
  Alcotest.(check int) "no atoms changed" 0 (int_field "changed_atoms" json);
  Alcotest.(check int)
    "no cells re-evaluated" 0
    (int_field "cells_reevaluated" json);
  Alcotest.(check int) "epoch unchanged" 0 (Engine.epoch engine)

let test_register_extends_matrix () =
  with_engine @@ fun engine ->
  let before = Engine.resident_cells engine in
  let line = handle engine (Protocol.Register_site "forge") in
  let json = parse_response line in
  Alcotest.(check bool)
    "registration evaluated new cells only" true
    (int_field "cells_evaluated" json = int_field "cells_total" json - before);
  Alcotest.(check bool)
    "extended table equals a cold full pass" true
    (Engine.crosscheck_matches engine);
  let line =
    handle engine
      (Protocol.Register_binary { rb_home = "forge"; rb_benchmark = "is.A" })
  in
  let json = parse_response line in
  Alcotest.(check bool)
    "register-binary added binaries" true
    (match member_exn "added" json with
    | Json.List (_ :: _) -> true
    | _ -> false);
  Alcotest.(check bool)
    "matrix with new binaries equals a cold full pass" true
    (Engine.crosscheck_matches engine);
  (* Unknown names are typed errors, not state changes. *)
  let epoch = Engine.epoch engine in
  let line = handle engine (Protocol.Register_site "atlantis") in
  Alcotest.(check bool)
    "unknown spec is a typed error" true
    (contains ~affix:{|"error":"unknown-site-spec"|} line);
  Alcotest.(check int) "failed registration mutates nothing" epoch
    (Engine.epoch engine)

let test_snapshot_is_a_drift_epoch () =
  with_engine @@ fun engine ->
  let written = ref None in
  let line =
    Engine.handle
      ~write_file:(fun path doc -> written := Some (path, doc))
      engine
      (Protocol.Snapshot_fleet { sf_out = Some "epoch.jsonl" })
  in
  let json = parse_response line in
  match !written with
  | None -> Alcotest.fail "snapshot wrote nothing"
  | Some (path, doc) ->
    Alcotest.(check string) "out path honoured" "epoch.jsonl" path;
    (match Snapshot.of_jsonl doc with
    | Error e -> Alcotest.failf "snapshot is not a drift epoch: %s" e
    | Ok snap ->
      Alcotest.(check string)
        "response hash matches the document"
        (Snapshot.hash snap)
        (match member_exn "hash" json with
        | Json.Str h -> h
        | _ -> Alcotest.fail "hash is not a string"))

(* -- transcript replay -------------------------------------------------- *)

let transcript =
  [
    {|{"verb":"stats"}|};
    {|{"verb":"predict","binary":"nonexistent","target":"fir"}|};
    {|not json at all|};
    {|{"verb":"update-evidence","site":"fir","action":"stale-ld-cache"}|};
    {|{"verb":"crosscheck"}|};
    {|{"verb":"stats"}|};
    {|{"verb":"shutdown"}|};
    {|{"verb":"stats"}|};  (* past shutdown: must never be served *)
  ]

let replay_transcript () =
  with_engine @@ fun engine ->
  let inputs = ref transcript in
  let outputs = Buffer.create 1024 in
  let outcome =
    Daemon.with_signals @@ fun () ->
    Daemon.serve_lines engine
      ~next:(fun () ->
        match !inputs with
        | [] -> None
        | x :: rest ->
          inputs := rest;
          Some x)
      ~write:(Buffer.add_string outputs)
  in
  (outcome, Buffer.contents outputs)

let test_transcript_replay_byte_identity () =
  let outcome_a, a = replay_transcript () in
  let outcome_b, b = replay_transcript () in
  Alcotest.(check bool) "shutdown verb ended the loop" true
    outcome_a.Daemon.shutdown;
  Alcotest.(check int)
    "requests after shutdown are not served" 7 outcome_a.Daemon.served;
  Alcotest.(check int) "one parse error" 1 outcome_a.Daemon.parse_errors;
  Alcotest.(check int) "replays serve alike" outcome_a.Daemon.served
    outcome_b.Daemon.served;
  Alcotest.(check string) "transcript replays byte-for-byte" a b;
  let lines = String.split_on_char '\n' (String.trim a) in
  Alcotest.(check int) "one response line per served request" 7
    (List.length lines);
  List.iter (fun l -> ignore (parse_response l)) lines;
  Alcotest.(check bool)
    "crosscheck passed mid-transcript" true
    (contains ~affix:{|"matches":true|} a)

(* -- graceful drain ----------------------------------------------------- *)

let test_sigint_drains_and_journal_is_whole () =
  let journal = ref "" in
  Feam_flightrec.Recorder.configure ~tool:"serve-test"
    ~emit:(fun body -> journal := body)
    ();
  Fun.protect ~finally:Feam_flightrec.Recorder.disable @@ fun () ->
  with_engine @@ fun engine ->
  let inputs =
    ref [ {|{"verb":"stats"}|}; {|{"verb":"stats"}|}; {|{"verb":"stats"}|} ]
  in
  let outputs = ref [] in
  let outcome =
    Daemon.with_signals @@ fun () ->
    Daemon.serve_lines engine
      ~on_request:(fun _ ->
        (* Kill mid-request: the line is read but not yet handled.  Spin
           until the handler has run so the drain is deterministic. *)
        Unix.kill (Unix.getpid ()) Sys.sigint;
        while not (Daemon.stop_requested ()) do
          ignore (Sys.opaque_identity (ref 0))
        done)
      ~next:(fun () ->
        match !inputs with
        | [] -> None
        | x :: rest ->
          inputs := rest;
          Some x)
      ~write:(fun s -> outputs := s :: !outputs)
  in
  Alcotest.(check bool) "loop saw the interrupt" true
    outcome.Daemon.interrupted;
  Alcotest.(check int) "in-flight request drained, no more served" 1
    outcome.Daemon.served;
  Alcotest.(check int) "its response was written" 1 (List.length !outputs);
  Alcotest.(check bool)
    "the drained response is complete" true
    (contains ~affix:{|"verb":"stats"|} (List.hd !outputs));
  Alcotest.(check bool) "journal was flushed" true (!journal <> "");
  match Feam_flightrec.Journal.parse !journal with
  | Error e -> Alcotest.failf "journal is not parseable after the kill: %s" e
  | Ok j ->
    Alcotest.(check bool)
      "journal records the drained exchange" true
      (List.exists
         (fun (r : Feam_flightrec.Journal.record) ->
           r.Feam_flightrec.Journal.kind = "serve.request")
         j.Feam_flightrec.Journal.records)

(* -- metrics exposition ------------------------------------------------- *)

let test_prom_exposition_covers_serve () =
  Feam_obs.Metrics.reset ();
  with_engine @@ fun engine ->
  ignore
    (handle engine
       (Protocol.Predict { Protocol.q_binary = "x"; q_target = "y" }));
  let prom = Feam_obs.Expo.render_prom () in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("exposition lists " ^ name) true
        (contains ~affix:name prom))
    [
      "feam_serve_resident_cells";
      "feam_serve_requests_total";
      "feam_serve_cells_reevaluated_total";
      "feam_serve_query_ns";
      {|feam_serve_requests{verb="predict"}|};
    ]

let prop_label_escaping_roundtrip =
  QCheck.Test.make
    ~name:"serve: prom label escaping round-trips verb labels" ~count:300
    (QCheck.make ~print:Fun.id QCheck.Gen.(string_size (int_range 0 40)))
    (fun s ->
      Feam_obs.Expo.unescape_label (Feam_obs.Expo.escape_label s) = s)

let suite =
  ( "serve",
    [
      Alcotest.test_case "protocol parse golden" `Quick test_protocol_golden;
      QCheck_alcotest.to_alcotest prop_parse_total_random;
      QCheck_alcotest.to_alcotest prop_parse_total_truncations;
      QCheck_alcotest.to_alcotest prop_parse_oversized;
      Alcotest.test_case "baseline equals a cold pass" `Quick
        test_baseline_matches_cold_pass;
      Alcotest.test_case "updates re-evaluate only affected cells" `Slow
        test_update_reevaluates_only_affected;
      Alcotest.test_case "inert updates re-evaluate nothing" `Quick
        test_inert_update_reevaluates_nothing;
      Alcotest.test_case "registration extends the matrix" `Slow
        test_register_extends_matrix;
      Alcotest.test_case "snapshot dumps a drift epoch" `Quick
        test_snapshot_is_a_drift_epoch;
      Alcotest.test_case "transcript replays byte-for-byte" `Slow
        test_transcript_replay_byte_identity;
      Alcotest.test_case "SIGINT drains and the journal stays whole" `Quick
        test_sigint_drains_and_journal_is_whole;
      Alcotest.test_case "prom exposition covers serve metrics" `Quick
        test_prom_exposition_covers_serve;
      QCheck_alcotest.to_alcotest prop_label_escaping_roundtrip;
    ] )
