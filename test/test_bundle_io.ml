(* Tests for base64 and the bundle artifact format. *)

open Feam_util
open Feam_sysmodel
open Feam_core

(* -- Base64 ----------------------------------------------------------------- *)

let test_base64_vectors () =
  (* RFC 4648 test vectors *)
  List.iter
    (fun (plain, encoded) ->
      Alcotest.(check string) ("encode " ^ plain) encoded (Base64.encode plain);
      Alcotest.(check string) ("decode " ^ encoded) plain (Base64.decode_exn encoded))
    [
      ("", ""); ("f", "Zg=="); ("fo", "Zm8="); ("foo", "Zm9v");
      ("foob", "Zm9vYg=="); ("fooba", "Zm9vYmE="); ("foobar", "Zm9vYmFy");
    ]

let test_base64_binary () =
  let all_bytes = String.init 256 Char.chr in
  Alcotest.(check string) "all byte values" all_bytes
    (Base64.decode_exn (Base64.encode all_bytes))

let test_base64_rejects () =
  (match Base64.decode "abc" with
  | Error Base64.Bad_length -> ()
  | _ -> Alcotest.fail "expected Bad_length");
  match Base64.decode "ab!=" with
  | Error (Base64.Bad_character '!') -> ()
  | _ -> Alcotest.fail "expected Bad_character"

let gen_bytes = QCheck.Gen.(map Bytes.to_string (bytes_size (int_range 0 512)))

let prop_base64_roundtrip =
  QCheck.Test.make ~name:"base64: roundtrip" ~count:300
    (QCheck.make ~print:String.escaped gen_bytes) (fun s ->
      Base64.decode (Base64.encode s) = Ok s)

let prop_base64_length =
  QCheck.Test.make ~name:"base64: output length" ~count:300
    (QCheck.make ~print:String.escaped gen_bytes) (fun s ->
      String.length (Base64.encode s) = (String.length s + 2) / 3 * 4)

(* -- Bundle round trip --------------------------------------------------------- *)

let make_bundle () =
  let site, installs = Fixtures.small_site () in
  let path, install =
    Fixtures.compiled_binary ~program:Fixtures.fortran_program site installs
  in
  let env = Fixtures.session_env site install in
  Fixtures.run_exn
    (Phases.source_phase Config.default site env ~binary_path:path)

let test_bundle_roundtrip () =
  let bundle = make_bundle () in
  let text = Bundle_io.render bundle in
  Alcotest.(check bool) "has magic" true
    (String.starts_with ~prefix:Bundle_io.magic text);
  let bundle' = Fixtures.run_exn (Bundle_io.parse text) in
  Alcotest.(check string) "created at" bundle.Bundle.created_at
    bundle'.Bundle.created_at;
  Alcotest.(check bool) "binary bytes" true
    (bundle.Bundle.binary_bytes = bundle'.Bundle.binary_bytes);
  Alcotest.(check int) "copy count" (List.length bundle.Bundle.copies)
    (List.length bundle'.Bundle.copies);
  Alcotest.(check int) "probe count" (List.length bundle.Bundle.probes)
    (List.length bundle'.Bundle.probes);
  Alcotest.(check int) "library bytes" (Bundle.library_bytes bundle)
    (Bundle.library_bytes bundle');
  (* descriptions survive with derived fields recomputed *)
  let d = bundle.Bundle.binary_description
  and d' = bundle'.Bundle.binary_description in
  Alcotest.(check (list string)) "needed" d.Description.needed d'.Description.needed;
  Alcotest.(check bool) "required glibc" true
    (d.Description.required_glibc = d'.Description.required_glibc);
  Alcotest.(check bool) "mpi ident survives" true
    ((d.Description.mpi <> None) = (d'.Description.mpi <> None));
  (* copy bytes are identical after the round trip *)
  List.iter2
    (fun (a : Bdc.library_copy) (b : Bdc.library_copy) ->
      Alcotest.(check string) "copy request" a.Bdc.copy_request b.Bdc.copy_request;
      Alcotest.(check bool) "copy bytes equal" true
        (a.Bdc.copy_bytes = b.Bdc.copy_bytes))
    bundle.Bundle.copies bundle'.Bundle.copies;
  (* source discovery survives *)
  Alcotest.(check bool) "discovery glibc" true
    (bundle.Bundle.source_discovery.Discovery.glibc
    = bundle'.Bundle.source_discovery.Discovery.glibc)

let test_parsed_bundle_usable_for_target_phase () =
  (* the deserialized bundle drives a target phase exactly like the
     original *)
  let bundle = make_bundle () in
  let bundle' = Fixtures.run_exn (Bundle_io.parse (Bundle_io.render bundle)) in
  let target, _ = Fixtures.small_site ~name:"t2" ~glibc:"2.12" () in
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let report =
    Fixtures.run_exn
      (Phases.target_phase Config.default target (Site.base_env target)
         ~bundle:bundle' ())
  in
  Alcotest.(check bool) "evaluates" true
    (Predict.is_ready (Report.prediction report)
    || Predict.reasons (Report.prediction report) <> [])

let test_parse_rejects_garbage () =
  Alcotest.(check bool) "no magic" true (Result.is_error (Bundle_io.parse "hello"));
  Alcotest.(check bool) "empty" true (Result.is_error (Bundle_io.parse ""));
  Alcotest.(check bool) "missing description" true
    (Result.is_error (Bundle_io.parse (Bundle_io.magic ^ "\ncreated-at: x\n")))

let test_parse_bad_line () =
  let text = Bundle_io.magic ^ "\ncreated-at: x\nnot a key value line\n" in
  match Bundle_io.parse text with
  | Error e -> Alcotest.(check bool) "line number" true
      (Str_split.contains ~sub:"line 3" e)
  | Ok _ -> Alcotest.fail "expected parse error"

(* -- Loader hardening: entry names that collide or escape ---------------------- *)

let test_parse_checked_accepts_clean () =
  let bundle = make_bundle () in
  match Bundle_io.parse_checked (Bundle_io.render bundle) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Bundle_io.load_error_to_string e)

let test_parse_checked_rejects_duplicate_copy () =
  let bundle = make_bundle () in
  let dup =
    match bundle.Bundle.copies with
    | c :: _ as copies -> { bundle with Bundle.copies = c :: copies }
    | [] -> Alcotest.fail "fixture bundle has no copies"
  in
  match Bundle_io.parse_checked (Bundle_io.render dup) with
  | Error (Bundle_io.Unsafe_entry { issue = Bundle_io.Duplicate; name; _ }) ->
    Alcotest.(check string) "names the colliding entry"
      (List.hd bundle.Bundle.copies).Bdc.copy_request name
  | Error e -> Alcotest.failf "wrong error: %s" (Bundle_io.load_error_to_string e)
  | Ok _ -> Alcotest.fail "duplicate entry accepted"

let test_parse_checked_rejects_traversal_probe () =
  let bundle = make_bundle () in
  let evil =
    {
      bundle with
      Bundle.probes =
        List.map
          (fun p -> { p with Bundle.probe_name = "../" ^ p.Bundle.probe_name })
          bundle.Bundle.probes;
    }
  in
  if evil.Bundle.probes = [] then Alcotest.fail "fixture bundle has no probes";
  match Bundle_io.parse_checked (Bundle_io.render evil) with
  | Error (Bundle_io.Unsafe_entry { issue = Bundle_io.Traversal; name; _ }) ->
    Alcotest.(check bool) "names the escaping entry" true
      (Bundle_io.name_traverses name)
  | Error e -> Alcotest.failf "wrong error: %s" (Bundle_io.load_error_to_string e)
  | Ok _ -> Alcotest.fail "traversal entry accepted"

let test_name_traverses () =
  List.iter
    (fun (name, expected) ->
      Alcotest.(check bool) name expected (Bundle_io.name_traverses name))
    [
      ("../etc/passwd", true); ("a/../b", true); ("a/b/..", true);
      ("..", true); ("libc.so.6", false); ("lib..so", false);
      ("a..b/c", false); ("", false);
    ]

let suite =
  ( "bundle-io",
    [
      Alcotest.test_case "base64 vectors" `Quick test_base64_vectors;
      Alcotest.test_case "base64 binary" `Quick test_base64_binary;
      Alcotest.test_case "base64 rejects" `Quick test_base64_rejects;
      QCheck_alcotest.to_alcotest prop_base64_roundtrip;
      QCheck_alcotest.to_alcotest prop_base64_length;
      Alcotest.test_case "bundle roundtrip" `Quick test_bundle_roundtrip;
      Alcotest.test_case "parsed bundle drives target phase" `Quick
        test_parsed_bundle_usable_for_target_phase;
      Alcotest.test_case "parse rejects garbage" `Quick test_parse_rejects_garbage;
      Alcotest.test_case "parse error line numbers" `Quick test_parse_bad_line;
      Alcotest.test_case "parse_checked accepts clean artifact" `Quick
        test_parse_checked_accepts_clean;
      Alcotest.test_case "parse_checked rejects duplicate copy" `Quick
        test_parse_checked_rejects_duplicate_copy;
      Alcotest.test_case "parse_checked rejects traversal probe" `Quick
        test_parse_checked_rejects_traversal_probe;
      Alcotest.test_case "name_traverses" `Quick test_name_traverses;
    ] )
