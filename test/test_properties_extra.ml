(* Additional cross-cutting properties: resolution idempotence, Env
   path-list laws, corpus-stats consistency. *)

open Feam_sysmodel
open Feam_core

(* -- resolution idempotence ----------------------------------------------- *)

let test_resolution_idempotent () =
  (* running the resolution twice over the same missing set stages the
     same copies at the same paths and succeeds both times *)
  let home, home_installs = Fixtures.small_site ~name:"idemhome" () in
  let path, install =
    Fixtures.compiled_binary ~program:Fixtures.fortran_program home home_installs
  in
  let env = Fixtures.session_env home install in
  let bundle =
    Fixtures.run_exn
      (Phases.source_phase Config.default home env ~binary_path:path)
  in
  let target, _ = Fixtures.small_site ~name:"idemtarget" ~glibc:"2.12" () in
  let resolve () =
    Resolve_model.resolve Config.default target (Site.base_env target) ~bundle
      ~target_glibc:(Some (Site.glibc target))
      ~binary_machine:Feam_elf.Types.X86_64 ~binary_class:Feam_elf.Types.C64
      ~missing:[ "libgfortran.so.1" ]
  in
  let a = resolve () in
  let b = resolve () in
  Alcotest.(check bool) "same staged" true
    (a.Resolve_model.staged = b.Resolve_model.staged);
  Alcotest.(check bool) "same failures" true
    (List.map fst a.Resolve_model.failed = List.map fst b.Resolve_model.failed)

(* -- Env laws --------------------------------------------------------------- *)

let gen_dirs =
  QCheck.Gen.(list_size (int_range 0 6) (oneofl [ "/a"; "/b"; "/c"; "/d/e" ]))

let prop_env_prepend_order =
  QCheck.Test.make ~name:"env: prepended dirs come back in reverse order"
    ~count:200
    (QCheck.make ~print:(String.concat ":") gen_dirs)
    (fun dirs ->
      let env =
        List.fold_left
          (fun e d -> Env.prepend_path e "LD_LIBRARY_PATH" d)
          Env.empty dirs
      in
      Env.ld_library_path env = List.rev dirs)

let prop_env_append_order =
  QCheck.Test.make ~name:"env: appended dirs come back in order" ~count:200
    (QCheck.make ~print:(String.concat ":") gen_dirs)
    (fun dirs ->
      let env =
        List.fold_left (fun e d -> Env.append_path e "PATH" d) Env.empty dirs
      in
      Env.path env = dirs)

(* -- corpus stats consistency ----------------------------------------------- *)

let test_corpus_stats_consistent () =
  let params = Feam_evalharness.Params.default in
  let sites = Feam_evalharness.Sites.build_all params in
  let benchmarks = Feam_suites.Npb.all in
  let binaries = Feam_evalharness.Testset.build params sites benchmarks in
  let rows = Feam_evalharness.Corpus_stats.compute sites binaries in
  (* row totals match per-site sums and the corpus size *)
  List.iter
    (fun r ->
      Alcotest.(check int)
        (r.Feam_evalharness.Corpus_stats.benchmark ^ " total")
        r.Feam_evalharness.Corpus_stats.total
        (List.fold_left
           (fun acc (_, n) -> acc + n)
           0 r.Feam_evalharness.Corpus_stats.per_site))
    rows;
  Alcotest.(check int) "grand total" (List.length binaries)
    (List.fold_left
       (fun acc r -> acc + r.Feam_evalharness.Corpus_stats.total)
       0 rows)

(* -- soname and version laws -------------------------------------------------- *)

let gen_soname =
  QCheck.Gen.(
    map
      (fun (base, version) -> Feam_util.Soname.make ~version base)
      (pair
         (oneofl [ "libm"; "libmpi"; "libgfortran"; "libx264"; "ld-linux" ])
         (list_size (int_range 0 4) (int_range 0 999))))

let prop_soname_roundtrip =
  QCheck.Test.make ~name:"soname: to_string/of_string round-trip" ~count:300
    (QCheck.make
       ~print:(fun s -> Feam_util.Soname.to_string s)
       gen_soname)
    (fun s ->
      match Feam_util.Soname.of_string (Feam_util.Soname.to_string s) with
      | Some s' -> Feam_util.Soname.equal s s'
      | None -> false)

let prop_soname_satisfies_reflexive =
  QCheck.Test.make ~name:"soname: satisfies is reflexive" ~count:200
    (QCheck.make ~print:Feam_util.Soname.to_string gen_soname)
    (fun s -> Feam_util.Soname.satisfies ~provided:s ~required:s)

let gen_version =
  QCheck.Gen.(
    map Feam_util.Version.of_ints (list_size (int_range 1 4) (int_range 0 99)))

let prop_version_roundtrip =
  QCheck.Test.make ~name:"version: to_string/of_string round-trip" ~count:300
    (QCheck.make ~print:Feam_util.Version.to_string gen_version)
    (fun v ->
      match Feam_util.Version.of_string (Feam_util.Version.to_string v) with
      | Some v' -> Feam_util.Version.equal v v'
      | None -> false)

let prop_version_compare_total_order =
  QCheck.Test.make ~name:"version: compare is antisymmetric and transitive"
    ~count:300
    (QCheck.make
       ~print:(fun (a, b, c) ->
         Printf.sprintf "%s %s %s"
           (Feam_util.Version.to_string a)
           (Feam_util.Version.to_string b)
           (Feam_util.Version.to_string c))
       QCheck.Gen.(triple gen_version gen_version gen_version))
    (fun (a, b, c) ->
      let open Feam_util.Version in
      compare a b = -compare b a
      && ((not (a <= b && b <= c)) || a <= c)
      && (compare a b <> 0 || to_string a = to_string b))

(* -- search precedence over staged copies ------------------------------------ *)

let test_staged_copy_shadows_system_lib () =
  (* a staged copy prepended on LD_LIBRARY_PATH wins over a same-named
     system library, per ld.so precedence *)
  let site, _ = Fixtures.small_site ~name:"shadow" () in
  let vfs = Site.vfs site in
  let lib name =
    Feam_elf.Builder.build
      (Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_DYN ~soname:name
         Feam_elf.Types.X86_64)
  in
  Vfs.add vfs "/lib64/libshadow.so.1" (Vfs.Elf (lib "libshadow.so.1"));
  Vfs.add vfs "/tmp/staged/libshadow.so.1" (Vfs.Elf (lib "libshadow.so.1"));
  let env = Env.prepend_path (Site.base_env site) "LD_LIBRARY_PATH" "/tmp/staged" in
  let spec =
    Feam_elf.Spec.make ~needed:[ "libshadow.so.1" ] Feam_elf.Types.X86_64
  in
  let r = Feam_dynlinker.Resolve.run site env spec in
  match r.Feam_dynlinker.Resolve.resolved with
  | [ lib ] ->
    Alcotest.(check string) "staged wins" "/tmp/staged/libshadow.so.1"
      lib.Feam_dynlinker.Resolve.lib_path
  | _ -> Alcotest.fail "unexpected resolution"

let suite =
  ( "properties-extra",
    [
      Alcotest.test_case "resolution idempotent" `Quick test_resolution_idempotent;
      QCheck_alcotest.to_alcotest prop_env_prepend_order;
      QCheck_alcotest.to_alcotest prop_env_append_order;
      Alcotest.test_case "corpus stats consistent" `Slow test_corpus_stats_consistent;
      QCheck_alcotest.to_alcotest prop_soname_roundtrip;
      QCheck_alcotest.to_alcotest prop_soname_satisfies_reflexive;
      QCheck_alcotest.to_alcotest prop_version_roundtrip;
      QCheck_alcotest.to_alcotest prop_version_compare_total_order;
      Alcotest.test_case "staged copy shadows system lib" `Quick
        test_staged_copy_shadows_system_lib;
    ] )
