(* The differential agreement harness: scenario-generator determinism
   (same seed => byte-identical corpus and byte-identical agreement
   tables), the verdict lattice, soundness scoring, disagreement
   minimization, journal replay, and the promoted reproducer fixtures
   under fixtures/. *)

open Feam_agree
module Scengen = Feam_evalharness.Scengen

(* Small corpora keep the suite fast; 50 scenarios run in well under a
   second and cover every perturbation class at its draw rate. *)
let corpus_seed = 42
let corpus_count = 50

let corpus = lazy (Harness.run_corpus ~seed:corpus_seed ~count:corpus_count ())

(* -- determinism -------------------------------------------------------- *)

let test_scengen_deterministic () =
  List.iter
    (fun index ->
      let a = Scengen.build ~seed:7 ~index () in
      let b = Scengen.build ~seed:7 ~index () in
      Alcotest.(check string)
        (Printf.sprintf "binary bytes identical for 7/%d" index)
        a.Scengen.sc_binary_bytes b.Scengen.sc_binary_bytes;
      Alcotest.(check (list string))
        (Printf.sprintf "applied perturbations identical for 7/%d" index)
        (List.map Scengen.perturbation_to_string (Scengen.applied a))
        (List.map Scengen.perturbation_to_string (Scengen.applied b)))
    [ 0; 1; 2; 3; 4 ]

let test_report_deterministic () =
  let render () =
    Harness.render_report (Harness.run_corpus ~seed:corpus_seed ~count:20 ())
  in
  Alcotest.(check string) "two runs render byte-identical tables" (render ())
    (render ())

(* Same seed/index built standalone vs. rebuilt mid-shrink: the keep
   subset must only remove its own perturbations, never shift the rest
   of the draws (the discipline the minimizer depends on). *)
let test_keep_subset_stable () =
  let full = Scengen.build ~seed:11 ~index:3 () in
  let all = List.mapi (fun i _ -> i) full.Scengen.sc_all in
  let rebuilt = Scengen.build ~seed:11 ~index:3 ~keep:all () in
  Alcotest.(check string) "keep=all rebuilds the identical binary"
    full.Scengen.sc_binary_bytes rebuilt.Scengen.sc_binary_bytes;
  Alcotest.(check (list string))
    "drawn perturbation list is keep-independent"
    (List.map Scengen.perturbation_to_string full.Scengen.sc_all)
    (List.map Scengen.perturbation_to_string
       (Scengen.build ~seed:11 ~index:3 ~keep:[] ()).Scengen.sc_all)

let prop_seed_stability =
  QCheck.Test.make ~name:"agree: corpora are a pure function of the seed"
    ~count:10
    (QCheck.make QCheck.Gen.(int_range 0 10_000))
    (fun seed ->
      let report () =
        Harness.render_report (Harness.run_corpus ~seed ~count:5 ())
      in
      String.equal (report ()) (report ()))

(* -- the verdict lattice ------------------------------------------------ *)

let test_verdict_lattice () =
  Alcotest.(check bool) "ready accepts" true (Verdict.accepts Verdict.ready);
  Alcotest.(check bool) "ready is strict" true
    (Verdict.strictly_ready Verdict.ready);
  let oracle_fail =
    Verdict.of_outcome
      (Feam_dynlinker.Exec.Failure
         (Feam_dynlinker.Exec.Missing_libraries [ "libz.so.1" ]))
  in
  Alcotest.(check bool) "oracle failure rejects" false
    (Verdict.accepts oracle_fail);
  Alcotest.(check string) "failure class attributed" "missing-libraries"
    (List.hd oracle_fail.Verdict.v_attribution).Verdict.at_source;
  List.iter
    (fun l ->
      Alcotest.(check bool)
        ("level round-trips: " ^ Verdict.level_to_string l)
        true
        (Verdict.level_of_string (Verdict.level_to_string l) = Some l))
    [ Verdict.Ready; Verdict.Degraded; Verdict.Not_ready ];
  List.iter
    (fun p ->
      Alcotest.(check bool)
        ("predictor round-trips: " ^ Verdict.predictor_name p)
        true
        (Verdict.predictor_of_name (Verdict.predictor_name p) = Some p))
    Verdict.predictors

let test_claims () =
  let open Feam_dynlinker.Exec in
  Alcotest.(check bool) "tec claims missing libraries" true
    (Verdict.claims Verdict.Tec (Missing_libraries [ "x" ]));
  let vf =
    {
      Feam_dynlinker.Resolve.vf_object = "x";
      vf_provider = "libc.so.6";
      vf_scope_pos = None;
      vf_version = "GLIBC_2.7";
    }
  in
  Alcotest.(check bool) "symcheck claims version bindings only" true
    (Verdict.claims Verdict.Symcheck (Unsatisfied_versions [ vf ]));
  Alcotest.(check bool) "symcheck does not claim launch failures" false
    (Verdict.claims Verdict.Symcheck No_mpi_stack);
  Alcotest.(check bool) "nobody claims interconnect weather" false
    (List.exists
       (fun p -> Verdict.claims p (Interconnect_unavailable "ib0"))
       Verdict.predictors);
  Alcotest.(check bool) "oracle claims nothing" false
    (List.exists (Verdict.claims Verdict.Oracle)
       [ Missing_libraries [ "x" ]; No_mpi_stack ])

(* -- corpus content ----------------------------------------------------- *)

(* The seed corpus must actually exercise the harness: disagreements
   exist, and at least one unsound acceptance surfaces (the soundness
   channels scengen plants: foreign verneeds, rpath decoys).  These are
   properties of the fixed seed, stable by the determinism tests. *)
let test_corpus_finds_disagreements () =
  let runs = Lazy.force corpus in
  Alcotest.(check int) "corpus size" corpus_count (List.length runs);
  Alcotest.(check bool) "some scenarios disagree" true
    (List.exists Harness.disagrees runs);
  Alcotest.(check bool) "some scenarios agree" true
    (List.exists (fun r -> not (Harness.disagrees r)) runs);
  Alcotest.(check bool) "unsound acceptances surface" true
    (List.exists (fun r -> r.Harness.r_unsound <> []) runs);
  List.iter
    (fun r ->
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "unsound %s was strictly ready"
               (Verdict.predictor_name p))
            true
            (Verdict.strictly_ready (Harness.verdict_of r p));
          match r.Harness.r_failure with
          | Some f ->
            Alcotest.(check bool) "oracle failed inside the claim" true
              (Verdict.claims p f)
          | None -> Alcotest.fail "unsound scenario without oracle failure")
        r.Harness.r_unsound)
    runs

let test_metrics () =
  Feam_obs.Metrics.reset ();
  let runs = Harness.run_corpus ~seed:corpus_seed ~count:10 () in
  let counter name = Option.value ~default:0 (Feam_obs.Metrics.counter_value name) in
  Alcotest.(check int) "agree.scenarios counts the corpus" 10
    (counter "agree.scenarios");
  Alcotest.(check int) "agree.disagreements matches the runs"
    (List.length (List.filter Harness.disagrees runs))
    (counter "agree.disagreements");
  Alcotest.(check int) "agree.unsound matches the runs"
    (List.length (List.filter (fun r -> r.Harness.r_unsound <> []) runs))
    (counter "agree.unsound")

(* -- minimization ------------------------------------------------------- *)

let first_unsound runs =
  List.find_opt (fun r -> r.Harness.r_unsound <> []) runs

let test_minimizer_shrinks () =
  match first_unsound (Lazy.force corpus) with
  | None -> Alcotest.fail "seed corpus lost its unsound scenarios"
  | Some run ->
    let p = List.hd run.Harness.r_unsound in
    (match Minimize.shrink run p with
    | Error e -> Alcotest.fail e
    | Ok (rp, _probes) ->
      let sc = run.Harness.r_scenario in
      Alcotest.(check bool) "keep is a subset of the original" true
        (List.for_all (fun i -> List.mem i sc.Scengen.sc_keep) rp.Minimize.rp_keep);
      Alcotest.(check bool) "keep is non-empty" true (rp.Minimize.rp_keep <> []);
      (* still reproduces... *)
      (match Minimize.check rp with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      (* ...and is 1-minimal: dropping any single kept perturbation
         makes the unsoundness disappear. *)
      List.iter
        (fun i ->
          let keep = List.filter (fun j -> j <> i) rp.Minimize.rp_keep in
          if keep <> [] then begin
            let r =
              Harness.rerun ~seed:rp.Minimize.rp_seed
                ~index:rp.Minimize.rp_index ~keep
            in
            Alcotest.(check bool)
              (Printf.sprintf "dropping %d breaks the reproducer" i)
              false
              (List.mem rp.Minimize.rp_predictor r.Harness.r_unsound
              && r.Harness.r_failure
                 |> Option.map Verdict.failure_class
                 = Some rp.Minimize.rp_failure)
          end)
        rp.Minimize.rp_keep)

let test_minimize_rejects_sound () =
  let runs = Lazy.force corpus in
  match List.find_opt (fun r -> r.Harness.r_unsound = []) runs with
  | None -> Alcotest.fail "seed corpus has no sound scenario"
  | Some run -> (
    match Minimize.shrink run Verdict.Tec with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "shrinking a sound scenario must error")

let test_reproducer_round_trip () =
  let rp =
    {
      Minimize.rp_seed = 42;
      rp_index = 17;
      rp_keep = [ 0; 2 ];
      rp_predictor = Verdict.Tec;
      rp_failure = "unsatisfied-versions";
      rp_perturbations = [ "foreign-lib libz.so.1"; "strip-verneed" ];
    }
  in
  (match Minimize.of_string (Minimize.to_string rp) with
  | Ok parsed -> Alcotest.(check bool) "round-trips" true (parsed = rp)
  | Error e -> Alcotest.fail e);
  (match Minimize.of_string "not a reproducer\n" with
  | Ok _ -> Alcotest.fail "garbage must not parse"
  | Error _ -> ());
  Alcotest.(check string) "fixture filename is deterministic"
    "agree_tec_unsatisfied-versions_foreign-lib_libz-so-1+strip-verneed.agree"
    (Minimize.filename rp)

(* -- promoted fixtures -------------------------------------------------- *)

(* Every checked-in minimized reproducer must still reproduce: rebuild
   its scenario from (seed, index, keep) and re-check the recorded
   predictor is unsound for the recorded failure class. *)
let test_fixture_regressions () =
  let dir = "fixtures" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".agree")
    |> List.sort compare
  in
  Alcotest.(check bool) "fixtures are present" true (files <> []);
  List.iter
    (fun file ->
      let text =
        In_channel.with_open_text (Filename.concat dir file)
          In_channel.input_all
      in
      match Minimize.of_string text with
      | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" file e)
      | Ok rp -> (
        Alcotest.(check string)
          (Printf.sprintf "%s: filename matches content" file)
          file (Minimize.filename rp);
        match Minimize.check rp with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" file e)))
    files

(* -- journal replay ----------------------------------------------------- *)

let test_journal_replay () =
  let captured = ref "" in
  Feam_flightrec.Recorder.configure ~tool:"test"
    ~emit:(fun body -> captured := body)
    ();
  let runs = Harness.run_corpus ~seed:corpus_seed ~count:5 () in
  Harness.record_report runs;
  Feam_flightrec.Recorder.flush ();
  Feam_flightrec.Recorder.disable ();
  match Feam_flightrec.Journal.parse !captured with
  | Error e -> Alcotest.fail e
  | Ok journal -> (
    Alcotest.(check bool) "journal carries a corpus" true
      (Replay.has_corpus journal);
    match Replay.of_journal journal with
    | Error e -> Alcotest.fail e
    | Ok outcome ->
      Alcotest.(check int) "replay rebuilds every scenario" 5
        (List.length outcome.Replay.runs);
      Alcotest.(check bool) "replay matches byte-for-byte" true
        outcome.Replay.matches)

let test_replay_rejects_non_corpus () =
  let captured = ref "" in
  Feam_flightrec.Recorder.configure ~tool:"test"
    ~emit:(fun body -> captured := body)
    ();
  Feam_flightrec.Recorder.record "noise";
  Feam_flightrec.Recorder.flush ();
  Feam_flightrec.Recorder.disable ();
  match Feam_flightrec.Journal.parse !captured with
  | Error e -> Alcotest.fail e
  | Ok journal ->
    Alcotest.(check bool) "no corpus detected" false (Replay.has_corpus journal);
    (match Replay.of_journal journal with
    | Ok _ -> Alcotest.fail "non-corpus journal must not replay"
    | Error _ -> ())

(* The README calibration table is generated from the seed-42/50-scenario
   agreement corpus; re-derive it here so doc and code cannot drift. *)

let test_readme_calibration_in_sync () =
  let readme = In_channel.with_open_text "../README.md" In_channel.input_all in
  let runs = Feam_agree.Harness.run_corpus ~seed:42 ~count:50 () in
  let expected = Feam_agree.Calibrate.markdown_table runs in
  Alcotest.(check bool)
    "README contains the corpus-derived calibration table verbatim" true
    (Feam_sysmodel.Str_split.contains ~sub:expected readme);
  Alcotest.(check (list string))
    "no rule demotes on the documented corpus" []
    (Feam_agree.Calibrate.demotions runs)

let suite =
  ( "agree",
    [
      Alcotest.test_case "scengen is deterministic" `Quick
        test_scengen_deterministic;
      Alcotest.test_case "agreement tables are byte-identical" `Quick
        test_report_deterministic;
      Alcotest.test_case "keep subsets only remove their own perturbation"
        `Quick test_keep_subset_stable;
      QCheck_alcotest.to_alcotest prop_seed_stability;
      Alcotest.test_case "verdict lattice" `Quick test_verdict_lattice;
      Alcotest.test_case "predictor claims" `Quick test_claims;
      Alcotest.test_case "seed corpus surfaces disagreements" `Quick
        test_corpus_finds_disagreements;
      Alcotest.test_case "corpus metrics" `Quick test_metrics;
      Alcotest.test_case "minimizer shrinks to 1-minimal" `Quick
        test_minimizer_shrinks;
      Alcotest.test_case "minimizer rejects sound scenarios" `Quick
        test_minimize_rejects_sound;
      Alcotest.test_case "reproducer serialization round-trips" `Quick
        test_reproducer_round_trip;
      Alcotest.test_case "promoted fixtures still reproduce" `Quick
        test_fixture_regressions;
      Alcotest.test_case "journal replay round-trips" `Quick
        test_journal_replay;
      Alcotest.test_case "replay rejects non-corpus journals" `Quick
        test_replay_rejects_non_corpus;
      Alcotest.test_case "README calibration table in sync" `Quick
        test_readme_calibration_in_sync;
    ] )
