(* Completes coverage of the executor's failure taxonomy: every
   constructor of {!Feam_dynlinker.Exec.failure} is reachable and
   reported for the right cause. *)

open Feam_sysmodel
open Feam_mpi
open Feam_dynlinker

let v = Feam_util.Version.of_string_exn

let quiet = Fault_model.none

let run ?params site env path =
  Exec.run ~params:(Option.value params ~default:quiet) site env
    ~binary_path:path ~mode:(Exec.Mpi 4)

let test_arch_mismatched_library_at_exec () =
  (* the right name resolves to a wrong-architecture object *)
  let site, installs = Fixtures.small_site () in
  let install = List.hd installs in
  let ppc_lib =
    Feam_elf.Builder.build
      (Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_DYN ~soname:"libodd.so.1"
         Feam_elf.Types.PPC64)
  in
  Vfs.add (Site.vfs site) "/lib64/libodd.so.1" (Vfs.Elf ppc_lib);
  let binary =
    Feam_elf.Builder.build
      (Feam_elf.Spec.make ~needed:[ "libodd.so.1"; "libc.so.6" ]
         Feam_elf.Types.X86_64)
  in
  Vfs.add (Site.vfs site) "/home/user/odd" (Vfs.Elf binary);
  match run site (Fixtures.session_env site install) "/home/user/odd" with
  | Exec.Failure (Exec.Arch_mismatched_libraries [ "libodd.so.1" ]) -> ()
  | o -> Alcotest.failf "unexpected: %s" (Exec.outcome_to_string o)

let test_unsatisfied_versions_at_exec () =
  let site, installs = Fixtures.small_site ~glibc:"2.5" () in
  let install = List.hd installs in
  let binary =
    Feam_elf.Builder.build
      (Feam_elf.Spec.make ~needed:[ "libc.so.6" ]
         ~verneeds:
           [ { Feam_elf.Spec.vn_file = "libc.so.6"; vn_versions = [ "GLIBC_2.12" ] } ]
         Feam_elf.Types.X86_64)
  in
  Vfs.add (Site.vfs site) "/home/user/newbin" (Vfs.Elf binary);
  match run site (Fixtures.session_env site install) "/home/user/newbin" with
  | Exec.Failure (Exec.Unsatisfied_versions [ f ]) ->
    Alcotest.(check string) "version" "GLIBC_2.12" f.Resolve.vf_version
  | o -> Alcotest.failf "unexpected: %s" (Exec.outcome_to_string o)

let test_no_mpi_stack_at_exec () =
  (* all libraries resolvable from default dirs, MPI launch with no
     stack loaded *)
  let site, installs = Fixtures.small_site () in
  ignore installs;
  let binary =
    Feam_elf.Builder.build
      (Feam_elf.Spec.make ~needed:[ "libm.so.6"; "libc.so.6" ]
         Feam_elf.Types.X86_64)
  in
  Vfs.add (Site.vfs site) "/home/user/plain" (Vfs.Elf binary);
  match run site (Site.base_env site) "/home/user/plain" with
  | Exec.Failure Exec.No_mpi_stack -> ()
  | o -> Alcotest.failf "unexpected: %s" (Exec.outcome_to_string o)

let test_interconnect_unavailable () =
  (* an MVAPICH2/InfiniBand build launched on an Ethernet-only site whose
     admin hand-copied the verbs libraries: linking succeeds, the fabric
     does not *)
  let ib_home, ib_installs =
    Fixtures.small_site ~name:"ibhome"
      ~stacks:(Some [ (Fixtures.mvapich2 Fixtures.intel11, Stack_install.Functioning) ])
      ()
  in
  let install = List.hd ib_installs in
  let path, _ = Fixtures.compiled_binary ib_home ib_installs in
  ignore path;
  let binary_path =
    Result.get_ok
      (Feam_toolchain.Compile.compile_mpi_to ib_home install
         (Feam_toolchain.Compile.program "verbsapp")
         ~dir:"/home/user/bin")
  in
  let eth_target, eth_installs =
    Fixtures.small_site ~name:"ethtarget"
      ~interconnect:Interconnect.Ethernet
      ~stacks:
        (Some
           [
             ( Stack.make ~impl:Impl.Mvapich2 ~impl_version:(v "1.7a2")
                 ~compiler:Fixtures.intel11 ~interconnect:Interconnect.Ethernet,
               Stack_install.Functioning );
           ])
      ()
  in
  (* hand-copy the verbs stack so the link succeeds *)
  let gcc = Feam_toolchain.Provision.distro_compiler eth_target in
  List.iter
    (Feam_toolchain.Provision.install_library eth_target ~dir:"/usr/lib64"
       ~built_with:gcc)
    Feam_toolchain.Libdb.infiniband_libs;
  let bytes =
    match Vfs.find (Site.vfs ib_home) binary_path with
    | Some { Vfs.kind = Vfs.Elf b; _ } -> b
    | _ -> assert false
  in
  Vfs.add (Site.vfs eth_target) "/home/user/verbsapp" (Vfs.Elf bytes);
  let env = Fixtures.session_env eth_target (List.hd eth_installs) in
  match run eth_target env "/home/user/verbsapp" with
  | Exec.Failure (Exec.Interconnect_unavailable what) ->
    Alcotest.(check string) "fabric named" "InfiniBand" what
  | o -> Alcotest.failf "unexpected: %s" (Exec.outcome_to_string o)

let test_system_error_reachable () =
  (* a certain sticky system error: the retry policy cannot save it *)
  let site, installs = Fixtures.small_site () in
  let install = List.hd installs in
  let path, _ = Fixtures.compiled_binary site installs in
  ignore install;
  let env = Fixtures.session_env site (List.hd installs) in
  let params = { Exec.p_transient = 0.0; p_sticky = 1.0; p_copy_abi = 0.0 } in
  match run ~params site env path with
  | Exec.Failure (Exec.System_error _) -> ()
  | o -> Alcotest.failf "unexpected: %s" (Exec.outcome_to_string o)

let test_transient_overcome_by_retries () =
  (* transient-only noise: with five attempts the run almost always
     succeeds; verify determinism and that at least this seed's draw
     succeeds *)
  let site, installs = Fixtures.small_site () in
  let path, _ = Fixtures.compiled_binary site installs in
  let env = Fixtures.session_env site (List.hd installs) in
  let params = { Exec.p_transient = 0.3; p_sticky = 0.0; p_copy_abi = 0.0 } in
  let a = Exec.run ~params site env ~binary_path:path ~mode:(Exec.Mpi 4) in
  let b = Exec.run ~params site env ~binary_path:path ~mode:(Exec.Mpi 4) in
  Alcotest.(check string) "deterministic" (Exec.outcome_to_string a)
    (Exec.outcome_to_string b);
  Alcotest.(check string) "retries win" "success" (Exec.outcome_to_string a)

let test_failure_strings_are_informative () =
  (* every failure constructor renders something a user can act on *)
  let checks =
    [
      Exec.Not_executable "x";
      Exec.Wrong_isa
        { binary_machine = Feam_elf.Types.PPC64; site_machine = Feam_elf.Types.X86_64 };
      Exec.Missing_libraries [ "liba.so.1" ];
      Exec.Arch_mismatched_libraries [ "libb.so.1" ];
      Exec.Unsatisfied_versions
        [
          {
            Resolve.vf_object = "o";
            vf_provider = "libc.so.6";
            vf_scope_pos = None;
            vf_version = "GLIBC_2.7";
          };
        ];
      Exec.Interpreter_missing "/lib/ld-linux.so.2";
      Exec.Invalid_process_count { np = 6; rule = "a perfect square" };
      Exec.No_mpi_stack;
      Exec.Stack_misconfigured "w";
      Exec.Abi_incompatibility "w";
      Exec.Floating_point_error "w";
      Exec.Interconnect_unavailable "InfiniBand";
      Exec.System_error `Daemon_spawn;
      Exec.System_error `Timeout;
    ]
  in
  List.iter
    (fun f ->
      Alcotest.(check bool) "non-empty" true
        (String.length (Exec.failure_to_string f) > 5))
    checks

let suite =
  ( "exec-taxonomy",
    [
      Alcotest.test_case "arch-mismatched library" `Quick
        test_arch_mismatched_library_at_exec;
      Alcotest.test_case "unsatisfied versions" `Quick test_unsatisfied_versions_at_exec;
      Alcotest.test_case "no MPI stack" `Quick test_no_mpi_stack_at_exec;
      Alcotest.test_case "interconnect unavailable" `Quick test_interconnect_unavailable;
      Alcotest.test_case "system error reachable" `Quick test_system_error_reachable;
      Alcotest.test_case "transient overcome by retries" `Quick
        test_transient_overcome_by_retries;
      Alcotest.test_case "failure strings" `Quick test_failure_strings_are_informative;
    ] )
