(* Tests for the feam.obs observability layer: span nesting over a
   manual clock, the zero-cost disabled path, histogram bucketing, the
   JSONL exporter over a real in-process predict pipeline (fixed clock,
   so timestamps are zeroed and the output is deterministic), the
   Chrome trace_event exporter's parent-first ordering, and the
   lint.findings counters the analysis engine feeds. *)

open Feam_obs

(* A sink that hands the completed spans back to the test. *)
let capture_sink () =
  let spans = ref [] in
  ( spans,
    { Sink.on_span = (fun s -> spans := s :: !spans); flush = (fun () -> ()) }
  )

(* completion order reversed back to arrival order *)
let collected spans = List.rev !spans

let test_span_nesting () =
  Feam_obs.reset ();
  let spans, sink = capture_sink () in
  let clock = Clock.manual () in
  Trace.configure ~clock:(Clock.of_manual clock) sink;
  let result =
    Trace.with_span "root" ~attrs:[ ("k", Span.Str "v") ] @@ fun () ->
    Clock.advance clock 10L;
    Trace.with_span "child1" (fun () ->
        Clock.advance clock 5L;
        Trace.event "tick";
        Trace.set_attr "n" (Span.Int 1));
    Trace.with_span "child2" (fun () -> Clock.advance clock 7L);
    Clock.advance clock 3L;
    42
  in
  Feam_obs.reset ();
  Alcotest.(check int) "with_span returns the thunk's value" 42 result;
  let ordered = collected spans in
  Alcotest.(check (list string))
    "children complete before the root"
    [ "child1"; "child2"; "root" ]
    (List.map (fun s -> s.Span.name) ordered);
  let find n = List.find (fun s -> s.Span.name = n) ordered in
  let root = find "root" and c1 = find "child1" and c2 = find "child2" in
  Alcotest.(check int) "root depth" 0 root.Span.depth;
  Alcotest.(check int) "child depth" 1 c1.Span.depth;
  Alcotest.(check (option int)) "root has no parent" None root.Span.parent;
  Alcotest.(check (option int))
    "child1 parented to root" (Some root.Span.id) c1.Span.parent;
  Alcotest.(check (option int))
    "child2 parented to root" (Some root.Span.id) c2.Span.parent;
  Alcotest.(check int64) "root start" 0L root.Span.start_ns;
  Alcotest.(check int64) "root duration" 25L root.Span.duration_ns;
  Alcotest.(check int64) "child1 start" 10L c1.Span.start_ns;
  Alcotest.(check int64) "child1 duration" 5L c1.Span.duration_ns;
  Alcotest.(check int64) "child2 start" 15L c2.Span.start_ns;
  Alcotest.(check int64) "child2 duration" 7L c2.Span.duration_ns;
  (match root.Span.attrs with
  | [ ("k", Span.Str "v") ] -> ()
  | _ -> Alcotest.fail "root attrs wrong");
  (match c1.Span.attrs with
  | [ ("n", Span.Int 1) ] -> ()
  | _ -> Alcotest.fail "child1 attrs wrong");
  match c1.Span.events with
  | [ { Span.ev_name = "tick"; ev_at_ns = 15L; ev_attrs = [] } ] -> ()
  | _ -> Alcotest.fail "child1 events wrong"

let test_span_exception_safety () =
  Feam_obs.reset ();
  let spans, sink = capture_sink () in
  Trace.configure sink;
  (try Trace.with_span "boom" (fun () -> raise Exit) with Exit -> ());
  Trace.with_span "after" (fun () -> ());
  Feam_obs.reset ();
  let ordered = collected spans in
  Alcotest.(check (list string))
    "raising span still completes"
    [ "boom"; "after" ]
    (List.map (fun s -> s.Span.name) ordered);
  let after = List.find (fun s -> s.Span.name = "after") ordered in
  Alcotest.(check (option int))
    "stack popped despite the raise" None after.Span.parent

let test_disabled_is_free () =
  Feam_obs.reset ();
  Alcotest.(check bool) "tracing off by default" false (Trace.enabled ());
  let f () = () in
  Trace.with_span "warmup" f;
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    Trace.with_span "x" f
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check (float 0.0))
    "disabled with_span allocates nothing" 0.0 allocated;
  Alcotest.(check int)
    "disabled with_span still returns the value" 7
    (Trace.with_span "y" (fun () -> 7))

let test_histogram_bucketing () =
  Metrics.reset ();
  let bounds = [| 1.0; 10.0; 100.0 |] in
  List.iter
    (fun v -> Metrics.observe ~bounds "t.hist" v)
    [ 0.5; 1.0; 5.0; 10.0; 99.0; 100.0; 101.0; 1000.0 ];
  match Metrics.histogram_value "t.hist" with
  | None -> Alcotest.fail "histogram not registered"
  | Some h ->
    Alcotest.(check (array int))
      "values land in the right buckets (last = overflow)"
      [| 2; 2; 2; 2 |] h.Metrics.counts;
    Alcotest.(check int) "count" 8 h.Metrics.count;
    Alcotest.(check (float 1e-9)) "sum" 1316.5 h.Metrics.sum;
    Alcotest.(check (float 1e-9)) "mean" (1316.5 /. 8.0) (Metrics.hist_mean h)

let test_counter_label_normalization () =
  Metrics.reset ();
  Metrics.incr ~labels:[ ("b", "2"); ("a", "1") ] "t.counter";
  Metrics.incr ~by:2 ~labels:[ ("a", "1"); ("b", "2") ] "t.counter";
  Alcotest.(check (option int))
    "label order does not split the series" (Some 3)
    (Metrics.counter_value ~labels:[ ("b", "2"); ("a", "1") ] "t.counter")

let test_histogram_boundary_values () =
  Metrics.reset ();
  let bounds = [| 10.0; 20.0 |] in
  (* a value exactly equal to a bound belongs to that bound's bucket
     (bounds are inclusive upper edges), and the first value past the
     last bound overflows *)
  List.iter
    (fun v -> Metrics.observe ~bounds "t.edge" v)
    [ 10.0; 20.0; 20.0000001 ];
  (match Metrics.histogram_value "t.edge" with
  | None -> Alcotest.fail "histogram not registered"
  | Some h ->
    Alcotest.(check (array int))
      "bound-exact values stay below their bound" [| 1; 1; 1 |] h.Metrics.counts);
  (* a second observe with different bounds does not re-bucket: the
     histogram keeps the bounds it was created with *)
  Metrics.observe ~bounds:[| 1000.0 |] "t.edge" 15.0;
  match Metrics.histogram_value "t.edge" with
  | None -> Alcotest.fail "histogram vanished"
  | Some h ->
    Alcotest.(check (array int))
      "creation-time bounds hold" [| 1; 2; 1 |] h.Metrics.counts

let test_label_value_collision () =
  Metrics.reset ();
  (* the registry key is "name{k=v,...}": a label *value* containing
     ",b=2" therefore collides with the distinct label set [a=1; b=2].
     This characterizes the known flattening — both writes land in one
     series rather than silently creating a second one. *)
  Metrics.incr ~labels:[ ("a", "1,b=2") ] "t.collide";
  Metrics.incr ~labels:[ ("a", "1"); ("b", "2") ] "t.collide";
  Alcotest.(check (option int))
    "colliding label sets share a series" (Some 2)
    (Metrics.counter_value ~labels:[ ("a", "1,b=2") ] "t.collide");
  Alcotest.(check int) "and only one series exists" 1
    (List.length (Metrics.snapshot ()))

let test_disable_mid_run () =
  Metrics.reset ();
  Alcotest.(check bool) "enabled after reset" true (Metrics.is_enabled ());
  Metrics.incr "t.frozen";
  Metrics.set_enabled false;
  (* writes freeze; reads keep working *)
  Metrics.incr ~by:5 "t.frozen";
  Metrics.set_gauge "t.frozen_gauge" 2.0;
  Metrics.observe "t.frozen_hist" 1.0;
  Alcotest.(check (option int))
    "counter frozen at its pre-disable value" (Some 1)
    (Metrics.counter_value "t.frozen");
  Alcotest.(check bool)
    "disabled writes register nothing new" true
    (Metrics.histogram_value "t.frozen_hist" = None);
  Metrics.set_enabled true;
  Metrics.incr "t.frozen";
  Alcotest.(check (option int))
    "re-enabling resumes counting" (Some 2)
    (Metrics.counter_value "t.frozen");
  Metrics.set_enabled false;
  Metrics.reset ();
  Alcotest.(check bool) "reset re-enables the registry" true
    (Metrics.is_enabled ())

let test_with_sim_phase () =
  Feam_obs.reset ();
  let spans, sink = capture_sink () in
  Trace.configure sink;
  let sim = Feam_util.Sim_clock.create () in
  Feam_obs.with_sim_phase ~name:"t.phase" ~metric:"t.phase_s" ~phase:"source"
    sim (fun () -> Feam_util.Sim_clock.charge sim 2.5);
  Trace.disable ();
  (match collected spans with
  | [ s ] -> (
    Alcotest.(check string) "span name" "t.phase" s.Span.name;
    match List.assoc_opt "sim_s" s.Span.attrs with
    | Some (Span.Float v) -> Alcotest.(check (float 1e-9)) "sim_s attr" 2.5 v
    | _ -> Alcotest.fail "sim_s attribute missing")
  | _ -> Alcotest.fail "expected exactly one span");
  match Metrics.histogram_value "t.phase_s" ~labels:[ ("phase", "source") ] with
  | None -> Alcotest.fail "phase histogram not registered"
  | Some h ->
    Alcotest.(check int) "one observation" 1 h.Metrics.count;
    Alcotest.(check (float 1e-9)) "simulated seconds recorded" 2.5 h.Metrics.sum;
    (* 2.5 s lands in the <=5 s bucket of the paper's §VI.C bounds *)
    Alcotest.(check int) "bucketed under 5 s" 1 h.Metrics.counts.(2);
    Metrics.reset ()

(* -- exporters over the real pipeline ----------------------------------- *)

(* Source phase + target phase over two fixture sites, the same work
   `feam predict` traces. *)
let run_pipeline () =
  let home, home_installs = Fixtures.small_site ~name:"obs-home" () in
  let target, _ = Fixtures.small_site ~name:"obs-target" () in
  let path, install = Fixtures.compiled_binary home home_installs in
  let env = Fixtures.session_env home install in
  let config = Feam_core.Config.default in
  match Feam_core.Phases.source_phase config home env ~binary_path:path with
  | Error e -> Alcotest.failf "source phase failed: %s" e
  | Ok bundle -> (
    match
      Feam_core.Phases.target_phase config target
        (Feam_sysmodel.Site.base_env target)
        ~bundle ()
    with
    | Error e -> Alcotest.failf "target phase failed: %s" e
    | Ok report -> report)

let span_schema_keys =
  [ "type"; "id"; "parent"; "depth"; "name"; "start_ns"; "dur_ns"; "attrs";
    "events" ]

let test_jsonl_pipeline_golden () =
  Feam_obs.reset ();
  let out = Buffer.create 4096 in
  Feam_obs.configure ~clock:(Clock.fixed ()) ~emit:(Buffer.add_string out)
    Jsonl;
  let report = run_pipeline () in
  Feam_obs.flush ();
  Feam_obs.reset ();
  Alcotest.(check bool)
    "pipeline predicted ready" true
    (Feam_core.Predict.is_ready (Feam_core.Report.prediction report));
  let lines =
    String.split_on_char '\n' (Buffer.contents out)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "spans were exported" true (List.length lines > 10);
  let names =
    List.map
      (fun line ->
        match Feam_util.Json.parse line with
        | Error e -> Alcotest.failf "JSONL line does not parse: %s" e
        | Ok json ->
          List.iter
            (fun k ->
              if Feam_util.Json.member k json = None then
                Alcotest.failf "span record lacks %S" k)
            span_schema_keys;
          Alcotest.(check (option string))
            "record type" (Some "span")
            Option.(bind (Feam_util.Json.member "type" json)
                      Feam_util.Json.to_string_opt);
          (* the fixed test clock zeroes every timestamp *)
          Alcotest.(check (option int))
            "start_ns zeroed" (Some 0)
            Option.(bind (Feam_util.Json.member "start_ns" json)
                      Feam_util.Json.to_int_opt);
          Alcotest.(check (option int))
            "dur_ns zeroed" (Some 0)
            Option.(bind (Feam_util.Json.member "dur_ns" json)
                      Feam_util.Json.to_int_opt);
          Option.get
            Option.(bind (Feam_util.Json.member "name" json)
                      Feam_util.Json.to_string_opt))
      lines
  in
  (* the pipeline's landmark spans all appear... *)
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "trace contains %s" expected)
        true (List.mem expected names))
    [ "phases.source"; "bdc.describe"; "bdc.gather_source"; "edc.discover";
      "probe.test_stack"; "tec.evaluate"; "predict.check.isa";
      "predict.check.clib"; "predict.check.stack"; "predict.check.libs";
      "phases.target" ];
  (* ...and completion order puts the target phase root last *)
  Alcotest.(check string)
    "target phase completes last" "phases.target"
    (List.nth names (List.length names - 1))

let test_jsonl_silent_when_disabled () =
  Feam_obs.reset ();
  (* no configure: the pipeline must not produce trace output *)
  let report = run_pipeline () in
  Alcotest.(check bool)
    "pipeline predicted ready" true
    (Feam_core.Predict.is_ready (Feam_core.Report.prediction report));
  Feam_obs.flush () (* flushing the no-op sink emits nothing and cannot raise *)

let test_chrome_export_parent_first () =
  Feam_obs.reset ();
  let out = Buffer.create 1024 in
  let clock = Clock.manual () in
  Feam_obs.configure ~clock:(Clock.of_manual clock)
    ~emit:(Buffer.add_string out) Chrome;
  (Trace.with_span "root" @@ fun () ->
   Trace.with_span "child" (fun () -> Clock.advance clock 2000L);
   Clock.advance clock 500L);
  Feam_obs.flush ();
  Feam_obs.reset ();
  match Feam_util.Json.parse (Buffer.contents out) with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok json -> (
    match
      Option.bind (Feam_util.Json.member "traceEvents" json)
        Feam_util.Json.to_list_opt
    with
    | None -> Alcotest.fail "no traceEvents array"
    | Some events ->
      let field k e =
        Option.bind (Feam_util.Json.member k e) Feam_util.Json.to_string_opt
      in
      Alcotest.(check (list (option string)))
        "complete events" [ Some "X"; Some "X" ]
        (List.map (field "ph") events);
      (* both start at ts 0; the longer (enclosing) span sorts first so
         viewers nest the child under the parent *)
      Alcotest.(check (list (option string)))
        "parent-first at equal timestamps"
        [ Some "root"; Some "child" ]
        (List.map (field "name") events))

let test_lint_findings_counter () =
  Feam_obs.reset ();
  let site, installs = Fixtures.small_site ~name:"obs-lint" () in
  let path, install = Fixtures.compiled_binary site installs in
  let env = Fixtures.session_env site install in
  match
    Feam_core.Phases.source_phase Feam_core.Config.default site env
      ~binary_path:path
  with
  | Error e -> Alcotest.failf "source phase failed: %s" e
  | Ok bundle ->
    Metrics.reset ();
    (* an ancient target glibc trips the per-symbol binding rule *)
    let target =
      Feam_analysis.Context.make_target
        ~glibc:(Feam_util.Version.of_string_exn "2.0") ()
    in
    let ctx = Feam_analysis.Context.of_bundle ~target bundle in
    let findings = Feam_analysis.Engine.run ctx in
    Alcotest.(check bool)
      "old target produces findings" true
      (List.length findings > 0);
    let counted =
      List.fold_left
        (fun acc (_, e) ->
          if e.Metrics.name = "lint.findings" then
            match e.Metrics.metric with
            | Metrics.Counter c -> acc + !c
            | _ -> acc
          else acc)
        0 (Metrics.snapshot ())
    in
    Alcotest.(check int)
      "lint.findings counters account for every finding"
      (List.length findings) counted;
    Metrics.reset ()

let suite =
  ( "obs",
    [
      Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
      Alcotest.test_case "span exception safety" `Quick
        test_span_exception_safety;
      Alcotest.test_case "disabled tracing is free" `Quick test_disabled_is_free;
      Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
      Alcotest.test_case "counter label normalization" `Quick
        test_counter_label_normalization;
      Alcotest.test_case "histogram boundary values" `Quick
        test_histogram_boundary_values;
      Alcotest.test_case "label value collision" `Quick
        test_label_value_collision;
      Alcotest.test_case "disable mid-run freezes writes" `Quick
        test_disable_mid_run;
      Alcotest.test_case "with_sim_phase" `Quick test_with_sim_phase;
      Alcotest.test_case "jsonl pipeline export" `Quick
        test_jsonl_pipeline_golden;
      Alcotest.test_case "no trace output when disabled" `Quick
        test_jsonl_silent_when_disabled;
      Alcotest.test_case "chrome export parent-first" `Quick
        test_chrome_export_parent_first;
      Alcotest.test_case "lint findings counter" `Quick
        test_lint_findings_counter;
    ] )
