(* Tests for the content-addressed depot: hash stability, store
   intern/pin/GC invariants, on-disk round-trips, depot-backed manifests
   (byte-identical export to the legacy bundle format), transfer-plan
   dedup against the possession index, and byte-for-byte plan replay
   from a flight-recorder journal. *)

open Feam_core
module Chash = Feam_depot.Chash
module Store = Feam_depot.Store
module Planner = Feam_depot.Planner

let gen_bytes = QCheck.Gen.(map Bytes.to_string (bytes_size (int_range 0 512)))

(* -- Content hash ------------------------------------------------------- *)

let prop_chash_stable =
  QCheck.Test.make ~name:"chash: deterministic, 32-hex" ~count:200
    (QCheck.make ~print:String.escaped gen_bytes) (fun s ->
      let k = Chash.of_bytes s in
      Chash.equal k (Chash.of_bytes s)
      && String.length (Chash.to_hex k) = 32
      && Chash.of_hex (Chash.to_hex k) = Some k)

let prop_chash_distinct =
  QCheck.Test.make ~name:"chash: distinct bytes, distinct keys" ~count:200
    QCheck.(pair (make ~print:String.escaped gen_bytes)
              (make ~print:String.escaped gen_bytes))
    (fun (a, b) ->
      a = b || not (Chash.equal (Chash.of_bytes a) (Chash.of_bytes b)))

(* -- Store: intern, pins, GC -------------------------------------------- *)

let intern_str ?deps store s =
  Store.intern store ~meta:(Store.meta ?deps ~size:(String.length s) ()) s

let test_intern_hit_miss () =
  let store = Store.create () in
  let st1, k1 = intern_str store "alpha" in
  let st2, k2 = intern_str store "alpha" in
  let st3, k3 = intern_str store "beta" in
  Alcotest.(check string) "first is a miss" "miss" (Store.status_to_string st1);
  Alcotest.(check string) "second is a hit" "hit" (Store.status_to_string st2);
  Alcotest.(check string) "other bytes miss" "miss" (Store.status_to_string st3);
  Alcotest.(check bool) "same key" true (Chash.equal k1 k2);
  Alcotest.(check bool) "distinct key" false (Chash.equal k1 k3);
  Alcotest.(check int) "two objects" 2 (Store.object_count store);
  Alcotest.(check int) "bytes counted once" 9 (Store.total_bytes store)

let test_gc_keeps_pinned_and_roots () =
  let store = Store.create () in
  let _, ka = intern_str store "aaaa" in
  let _, kb = intern_str store ~deps:[ Chash.to_hex ka ] "bbbb" in
  let _, kc = intern_str store "cccc" in
  let _, kd = intern_str store "dddd" in
  Store.pin store kd;
  (* roots: kb — marks kb and, through its recorded dep, ka. *)
  let report = Store.gc ~roots:[ kb ] store in
  Alcotest.(check bool) "root kept" true (Store.mem store kb);
  Alcotest.(check bool) "dep of root kept" true (Store.mem store ka);
  Alcotest.(check bool) "pinned kept" true (Store.mem store kd);
  Alcotest.(check bool) "unreferenced swept" false (Store.mem store kc);
  Alcotest.(check int) "one swept" 1 (List.length report.Store.swept);
  Alcotest.(check int) "three kept" 3 report.Store.kept;
  Alcotest.(check int) "swept bytes" 4 report.Store.swept_bytes

(* Random stores with random dep edges, pins, and roots: GC must never
   sweep a pinned object or anything reachable from pins + roots. *)
let prop_gc_never_sweeps_reachable =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 12 in
      let* pins = list_size (int_range 0 3) (int_range 0 (n - 1)) in
      let* roots = list_size (int_range 0 3) (int_range 0 (n - 1)) in
      let* deps = list_size (int_range 0 (2 * n)) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
      return (n, pins, roots, deps))
  in
  QCheck.Test.make ~name:"gc: pinned and reachable objects survive" ~count:100
    (QCheck.make
       ~print:(fun (n, pins, roots, deps) ->
         Printf.sprintf "n=%d pins=%s roots=%s deps=%s" n
           (String.concat "," (List.map string_of_int pins))
           (String.concat "," (List.map string_of_int roots))
           (String.concat ","
              (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) deps)))
       gen)
    (fun (n, pins, roots, deps) ->
      let store = Store.create () in
      let payload i = Printf.sprintf "object-%d" i in
      let keys =
        Array.init n (fun i ->
            let dep_hexes =
              List.filter_map
                (fun (a, b) ->
                  if a = i && b < i then
                    Some (Chash.to_hex (Chash.of_bytes (payload b)))
                  else None)
                deps
            in
            snd (intern_str store ~deps:dep_hexes (payload i)))
      in
      List.iter (fun i -> Store.pin store keys.(i)) pins;
      (* expected survivors: closure over recorded deps from pins+roots *)
      let marked = Hashtbl.create 16 in
      let dep_edges i = List.filter_map (fun (a, b) -> if a = i && b < i then Some b else None) deps in
      let rec mark i =
        if not (Hashtbl.mem marked i) then begin
          Hashtbl.replace marked i ();
          List.iter mark (dep_edges i)
        end
      in
      List.iter mark pins;
      List.iter mark roots;
      ignore (Store.gc ~roots:(List.map (fun i -> keys.(i)) roots) store);
      List.for_all
        (fun i -> Store.mem store keys.(i))
        (List.of_seq (Hashtbl.to_seq_keys marked)))

let test_save_load_roundtrip () =
  let store = Store.create () in
  let _, ka = intern_str store "payload one" in
  let _, _ =
    Store.intern store
      ~meta:
        (Store.meta ~soname:"libx.so.1" ~version:"1.2" ~provider:"test"
           ~origin:"/lib/libx.so.1"
           ~deps:[ Chash.to_hex ka ]
           ~size:11 ())
      "payload two"
  in
  let dir = Filename.temp_dir "feam_depot_test" "" in
  Store.save_dir store dir;
  let loaded =
    match Store.load_dir dir with
    | Ok s -> s
    | Error e -> Alcotest.failf "load_dir: %s" e
  in
  Alcotest.(check string) "listings identical" (Store.listing store)
    (Store.listing loaded);
  Alcotest.(check int) "bytes identical" (Store.total_bytes store)
    (Store.total_bytes loaded)

(* -- Depot-backed manifests --------------------------------------------- *)

let make_bundle () =
  let site, installs = Fixtures.small_site () in
  let path, install =
    Fixtures.compiled_binary ~program:Fixtures.fortran_program site installs
  in
  let env = Fixtures.session_env site install in
  Fixtures.run_exn
    (Phases.source_phase Config.default site env ~binary_path:path)

let test_manifest_export_byte_identical () =
  let bundle = make_bundle () in
  let store = Store.create () in
  let manifest = Bundle_manifest.of_bundle store bundle in
  let bundle' = Fixtures.run_exn (Bundle_manifest.to_bundle store manifest) in
  Alcotest.(check string) "legacy render byte-identical"
    (Bundle_io.render bundle) (Bundle_io.render bundle')

let test_manifest_render_parse_roundtrip () =
  let bundle = make_bundle () in
  let store = Store.create () in
  let manifest = Bundle_manifest.of_bundle store bundle in
  let text = Bundle_io.render_manifest manifest in
  Alcotest.(check bool) "has manifest magic" true
    (String.starts_with ~prefix:Bundle_io.manifest_magic text);
  let manifest' = Fixtures.run_exn (Bundle_io.parse_manifest text) in
  Alcotest.(check string) "render stable across parse" text
    (Bundle_io.render_manifest manifest');
  (* the re-parsed manifest still resolves to the same legacy bytes *)
  let bundle' = Fixtures.run_exn (Bundle_manifest.to_bundle store manifest') in
  Alcotest.(check string) "export after reparse byte-identical"
    (Bundle_io.render bundle) (Bundle_io.render bundle')

let test_export_fails_on_missing_object () =
  let bundle = make_bundle () in
  let store = Store.create () in
  let manifest = Bundle_manifest.of_bundle store bundle in
  ignore (Store.gc store);
  (* unpinned, no roots: everything swept *)
  Alcotest.(check bool) "export reports the missing object" true
    (Result.is_error (Bundle_manifest.to_bundle store manifest))

(* -- Transfer planner --------------------------------------------------- *)

let want i size = Planner.want ~label:(Printf.sprintf "lib%d.so" i)
    ~key:(Chash.of_bytes (Printf.sprintf "payload-%d" i))
    ~size

let test_plan_dedup_and_possession () =
  let wants = [ want 1 100; want 2 200; want 1 100; want 3 300 ] in
  let possession = Planner.Possession.create () in
  let plan =
    Planner.compute ~site:"s1"
      ~possessed:(Planner.Possession.mem possession ~site:"s1")
      wants
  in
  Alcotest.(check int) "duplicate want collapsed" 3 (List.length plan.Planner.items);
  Alcotest.(check int) "shipped bytes" 600 plan.Planner.shipped_bytes;
  Alcotest.(check int) "legacy counts duplicates" 700 (Planner.legacy_bytes wants);
  Planner.Possession.commit possession plan;
  let again =
    Planner.compute ~site:"s1"
      ~possessed:(Planner.Possession.mem possession ~site:"s1")
      wants
  in
  Alcotest.(check int) "second plan ships nothing" 0 (List.length again.Planner.items);
  Alcotest.(check int) "all hits" 3 again.Planner.hits;
  (* a different site possesses nothing *)
  let other =
    Planner.compute ~site:"s2"
      ~possessed:(Planner.Possession.mem possession ~site:"s2")
      wants
  in
  Alcotest.(check int) "other site ships all" 3 (List.length other.Planner.items)

let test_plan_render_deterministic () =
  let wants = [ want 1 100; want 2 200 ] in
  let plan = Planner.compute ~site:"s" ~possessed:(fun _ -> false) wants in
  let plan' = Planner.compute ~site:"s" ~possessed:(fun _ -> false) wants in
  Alcotest.(check string) "renders byte-identical" (Planner.render plan)
    (Planner.render plan')

(* -- Plan journal replay ------------------------------------------------ *)

let with_recorder f =
  let buf = Buffer.create 4096 in
  Feam_flightrec.Recorder.configure ~tool:"test"
    ~emit:(fun body ->
      Buffer.clear buf;
      Buffer.add_string buf body)
    ();
  let result =
    match f () with
    | x ->
      Feam_flightrec.Recorder.flush ();
      Feam_flightrec.Recorder.disable ();
      x
    | exception e ->
      Feam_flightrec.Recorder.disable ();
      raise e
  in
  (result, Buffer.contents buf)

let test_plan_journal_replays_byte_for_byte () =
  let wants = [ want 1 100; want 2 200; want 1 100; want 3 300 ] in
  let possession = Planner.Possession.create () in
  Planner.Possession.add possession ~site:"s1" (Chash.of_bytes "payload-2");
  let plan, text =
    with_recorder (fun () ->
        let plan =
          Planner.compute ~site:"s1"
            ~possessed:(Planner.Possession.mem possession ~site:"s1")
            wants
        in
        Planner.journal ~wants plan;
        plan)
  in
  let journal =
    match Feam_flightrec.Journal.parse text with
    | Ok j -> j
    | Error e -> Alcotest.failf "journal does not parse: %s" e
  in
  Alcotest.(check bool) "journal carries a plan" true (Replay.has_plan journal);
  let outcome = Fixtures.run_exn (Replay.plan_of_journal journal) in
  Alcotest.(check bool) "replay matches byte-for-byte" true
    outcome.Replay.plan_matches;
  Alcotest.(check string) "replayed rendering equals live rendering"
    (Planner.render plan) outcome.Replay.plan_rendered

let suite =
  ( "depot",
    [
      QCheck_alcotest.to_alcotest prop_chash_stable;
      QCheck_alcotest.to_alcotest prop_chash_distinct;
      Alcotest.test_case "intern hit/miss" `Quick test_intern_hit_miss;
      Alcotest.test_case "gc keeps pinned and roots" `Quick
        test_gc_keeps_pinned_and_roots;
      QCheck_alcotest.to_alcotest prop_gc_never_sweeps_reachable;
      Alcotest.test_case "save/load round-trip" `Quick test_save_load_roundtrip;
      Alcotest.test_case "manifest export byte-identical" `Quick
        test_manifest_export_byte_identical;
      Alcotest.test_case "manifest render/parse round-trip" `Quick
        test_manifest_render_parse_roundtrip;
      Alcotest.test_case "export fails on missing object" `Quick
        test_export_fails_on_missing_object;
      Alcotest.test_case "plan dedup and possession" `Quick
        test_plan_dedup_and_possession;
      Alcotest.test_case "plan render deterministic" `Quick
        test_plan_render_deterministic;
      Alcotest.test_case "plan journal replays byte-for-byte" `Quick
        test_plan_journal_replays_byte_for_byte;
    ] )
