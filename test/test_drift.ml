(* Tests for the fleet drift observatory: epoch snapshots (double-capture
   byte identity, JSONL round-trips, the epoch store), the invalidation
   engine (dependency-map routing, attribution golden, a qcheck property
   that changed verdicts always fall inside the re-evaluation set), the
   incremental-vs-full byte-identity guarantee against Migrate.run_all,
   and the readiness timeline (history round-trip, alert rules, the
   Engine.gate-mirroring exit-code gate). *)

open Feam_evalharness
module Snapshot = Feam_drift.Snapshot
module Epoch_store = Feam_drift.Epoch_store
module Invalidate = Feam_drift.Invalidate
module Timeline = Feam_drift.Timeline

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let params = Params.default
let seed = params.Params.seed

(* The reduced two-site, two-benchmark world every expensive test runs
   on; the fixture is forced once and shared. *)
let small_world =
  lazy
    (let specs = Driftrun.small_specs () in
     let benchmarks = Driftrun.small_benchmarks () in
     (specs, benchmarks))

let build_with active =
  let specs, benchmarks = Lazy.force small_world in
  Driftrun.build_world params specs benchmarks active

let predict_all sites binaries =
  List.map
    (fun (b, t) -> Driftrun.predict_cell b t)
    (Driftrun.all_cells sites binaries)

let with_memo f =
  Feam_core.Bdc.set_describe_memo ();
  Fun.protect ~finally:Feam_core.Bdc.clear_describe_memo f

(* -- snapshots ----------------------------------------------------------- *)

let test_double_snapshot_byte_identity () =
  with_memo @@ fun () ->
  let snap () =
    let sites, binaries = build_with [] in
    let cells = predict_all sites binaries in
    Snapshot.to_jsonl
      (Driftrun.snapshot_of_world ~epoch:0 ~seed ~label:"" sites binaries
         ~cells)
  in
  let a = snap () in
  let b = snap () in
  Alcotest.(check string) "the same world snapshots byte-identically" a b

let test_snapshot_roundtrip () =
  with_memo @@ fun () ->
  let sites, binaries = build_with [] in
  let cells = predict_all sites binaries in
  let snapshot =
    Driftrun.snapshot_of_world ~epoch:3 ~seed ~label:"x @ y" sites binaries
      ~cells
  in
  let doc = Snapshot.to_jsonl snapshot in
  match Snapshot.of_jsonl doc with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok reparsed ->
    Alcotest.(check string)
      "of_jsonl . to_jsonl is the identity on bytes" doc
      (Snapshot.to_jsonl reparsed);
    Alcotest.(check string)
      "and on the content address" (Snapshot.hash snapshot)
      (Snapshot.hash reparsed)

let test_snapshot_parse_errors () =
  (match Snapshot.of_jsonl "" with
  | Ok _ -> Alcotest.fail "empty document should not parse"
  | Error e ->
    Alcotest.(check string) "empty doc error" "empty epoch document" e);
  (match Snapshot.of_jsonl "{\"type\":\"journal\",\"schema\":1}\n" with
  | Ok _ -> Alcotest.fail "non-epoch document should not parse"
  | Error _ -> ());
  match
    Snapshot.of_jsonl "{\"type\":\"epoch\",\"schema\":99,\"tool\":\"drift\"}\n"
  with
  | Ok _ -> Alcotest.fail "newer schema should not parse"
  | Error e ->
    Alcotest.(check bool) "schema error names the schema" true
      (contains ~affix:"schema" e)

let test_epoch_store_roundtrip () =
  with_memo @@ fun () ->
  let dir = Filename.temp_file "feam_drift" "" in
  Sys.remove dir;
  let store = Epoch_store.open_ dir in
  let sites, binaries = build_with [] in
  let cells = predict_all sites binaries in
  let s0 =
    Driftrun.snapshot_of_world ~epoch:0 ~seed ~label:"" sites binaries ~cells
  in
  let s2 = { s0 with Snapshot.epoch = 2; label = "later" } in
  let path0 = Epoch_store.put store s0 in
  let _ = Epoch_store.put store s2 in
  Alcotest.(check bool) "epoch file written" true (Sys.file_exists path0);
  Alcotest.(check (list int)) "list is ascending" [ 0; 2 ]
    (Epoch_store.list store);
  Alcotest.(check (option int)) "latest" (Some 2) (Epoch_store.latest store);
  (match Epoch_store.get store 2 with
  | Error e -> Alcotest.failf "get 2: %s" e
  | Ok got ->
    Alcotest.(check string)
      "store round-trip is byte-identical"
      (Snapshot.to_jsonl s2) (Snapshot.to_jsonl got));
  match Epoch_store.get store 1 with
  | Ok _ -> Alcotest.fail "absent epoch should be a typed error"
  | Error e ->
    Alcotest.(check bool) "absent epoch error names it" true
      (contains ~affix:"epoch 1" e)

(* -- invalidation: synthetic two-epoch fleet ----------------------------- *)

(* A hand-built fleet: two sites, two binaries, a 2x1 matrix.  Epoch B
   changes one site-owned atom (siteB loses a library) and one
   binary-owned atom (bin2's bundle gains an unlocatable), and bin1's
   cell flips ready -> not-ready. *)
let synthetic_epochs () =
  let site name inv =
    {
      Snapshot.ss_name = name;
      ss_ld_cache_current = true;
      ss_discovery =
        Feam_util.Json.Obj [ ("glibc", Feam_util.Json.Str "2.5") ];
      ss_inventory = inv;
    }
  in
  let binary id home bundle =
    {
      Snapshot.bs_id = id;
      bs_home = home;
      bs_digest = "d0";
      bs_error = None;
      bs_description =
        Feam_util.Json.Obj [ ("format", Feam_util.Json.Str "ELF64") ];
      bs_bundle = bundle;
    }
  in
  let cell binary target ready =
    {
      Snapshot.cl_binary = binary;
      cl_target = target;
      cl_basic = true;
      cl_basic_reasons = [];
      cl_extended = ready;
      cl_extended_reasons = (if ready then [] else [ "missing libm.so" ]);
      cl_staged = [];
    }
  in
  let base =
    Snapshot.normalize
      {
        Snapshot.epoch = 0;
        seed = 7;
        label = "";
        sites =
          [
            site "siteA" [ ("/usr/lib64/libm.so", "aa") ];
            site "siteB" [ ("/usr/lib64/libm.so", "bb") ];
          ];
        binaries =
          [
            binary "bin1" "siteA" [ ("copy:libm.so", "aa") ];
            binary "bin2" "siteB" [ ("copy:libm.so", "bb") ];
          ];
        possession = [];
        cells = [ cell "bin1" "siteB" true; cell "bin2" "siteA" true ];
      }
  in
  let next =
    Snapshot.normalize
      {
        base with
        Snapshot.epoch = 1;
        label = "remove-lib libm.so @ siteB";
        sites =
          [ site "siteA" [ ("/usr/lib64/libm.so", "aa") ]; site "siteB" [] ];
        binaries =
          [
            binary "bin1" "siteA" [ ("copy:libm.so", "aa") ];
            binary "bin2" "siteB" [ ("unlocatable:libm.so", "missing") ];
          ];
        cells = [ cell "bin1" "siteB" false; cell "bin2" "siteA" true ];
      }
  in
  (base, next)

let test_attribution_golden () =
  let base, next = synthetic_epochs () in
  let plan = Invalidate.affected base next in
  Alcotest.(check int) "epochs recorded" 0 plan.Invalidate.pl_epoch_a;
  Alcotest.(check int) "epochs recorded b" 1 plan.Invalidate.pl_epoch_b;
  Alcotest.(check int) "matrix size" 2 plan.Invalidate.pl_cells_total;
  (* three changed atoms: siteB's inventory entry, bin2's lost copy,
     bin2's new unlocatable *)
  Alcotest.(check int) "changed atoms" 3
    (List.length plan.Invalidate.pl_changes);
  (* both cells invalidated: bin1->siteB via the site atom, bin2->siteA
     via the binary atoms *)
  Alcotest.(check (list string))
    "affected cells"
    [ "bin1->siteB"; "bin2->siteA" ]
    (List.map Invalidate.cell_id_key plan.Invalidate.pl_affected);
  Alcotest.(check bool) "is_affected positive" true
    (Invalidate.is_affected plan ~binary:"bin1" ~target:"siteB");
  (* the site-owned atom routes to shared_libraries/mpi_stack, not isa *)
  (match
     List.find_opt
       (fun c ->
         c.Invalidate.ch_owner = Snapshot.Site_owner "siteB"
         && contains ~affix:"inventory" c.Invalidate.ch_path)
       plan.Invalidate.pl_changes
   with
  | None -> Alcotest.fail "siteB inventory change not in the plan"
  | Some c ->
    Alcotest.(check (list string))
      "inventory atom feeds the library determinants"
      [ "mpi_stack"; "shared_libraries" ]
      c.Invalidate.ch_determinants;
    Alcotest.(check (list string))
      "and invalidates only siteB-targeted cells" [ "bin1->siteB" ]
      (List.map Invalidate.cell_id_key c.Invalidate.ch_cells));
  (* attribution: the flip lands on the atoms that invalidated its cell *)
  let flips =
    Invalidate.flips ~before:base.Snapshot.cells ~after:next.Snapshot.cells
  in
  Alcotest.(check int) "one verdict flip" 1 (List.length flips);
  let attributions = Invalidate.attribute plan flips in
  let flipped_atoms =
    List.filter (fun a -> a.Invalidate.at_to_not_ready > 0) attributions
  in
  Alcotest.(check (list string))
    "the regression is attributed to the siteB inventory atom"
    [ "site siteB inventory./usr/lib64/libm.so" ]
    (List.map
       (fun a ->
         Snapshot.owner_to_string a.Invalidate.at_change.Invalidate.ch_owner
         ^ " "
         ^ a.Invalidate.at_change.Invalidate.ch_path)
       flipped_atoms);
  (* the text rendering names the change and the flip *)
  let text = Invalidate.render_text plan flips in
  List.iter
    (fun affix ->
      Alcotest.(check bool)
        (Printf.sprintf "render contains %S" affix)
        true (contains ~affix text))
    [ "inventory./usr/lib64/libm.so"; "bin1->siteB" ]

let test_merge_replaces_by_key () =
  let base, next = synthetic_epochs () in
  let changed =
    List.filter
      (fun c -> c.Snapshot.cl_binary = "bin1")
      next.Snapshot.cells
  in
  let merged = Invalidate.merge ~base:base.Snapshot.cells ~reevaluated:changed in
  Alcotest.(check int) "merge keeps the matrix size" 2 (List.length merged);
  match Snapshot.find_cell { base with Snapshot.cells = merged } ~binary:"bin1" ~target:"siteB" with
  | None -> Alcotest.fail "merged cell lost"
  | Some c ->
    Alcotest.(check bool) "re-evaluated row replaced" false c.Snapshot.cl_extended

(* Unknown atom paths must conservatively invalidate everything. *)
let test_unknown_atom_is_conservative () =
  Alcotest.(check (list string))
    "unknown site atom feeds all determinants" Invalidate.all_determinants
    (Invalidate.determinants_of_atom (Snapshot.Site_owner "s") "mystery.atom");
  Alcotest.(check (list string))
    "unknown binary atom feeds all determinants" Invalidate.all_determinants
    (Invalidate.determinants_of_atom (Snapshot.Binary_owner "b") "mystery")

(* -- qcheck: changed verdicts are a subset of the re-evaluation set ------ *)

let prop_flips_within_affected =
  QCheck.Test.make ~count:6 ~name:"changed-verdict cells are in the plan"
    QCheck.(int_range 1 1000)
    (fun pseed ->
      with_memo @@ fun () ->
      let sites0, binaries0 = build_with [] in
      let cells0 = predict_all sites0 binaries0 in
      let base =
        Driftrun.snapshot_of_world ~epoch:0 ~seed:pseed ~label:"" sites0
          binaries0 ~cells:cells0
      in
      let p =
        Driftrun.draw ~seed:pseed ~epoch:1
          ~site_names:(List.map Feam_sysmodel.Site.name sites0)
          ~candidates:(Driftrun.removal_candidates sites0)
      in
      let sites, binaries = build_with [ p ] in
      let candidate =
        Driftrun.snapshot_of_world ~epoch:1 ~seed:pseed
          ~label:(Driftrun.perturbation_label p) sites binaries ~cells:cells0
      in
      let plan = Invalidate.affected base candidate in
      let full = predict_all sites binaries in
      let flips = Invalidate.flips ~before:cells0 ~after:full in
      List.for_all
        (fun (f : Invalidate.flip) ->
          Invalidate.is_affected plan
            ~binary:f.Invalidate.fp_cell.Invalidate.ci_binary
            ~target:f.Invalidate.fp_cell.Invalidate.ci_target)
        flips)

(* -- the sequence: incremental == full, metrics, strict subsets ---------- *)

let test_sequence_incremental_matches_full () =
  Feam_obs.reset ();
  let specs, benchmarks = Lazy.force small_world in
  let result = Driftrun.run ~specs ~benchmarks ~seed ~epochs:4 () in
  (match result.Driftrun.dr_crosscheck with
  | Ok () -> ()
  | Error e -> Alcotest.failf "cross-check: %s" e);
  (* the baseline's verdict table equals Migrate.run_all's predictions,
     cell for cell, byte for byte *)
  let base = List.hd (Driftrun.snapshots result) in
  let sites, binaries = build_with [] in
  let full_cells =
    List.map Driftrun.cell_of_migration (Migrate.run_all params sites binaries)
  in
  Alcotest.(check string)
    "baseline cells equal Migrate.run_all's predictions"
    (Driftrun.cells_doc ~epoch:0 ~seed full_cells)
    (Driftrun.cells_doc ~epoch:0 ~seed base.Snapshot.cells);
  (* some post-baseline epoch re-evaluated strictly fewer cells than the
     matrix, and none re-evaluated more *)
  let post = List.tl (Driftrun.timeline result) in
  Alcotest.(check bool)
    "a single-atom epoch re-evaluates a strict subset" true
    (List.exists
       (fun e -> e.Timeline.te_reevaluated < result.Driftrun.dr_cells_total)
       post);
  List.iter
    (fun e ->
      Alcotest.(check bool) "re-eval never exceeds the matrix" true
        (e.Timeline.te_reevaluated <= result.Driftrun.dr_cells_total))
    post;
  (* the advertised saving is real and the metrics agree with it *)
  Alcotest.(check bool) "incremental work below full re-evaluation" true
    (result.Driftrun.dr_cells_reevaluated < result.Driftrun.dr_cells_full);
  Alcotest.(check (option int))
    "drift.cells_reevaluated counter"
    (Some result.Driftrun.dr_cells_reevaluated)
    (Feam_obs.Metrics.counter_value "drift.cells_reevaluated");
  Alcotest.(check (option int))
    "drift.cells_total counter"
    (Some (result.Driftrun.dr_cells_total * 4))
    (Feam_obs.Metrics.counter_value "drift.cells_total");
  (match Feam_obs.Metrics.gauge_value "drift.epoch" with
  | Some g -> Alcotest.(check int) "drift.epoch gauge" 4 (int_of_float g)
  | None -> Alcotest.fail "drift.epoch gauge not set");
  Feam_obs.reset ()

let test_sequence_is_deterministic () =
  let specs, benchmarks = Lazy.force small_world in
  let doc result =
    String.concat ""
      (List.map Snapshot.to_jsonl (Driftrun.snapshots result))
    ^ Timeline.render_history (Driftrun.timeline result)
  in
  let a = doc (Driftrun.run ~specs ~benchmarks ~seed ~epochs:3 ()) in
  let b = doc (Driftrun.run ~specs ~benchmarks ~seed ~epochs:3 ()) in
  Alcotest.(check string) "two identical sequences, identical artifacts" a b

(* -- timeline ------------------------------------------------------------ *)

let entry ?(flips = []) ~epoch ~ready ~total ~reevaluated label =
  {
    Timeline.te_epoch = epoch;
    te_hash = Printf.sprintf "%032x" epoch;
    te_label = label;
    te_cells_total = total;
    te_ready = ready;
    te_rate =
      (if total = 0 then 0.0 else float_of_int ready /. float_of_int total);
    te_reevaluated = reevaluated;
    te_flips = flips;
    te_attribution = [];
  }

let regression cell = { Timeline.fe_cell = cell; fe_before = true; fe_after = false }

let test_timeline_roundtrip () =
  let entries =
    [
      entry ~epoch:0 ~ready:18 ~total:21 ~reevaluated:21 "";
      entry ~epoch:1 ~ready:12 ~total:21 ~reevaluated:9 "remove-lib libx @ s"
        ~flips:[ regression "b1->s"; ];
    ]
  in
  let doc = Timeline.render_history entries in
  match Timeline.parse_history doc with
  | Error e -> Alcotest.failf "timeline round-trip: %s" e
  | Ok reparsed ->
    Alcotest.(check string)
      "render . parse is the identity on bytes" doc
      (Timeline.render_history reparsed);
    (* corrupt histories are typed, line-numbered errors *)
    (match Timeline.parse_history (doc ^ "not json\n") with
    | Ok _ -> Alcotest.fail "garbage line should fail"
    | Error e ->
      Alcotest.(check bool) "error carries the line number" true
        (contains ~affix:"line 3" e));
    match Timeline.parse_history (doc ^ Timeline.render_history [ entry ~epoch:1 ~ready:1 ~total:2 ~reevaluated:1 "dup" ]) with
    | Ok _ -> Alcotest.fail "non-increasing epochs should fail"
    | Error e ->
      Alcotest.(check bool) "error mentions the epoch ordering" true
        (contains ~affix:"epoch" e)

let test_timeline_rules_and_gate () =
  let entries =
    [
      entry ~epoch:0 ~ready:20 ~total:21 ~reevaluated:21 "";
      (* a 40% rate drop plus a regression flip of a watched binary *)
      entry ~epoch:1 ~ready:12 ~total:21 ~reevaluated:10 "remove-lib libx @ s"
        ~flips:[ regression "watched->s"; regression "other->s" ];
      (* recovery: flips back to ready are not regressions; the cell
         uses the homed-variant form so the watch's benchmark-prefix
         match is exercised too *)
      entry ~epoch:2 ~ready:20 ~total:21 ~reevaluated:10 "undo"
        ~flips:
          [
            {
              Timeline.fe_cell = "watched@home/stack->s";
              fe_before = false;
              fe_after = true;
            };
          ];
    ]
  in
  let findings = Timeline.check Timeline.default_rules entries in
  (* default rules: rate-drop 0.30 warn fires at epoch 1; regression
     info fires at epoch 1; nothing at epoch 2 *)
  Alcotest.(check (list int))
    "findings pinned to epoch 1" [ 1; 1 ]
    (List.map (fun f -> f.Timeline.fi_epoch) findings);
  Alcotest.(check (list string))
    "severities" [ "warn"; "info" ]
    (List.map
       (fun f -> Timeline.severity_to_string f.Timeline.fi_severity)
       findings);
  Alcotest.(check int) "warn findings exit 1" 1 (Timeline.exit_code findings);
  (* the gate mirrors Engine.gate *)
  Alcotest.(check (result int string)) "--fail-on warn gates" (Ok 1)
    (Timeline.gate ~fail_on:"warn" findings);
  Alcotest.(check (result int string)) "--fail-on error passes warns" (Ok 0)
    (Timeline.gate ~fail_on:"error" findings);
  Alcotest.(check (result int string)) "--fail-on never always passes" (Ok 0)
    (Timeline.gate ~fail_on:"never" findings);
  (match Timeline.gate ~fail_on:"loud" findings with
  | Ok _ -> Alcotest.fail "unknown level must be a usage error"
  | Error e ->
    Alcotest.(check bool) "usage error names the level" true
      (contains ~affix:"loud" e));
  (* a watch rule fires on any flip of the named binary, either way *)
  let watch_findings =
    Timeline.check [ Timeline.Watch ("watched", Timeline.Error) ] entries
  in
  Alcotest.(check (list int))
    "watch fires at both flips" [ 1; 2 ]
    (List.map (fun f -> f.Timeline.fi_epoch) watch_findings);
  Alcotest.(check int) "error findings exit 2" 2
    (Timeline.exit_code watch_findings)

let test_timeline_rules_parse () =
  (match
     Timeline.parse_rules
       "# comment\nrate-drop 0.25 warn\nregression info\nwatch NAS/ep.A error\n"
   with
  | Error e -> Alcotest.failf "rules should parse: %s" e
  | Ok rules ->
    Alcotest.(check (list string))
      "parsed rules render back"
      [ "rate-drop 0.25 warn"; "regression info"; "watch NAS/ep.A error" ]
      (List.map Timeline.rule_to_string rules));
  match Timeline.parse_rules "rate-drop 2.0 warn\n" with
  | Ok _ -> Alcotest.fail "out-of-range threshold should fail"
  | Error e ->
    Alcotest.(check bool) "error carries the line number" true
      (contains ~affix:"line 1" e)

let suite =
  ( "drift",
    [
      Alcotest.test_case "double snapshot is byte-identical" `Quick
        test_double_snapshot_byte_identity;
      Alcotest.test_case "snapshot JSONL round-trip" `Quick
        test_snapshot_roundtrip;
      Alcotest.test_case "snapshot parse errors are typed" `Quick
        test_snapshot_parse_errors;
      Alcotest.test_case "epoch store round-trip" `Quick
        test_epoch_store_roundtrip;
      Alcotest.test_case "attribution golden (synthetic fleet)" `Quick
        test_attribution_golden;
      Alcotest.test_case "merge replaces rows by key" `Quick
        test_merge_replaces_by_key;
      Alcotest.test_case "unknown atoms invalidate conservatively" `Quick
        test_unknown_atom_is_conservative;
      QCheck_alcotest.to_alcotest prop_flips_within_affected;
      Alcotest.test_case "incremental verdicts equal a full pass" `Slow
        test_sequence_incremental_matches_full;
      Alcotest.test_case "sequence artifacts are deterministic" `Slow
        test_sequence_is_deterministic;
      Alcotest.test_case "timeline history round-trip" `Quick
        test_timeline_roundtrip;
      Alcotest.test_case "alert rules and the exit-code gate" `Quick
        test_timeline_rules_and_gate;
      Alcotest.test_case "alert rules file parsing" `Quick
        test_timeline_rules_parse;
    ] )
