(* Tests for the ground-truth dynamic linker and executor: search-path
   precedence, recursive resolution, symbol-version checking, ldd
   emulation and the execution failure taxonomy. *)

open Feam_util
open Feam_sysmodel
open Feam_dynlinker

let v = Version.of_string_exn

(* -- Search --------------------------------------------------------------- *)

let test_search_order () =
  let site, _ = Fixtures.small_site () in
  let env = Env.set (Site.base_env site) "LD_LIBRARY_PATH" "/ld/one:/ld/two" in
  let spec =
    Feam_elf.Spec.make ~rpath:"/my/rpath" ~needed:[ "libc.so.6" ]
      Feam_elf.Types.X86_64
  in
  let dirs = Search.search_dirs site env spec in
  (* rpath first, then LD_LIBRARY_PATH, then cache dirs, then defaults *)
  Alcotest.(check string) "rpath first" "/my/rpath" (List.nth dirs 0);
  Alcotest.(check string) "then ld path" "/ld/one" (List.nth dirs 1);
  Alcotest.(check bool) "defaults last" true (List.mem "/lib64" dirs)

let test_runpath_disables_rpath () =
  let site, _ = Fixtures.small_site () in
  let spec =
    Feam_elf.Spec.make ~rpath:"/my/rpath" ~runpath:"/my/runpath"
      ~needed:[ "libc.so.6" ] Feam_elf.Types.X86_64
  in
  let dirs = Search.search_dirs site (Site.base_env site) spec in
  Alcotest.(check bool) "rpath suppressed" false (List.mem "/my/rpath" dirs);
  Alcotest.(check bool) "runpath used" true (List.mem "/my/runpath" dirs)

let test_locate_precedence () =
  let site, _ = Fixtures.small_site () in
  let vfs = Site.vfs site in
  Vfs.add vfs "/first/libx.so.1" (Vfs.Elf (Feam_elf.Builder.build (Feam_elf.Spec.make Feam_elf.Types.X86_64)));
  Vfs.add vfs "/second/libx.so.1" (Vfs.Elf (Feam_elf.Builder.build (Feam_elf.Spec.make Feam_elf.Types.X86_64)));
  Alcotest.(check (option string)) "first dir wins" (Some "/first/libx.so.1")
    (Search.locate_in_dirs site [ "/first"; "/second" ] "libx.so.1");
  Alcotest.(check (option string)) "none" None
    (Search.locate_in_dirs site [ "/first" ] "liby.so.1")

(* -- Resolve ---------------------------------------------------------------- *)

let compiled ?(glibc = "2.5") ?program () =
  let site, installs = Fixtures.small_site ~glibc () in
  let path, install = Fixtures.compiled_binary ?program site installs in
  (site, installs, path, install)

let parse_at site path =
  match Vfs.find (Site.vfs site) path with
  | Some { Vfs.kind = Vfs.Elf bytes; _ } ->
    Feam_elf.Reader.spec (Feam_elf.Reader.parse_exn bytes)
  | _ -> Alcotest.fail "binary missing"

let test_resolve_closure () =
  let site, _, path, install = compiled () in
  let env = Fixtures.session_env site install in
  let r = Resolve.run site env (parse_at site path) in
  Alcotest.(check bool) "ok" true (Resolve.ok r);
  let names = List.map (fun l -> l.Resolve.lib_name) r.Resolve.resolved in
  (* transitive dependencies of libmpi are in the closure *)
  Alcotest.(check bool) "libopen-pal transitively" true
    (List.mem "libopen-pal.so.0" names);
  Alcotest.(check bool) "libc" true (List.mem "libc.so.6" names)

let test_resolve_missing_without_env () =
  let site, _, path, _ = compiled () in
  (* no module loaded: the MPI libraries are not on any search path *)
  let r = Resolve.run site (Site.base_env site) (parse_at site path) in
  Alcotest.(check bool) "missing libmpi" true (List.mem "libmpi.so.0" r.Resolve.missing);
  Alcotest.(check bool) "not ok" false (Resolve.ok r)

let test_resolve_version_failure () =
  (* binary requiring GLIBC_2.7 on a glibc 2.5 site *)
  let site, installs = Fixtures.small_site ~glibc:"2.5" () in
  let install = List.hd installs in
  let env = Fixtures.session_env site install in
  (* hand-build a binary that references a newer version than the site *)
  let spec =
    Feam_elf.Spec.make
      ~needed:[ "libc.so.6" ]
      ~verneeds:[ { Feam_elf.Spec.vn_file = "libc.so.6"; vn_versions = [ "GLIBC_2.7" ] } ]
      Feam_elf.Types.X86_64
  in
  let r = Resolve.run site env spec in
  Alcotest.(check bool) "version failure" true (r.Resolve.version_failures <> []);
  let f = List.hd r.Resolve.version_failures in
  Alcotest.(check string) "which version" "GLIBC_2.7" f.Resolve.vf_version;
  Alcotest.(check string) "provider" "libc.so.6" f.Resolve.vf_provider;
  (* the consulted provider's load-order position is recorded *)
  Alcotest.(check bool) "scope pos" true (f.Resolve.vf_scope_pos <> None)

let test_resolve_arch_mismatch () =
  let site, _ = Fixtures.small_site () in
  let vfs = Site.vfs site in
  (* install a PPC library under the name a binary needs *)
  let ppc_lib =
    Feam_elf.Builder.build
      (Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_DYN ~soname:"libweird.so.1"
         Feam_elf.Types.PPC64)
  in
  Vfs.add vfs "/lib64/libweird.so.1" (Vfs.Elf ppc_lib);
  let spec = Feam_elf.Spec.make ~needed:[ "libweird.so.1" ] Feam_elf.Types.X86_64 in
  let r = Resolve.run site (Site.base_env site) spec in
  Alcotest.(check bool) "arch mismatch" true
    (List.exists (fun m -> m.Resolve.am_lib = "libweird.so.1") r.Resolve.arch_mismatches)

(* -- Ldd ---------------------------------------------------------------------- *)

let test_ldd_output () =
  let site, _, path, install = compiled () in
  let env = Fixtures.session_env site install in
  let r = Result.get_ok (Ldd.run site env path) in
  let text = Ldd.render path r in
  Alcotest.(check bool) "resolved arrow" true
    (Str_split.contains ~sub:"libmpi.so.0 => /opt/openmpi-1.4-gnu/lib/libmpi.so.0" text);
  Alcotest.(check bool) "version info" true
    (Str_split.contains ~sub:"Version information:" text)

let test_ldd_not_found_lines () =
  let site, _, path, _ = compiled () in
  let r = Result.get_ok (Ldd.run site (Site.base_env site) path) in
  let text = Ldd.render path r in
  Alcotest.(check bool) "not found" true
    (Str_split.contains ~sub:"libmpi.so.0 => not found" text);
  Alcotest.(check bool) "missing listed" true
    (List.mem "libmpi.so.0" (Ldd.missing_libraries r))

let test_ldd_foreign_binary () =
  let site, _ = Fixtures.small_site () in
  let ppc_exec =
    Feam_elf.Builder.build
      (Feam_elf.Spec.make ~needed:[ "libc.so.6" ] Feam_elf.Types.PPC64)
  in
  Vfs.add (Site.vfs site) "/home/user/ppcapp" (Vfs.Elf ppc_exec);
  match Ldd.run site (Site.base_env site) "/home/user/ppcapp" with
  | Error (`Not_dynamic _) -> ()
  | _ -> Alcotest.fail "ldd should refuse foreign binaries"

let test_ldd_unavailable () =
  let site, installs = Fixtures.small_site ~tools:(Tools.with_ldd false Tools.full) () in
  let path, _ = Fixtures.compiled_binary site installs in
  match Ldd.run site (Site.base_env site) path with
  | Error (`Tool_unavailable "ldd") -> ()
  | _ -> Alcotest.fail "expected ldd unavailable"

(* -- Exec ---------------------------------------------------------------------- *)

let quiet_params =
  { Exec.p_transient = 0.0; p_sticky = 0.0; p_copy_abi = 0.0 }

let run_with site env path =
  Exec.run ~params:quiet_params site env ~binary_path:path ~mode:(Exec.Mpi 4)

let test_exec_success () =
  let site, _, path, install = compiled () in
  let env = Fixtures.session_env site install in
  Alcotest.(check string) "success" "success"
    (Exec.outcome_to_string (run_with site env path))

let test_exec_no_stack () =
  let site, _, path, _ = compiled () in
  match run_with site (Site.base_env site) path with
  | Exec.Failure (Exec.Missing_libraries _) -> () (* libs not on path either *)
  | o -> Alcotest.failf "unexpected: %s" (Exec.outcome_to_string o)

let test_exec_wrong_isa () =
  let site, _, path, _ = compiled () in
  let ppc, ppc_installs = Fixtures.ppc_site () in
  (* stage the x86-64 binary on the PPC site *)
  (match Vfs.find (Site.vfs site) path with
  | Some { Vfs.kind = Vfs.Elf bytes; _ } ->
    Vfs.add (Site.vfs ppc) "/home/user/foreign" (Vfs.Elf bytes)
  | _ -> Alcotest.fail "no bytes");
  let env = Fixtures.session_env ppc (List.hd ppc_installs) in
  match run_with ppc env "/home/user/foreign" with
  | Exec.Failure (Exec.Wrong_isa _) -> ()
  | o -> Alcotest.failf "unexpected: %s" (Exec.outcome_to_string o)

let test_exec_i386_on_x86_64 () =
  Alcotest.(check bool) "i386 compatible" true
    (Exec.isa_compatible ~binary_machine:Feam_elf.Types.I386
       ~site_machine:Feam_elf.Types.X86_64);
  Alcotest.(check bool) "reverse not" false
    (Exec.isa_compatible ~binary_machine:Feam_elf.Types.X86_64
       ~site_machine:Feam_elf.Types.I386)

let test_exec_misconfigured_stack () =
  let site, installs =
    Fixtures.small_site
      ~stacks:
        (Some
           [
             ( Fixtures.ompi14 Fixtures.gnu412,
               Stack_install.Misconfigured "admin broke it" );
           ])
      ()
  in
  let install = List.hd installs in
  let path, _ = Fixtures.compiled_binary site installs in
  let env = Fixtures.session_env site install in
  match run_with site env path with
  | Exec.Failure (Exec.Stack_misconfigured _) -> ()
  | o -> Alcotest.failf "unexpected: %s" (Exec.outcome_to_string o)

let test_exec_foreign_defect () =
  (* home site: healthy; target: same impl with a defect affecting the
     home build version *)
  let home, home_installs = Fixtures.small_site ~name:"home" () in
  let home_path, _ = Fixtures.compiled_binary home home_installs in
  let target, target_installs =
    Fixtures.small_site ~name:"target"
      ~stacks:
        (Some
           [
             ( Fixtures.ompi14 Fixtures.gnu445,
               Stack_install.Foreign_binary_defect
                 {
                   Stack_install.affected_build_versions = [ v "1.4" ];
                   symptom = `Floating_point_error;
                 } );
           ])
      ()
  in
  (match Vfs.find (Site.vfs home) home_path with
  | Some { Vfs.kind = Vfs.Elf bytes; _ } ->
    Vfs.add (Site.vfs target) "/home/user/migrated" (Vfs.Elf bytes)
  | _ -> Alcotest.fail "no bytes");
  let env = Fixtures.session_env target (List.hd target_installs) in
  match run_with target env "/home/user/migrated" with
  | Exec.Failure (Exec.Floating_point_error _) -> ()
  | o -> Alcotest.failf "unexpected: %s" (Exec.outcome_to_string o)

let test_exec_serial_mode () =
  let site, _ = Fixtures.small_site () in
  let image =
    Result.get_ok
      (Feam_toolchain.Compile.compile_serial site
         Feam_toolchain.Compile.hello_world_serial)
  in
  Vfs.add (Site.vfs site) "/home/user/hello" (Vfs.Elf image);
  match
    Exec.run ~params:quiet_params site (Site.base_env site)
      ~binary_path:"/home/user/hello" ~mode:Exec.Serial
  with
  | Exec.Success -> ()
  | o -> Alcotest.failf "unexpected: %s" (Exec.outcome_to_string o)

let test_exec_not_executable () =
  let site, _ = Fixtures.small_site () in
  Vfs.add (Site.vfs site) "/home/user/readme" (Vfs.Text "hello");
  match
    Exec.run ~params:quiet_params site (Site.base_env site)
      ~binary_path:"/home/user/readme" ~mode:Exec.Serial
  with
  | Exec.Failure (Exec.Not_executable _) -> ()
  | o -> Alcotest.failf "unexpected: %s" (Exec.outcome_to_string o)

let test_exec_retry_determinism () =
  let site, _, path, install = compiled () in
  let env = Fixtures.session_env site install in
  let a = Exec.run site env ~binary_path:path ~mode:(Exec.Mpi 4) in
  let b = Exec.run site env ~binary_path:path ~mode:(Exec.Mpi 4) in
  Alcotest.(check string) "deterministic"
    (Exec.outcome_to_string a) (Exec.outcome_to_string b)

let suite =
  ( "dynlinker",
    [
      Alcotest.test_case "search order" `Quick test_search_order;
      Alcotest.test_case "runpath disables rpath" `Quick test_runpath_disables_rpath;
      Alcotest.test_case "locate precedence" `Quick test_locate_precedence;
      Alcotest.test_case "resolve closure" `Quick test_resolve_closure;
      Alcotest.test_case "resolve missing" `Quick test_resolve_missing_without_env;
      Alcotest.test_case "resolve version failure" `Quick test_resolve_version_failure;
      Alcotest.test_case "resolve arch mismatch" `Quick test_resolve_arch_mismatch;
      Alcotest.test_case "ldd output" `Quick test_ldd_output;
      Alcotest.test_case "ldd not found" `Quick test_ldd_not_found_lines;
      Alcotest.test_case "ldd foreign binary" `Quick test_ldd_foreign_binary;
      Alcotest.test_case "ldd unavailable" `Quick test_ldd_unavailable;
      Alcotest.test_case "exec success" `Quick test_exec_success;
      Alcotest.test_case "exec no stack" `Quick test_exec_no_stack;
      Alcotest.test_case "exec wrong ISA" `Quick test_exec_wrong_isa;
      Alcotest.test_case "exec i386 compat" `Quick test_exec_i386_on_x86_64;
      Alcotest.test_case "exec misconfigured stack" `Quick test_exec_misconfigured_stack;
      Alcotest.test_case "exec foreign defect" `Quick test_exec_foreign_defect;
      Alcotest.test_case "exec serial" `Quick test_exec_serial_mode;
      Alcotest.test_case "exec not executable" `Quick test_exec_not_executable;
      Alcotest.test_case "exec retry determinism" `Quick test_exec_retry_determinism;
    ] )
