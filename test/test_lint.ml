(* Golden tests for the `feam lint` static-analysis pass: a clean
   source-phase bundle produces no findings (exit 0), and a hand-built
   dirty bundle trips the rule set with exactly the expected text and
   JSON output. *)

open Feam_util
open Feam_core
open Feam_analysis

let v = Version.of_string_exn

(* -- fixtures ---------------------------------------------------------- *)

let description ?soname ?(needed = []) ?rpath ?(verneeds = [])
    ?(machine = Feam_elf.Types.X86_64) ?(elf_class = Feam_elf.Types.C64) path =
  {
    Description.path;
    file_format = "elf64-x86-64";
    machine;
    elf_class;
    soname;
    needed;
    rpath;
    runpath = None;
    verneeds;
    required_glibc = Description.required_glibc_of_verneeds verneeds;
    mpi = None;
    provenance = { Objdump_parse.compiler_banner = None; build_os = None };
  }

let discovery =
  {
    Discovery.env_type = `Guaranteed;
    machine = Some Feam_elf.Types.X86_64;
    elf_class = Some Feam_elf.Types.C64;
    os = Some "CentOS 5.6";
    kernel = Some "2.6.18";
    glibc = Some (v "2.5");
    stacks = [];
    current_stack = None;
  }

let image ?soname ?(needed = []) ?rpath ?verneeds ?verdefs ?dynsyms ?interp
    ?(file_type = Feam_elf.Types.ET_DYN) ?(machine = Feam_elf.Types.X86_64) ()
    =
  Feam_elf.Builder.build
    (Feam_elf.Spec.make ~file_type ?soname ~needed ?rpath ?verneeds ?verdefs
       ?dynsyms ?interp machine)

let import ?version ?(binding = Feam_elf.Spec.Global) name =
  {
    Feam_elf.Spec.sym_name = name;
    sym_defined = false;
    sym_binding = binding;
    sym_version = version;
  }

let export ?version name =
  {
    Feam_elf.Spec.sym_name = name;
    sym_defined = true;
    sym_binding = Feam_elf.Spec.Global;
    sym_version = version;
  }

let copy ~request ~origin ~description:d bytes =
  {
    Bdc.copy_request = request;
    copy_origin_path = origin;
    copy_bytes = bytes;
    copy_declared_size = String.length bytes;
    copy_description = d;
  }

(* A bundle with seeded defects: an unconventional loader, a relative
   and a shadowing RPATH, an unknown and a too-new glibc binding, a
   malformed DT_NEEDED name, a copy whose recorded description is for
   another machine, a major-version conflict, a dependency cycle,
   stale unlocatable bookkeeping — and, at the symbol level, a strong
   and a weak import the staged copies fail to export despite
   satisfying every soname, plus one symbol two copies both define. *)
let dirty_bundle () =
  let root_needed =
    [ "libfoo.so.1"; "libbar.so.2"; "libbogus.so.1abc"; "libc.so.6" ]
  in
  let root_verneeds =
    [
      ("libc.so.6", [ "GLIBC_2.2.5"; "GLIBC_2.12"; "GLIBC_2.99" ]);
      ("libfoo.so.1", [ "FOO_2.0" ]);
      ("libbar.so.2", [ "BAR_2.0" ]);
    ]
  in
  let root_rpath = "../libs:/home/user/oldlibs" in
  let root_bytes =
    image ~needed:root_needed ~rpath:root_rpath
      ~verneeds:
        (List.map
           (fun (vn_file, vn_versions) -> { Feam_elf.Spec.vn_file; vn_versions })
           root_verneeds)
      ~dynsyms:
        [
          import "shared_sym";
          import ~version:"FOO_2.0" "foo_feature_r9";
          import ~version:"BAR_2.0" ~binding:Feam_elf.Spec.Weak "bar_weak";
        ]
      ~interp:"/lib/ld-weird.so.1" ~file_type:Feam_elf.Types.ET_EXEC ()
  in
  let foo_bytes =
    image
      ~soname:(Soname.make ~version:[ 1 ] "libfoo" |> Soname.to_string)
      ~needed:[ "libbar.so.2"; "libc.so.6" ]
      ~verdefs:[ "libfoo.so.1"; "FOO_1.0" ]
      ~dynsyms:[ export ~version:"FOO_1.0" "foo_init"; export "shared_sym" ]
      ()
  in
  let bar_bytes =
    image
      ~soname:(Soname.make ~version:[ 2 ] "libbar" |> Soname.to_string)
      ~needed:[ "libfoo.so.2"; "libfoo.so.1"; "libc.so.6" ]
      ~verdefs:[ "libbar.so.2" ]
      ~dynsyms:[ export "shared_sym" ] ()
  in
  {
    Bundle.created_at = "home";
    binary_description =
      description ~needed:root_needed ~rpath:root_rpath
        ~verneeds:root_verneeds "/home/user/bin/app";
    binary_bytes = Some root_bytes;
    binary_declared_size = String.length root_bytes;
    copies =
      [
        copy ~request:"libfoo.so.1" ~origin:"/usr/lib64/libfoo.so.1"
          ~description:
            (description
               ~soname:(Soname.make ~version:[ 1 ] "libfoo")
               ~needed:[ "libbar.so.2"; "libc.so.6" ]
               ~machine:Feam_elf.Types.PPC64 "/usr/lib64/libfoo.so.1")
          foo_bytes;
        copy ~request:"libbar.so.2" ~origin:"/usr/lib64/libbar.so.2"
          ~description:
            (description
               ~soname:(Soname.make ~version:[ 2 ] "libbar")
               ~needed:[ "libfoo.so.2"; "libfoo.so.1"; "libc.so.6" ]
               "/usr/lib64/libbar.so.2")
          bar_bytes;
      ];
    unlocatable = [ "libwidget.so.3"; "libbar.so.2" ];
    probes =
      [
        (* a probe whose name would escape the staging directory *)
        (let probe_bytes = image () in
         {
           Bundle.probe_name = "../hello_mpi";
           probe_bytes;
           probe_stack_slug = "openmpi-1.4.3";
           probe_declared_size = String.length probe_bytes;
         });
      ];
    source_discovery = discovery;
  }

let dirty_context () =
  Context.of_bundle
    ~target:
      (Context.make_target ~name:"india" ~machine:Feam_elf.Types.X86_64
         ~glibc:(v "2.5") ())
    (dirty_bundle ())

(* A genuine source-phase bundle headed to a compatible site. *)
let clean_context () =
  let home, installs = Fixtures.small_site ~name:"linthome" () in
  let path, install =
    Fixtures.compiled_binary ~program:Fixtures.fortran_program home installs
  in
  let env = Fixtures.session_env home install in
  let bundle =
    Fixtures.run_exn
      (Phases.source_phase Config.default home env ~binary_path:path)
  in
  let target, _ = Fixtures.small_site ~name:"linttarget" ~glibc:"2.12" () in
  Context.of_bundle ~target:(Context.target_of_site target) bundle

(* -- tests -------------------------------------------------------------- *)

let test_clean_bundle () =
  let ctx = clean_context () in
  let findings = Engine.run ctx in
  Alcotest.(check int) "no findings" 0 (List.length findings);
  Alcotest.(check int) "exit code" 0 (Engine.exit_code findings);
  Alcotest.(check string) "summary" "0 errors, 0 warnings, 0 info"
    (Engine.summary findings)

let expected_dirty_text =
  {golden|feam lint: /home/user/bin/app (bundled at home, 2 copies, 1 probes) -> india
error bundle-entry-unsafe   ../hello_mpi: probe name "../hello_mpi" contains a ".." path component and would escape the staging directory
      fix: strip the directory components from the entry name
error glibc-verneed         /home/user/bin/app: requires symbol version GLIBC_2.12 from libc.so.6 but the target provides glibc 2.5
      fix: rebuild on a system with glibc <= 2.5, or migrate to a site providing glibc >= 2.12
error glibc-verneed         /home/user/bin/app: requires symbol version GLIBC_2.99 from libc.so.6 but the target provides glibc 2.5
      fix: rebuild on a system with glibc <= 2.5, or migrate to a site providing glibc >= 2.99
error isa-mismatch          libfoo.so.1: bundled copy is ppc64/64-bit but the application is x86_64/64-bit; the loader will reject it
      fix: replace the copy with a x86_64/64-bit build from a matching site
error rpath-escape          /home/user/bin/app: relative DT_RPATH entry "../libs" resolves against the working directory at the target
      fix: relink with an absolute DT_RPATH
error soname-major-conflict libfoo.so: the closure mixes incompatible major versions .1, .2 (.1: libfoo.so.1 (provides); .1: libfoo.so.1 (required by /home/user/bin/app); .2: libfoo.so.2 (required by libbar.so.2); .1: libfoo.so.1 (required by libbar.so.2))
      fix: align the closure on a single major version of libfoo, or drop the stale copies from the bundle
error stale-bundle          libfoo.so.1: recorded description is stale for the embedded image: machine (recorded ppc64, image x86_64)
      fix: re-run the source phase to regenerate the bundle
error symbol-unresolved     foo_feature_r9@FOO_2.0: imported by /home/user/bin/app but exported by no object in the staged closure (consulted libfoo.so.1)
      fix: re-stage a copy that exports the symbol from a site where the binary runs (feam symcheck prints the full bind log)
warn  dep-cycle             libbar.so.2: dependency cycle libbar.so.2 -> libfoo.so.1 -> libbar.so.2: the staged copies will initialize in an order the source site never exercised
warn  glibc-verneed         /home/user/bin/app: GLIBC_2.99 from libc.so.6 is not a known glibc release; the binding can never be satisfied by a stock C library
warn  interp-mismatch       /home/user/bin/app: PT_INTERP requests /lib/ld-weird.so.1 but the conventional x86_64 loader is /lib64/ld-linux-x86-64.so.2
      fix: relink against the standard loader, or ensure /lib/ld-weird.so.1 exists at every target
warn  rpath-escape          /home/user/bin/app: DT_RPATH entry /home/user/oldlibs precedes LD_LIBRARY_PATH and points outside the bundle: it can shadow the staged library copies at the target
      fix: relink with DT_RUNPATH (or no run path) so the staged copies on LD_LIBRARY_PATH keep precedence
warn  soname-major-unsound  libfoo.so.1: satisfies the soname requirement of /home/user/bin/app yet does not export foo_feature_r9@FOO_2.0: the soname-major acceptance is unsound here
      fix: trust the symbol-level verdict over the soname match: re-stage the provider from a build that exports the symbols
warn  soname-parse          libbogus.so.1abc: DT_NEEDED entry of /home/user/bin/app does not parse as a shared-object name: non-numeric version component "1abc"
      fix: rename the library to the lib<base>.so.<major>[.<minor>] convention so version compatibility can be checked
warn  symbol-interposed     shared_sym: defined by libfoo.so.1 and also by libbar.so.2: the first definition in scope order interposes the rest
      fix: keep a single provider of the symbol in the bundle so binding does not depend on scope order
warn  unresolved-missing    libbogus.so.1abc: required by /home/user/bin/app but neither bundled nor recorded as unlocatable: the source-phase manifest is incomplete
      fix: re-run the source phase to complete the closure
warn  unresolved-missing    libfoo.so.2: required by libbar.so.2 but neither bundled nor recorded as unlocatable: the source-phase manifest is incomplete
      fix: re-run the source phase to complete the closure
warn  unresolved-missing    libwidget.so.3: no bundled copy: execution readiness depends entirely on the target site providing it
      fix: obtain a copy from a site where the binary runs and re-bundle (FEAM's source phase automates this)
info  symbol-unresolved     bar_weak@BAR_2.0: imported by /home/user/bin/app but exported by no object in the staged closure (consulted libbar.so.2)
      fix: re-stage a copy that exports the symbol from a site where the binary runs (feam symcheck prints the full bind log)
info  unresolved-missing    libbar.so.2: recorded as unlocatable at the source, yet the bundle carries a copy that satisfies it
      fix: re-run the source phase to refresh the bundle manifest
8 errors, 10 warnings, 2 info
|golden}

let test_dirty_text_golden () =
  let ctx = dirty_context () in
  let findings = Engine.run ctx in
  Alcotest.(check string) "lint text" expected_dirty_text
    (Engine.render_text ctx findings);
  Alcotest.(check int) "exit code" 2 (Engine.exit_code findings)

let test_dirty_rule_coverage () =
  (* every registered cell rule fires on the dirty fixture (fleet rules
     check the whole-matrix view, not one bundle) *)
  let ctx = dirty_context () in
  let findings = Engine.run ctx in
  let fired =
    List.sort_uniq compare
      (List.map (fun f -> f.Diagnose.rule_id) findings)
  in
  Alcotest.(check (list string)) "all cell rules fire" (Registry.cell_ids ())
    fired

let test_dirty_json_golden () =
  let ctx = dirty_context () in
  let findings = Engine.run ctx in
  let json = Engine.to_json ctx findings in
  (* the rendered JSON must parse back with Feam_util.Json *)
  let parsed = Fixtures.run_exn (Json.parse (Json.render json)) in
  let member name = Option.get (Json.member name parsed) in
  Alcotest.(check (option string)) "binary" (Some "/home/user/bin/app")
    (Json.to_string_opt (member "binary"));
  let summary = member "summary" in
  let count k = Json.to_int_opt (Option.get (Json.member k summary)) in
  Alcotest.(check (option int)) "errors" (Some (Engine.errors findings)) (count "errors");
  Alcotest.(check (option int)) "warnings" (Some (Engine.warnings findings))
    (count "warnings");
  Alcotest.(check (option int)) "exit code" (Some 2) (count "exit_code");
  let listed = Option.get (Json.to_list_opt (member "findings")) in
  Alcotest.(check int) "finding count" (List.length findings) (List.length listed);
  (* findings JSON carries the rule ids in report order *)
  let ids =
    List.filter_map
      (fun f -> Option.bind (Json.member "rule" f) Json.to_string_opt)
      listed
  in
  Alcotest.(check (list string)) "rule ids" (List.map (fun f -> f.Diagnose.rule_id) findings) ids

let test_remedies_from_findings () =
  let ctx = dirty_context () in
  let findings = Engine.run ctx in
  let remedies = Diagnose.remedies_of_findings findings in
  (* info findings carry no remedy; everything else does *)
  Alcotest.(check int) "remedy count"
    (List.length findings - Engine.infos findings)
    (List.length remedies);
  (* findings with a concrete fixit are user-fixable *)
  List.iter
    (fun (r : Diagnose.remedy) ->
      if Feam_sysmodel.Str_split.contains ~sub:" — " r.Diagnose.action then
        Alcotest.(check string) "fixit remedies are user-fixable" "user-fixable"
          (Diagnose.severity_to_string r.Diagnose.severity))
    remedies

let test_report_carries_findings () =
  let ctx = dirty_context () in
  let findings = Engine.run ctx in
  let prediction =
    {
      Predict.verdict = Predict.Not_ready [ "lint fixture" ];
      determinants =
        {
          Predict.isa =
            {
              Predict.isa_compatible = true;
              binary_machine = Feam_elf.Types.X86_64;
              binary_class = Feam_elf.Types.C64;
              site_machine = Some Feam_elf.Types.X86_64;
            };
          stack = None;
          clib =
            { Predict.clib_compatible = true; required = None; available = None };
          libs = None;
        };
    }
  in
  let report =
    Report.make ~findings ~site_name:"india" ~binary:"/home/user/bin/app"
      prediction
  in
  let text = Report.render report in
  Alcotest.(check bool) "lint section present" true
    (Feam_sysmodel.Str_split.contains ~sub:"static analysis findings:" text);
  Alcotest.(check bool) "finding rendered" true
    (Feam_sysmodel.Str_split.contains ~sub:"soname-major-conflict" text);
  let json = Fixtures.run_exn (Json.parse (Json.render (Report.to_json report))) in
  match Json.member "lint" json with
  | Some (Json.List l) ->
    Alcotest.(check int) "json lint entries" (List.length findings) (List.length l)
  | _ -> Alcotest.fail "report JSON lacks a lint list"

(* -- the --fail-on gate ------------------------------------------------- *)

let test_gate () =
  let finding level =
    {
      Diagnose.level;
      rule_id = "isa-mismatch";
      subject = "app";
      message = "m";
      fixit = None;
    }
  in
  let errors = [ finding Diagnose.Error ] in
  let warnings = [ finding Diagnose.Warn ] in
  Alcotest.(check (result int string)) "warn gates warnings" (Ok 1)
    (Engine.gate ~fail_on:"warn" warnings);
  Alcotest.(check (result int string)) "warn gates errors" (Ok 2)
    (Engine.gate ~fail_on:"warn" errors);
  Alcotest.(check (result int string)) "error passes warnings" (Ok 0)
    (Engine.gate ~fail_on:"error" warnings);
  Alcotest.(check (result int string)) "error gates errors" (Ok 2)
    (Engine.gate ~fail_on:"error" errors);
  Alcotest.(check (result int string)) "never passes everything" (Ok 0)
    (Engine.gate ~fail_on:"never" errors);
  (* the regression: an unknown severity must be rejected with a usage
     message naming the valid set, never treated as the default *)
  match Engine.gate ~fail_on:"eror" errors with
  | Ok _ -> Alcotest.fail "unknown --fail-on level silently accepted"
  | Error msg ->
    List.iter
      (fun level ->
        Alcotest.(check bool)
          (Printf.sprintf "usage message names %S" level)
          true
          (Feam_sysmodel.Str_split.contains ~sub:level msg))
      Engine.fail_on_levels

(* -- registry-derived docs ---------------------------------------------- *)

let test_registry_count () =
  Alcotest.(check int) "count matches the registered rules"
    (List.length (Registry.all ()))
    (Registry.count ());
  Alcotest.(check int) "rule table row per rule"
    (Registry.count () + 2)
    (List.length
       (String.split_on_char '\n' (String.trim (Registry.markdown_table ()))))

(* The README rule table is generated from the registry; re-derive it
   and compare the table region byte-for-byte so docs cannot drift from
   the code (the drift this test exists for: a 12-row table against 13
   registered rules). *)
let test_readme_table_in_sync () =
  let readme =
    In_channel.with_open_text "../README.md" In_channel.input_all
  in
  let expected = Registry.markdown_table () in
  Alcotest.(check bool)
    "README contains the registry-derived rule table verbatim" true
    (Feam_sysmodel.Str_split.contains ~sub:expected readme)

let suite =
  ( "lint",
    [
      Alcotest.test_case "clean bundle is clean" `Quick test_clean_bundle;
      Alcotest.test_case "dirty text golden" `Quick test_dirty_text_golden;
      Alcotest.test_case "dirty fires every rule" `Quick test_dirty_rule_coverage;
      Alcotest.test_case "dirty json golden" `Quick test_dirty_json_golden;
      Alcotest.test_case "remedies from findings" `Quick test_remedies_from_findings;
      Alcotest.test_case "report carries findings" `Quick test_report_carries_findings;
      Alcotest.test_case "fail-on gate rejects unknown levels" `Quick test_gate;
      Alcotest.test_case "registry count and table" `Quick test_registry_count;
      Alcotest.test_case "README rule table in sync" `Quick
        test_readme_table_in_sync;
    ] )
