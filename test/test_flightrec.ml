(* Tests for the flight recorder: the recorder's golden journal text
   and idempotent flush, journal parsing (schema gate, malformed
   input), the landmark records a real pipeline run journals, journal
   determinism across identical runs, byte-for-byte replay, graceful
   replay of a tampered journal, and cross-run diffing that pins the
   changed evidence atom and the flipped determinant. *)

open Feam_util
module Recorder = Feam_flightrec.Recorder
module Journal = Feam_flightrec.Journal
module Diff = Feam_flightrec.Diff

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* Run [f] with the recorder armed; returns (result, journal text). *)
let with_recorder ?(tool = "test") f =
  let buf = Buffer.create 4096 in
  Recorder.configure ~tool
    ~emit:(fun body ->
      Buffer.clear buf;
      Buffer.add_string buf body)
    ();
  let result =
    match f () with
    | x ->
      Recorder.flush ();
      Recorder.disable ();
      x
    | exception e ->
      Recorder.disable ();
      raise e
  in
  (result, Buffer.contents buf)

let parse_exn text =
  match Journal.parse text with
  | Ok j -> j
  | Error e -> Alcotest.failf "journal does not parse: %s" e

(* -- recorder ----------------------------------------------------------- *)

let test_recorder_golden () =
  Feam_obs.reset ();
  let emissions = ref [] in
  Recorder.configure ~tool:"t" ~emit:(fun b -> emissions := b :: !emissions) ();
  Recorder.evidence ~stage:"s" ~kind:"k" [ ("x", Json.Int 1) ];
  Recorder.decision ~determinant:"d" ~verdict:"pass" [ ("y", Json.Str "z") ];
  Recorder.payload ~kind:"p" (Json.Str "body");
  Recorder.flush ();
  Recorder.flush ();
  Alcotest.(check int)
    "second flush with no new records emits nothing" 1
    (List.length !emissions);
  let golden =
    "{\"type\":\"journal\",\"schema\":1,\"tool\":\"t\"}\n"
    ^ "{\"type\":\"evidence\",\"seq\":1,\"span\":null,\"stage\":\"s\",\
       \"kind\":\"k\",\"x\":1}\n"
    ^ "{\"type\":\"decision\",\"seq\":2,\"span\":null,\"determinant\":\"d\",\
       \"verdict\":\"pass\",\"evidence\":{\"y\":\"z\"}}\n"
    ^ "{\"type\":\"payload\",\"seq\":3,\"span\":null,\"kind\":\"p\",\
       \"data\":\"body\"}\n"
  in
  Alcotest.(check string) "rendered journal" golden (List.hd !emissions);
  (* metrics ride along: per-type record counters + size gauge *)
  Alcotest.(check (option int))
    "evidence records counted" (Some 1)
    (Feam_obs.Metrics.counter_value
       ~labels:[ ("type", "evidence") ]
       "flightrec.records");
  (* the obs-level flush drains the journal hook too *)
  Recorder.record "extra";
  Feam_obs.flush ();
  Alcotest.(check int)
    "Feam_obs.flush reaches the recorder" 2
    (List.length !emissions);
  Recorder.disable ();
  Feam_obs.reset ()

let test_disabled_recorder_is_silent () =
  Feam_obs.reset ();
  Alcotest.(check bool) "off by default" false (Recorder.enabled ());
  Recorder.evidence ~stage:"s" ~kind:"k" [];
  Recorder.flush ();
  Alcotest.(check (option int))
    "no metrics recorded while disabled" None
    (Feam_obs.Metrics.counter_value
       ~labels:[ ("type", "evidence") ]
       "flightrec.records")

(* -- journal parsing ----------------------------------------------------- *)

let test_parse_rejects_bad_input () =
  let reject label text =
    match Journal.parse text with
    | Ok _ -> Alcotest.failf "%s unexpectedly parsed" label
    | Error _ -> ()
  in
  reject "empty input" "";
  reject "non-journal document" "{\"type\":\"span\",\"id\":1}\n";
  reject "garbage" "not json\n";
  reject "journal from the future"
    (Printf.sprintf "{\"type\":\"journal\",\"schema\":%d,\"tool\":\"t\"}\n"
       (Recorder.schema_version + 1));
  reject "malformed record line"
    "{\"type\":\"journal\",\"schema\":1,\"tool\":\"t\"}\n{oops\n"

let test_parse_roundtrip () =
  Feam_obs.reset ();
  let (), text =
    with_recorder (fun () ->
        Recorder.evidence ~stage:"s" ~kind:"k" [ ("x", Json.Int 1) ];
        Recorder.record "custom" ~fields:[ ("f", Json.Bool true) ])
  in
  let j = parse_exn text in
  Alcotest.(check int) "schema" Recorder.schema_version j.Journal.schema;
  Alcotest.(check string) "tool" "test" j.Journal.tool;
  Alcotest.(check int) "two records" 2 (List.length j.Journal.records);
  (match Journal.find ~kind:"custom" j with
  | Some r ->
    Alcotest.(check int) "seq stamped" 2 r.Journal.seq;
    Alcotest.(check (option bool))
      "unknown record types are preserved with their fields" (Some true)
      (Option.bind (Journal.field "f" r) Json.to_bool_opt)
  | None -> Alcotest.fail "custom record lost");
  Feam_obs.reset ()

(* -- the pipeline's journal ---------------------------------------------- *)

(* Source phase + extended target phase over two fixture sites — the
   same work `feam predict --journal` records.  One system library is
   deleted from the target so the resolution model does real work (and
   journals its decision). *)
let run_pipeline ?(target_glibc = "2.5") () =
  let home, home_installs = Fixtures.small_site ~name:"fr-home" () in
  let target, _ = Fixtures.small_site ~name:"fr-target" ~glibc:target_glibc () in
  Feam_sysmodel.Vfs.remove (Feam_sysmodel.Site.vfs target) "/lib64/libnsl.so.1";
  let path, install = Fixtures.compiled_binary home home_installs in
  let env = Fixtures.session_env home install in
  let config = Feam_core.Config.default in
  match Feam_core.Phases.source_phase config home env ~binary_path:path with
  | Error e -> Alcotest.failf "source phase failed: %s" e
  | Ok bundle -> (
    match
      Feam_core.Phases.target_phase config target
        (Feam_sysmodel.Site.base_env target)
        ~bundle ()
    with
    | Error e -> Alcotest.failf "target phase failed: %s" e
    | Ok report -> report)

let journaled_run ?target_glibc () =
  let report, text = with_recorder (run_pipeline ?target_glibc) in
  (report, parse_exn text)

let test_pipeline_journal_landmarks () =
  Feam_obs.reset ();
  let report, j = journaled_run () in
  Alcotest.(check bool)
    "pipeline predicted ready" true
    (Feam_core.Predict.is_ready (Feam_core.Report.prediction report));
  (* evidence from every gathering stage *)
  let stages =
    List.filter_map (Journal.str_field "stage") (Journal.find_all ~kind:"evidence" j)
  in
  List.iter
    (fun stage ->
      Alcotest.(check bool)
        (Printf.sprintf "evidence from stage %s" stage)
        true (List.mem stage stages))
    [ "bdc"; "edc"; "probe"; "dynlinker" ];
  (* a decision per determinant, plus resolution and the final verdict *)
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "decision for %s" d)
        true
        (Journal.last_decision ~determinant:d j <> None))
    [ "isa"; "glibc"; "mpi_stack"; "shared_libraries"; "resolve"; "predict" ];
  (* the payloads replay rebuilds the run from *)
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Printf.sprintf "%s payload present" kind)
        true
        (Journal.payload ~kind j <> None))
    [ "config"; "description"; "discovery" ];
  (* run + phase + report bookkeeping *)
  Alcotest.(check bool) "run record" true (Journal.find ~kind:"run" j <> None);
  Alcotest.(check int) "two phase records" 2
    (List.length (Journal.find_all ~kind:"phase" j));
  match Journal.last ~kind:"report" j with
  | None -> Alcotest.fail "no report record"
  | Some r ->
    Alcotest.(check (option string))
      "report names the target site" (Some "fr-target")
      (Journal.str_field "site" r);
    Alcotest.(check bool) "report text recorded" true
      (Journal.str_field "text" r <> None)

let test_identical_runs_journal_identically () =
  Feam_obs.reset ();
  let _, text_a = with_recorder (fun () -> run_pipeline ()) in
  let _, text_b = with_recorder (fun () -> run_pipeline ()) in
  Alcotest.(check string) "byte-identical journals" text_a text_b;
  let d = Diff.compare (parse_exn text_a) (parse_exn text_b) in
  Alcotest.(check bool) "diff of identical runs is empty" true (Diff.is_empty d);
  Alcotest.(check string)
    "and says so" "journal diff: no differences\n" (Diff.render_text d)

(* -- replay -------------------------------------------------------------- *)

let test_replay_reproduces_report () =
  Feam_obs.reset ();
  let report, j = journaled_run () in
  match Feam_core.Replay.of_journal j with
  | Error e -> Alcotest.failf "replay failed: %s" e
  | Ok outcome ->
    Alcotest.(check bool)
      "replay matches the recorded report byte-for-byte" true
      outcome.Feam_core.Replay.matches;
    Alcotest.(check string)
      "replayed text equals the live render"
      (Feam_core.Report.render report)
      outcome.Feam_core.Replay.rendered

let test_replay_not_ready_run () =
  Feam_obs.reset ();
  (* an ancient target C library: the live run is not ready, and replay
     must reproduce that report too *)
  let report, j = journaled_run ~target_glibc:"2.0" () in
  Alcotest.(check bool)
    "live run not ready" false
    (Feam_core.Predict.is_ready (Feam_core.Report.prediction report));
  match Feam_core.Replay.of_journal j with
  | Error e -> Alcotest.failf "replay failed: %s" e
  | Ok outcome ->
    Alcotest.(check bool)
      "not-ready replay still matches byte-for-byte" true
      outcome.Feam_core.Replay.matches

let test_replay_tampered_journal () =
  Feam_obs.reset ();
  let _, j = journaled_run () in
  (* flip the recorded MPI-stack outcome: no probe succeeded *)
  let tampered_records =
    List.map
      (fun (r : Journal.record) ->
        if
          r.Journal.kind = "decision"
          && Journal.str_field "determinant" r = Some "mpi_stack"
        then
          {
            r with
            Journal.fields =
              [
                ("determinant", Json.Str "mpi_stack");
                ("verdict", Json.Str "fail");
                ( "evidence",
                  Json.Obj
                    [ ("functioning", Json.Null); ("probe_failures", Json.List []) ]
                );
              ];
          }
        else r)
      j.Journal.records
  in
  let tampered = { j with Journal.records = tampered_records } in
  match Feam_core.Replay.of_journal tampered with
  | Error e -> Alcotest.failf "tampered replay should still run: %s" e
  | Ok outcome ->
    Alcotest.(check bool)
      "tampered evidence flips the replayed verdict" false
      (Feam_core.Predict.is_ready
         (Feam_core.Report.prediction outcome.Feam_core.Replay.report));
    Alcotest.(check bool)
      "and no longer matches the recorded text" false
      outcome.Feam_core.Replay.matches

let test_replay_requires_payloads () =
  Feam_obs.reset ();
  let _, j = journaled_run () in
  let without_description =
    {
      j with
      Journal.records =
        List.filter
          (fun (r : Journal.record) ->
            not
              (r.Journal.kind = "payload"
              && Journal.str_field "kind" r = Some "description"))
          j.Journal.records;
    }
  in
  match Feam_core.Replay.of_journal without_description with
  | Ok _ -> Alcotest.fail "replay without a description payload should error"
  | Error e ->
    Alcotest.(check bool)
      "error names the missing payload" true
      (contains ~affix:"description" e)

(* -- diff ---------------------------------------------------------------- *)

let test_diff_pins_changed_fact_and_flip () =
  Feam_obs.reset ();
  let _, a = journaled_run () in
  let _, b = journaled_run ~target_glibc:"2.0" () in
  let d = Diff.compare a b in
  Alcotest.(check bool) "runs differ" false (Diff.is_empty d);
  Alcotest.(check bool) "overall verdict flipped" true (Diff.report_flipped d);
  (* the changed environment fact is pinned by name and both values *)
  (match
     List.find_opt (fun c -> c.Diff.path = "glibc") d.Diff.discovery_changes
   with
  | None -> Alcotest.fail "diff does not pin the discovery glibc atom"
  | Some c ->
    Alcotest.(check (option string)) "old value" (Some "2.5") c.Diff.a;
    Alcotest.(check (option string)) "new value" (Some "2.0") c.Diff.b);
  (* ...and the determinant it flipped *)
  (match
     List.find_opt
       (fun dd -> dd.Diff.dd_determinant = "glibc")
       d.Diff.determinants
   with
  | None -> Alcotest.fail "glibc determinant not in the diff"
  | Some dd ->
    Alcotest.(check bool) "glibc determinant flipped" true dd.Diff.dd_flipped;
    Alcotest.(check (option string))
      "verdict a" (Some "pass") dd.Diff.dd_verdict_a;
    Alcotest.(check (option string))
      "verdict b" (Some "fail") dd.Diff.dd_verdict_b);
  (* the text rendering names fact and flip *)
  let text = Diff.render_text d in
  List.iter
    (fun affix ->
      Alcotest.(check bool)
        (Printf.sprintf "text contains %S" affix)
        true
        (contains ~affix text))
    [ "glibc: 2.5 -> 2.0"; "determinant glibc: pass -> fail  [FLIPPED]";
      "verdict: ready -> not ready  [FLIPPED]" ];
  (* and so does the JSON *)
  let json = Diff.to_json d in
  Alcotest.(check (option bool))
    "json identical:false" (Some false)
    (Option.bind (Json.member "identical" json) Json.to_bool_opt);
  Alcotest.(check (option bool))
    "json verdict.flipped" (Some true)
    Option.(
      bind
        (bind (Json.member "verdict" json) (Json.member "flipped"))
        Json.to_bool_opt)

(* -- diff hardening: of_strings, ordering invariance, typed errors ------- *)

let test_diff_of_strings_identical () =
  Feam_obs.reset ();
  let _, text = with_recorder (fun () -> run_pipeline ()) in
  match Diff.of_strings ~a:text ~b:text with
  | Error e ->
    Alcotest.failf "identical journals: %s" (Diff.journal_error_to_string e)
  | Ok d ->
    Alcotest.(check bool)
      "identical journals reduce to the explicitly-empty diff" true
      (Diff.is_empty d);
    Alcotest.(check bool) "Diff.empty is empty too" true
      (Diff.is_empty Diff.empty);
    Alcotest.(check string)
      "and render the no-difference notice"
      "journal diff: no differences\n" (Diff.render_text d)

let test_diff_atoms_order_invariance () =
  let a = [ ("x", "1"); ("y", "2"); ("z", "3") ] in
  let b = [ ("y", "2"); ("z", "9"); ("w", "4") ] in
  let d = Diff.diff_atoms a b in
  Alcotest.(check bool)
    "atom order on either side never affects the diff" true
    (d = Diff.diff_atoms (List.rev a) (List.rev b));
  Alcotest.(check (list string))
    "output is path-sorted" [ "w"; "x"; "z" ]
    (List.map (fun c -> c.Diff.path) d)

let test_diff_of_strings_truncated () =
  Feam_obs.reset ();
  let _, text = with_recorder (fun () -> run_pipeline ()) in
  let truncated = String.sub text 0 (String.length text - 2) in
  match Diff.of_strings ~a:text ~b:truncated with
  | Ok _ -> Alcotest.fail "a truncated journal body should not diff"
  | Error e ->
    Alcotest.(check bool) "the error blames side B" true (e.Diff.je_side = `B);
    Alcotest.(check bool)
      "and its rendering names the journal" true
      (contains ~affix:"journal B" (Diff.journal_error_to_string e))

let test_diff_of_strings_schema_mismatch () =
  Feam_obs.reset ();
  let _, text = with_recorder (fun () -> run_pipeline ()) in
  let body =
    match String.index_opt text '\n' with
    | None -> Alcotest.fail "journal has no header line"
    | Some i -> String.sub text i (String.length text - i)
  in
  let bumped =
    "{\"type\":\"journal\",\"schema\":99,\"tool\":\"test\"}" ^ body
  in
  match Diff.of_strings ~a:bumped ~b:text with
  | Ok _ -> Alcotest.fail "a newer-schema journal should not diff"
  | Error e ->
    Alcotest.(check bool) "the error blames side A" true (e.Diff.je_side = `A);
    Alcotest.(check bool)
      "and names the schema" true
      (contains ~affix:"schema" e.Diff.je_reason)

(* -- evalharness cell journals ------------------------------------------- *)

let test_matrix_cell_journal_replays () =
  Feam_obs.reset ();
  let params = Feam_evalharness.Params.default in
  let sites = Feam_evalharness.Sites.build_all params in
  let binaries =
    Feam_evalharness.Testset.build params sites [ List.hd Feam_suites.Npb.all ]
  in
  let binary = List.hd binaries in
  let target =
    match
      List.find_opt
        (fun s ->
          Feam_sysmodel.Site.name s
          <> Feam_sysmodel.Site.name binary.Feam_evalharness.Testset.home
          && Feam_evalharness.Migrate.has_matching_impl binary s)
        sites
    with
    | Some s -> s
    | None -> Alcotest.fail "no matching target site in the eval world"
  in
  let written = ref [] in
  let write ~name body = written := (name, body) :: !written in
  let name = Feam_evalharness.Journals.journal_cell ~write binary target in
  Alcotest.(check bool)
    "writer received the named journal" true
    (List.mem_assoc name !written);
  let j = parse_exn (List.assoc name !written) in
  Alcotest.(check string) "journaled by evaltool" "evaltool" j.Journal.tool;
  match Feam_core.Replay.of_journal j with
  | Error e -> Alcotest.failf "cell replay failed: %s" e
  | Ok outcome ->
    Alcotest.(check bool)
      "matrix cell replays byte-for-byte" true
      outcome.Feam_core.Replay.matches

let suite =
  ( "flightrec",
    [
      Alcotest.test_case "recorder golden + idempotent flush" `Quick
        test_recorder_golden;
      Alcotest.test_case "disabled recorder is silent" `Quick
        test_disabled_recorder_is_silent;
      Alcotest.test_case "parse rejects bad input" `Quick
        test_parse_rejects_bad_input;
      Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
      Alcotest.test_case "pipeline journal landmarks" `Quick
        test_pipeline_journal_landmarks;
      Alcotest.test_case "identical runs journal identically" `Quick
        test_identical_runs_journal_identically;
      Alcotest.test_case "replay reproduces the report" `Quick
        test_replay_reproduces_report;
      Alcotest.test_case "replay of a not-ready run" `Quick
        test_replay_not_ready_run;
      Alcotest.test_case "tampered journal replays gracefully" `Quick
        test_replay_tampered_journal;
      Alcotest.test_case "replay requires the payloads" `Quick
        test_replay_requires_payloads;
      Alcotest.test_case "diff pins the changed fact and flip" `Quick
        test_diff_pins_changed_fact_and_flip;
      Alcotest.test_case "diff of identical journal bodies is empty" `Quick
        test_diff_of_strings_identical;
      Alcotest.test_case "diff_atoms is atom-order invariant" `Quick
        test_diff_atoms_order_invariance;
      Alcotest.test_case "truncated journal body is a typed error" `Quick
        test_diff_of_strings_truncated;
      Alcotest.test_case "newer-schema journal body is a typed error" `Quick
        test_diff_of_strings_schema_mismatch;
      Alcotest.test_case "matrix cell journal replays" `Quick
        test_matrix_cell_journal_replays;
    ] )
