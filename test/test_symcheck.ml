(* The symcheck pass: binding order, version matching, the
   definitive-miss soundness policy, interposition detection, the
   malformed-input behaviour of the .dynsym/.gnu.version parsers, and
   the acceptance scenario — a staged library that keeps its soname
   major yet drops an exported symbol, which the library-level rules
   accept and only the symbol walk refutes. *)

open Feam_util
open Feam_core
open Feam_analysis
module S = Feam_symcheck.Symcheck

let v = Version.of_string_exn

let import ?version ?(binding = Feam_elf.Spec.Global) name =
  {
    Feam_elf.Spec.sym_name = name;
    sym_defined = false;
    sym_binding = binding;
    sym_version = version;
  }

let export ?version name =
  {
    Feam_elf.Spec.sym_name = name;
    sym_defined = true;
    sym_binding = Feam_elf.Spec.Global;
    sym_version = version;
  }

let spec ?soname ?(needed = []) ?(verneeds = []) ?(verdefs = [])
    ?(dynsyms = []) () =
  Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_DYN ?soname ~needed
    ~verneeds:
      (List.map
         (fun (vn_file, vn_versions) -> { Feam_elf.Spec.vn_file; vn_versions })
         verneeds)
    ~verdefs ~dynsyms Feam_elf.Types.X86_64

let member label s = { S.mb_label = label; mb_spec = s }

(* -- binding semantics --------------------------------------------------- *)

let test_first_definition_wins () =
  let r =
    S.run
      [
        member "a.out"
          (spec ~needed:[ "liba.so.1"; "libb.so.1" ] ~dynsyms:[ import "f" ] ());
        member "liba.so.1" (spec ~soname:"liba.so.1" ~dynsyms:[ export "f" ] ());
        member "libb.so.1" (spec ~soname:"libb.so.1" ~dynsyms:[ export "f" ] ());
      ]
  in
  Alcotest.(check bool) "complete" true r.S.complete;
  (match r.S.bindings with
  | [ b ] ->
    Alcotest.(check string) "provider" "liba.so.1" b.S.bd_provider;
    Alcotest.(check int) "provider position" 1 b.S.bd_provider_pos
  | bs -> Alcotest.failf "expected one binding, got %d" (List.length bs));
  match r.S.interpositions with
  | [ ip ] ->
    Alcotest.(check string) "interposed symbol" "f" ip.S.ip_symbol;
    Alcotest.(check string) "winner" "liba.so.1" ip.S.ip_winner;
    Alcotest.(check (list string)) "shadowed" [ "libb.so.1" ] ip.S.ip_shadowed
  | ips -> Alcotest.failf "expected one interposition, got %d" (List.length ips)

let test_versioned_binding () =
  let root =
    member "a.out"
      (spec ~needed:[ "liba.so.1" ]
         ~verneeds:[ ("liba.so.1", [ "A_2.0" ]) ]
         ~dynsyms:[ import ~version:"A_2.0" "f" ]
         ())
  in
  (* a verdef carrying the version satisfies the reference *)
  let versioned =
    member "liba.so.1"
      (spec ~soname:"liba.so.1"
         ~verdefs:[ "liba.so.1"; "A_2.0" ]
         ~dynsyms:[ export ~version:"A_2.0" "f" ]
         ())
  in
  let r = S.run [ root; versioned ] in
  Alcotest.(check bool) "versioned bind ok" true (S.ok r);
  Alcotest.(check int) "bound" 1 (List.length r.S.bindings);
  (* a provider that predates symbol versioning (no verdefs) is
     accepted too, as ld.so does with a warning *)
  let unversioned =
    member "liba.so.1"
      (spec ~soname:"liba.so.1" ~dynsyms:[ export "f" ] ())
  in
  let r = S.run [ root; unversioned ] in
  Alcotest.(check bool) "pre-versioning provider ok" true (S.ok r)

let test_versioned_miss_definitive () =
  (* the attributed provider is present but defines only A_1.0: a
     definitive miss — the refutation the soname heuristic cannot see *)
  let r =
    S.run
      [
        member "a.out"
          (spec ~needed:[ "liba.so.1" ]
             ~verneeds:[ ("liba.so.1", [ "A_2.0" ]) ]
             ~dynsyms:[ import ~version:"A_2.0" "f" ]
             ());
        member "liba.so.1"
          (spec ~soname:"liba.so.1"
             ~verdefs:[ "liba.so.1"; "A_1.0" ]
             ~dynsyms:[ export ~version:"A_1.0" "f" ]
             ());
      ]
  in
  Alcotest.(check bool) "not ok" false (S.ok r);
  match S.overturns r with
  | [ m ] ->
    Alcotest.(check (option string)) "consulted" (Some "liba.so.1")
      m.S.miss_expected;
    Alcotest.(check bool) "definitive" true m.S.miss_definitive
  | ms -> Alcotest.failf "expected one overturn, got %d" (List.length ms)

let test_versioned_miss_absent_provider_skipped () =
  (* the verneed attributes the version to an object outside the
     scope: a library-level rule's finding, not a symbol-level one *)
  let r =
    S.run
      [
        member "a.out"
          (spec ~needed:[ "libgone.so.1" ]
             ~verneeds:[ ("libgone.so.1", [ "G_1.0" ]) ]
             ~dynsyms:[ import ~version:"G_1.0" "f" ]
             ());
      ]
  in
  Alcotest.(check bool) "ok" true (S.ok r);
  Alcotest.(check int) "no strong misses" 0 (List.length r.S.unresolved_strong)

let test_unversioned_miss_needs_complete_scope () =
  let root needed =
    member "a.out" (spec ~needed ~dynsyms:[ import "g" ] ())
  in
  let liba = member "liba.so.1" (spec ~soname:"liba.so.1" ()) in
  (* an absent DT_NEEDED could explain the miss: advisory only *)
  let r = S.run [ root [ "liba.so.1"; "libgone.so.1" ]; liba ] in
  Alcotest.(check bool) "incomplete scope" false r.S.complete;
  Alcotest.(check bool) "ok despite miss" true (S.ok r);
  (match r.S.unresolved_strong with
  | [ m ] -> Alcotest.(check bool) "advisory" false m.S.miss_definitive
  | ms -> Alcotest.failf "expected one miss, got %d" (List.length ms));
  (* a complete scope turns the same miss definitive *)
  let r = S.run [ root [ "liba.so.1" ]; liba ] in
  Alcotest.(check bool) "complete scope" true r.S.complete;
  Alcotest.(check bool) "refuted" false (S.ok r)

let test_weak_miss_is_not_an_overturn () =
  let r =
    S.run
      [
        member "a.out"
          (spec
             ~dynsyms:[ import ~binding:Feam_elf.Spec.Weak "maybe_hook" ]
             ());
      ]
  in
  Alcotest.(check bool) "ok" true (S.ok r);
  Alcotest.(check int) "weak recorded" 1 (List.length r.S.unresolved_weak)

let test_ignore_needed_keeps_scope_complete () =
  let scope =
    [ member "a.out" (spec ~needed:[ "libc.so.6" ] ()) ]
  in
  let r = S.run scope in
  Alcotest.(check bool) "libc counts against" false r.S.complete;
  let r = S.run ~ignore_needed:(fun n -> n = "libc.so.6") scope in
  Alcotest.(check bool) "libc exempted" true r.S.complete

(* -- malformed .dynsym/.gnu.version images ------------------------------- *)

(* Little-endian field surgery on built images. *)
let u16_at s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)

let u64_at s off =
  let b i = Char.code s.[off + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  lor (b 4 lsl 32) lor (b 5 lsl 40) lor (b 6 lsl 48) lor (b 7 lsl 56)

let patch image off values =
  let b = Bytes.of_string image in
  List.iteri (fun i v -> Bytes.set b (off + i) (Char.chr (v land 0xff))) values;
  Bytes.to_string b

let patch_u16 image off v = patch image off [ v; v lsr 8 ]
let patch_u64 image off v = patch image off [ v; v lsr 8; v lsr 16; v lsr 24; v lsr 32; v lsr 40; v lsr 48; v lsr 56 ]

(* File offset of section [name]'s header (C64 layout). *)
let section_header_off image name =
  let shoff = u64_at image 40 in
  let shentsize = u16_at image 58 in
  let reader = Feam_elf.Reader.parse_exn image in
  let idx =
    match
      List.mapi (fun i s -> (i, s)) (Feam_elf.Reader.sections reader)
      |> List.find_opt (fun (_, s) -> s.Feam_elf.Reader.name = name)
    with
    | Some (i, _) -> i
    | None -> Alcotest.failf "no section %s" name
  in
  shoff + (idx * shentsize)

let symbol_image () =
  Feam_elf.Builder.build
    (spec ~soname:"libsym.so.1" ~needed:[ "libc.so.6" ]
       ~verneeds:[ ("libc.so.6", [ "GLIBC_2.2.5" ]) ]
       ~verdefs:[ "libsym.so.1"; "SYM_1.0" ]
       ~dynsyms:
         [
           export ~version:"SYM_1.0" "sym_init";
           import ~version:"GLIBC_2.2.5" "memcpy";
         ]
       ())

let parsed_dynsyms image =
  match Feam_elf.Reader.spec_of_bytes image with
  | Ok s -> s.Feam_elf.Spec.dynsyms
  | Error e -> Alcotest.failf "parse: %s" (Feam_elf.Reader.error_to_string e)

let test_out_of_range_versym_degrades () =
  let image = symbol_image () in
  (match parsed_dynsyms image with
  | [ d; _ ] ->
    Alcotest.(check (option string)) "pristine version" (Some "SYM_1.0")
      d.Feam_elf.Spec.sym_version
  | ds -> Alcotest.failf "expected 2 dynsyms, got %d" (List.length ds));
  (* point symbol 1's version entry at an index no verdef/verneed
     defines: the parse must survive and drop to unversioned *)
  let reader = Feam_elf.Reader.parse_exn image in
  let versym =
    Option.get (Feam_elf.Reader.section_by_name reader ".gnu.version")
  in
  let mutated =
    patch_u16 image (versym.Feam_elf.Reader.sh_offset + 2) 0x7ffe
  in
  match parsed_dynsyms mutated with
  | [ d; _ ] ->
    Alcotest.(check (option string)) "degraded to unversioned" None
      d.Feam_elf.Spec.sym_version
  | ds -> Alcotest.failf "expected 2 dynsyms, got %d" (List.length ds)

let test_dangling_sh_link_falls_back () =
  let image = symbol_image () in
  (* an out-of-range .dynsym sh_link must not crash the string lookup:
     the reader falls back to .dynstr and names survive *)
  let mutated = patch_u16 image (section_header_off image ".dynsym" + 40) 999 in
  match parsed_dynsyms mutated with
  | [ d; _ ] ->
    Alcotest.(check string) "name survives" "sym_init" d.Feam_elf.Spec.sym_name
  | ds -> Alcotest.failf "expected 2 dynsyms, got %d" (List.length ds)

let test_truncated_dynsym_is_typed_error () =
  let image = symbol_image () in
  (* a .dynsym size pointing past the image must fail as Malformed,
     not as an escaping exception *)
  let mutated =
    patch_u64 image (section_header_off image ".dynsym" + 32)
      (String.length image * 2)
  in
  match Feam_elf.Reader.parse mutated with
  | Error (Feam_elf.Reader.Malformed _) -> ()
  | Error e ->
    Alcotest.failf "expected Malformed, got %s"
      (Feam_elf.Reader.error_to_string e)
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_truncated_versym_degrades () =
  let image = symbol_image () in
  (* a .gnu.version table shorter than .dynsym leaves the tail
     symbols unversioned instead of failing *)
  let mutated =
    patch_u64 image (section_header_off image ".gnu.version" + 32) 2
  in
  match parsed_dynsyms mutated with
  | [ _; d ] ->
    Alcotest.(check (option string)) "tail symbol unversioned" None
      d.Feam_elf.Spec.sym_version
  | ds -> Alcotest.failf "expected 2 dynsyms, got %d" (List.length ds)

(* -- the acceptance scenario, end to end through the rules --------------- *)

let description ?soname ?(needed = []) ?(verneeds = []) path =
  {
    Description.path;
    file_format = "elf64-x86-64";
    machine = Feam_elf.Types.X86_64;
    elf_class = Feam_elf.Types.C64;
    soname;
    needed;
    rpath = None;
    runpath = None;
    verneeds;
    required_glibc = Description.required_glibc_of_verneeds verneeds;
    mpi = None;
    provenance = { Objdump_parse.compiler_banner = None; build_os = None };
  }

let discovery =
  {
    Discovery.env_type = `Guaranteed;
    machine = Some Feam_elf.Types.X86_64;
    elf_class = Some Feam_elf.Types.C64;
    os = Some "CentOS 5.6";
    kernel = Some "2.6.18";
    glibc = Some (v "2.5");
    stacks = [];
    current_stack = None;
  }

(* A staged libfoo that keeps soname major 1 — every library-level
   determinant is satisfied — but no longer exports the feature symbol
   the binary imports. *)
let soname_keeping_symbol_dropping_bundle () =
  let root_needed = [ "libfoo.so.1"; "libc.so.6" ] in
  let root_verneeds = [ ("libc.so.6", [ "GLIBC_2.2.5" ]) ] in
  let root_bytes =
    Feam_elf.Builder.build
      (Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_EXEC ~needed:root_needed
         ~verneeds:
           (List.map
              (fun (vn_file, vn_versions) ->
                { Feam_elf.Spec.vn_file; vn_versions })
              root_verneeds)
         ~dynsyms:[ import "foo_init"; import "foo_feature_r2" ]
         ~interp:"/lib64/ld-linux-x86-64.so.2" Feam_elf.Types.X86_64)
  in
  let foo_bytes =
    Feam_elf.Builder.build
      (spec ~soname:"libfoo.so.1" ~needed:[ "libc.so.6" ]
         ~dynsyms:[ export "foo_init" ] ())
  in
  {
    Bundle.created_at = "home";
    binary_description =
      description ~needed:root_needed ~verneeds:root_verneeds
        "/home/user/bin/app";
    binary_bytes = Some root_bytes;
    binary_declared_size = String.length root_bytes;
    copies =
      [
        {
          Bdc.copy_request = "libfoo.so.1";
          copy_origin_path = "/usr/lib64/libfoo.so.1";
          copy_bytes = foo_bytes;
          copy_declared_size = String.length foo_bytes;
          copy_description =
            description
              ~soname:(Soname.make ~version:[ 1 ] "libfoo")
              ~needed:[ "libc.so.6" ] "/usr/lib64/libfoo.so.1";
        };
      ];
    unlocatable = [];
    probes = [];
    source_discovery = discovery;
  }

let acceptance_context () =
  Context.of_bundle
    ~target:
      (Context.make_target ~name:"target" ~machine:Feam_elf.Types.X86_64
         ~glibc:(v "2.5") ())
    (soname_keeping_symbol_dropping_bundle ())

let symbol_rule_ids =
  [ "soname-major-unsound"; "symbol-interposed"; "symbol-unresolved" ]

let test_library_level_rules_accept () =
  (* without the symbol rules, the closure looks ready: that is the
     unsound acceptance under test *)
  let rules =
    List.filter
      (fun r -> not (List.mem r.Rule.id symbol_rule_ids))
      (Registry.all ())
  in
  let findings = Engine.run ~rules (acceptance_context ()) in
  Alcotest.(check int) "library level is clean" 0 (List.length findings)

let expected_acceptance_text =
  {golden|feam lint: /home/user/bin/app (bundled at home, 1 copies, 0 probes) -> target
error symbol-unresolved     foo_feature_r2: imported by /home/user/bin/app but exported by no object in the staged closure
      fix: re-stage a copy that exports the symbol from a site where the binary runs (feam symcheck prints the full bind log)
warn  soname-major-unsound  /home/user/bin/app: every DT_NEEDED is satisfied at the soname level, yet foo_feature_r2 cannot bind: the soname-major acceptance is unsound for this closure
      fix: trust the symbol-level verdict over the soname match: re-stage a closure built where the binary links
1 error, 1 warning, 0 info
|golden}

let test_symbol_rules_overturn () =
  let ctx = acceptance_context () in
  let findings = Engine.run ctx in
  Alcotest.(check string) "overturn report" expected_acceptance_text
    (Engine.render_text ctx findings);
  Alcotest.(check int) "exit code" 2 (Engine.exit_code findings)

let suite =
  ( "symcheck",
    [
      Alcotest.test_case "first definition wins, rest interposed" `Quick
        test_first_definition_wins;
      Alcotest.test_case "versioned references bind verdefs" `Quick
        test_versioned_binding;
      Alcotest.test_case "versioned miss at a present provider is definitive"
        `Quick test_versioned_miss_definitive;
      Alcotest.test_case "versioned miss at an absent provider is skipped"
        `Quick test_versioned_miss_absent_provider_skipped;
      Alcotest.test_case "unversioned misses need a complete scope" `Quick
        test_unversioned_miss_needs_complete_scope;
      Alcotest.test_case "weak misses never overturn" `Quick
        test_weak_miss_is_not_an_overturn;
      Alcotest.test_case "ignore_needed exempts the C library" `Quick
        test_ignore_needed_keeps_scope_complete;
      Alcotest.test_case "out-of-range versym index degrades" `Quick
        test_out_of_range_versym_degrades;
      Alcotest.test_case "dangling dynsym sh_link falls back" `Quick
        test_dangling_sh_link_falls_back;
      Alcotest.test_case "oversized dynsym is a typed error" `Quick
        test_truncated_dynsym_is_typed_error;
      Alcotest.test_case "truncated versym degrades" `Quick
        test_truncated_versym_degrades;
      Alcotest.test_case "library-level rules accept the dropped symbol"
        `Quick test_library_level_rules_accept;
      Alcotest.test_case "symbol rules overturn the acceptance" `Quick
        test_symbol_rules_overturn;
    ] )
