(* Fuzz-robustness: byte-level mutations of valid inputs must never
   crash the parsers — every outcome is [Ok] or a typed [Error], no
   escaping exception, no hang. *)

let base_image =
  Feam_elf.Builder.build
    (Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_EXEC
       ~needed:[ "libmpi.so.0"; "libm.so.6"; "libc.so.6" ]
       ~rpath:"/opt/x/lib"
       ~verneeds:
         [
           {
             Feam_elf.Spec.vn_file = "libc.so.6";
             vn_versions = [ "GLIBC_2.2.5"; "GLIBC_2.5" ];
           };
         ]
       ~verdefs:[ "SOME_1.0" ]
       ~comments:[ "GCC: (GNU) 4.1.2" ]
       ~abi_note:(2, 6, 18)
       ~interp:"/lib64/ld-linux-x86-64.so.2" Feam_elf.Types.X86_64)

(* A symbol-rich image: a versioned export, versioned and unversioned
   imports, and a weak reference exercise the .dynsym/.gnu.version
   parsing paths under mutation. *)
let symbol_image =
  let sym name ~defined ~binding ~version =
    {
      Feam_elf.Spec.sym_name = name;
      sym_defined = defined;
      sym_binding = binding;
      sym_version = version;
    }
  in
  Feam_elf.Builder.build
    (Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_DYN ~soname:"libsym.so.1"
       ~needed:[ "libc.so.6" ]
       ~verneeds:
         [
           {
             Feam_elf.Spec.vn_file = "libc.so.6";
             vn_versions = [ "GLIBC_2.2.5"; "GLIBC_2.5" ];
           };
         ]
       ~verdefs:[ "libsym.so.1"; "SYM_1.0"; "SYM_2.0" ]
       ~dynsyms:
         [
           sym "sym_init" ~defined:true ~binding:Feam_elf.Spec.Global
             ~version:(Some "SYM_2.0");
           sym "memcpy" ~defined:false ~binding:Feam_elf.Spec.Global
             ~version:(Some "GLIBC_2.2.5");
           sym "plain_ref" ~defined:false ~binding:Feam_elf.Spec.Global
             ~version:None;
           sym "weak_hook" ~defined:false ~binding:Feam_elf.Spec.Weak
             ~version:None;
         ]
       Feam_elf.Types.X86_64)

(* Apply [n] random single-byte mutations, deterministically from a
   seed. *)
let mutate seed n (s : string) =
  let b = Bytes.of_string s in
  let g = Feam_util.Prng.create seed in
  for _ = 1 to n do
    let pos = Feam_util.Prng.int g (Bytes.length b) in
    Bytes.set b pos (Char.chr (Feam_util.Prng.int g 256))
  done;
  Bytes.to_string b

let gen_mutation = QCheck.Gen.(pair (int_range 0 100000) (int_range 1 24))

let prop_elf_reader_total =
  QCheck.Test.make ~name:"fuzz: ELF reader is total on mutated images"
    ~count:800
    (QCheck.make
       ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
       gen_mutation)
    (fun (seed, n) ->
      match Feam_elf.Reader.parse (mutate seed n base_image) with
      | Ok _ | Error _ -> true)

let prop_elf_reader_truncations =
  QCheck.Test.make ~name:"fuzz: ELF reader is total on truncations" ~count:200
    (QCheck.make ~print:string_of_int
       QCheck.Gen.(int_range 0 (String.length base_image)))
    (fun len ->
      match Feam_elf.Reader.parse (String.sub base_image 0 len) with
      | Ok _ | Error _ -> true)

let prop_symbol_tables_total =
  QCheck.Test.make
    ~name:"fuzz: .dynsym/.gnu.version parsing is total on mutated images"
    ~count:800
    (QCheck.make
       ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
       gen_mutation)
    (fun (seed, n) ->
      match Feam_elf.Reader.parse (mutate seed n symbol_image) with
      | Ok _ | Error _ -> true)

let prop_symbol_tables_truncations =
  QCheck.Test.make
    ~name:"fuzz: .dynsym/.gnu.version parsing is total on truncations"
    ~count:200
    (QCheck.make ~print:string_of_int
       QCheck.Gen.(int_range 0 (String.length symbol_image)))
    (fun len ->
      match Feam_elf.Reader.parse (String.sub symbol_image 0 len) with
      | Ok _ | Error _ -> true)

(* A valid bundle artifact to mutate. *)
let base_bundle_text =
  lazy
    (let site, installs = Fixtures.small_site ~name:"fuzzhome" () in
     let path, install =
       Fixtures.compiled_binary ~program:Fixtures.fortran_program site installs
     in
     let env = Fixtures.session_env site install in
     let bundle =
       Fixtures.run_exn
         (Feam_core.Phases.source_phase Feam_core.Config.default site env
            ~binary_path:path)
     in
     Feam_core.Bundle_io.render bundle)

let prop_bundle_parser_total =
  QCheck.Test.make ~name:"fuzz: bundle parser is total on mutated artifacts"
    ~count:300
    (QCheck.make
       ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
       gen_mutation)
    (fun (seed, n) ->
      let text = Lazy.force base_bundle_text in
      match Feam_core.Bundle_io.parse (mutate seed n text) with
      | Ok _ | Error _ -> true)

let prop_json_parser_total =
  QCheck.Test.make ~name:"fuzz: JSON parser is total on arbitrary strings"
    ~count:500
    (QCheck.make ~print:String.escaped
       QCheck.Gen.(map Bytes.to_string (bytes_size (int_range 0 64))))
    (fun s ->
      match Feam_util.Json.parse s with Ok _ | Error _ -> true)

let prop_objdump_parser_total =
  QCheck.Test.make
    ~name:"fuzz: objdump parser is total on scrambled tool output" ~count:300
    (QCheck.make
       ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
       gen_mutation)
    (fun (seed, n) ->
      let text =
        mutate seed n
          "x:     file format elf64-x86-64\n\nDynamic Section:\n  NEEDED  \
           libc.so.6\n\nVersion References:\n  required from libc.so.6:\n    \
           0x1 0x00 02 GLIBC_2.2.5\n"
      in
      match Feam_core.Objdump_parse.parse_objdump_p text with
      | Ok _ | Error _ -> true)

(* Includes the historical crash shape: an all-digit version component
   exceeding max_int used to raise an uncaught [Failure] inside
   [int_of_string]. *)
let gen_soname_like =
  QCheck.Gen.(
    oneof
      [
        map Bytes.to_string (bytes_size (int_range 0 32));
        map
          (fun (base, suffix) -> base ^ suffix)
          (pair
             (oneofl [ "libm"; "lib"; ""; "x" ])
             (oneofl
                [
                  ".so.1";
                  ".so.";
                  ".so..2";
                  ".so.1abc";
                  ".so.999999999999999999999999";
                  ".so.-1";
                  ".so.1.2.3";
                  "so.1";
                  ".so";
                ]));
      ])

let prop_soname_parser_total =
  QCheck.Test.make ~name:"fuzz: soname parser is total on arbitrary strings"
    ~count:800
    (QCheck.make ~print:String.escaped gen_soname_like)
    (fun s ->
      (match Feam_util.Soname.of_string_result s with
      | Ok _ | Error _ -> ());
      (* [of_string] agrees with [of_string_result] *)
      match (Feam_util.Soname.of_string s, Feam_util.Soname.of_string_result s) with
      | Some a, Ok b -> Feam_util.Soname.equal a b
      | None, Error _ -> true
      | _ -> false)

let suite =
  ( "fuzz",
    [
      QCheck_alcotest.to_alcotest prop_elf_reader_total;
      QCheck_alcotest.to_alcotest prop_elf_reader_truncations;
      QCheck_alcotest.to_alcotest prop_symbol_tables_total;
      QCheck_alcotest.to_alcotest prop_symbol_tables_truncations;
      QCheck_alcotest.to_alcotest prop_bundle_parser_total;
      QCheck_alcotest.to_alcotest prop_json_parser_total;
      QCheck_alcotest.to_alcotest prop_objdump_parser_total;
      QCheck_alcotest.to_alcotest prop_soname_parser_total;
    ] )
