(* Aggregates every suite into one alcotest runner: `dune runtest`. *)

let () =
  Alcotest.run "feam"
    [
      Test_version.suite;
      Test_soname.suite;
      Test_util_misc.suite;
      Test_elf.suite;
      Test_vfs.suite;
      Test_env.suite;
      Test_mpi.suite;
      Test_sysmodel.suite;
      Test_utilities.suite;
      Test_toolchain.suite;
      Test_dynlinker.suite;
      Test_core_components.suite;
      Test_prediction.suite;
      Test_resolution_model.suite;
      Test_interp.suite;
      Test_bundle_io.suite;
      Test_advisor_effort.suite;
      Test_eval.suite;
      Test_identification.suite;
      Test_suites.suite;
      Test_json.suite;
      Test_ranking.suite;
      Test_report_golden.suite;
      Test_cross_isa.suite;
      Test_diagnose.suite;
      Test_objdump_realistic.suite;
      Test_scenario.suite;
      Test_degraded_tools.suite;
      Test_properties_extra.suite;
      Test_stale_cache.suite;
      Test_exec_taxonomy.suite;
      Test_sweep.suite;
      Test_misc_coverage.suite;
      Test_fuzz.suite;
      Test_lint.suite;
      Test_symcheck.suite;
      Test_whatif.suite;
      Test_accounting.suite;
      Test_static.suite;
      Test_soundness.suite;
      Test_ablation.suite;
      Test_obs.suite;
    ]
