(* Tests for the fleet audit layer: content-addressed fact extraction
   (stability, memo hits), the five fleet-tier rules over synthetic
   fleets, baseline round-trips, and the audit report's determinism. *)

open Feam_analysis
module Spec = Feam_elf.Spec
module Types = Feam_elf.Types
module Chash = Feam_depot.Chash
module Diagnose = Feam_core.Diagnose

let v = Feam_util.Version.of_string_exn

(* -- Fixture objects ----------------------------------------------------- *)

let dynsym ?(defined = true) ?version name =
  { Spec.sym_name = name; sym_defined = defined; sym_binding = Spec.Global;
    sym_version = version }

let lib_image ?soname ?(exports = []) ?(glibc = []) ?(needed = []) () =
  let verneeds =
    if glibc = [] then []
    else [ { Spec.vn_file = "libc.so.6"; vn_versions = glibc } ]
  in
  Feam_elf.Builder.build
    (Spec.make ~file_type:Types.ET_DYN ?soname ~needed ~verneeds
       ~dynsyms:(List.map dynsym exports)
       Types.X86_64)

let bin_image ?(glibc = []) ?(needed = [ "libc.so.6" ]) () =
  let verneeds =
    if glibc = [] then []
    else [ { Spec.vn_file = "libc.so.6"; vn_versions = glibc } ]
  in
  Feam_elf.Builder.build
    (Spec.make ~file_type:Types.ET_EXEC ~needed ~verneeds
       ~interp:"/lib64/ld-linux-x86-64.so.2" Types.X86_64)

(* -- Fact extraction ----------------------------------------------------- *)

let test_facts_extraction () =
  Factbase.reset ();
  let bytes =
    lib_image ~soname:"libx.so.1" ~exports:[ "zeta"; "alpha"; "alpha" ]
      ~glibc:[ "GLIBC_2.3.4"; "GLIBC_2.5"; "GLIBC_2.2.5" ]
      ~needed:[ "libc.so.6" ] ()
  in
  let f = Factbase.facts_of_bytes bytes in
  Alcotest.(check (option string)) "soname" (Some "libx.so.1") f.Factbase.fb_soname;
  Alcotest.(check (list string)) "needed" [ "libc.so.6" ] f.Factbase.fb_needed;
  Alcotest.(check (list string)) "exports sorted, deduped"
    [ "alpha"; "zeta" ] f.Factbase.fb_exports;
  Alcotest.(check string) "glibc floor is the newest binding" "2.5"
    (match f.Factbase.fb_glibc_floor with
    | Some floor -> Feam_util.Version.to_string floor
    | None -> "none");
  Alcotest.(check int) "size is the byte count" (String.length bytes)
    f.Factbase.fb_size;
  Alcotest.(check bool) "key matches the content hash" true
    (Chash.equal f.Factbase.fb_key (Chash.of_bytes bytes))

let test_facts_unparsable () =
  Factbase.reset ();
  let f = Factbase.facts_of_bytes "not an elf image" in
  Alcotest.(check bool) "no spec" true (f.Factbase.fb_spec = None);
  Alcotest.(check bool) "parse error recorded" true
    (f.Factbase.fb_parse_error <> None);
  Alcotest.(check (list string)) "no exports" [] f.Factbase.fb_exports

let test_facts_memo_hits () =
  Factbase.reset ();
  let bytes = lib_image ~soname:"libmemo.so.1" ~exports:[ "f" ] () in
  let before h = Option.value ~default:0 (Feam_obs.Metrics.counter_value h) in
  let hit0 = before "elf.spec_memo.hit" in
  let miss0 = before "elf.spec_memo.miss" in
  let a = Factbase.facts_of_bytes bytes in
  let b = Factbase.facts_of_bytes bytes in
  let c = Factbase.facts_of_bytes bytes in
  Alcotest.(check bool) "same facts object" true (a == b && b == c);
  Alcotest.(check int) "one miss"
    (miss0 + 1)
    (Option.value ~default:0 (Feam_obs.Metrics.counter_value "elf.spec_memo.miss"));
  Alcotest.(check int) "two hits"
    (hit0 + 2)
    (Option.value ~default:0 (Feam_obs.Metrics.counter_value "elf.spec_memo.hit"));
  Alcotest.(check int) "one interned object" 1 (Factbase.size ())

(* qcheck: extraction is a pure function of the bytes — a fresh memo
   and a warm memo agree on every field, for arbitrary payloads (ELF or
   not). *)
let gen_payload =
  QCheck.Gen.(
    oneof
      [
        map Bytes.to_string (bytes_size (int_range 0 256));
        map
          (fun (soname, exports) -> lib_image ~soname ~exports ())
          (pair (oneofl [ "liba.so.1"; "libb.so.2" ])
             (list_size (int_range 0 4) (oneofl [ "f"; "g"; "h"; "k" ])));
      ])

let facts_fingerprint (f : Factbase.facts) =
  ( Chash.to_hex f.Factbase.fb_key,
    f.Factbase.fb_soname,
    f.Factbase.fb_needed,
    f.Factbase.fb_exports,
    Option.map Feam_util.Version.to_string f.Factbase.fb_glibc_floor,
    (f.Factbase.fb_interp, f.Factbase.fb_parse_error = None, f.Factbase.fb_size)
  )

let prop_facts_stable =
  QCheck.Test.make ~name:"factbase: cold and warm extraction agree" ~count:100
    (QCheck.make ~print:String.escaped gen_payload) (fun bytes ->
      Factbase.reset ();
      let cold = facts_fingerprint (Factbase.facts_of_bytes bytes) in
      let warm = facts_fingerprint (Factbase.facts_of_bytes bytes) in
      Factbase.reset ();
      let again = facts_fingerprint (Factbase.facts_of_bytes bytes) in
      cold = warm && cold = again)

(* -- Synthetic fleets ---------------------------------------------------- *)

let site ?(stacks = [ "openmpi" ]) ?(glibc = "2.12") name =
  { Fleet.site_name = name; site_machine = Types.X86_64; site_glibc = v glibc;
    site_stacks = List.sort_uniq compare stacks }

let library name site bytes =
  { Fleet.lib_name = name; lib_site = site;
    lib_facts = Factbase.facts_of_bytes bytes }

let binary ?(impl = Some "openmpi") ?(glibc = []) id home =
  { Fleet.bin_id = id; bin_home = home; bin_impl = impl;
    bin_facts = Factbase.facts_of_bytes (bin_image ~glibc ()) }

let cell ?(basic = true) ?(extended = true) bin home target =
  { Fleet.cell_binary = bin; cell_home = home; cell_target = target;
    cell_basic = basic; cell_extended = extended }

let run_rule id fleet =
  match Registry.find id with
  | Some rule -> Engine.run_fleet ~rules:[ rule ] fleet
  | None -> Alcotest.failf "rule %s not registered" id

let subjects findings =
  List.map (fun (f : Diagnose.finding) -> f.Diagnose.subject) findings

let test_abi_skew () =
  Factbase.reset ();
  let diverging = "libmpi.so.0" in
  let rebuilt = "libm.so.6" in
  let fleet =
    {
      Fleet.empty with
      Fleet.sites = [ site "a"; site "b" ];
      libraries =
        [
          library diverging "a" (lib_image ~soname:diverging ~exports:[ "MPI_Init" ] ());
          library diverging "b" (lib_image ~soname:diverging ~exports:[ "MPI_Init"; "MPI_Init_thread" ] ());
          library rebuilt "a" (lib_image ~soname:rebuilt ~exports:[ "sin" ] ~glibc:[ "GLIBC_2.2.5" ] ());
          library rebuilt "b" (lib_image ~soname:rebuilt ~exports:[ "sin" ] ~glibc:[ "GLIBC_2.3.4" ] ());
          (* same bytes at both sites: no skew at all *)
          library "libz.so.1" "a" (lib_image ~soname:"libz.so.1" ~exports:[ "inflate" ] ());
          library "libz.so.1" "b" (lib_image ~soname:"libz.so.1" ~exports:[ "inflate" ] ());
        ];
    }
  in
  let findings = run_rule "abi-skew" fleet in
  Alcotest.(check (list string)) "diverging exports warn, rebuilds inform"
    [ diverging; rebuilt ] (subjects findings);
  (match findings with
  | [ f1; f2 ] ->
    Alcotest.(check string) "export divergence is a warning" "warn"
      (Diagnose.level_to_string f1.Diagnose.level);
    Alcotest.(check string) "content-only skew is info" "info"
      (Diagnose.level_to_string f2.Diagnose.level);
    Alcotest.(check bool) "message counts the variants" true
      (Feam_sysmodel.Str_split.contains ~sub:"2 distinct builds" f1.Diagnose.message)
  | _ -> Alcotest.fail "expected exactly two findings")

let test_fleet_orphan () =
  Factbase.reset ();
  let fleet =
    {
      Fleet.empty with
      Fleet.sites = [ site "a"; site "b"; site "c" ];
      binaries =
        [ binary "app.ok" "a"; binary "app.stuck" "a"; binary "app.pinned" "a" ];
      cells =
        [
          cell "app.ok" "a" "b" ~extended:true;
          cell "app.stuck" "a" "b" ~extended:false;
          cell "app.stuck" "a" "c" ~extended:false;
          (* app.pinned has no cells at all *)
        ];
    }
  in
  let findings = run_rule "fleet-orphan" fleet in
  Alcotest.(check (list string)) "both orphans, not the mobile binary"
    [ "app.pinned"; "app.stuck" ] (subjects findings);
  (match findings with
  | [ pinned; stuck ] ->
    Alcotest.(check bool) "pinned names the missing stack" true
      (Feam_sysmodel.Str_split.contains ~sub:"no site in the fleet"
         pinned.Diagnose.message);
    Alcotest.(check bool) "stuck counts its candidates" true
      (Feam_sysmodel.Str_split.contains ~sub:"0 of 2 candidate"
         stuck.Diagnose.message)
  | _ -> Alcotest.fail "expected exactly two findings")

let test_glibc_laggard () =
  Factbase.reset ();
  let fleet =
    {
      Fleet.empty with
      Fleet.sites = [ site ~glibc:"2.3.4" "old"; site ~glibc:"2.12" "new" ];
      binaries =
        [
          binary ~glibc:[ "GLIBC_2.5" ] "app.demanding" "new";
          binary ~glibc:[ "GLIBC_2.3" ] "app.modest" "new";
        ];
      cells =
        [
          cell "app.demanding" "new" "old" ~extended:false;
          cell "app.modest" "new" "old" ~extended:true;
        ];
    }
  in
  match run_rule "glibc-laggard" fleet with
  | [ f ] ->
    Alcotest.(check string) "the trailing site" "old" f.Diagnose.subject;
    Alcotest.(check bool) "reports the demanded floor" true
      (Feam_sysmodel.Str_split.contains ~sub:"2.5 floor demanded by 1 of 2"
         f.Diagnose.message)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_depot_unreferenced () =
  Factbase.reset ();
  let obj referenced soname bytes =
    { Fleet.sto_key = Chash.of_bytes bytes; sto_soname = soname;
      sto_size = String.length bytes; sto_referenced = referenced }
  in
  let fleet =
    {
      Fleet.empty with
      Fleet.store =
        [
          obj true (Some "liba.so.1") "aaaa";
          obj false (Some "libdead.so.2") "dddd";
          obj false None "ffff";
        ];
    }
  in
  let findings = run_rule "depot-unreferenced" fleet in
  Alcotest.(check int) "two dead objects" 2 (List.length findings);
  List.iter
    (fun (f : Diagnose.finding) ->
      Alcotest.(check string) "informational" "info"
        (Diagnose.level_to_string f.Diagnose.level))
    findings;
  Alcotest.(check (list string)) "subjects are short keys"
    [ Chash.short (Chash.of_bytes "dddd"); Chash.short (Chash.of_bytes "ffff") ]
    (List.sort compare (subjects findings))

let test_stack_partition () =
  Factbase.reset ();
  let fleet =
    {
      Fleet.empty with
      Fleet.sites =
        [
          site ~stacks:[ "openmpi" ] "a";
          site ~stacks:[ "openmpi" ] "b";
          site ~stacks:[ "mpich2" ] "c";
        ];
      binaries = [ binary ~impl:(Some "mpich2") "app.c1" "c" ];
    }
  in
  let findings = run_rule "stack-partition" fleet in
  Alcotest.(check (list string)) "stranded impl and the split fleet"
    [ "fleet"; "mpich2" ]
    (List.sort compare (subjects findings));
  let islands =
    List.find
      (fun (f : Diagnose.finding) -> f.Diagnose.subject = "fleet")
      findings
  in
  Alcotest.(check bool) "names both islands" true
    (Feam_sysmodel.Str_split.contains ~sub:"a,b | c" islands.Diagnose.message);
  (* a connected fleet with every impl at two sites reports nothing *)
  let connected =
    {
      fleet with
      Fleet.sites =
        [
          site "a";
          site ~stacks:[ "openmpi"; "mpich2" ] "b";
          site ~stacks:[ "openmpi"; "mpich2" ] "c";
        ];
    }
  in
  Alcotest.(check int) "connected fleet is clean" 0
    (List.length (run_rule "stack-partition" connected))

(* -- Registry tiers ------------------------------------------------------ *)

let test_registry_tiers () =
  Alcotest.(check int) "five fleet rules" 5 (List.length (Registry.fleet_ids ()));
  Alcotest.(check int) "cell + fleet = all"
    (Registry.count ())
    (List.length (Registry.cell_ids ()) + List.length (Registry.fleet_ids ()));
  List.iter
    (fun id ->
      match Registry.find id with
      | Some r -> Alcotest.(check string) (id ^ " tier") "fleet" (Rule.tier r)
      | None -> Alcotest.failf "fleet rule %s not registered" id)
    (Registry.fleet_ids ());
  (* every rule carries a non-empty long-form explanation *)
  List.iter
    (fun (r : Rule.t) ->
      Alcotest.(check bool) (r.Rule.id ^ " has explain text") true
        (String.length r.Rule.explain > 40))
    (Registry.all ())

(* -- Baselines ----------------------------------------------------------- *)

let finding rule_id subject =
  { Diagnose.rule_id; level = Diagnose.Warn; subject;
    message = "m"; fixit = None }

let test_baseline_roundtrip () =
  let findings =
    [ finding "abi-skew" "libx.so.1"; finding "fleet-orphan" "app.a";
      finding "abi-skew" "liby.so.2" ]
  in
  let b = Baseline.of_findings findings in
  Alcotest.(check int) "three entries" 3 (Baseline.size b);
  let rendered = Baseline.render b in
  (match Baseline.parse rendered with
  | Ok parsed ->
    Alcotest.(check (list (pair string string))) "round-trips"
      (Baseline.entries b) (Baseline.entries parsed);
    Alcotest.(check string) "render is canonical" rendered
      (Baseline.render parsed)
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* comments and blank lines are tolerated *)
  (match Baseline.parse ("FEAM-BASELINE 1\n# comment\n\nabi-skew\tlibx.so.1\n") with
  | Ok b -> Alcotest.(check int) "comment file parses" 1 (Baseline.size b)
  | Error e -> Alcotest.failf "comment file rejected: %s" e);
  (match Baseline.parse "abi-skew\tlibx.so.1\n" with
  | Ok _ -> Alcotest.fail "missing header accepted"
  | Error _ -> ());
  match Baseline.parse "FEAM-BASELINE 1\nno-tab-here\n" with
  | Ok _ -> Alcotest.fail "bad line accepted"
  | Error e ->
    Alcotest.(check bool) "error names the line" true
      (Feam_sysmodel.Str_split.contains ~sub:"no-tab-here" e)

let test_baseline_apply () =
  let known = finding "abi-skew" "libx.so.1" in
  let fresh = finding "fleet-orphan" "app.new" in
  let b = Baseline.of_findings [ known ] in
  let new_findings, suppressed = Baseline.apply b [ known; fresh ] in
  Alcotest.(check (list string)) "new finding passes" [ "app.new" ]
    (subjects new_findings);
  Alcotest.(check (list string)) "known finding suppressed" [ "libx.so.1" ]
    (subjects suppressed);
  (* gate only sees the new findings *)
  Alcotest.(check int) "suppressing everything gates clean" 0
    (Engine.exit_code (fst (Baseline.apply (Baseline.of_findings [ known; fresh ]) [ known; fresh ])))

(* -- Report determinism -------------------------------------------------- *)

let skew_fleet () =
  Factbase.reset ();
  {
    Fleet.empty with
    Fleet.sites = [ site "a"; site "b" ];
    binaries = [ binary "app.stuck" "a" ];
    cells = [ cell "app.stuck" "a" "b" ~extended:false ];
    libraries =
      [
        library "libx.so.1" "a" (lib_image ~soname:"libx.so.1" ~exports:[ "f" ] ());
        library "libx.so.1" "b" (lib_image ~soname:"libx.so.1" ~exports:[ "g" ] ());
      ];
  }

let test_report_determinism () =
  let render () =
    let fleet = skew_fleet () in
    Engine.render_fleet_text fleet (Engine.run_fleet fleet)
  in
  let first = render () in
  Alcotest.(check string) "two renders agree byte for byte" first (render ());
  Alcotest.(check bool) "report leads with the fleet line" true
    (Feam_sysmodel.Str_split.contains ~sub:"feam audit: 2 sites, 1 binaries"
       first);
  (* JSON view renders and parses back *)
  let fleet = skew_fleet () in
  let json =
    Feam_util.Json.render (Engine.fleet_to_json fleet (Engine.run_fleet fleet))
  in
  match Feam_util.Json.parse json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "audit JSON does not parse back: %s" e

let suite =
  ( "audit",
    [
      Alcotest.test_case "fact extraction" `Quick test_facts_extraction;
      Alcotest.test_case "unparsable bytes still get facts" `Quick
        test_facts_unparsable;
      Alcotest.test_case "memo hit/miss accounting" `Quick test_facts_memo_hits;
      QCheck_alcotest.to_alcotest prop_facts_stable;
      Alcotest.test_case "abi-skew" `Quick test_abi_skew;
      Alcotest.test_case "fleet-orphan" `Quick test_fleet_orphan;
      Alcotest.test_case "glibc-laggard" `Quick test_glibc_laggard;
      Alcotest.test_case "depot-unreferenced" `Quick test_depot_unreferenced;
      Alcotest.test_case "stack-partition" `Quick test_stack_partition;
      Alcotest.test_case "registry tiers" `Quick test_registry_tiers;
      Alcotest.test_case "baseline round-trip" `Quick test_baseline_roundtrip;
      Alcotest.test_case "baseline apply gates new findings only" `Quick
        test_baseline_apply;
      Alcotest.test_case "audit report determinism" `Quick
        test_report_determinism;
    ] )
