(* Shared test fixtures: small provisioned sites and binaries used across
   the per-module suites.  Each call builds fresh state so tests stay
   independent. *)

open Feam_util
open Feam_mpi
open Feam_sysmodel
open Feam_toolchain

let v = Version.of_string_exn

let gnu412 = Compiler.make Compiler.Gnu (v "4.1.2")
let gnu445 = Compiler.make Compiler.Gnu (v "4.4.5")
let intel11 = Compiler.make Compiler.Intel (v "11.1")

let ompi14 compiler =
  Stack.make ~impl:Impl.Open_mpi ~impl_version:(v "1.4") ~compiler
    ~interconnect:Interconnect.Ethernet

let mvapich2 compiler =
  Stack.make ~impl:Impl.Mvapich2 ~impl_version:(v "1.7a2") ~compiler
    ~interconnect:Interconnect.Infiniband

let mpich2 compiler =
  Stack.make ~impl:Impl.Mpich2 ~impl_version:(v "1.4") ~compiler
    ~interconnect:Interconnect.Ethernet

let default_batch =
  Batch.make ~queues:[ { Batch.queue_name = "debug"; wait_seconds = 5.0 } ] Batch.Pbs

(* A small fully-provisioned x86-64 site with one healthy Open MPI stack
   and one MVAPICH2 stack. *)
let small_site ?(name = "testbed") ?(glibc = "2.5") ?(tools = Tools.full)
    ?(modules_flavor = Site.Environment_modules)
    ?(interconnect = Interconnect.Infiniband)
    ?(machine = Feam_elf.Types.X86_64) ?(stacks = None) ?fault_model () =
  let site =
    Site.make ~description:"unit-test site" ~tools ~modules_flavor
      ~compilers:[ gnu412; intel11 ] ~seed:7 ~machine ?fault_model
      ~distro:(Distro.make Distro.Centos ~version:(v "5.6") ~kernel:(v "2.6.18"))
      ~glibc:(v glibc) ~interconnect ~batch:default_batch name
  in
  let stacks =
    match stacks with
    | Some s -> s
    | None ->
      [
        (ompi14 gnu412, Stack_install.Functioning);
        (mvapich2 intel11, Stack_install.Functioning);
      ]
  in
  let installs = Provision.provision_site site ~stacks in
  (site, installs)

(* A site with an old C library (the "Ranger" wall). *)
let old_glibc_site ?(name = "oldsite") () =
  small_site ~name ~glibc:"2.3.4" ()

(* A PowerPC site: exercises ISA incompatibility. *)
let ppc_site ?(name = "ppcsite") () =
  small_site ~name ~machine:Feam_elf.Types.PPC64 ()

(* Compile a simple C MPI program at a site with its first stack. *)
let compiled_binary ?(program = Feam_toolchain.Compile.program "app") site
    installs =
  let install = List.hd installs in
  match
    Compile.compile_mpi_to site install program ~dir:"/home/user/apps"
  with
  | Ok path -> (path, install)
  | Error e -> Alcotest.failf "fixture compile failed: %s" (Compile.error_to_string e)

let fortran_program =
  Feam_toolchain.Compile.program ~language:Stack.Fortran "fapp"

(* Environment with a stack loaded. *)
let session_env site install =
  Modules_tool.load_stack (Site.base_env site) install

let run_exn = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* Alcotest testables. *)
let version = Alcotest.testable Version.pp Version.equal
let soname = Alcotest.testable Soname.pp Soname.equal
