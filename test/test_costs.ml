(* Tests for the cost observatory: labeled timers and their interplay
   with the metrics freeze, span allocation accounting, the Prometheus /
   JSONL exposition surfaces (byte-determinism under a fixed clock,
   label escaping round-trip), the cost ledger's self-cost accounting
   over a manual clock, and the perf-regression sentinel's history
   schema and comparison logic. *)

open Feam_obs

(* -- Prof: labeled timers -------------------------------------------------- *)

let test_prof_records () =
  Feam_obs.reset ();
  let clock = Clock.manual () in
  Prof.set_clock (Clock.of_manual clock);
  Prof.set_enabled true;
  let result =
    Prof.with_timer ~labels:[ ("op", "x") ] "work" (fun () ->
        Clock.advance clock 250L;
        ignore (Sys.opaque_identity (String.make 64 'a'));
        7)
  in
  Alcotest.(check int) "thunk value returned" 7 result;
  Alcotest.(check (option int))
    "calls counter bumped"
    (Some 1)
    (Metrics.counter_value ~labels:[ ("op", "x") ] "work.calls");
  (match Metrics.histogram_value ~labels:[ ("op", "x") ] "work.ns" with
  | Some h ->
    Alcotest.(check int) "one duration sample" 1 h.Metrics.count;
    Alcotest.(check (float 0.0)) "duration from the clock" 250.0 h.Metrics.sum
  | None -> Alcotest.fail "work.ns histogram missing");
  (match Metrics.histogram_value ~labels:[ ("op", "x") ] "work.alloc_words" with
  | Some h ->
    Alcotest.(check int) "one allocation sample" 1 h.Metrics.count;
    if h.Metrics.sum < 8.0 then
      Alcotest.failf "allocation sum %.1f too small for a 64-byte string"
        h.Metrics.sum
  | None -> Alcotest.fail "work.alloc_words histogram missing");
  Feam_obs.reset ()

let test_prof_disabled_noop () =
  Feam_obs.reset ();
  (* reset leaves Prof disabled: timing a thunk must leave no trace *)
  let result = Prof.with_timer "idle" (fun () -> 3) in
  Alcotest.(check int) "thunk still runs" 3 result;
  Alcotest.(check (option int))
    "no counter recorded" None
    (Metrics.counter_value "idle.calls");
  Alcotest.(check bool)
    "no histogram recorded" true
    (Metrics.histogram_value "idle.ns" = None)

let test_prof_metrics_freeze () =
  Feam_obs.reset ();
  Prof.set_enabled true;
  Metrics.set_enabled false;
  let ran = ref false in
  Prof.with_timer "frozen" (fun () -> ran := true);
  Metrics.set_enabled true;
  Alcotest.(check bool) "timed code still runs under freeze" true !ran;
  Alcotest.(check (option int))
    "freeze suppresses the counter write" None
    (Metrics.counter_value "frozen.calls");
  Alcotest.(check bool)
    "freeze suppresses the histogram write" true
    (Metrics.histogram_value "frozen.ns" = None);
  Feam_obs.reset ()

(* -- Trace: span allocation accounting ------------------------------------- *)

let test_span_alloc_attrs () =
  Feam_obs.reset ();
  let spans = ref [] in
  let sink =
    { Sink.on_span = (fun s -> spans := s :: !spans); flush = (fun () -> ()) }
  in
  Trace.configure sink;
  Trace.set_record_alloc true;
  Trace.with_span "alloc" ~attrs:[ ("tag", Span.Str "t") ] (fun () ->
      (* small boxed values land on the minor heap, which Gc.minor_words
         tracks precisely even mid-cycle; opaque_identity keeps the
         optimizer from deleting the unused allocation *)
      ignore (Sys.opaque_identity (List.init 500 (fun i -> float_of_int i))));
  Feam_obs.reset ();
  match !spans with
  | [ span ] -> (
    (* declared attrs first, then the two alloc attrs *)
    (match span.Span.attrs with
    | ("tag", _) :: _ -> ()
    | _ -> Alcotest.fail "declared attr should come first");
    let words attr =
      match List.assoc_opt attr span.Span.attrs with
      | Some (Span.Float w) -> w
      | _ -> Alcotest.failf "%s attr missing" attr
    in
    (* 500 cons cells + 500 boxed floats: well over 1000 minor words *)
    if words "alloc_minor_w" < 1000.0 then
      Alcotest.failf "alloc_minor_w %.0f too small for 500 boxed floats"
        (words "alloc_minor_w");
    ignore (words "alloc_major_w"))
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

(* -- Expo: label escaping and exposition formats --------------------------- *)

let test_label_escape_roundtrip () =
  let cases =
    [
      "plain";
      "with \"quotes\"";
      "back\\slash";
      "new\nline";
      "all three: \\ \" \n mixed";
      "";
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check string)
        (Printf.sprintf "round-trip %S" v)
        v
        (Expo.unescape_label (Expo.escape_label v)))
    cases;
  (* escaped forms contain no raw specials *)
  let escaped = Expo.escape_label "a\"b\\c\nd" in
  Alcotest.(check bool)
    "no raw newline in escaped form" false
    (String.contains escaped '\n');
  Alcotest.(check string) "exact escaped form" "a\\\"b\\\\c\\nd" escaped;
  (* unknown escapes pass through rather than fail *)
  Alcotest.(check string) "unknown escape preserved" "\\x" (Expo.unescape_label "\\x")

let populate_registry () =
  Metrics.incr ~by:3 ~labels:[ ("site", "a\"b") ] "demo.requests";
  Metrics.set_gauge "demo.ratio" 0.5;
  Metrics.observe ~bounds:[| 10.0; 100.0 |] "demo.latency" 5.0;
  Metrics.observe ~bounds:[| 10.0; 100.0 |] "demo.latency" 50.0;
  Metrics.observe ~bounds:[| 10.0; 100.0 |] "demo.latency" 5000.0

let test_prom_format () =
  Feam_obs.reset ();
  populate_registry ();
  let out = Expo.render_prom () in
  Feam_obs.reset ();
  let has needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun line ->
      if not (has line) then Alcotest.failf "missing %S in:\n%s" line out)
    [
      "# TYPE feam_demo_requests counter";
      "feam_demo_requests{site=\"a\\\"b\"} 3";
      "# TYPE feam_demo_ratio gauge";
      "feam_demo_ratio 0.5";
      "# TYPE feam_demo_latency histogram";
      (* buckets are cumulative: 1 at le=10, 2 at le=100, 3 total *)
      "feam_demo_latency_bucket{le=\"10\"} 1";
      "feam_demo_latency_bucket{le=\"100\"} 2";
      "feam_demo_latency_bucket{le=\"+Inf\"} 3";
      "feam_demo_latency_sum 5055";
      "feam_demo_latency_count 3";
    ]

let test_exposition_deterministic () =
  let render () =
    Feam_obs.reset ();
    populate_registry ();
    let prom = Expo.render_prom () in
    let jsonl = Expo.render_jsonl () in
    Feam_obs.reset ();
    (prom, jsonl)
  in
  let p1, j1 = render () in
  let p2, j2 = render () in
  Alcotest.(check string) "prom output byte-identical" p1 p2;
  Alcotest.(check string) "jsonl output byte-identical" j1 j2

let test_jsonl_records () =
  Feam_obs.reset ();
  populate_registry ();
  let out = Expo.render_jsonl () in
  Feam_obs.reset ();
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one record per registry entry" 3 (List.length lines);
  List.iter
    (fun line ->
      match Feam_util.Json.parse line with
      | Error e -> Alcotest.failf "record does not parse: %s (%s)" line e
      | Ok json ->
        Alcotest.(check (option int))
          "fixed clock zeroes ts_ns" (Some 0)
          (Option.bind
             (Feam_util.Json.member "ts_ns" json)
             Feam_util.Json.to_int_opt))
    lines

(* -- Ledger: self-cost attribution over a manual clock --------------------- *)

let find_bucket t cell kind name =
  match
    List.assoc_opt (cell, kind, name)
      (List.map (fun (k, b) -> (k, b)) (Ledger.sorted_entries t))
  with
  | Some b -> b
  | None -> Alcotest.failf "no ledger bucket for %s/%s" cell name

let test_ledger_self_cost () =
  Feam_obs.reset ();
  let clock = Clock.manual () in
  let t = Ledger.create ~clock:(Clock.of_manual clock) () in
  Ledger.install t;
  Ledger.with_cell "bt.A->siteB" (fun () ->
      Ledger.with_stage "outer" (fun () ->
          Clock.advance clock 10L;
          Ledger.with_stage "inner" (fun () -> Clock.advance clock 5L);
          Ledger.with_determinant "isa" (fun () -> Clock.advance clock 4L);
          Clock.advance clock 2L));
  Ledger.uninstall ();
  let outer = find_bucket t "bt.A->siteB" Ledger.Stage "outer" in
  let inner = find_bucket t "bt.A->siteB" Ledger.Stage "inner" in
  let isa = find_bucket t "bt.A->siteB" Ledger.Determinant "isa" in
  Alcotest.(check int64) "outer total includes children" 21L outer.Ledger.total_ns;
  Alcotest.(check int64) "outer self excludes children" 12L outer.Ledger.self_ns;
  Alcotest.(check int64) "inner self" 5L inner.Ledger.self_ns;
  Alcotest.(check int64) "determinant self" 4L isa.Ledger.self_ns;
  Alcotest.(check int) "each ran once" 1 outer.Ledger.calls;
  Alcotest.(check (list string))
    "cell recorded" [ "bt.A->siteB" ] (Ledger.cells t);
  Alcotest.(check (list string))
    "determinant names" [ "isa" ] (Ledger.determinant_names t);
  (* cell cost = sum of self over all entries = 12 + 5 + 4 *)
  let _, cell_ns = Ledger.cell_cost t "bt.A->siteB" in
  Alcotest.(check int64) "cell self-cost sums" 21L cell_ns

let test_ledger_uninstalled_noop () =
  Ledger.uninstall ();
  let r =
    Ledger.with_cell "c" (fun () ->
        Ledger.with_stage "s" (fun () ->
            Ledger.with_determinant "d" (fun () -> 11)))
  in
  Alcotest.(check int) "thunks run straight through" 11 r

(* -- Benchtrend: the perf-regression sentinel ------------------------------ *)

let run seq benches = { Benchtrend.seq; benches }

let test_benchtrend_outcomes () =
  Alcotest.(check int)
    "empty history exits 0" 0
    (Benchtrend.exit_code (Benchtrend.evaluate []));
  (match Benchtrend.evaluate [ run 1 [ ("a", 100.0) ] ] with
  | Benchtrend.No_baseline r ->
    Alcotest.(check int) "single run reported as no-baseline" 1 r.Benchtrend.seq
  | _ -> Alcotest.fail "single run should be No_baseline");
  (* a 1.5x slowdown on bench a trips the 1.3x threshold; b is steady *)
  let runs =
    [
      run 1 [ ("a", 100.0); ("b", 200.0) ];
      run 2 [ ("a", 100.0); ("b", 200.0) ];
      run 3 [ ("a", 150.0); ("b", 201.0) ];
    ]
  in
  match Benchtrend.evaluate ~window:5 ~threshold:1.30 runs with
  | Benchtrend.Compared report ->
    Alcotest.(check int) "two baseline runs used" 2 report.Benchtrend.window;
    (match Benchtrend.regressions report with
    | [ c ] ->
      Alcotest.(check string) "bench a regressed" "a" c.Benchtrend.bench;
      Alcotest.(check (float 1e-9)) "ratio 1.5" 1.5 c.Benchtrend.ratio
    | rs -> Alcotest.failf "expected 1 regression, got %d" (List.length rs));
    Alcotest.(check int)
      "regression exits 1" 1
      (Benchtrend.exit_code (Benchtrend.Compared report));
    let rendered = Benchtrend.render (Benchtrend.Compared report) in
    let contains needle =
      let nl = String.length needle and ol = String.length rendered in
      let rec go i =
        i + nl <= ol && (String.sub rendered i nl = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "render flags the regression" true
      (contains "REGRESSED")
  | _ -> Alcotest.fail "three runs should compare"

let test_benchtrend_history_roundtrip () =
  let runs =
    [ run 1 [ ("a", 100.5); ("b", 2.25) ]; run 4 [ ("a", 99.0) ] ]
  in
  (match Benchtrend.parse_history (Benchtrend.render_history runs) with
  | Ok parsed ->
    Alcotest.(check int) "both runs survive" 2 (List.length parsed);
    Alcotest.(check int)
      "seq gap preserved" 4
      (List.nth parsed 1).Benchtrend.seq
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* non-increasing sequence numbers are rejected with a line number *)
  let bad =
    Benchtrend.render_history [ run 2 [ ("a", 1.0) ] ]
    ^ Benchtrend.render_history [ run 2 [ ("a", 1.0) ] ]
  in
  (match Benchtrend.parse_history bad with
  | Ok _ -> Alcotest.fail "duplicate seq should be rejected"
  | Error e ->
    Alcotest.(check bool)
      "error names line 2" true
      (String.length e >= 7 && String.sub e 0 7 = "line 2:"));
  match Benchtrend.parse_history "{\"schema\":1,\"run\":1,\"benches\":{\"a\":-3}}" with
  | Ok _ -> Alcotest.fail "negative ns/op should be rejected"
  | Error _ -> ()

let test_validate_bench_json () =
  let doc benches =
    Feam_util.Json.Obj
      [
        ("schema", Feam_util.Json.Int 1);
        ( "headline_ns_per_op",
          Feam_util.Json.Obj [ ("x", Feam_util.Json.Float 12.0) ] );
        ("benches", Feam_util.Json.List benches);
      ]
  in
  let bench ?(counts = [ 1; 1; 0 ]) () =
    Feam_util.Json.Obj
      [
        ("name", Feam_util.Json.Str "b");
        ("iterations", Feam_util.Json.Int 2);
        ("ns_per_op", Feam_util.Json.Float 42.0);
        ( "bounds_ns",
          Feam_util.Json.List
            [ Feam_util.Json.Float 10.0; Feam_util.Json.Float 100.0 ] );
        ( "bucket_counts",
          Feam_util.Json.List (List.map (fun c -> Feam_util.Json.Int c) counts)
        );
      ]
  in
  (match Benchtrend.validate_bench_json (doc [ bench () ]) with
  | Ok n -> Alcotest.(check int) "valid doc counts benches" 1 n
  | Error es -> Alcotest.failf "valid doc rejected: %s" (String.concat "; " es));
  match Benchtrend.validate_bench_json (doc [ bench ~counts:[ 1; 1; 3 ] () ]) with
  | Ok _ -> Alcotest.fail "bucket/iteration mismatch should be rejected"
  | Error es ->
    Alcotest.(check bool)
      "mismatch reported" true
      (List.exists
         (fun e -> String.length e > 2 && e.[0] = 'b' && e.[1] = ':')
         es)

let suite =
  ( "costs",
    [
      Alcotest.test_case "prof timer records" `Quick test_prof_records;
      Alcotest.test_case "prof disabled is a no-op" `Quick test_prof_disabled_noop;
      Alcotest.test_case "metrics freeze stops timers" `Quick
        test_prof_metrics_freeze;
      Alcotest.test_case "span alloc attrs" `Quick test_span_alloc_attrs;
      Alcotest.test_case "label escape round-trip" `Quick
        test_label_escape_roundtrip;
      Alcotest.test_case "prom exposition format" `Quick test_prom_format;
      Alcotest.test_case "exposition is deterministic" `Quick
        test_exposition_deterministic;
      Alcotest.test_case "jsonl records" `Quick test_jsonl_records;
      Alcotest.test_case "ledger self-cost" `Quick test_ledger_self_cost;
      Alcotest.test_case "ledger uninstalled no-op" `Quick
        test_ledger_uninstalled_noop;
      Alcotest.test_case "benchtrend outcomes" `Quick test_benchtrend_outcomes;
      Alcotest.test_case "benchtrend history round-trip" `Quick
        test_benchtrend_history_roundtrip;
      Alcotest.test_case "bench json validation" `Quick test_validate_bench_json;
    ] )
