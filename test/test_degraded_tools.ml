(* Degraded-tool worlds: the paper stresses that every piece of
   information is gathered "in multiple ways ... in case some tools are
   not present" (§V).  These tests run the full extended pipeline on
   fault-free worlds whose sites lack various utilities and assert that
   the fallbacks preserve the prediction = ground-truth property. *)

open Feam_sysmodel
open Feam_core

let config = Config.default

(* Truly fault-free: the property under test is the tool-fallback chain,
   so the stochastic system-error channels are disabled rather than
   relying on lucky draws. *)
let world ~home_tools ~target_tools =
  let home, home_installs =
    Fixtures.small_site ~name:"dhome" ~tools:home_tools
      ~fault_model:Fault_model.none ()
  in
  let target, _ =
    let site, installs =
      Fixtures.small_site ~name:"dtarget" ~glibc:"2.12" ~tools:target_tools
        ~fault_model:Fault_model.none ()
    in
    (site, installs)
  in
  let path, install =
    Fixtures.compiled_binary ~program:Fixtures.fortran_program home home_installs
  in
  (home, path, install, target)

let run_pipeline home path install target =
  let env = Fixtures.session_env home install in
  let bundle =
    Fixtures.run_exn (Phases.source_phase config home env ~binary_path:path)
  in
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let report =
    Fixtures.run_exn
      (Phases.target_phase config target (Site.base_env target) ~bundle ())
  in
  let p = Report.prediction report in
  (* ground truth under FEAM's configuration *)
  let actual =
    match p.Predict.verdict with
    | Predict.Ready plan ->
      let install =
        Option.get
          (Site.find_stack_install target
             ~slug:(Option.get plan.Predict.chosen_stack_slug))
      in
      let env = Fixtures.session_env target install in
      let env =
        List.fold_left
          (fun e d -> Env.prepend_path e "LD_LIBRARY_PATH" d)
          env plan.Predict.ld_library_path_additions
      in
      Feam_dynlinker.Exec.run target env
        ~binary_path:"/tmp/feam/binary/fapp" ~mode:(Feam_dynlinker.Exec.Mpi 4)
    | Predict.Not_ready _ -> Feam_dynlinker.Exec.Failure Feam_dynlinker.Exec.No_mpi_stack
  in
  (p, actual)

let check_sound name (p, actual) =
  let predicted = Predict.is_ready p in
  let ran = actual = Feam_dynlinker.Exec.Success in
  Alcotest.(check bool) (name ^ ": prediction = ground truth") predicted ran;
  Alcotest.(check bool) (name ^ ": predicted ready") true predicted

let test_no_ldd () =
  let tools = Tools.with_ldd false Tools.full in
  let home, path, install, target = world ~home_tools:tools ~target_tools:tools in
  check_sound "no ldd" (run_pipeline home path install target)

let test_no_locate () =
  let tools = Tools.with_locate false Tools.full in
  let home, path, install, target = world ~home_tools:tools ~target_tools:tools in
  check_sound "no locate" (run_pipeline home path install target)

let test_no_readelf () =
  (* without readelf the build provenance is unknown: candidate ordering
     loses the compiler-family hint but prediction soundness holds *)
  let tools = Tools.with_readelf false Tools.full in
  let home, path, install, target = world ~home_tools:tools ~target_tools:tools in
  check_sound "no readelf" (run_pipeline home path install target)

let test_no_ldd_nor_locate () =
  let tools = Tools.with_locate false (Tools.with_ldd false Tools.full) in
  let home, path, install, target = world ~home_tools:tools ~target_tools:tools in
  check_sound "no ldd nor locate" (run_pipeline home path install target)

let test_no_objdump_target () =
  (* objdump missing only at the target: the bundle carries the
     description from home, so the target phase still works *)
  let target_tools = Tools.with_objdump false Tools.full in
  let home, path, install, target =
    world ~home_tools:Tools.full ~target_tools
  in
  check_sound "no objdump at target" (run_pipeline home path install target)

let test_no_compiler_at_target () =
  (* no native compiler at the target: native probes are impossible but
     the shipped probes still verify the stack (paper §III.B: "if that
     is not possible, we use basic MPI programs compiled at other
     sites") *)
  let target_tools = Tools.with_c_compiler false Tools.full in
  let home, path, install, target =
    world ~home_tools:Tools.full ~target_tools
  in
  check_sound "no compiler at target" (run_pipeline home path install target)

let suite =
  ( "degraded-tools",
    [
      Alcotest.test_case "no ldd" `Quick test_no_ldd;
      Alcotest.test_case "no locate" `Quick test_no_locate;
      Alcotest.test_case "no readelf" `Quick test_no_readelf;
      Alcotest.test_case "no ldd nor locate" `Quick test_no_ldd_nor_locate;
      Alcotest.test_case "no objdump at target" `Quick test_no_objdump_target;
      Alcotest.test_case "no compiler at target" `Quick test_no_compiler_at_target;
    ] )
