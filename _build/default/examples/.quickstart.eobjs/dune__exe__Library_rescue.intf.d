examples/library_rescue.mli:
