examples/bundle_workflow.mli:
