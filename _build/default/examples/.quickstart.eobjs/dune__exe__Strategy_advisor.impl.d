examples/strategy_advisor.ml: Feam_core Feam_elf Feam_evalharness Feam_mpi Feam_sysmodel Feam_toolchain Feam_util Fmt List Modules_tool Params Result Site Sites Stack_install String Table Vfs
