examples/community_code.ml: Feam_core Feam_evalharness Feam_mpi Feam_sysmodel Feam_toolchain Feam_util Fmt List Option Params Site Sites Stack_install String Table Vfs
