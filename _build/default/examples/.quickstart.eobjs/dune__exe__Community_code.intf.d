examples/community_code.mli:
