examples/quickstart.mli:
