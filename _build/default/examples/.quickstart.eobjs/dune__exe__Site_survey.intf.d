examples/site_survey.mli:
