examples/strategy_advisor.mli:
