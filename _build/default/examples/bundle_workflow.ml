(* Bundle workflow: the paper's §V deployment story end to end, through
   the serialized artifact.

   At the guaranteed execution environment the source phase produces a
   bundle; the user writes it to a real file (the thing they would scp to
   each target); at the target, the file is read back and drives the
   target phase — no access to the home site, no binary pre-staged.

     dune exec examples/bundle_workflow.exe *)

open Feam_util
open Feam_sysmodel
open Feam_mpi

let v = Version.of_string_exn

let batch =
  Batch.make ~queues:[ { Batch.queue_name = "debug"; wait_seconds = 5.0 } ] Batch.Pbs

let make_site ~name ~glibc ~gcc ~distro_version =
  let compiler = Compiler.make Compiler.Gnu (v gcc) in
  let stack =
    Stack.make ~impl:Impl.Open_mpi ~impl_version:(v "1.4") ~compiler
      ~interconnect:Interconnect.Ethernet
  in
  let site =
    Site.make ~compilers:[ compiler ] ~seed:4 ~fault_model:Fault_model.none
      ~machine:Feam_elf.Types.X86_64
      ~distro:(Distro.make Distro.Centos ~version:(v distro_version) ~kernel:(v "2.6.18"))
      ~glibc:(v glibc) ~interconnect:Interconnect.Ethernet ~batch name
  in
  let installs =
    Feam_toolchain.Provision.provision_site site
      ~stacks:[ (stack, Stack_install.Functioning) ]
  in
  (site, List.hd installs)

let () =
  let home, home_install =
    make_site ~name:"lab-cluster" ~glibc:"2.5" ~gcc:"4.1.2" ~distro_version:"5.6"
  in
  let target, _ =
    make_site ~name:"center-machine" ~glibc:"2.12" ~gcc:"4.4.5" ~distro_version:"6.1"
  in
  let program =
    Feam_toolchain.Compile.program ~language:Stack.Fortran ~binary_size_mb:1.8
      "ocean_model"
  in
  let binary_path =
    Result.get_ok
      (Feam_toolchain.Compile.compile_mpi_to home home_install program
         ~dir:"/home/user/bin")
  in
  let config = Feam_core.Config.default in

  (* 1. Source phase at home, then serialize the bundle to a real file. *)
  let home_env = Modules_tool.load_stack (Site.base_env home) home_install in
  let bundle =
    Result.get_ok (Feam_core.Phases.source_phase config home home_env ~binary_path)
  in
  let artifact = Filename.temp_file "ocean_model" ".feam-bundle" in
  let text = Feam_core.Bundle_io.render bundle in
  Out_channel.with_open_text artifact (fun oc -> Out_channel.output_string oc text);
  Fmt.pr "[home]   source phase done; bundle written to %s (%d KB on disk)@."
    artifact
    (String.length text / 1024);
  Fmt.pr "[home]   contents: binary + %d library copies + %d probes (%.1f MB \
          of libraries when unpacked)@.@."
    (List.length bundle.Feam_core.Bundle.copies)
    (List.length bundle.Feam_core.Bundle.probes)
    (float_of_int (Feam_core.Bundle.library_bytes bundle) /. 1048576.0);

  (* 2. "scp" the file; at the target, parse it back. *)
  let received =
    In_channel.with_open_text artifact In_channel.input_all
  in
  let bundle' = Result.get_ok (Feam_core.Bundle_io.parse received) in
  Fmt.pr "[target] bundle parsed: created at %s, binary %s@.@."
    bundle'.Feam_core.Bundle.created_at
    (Vfs.basename
       bundle'.Feam_core.Bundle.binary_description.Feam_core.Description.path);

  (* 3. Target phase from the parsed bundle alone. *)
  let report =
    Result.get_ok
      (Feam_core.Phases.target_phase config target (Site.base_env target)
         ~bundle:bundle' ())
  in
  print_string (Feam_core.Report.render report);
  Sys.remove artifact;
  Fmt.pr "@.(temporary bundle file removed)@."
