(* Community codes distributed as binaries (paper §VI.B): the scientist
   has an application binary but no access to the environment where it
   was built — so only FEAM's *basic* prediction (target phase alone) is
   available: no shipped probes, no library resolution.

   This example surveys the five Table II sites with basic prediction for
   a binary "downloaded" from Fir, and shows what the missing source
   phase costs: sites that extended prediction could repair stay
   unusable.

     dune exec examples/community_code.exe *)

open Feam_util
open Feam_sysmodel
open Feam_evalharness

let () =
  let params = Params.default in
  let sites = Sites.build_all params in
  let fir = Sites.find_by_name sites "fir" in

  (* The community distributes a PGI-compiled Fortran binary built on
     Fir: its runtime libraries exist only where PGI is installed. *)
  let install =
    List.find
      (fun i ->
        Feam_mpi.Compiler.family
          (Feam_mpi.Stack.compiler (Stack_install.stack i))
        = Feam_mpi.Compiler.Pgi)
      (Site.stack_installs fir)
  in
  let program =
    Feam_toolchain.Compile.program ~language:Feam_mpi.Stack.Fortran
      ~binary_size_mb:3.5 "communitycode"
  in
  let path =
    match
      Feam_toolchain.Compile.compile_mpi_to fir install program
        ~dir:"/home/user/downloads"
    with
    | Ok p -> p
    | Error e -> failwith (Feam_toolchain.Compile.error_to_string e)
  in
  let bytes =
    match Vfs.find (Site.vfs fir) path with
    | Some { Vfs.kind = Vfs.Elf b; _ } -> b
    | _ -> failwith "no bytes"
  in
  Fmt.pr "Community binary: %s, built with %s on %s@.@." path
    (Feam_mpi.Stack.to_string (Stack_install.stack install))
    (Site.name fir);

  let config = Feam_core.Config.default in
  let rows =
    sites
    |> List.filter (fun s -> Site.name s <> "fir")
    |> List.map (fun target ->
           (* the user scp's the binary and runs only the target phase *)
           Vfs.remove_tree (Site.vfs target) "/tmp/feam";
           let staged = "/home/user/downloads/communitycode" in
           Vfs.add (Site.vfs target) staged (Vfs.Elf bytes);
           let verdict, detail =
             match
               Feam_core.Phases.target_phase config target
                 (Site.base_env target) ~binary_path:staged ()
             with
             | Ok report -> (
               let p = Feam_core.Report.prediction report in
               match p.Feam_core.Predict.verdict with
               | Feam_core.Predict.Ready plan ->
                 ( "READY",
                   Option.value plan.Feam_core.Predict.chosen_stack_slug
                     ~default:"(serial)" )
               | Feam_core.Predict.Not_ready (r :: _) -> ("not ready", r)
               | Feam_core.Predict.Not_ready [] -> ("not ready", ""))
             | Error e -> ("error", e)
           in
           let detail =
             if String.length detail > 58 then String.sub detail 0 58 ^ "..."
             else detail
           in
           [ Site.name target; verdict; detail ])
  in
  Table.print
    (Table.make ~title:"Basic prediction (no guaranteed environment available)"
       ~header:[ "Target site"; "Prediction"; "Detail" ]
       rows);
  Fmt.pr
    "@.Without the source phase, missing PGI runtime libraries cannot be \
     resolved: the scientist must find a PGI-equipped site or obtain the \
     bundle from someone with access to the build environment.@."
