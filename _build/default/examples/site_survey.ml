(* Site survey: FEAM's intended end-use — a scientist with one binary and
   an allocation on many sites asks "where can this run, today, without
   recompiling?"  Runs the full two-phase FEAM pipeline against all five
   Table II sites and prints a ranked summary with the simulated cost of
   finding out (both phases always under the paper's five-minute bound).

     dune exec examples/site_survey.exe *)

open Feam_util
open Feam_sysmodel
open Feam_evalharness

let () =
  let params = Params.default in
  let sites = Sites.build_all params in
  let home = Sites.find_by_name sites "india" in

  (* the scientist's application: a Fortran CFD code built with the
     GNU Open MPI stack on India *)
  let install =
    List.find
      (fun i ->
        let st = Stack_install.stack i in
        Feam_mpi.Impl.equal (Feam_mpi.Stack.impl st) Feam_mpi.Impl.Open_mpi
        && Feam_mpi.Compiler.family (Feam_mpi.Stack.compiler st) = Feam_mpi.Compiler.Gnu)
      (Site.stack_installs home)
  in
  let program =
    Feam_toolchain.Compile.program ~language:Feam_mpi.Stack.Fortran
      ~binary_size_mb:2.2 "cfd_solver"
  in
  let path =
    Result.get_ok
      (Feam_toolchain.Compile.compile_mpi_to home install program
         ~dir:"/home/user/bin")
  in
  Fmt.pr "Application: %s at %s (%s)@.@." path (Site.name home)
    (Feam_mpi.Stack.to_string (Stack_install.stack install));

  let config = Feam_core.Config.default in
  let home_env = Modules_tool.load_stack (Site.base_env home) install in
  let source_clock = Sim_clock.create () in
  let bundle =
    Result.get_ok
      (Feam_core.Phases.source_phase ~clock:source_clock config home home_env
         ~binary_path:path)
  in
  Fmt.pr "Source phase at %s: %s (simulated), bundle %.1f MB@.@." (Site.name home)
    (Sim_clock.to_string source_clock)
    (float_of_int (Feam_core.Bundle.total_bytes bundle) /. 1048576.0);

  let rows =
    sites
    |> List.filter (fun s -> Site.name s <> Site.name home)
    |> List.map (fun target ->
           Vfs.remove_tree (Site.vfs target) "/tmp/feam";
           let clock = Sim_clock.create () in
           let verdict, stack, libs =
             match
               Feam_core.Phases.target_phase ~clock config target
                 (Site.base_env target) ~bundle ()
             with
             | Ok report -> (
               let p = Feam_core.Report.prediction report in
               match p.Feam_core.Predict.verdict with
               | Feam_core.Predict.Ready plan ->
                 ( "READY",
                   Option.value plan.Feam_core.Predict.chosen_stack_slug
                     ~default:"-",
                   string_of_int (List.length plan.Feam_core.Predict.staged_copies)
                   ^ " staged" )
               | Feam_core.Predict.Not_ready (r :: _) ->
                 let r = if String.length r > 44 then String.sub r 0 44 ^ "..." else r in
                 ("not ready", r, "-")
               | Feam_core.Predict.Not_ready [] -> ("not ready", "", "-"))
             | Error e -> ("error", e, "-")
           in
           [
             Site.name target;
             verdict;
             stack;
             libs;
             Sim_clock.to_string clock;
           ])
  in
  Table.print
    (Table.make
       ~title:"FEAM survey: execution readiness of cfd_solver (extended prediction)"
       ~header:[ "Site"; "Prediction"; "Stack / reason"; "Copies"; "Phase time" ]
       rows);
  Fmt.pr
    "@.Every target phase completed within the paper's five-minute debug-queue \
     budget; the scientist never logged into a site that could not run the \
     binary.@.@.";

  (* Rank the ready sites by expected time-to-first-result: the paper's
     "shorter queuing delays" motivation as a concrete recommendation. *)
  let targets = List.filter (fun s -> Site.name s <> Site.name home) sites in
  let ranked = Ranking.rank config bundle targets in
  Table.print (Ranking.table ranked);
  match List.find_opt (fun e -> e.Ranking.ready) ranked with
  | Some best ->
    Fmt.pr "@.Recommendation: submit to %s first (~%.0f s to a first result).@."
      best.Ranking.rank_site
      (Ranking.time_to_first_result best)
  | None -> Fmt.pr "@.No site is ready for this binary.@."
