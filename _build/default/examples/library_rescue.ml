(* Library rescue: a step-by-step walk through the resolution model
   (paper §IV).

   A Fortran binary built with gcc 4.1 needs libgfortran.so.1; the target
   runs gcc 4.4 and ships only libgfortran.so.3.  We show the binary
   failing on the pristine target, FEAM vetting and staging a copy from
   the guaranteed environment, and the binary running afterwards — plus a
   counter-example where the copy is rejected because it needs a newer C
   library than the target has.

     dune exec examples/library_rescue.exe *)

open Feam_util
open Feam_sysmodel
open Feam_mpi

let v = Version.of_string_exn

let batch =
  Batch.make ~queues:[ { Batch.queue_name = "debug"; wait_seconds = 5.0 } ] Batch.Pbs

let make_site ~name ~glibc ~gcc ~distro_version ~seed =
  let compiler = Compiler.make Compiler.Gnu (v gcc) in
  let stack =
    Stack.make ~impl:Impl.Open_mpi ~impl_version:(v "1.4") ~compiler
      ~interconnect:Interconnect.Ethernet
  in
  let site =
    Site.make ~compilers:[ compiler ] ~seed ~fault_model:Fault_model.none
      ~machine:Feam_elf.Types.X86_64
      ~distro:(Distro.make Distro.Rhel ~version:(v distro_version) ~kernel:(v "2.6.18"))
      ~glibc:(v glibc) ~interconnect:Interconnect.Ethernet ~batch name
  in
  let installs =
    Feam_toolchain.Provision.provision_site site
      ~stacks:[ (stack, Stack_install.Functioning) ]
  in
  (site, List.hd installs)

let quiet = { Feam_dynlinker.Exec.p_transient = 0.0; p_sticky = 0.0; p_copy_abi = 0.0 }

let run site env path =
  Feam_dynlinker.Exec.outcome_to_string
    (Feam_dynlinker.Exec.run ~params:quiet site env ~binary_path:path
       ~mode:(Feam_dynlinker.Exec.Mpi 4))

let () =
  let home, home_install =
    make_site ~name:"home" ~glibc:"2.5" ~gcc:"4.1.2" ~distro_version:"5.6" ~seed:4
  in
  let target, target_install =
    make_site ~name:"target" ~glibc:"2.12" ~gcc:"4.4.5" ~distro_version:"6.1" ~seed:4
  in
  let program = Feam_toolchain.Compile.program ~language:Stack.Fortran "cfdapp" in
  let home_path =
    Result.get_ok (Feam_toolchain.Compile.compile_mpi_to home home_install program
        ~dir:"/home/user/bin")
  in
  Fmt.pr "[1] Built %s at home (gcc 4.1.2: needs libgfortran.so.1)@.@." home_path;

  (* migrate by hand and try to run: missing library *)
  let bytes =
    match Vfs.find (Site.vfs home) home_path with
    | Some { Vfs.kind = Vfs.Elf b; _ } -> b
    | _ -> assert false
  in
  let staged = "/home/user/bin/cfdapp" in
  Vfs.add (Site.vfs target) staged (Vfs.Elf bytes);
  let env = Modules_tool.load_stack (Site.base_env target) target_install in
  Fmt.pr "[2] Naive run at target (gcc 4.4.5 site): %s@.@." (run target env staged);

  (* FEAM: source phase gathers copies; target phase resolves *)
  let config = Feam_core.Config.default in
  let home_env = Modules_tool.load_stack (Site.base_env home) home_install in
  let bundle =
    Result.get_ok
      (Feam_core.Phases.source_phase config home home_env ~binary_path:home_path)
  in
  Fmt.pr "[3] Source phase gathered copies of: %s@.@."
    (String.concat ", "
       (List.map (fun c -> c.Feam_core.Bdc.copy_request) bundle.Feam_core.Bundle.copies));
  let report =
    Result.get_ok
      (Feam_core.Phases.target_phase config target (Site.base_env target)
         ~bundle ~binary_path:staged ())
  in
  let p = Feam_core.Report.prediction report in
  (match p.Feam_core.Predict.verdict with
  | Feam_core.Predict.Ready plan ->
    Fmt.pr "[4] FEAM resolution staged: %s@.@."
      (String.concat ", " (List.map fst plan.Feam_core.Predict.staged_copies));
    let env' =
      List.fold_left
        (fun e d -> Env.prepend_path e "LD_LIBRARY_PATH" d)
        env plan.Feam_core.Predict.ld_library_path_additions
    in
    Fmt.pr "[5] Run with FEAM's configuration: %s@.@." (run target env' staged)
  | Feam_core.Predict.Not_ready reasons ->
    Fmt.pr "[4] unexpectedly not ready:@.";
    List.iter (fun r -> Fmt.pr "    - %s@." r) reasons);

  (* Counter-example: the reverse direction fails the C-library vetting.
     A binary from the gcc 4.4 / glibc 2.12 site needs libgfortran.so.3;
     its copy references GLIBC_2.6 symbols — unusable on a glibc 2.5
     system, and FEAM says so instead of staging a broken copy. *)
  Fmt.pr "--- Counter-example: copy rejected by the C-library rule ---@.@.";
  let reverse_program = Feam_toolchain.Compile.program ~language:Stack.Fortran "reverse" in
  let target_path =
    Result.get_ok
      (Feam_toolchain.Compile.compile_mpi_to target target_install reverse_program
         ~dir:"/home/user/bin")
  in
  let target_env = Modules_tool.load_stack (Site.base_env target) target_install in
  let reverse_bundle =
    Result.get_ok
      (Feam_core.Phases.source_phase config target target_env
         ~binary_path:target_path)
  in
  Vfs.remove_tree (Site.vfs home) "/tmp/feam";
  let reverse_report =
    Result.get_ok
      (Feam_core.Phases.target_phase config home (Site.base_env home)
         ~bundle:reverse_bundle ())
  in
  match (Feam_core.Report.prediction reverse_report).Feam_core.Predict.verdict with
  | Feam_core.Predict.Ready _ -> Fmt.pr "unexpectedly ready@."
  | Feam_core.Predict.Not_ready reasons ->
    Fmt.pr "FEAM predicts NOT READY at the older site:@.";
    List.iter (fun r -> Fmt.pr "  - %s@." r) reasons
