(* Quickstart: the complete FEAM workflow on two simulated sites.

   We build a "guaranteed execution environment" (the user's home
   cluster, where the binary is known to run) and a target site with a
   different OS generation, compile an MPI application at home, then run
   FEAM's source phase at home and target phase at the target to decide —
   without recompiling — whether the binary is ready to execute there.

     dune exec examples/quickstart.exe *)

open Feam_util
open Feam_sysmodel
open Feam_mpi

let v = Version.of_string_exn

(* -- 1. Describe the two computing sites. --------------------------------- *)

let batch =
  Batch.make ~queues:[ { Batch.queue_name = "debug"; wait_seconds = 10.0 } ] Batch.Pbs

let make_site ~name ~glibc ~gcc ~distro_version =
  let compiler = Compiler.make Compiler.Gnu (v gcc) in
  let stack =
    Stack.make ~impl:Impl.Open_mpi ~impl_version:(v "1.4") ~compiler
      ~interconnect:Interconnect.Ethernet
  in
  let site =
    Site.make ~description:"quickstart cluster" ~compilers:[ compiler ] ~seed:4
      ~fault_model:Fault_model.none
      ~machine:Feam_elf.Types.X86_64
      ~distro:
        (Distro.make Distro.Centos ~version:(v distro_version) ~kernel:(v "2.6.18"))
      ~glibc:(v glibc) ~interconnect:Interconnect.Ethernet ~batch name
  in
  let installs =
    Feam_toolchain.Provision.provision_site site
      ~stacks:[ (stack, Stack_install.Functioning) ]
  in
  (site, List.hd installs)

let () =
  let home, home_install = make_site ~name:"home-cluster" ~glibc:"2.5" ~gcc:"4.1.2" ~distro_version:"5.6" in
  let target, _ = make_site ~name:"remote-site" ~glibc:"2.12" ~gcc:"4.4.5" ~distro_version:"6.1" in
  Fmt.pr "Sites:@.  home:   %a@.  target: %a@.@." Site.pp home Site.pp target;

  (* -- 2. Compile the application at home (a Fortran MPI solver). -------- *)
  let program =
    Feam_toolchain.Compile.program ~language:Stack.Fortran ~binary_size_mb:2.0
      "solver"
  in
  let binary_path =
    match
      Feam_toolchain.Compile.compile_mpi_to home home_install program
        ~dir:"/home/user/bin"
    with
    | Ok p -> p
    | Error e -> failwith (Feam_toolchain.Compile.error_to_string e)
  in
  Fmt.pr "Compiled %s at %s with %s@.@." binary_path (Site.name home)
    (Stack.to_string (Stack_install.stack home_install));

  (* -- 3. Source phase at the guaranteed execution environment. ----------- *)
  let config = Feam_core.Config.default in
  let home_env = Modules_tool.load_stack (Site.base_env home) home_install in
  let clock = Sim_clock.create () in
  let bundle =
    match
      Feam_core.Phases.source_phase ~clock config home home_env ~binary_path
    with
    | Ok b -> b
    | Error e -> failwith e
  in
  Fmt.pr
    "Source phase complete in %s (simulated): %d library copies, %d probes, \
     %.1f MB bundle@.@."
    (Sim_clock.to_string clock)
    (List.length bundle.Feam_core.Bundle.copies)
    (List.length bundle.Feam_core.Bundle.probes)
    (float_of_int (Feam_core.Bundle.total_bytes bundle) /. 1048576.0);

  (* -- 4. Target phase at the new site (bundle carries the binary). ------- *)
  let clock = Sim_clock.create () in
  let report =
    match
      Feam_core.Phases.target_phase ~clock config target (Site.base_env target)
        ~bundle ()
    with
    | Ok r -> r
    | Error e -> failwith e
  in
  Fmt.pr "Target phase complete in %s (simulated).@.@." (Sim_clock.to_string clock);
  print_string (Feam_core.Report.render report);

  (* -- 5. Verify against ground truth. ------------------------------------ *)
  let prediction = Feam_core.Report.prediction report in
  match prediction.Feam_core.Predict.verdict with
  | Feam_core.Predict.Ready plan ->
    let install =
      match plan.Feam_core.Predict.chosen_stack_slug with
      | Some slug -> Option.get (Site.find_stack_install target ~slug)
      | None -> failwith "no stack in plan"
    in
    let env = Modules_tool.load_stack (Site.base_env target) install in
    let env =
      List.fold_left
        (fun e d -> Env.prepend_path e "LD_LIBRARY_PATH" d)
        env plan.Feam_core.Predict.ld_library_path_additions
    in
    let outcome =
      Feam_dynlinker.Exec.run target env
        ~binary_path:"/tmp/feam/binary/solver" ~mode:(Feam_dynlinker.Exec.Mpi 8)
    in
    Fmt.pr "@.Ground-truth execution with FEAM's configuration: %s@."
      (Feam_dynlinker.Exec.outcome_to_string outcome)
  | Feam_core.Predict.Not_ready reasons ->
    Fmt.pr "@.FEAM predicts the site is not ready:@.";
    List.iter (fun r -> Fmt.pr "  - %s@." r) reasons
