(* Strategy advisor: binary migration vs recompilation (the paper's §VII
   future-work direction, implemented as an extension).

   A scientist owns the source of a Fortran CFD code and has an
   allocation on the five Table II sites.  For each target, FEAM first
   predicts the readiness of the migrated *binary*; where the binary
   cannot run, the advisor checks whether the target can rebuild from
   source (native toolchain + a functioning stack that accepts it) and
   estimates the rebuild cost.

     dune exec examples/strategy_advisor.exe *)

open Feam_util
open Feam_sysmodel
open Feam_evalharness

let () =
  let params = Params.default in
  let sites = Sites.build_all params in
  let home = Sites.find_by_name sites "ranger" in

  (* built on Ranger with the PGI Open MPI stack: the PGI runtime makes
     binary migration hard, while the source is portable *)
  let install =
    List.find
      (fun i ->
        Feam_mpi.Compiler.family
          (Feam_mpi.Stack.compiler (Stack_install.stack i))
        = Feam_mpi.Compiler.Pgi)
      (Site.stack_installs home)
  in
  let source =
    Feam_toolchain.Compile.program ~language:Feam_mpi.Stack.Fortran
      ~binary_size_mb:2.6 "climate_model"
  in
  let path =
    Result.get_ok
      (Feam_toolchain.Compile.compile_mpi_to home install source
         ~dir:"/home/user/bin")
  in
  Fmt.pr "Application: %s, built at %s with %s; source available@.@." path
    (Site.name home)
    (Feam_mpi.Stack.to_string (Stack_install.stack install));

  let config = Feam_core.Config.default in
  let home_env = Modules_tool.load_stack (Site.base_env home) install in
  let bundle =
    Result.get_ok
      (Feam_core.Phases.source_phase config home home_env ~binary_path:path)
  in
  let rows =
    sites
    |> List.filter (fun s -> Site.name s <> Site.name home)
    |> List.map (fun target ->
           Vfs.remove_tree (Site.vfs target) "/tmp/feam";
           let prediction =
             match
               Feam_core.Phases.target_phase config target
                 (Site.base_env target) ~bundle ()
             with
             | Ok report -> Feam_core.Report.prediction report
             | Error e ->
               {
                 Feam_core.Predict.verdict = Feam_core.Predict.Not_ready [ e ];
                 determinants =
                   {
                     Feam_core.Predict.isa =
                       {
                         Feam_core.Predict.isa_compatible = false;
                         binary_machine = Feam_elf.Types.X86_64;
                         binary_class = Feam_elf.Types.C64;
                         site_machine = None;
                       };
                     stack = None;
                     clib =
                       {
                         Feam_core.Predict.clib_compatible = false;
                         required = None;
                         available = None;
                       };
                     libs = None;
                   };
               }
           in
           let advice =
             Feam_core.Advisor.advise target ~binary_prediction:prediction
               ~source:(Some source)
           in
           let rationale =
             if String.length advice.Feam_core.Advisor.rationale > 56 then
               String.sub advice.Feam_core.Advisor.rationale 0 56 ^ "..."
             else advice.Feam_core.Advisor.rationale
           in
           [
             Site.name target;
             Feam_core.Advisor.strategy_to_string advice.Feam_core.Advisor.strategy;
             rationale;
           ])
  in
  Table.print
    (Table.make ~title:"Migration strategy per target site"
       ~header:[ "Site"; "Recommendation"; "Why" ]
       rows);
  Fmt.pr
    "@.Binary migration wins wherever FEAM predicts readiness (no compile \
     time, no source needed); recompilation covers targets whose environment \
     cannot host the binary; sites offering neither are skipped without \
     wasting a single trial-and-error submission.@."
