(* Tests for the administrator what-if analysis. *)

open Feam_evalharness

let v = Feam_util.Version.of_string_exn

let test_pgi_at_forge_unlocks_migrations () =
  (* PGI binaries from ranger/fir fail at forge on their missing vendor
     runtime; installing the PGI suite must unlock a strictly positive
     number of them *)
  let r =
    Whatif.evaluate Params.default ~site_name:"forge"
      ~change:
        (Whatif.Add_compiler
           (Feam_mpi.Compiler.make Feam_mpi.Compiler.Pgi (v "10.9")))
  in
  Alcotest.(check bool) "positive delta" true (Whatif.delta r > 0);
  Alcotest.(check bool) "bounded by migrations" true
    (r.Whatif.successes_after_change <= r.Whatif.migrations);
  Alcotest.(check bool) "change described" true
    (Feam_sysmodel.Str_split.contains ~sub:"PGI" r.Whatif.change)

let test_noop_change_is_neutral () =
  (* installing a compiler the site already has changes (almost) nothing:
     allow only the small stochastic jitter of rebuilt worlds *)
  let r =
    Whatif.evaluate Params.default ~site_name:"forge"
      ~change:
        (Whatif.Add_compiler
           (Feam_mpi.Compiler.make Feam_mpi.Compiler.Intel (v "12")))
  in
  Alcotest.(check bool)
    (Printf.sprintf "delta %d small" (Whatif.delta r))
    true
    (abs (Whatif.delta r) <= 6);
  Alcotest.(check bool) "table renders" true
    (String.length (Feam_util.Table.render (Whatif.table [ r ])) > 0)

let suite =
  ( "whatif",
    [
      Alcotest.test_case "PGI at forge unlocks migrations" `Slow
        test_pgi_at_forge_unlocks_migrations;
      Alcotest.test_case "no-op change is neutral" `Slow test_noop_change_is_neutral;
    ] )
