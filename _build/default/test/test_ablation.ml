(* Shape assertions over the ablation study: each stripped capability
   must cost what the design says it provides. *)

open Feam_evalharness

let results = lazy (Ablation.run Params.default)

let find name =
  List.find (fun r -> r.Ablation.variant = name) (Lazy.force results)

let test_probes_carry_accuracy () =
  let full = find "full FEAM" in
  let stripped = find "no foreign probes" in
  (* extended accuracy must drop markedly without the shipped probes *)
  Alcotest.(check bool) "NAS accuracy drops" true
    (stripped.Ablation.extended_accuracy_nas
    < full.Ablation.extended_accuracy_nas -. 0.05);
  Alcotest.(check bool) "SPEC accuracy drops" true
    (stripped.Ablation.extended_accuracy_spec
    < full.Ablation.extended_accuracy_spec -. 0.05)

let test_fortran_probe_contributes () =
  let full = find "full FEAM" in
  let c_only = find "C probes only" in
  Alcotest.(check bool) "NAS accuracy drops without Fortran probe" true
    (c_only.Ablation.extended_accuracy_nas
    < full.Ablation.extended_accuracy_nas);
  (* but not as far as losing probes entirely *)
  let no_probes = find "no foreign probes" in
  Alcotest.(check bool) "C probes still beat none" true
    (c_only.Ablation.extended_accuracy_nas
    > no_probes.Ablation.extended_accuracy_nas)

let test_resolution_carries_success () =
  let full = find "full FEAM" in
  let stripped = find "no resolution" in
  Alcotest.(check bool) "NAS success collapses" true
    (stripped.Ablation.after_nas < full.Ablation.after_nas -. 0.08);
  Alcotest.(check bool) "SPEC success collapses" true
    (stripped.Ablation.after_spec < full.Ablation.after_spec -. 0.08);
  (* accuracy is not hurt: unresolvable migrations are still correctly
     predicted not ready *)
  Alcotest.(check bool) "accuracy survives" true
    (stripped.Ablation.extended_accuracy_nas
    >= full.Ablation.extended_accuracy_nas -. 0.02)

let suite =
  ( "ablation",
    [
      Alcotest.test_case "foreign probes carry accuracy" `Slow
        test_probes_carry_accuracy;
      Alcotest.test_case "fortran probe contributes" `Slow
        test_fortran_probe_contributes;
      Alcotest.test_case "resolution carries success" `Slow
        test_resolution_carries_success;
    ] )
