(* Remaining coverage: bundle merging, advisor cost model, timing
   helpers, discovery printing, effort table wiring. *)

open Feam_sysmodel
open Feam_core

let make_bundle site installs =
  let path, install =
    Fixtures.compiled_binary ~program:Fixtures.fortran_program site installs
  in
  let env = Fixtures.session_env site install in
  Fixtures.run_exn (Phases.source_phase Config.default site env ~binary_path:path)

let test_merged_library_bytes_dedups () =
  let site, installs = Fixtures.small_site ~name:"mergehome" () in
  let b1 = make_bundle site installs in
  (* a second binary at the same site shares the same library copies *)
  let path2, install =
    Fixtures.compiled_binary
      ~program:(Feam_toolchain.Compile.program ~language:Feam_mpi.Stack.Fortran "fapp2")
      site installs
  in
  let env = Fixtures.session_env site install in
  let b2 =
    Fixtures.run_exn (Phases.source_phase Config.default site env ~binary_path:path2)
  in
  let merged = Bundle.merged_library_bytes [ b1; b2 ] in
  let single = Bundle.library_bytes b1 in
  Alcotest.(check int) "shared copies counted once" single merged;
  Alcotest.(check bool) "naive sum would be double" true
    (Bundle.library_bytes b1 + Bundle.library_bytes b2 = 2 * merged)

let test_bundle_total_includes_binary () =
  let site, installs = Fixtures.small_site ~name:"mergehome2" () in
  let b = make_bundle site installs in
  Alcotest.(check bool) "total > libraries" true
    (Bundle.total_bytes b > Bundle.library_bytes b)

let test_recompile_seconds_monotone () =
  let site, _ = Fixtures.small_site ~name:"rc" () in
  let small = Advisor.recompile_seconds ~source_size_mb:1.0 site in
  let large = Advisor.recompile_seconds ~source_size_mb:10.0 site in
  Alcotest.(check bool) "bigger source builds longer" true (large > small);
  Alcotest.(check bool) "positive" true (small > 0.0)

let test_timing_helpers () =
  let params = Feam_evalharness.Params.default in
  let sites = Feam_evalharness.Sites.build_all params in
  let benchmarks = [ List.hd Feam_suites.Npb.all ] in
  let binaries = Feam_evalharness.Testset.build params sites benchmarks in
  match binaries with
  | [] -> Alcotest.fail "empty corpus"
  | b :: _ ->
    let target =
      List.find
        (fun s ->
          Site.name s <> Site.name b.Feam_evalharness.Testset.home
          && Feam_evalharness.Migrate.has_matching_impl b s)
        sites
    in
    let t = Feam_evalharness.Timing.time_migration b target in
    Alcotest.(check bool) "source time positive" true
      (t.Feam_evalharness.Timing.source_seconds > 0.0);
    Alcotest.(check bool) "target time positive" true
      (t.Feam_evalharness.Timing.target_seconds > 0.0);
    Alcotest.(check bool) "both under the paper's bound" true
      (t.Feam_evalharness.Timing.source_seconds < 300.0
      && t.Feam_evalharness.Timing.target_seconds < 300.0);
    Alcotest.(check (float 1e-9)) "mb helper" 2.0
      (Feam_evalharness.Timing.mb (2 * 1024 * 1024))

let test_discovery_pp_smoke () =
  let site, installs = Fixtures.small_site ~name:"ppsite" () in
  let env = Fixtures.session_env site (List.hd installs) in
  let d = Edc.discover ~env_type:`Guaranteed site env in
  let text = Fmt.str "%a" Discovery.pp d in
  Alcotest.(check bool) "mentions environment" true
    (Str_split.contains ~sub:"guaranteed execution site" text);
  Alcotest.(check bool) "mentions stack" true
    (Str_split.contains ~sub:"Open MPI" text)

let test_description_pp_smoke () =
  let site, installs = Fixtures.small_site ~name:"ppsite2" () in
  let path, _ = Fixtures.compiled_binary site installs in
  let d = Fixtures.run_exn (Bdc.describe site (Site.base_env site) ~path) in
  let text = Fmt.str "%a" Description.pp d in
  Alcotest.(check bool) "format shown" true
    (Str_split.contains ~sub:"elf64-x86-64" text)

let suite =
  ( "misc-coverage",
    [
      Alcotest.test_case "merged bundle bytes dedup" `Quick
        test_merged_library_bytes_dedups;
      Alcotest.test_case "bundle total includes binary" `Quick
        test_bundle_total_includes_binary;
      Alcotest.test_case "recompile cost monotone" `Quick test_recompile_seconds_monotone;
      Alcotest.test_case "timing helpers" `Slow test_timing_helpers;
      Alcotest.test_case "discovery pp" `Quick test_discovery_pp_smoke;
      Alcotest.test_case "description pp" `Quick test_description_pp_smoke;
    ] )
