(* Unit and property tests for Feam_util.Version. *)

open Feam_util

let v = Version.of_string_exn

let check_parse s expected =
  Alcotest.(check string) s expected (Version.to_string (v s))

let test_parse_roundtrip () =
  List.iter
    (fun s -> check_parse s s)
    [ "2.3.4"; "1.4"; "1.7rc1"; "1.7a2"; "4.4.5"; "11.1"; "2"; "10.0.1" ]

let test_parse_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("reject " ^ s) true (Version.of_string s = None))
    [ ""; "abc"; ".5"; "-1" ]

let test_components () =
  Alcotest.(check (list int)) "components" [ 2; 3; 4 ] (Version.components (v "2.3.4"));
  Alcotest.(check int) "major" 2 (Version.major (v "2.3.4"));
  Alcotest.(check (option int)) "minor" (Some 3) (Version.minor (v "2.3.4"));
  Alcotest.(check (option int)) "no minor" None (Version.minor (v "7"));
  Alcotest.(check (option string)) "tag" (Some "rc1") (Version.tag (v "1.7rc1"))

let test_order_basic () =
  let lt a b =
    Alcotest.(check bool)
      (Printf.sprintf "%s < %s" a b)
      true
      Version.(v a < v b)
  in
  lt "2.3.4" "2.4";
  lt "2.4" "2.12";
  lt "1.7rc1" "1.7";
  lt "1.7a2" "1.7rc1" (* "a2" < "rc1" lexicographically *);
  lt "1.3" "1.4";
  lt "2.11.1" "2.12"

let test_zero_padding () =
  Alcotest.(check bool) "1.7 = 1.7.0" true (Version.equal (v "1.7") (v "1.7.0"));
  Alcotest.(check bool) "1.7 <= 1.7.0" true Version.(v "1.7" <= v "1.7.0");
  Alcotest.(check bool) "1.7.1 > 1.7" true Version.(v "1.7.1" > v "1.7")

let test_min_max () =
  Alcotest.check Fixtures.version "max" (v "2.12") (Version.max (v "2.5") (v "2.12"));
  Alcotest.check Fixtures.version "min" (v "2.5") (Version.min (v "2.5") (v "2.12"))

let test_make_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Version.make: empty component list")
    (fun () -> ignore (Version.make []));
  Alcotest.check_raises "negative"
    (Invalid_argument "Version.make: negative component") (fun () ->
      ignore (Version.make [ 1; -2 ]))

(* -- qcheck properties --------------------------------------------------- *)

let gen_version =
  QCheck.Gen.(
    let components = list_size (int_range 1 4) (int_range 0 30) in
    let tag = opt (oneofl [ "rc1"; "a2"; "b"; "pre" ]) in
    map2 (fun c t -> Version.make ?tag:t c) components tag)

let arb_version = QCheck.make ~print:Version.to_string gen_version

let prop_roundtrip =
  QCheck.Test.make ~name:"version: to_string/of_string roundtrip" ~count:500
    arb_version (fun a ->
      match Version.of_string (Version.to_string a) with
      | Some b -> Version.equal a b
      | None -> false)

let prop_total_order_antisym =
  QCheck.Test.make ~name:"version: compare antisymmetric" ~count:500
    (QCheck.pair arb_version arb_version) (fun (a, b) ->
      let c1 = Version.compare a b and c2 = Version.compare b a in
      (c1 = 0 && c2 = 0) || c1 * c2 < 0)

let prop_total_order_trans =
  QCheck.Test.make ~name:"version: compare transitive" ~count:500
    (QCheck.triple arb_version arb_version arb_version) (fun (a, b, c) ->
      let sorted = List.sort Version.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] ->
        Version.(x <= y) && Version.(y <= z) && Version.(x <= z)
      | _ -> false)

let prop_max_commutes =
  QCheck.Test.make ~name:"version: max commutative and an upper bound" ~count:500
    (QCheck.pair arb_version arb_version) (fun (a, b) ->
      let m = Version.max a b in
      Version.equal m (Version.max b a) && Version.(a <= m) && Version.(b <= m))

let suite =
  ( "version",
    [
      Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
      Alcotest.test_case "parse invalid" `Quick test_parse_invalid;
      Alcotest.test_case "components" `Quick test_components;
      Alcotest.test_case "ordering" `Quick test_order_basic;
      Alcotest.test_case "zero padding" `Quick test_zero_padding;
      Alcotest.test_case "min/max" `Quick test_min_max;
      Alcotest.test_case "make validation" `Quick test_make_invalid;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_total_order_antisym;
      QCheck_alcotest.to_alcotest prop_total_order_trans;
      QCheck_alcotest.to_alcotest prop_max_commutes;
    ] )
