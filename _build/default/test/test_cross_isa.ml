(* Cross-ISA integration: a PowerPC world works end to end, and
   migrations across architectures are refused by the first
   determinant — on both sides. *)

open Feam_sysmodel
open Feam_core

let config = Config.default

let ppc_world () =
  let home, installs = Fixtures.ppc_site ~name:"ppchome" () in
  let path, install = Fixtures.compiled_binary home installs in
  (home, path, install)

let test_ppc_binary_is_big_endian_elf () =
  let home, path, _ = ppc_world () in
  match Vfs.find (Site.vfs home) path with
  | Some { Vfs.kind = Vfs.Elf bytes; _ } ->
    let spec = Result.get_ok (Feam_elf.Reader.spec_of_bytes bytes) in
    Alcotest.(check bool) "big endian" true
      (spec.Feam_elf.Spec.endian = Feam_elf.Types.BE);
    Alcotest.(check bool) "ppc64" true
      (spec.Feam_elf.Spec.machine = Feam_elf.Types.PPC64)
  | _ -> Alcotest.fail "no binary"

let test_ppc_to_ppc_ready () =
  let home, path, home_install = ppc_world () in
  let target, _ = Fixtures.ppc_site ~name:"ppctarget" () in
  let env = Fixtures.session_env home home_install in
  let bundle = Fixtures.run_exn (Phases.source_phase config home env ~binary_path:path) in
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let report =
    Fixtures.run_exn (Phases.target_phase config target (Site.base_env target) ~bundle ())
  in
  Alcotest.(check bool) "ready" true (Predict.is_ready (Report.prediction report))

let test_ppc_to_x86_refused () =
  let home, path, home_install = ppc_world () in
  let target, _ = Fixtures.small_site ~name:"x86target" () in
  let env = Fixtures.session_env home home_install in
  let bundle = Fixtures.run_exn (Phases.source_phase config home env ~binary_path:path) in
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let report =
    Fixtures.run_exn (Phases.target_phase config target (Site.base_env target) ~bundle ())
  in
  let p = Report.prediction report in
  Alcotest.(check bool) "not ready" false (Predict.is_ready p);
  Alcotest.(check bool) "isa reason" true
    (List.exists
       (fun r -> Str_split.contains ~sub:"incompatible ISA" r)
       (Predict.reasons p));
  (* ground truth agrees *)
  let bytes =
    match Vfs.find (Site.vfs home) path with
    | Some { Vfs.kind = Vfs.Elf b; _ } -> b
    | _ -> assert false
  in
  Vfs.add (Site.vfs target) "/home/user/ppcapp" (Vfs.Elf bytes);
  let install = List.hd (Site.stack_installs target) in
  match
    Feam_dynlinker.Exec.run ~params:Fault_model.none target
      (Fixtures.session_env target install)
      ~binary_path:"/home/user/ppcapp" ~mode:(Feam_dynlinker.Exec.Mpi 4)
  with
  | Feam_dynlinker.Exec.Failure (Feam_dynlinker.Exec.Wrong_isa _) -> ()
  | o -> Alcotest.failf "unexpected: %s" (Feam_dynlinker.Exec.outcome_to_string o)

let test_x86_to_ppc_refused_basic () =
  (* basic prediction (no bundle) also catches the ISA mismatch *)
  let home, installs = Fixtures.small_site ~name:"x86home2" () in
  let path, _ = Fixtures.compiled_binary home installs in
  let target, _ = Fixtures.ppc_site ~name:"ppctarget2" () in
  let bytes =
    match Vfs.find (Site.vfs home) path with
    | Some { Vfs.kind = Vfs.Elf b; _ } -> b
    | _ -> assert false
  in
  Vfs.add (Site.vfs target) "/home/user/x86app" (Vfs.Elf bytes);
  let report =
    Fixtures.run_exn
      (Phases.target_phase config target (Site.base_env target)
         ~binary_path:"/home/user/x86app" ())
  in
  Alcotest.(check bool) "not ready" false (Predict.is_ready (Report.prediction report))

let test_ppc_uname_and_objdump () =
  let home, path, _ = ppc_world () in
  Alcotest.(check string) "uname" "ppc64"
    (Result.get_ok (Utilities.uname_p home));
  let out = Result.get_ok (Utilities.objdump_p home path) in
  Alcotest.(check bool) "format" true
    (Str_split.contains ~sub:"file format elf64-powerpc" out)

let suite =
  ( "cross-isa",
    [
      Alcotest.test_case "ppc binary is BE ELF" `Quick test_ppc_binary_is_big_endian_elf;
      Alcotest.test_case "ppc to ppc ready" `Quick test_ppc_to_ppc_ready;
      Alcotest.test_case "ppc to x86 refused" `Quick test_ppc_to_x86_refused;
      Alcotest.test_case "x86 to ppc refused (basic)" `Quick test_x86_to_ppc_refused_basic;
      Alcotest.test_case "ppc tool output" `Quick test_ppc_uname_and_objdump;
    ] )
