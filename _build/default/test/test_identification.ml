(* Exhaustive and property tests for the Table I identification scheme:
   over every stack combination the evaluation uses, and over randomized
   stacks, the DT_NEEDED fingerprint must identify exactly the right
   implementation — the basis of the paper's "100% accurate at assessing
   whether a matching MPI implementation was available" (§VI.B). *)

open Feam_util
open Feam_mpi
open Feam_core

let v = Version.of_string_exn

let all_compilers =
  [
    Compiler.make Compiler.Gnu (v "3.4.6");
    Compiler.make Compiler.Gnu (v "4.1.2");
    Compiler.make Compiler.Gnu (v "4.4.5");
    Compiler.make Compiler.Intel (v "10.1");
    Compiler.make Compiler.Intel (v "11.1");
    Compiler.make Compiler.Intel (v "12");
    Compiler.make Compiler.Pgi (v "7.2");
    Compiler.make Compiler.Pgi (v "10.9");
  ]

let all_versions = function
  | Impl.Open_mpi -> [ "1.3"; "1.4" ]
  | Impl.Mvapich2 -> [ "1.2"; "1.7rc1"; "1.7a2"; "1.7a" ]
  | Impl.Mpich2 -> [ "1.3"; "1.4" ]

let stack_of impl version compiler =
  Stack.make ~impl ~impl_version:(v version) ~compiler
    ~interconnect:(Feam_evalharness.Sites.stack_interconnect impl)

(* The DT_NEEDED list a binary built with this stack would carry
   (MPI + system libs + the universal base). *)
let needed_of stack language =
  List.map Soname.to_string (Stack.needed_libs stack language)
  @ [ "libm.so.6"; "libpthread.so.0"; "libc.so.6" ]

let test_exhaustive_identification () =
  List.iter
    (fun impl ->
      List.iter
        (fun version ->
          List.iter
            (fun compiler ->
              List.iter
                (fun language ->
                  let stack = stack_of impl version compiler in
                  let needed = needed_of stack language in
                  match Mpi_ident.identify needed with
                  | Some ident ->
                    Alcotest.(check string)
                      (Printf.sprintf "%s %s %s" (Impl.name impl) version
                         (Compiler.to_string compiler))
                      (Impl.name impl)
                      (Impl.name ident.Mpi_ident.impl)
                  | None ->
                    Alcotest.failf "no identification for %s" (Stack.slug stack))
                [ Stack.C; Stack.Fortran ])
            all_compilers)
        (all_versions impl))
    Impl.all

let test_fortran_bindings_detected () =
  List.iter
    (fun impl ->
      let stack = stack_of impl (List.hd (all_versions impl)) (List.hd all_compilers) in
      let c = Option.get (Mpi_ident.identify (needed_of stack Stack.C)) in
      let f = Option.get (Mpi_ident.identify (needed_of stack Stack.Fortran)) in
      Alcotest.(check bool) (Impl.name impl ^ " C") false c.Mpi_ident.fortran_bindings;
      Alcotest.(check bool) (Impl.name impl ^ " F") true f.Mpi_ident.fortran_bindings)
    Impl.all

(* Identification is order-insensitive and robust to extra non-MPI
   libraries in the list. *)
let gen_noise_libs =
  QCheck.Gen.(
    list_size (int_range 0 5)
      (oneofl
         [ "libz.so.1"; "libstdc++.so.6"; "libgfortran.so.1"; "libhdf5.so.0";
           "libX11.so.6"; "libdl.so.2" ]))

let gen_stack =
  QCheck.Gen.(
    oneofl Impl.all >>= fun impl ->
    oneofl (all_versions impl) >>= fun version ->
    oneofl all_compilers >>= fun compiler ->
    oneofl [ Stack.C; Stack.Fortran ] >>= fun language ->
    return (stack_of impl version compiler, language))

let prop_identification_robust =
  QCheck.Test.make
    ~name:"identification survives shuffling and unrelated libraries" ~count:300
    (QCheck.make
       ~print:(fun ((s, _), noise, seed) ->
         Printf.sprintf "%s + [%s] @%d" (Stack.slug s) (String.concat ";" noise) seed)
       QCheck.Gen.(triple gen_stack gen_noise_libs (int_range 0 1000)))
    (fun ((stack, language), noise, seed) ->
      let needed = needed_of stack language @ noise in
      (* deterministic shuffle *)
      let g = Prng.create seed in
      let arr = Array.of_list needed in
      for i = Array.length arr - 1 downto 1 do
        let j = Prng.int g (i + 1) in
        let t = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- t
      done;
      match Mpi_ident.identify (Array.to_list arr) with
      | Some ident -> Impl.equal ident.Mpi_ident.impl (Stack.impl stack)
      | None -> false)

(* Stack slugs parse back to the stack's identity. *)
let prop_slug_roundtrip =
  QCheck.Test.make ~name:"stack slug parses back to impl/version/family"
    ~count:200
    (QCheck.make
       ~print:(fun (s, _) -> Stack.slug s)
       gen_stack)
    (fun (stack, _) ->
      match
        Discovery.parse_stack_slug ~via:Discovery.Modules (Stack.slug stack)
      with
      | Some d ->
        Impl.equal d.Discovery.impl (Stack.impl stack)
        && d.Discovery.impl_version = Some (Stack.impl_version stack)
        && d.Discovery.compiler_family
           = Some (Compiler.family (Stack.compiler stack))
      | None -> false)

let suite =
  ( "identification",
    [
      Alcotest.test_case "exhaustive over stack matrix" `Quick
        test_exhaustive_identification;
      Alcotest.test_case "fortran bindings detected" `Quick
        test_fortran_bindings_detected;
      QCheck_alcotest.to_alcotest prop_identification_robust;
      QCheck_alcotest.to_alcotest prop_slug_roundtrip;
    ] )
