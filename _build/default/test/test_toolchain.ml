(* Tests for the toolchain: glibc model, library catalog, provisioning
   and the compile simulator. *)

open Feam_util
open Feam_sysmodel
open Feam_toolchain

let v = Version.of_string_exn

(* -- Glibc ----------------------------------------------------------------- *)

let test_symbol_roundtrip () =
  Alcotest.(check string) "symbol" "GLIBC_2.3.4" (Glibc.symbol_of_version (v "2.3.4"));
  Alcotest.(check bool) "parse" true
    (Glibc.version_of_symbol "GLIBC_2.3.4" = Some (v "2.3.4"));
  Alcotest.(check bool) "reject" true (Glibc.version_of_symbol "FOO_1.0" = None)

let test_defined_versions () =
  let defs = Glibc.defined_symbol_versions (v "2.3.4") in
  Alcotest.(check bool) "has 2.2.5" true (List.mem "GLIBC_2.2.5" defs);
  Alcotest.(check bool) "has 2.3.4" true (List.mem "GLIBC_2.3.4" defs);
  Alcotest.(check bool) "lacks 2.4" false (List.mem "GLIBC_2.4" defs)

let test_provides () =
  Alcotest.(check bool) "newer provides older" true
    (Glibc.provides ~glibc:(v "2.12") "GLIBC_2.5");
  Alcotest.(check bool) "older lacks newer" false
    (Glibc.provides ~glibc:(v "2.3.4") "GLIBC_2.5");
  Alcotest.(check bool) "private only local" false
    (Glibc.provides ~glibc:(v "2.12") "FOO_1.0")

let test_referenced_versions () =
  (* baseline only when the appetite is below it *)
  Alcotest.(check (list string)) "baseline" [ "GLIBC_2.2.5" ]
    (Glibc.referenced_versions ~bits:`B64 ~appetite:(v "2.0") ~build:(v "2.12"));
  (* appetite capped by build glibc *)
  Alcotest.(check (list string)) "capped by build"
    [ "GLIBC_2.2.5"; "GLIBC_2.5" ]
    (Glibc.referenced_versions ~bits:`B64 ~appetite:(v "2.7") ~build:(v "2.5"));
  (* full appetite on a new system *)
  Alcotest.(check (list string)) "appetite wins"
    [ "GLIBC_2.2.5"; "GLIBC_2.7" ]
    (Glibc.referenced_versions ~bits:`B64 ~appetite:(v "2.7") ~build:(v "2.12"));
  (* 32-bit baseline is 2.0 *)
  Alcotest.(check (list string)) "32-bit baseline" [ "GLIBC_2.0" ]
    (Glibc.referenced_versions ~bits:`B32 ~appetite:(v "2.0") ~build:(v "2.5"))

let test_required_version () =
  Alcotest.(check bool) "max picked" true
    (Glibc.required_version [ "GLIBC_2.2.5"; "GLIBC_2.5"; "GLIBC_2.3.4" ]
    = Some (v "2.5"));
  Alcotest.(check bool) "none" true (Glibc.required_version [ "FOO_1" ] = None)

(* -- Libdb ------------------------------------------------------------------ *)

let test_catalog_shapes () =
  Alcotest.(check int) "base system size" 7 (List.length Libdb.base_system);
  Alcotest.(check bool) "intel has imf" true
    (List.exists
       (fun e -> Soname.base e.Libdb.soname = "libimf")
       Libdb.intel_runtime);
  let pgi = Libdb.pgi_runtime (v "10.9") in
  Alcotest.(check bool) "pgi has pgf90" true
    (List.exists (fun e -> Soname.base e.Libdb.soname = "libpgf90") pgi);
  let g34 = Libdb.gnu_fortran_runtime (v "3.4.6") in
  Alcotest.(check bool) "g2c for gcc3" true
    (List.exists (fun e -> Soname.to_string e.Libdb.soname = "libg2c.so.0") g34)

let test_scientific_generations () =
  let old_fftw = Libdb.scientific_soname Libdb.Fftw Libdb.Old_generation in
  let new_fftw = Libdb.scientific_soname Libdb.Fftw Libdb.New_generation in
  Alcotest.(check string) "old" "libfftw.so.2" (Soname.to_string old_fftw);
  Alcotest.(check string) "new" "libfftw3.so.3" (Soname.to_string new_fftw);
  Alcotest.(check bool) "names differ" true
    (Soname.to_string old_fftw <> Soname.to_string new_fftw)

let test_size_bytes () =
  let e = List.hd Libdb.intel_runtime in
  Alcotest.(check bool) "megabytes" true (Libdb.size_bytes e > 1_000_000)

(* -- Provision ----------------------------------------------------------------- *)

let test_provision_base_files () =
  let site, _ = Fixtures.small_site () in
  let vfs = Site.vfs site in
  List.iter
    (fun p -> Alcotest.(check bool) p true (Vfs.exists vfs p))
    [
      "/lib64/libc.so.6"; "/lib64/libm.so.6"; "/lib64/libpthread.so.0";
      "/usr/lib64/libstdc++.so.6"; "/usr/lib64/libgfortran.so.1";
      "/usr/lib64/libibverbs.so.1" (* IB site *);
      "/etc/redhat-release"; "/proc/version";
      "/usr/share/Modules/modulefiles/openmpi-1.4-gnu";
    ]

let test_provision_compat_g2c () =
  (* EL5 sites carry the compat libg2c *)
  let site, _ = Fixtures.small_site () in
  Alcotest.(check bool) "compat g2c" true
    (Vfs.exists (Site.vfs site) "/usr/lib64/libg2c.so.0")

let test_provision_stack_layout () =
  let site, installs = Fixtures.small_site () in
  let install = List.hd installs in
  let vfs = Site.vfs site in
  Alcotest.(check bool) "libmpi under prefix" true
    (Vfs.exists vfs (Stack_install.lib_dir install ^ "/libmpi.so.0"));
  Alcotest.(check bool) "mpicc wrapper" true
    (Vfs.exists vfs (Stack_install.bin_dir install ^ "/mpicc"));
  Alcotest.(check bool) "mpiexec" true
    (Vfs.exists vfs (Stack_install.bin_dir install ^ "/mpiexec"))

let test_provision_no_ib_on_ethernet () =
  let site, _ =
    Fixtures.small_site ~interconnect:Feam_mpi.Interconnect.Ethernet
      ~stacks:(Some [ (Fixtures.ompi14 Fixtures.gnu412, Stack_install.Functioning) ])
      ()
  in
  Alcotest.(check bool) "no verbs" false
    (Vfs.exists (Site.vfs site) "/usr/lib64/libibverbs.so.1")

let test_libc_image_verdefs () =
  let site, _ = Fixtures.small_site ~glibc:"2.5" () in
  match Vfs.find (Site.vfs site) "/lib64/libc.so.6" with
  | Some { Vfs.kind = Vfs.Elf bytes; _ } ->
    let spec = Result.get_ok (Feam_elf.Reader.spec_of_bytes bytes) in
    Alcotest.(check bool) "defines 2.5" true
      (List.mem "GLIBC_2.5" spec.Feam_elf.Spec.verdefs);
    Alcotest.(check bool) "not 2.6" false
      (List.mem "GLIBC_2.6" spec.Feam_elf.Spec.verdefs);
    Alcotest.(check bool) "private" true
      (List.mem "GLIBC_PRIVATE" spec.Feam_elf.Spec.verdefs)
  | _ -> Alcotest.fail "no libc image"

let test_library_provenance () =
  let site, _ = Fixtures.small_site () in
  match Vfs.find (Site.vfs site) "/usr/lib64/libgfortran.so.1" with
  | Some { Vfs.kind = Vfs.Elf bytes; _ } -> (
    match Provenance.find bytes with
    | Some prov ->
      Alcotest.(check string) "build site" "testbed"
        prov.Provenance.build_site;
      Alcotest.(check bool) "fragility set" true
        (prov.Provenance.copy_abi_fragility > 0.0)
    | None -> Alcotest.fail "no provenance")
  | _ -> Alcotest.fail "no gfortran"

(* -- Compile -------------------------------------------------------------------- *)

let test_compile_dependencies () =
  let site, installs = Fixtures.small_site () in
  let install = List.hd installs (* openmpi-1.4-gnu *) in
  let program = Compile.program ~language:Feam_mpi.Stack.Fortran "fapp" in
  let image = Result.get_ok (Compile.compile_mpi site install program) in
  let spec = Result.get_ok (Feam_elf.Reader.spec_of_bytes image) in
  let needed = spec.Feam_elf.Spec.needed in
  List.iter
    (fun dep -> Alcotest.(check bool) dep true (List.mem dep needed))
    [ "libmpi.so.0"; "libmpi_f77.so.0"; "libnsl.so.1"; "libutil.so.1";
      "libgfortran.so.1"; "libm.so.6"; "libc.so.6" ]

let test_compile_required_glibc () =
  let site, installs = Fixtures.small_site ~glibc:"2.5" () in
  let install = List.hd installs in
  let program = Compile.program ~glibc_appetite:(v "2.7") "hungry" in
  let image = Result.get_ok (Compile.compile_mpi site install program) in
  let spec = Result.get_ok (Feam_elf.Reader.spec_of_bytes image) in
  let req =
    Glibc.required_version
      (List.concat_map (fun vn -> vn.Feam_elf.Spec.vn_versions) spec.Feam_elf.Spec.verneeds)
  in
  (* capped by the build site's glibc *)
  Alcotest.(check bool) "capped at 2.5" true (req = Some (v "2.5"))

let test_compile_comments () =
  let site, installs = Fixtures.small_site () in
  let install = List.hd installs in
  let image =
    Result.get_ok (Compile.compile_mpi site install (Compile.program "app"))
  in
  let spec = Result.get_ok (Feam_elf.Reader.spec_of_bytes image) in
  Alcotest.(check bool) "gcc comment" true
    (List.exists (String.starts_with ~prefix:"GCC:") spec.Feam_elf.Spec.comments);
  Alcotest.(check bool) "distro in comment" true
    (List.exists (fun c -> Str_split.contains ~sub:"CentOS" c) spec.Feam_elf.Spec.comments)

let test_compile_unique_images () =
  let site, installs = Fixtures.small_site () in
  let install = List.hd installs in
  let p = Compile.program "app" in
  let a = Result.get_ok (Compile.compile_mpi site install p) in
  let b = Result.get_ok (Compile.compile_mpi site install p) in
  Alcotest.(check bool) "distinct builds differ" true (a <> b)

let test_compile_serial_requires_compiler () =
  let site, _ = Fixtures.small_site ~tools:(Tools.with_c_compiler false Tools.full) () in
  match Compile.compile_serial site Compile.hello_world_serial with
  | Error Compile.Compiler_unavailable -> ()
  | _ -> Alcotest.fail "expected unavailable"

let test_compile_to_installs_file () =
  let site, installs = Fixtures.small_site () in
  let install = List.hd installs in
  let path =
    Result.get_ok
      (Compile.compile_mpi_to site install (Compile.program "abc") ~dir:"/home/u")
  in
  Alcotest.(check string) "path" "/home/u/abc" path;
  Alcotest.(check bool) "exists" true (Vfs.exists (Site.vfs site) path)

let test_probe_provenance () =
  let site, installs = Fixtures.small_site () in
  let install = List.hd installs in
  let image = Result.get_ok (Compile.compile_mpi site install Compile.hello_world_mpi) in
  match Provenance.find image with
  | Some prov -> Alcotest.(check bool) "probe flag" true prov.Provenance.is_probe
  | None -> Alcotest.fail "no provenance"

let suite =
  ( "toolchain",
    [
      Alcotest.test_case "glibc symbol roundtrip" `Quick test_symbol_roundtrip;
      Alcotest.test_case "glibc defined versions" `Quick test_defined_versions;
      Alcotest.test_case "glibc provides" `Quick test_provides;
      Alcotest.test_case "glibc referenced versions" `Quick test_referenced_versions;
      Alcotest.test_case "glibc required version" `Quick test_required_version;
      Alcotest.test_case "catalog shapes" `Quick test_catalog_shapes;
      Alcotest.test_case "scientific generations" `Quick test_scientific_generations;
      Alcotest.test_case "catalog sizes" `Quick test_size_bytes;
      Alcotest.test_case "provision base files" `Quick test_provision_base_files;
      Alcotest.test_case "provision compat g2c" `Quick test_provision_compat_g2c;
      Alcotest.test_case "provision stack layout" `Quick test_provision_stack_layout;
      Alcotest.test_case "no IB libs on ethernet" `Quick test_provision_no_ib_on_ethernet;
      Alcotest.test_case "libc verdefs" `Quick test_libc_image_verdefs;
      Alcotest.test_case "library provenance" `Quick test_library_provenance;
      Alcotest.test_case "compile dependencies" `Quick test_compile_dependencies;
      Alcotest.test_case "compile required glibc" `Quick test_compile_required_glibc;
      Alcotest.test_case "compile comments" `Quick test_compile_comments;
      Alcotest.test_case "compile unique images" `Quick test_compile_unique_images;
      Alcotest.test_case "serial needs compiler" `Quick test_compile_serial_requires_compiler;
      Alcotest.test_case "compile_to installs" `Quick test_compile_to_installs_file;
      Alcotest.test_case "probe provenance" `Quick test_probe_provenance;
    ] )
