(* Tests for the remediation guidance and the queue selection of probe
   submissions. *)

open Feam_sysmodel
open Feam_core

let not_ready_prediction ~isa_ok ~clib_ok ~stack ~libs =
  {
    Predict.verdict = Predict.Not_ready [ "test" ];
    determinants =
      {
        Predict.isa =
          {
            Predict.isa_compatible = isa_ok;
            binary_machine = Feam_elf.Types.PPC64;
            binary_class = Feam_elf.Types.C64;
            site_machine = Some Feam_elf.Types.X86_64;
          };
        stack;
        clib =
          {
            Predict.clib_compatible = clib_ok;
            required = Some (Feam_util.Version.of_string_exn "2.7");
            available = Some (Feam_util.Version.of_string_exn "2.5");
          };
        libs;
      };
  }

let test_isa_remedy () =
  let p = not_ready_prediction ~isa_ok:false ~clib_ok:true ~stack:None ~libs:None in
  match Diagnose.remedies p with
  | [ r ] ->
    Alcotest.(check bool) "needs rebuild" true (r.Diagnose.severity = Diagnose.Needs_rebuild);
    Alcotest.(check bool) "mentions machine" true
      (Str_split.contains ~sub:"ppc64" r.Diagnose.action)
  | l -> Alcotest.failf "expected one remedy, got %d" (List.length l)

let test_clib_remedy () =
  let p = not_ready_prediction ~isa_ok:true ~clib_ok:false ~stack:None ~libs:None in
  match Diagnose.remedies p with
  | [ r ] ->
    Alcotest.(check bool) "needs admin" true
      (r.Diagnose.severity = Diagnose.Needs_administrator);
    Alcotest.(check bool) "versions in text" true
      (Str_split.contains ~sub:"2.7" r.Diagnose.action
      && Str_split.contains ~sub:"2.5" r.Diagnose.action)
  | l -> Alcotest.failf "expected one remedy, got %d" (List.length l)

let test_stack_remedies () =
  let stack =
    Some
      {
        Predict.stack_compatible = false;
        requested_impl = Some Feam_mpi.Impl.Mvapich2;
        candidates_found = [];
        functioning = None;
        probe_failures = [];
      }
  in
  let p = not_ready_prediction ~isa_ok:true ~clib_ok:true ~stack ~libs:None in
  match Diagnose.remedies p with
  | [ r ] ->
    Alcotest.(check bool) "names the implementation" true
      (Str_split.contains ~sub:"MVAPICH2" r.Diagnose.action)
  | l -> Alcotest.failf "expected one remedy, got %d" (List.length l)

let test_libs_remedies () =
  let libs =
    Some
      {
        Predict.libs_compatible = false;
        missing = [ "libpgc.so"; "libgfortran.so.3" ];
        resolved_by_copies = [];
        unresolved =
          [
            ("libpgc.so", "no source-phase bundle available");
            ("libgfortran.so.3", "copy requires C library 2.6, target has 2.5");
          ];
      }
  in
  let p = not_ready_prediction ~isa_ok:true ~clib_ok:true ~stack:None ~libs in
  match Diagnose.remedies p with
  | [ a; b ] ->
    Alcotest.(check bool) "copy fix is user-fixable" true
      (a.Diagnose.severity = Diagnose.User_fixable);
    Alcotest.(check bool) "clib-rejected copy needs rebuild" true
      (b.Diagnose.severity = Diagnose.Needs_rebuild)
  | l -> Alcotest.failf "expected two remedies, got %d" (List.length l)

let test_ready_has_no_remedies () =
  let p =
    {
      Predict.verdict =
        Predict.Ready
          {
            Predict.chosen_stack_slug = None;
            module_loads = [];
            ld_library_path_additions = [];
            staged_copies = [];
            launcher = "";
          };
      determinants =
        (not_ready_prediction ~isa_ok:true ~clib_ok:true ~stack:None ~libs:None)
          .Predict.determinants;
    }
  in
  Alcotest.(check int) "none" 0 (List.length (Diagnose.remedies p));
  Alcotest.(check bool) "render" true
    (Str_split.contains ~sub:"no remediation needed" (Diagnose.render p))

let test_report_includes_remediation () =
  let p = not_ready_prediction ~isa_ok:false ~clib_ok:true ~stack:None ~libs:None in
  let report = Report.make ~site_name:"s" ~binary:"/b" p in
  Alcotest.(check bool) "guidance rendered" true
    (Str_split.contains ~sub:"remediation guidance" (Report.render report))

(* -- probe queue selection ------------------------------------------------- *)

let test_probe_queue_selection () =
  let batch =
    Batch.make
      ~queues:
        [
          { Batch.queue_name = "debug"; wait_seconds = 5.0 };
          { Batch.queue_name = "wide"; wait_seconds = 300.0 };
        ]
      Batch.Pbs
  in
  let site =
    Site.make ~compilers:[ Fixtures.gnu412 ] ~seed:1
      ~fault_model:Fault_model.none ~machine:Feam_elf.Types.X86_64
      ~distro:
        (Distro.make Distro.Centos
           ~version:(Feam_util.Version.of_string_exn "5.6")
           ~kernel:(Feam_util.Version.of_string_exn "2.6.18"))
      ~glibc:(Feam_util.Version.of_string_exn "2.5")
      ~interconnect:Feam_mpi.Interconnect.Ethernet ~batch "queued"
  in
  let installs =
    Feam_toolchain.Provision.provision_site site
      ~stacks:[ (Fixtures.ompi14 Fixtures.gnu412, Stack_install.Functioning) ]
  in
  let config_default = Config.default in
  let config_wide = Config.make ~parallel_queue:"wide" () in
  (* default: debug queue *)
  (match Probe.probe_queue config_default site ~parallel:true with
  | None -> ()
  | Some q -> Alcotest.failf "unexpected queue %s" q.Batch.queue_name);
  (* configured: the wide queue *)
  (match Probe.probe_queue config_wide site ~parallel:true with
  | Some q -> Alcotest.(check string) "wide" "wide" q.Batch.queue_name
  | None -> Alcotest.fail "queue not found");
  (* and the charged time reflects the choice *)
  let install = List.hd installs in
  let run config =
    let clock = Feam_util.Sim_clock.create () in
    ignore (Probe.native ~clock config site (Site.base_env site) install);
    Feam_util.Sim_clock.elapsed clock
  in
  Alcotest.(check bool) "wide queue costs more" true
    (run config_wide > run config_default +. 200.0)

let suite =
  ( "diagnose",
    [
      Alcotest.test_case "ISA remedy" `Quick test_isa_remedy;
      Alcotest.test_case "C library remedy" `Quick test_clib_remedy;
      Alcotest.test_case "stack remedies" `Quick test_stack_remedies;
      Alcotest.test_case "library remedies" `Quick test_libs_remedies;
      Alcotest.test_case "ready has none" `Quick test_ready_has_no_remedies;
      Alcotest.test_case "report includes guidance" `Quick test_report_includes_remediation;
      Alcotest.test_case "probe queue selection" `Quick test_probe_queue_selection;
    ] )
