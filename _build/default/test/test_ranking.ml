(* Tests for the site-ranking decision aid. *)

open Feam_sysmodel
open Feam_evalharness

let bundle_from home home_installs =
  let path, install =
    Fixtures.compiled_binary ~program:Fixtures.fortran_program home home_installs
  in
  let env = Fixtures.session_env home install in
  Fixtures.run_exn
    (Feam_core.Phases.source_phase Feam_core.Config.default home env
       ~binary_path:path)

let make_target ~name ~wait ~glibc =
  let batch =
    Batch.make ~queues:[ { Batch.queue_name = "debug"; wait_seconds = wait } ]
      Batch.Pbs
  in
  let site =
    Site.make ~compilers:[ Fixtures.gnu412 ] ~seed:4
      ~fault_model:Fault_model.none ~machine:Feam_elf.Types.X86_64
      ~distro:
        (Distro.make Distro.Centos
           ~version:(Feam_util.Version.of_string_exn "5.6")
           ~kernel:(Feam_util.Version.of_string_exn "2.6.18"))
      ~glibc:(Feam_util.Version.of_string_exn glibc)
      ~interconnect:Feam_mpi.Interconnect.Infiniband ~batch name
  in
  let _ =
    Feam_toolchain.Provision.provision_site site
      ~stacks:[ (Fixtures.ompi14 Fixtures.gnu412, Stack_install.Functioning) ]
  in
  site

let test_ready_sites_first_and_ordered () =
  let home, home_installs = Fixtures.small_site ~name:"rankhome" () in
  let bundle = bundle_from home home_installs in
  let fast = make_target ~name:"fastq" ~wait:5.0 ~glibc:"2.5" in
  let slow = make_target ~name:"slowq" ~wait:2000.0 ~glibc:"2.5" in
  (* a blocked site: glibc too old for nothing... use a site with no
     matching MPI impl instead *)
  let blocked =
    let site =
      Site.make ~compilers:[ Fixtures.gnu412 ] ~seed:4
        ~fault_model:Fault_model.none ~machine:Feam_elf.Types.X86_64
        ~distro:
          (Distro.make Distro.Centos
             ~version:(Feam_util.Version.of_string_exn "5.6")
             ~kernel:(Feam_util.Version.of_string_exn "2.6.18"))
        ~glibc:(Feam_util.Version.of_string_exn "2.5")
        ~interconnect:Feam_mpi.Interconnect.Infiniband
        ~batch:Fixtures.default_batch "blockedsite"
    in
    let _ =
      Feam_toolchain.Provision.provision_site site
        ~stacks:[ (Fixtures.mpich2 Fixtures.gnu412, Stack_install.Functioning) ]
    in
    site
  in
  let ranked =
    Ranking.rank Feam_core.Config.default bundle [ slow; blocked; fast ]
  in
  Alcotest.(check int) "three entries" 3 (List.length ranked);
  (match ranked with
  | first :: second :: third :: _ ->
    Alcotest.(check string) "fast queue first" "fastq" first.Ranking.rank_site;
    Alcotest.(check string) "slow queue second" "slowq" second.Ranking.rank_site;
    Alcotest.(check bool) "blocked last" false third.Ranking.ready;
    Alcotest.(check bool) "blocker reported" true (third.Ranking.blocking_reason <> None);
    Alcotest.(check bool) "ordering metric" true
      (Ranking.time_to_first_result first < Ranking.time_to_first_result second)
  | _ -> Alcotest.fail "wrong shape");
  Alcotest.(check bool) "table renders" true
    (String.length (Feam_util.Table.render (Ranking.table ranked)) > 0)

let suite =
  ( "ranking",
    [
      Alcotest.test_case "ready first, by time to result" `Quick
        test_ready_sites_first_and_ordered;
    ] )
