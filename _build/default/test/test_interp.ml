(* Tests for the PT_INTERP (dynamic loader) channel: builder/reader
   round trip, provisioning, and the executor's loader check. *)

open Feam_sysmodel

let test_roundtrip () =
  let spec =
    Feam_elf.Spec.make ~needed:[ "libc.so.6" ]
      ~interp:"/lib64/ld-linux-x86-64.so.2" Feam_elf.Types.X86_64
  in
  let bytes = Feam_elf.Builder.build spec in
  let spec' = Feam_elf.Reader.spec (Feam_elf.Reader.parse_exn bytes) in
  Alcotest.(check bool) "equal" true (Feam_elf.Spec.equal spec spec');
  Alcotest.(check (option string)) "interp" (Some "/lib64/ld-linux-x86-64.so.2")
    spec'.Feam_elf.Spec.interp

let test_default_interp_per_machine () =
  Alcotest.(check string) "x86-64" "/lib64/ld-linux-x86-64.so.2"
    (Feam_elf.Types.default_interp Feam_elf.Types.X86_64);
  Alcotest.(check string) "i386" "/lib/ld-linux.so.2"
    (Feam_elf.Types.default_interp Feam_elf.Types.I386)

let test_loader_provisioned () =
  let site, _ = Fixtures.small_site () in
  Alcotest.(check bool) "loader installed" true
    (Vfs.exists (Site.vfs site) "/lib64/ld-linux-x86-64.so.2")

let test_compiled_binary_names_loader () =
  let site, installs = Fixtures.small_site () in
  let path, _ = Fixtures.compiled_binary site installs in
  match Vfs.find (Site.vfs site) path with
  | Some { Vfs.kind = Vfs.Elf bytes; _ } ->
    let spec = Result.get_ok (Feam_elf.Reader.spec_of_bytes bytes) in
    Alcotest.(check (option string)) "interp" (Some "/lib64/ld-linux-x86-64.so.2")
      spec.Feam_elf.Spec.interp
  | _ -> Alcotest.fail "no binary"

let test_objdump_shows_interp () =
  let site, installs = Fixtures.small_site () in
  let path, _ = Fixtures.compiled_binary site installs in
  let out = Result.get_ok (Utilities.objdump_p site path) in
  Alcotest.(check bool) "interpreter line" true
    (Str_split.contains ~sub:"Requesting program interpreter" out)

let test_exec_missing_loader () =
  (* A 32-bit x86 binary passes the ISA rule on an x86-64 site, but dies
     when /lib/ld-linux.so.2 is absent — the real-world failure mode. *)
  let site, installs = Fixtures.small_site () in
  let install = List.hd installs in
  let i386_binary =
    Feam_elf.Builder.build
      (Feam_elf.Spec.make ~needed:[ "libc.so.6" ]
         ~interp:"/lib/ld-linux.so.2" Feam_elf.Types.I386)
  in
  Vfs.add (Site.vfs site) "/home/user/old32bit" (Vfs.Elf i386_binary);
  let env = Fixtures.session_env site install in
  match
    Feam_dynlinker.Exec.run ~params:Fault_model.none site env
      ~binary_path:"/home/user/old32bit" ~mode:(Feam_dynlinker.Exec.Mpi 2)
  with
  | Feam_dynlinker.Exec.Failure (Feam_dynlinker.Exec.Interpreter_missing p) ->
    Alcotest.(check string) "which loader" "/lib/ld-linux.so.2" p
  | o -> Alcotest.failf "unexpected: %s" (Feam_dynlinker.Exec.outcome_to_string o)

let test_exec_with_loader_present () =
  (* installing the 32-bit loader moves the failure past the loader check
     (on to the missing 32-bit libraries) *)
  let site, installs = Fixtures.small_site () in
  let install = List.hd installs in
  let loader =
    Feam_elf.Builder.build
      (Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_DYN
         ~soname:"ld-linux.so.2" Feam_elf.Types.I386)
  in
  Vfs.add (Site.vfs site) "/lib/ld-linux.so.2" (Vfs.Elf loader);
  let i386_binary =
    Feam_elf.Builder.build
      (Feam_elf.Spec.make ~needed:[ "libmissing32.so.1" ]
         ~interp:"/lib/ld-linux.so.2" Feam_elf.Types.I386)
  in
  Vfs.add (Site.vfs site) "/home/user/old32bit" (Vfs.Elf i386_binary);
  let env = Fixtures.session_env site install in
  match
    Feam_dynlinker.Exec.run ~params:Fault_model.none site env
      ~binary_path:"/home/user/old32bit" ~mode:(Feam_dynlinker.Exec.Mpi 2)
  with
  | Feam_dynlinker.Exec.Failure (Feam_dynlinker.Exec.Missing_libraries _) -> ()
  | o -> Alcotest.failf "unexpected: %s" (Feam_dynlinker.Exec.outcome_to_string o)

let test_shared_library_has_no_interp () =
  let site, _ = Fixtures.small_site () in
  match Vfs.find (Site.vfs site) "/lib64/libm.so.6" with
  | Some { Vfs.kind = Vfs.Elf bytes; _ } ->
    let spec = Result.get_ok (Feam_elf.Reader.spec_of_bytes bytes) in
    Alcotest.(check (option string)) "no interp" None spec.Feam_elf.Spec.interp
  | _ -> Alcotest.fail "no libm"

let suite =
  ( "interp",
    [
      Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "default per machine" `Quick test_default_interp_per_machine;
      Alcotest.test_case "loader provisioned" `Quick test_loader_provisioned;
      Alcotest.test_case "binary names loader" `Quick test_compiled_binary_names_loader;
      Alcotest.test_case "objdump shows interp" `Quick test_objdump_shows_interp;
      Alcotest.test_case "exec missing loader" `Quick test_exec_missing_loader;
      Alcotest.test_case "exec with loader present" `Quick test_exec_with_loader_present;
      Alcotest.test_case "libraries have no interp" `Quick test_shared_library_has_no_interp;
    ] )
