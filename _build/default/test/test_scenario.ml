(* Tests for the scenario-file DSL. *)

open Feam_sysmodel
open Feam_evalharness

let v = Feam_util.Version.of_string_exn

let test_template_loads () =
  let sites = Fixtures.run_exn (Scenario.load Scenario.template) in
  Alcotest.(check int) "two sites" 2 (List.length sites);
  let home = List.hd sites in
  Alcotest.(check string) "name" "home" (Site.name home);
  Alcotest.check Fixtures.version "glibc" (v "2.5") (Site.glibc home);
  Alcotest.(check int) "one stack" 1 (List.length (Site.stack_installs home));
  (* the site is actually provisioned *)
  Alcotest.(check bool) "libc present" true
    (Vfs.exists (Site.vfs home) "/lib64/libc.so.6");
  Alcotest.(check bool) "module files" true
    (Vfs.exists (Site.vfs home) "/usr/share/Modules/modulefiles/openmpi-1.4-gnu")

let test_full_directives () =
  let text =
    "site big\n\
     machine ppc64\n\
     distro sles 11 kernel 2.6.32\n\
     glibc 2.11.1\n\
     interconnect numalink\n\
     compiler gnu 4.4.3\n\
     compiler intel 11.1\n\
     stack openmpi 1.4 intel\n\
     stack mpich2 1.4 gnu\n\
     modules softenv\n\
     queue debug 30\n\
     queue batch 1200\n\
     faults default\n\
     seed 99\n"
  in
  let sites = Fixtures.run_exn (Scenario.load text) in
  let site = List.hd sites in
  Alcotest.(check bool) "ppc64" true (Site.machine site = Feam_elf.Types.PPC64);
  Alcotest.(check bool) "softenv" true (Site.modules_flavor site = Site.Softenv);
  Alcotest.(check int) "two stacks" 2 (List.length (Site.stack_installs site));
  Alcotest.(check int) "two compilers" 2 (List.length (Site.compilers site));
  Alcotest.(check string) "debug queue" "debug"
    (Batch.debug_queue (Site.batch site)).Batch.queue_name;
  Alcotest.(check bool) "fault model" true
    (Site.fault_model site = Fault_model.default);
  Alcotest.(check int) "seed" 99 (Site.seed site)

let test_parse_errors () =
  let reject text fragment =
    match Scenario.load text with
    | Error e ->
      Alcotest.(check bool) ("mentions " ^ fragment) true
        (Str_split.contains ~sub:fragment e)
    | Ok _ -> Alcotest.failf "accepted %S" text
  in
  reject "" "no sites";
  reject "glibc 2.5\n" "outside a site block";
  reject "site s\nmachine vax\n" "unknown machine";
  reject "site s\nstack openmpi 1.4 gnu\n" "not declared";
  reject "site s\nbogus directive here extra\n" "unrecognized directive";
  reject "site s\nqueue debug soon\n" "bad queue wait"

let test_comments_and_blanks () =
  let text = "# header comment\n\nsite s\n  # indented comment\n  glibc 2.5\n" in
  let sites = Fixtures.run_exn (Scenario.load text) in
  Alcotest.(check int) "one site" 1 (List.length sites)

let test_scenario_drives_feam () =
  (* end to end: template world, migrate the sample binary *)
  let sites = Fixtures.run_exn (Scenario.load Scenario.template) in
  let home = List.nth sites 0 and target = List.nth sites 1 in
  let install = List.hd (Site.stack_installs home) in
  let program = Feam_toolchain.Compile.program ~language:Feam_mpi.Stack.Fortran "app" in
  let path =
    Result.get_ok
      (Feam_toolchain.Compile.compile_mpi_to home install program ~dir:"/home/u")
  in
  let env = Fixtures.session_env home install in
  let bundle =
    Fixtures.run_exn
      (Feam_core.Phases.source_phase Feam_core.Config.default home env
         ~binary_path:path)
  in
  let report =
    Fixtures.run_exn
      (Feam_core.Phases.target_phase Feam_core.Config.default target
         (Site.base_env target) ~bundle ())
  in
  Alcotest.(check bool) "ready" true
    (Feam_core.Predict.is_ready (Feam_core.Report.prediction report))

let suite =
  ( "scenario",
    [
      Alcotest.test_case "template loads" `Quick test_template_loads;
      Alcotest.test_case "full directives" `Quick test_full_directives;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
      Alcotest.test_case "scenario drives FEAM" `Quick test_scenario_drives_feam;
    ] )
