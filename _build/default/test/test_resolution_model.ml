(* Focused unit tests for the resolution model: recursive vetting,
   dependency chains, cycles, and staging mechanics (paper §IV). *)

open Feam_util
open Feam_sysmodel
open Feam_core

let v = Version.of_string_exn

let config = Config.default

(* Hand-build a library copy with the given dependencies/requirements. *)
let make_copy ?(machine = Feam_elf.Types.X86_64) ?(needed = [ "libc.so.6" ])
    ?(glibc_req = "2.3.4") name =
  let soname = name in
  let spec =
    Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_DYN ~soname ~needed
      ~verneeds:
        [
          {
            Feam_elf.Spec.vn_file = "libc.so.6";
            vn_versions = [ "GLIBC_" ^ glibc_req ];
          };
        ]
      machine
  in
  let bytes = Feam_elf.Builder.build spec in
  let description =
    {
      Description.path = "/origin/" ^ name;
      file_format = "elf64-x86-64";
      machine;
      elf_class = Feam_elf.Types.machine_class machine;
      soname = Soname.of_string name;
      needed;
      rpath = None;
      runpath = None;
      verneeds = [ ("libc.so.6", [ "GLIBC_" ^ glibc_req ]) ];
      required_glibc = Some (v glibc_req);
      mpi = None;
      provenance = { Objdump_parse.compiler_banner = None; build_os = None };
    }
  in
  {
    Bdc.copy_request = name;
    copy_origin_path = "/origin/" ^ name;
    copy_bytes = bytes;
    copy_declared_size = 4096;
    copy_description = description;
  }

let make_bundle copies =
  {
    Bundle.created_at = "home";
    binary_description =
      (make_copy "libdummy.so.1").Bdc.copy_description;
    binary_bytes = None;
    binary_declared_size = 0;
    copies;
    unlocatable = [];
    probes = [];
    source_discovery =
      {
        Discovery.env_type = `Guaranteed;
        machine = Some Feam_elf.Types.X86_64;
        elf_class = Some Feam_elf.Types.C64;
        os = None;
        kernel = None;
        glibc = Some (v "2.5");
        stacks = [];
        current_stack = None;
      };
  }

let resolve site env bundle missing =
  Resolve_model.resolve config site env ~bundle ~target_glibc:(Some (v "2.5"))
    ~binary_machine:Feam_elf.Types.X86_64 ~binary_class:Feam_elf.Types.C64
    ~missing

let test_simple_staging () =
  let site, _ = Fixtures.small_site () in
  let bundle = make_bundle [ make_copy "libextra.so.1" ] in
  let r = resolve site (Site.base_env site) bundle [ "libextra.so.1" ] in
  Alcotest.(check int) "staged one" 1 (List.length r.Resolve_model.staged);
  Alcotest.(check (list string)) "no failures" []
    (List.map fst r.Resolve_model.failed);
  Alcotest.(check bool) "env exposes staging" true
    (List.mem config.Config.staging_dir (Env.ld_library_path r.Resolve_model.env))

let test_no_copy_available () =
  let site, _ = Fixtures.small_site () in
  let bundle = make_bundle [] in
  let r = resolve site (Site.base_env site) bundle [ "libgone.so.1" ] in
  (match r.Resolve_model.failed with
  | [ ("libgone.so.1", Resolve_model.No_copy_available) ] -> ()
  | _ -> Alcotest.fail "expected No_copy_available");
  Alcotest.(check bool) "env untouched" false
    (List.mem config.Config.staging_dir (Env.ld_library_path r.Resolve_model.env))

let test_wrong_isa_copy () =
  let site, _ = Fixtures.small_site () in
  let bundle = make_bundle [ make_copy ~machine:Feam_elf.Types.PPC64 "libextra.so.1" ] in
  let r = resolve site (Site.base_env site) bundle [ "libextra.so.1" ] in
  match r.Resolve_model.failed with
  | [ (_, Resolve_model.Copy_wrong_isa) ] -> ()
  | _ -> Alcotest.fail "expected Copy_wrong_isa"

let test_clib_incompatible_copy () =
  let site, _ = Fixtures.small_site () in
  let bundle = make_bundle [ make_copy ~glibc_req:"2.7" "libextra.so.1" ] in
  let r = resolve site (Site.base_env site) bundle [ "libextra.so.1" ] in
  match r.Resolve_model.failed with
  | [ (_, Resolve_model.Copy_clib_incompatible { copy_requires; _ }) ] ->
    Alcotest.check Fixtures.version "requires" (v "2.7") copy_requires
  | _ -> Alcotest.fail "expected Copy_clib_incompatible"

let test_recursive_dependency_staged () =
  (* libA needs libB; both absent at the target; both in the bundle:
     staging libA must pull in libB (paper §IV's recursion) *)
  let site, _ = Fixtures.small_site () in
  let liba = make_copy ~needed:[ "libB.so.1"; "libc.so.6" ] "libA.so.1" in
  let libb = make_copy "libB.so.1" in
  let bundle = make_bundle [ liba; libb ] in
  let r = resolve site (Site.base_env site) bundle [ "libA.so.1" ] in
  let staged = List.map fst r.Resolve_model.staged in
  Alcotest.(check bool) "libA staged" true (List.mem "libA.so.1" staged);
  Alcotest.(check bool) "libB staged too" true (List.mem "libB.so.1" staged)

let test_recursive_dependency_unresolvable () =
  let site, _ = Fixtures.small_site () in
  let liba = make_copy ~needed:[ "libB.so.1"; "libc.so.6" ] "libA.so.1" in
  (* libB missing from the bundle and from the site *)
  let bundle = make_bundle [ liba ] in
  let r = resolve site (Site.base_env site) bundle [ "libA.so.1" ] in
  match r.Resolve_model.failed with
  | [ (_, Resolve_model.Copy_dependency_unresolvable "libB.so.1") ] -> ()
  | _ -> Alcotest.fail "expected dependency rejection"

let test_cyclic_copies_resolve () =
  (* libX and libY depend on each other: the optimistic cycle rule stages
     both rather than looping *)
  let site, _ = Fixtures.small_site () in
  let libx = make_copy ~needed:[ "libY.so.1"; "libc.so.6" ] "libX.so.1" in
  let liby = make_copy ~needed:[ "libX.so.1"; "libc.so.6" ] "libY.so.1" in
  let bundle = make_bundle [ libx; liby ] in
  let r = resolve site (Site.base_env site) bundle [ "libX.so.1"; "libY.so.1" ] in
  Alcotest.(check int) "both staged" 2 (List.length r.Resolve_model.staged);
  Alcotest.(check (list string)) "no failures" [] (List.map fst r.Resolve_model.failed)

let test_present_dependency_not_staged () =
  (* a copy whose dependency already exists at the target must not stage
     that dependency *)
  let site, _ = Fixtures.small_site () in
  let liba = make_copy ~needed:[ "libz.so.1"; "libc.so.6" ] "libA.so.1" in
  let libz_copy = make_copy "libz.so.1" in
  let bundle = make_bundle [ liba; libz_copy ] in
  let r = resolve site (Site.base_env site) bundle [ "libA.so.1" ] in
  let staged = List.map fst r.Resolve_model.staged in
  Alcotest.(check bool) "libA staged" true (List.mem "libA.so.1" staged);
  Alcotest.(check bool) "site libz untouched" false (List.mem "libz.so.1" staged)

let test_soname_compat_satisfies_request () =
  (* a copy whose soname shares base+major satisfies a differently-
     suffixed request (§III.D convention) *)
  let site, _ = Fixtures.small_site () in
  let copy = make_copy "libq.so.2.0.1" in
  let bundle = make_bundle [ copy ] in
  Alcotest.(check int) "found by soname rule" 1
    (List.length (Bundle.copies_for bundle "libq.so.2"));
  ignore site

let suite =
  ( "resolution-model",
    [
      Alcotest.test_case "simple staging" `Quick test_simple_staging;
      Alcotest.test_case "no copy available" `Quick test_no_copy_available;
      Alcotest.test_case "wrong ISA copy" `Quick test_wrong_isa_copy;
      Alcotest.test_case "C-library incompatible copy" `Quick test_clib_incompatible_copy;
      Alcotest.test_case "recursive dependency staged" `Quick test_recursive_dependency_staged;
      Alcotest.test_case "recursive dependency unresolvable" `Quick
        test_recursive_dependency_unresolvable;
      Alcotest.test_case "cyclic copies resolve" `Quick test_cyclic_copies_resolve;
      Alcotest.test_case "present dependency not staged" `Quick
        test_present_dependency_not_staged;
      Alcotest.test_case "soname compatibility" `Quick test_soname_compat_satisfies_request;
    ] )
