(* Tests for the future-work extensions: the migration-strategy advisor
   and the user-effort model. *)

open Feam_sysmodel
open Feam_core

let config = Config.default

let fortran_source =
  Feam_toolchain.Compile.program ~language:Feam_mpi.Stack.Fortran
    ~binary_size_mb:2.0 "cfdapp"

(* home (gcc 4.1, glibc 2.5) and two targets: one where the binary works,
   one where only recompilation can. *)
let world () =
  let home, home_installs = Fixtures.small_site ~name:"home" () in
  let home_path, home_install =
    Fixtures.compiled_binary ~program:fortran_source home home_installs
  in
  (home, home_path, home_install)

let predict_at home home_path home_install target ~with_bundle =
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let bundle =
    if with_bundle then
      let env = Fixtures.session_env home home_install in
      Some (Fixtures.run_exn (Phases.source_phase config home env ~binary_path:home_path))
    else None
  in
  let bytes =
    match Vfs.find (Site.vfs home) home_path with
    | Some { Vfs.kind = Vfs.Elf b; _ } -> b
    | _ -> Alcotest.fail "no bytes"
  in
  Vfs.add (Site.vfs target) "/home/user/migrated/app" (Vfs.Elf bytes);
  let report =
    Fixtures.run_exn
      (Phases.target_phase config target (Site.base_env target) ?bundle
         ~binary_path:"/home/user/migrated/app" ())
  in
  Report.prediction report

let test_advisor_prefers_ready_binary () =
  let home, home_path, home_install = world () in
  let target, _ = Fixtures.small_site ~name:"goodtarget" () in
  let p = predict_at home home_path home_install target ~with_bundle:true in
  let advice =
    Advisor.advise target ~binary_prediction:p ~source:(Some fortran_source)
  in
  match advice.Advisor.strategy with
  | Advisor.Use_binary _ -> ()
  | s -> Alcotest.failf "expected Use_binary, got %s" (Advisor.strategy_to_string s)

let test_advisor_recommends_recompile () =
  let home, home_path, home_install = world () in
  (* target whose C library is too old for the binary but which has a
     working toolchain: recompilation is the way *)
  let home12, installs12 = Fixtures.small_site ~name:"home12" ~glibc:"2.12" () in
  let hungry =
    Feam_toolchain.Compile.program
      ~glibc_appetite:(Feam_util.Version.of_string_exn "2.7")
      "hungryapp"
  in
  let path12, install12 = Fixtures.compiled_binary ~program:hungry home12 installs12 in
  ignore (home, home_path, home_install);
  let target, _ = Fixtures.small_site ~name:"oldt" ~glibc:"2.5" () in
  let p = predict_at home12 path12 install12 target ~with_bundle:true in
  Alcotest.(check bool) "binary not ready" false (Predict.is_ready p);
  let advice = Advisor.advise target ~binary_prediction:p ~source:(Some hungry) in
  match advice.Advisor.strategy with
  | Advisor.Recompile check ->
    Alcotest.(check bool) "estimate positive" true
      (check.Advisor.rc_estimate_seconds > 0.0)
  | s -> Alcotest.failf "expected Recompile, got %s" (Advisor.strategy_to_string s)

let test_advisor_not_viable_without_source () =
  let home12, installs12 = Fixtures.small_site ~name:"home12b" ~glibc:"2.12" () in
  let hungry =
    Feam_toolchain.Compile.program
      ~glibc_appetite:(Feam_util.Version.of_string_exn "2.7")
      "hungryapp"
  in
  let path12, install12 = Fixtures.compiled_binary ~program:hungry home12 installs12 in
  let target, _ = Fixtures.small_site ~name:"oldt2" ~glibc:"2.5" () in
  let p = predict_at home12 path12 install12 target ~with_bundle:true in
  let advice = Advisor.advise target ~binary_prediction:p ~source:None in
  match advice.Advisor.strategy with
  | Advisor.Not_viable reasons ->
    Alcotest.(check bool) "reasons carried" true (reasons <> [])
  | s -> Alcotest.failf "expected Not_viable, got %s" (Advisor.strategy_to_string s)

let test_recompile_needs_toolchain () =
  let target, _ =
    Fixtures.small_site ~name:"notoolchain"
      ~tools:(Tools.with_c_compiler false Tools.full) ()
  in
  match Advisor.recompile_viability target fortran_source with
  | Error e ->
    Alcotest.(check bool) "toolchain mentioned" true
      (Str_split.contains ~sub:"compiler" e)
  | Ok _ -> Alcotest.fail "expected no toolchain"

let test_recompile_skips_misconfigured () =
  let target, _ =
    Fixtures.small_site ~name:"brokenstack"
      ~stacks:
        (Some
           [
             ( Fixtures.ompi14 Fixtures.gnu412,
               Stack_install.Misconfigured "broken" );
           ])
      ()
  in
  match Advisor.recompile_viability target fortran_source with
  | Error _ -> ()
  | Ok check -> Alcotest.failf "unexpected viability via %s" check.Advisor.rc_stack_slug

(* -- Effort model ----------------------------------------------------------- *)

let fake_migration ~before ~after : Feam_evalharness.Migrate.migration =
  let home, installs = Fixtures.small_site ~name:"ehome" () in
  let path, install = Fixtures.compiled_binary home installs in
  let binary =
    {
      Feam_evalharness.Testset.id = "NAS/fake@ehome/x";
      benchmark = List.hd Feam_suites.Npb.all;
      home;
      install;
      home_path = path;
      bytes = "";
      declared_size = 0;
    }
  in
  {
    Feam_evalharness.Migrate.binary;
    target_name = "t";
    basic_ready = true;
    basic_reasons = [];
    extended_ready = true;
    extended_reasons = [];
    staged_copies = [];
    actual_before = before;
    actual_after = after;
  }

let test_effort_ordering () =
  let open Feam_dynlinker.Exec in
  let clean = fake_migration ~before:Success ~after:Success in
  let rescued =
    fake_migration ~before:(Failure (Missing_libraries [ "libx.so.1" ])) ~after:Success
  in
  let hopeless =
    fake_migration
      ~before:(Failure (Missing_libraries [ "libx.so.1" ]))
      ~after:(Failure (Missing_libraries [ "libx.so.1" ]))
  in
  let e = Feam_evalharness.Effort.manual_minutes in
  Alcotest.(check bool) "rescued costs more than clean" true (e rescued > e clean);
  Alcotest.(check bool) "hopeless costs most" true (e hopeless > e rescued);
  (* FEAM effort is flat and much smaller *)
  let f = Feam_evalharness.Effort.feam_minutes in
  Alcotest.(check bool) "feam flat" true (f clean = f hopeless);
  Alcotest.(check bool) "feam cheaper" true (f hopeless < e clean)

let test_effort_summary () =
  let open Feam_dynlinker.Exec in
  let migrations =
    [
      fake_migration ~before:Success ~after:Success;
      fake_migration
        ~before:(Failure (Missing_libraries [ "l" ]))
        ~after:Success;
    ]
  in
  let s = Feam_evalharness.Effort.summarize migrations in
  Alcotest.(check int) "count" 2 s.Feam_evalharness.Effort.migrations;
  Alcotest.(check bool) "gain > 1" true (Feam_evalharness.Effort.gain s > 1.0);
  (* the table renders *)
  let table = Feam_evalharness.Effort.table migrations in
  Alcotest.(check bool) "renders" true
    (String.length (Feam_util.Table.render table) > 0)

let suite =
  ( "advisor-effort",
    [
      Alcotest.test_case "advisor prefers ready binary" `Quick
        test_advisor_prefers_ready_binary;
      Alcotest.test_case "advisor recommends recompile" `Quick
        test_advisor_recommends_recompile;
      Alcotest.test_case "advisor not viable without source" `Quick
        test_advisor_not_viable_without_source;
      Alcotest.test_case "recompile needs toolchain" `Quick test_recompile_needs_toolchain;
      Alcotest.test_case "recompile skips misconfigured" `Quick
        test_recompile_skips_misconfigured;
      Alcotest.test_case "effort ordering" `Quick test_effort_ordering;
      Alcotest.test_case "effort summary" `Quick test_effort_summary;
    ] )
