test/test_dynlinker.ml: Alcotest Env Exec Feam_dynlinker Feam_elf Feam_sysmodel Feam_toolchain Feam_util Fixtures Ldd List Resolve Result Search Site Stack_install Str_split Tools Version Vfs
