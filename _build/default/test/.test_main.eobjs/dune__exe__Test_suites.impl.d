test/test_suites.ml: Alcotest Benchmark Feam_dynlinker Feam_mpi Feam_suites Feam_sysmodel Feam_toolchain Feam_util Fixtures List Npb Npb_class Result Specmpi
