test/test_json.ml: Alcotest Feam_core Feam_evalharness Feam_suites Feam_sysmodel Feam_util Fixtures Json List Option QCheck QCheck_alcotest Result String
