test/test_report_golden.ml: Alcotest Config Feam_core Feam_elf Feam_mpi Feam_sysmodel Feam_util List Predict Report Result Str_split
