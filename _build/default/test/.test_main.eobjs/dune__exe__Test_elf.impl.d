test/test_elf.ml: Alcotest Builder Bytes Feam_elf Fmt List Printf QCheck QCheck_alcotest Reader Spec String Types
