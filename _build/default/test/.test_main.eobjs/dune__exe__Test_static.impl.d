test/test_static.ml: Alcotest Bdc Description Distro Fault_model Feam_core Feam_dynlinker Feam_elf Feam_mpi Feam_sysmodel Feam_toolchain Feam_util Fixtures List Modules_tool Result Site Vfs
