test/test_interp.ml: Alcotest Fault_model Feam_dynlinker Feam_elf Feam_sysmodel Fixtures List Result Site Str_split Utilities Vfs
