test/test_ablation.ml: Ablation Alcotest Feam_evalharness Lazy List Params
