test/test_soname.ml: Alcotest Feam_util List QCheck QCheck_alcotest Soname
