test/test_identification.ml: Alcotest Array Compiler Discovery Feam_core Feam_evalharness Feam_mpi Feam_util Impl List Mpi_ident Option Printf Prng QCheck QCheck_alcotest Soname Stack String Version
