test/test_utilities.ml: Alcotest Feam_sysmodel Feam_util Fixtures List Result Sim_clock Site Str_split Tools Utilities Vfs
