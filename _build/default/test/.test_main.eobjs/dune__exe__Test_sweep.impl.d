test/test_sweep.ml: Alcotest Feam_evalharness Feam_util List Params String Sweep
