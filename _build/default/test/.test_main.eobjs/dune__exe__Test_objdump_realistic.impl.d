test/test_objdump_realistic.ml: Alcotest Description Feam_core Feam_mpi Feam_util List Mpi_ident Objdump_parse Result
