test/test_mpi.ml: Alcotest Compiler Feam_mpi Feam_util Impl Interconnect List Soname Stack Version
