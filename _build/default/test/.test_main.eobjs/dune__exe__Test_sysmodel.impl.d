test/test_sysmodel.ml: Alcotest Batch Distro Env Feam_elf Feam_sysmodel Feam_util Fixtures List Modules_tool Site Stack_install Str_split String Version
