test/test_whatif.ml: Alcotest Feam_evalharness Feam_mpi Feam_sysmodel Feam_util Params Printf String Whatif
