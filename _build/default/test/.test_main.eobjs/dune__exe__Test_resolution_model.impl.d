test/test_resolution_model.ml: Alcotest Bdc Bundle Config Description Discovery Env Feam_core Feam_elf Feam_sysmodel Feam_util Fixtures List Objdump_parse Resolve_model Site Soname Version
