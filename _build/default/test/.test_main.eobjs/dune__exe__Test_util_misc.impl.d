test/test_util_misc.ml: Alcotest Feam_sysmodel Feam_util List Printf Prng Sim_clock String Table
