test/test_vfs.ml: Alcotest Feam_sysmodel Fun List QCheck QCheck_alcotest String Vfs
