test/test_env.ml: Alcotest Env Feam_sysmodel List
