test/test_cross_isa.ml: Alcotest Config Fault_model Feam_core Feam_dynlinker Feam_elf Feam_sysmodel Fixtures List Phases Predict Report Result Site Str_split Utilities Vfs
