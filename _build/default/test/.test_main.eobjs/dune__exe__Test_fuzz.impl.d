test/test_fuzz.ml: Bytes Char Feam_core Feam_elf Feam_util Fixtures Lazy Printf QCheck QCheck_alcotest String
