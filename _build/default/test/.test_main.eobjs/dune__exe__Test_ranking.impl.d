test/test_ranking.ml: Alcotest Batch Distro Fault_model Feam_core Feam_elf Feam_evalharness Feam_mpi Feam_sysmodel Feam_toolchain Feam_util Fixtures List Ranking Site Stack_install String
