test/test_version.ml: Alcotest Feam_util Fixtures List Printf QCheck QCheck_alcotest Version
