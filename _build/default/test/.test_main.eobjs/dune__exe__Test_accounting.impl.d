test/test_accounting.ml: Alcotest Batch Cost Fault_model Feam_core Feam_dynlinker Feam_evalharness Feam_suites Feam_sysmodel Feam_util Fixtures List Result Sim_clock Site Str_split String Table
