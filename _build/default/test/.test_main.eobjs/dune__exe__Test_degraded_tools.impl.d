test/test_degraded_tools.ml: Alcotest Config Env Feam_core Feam_dynlinker Feam_sysmodel Fixtures List Option Phases Predict Report Site Tools Vfs
