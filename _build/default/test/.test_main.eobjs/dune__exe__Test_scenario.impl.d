test/test_scenario.ml: Alcotest Batch Fault_model Feam_core Feam_elf Feam_evalharness Feam_mpi Feam_sysmodel Feam_toolchain Feam_util Fixtures List Result Scenario Site Str_split Vfs
