(* Tests for the Unix-utility emulations: objdump, readelf, file, uname,
   locate/find, glibc identification — including unavailable-tool
   behaviour, which drives FEAM's fallback paths. *)

open Feam_util
open Feam_sysmodel

let compiled () =
  let site, installs = Fixtures.small_site () in
  let path, install = Fixtures.compiled_binary site installs in
  (site, installs, path, install)

let test_objdump_format_line () =
  let site, _, path, _ = compiled () in
  let out = Fixtures.run_exn (Result.map_error Utilities.error_to_string
    (Utilities.objdump_p site path)) in
  Alcotest.(check bool) "format line" true
    (Str_split.contains ~sub:"file format elf64-x86-64" out);
  Alcotest.(check bool) "dynamic section" true
    (Str_split.contains ~sub:"Dynamic Section:" out);
  Alcotest.(check bool) "NEEDED libmpi" true
    (Str_split.contains ~sub:"NEEDED               libmpi.so.0" out);
  Alcotest.(check bool) "version refs" true
    (Str_split.contains ~sub:"required from libc.so.6:" out)

let test_objdump_unavailable () =
  let site, installs = Fixtures.small_site ~tools:(Tools.with_objdump false Tools.full) () in
  let path, _ = Fixtures.compiled_binary site installs in
  match Utilities.objdump_p site path with
  | Error (`Tool_unavailable "objdump") -> ()
  | _ -> Alcotest.fail "expected tool unavailable"

let test_objdump_missing_file () =
  let site, _ = Fixtures.small_site () in
  match Utilities.objdump_p site "/no/such/file" with
  | Error (`No_such_file _) -> ()
  | _ -> Alcotest.fail "expected no such file"

let test_objdump_not_elf () =
  let site, _ = Fixtures.small_site () in
  Vfs.add (Site.vfs site) "/home/user/script.sh" (Vfs.Script "#!/bin/sh\n");
  match Utilities.objdump_p site "/home/user/script.sh" with
  | Error (`Not_elf _) -> ()
  | _ -> Alcotest.fail "expected not elf"

let test_readelf_comment () =
  let site, _, path, _ = compiled () in
  match Utilities.readelf_comment site path with
  | Ok out ->
    Alcotest.(check bool) "dump header" true
      (Str_split.contains ~sub:"String dump of section '.comment'" out);
    Alcotest.(check bool) "compiler string" true (Str_split.contains ~sub:"GCC" out)
  | Error e -> Alcotest.failf "readelf failed: %s" (Utilities.error_to_string e)

let test_file_cmd () =
  let site, _, path, _ = compiled () in
  let out = Result.get_ok (Utilities.file_cmd site path) in
  Alcotest.(check bool) "elf 64" true (Str_split.contains ~sub:"ELF 64-bit LSB executable" out);
  Alcotest.(check bool) "machine" true
    (Str_split.contains ~sub:"Advanced Micro Devices X86-64" out);
  Vfs.add (Site.vfs site) "/t.txt" (Vfs.Text "hi");
  let out = Result.get_ok (Utilities.file_cmd site "/t.txt") in
  Alcotest.(check bool) "text" true (Str_split.contains ~sub:"ASCII text" out)

let test_uname () =
  let site, _ = Fixtures.small_site () in
  Alcotest.(check string) "x86_64" "x86_64" (Result.get_ok (Utilities.uname_p site));
  let ppc, _ = Fixtures.ppc_site () in
  Alcotest.(check string) "ppc64" "ppc64" (Result.get_ok (Utilities.uname_p ppc))

let test_etc_release () =
  let site, _ = Fixtures.small_site () in
  match Utilities.etc_release site with
  | (path, body) :: _ ->
    Alcotest.(check string) "path" "/etc/redhat-release" path;
    Alcotest.(check bool) "body" true (Str_split.contains ~sub:"CentOS" body)
  | [] -> Alcotest.fail "no release file"

let test_locate_and_find () =
  let site, _ = Fixtures.small_site () in
  (match Utilities.locate site "libmpi.so" with
  | Ok paths ->
    Alcotest.(check bool) "locate finds libmpi" true
      (List.exists (fun p -> Vfs.basename p = "libmpi.so.0") paths)
  | Error _ -> Alcotest.fail "locate failed");
  match Utilities.find_in_dirs site [ "/lib64" ] "libm.so" with
  | Ok paths ->
    Alcotest.(check bool) "find finds libm" true
      (List.exists (fun p -> p = "/lib64/libm.so.6") paths)
  | Error _ -> Alcotest.fail "find failed"

let test_locate_unavailable () =
  let site, _ = Fixtures.small_site ~tools:(Tools.with_locate false Tools.full) () in
  match Utilities.locate site "libmpi" with
  | Error (`Tool_unavailable "locate") -> ()
  | _ -> Alcotest.fail "expected locate unavailable"

let test_glibc_discovery_channels () =
  let site, _ = Fixtures.small_site ~glibc:"2.5" () in
  (match Utilities.find_libc site with
  | Some path -> Alcotest.(check string) "libc path" "/lib64/libc.so.6" path
  | None -> Alcotest.fail "libc not found");
  let banner = Utilities.glibc_banner site in
  Alcotest.(check bool) "banner version" true (Str_split.contains ~sub:"version 2.5" banner)

let test_clock_charging () =
  let site, _, path, _ = compiled () in
  let clock = Sim_clock.create () in
  ignore (Utilities.objdump_p ~clock site path);
  ignore (Utilities.locate ~clock site "libm");
  Alcotest.(check bool) "charged" true (Sim_clock.elapsed clock > 0.0)

let suite =
  ( "utilities",
    [
      Alcotest.test_case "objdump -p output" `Quick test_objdump_format_line;
      Alcotest.test_case "objdump unavailable" `Quick test_objdump_unavailable;
      Alcotest.test_case "objdump missing file" `Quick test_objdump_missing_file;
      Alcotest.test_case "objdump non-ELF" `Quick test_objdump_not_elf;
      Alcotest.test_case "readelf comment" `Quick test_readelf_comment;
      Alcotest.test_case "file(1)" `Quick test_file_cmd;
      Alcotest.test_case "uname -p" `Quick test_uname;
      Alcotest.test_case "/etc/*release" `Quick test_etc_release;
      Alcotest.test_case "locate and find" `Quick test_locate_and_find;
      Alcotest.test_case "locate unavailable" `Quick test_locate_unavailable;
      Alcotest.test_case "glibc channels" `Quick test_glibc_discovery_channels;
      Alcotest.test_case "clock charging" `Quick test_clock_charging;
    ] )
