(* Tests for the seed-sweep aggregation. *)

open Feam_evalharness

let test_single_seed_sweep () =
  let aggregates = Sweep.run 1 in
  Alcotest.(check int) "all metrics" (List.length Sweep.paper_values)
    (List.length aggregates);
  List.iter
    (fun a ->
      (* one seed: mean = min = max *)
      Alcotest.(check (float 1e-9)) (a.Sweep.metric ^ " mean=min") a.Sweep.mean
        a.Sweep.minimum;
      Alcotest.(check (float 1e-9)) (a.Sweep.metric ^ " mean=max") a.Sweep.mean
        a.Sweep.maximum;
      (* percentages are sane *)
      Alcotest.(check bool) (a.Sweep.metric ^ " in range") true
        (a.Sweep.mean >= 0.0 && a.Sweep.mean <= 100.0))
    aggregates;
  (* the default-seed run satisfies the headline shape bounds *)
  let get name =
    (List.find (fun a -> a.Sweep.metric = name) aggregates).Sweep.mean
  in
  Alcotest.(check bool) "extended NAS > 90" true (get "extended NAS" > 90.0);
  Alcotest.(check bool) "after > before (NAS)" true
    (get "after NAS" > get "before NAS");
  Alcotest.(check bool) "after > before (SPEC)" true
    (get "after SPEC" > get "before SPEC");
  Alcotest.(check bool) "table renders" true
    (String.length (Feam_util.Table.render (Sweep.table ~seeds:1 aggregates)) > 0)

let test_sweep_deterministic () =
  let a = Sweep.run_once Params.default.Params.seed in
  let b = Sweep.run_once Params.default.Params.seed in
  List.iter2
    (fun (name, va) (_, vb) ->
      Alcotest.(check (float 1e-9)) name va vb)
    a b

let suite =
  ( "sweep",
    [
      Alcotest.test_case "single-seed sweep" `Slow test_single_seed_sweep;
      Alcotest.test_case "sweep deterministic" `Slow test_sweep_deterministic;
    ] )
