(* Unit and property tests for Feam_util.Soname: the naming convention
   behind the shared-library compatibility determinant. *)

open Feam_util

let s = Soname.of_string_exn

let test_parse () =
  let check str base version =
    let t = s str in
    Alcotest.(check string) (str ^ " base") base (Soname.base t);
    Alcotest.(check (list int)) (str ^ " version") version (Soname.version t)
  in
  check "libmpi.so.0" "libmpi" [ 0 ];
  check "libgfortran.so.3" "libgfortran" [ 3 ];
  check "libmpich.so.1.2" "libmpich" [ 1; 2 ];
  check "libimf.so" "libimf" [];
  check "libstdc++.so.6.0.13" "libstdc++" [ 6; 0; 13 ]

let test_parse_rejects () =
  List.iter
    (fun str ->
      Alcotest.(check bool) ("reject " ^ str) true (Soname.of_string str = None))
    [ "README"; "libfoo.so.x"; "libfoo.txt"; ".so.1"; "libfoo.so." ]

let test_to_string () =
  Alcotest.(check string) "render" "libmpi.so.0"
    (Soname.to_string (Soname.make ~version:[ 0 ] "libmpi"));
  Alcotest.(check string) "unversioned" "libimf.so"
    (Soname.to_string (Soname.make "libimf"));
  Alcotest.(check string) "link name" "libmpi.so"
    (Soname.link_name (Soname.make ~version:[ 0 ] "libmpi"))

let test_major () =
  Alcotest.(check (option int)) "major" (Some 6) (Soname.major (s "libstdc++.so.6.0.13"));
  Alcotest.(check (option int)) "no major" None (Soname.major (s "libimf.so"))

let test_satisfies () =
  let sat p r = Soname.satisfies ~provided:(s p) ~required:(s r) in
  Alcotest.(check bool) "same major, longer version" true
    (sat "libstdc++.so.6.0.13" "libstdc++.so.6");
  Alcotest.(check bool) "same exact" true (sat "libmpi.so.0" "libmpi.so.0");
  Alcotest.(check bool) "major mismatch" false (sat "libgfortran.so.3" "libgfortran.so.1");
  Alcotest.(check bool) "base mismatch" false (sat "libmpich.so.1" "libmpi.so.1");
  Alcotest.(check bool) "unversioned requirement" true (sat "libimf.so" "libimf.so");
  Alcotest.(check bool) "versioned provider, unversioned requirement" true
    (sat "libz.so.1" "libz.so");
  Alcotest.(check bool) "unversioned provider cannot satisfy versioned" false
    (sat "libz.so" "libz.so.1")

let test_newest_first () =
  let l = [ s "libz.so.1"; s "libz.so.1.2.3"; s "libz.so.2" ] in
  let sorted = List.sort Soname.newest_first l in
  Alcotest.(check string) "newest" "libz.so.2" (Soname.to_string (List.hd sorted))

(* -- qcheck -------------------------------------------------------------- *)

let gen_soname =
  QCheck.Gen.(
    let base =
      map (fun s -> "lib" ^ s) (oneofl [ "mpi"; "mpich"; "gfortran"; "z"; "foo" ])
    in
    let version = list_size (int_range 0 3) (int_range 0 20) in
    map2 (fun b ver -> Soname.make ~version:ver b) base version)

let arb_soname = QCheck.make ~print:Soname.to_string gen_soname

let prop_roundtrip =
  QCheck.Test.make ~name:"soname: to_string/of_string roundtrip" ~count:500
    arb_soname (fun a ->
      match Soname.of_string (Soname.to_string a) with
      | Some b -> Soname.equal a b
      | None -> false)

let prop_satisfies_reflexive =
  QCheck.Test.make ~name:"soname: satisfies is reflexive" ~count:500 arb_soname
    (fun a -> Soname.satisfies ~provided:a ~required:a)

let prop_satisfies_same_major =
  QCheck.Test.make ~name:"soname: same base+major always satisfies" ~count:500
    (QCheck.pair arb_soname (QCheck.make QCheck.Gen.(int_range 0 20)))
    (fun (a, minor) ->
      match Soname.major a with
      | None -> QCheck.assume_fail ()
      | Some major ->
        let provided = Soname.make ~version:[ major; minor ] (Soname.base a) in
        Soname.satisfies ~provided ~required:a)

let suite =
  ( "soname",
    [
      Alcotest.test_case "parse" `Quick test_parse;
      Alcotest.test_case "parse rejects" `Quick test_parse_rejects;
      Alcotest.test_case "render" `Quick test_to_string;
      Alcotest.test_case "major" `Quick test_major;
      Alcotest.test_case "satisfies" `Quick test_satisfies;
      Alcotest.test_case "newest first" `Quick test_newest_first;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_satisfies_reflexive;
      QCheck_alcotest.to_alcotest prop_satisfies_same_major;
    ] )
