(* Tests for statically linked binaries (paper §VI.C: only available at
   sites where the MPI implementation was installed with static
   libraries) and FEAM's documented behaviour on them. *)

open Feam_sysmodel
open Feam_core

let static_site () =
  let site =
    Site.make ~compilers:[ Fixtures.gnu412 ] ~seed:2
      ~fault_model:Fault_model.none ~machine:Feam_elf.Types.X86_64
      ~distro:
        (Distro.make Distro.Centos
           ~version:(Feam_util.Version.of_string_exn "5.6")
           ~kernel:(Feam_util.Version.of_string_exn "2.6.18"))
      ~glibc:(Feam_util.Version.of_string_exn "2.5")
      ~interconnect:Feam_mpi.Interconnect.Ethernet ~batch:Fixtures.default_batch
      "statichome"
  in
  Feam_toolchain.Provision.provision_base site;
  List.iter (Feam_toolchain.Provision.provision_compiler site) (Site.compilers site);
  let install =
    Feam_toolchain.Provision.provision_stack site ~static_libs:true
      (Fixtures.ompi14 Fixtures.gnu412)
  in
  Modules_tool.provision site;
  (site, install)

let program = Feam_toolchain.Compile.program "staticapp"

let test_static_requires_archives () =
  let site, installs = Fixtures.small_site () in
  ignore site;
  (* the default fixture installs ship no static libraries *)
  match
    Feam_toolchain.Compile.compile_mpi_static site (List.hd installs) program
  with
  | Error Feam_toolchain.Compile.No_static_libraries -> ()
  | _ -> Alcotest.fail "expected No_static_libraries"

let test_static_binary_has_no_dependencies () =
  let site, install = static_site () in
  ignore site;
  let image =
    Result.get_ok (Feam_toolchain.Compile.compile_mpi_static site install program)
  in
  let spec = Result.get_ok (Feam_elf.Reader.spec_of_bytes image) in
  Alcotest.(check (list string)) "no NEEDED" [] spec.Feam_elf.Spec.needed;
  Alcotest.(check bool) "no verneeds" true (spec.Feam_elf.Spec.verneeds = []);
  Alcotest.(check (option string)) "no interpreter" None spec.Feam_elf.Spec.interp

let test_static_binary_runs_anywhere_with_stack () =
  (* a static binary migrated to a site with the matching implementation
     runs even though none of its libraries exist there *)
  let home, install = static_site () in
  ignore home;
  let image =
    Result.get_ok (Feam_toolchain.Compile.compile_mpi_static home install program)
  in
  let target, target_installs =
    Fixtures.small_site ~name:"statictarget" ~glibc:"2.3.4" ()
  in
  Vfs.add (Site.vfs target) "/home/user/staticapp" (Vfs.Elf image);
  let env = Fixtures.session_env target (List.hd target_installs) in
  match
    Feam_dynlinker.Exec.run ~params:Fault_model.none target env
      ~binary_path:"/home/user/staticapp" ~mode:(Feam_dynlinker.Exec.Mpi 4)
  with
  | Feam_dynlinker.Exec.Success -> ()
  | o -> Alcotest.failf "unexpected: %s" (Feam_dynlinker.Exec.outcome_to_string o)

let test_feam_sees_static_as_dependency_free () =
  (* FEAM's link-level identification has nothing to work with on a
     static binary: the description shows no MPI implementation — the
     documented limit of the Table I scheme. *)
  let home, install = static_site () in
  let image =
    Result.get_ok (Feam_toolchain.Compile.compile_mpi_static home install program)
  in
  Vfs.add (Site.vfs home) "/home/user/staticapp" (Vfs.Elf image);
  let d =
    Fixtures.run_exn
      (Bdc.describe home (Site.base_env home) ~path:"/home/user/staticapp")
  in
  Alcotest.(check (list string)) "no needed" [] d.Description.needed;
  Alcotest.(check bool) "no MPI fingerprint" true (d.Description.mpi = None)

let suite =
  ( "static-linking",
    [
      Alcotest.test_case "requires archives" `Quick test_static_requires_archives;
      Alcotest.test_case "no dependencies" `Quick test_static_binary_has_no_dependencies;
      Alcotest.test_case "runs anywhere with stack" `Quick
        test_static_binary_runs_anywhere_with_stack;
      Alcotest.test_case "FEAM sees no fingerprint" `Quick
        test_feam_sees_static_as_dependency_free;
    ] )
