(* Tests for the shell-environment model and its path-list helpers. *)

open Feam_sysmodel

let test_basic () =
  let e = Env.set Env.empty "HOME" "/home/user" in
  Alcotest.(check (option string)) "get" (Some "/home/user") (Env.get e "HOME");
  Alcotest.(check (option string)) "missing" None (Env.get e "SHELL");
  Alcotest.(check string) "get_or" "/bin/sh" (Env.get_or e "SHELL" ~default:"/bin/sh");
  let e = Env.unset e "HOME" in
  Alcotest.(check (option string)) "unset" None (Env.get e "HOME")

let test_immutability () =
  let e1 = Env.set Env.empty "A" "1" in
  let e2 = Env.set e1 "A" "2" in
  Alcotest.(check (option string)) "e1 untouched" (Some "1") (Env.get e1 "A");
  Alcotest.(check (option string)) "e2 updated" (Some "2") (Env.get e2 "A")

let test_paths () =
  let e = Env.set Env.empty "LD_LIBRARY_PATH" "/a:/b::/c" in
  Alcotest.(check (list string)) "split drops empties" [ "/a"; "/b"; "/c" ]
    (Env.ld_library_path e);
  Alcotest.(check (list string)) "unset var" [] (Env.path e)

let test_prepend_append () =
  let e = Env.prepend_path Env.empty "PATH" "/usr/bin" in
  Alcotest.(check (list string)) "first entry" [ "/usr/bin" ] (Env.path e);
  let e = Env.prepend_path e "PATH" "/opt/bin" in
  Alcotest.(check (list string)) "prepended" [ "/opt/bin"; "/usr/bin" ] (Env.path e);
  let e = Env.append_path e "PATH" "/sbin" in
  Alcotest.(check (list string)) "appended" [ "/opt/bin"; "/usr/bin"; "/sbin" ]
    (Env.path e)

let test_of_list_to_string () =
  let e = Env.of_list [ ("B", "2"); ("A", "1") ] in
  Alcotest.(check string) "rendered sorted" "A=1\nB=2" (Env.to_string e);
  Alcotest.(check int) "bindings" 2 (List.length (Env.bindings e))

let suite =
  ( "env",
    [
      Alcotest.test_case "basic" `Quick test_basic;
      Alcotest.test_case "immutability" `Quick test_immutability;
      Alcotest.test_case "path split" `Quick test_paths;
      Alcotest.test_case "prepend/append" `Quick test_prepend_append;
      Alcotest.test_case "of_list/to_string" `Quick test_of_list_to_string;
    ] )
