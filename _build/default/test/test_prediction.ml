(* Integration tests for the prediction and resolution models through the
   TEC and the two phases: the paper's §III/§IV semantics. *)

open Feam_util
open Feam_sysmodel
open Feam_core

let v = Version.of_string_exn

let config = Config.default

(* Run a full migration through FEAM: source phase at [home], target
   phase at [target]; returns (prediction, bundle). *)
let feam_migrate ?(with_bundle = true) home home_install home_path target =
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let bundle =
    if with_bundle then
      let env = Fixtures.session_env home home_install in
      Some (Fixtures.run_exn (Phases.source_phase config home env ~binary_path:home_path))
    else None
  in
  (* stage the binary at the target *)
  let bytes =
    match Vfs.find (Site.vfs home) home_path with
    | Some { Vfs.kind = Vfs.Elf bytes; _ } -> bytes
    | _ -> Alcotest.fail "no binary"
  in
  Vfs.add (Site.vfs target) "/home/user/migrated/app" (Vfs.Elf bytes);
  let report =
    Fixtures.run_exn
      (Phases.target_phase config target (Site.base_env target) ?bundle
         ~binary_path:"/home/user/migrated/app" ())
  in
  (Report.prediction report, bundle)

(* -- Determinant 1: ISA ------------------------------------------------------ *)

let test_isa_determinant_blocks () =
  let home, home_installs = Fixtures.small_site ~name:"home" () in
  let home_path, home_install = Fixtures.compiled_binary home home_installs in
  let ppc, _ = Fixtures.ppc_site () in
  let p, _ = feam_migrate home home_install home_path ppc in
  Alcotest.(check bool) "not ready" false (Predict.is_ready p);
  Alcotest.(check bool) "isa reason" true
    (List.exists (fun r -> Str_split.contains ~sub:"incompatible ISA" r) (Predict.reasons p));
  (* evaluation stopped before the stack determinant (paper §V.C) *)
  Alcotest.(check bool) "stack not evaluated" true
    (p.Predict.determinants.Predict.stack = None)

(* -- Determinant 3: C library -------------------------------------------------- *)

let test_clib_determinant_blocks () =
  let home, home_installs = Fixtures.small_site ~name:"home" ~glibc:"2.12" () in
  let program = Feam_toolchain.Compile.program ~glibc_appetite:(v "2.7") "hungry" in
  let home_path, home_install = Fixtures.compiled_binary ~program home home_installs in
  let target, _ = Fixtures.small_site ~name:"target" ~glibc:"2.5" () in
  let p, _ = feam_migrate home home_install home_path target in
  Alcotest.(check bool) "not ready" false (Predict.is_ready p);
  Alcotest.(check bool) "clib reason" true
    (List.exists (fun r -> Str_split.contains ~sub:"C library too old" r) (Predict.reasons p));
  let d = p.Predict.determinants in
  Alcotest.(check bool) "required recorded" true
    (d.Predict.clib.Predict.required = Some (v "2.7"));
  Alcotest.(check bool) "available recorded" true
    (d.Predict.clib.Predict.available = Some (v "2.5"))

let test_clib_equal_is_compatible () =
  Alcotest.(check bool) "equal ok" true
    (Predict.clib_rule ~required:(Some (v "2.5")) ~available:(Some (v "2.5")));
  Alcotest.(check bool) "newer ok" true
    (Predict.clib_rule ~required:(Some (v "2.5")) ~available:(Some (v "2.12")));
  Alcotest.(check bool) "older bad" false
    (Predict.clib_rule ~required:(Some (v "2.5")) ~available:(Some (v "2.3.4")));
  Alcotest.(check bool) "no requirement ok" true
    (Predict.clib_rule ~required:None ~available:None);
  Alcotest.(check bool) "unknown site conservative" false
    (Predict.clib_rule ~required:(Some (v "2.5")) ~available:None)

(* -- Determinant 2: MPI stack --------------------------------------------------- *)

let test_no_matching_impl () =
  let home, home_installs = Fixtures.small_site ~name:"home" () in
  let home_path, home_install = Fixtures.compiled_binary home home_installs in
  (* target offers only MPICH2 *)
  let target, _ =
    Fixtures.small_site ~name:"target"
      ~stacks:(Some [ (Fixtures.mpich2 Fixtures.gnu412, Stack_install.Functioning) ])
      ()
  in
  let p, _ = feam_migrate home home_install home_path target in
  Alcotest.(check bool) "not ready" false (Predict.is_ready p);
  Alcotest.(check bool) "reason" true
    (List.exists
       (fun r -> Str_split.contains ~sub:"no compatible MPI implementation" r)
       (Predict.reasons p))

let test_misconfigured_stack_detected () =
  let home, home_installs = Fixtures.small_site ~name:"home" () in
  let home_path, home_install = Fixtures.compiled_binary home home_installs in
  let target, _ =
    Fixtures.small_site ~name:"target"
      ~stacks:
        (Some
           [
             ( Fixtures.ompi14 Fixtures.gnu412,
               Stack_install.Misconfigured "broken module" );
           ])
      ()
  in
  let p, _ = feam_migrate home home_install home_path target in
  Alcotest.(check bool) "not ready" false (Predict.is_ready p);
  match p.Predict.determinants.Predict.stack with
  | Some s ->
    Alcotest.(check int) "one candidate" 1 (List.length s.Predict.candidates_found);
    Alcotest.(check bool) "probe failure recorded" true (s.Predict.probe_failures <> [])
  | None -> Alcotest.fail "stack determinant missing"

let test_foreign_defect_extended_vs_basic () =
  (* A stack defect that only foreign binaries hit: the basic prediction
     (native probes only) says ready; the extended prediction's shipped
     probes catch it (paper §VI.C). *)
  let home, home_installs = Fixtures.small_site ~name:"home" () in
  let home_path, home_install = Fixtures.compiled_binary home home_installs in
  let target, _ =
    Fixtures.small_site ~name:"target"
      ~stacks:
        (Some
           [
             ( Fixtures.ompi14 Fixtures.gnu445,
               Stack_install.Foreign_binary_defect
                 {
                   Stack_install.affected_build_versions = [ v "1.4" ];
                   symptom = `Abi_incompatibility;
                 } );
           ])
      ()
  in
  let basic, _ = feam_migrate ~with_bundle:false home home_install home_path target in
  Alcotest.(check bool) "basic fooled" true (Predict.is_ready basic);
  let extended, _ = feam_migrate home home_install home_path target in
  Alcotest.(check bool) "extended catches" false (Predict.is_ready extended)

(* -- Determinant 4 + resolution -------------------------------------------------- *)

let fortran_home ?(glibc = "2.5") name =
  let site, installs = Fixtures.small_site ~name ~glibc () in
  let path, install =
    Fixtures.compiled_binary ~program:Fixtures.fortran_program site installs
  in
  (site, path, install)

(* Target whose GNU runtime has a different gfortran soname. *)
let gcc44_target ?(glibc = "2.12") name =
  let site =
    Site.make ~description:"gcc 4.4 target" ~tools:Tools.full
      ~modules_flavor:Site.Environment_modules
      ~compilers:[ Fixtures.gnu445 ] ~seed:13 ~machine:Feam_elf.Types.X86_64
      ~distro:
        (Distro.make Distro.Rhel ~version:(v "6.1") ~kernel:(v "2.6.32"))
      ~glibc:(v glibc) ~interconnect:Feam_mpi.Interconnect.Infiniband
      ~batch:Fixtures.default_batch name
  in
  let _installs =
    Feam_toolchain.Provision.provision_site site
      ~stacks:[ (Fixtures.ompi14 Fixtures.gnu445, Stack_install.Functioning) ]
  in
  site

let test_missing_lib_without_bundle () =
  let home, home_path, home_install = fortran_home "home" in
  let target = gcc44_target "target" in
  let p, _ = feam_migrate ~with_bundle:false home home_install home_path target in
  Alcotest.(check bool) "not ready" false (Predict.is_ready p);
  Alcotest.(check bool) "missing gfortran" true
    (List.exists
       (fun r -> Str_split.contains ~sub:"libgfortran.so.1" r)
       (Predict.reasons p))

let test_resolution_fixes_missing_lib () =
  let home, home_path, home_install = fortran_home "home" in
  let target = gcc44_target "target" in
  let p, _ = feam_migrate home home_install home_path target in
  Alcotest.(check bool) "ready after resolution" true (Predict.is_ready p);
  match p.Predict.verdict with
  | Predict.Ready plan ->
    Alcotest.(check bool) "gfortran staged" true
      (List.mem_assoc "libgfortran.so.1" plan.Predict.staged_copies);
    Alcotest.(check bool) "staging dir exported" true
      (plan.Predict.ld_library_path_additions = [ config.Config.staging_dir ]);
    (* the staged copy is a real file at the target *)
    let path = List.assoc "libgfortran.so.1" plan.Predict.staged_copies in
    Alcotest.(check bool) "file staged" true (Vfs.exists (Site.vfs target) path)
  | Predict.Not_ready _ -> Alcotest.fail "expected ready"

let test_resolution_rejects_clib_incompatible_copy () =
  (* copy built on a glibc-2.12 site cannot serve a glibc-2.5 target
     (paper §VI.C: copies "required incompatible C library versions") *)
  let home, home_path, home_install = fortran_home ~glibc:"2.12" "home" in
  ignore home_install;
  (* rebuild home with gcc 4.4 so its gfortran is .so.3 with a 2.6 appetite *)
  ignore home;
  ignore home_path;
  let home = gcc44_target ~glibc:"2.12" "home44" in
  let install = List.hd (Site.stack_installs home) in
  let home_path =
    Fixtures.run_exn
      (Result.map_error Feam_toolchain.Compile.error_to_string
         (Feam_toolchain.Compile.compile_mpi_to home install
            Fixtures.fortran_program ~dir:"/home/user/apps"))
  in
  let target, _ = Fixtures.small_site ~name:"oldtarget" ~glibc:"2.5" () in
  let p, _ = feam_migrate home install home_path target in
  Alcotest.(check bool) "not ready" false (Predict.is_ready p);
  (* the incompatible copy is rejected either at the library determinant
     or earlier, when the shipped Fortran probe (which needs the same
     copy) fails its run *)
  Alcotest.(check bool) "copy rejected" true
    (List.exists
       (fun r ->
         Str_split.contains ~sub:"copy requires C library" r
         || Str_split.contains ~sub:"failed probes" r)
       (Predict.reasons p))

let test_actual_execution_matches_resolution () =
  (* ground truth: the binary actually runs at the target after FEAM's
     staging, and fails without it *)
  let home, home_path, home_install = fortran_home "home" in
  let target = gcc44_target "target" in
  let p, _ = feam_migrate home home_install home_path target in
  let install = List.hd (Site.stack_installs target) in
  let quiet = { Feam_dynlinker.Exec.p_transient = 0.0; p_sticky = 0.0; p_copy_abi = 0.0 } in
  let base = Fixtures.session_env target install in
  let without =
    Feam_dynlinker.Exec.run ~params:quiet target base
      ~binary_path:"/home/user/migrated/app" ~mode:(Feam_dynlinker.Exec.Mpi 4)
  in
  (match without with
  | Feam_dynlinker.Exec.Failure (Feam_dynlinker.Exec.Missing_libraries _) -> ()
  | o -> Alcotest.failf "expected missing libs: %s" (Feam_dynlinker.Exec.outcome_to_string o));
  (match p.Predict.verdict with
  | Predict.Ready plan ->
    let env =
      List.fold_left
        (fun e dir -> Env.prepend_path e "LD_LIBRARY_PATH" dir)
        base plan.Predict.ld_library_path_additions
    in
    let with_fix =
      Feam_dynlinker.Exec.run ~params:quiet target env
        ~binary_path:"/home/user/migrated/app" ~mode:(Feam_dynlinker.Exec.Mpi 4)
    in
    Alcotest.(check string) "runs with staged copy" "success"
      (Feam_dynlinker.Exec.outcome_to_string with_fix)
  | Predict.Not_ready _ -> Alcotest.fail "expected ready")

(* -- Phases & report --------------------------------------------------------------- *)

let test_source_phase_contents () =
  let home, home_path, home_install = fortran_home "home" in
  let env = Fixtures.session_env home home_install in
  let bundle =
    Fixtures.run_exn (Phases.source_phase config home env ~binary_path:home_path)
  in
  Alcotest.(check string) "created at" "home" bundle.Bundle.created_at;
  Alcotest.(check bool) "binary carried" true (bundle.Bundle.binary_bytes <> None);
  Alcotest.(check int) "two probes (C + Fortran)" 2 (List.length bundle.Bundle.probes);
  Alcotest.(check bool) "copies nonempty" true (bundle.Bundle.copies <> []);
  Alcotest.(check bool) "library bytes accounted" true (Bundle.library_bytes bundle > 0)

let test_source_phase_rejects_wrong_stack () =
  (* the loaded stack does not match the binary's implementation: not a
     guaranteed execution environment for it *)
  let home, installs = Fixtures.small_site ~name:"home" () in
  let path, _ = Fixtures.compiled_binary home installs in
  let mvapich_install =
    List.find
      (fun i ->
        Feam_mpi.Impl.equal
          (Feam_mpi.Stack.impl (Stack_install.stack i))
          Feam_mpi.Impl.Mvapich2)
      installs
  in
  let env = Fixtures.session_env home mvapich_install in
  match Phases.source_phase config home env ~binary_path:path with
  | Error e ->
    Alcotest.(check bool) "mismatch reported" true
      (Str_split.contains ~sub:"does not match" e)
  | Ok _ -> Alcotest.fail "expected mismatch error"

let test_target_phase_without_binary_uses_bundle () =
  (* running both phases means the binary need not be pre-staged (paper §V) *)
  let home, home_path, home_install = fortran_home "home" in
  let target = gcc44_target "target" in
  let env = Fixtures.session_env home home_install in
  let bundle =
    Fixtures.run_exn (Phases.source_phase config home env ~binary_path:home_path)
  in
  let report =
    Fixtures.run_exn
      (Phases.target_phase config target (Site.base_env target) ~bundle ())
  in
  Alcotest.(check bool) "evaluates without pre-staged binary" true
    (Predict.is_ready (Report.prediction report))

let test_target_phase_needs_something () =
  let target, _ = Fixtures.small_site ~name:"t" () in
  match Phases.target_phase config target (Site.base_env target) () with
  | Error e -> Alcotest.(check bool) "helpful error" true (Str_split.contains ~sub:"bundle" e)
  | Ok _ -> Alcotest.fail "expected error"

let test_report_rendering () =
  let home, home_path, home_install = fortran_home "home" in
  let target = gcc44_target "target" in
  let env = Fixtures.session_env home home_install in
  let bundle =
    Fixtures.run_exn (Phases.source_phase config home env ~binary_path:home_path)
  in
  let report =
    Fixtures.run_exn
      (Phases.target_phase config target (Site.base_env target) ~bundle ())
  in
  let text = Report.render report in
  Alcotest.(check bool) "ready" true (Str_split.contains ~sub:"READY" text);
  Alcotest.(check bool) "setup script" true (Str_split.contains ~sub:"module load" text);
  Alcotest.(check bool) "launcher line" true (Str_split.contains ~sub:"mpiexec" text);
  Alcotest.(check bool) "determinants shown" true
    (Str_split.contains ~sub:"C library compatible" text)

let test_serial_binary_skips_stack () =
  let site, _ = Fixtures.small_site ~name:"home" () in
  let image =
    Result.get_ok
      (Feam_toolchain.Compile.compile_serial site
         (Feam_toolchain.Compile.program ~uses_mpi:false "serialtool"))
  in
  Vfs.add (Site.vfs site) "/home/user/serialtool" (Vfs.Elf image);
  let target, _ = Fixtures.small_site ~name:"target2" () in
  Vfs.add (Site.vfs target) "/home/user/serialtool" (Vfs.Elf image);
  let report =
    Fixtures.run_exn
      (Phases.target_phase config target (Site.base_env target)
         ~binary_path:"/home/user/serialtool" ())
  in
  let p = Report.prediction report in
  Alcotest.(check bool) "ready" true (Predict.is_ready p);
  match p.Predict.verdict with
  | Predict.Ready plan ->
    Alcotest.(check bool) "no stack chosen" true (plan.Predict.chosen_stack_slug = None)
  | _ -> Alcotest.fail "expected ready"

(* Timing: both phases stay under the paper's five-minute bound. *)
let test_phase_timing_bound () =
  let home, home_path, home_install = fortran_home "home" in
  let target = gcc44_target "target" in
  let clock = Sim_clock.create () in
  let env = Fixtures.session_env home home_install in
  let bundle =
    Fixtures.run_exn
      (Phases.source_phase ~clock config home env ~binary_path:home_path)
  in
  Alcotest.(check bool) "source under 5 min" true (Sim_clock.elapsed clock < 300.0);
  let clock2 = Sim_clock.create () in
  ignore
    (Phases.target_phase ~clock:clock2 config target (Site.base_env target) ~bundle ());
  Alcotest.(check bool) "target under 5 min" true (Sim_clock.elapsed clock2 < 300.0)

let suite =
  ( "prediction",
    [
      Alcotest.test_case "ISA determinant blocks" `Quick test_isa_determinant_blocks;
      Alcotest.test_case "C library determinant blocks" `Quick test_clib_determinant_blocks;
      Alcotest.test_case "C library rule" `Quick test_clib_equal_is_compatible;
      Alcotest.test_case "no matching implementation" `Quick test_no_matching_impl;
      Alcotest.test_case "misconfigured stack detected" `Quick test_misconfigured_stack_detected;
      Alcotest.test_case "foreign defect: extended vs basic" `Quick
        test_foreign_defect_extended_vs_basic;
      Alcotest.test_case "missing lib without bundle" `Quick test_missing_lib_without_bundle;
      Alcotest.test_case "resolution fixes missing lib" `Quick test_resolution_fixes_missing_lib;
      Alcotest.test_case "resolution rejects old-glibc copy" `Quick
        test_resolution_rejects_clib_incompatible_copy;
      Alcotest.test_case "actual execution matches resolution" `Quick
        test_actual_execution_matches_resolution;
      Alcotest.test_case "source phase contents" `Quick test_source_phase_contents;
      Alcotest.test_case "source phase rejects wrong stack" `Quick
        test_source_phase_rejects_wrong_stack;
      Alcotest.test_case "target phase from bundle only" `Quick
        test_target_phase_without_binary_uses_bundle;
      Alcotest.test_case "target phase needs input" `Quick test_target_phase_needs_something;
      Alcotest.test_case "report rendering" `Quick test_report_rendering;
      Alcotest.test_case "serial binary skips stack" `Quick test_serial_binary_skips_stack;
      Alcotest.test_case "phase timing bound" `Quick test_phase_timing_bound;
    ] )
