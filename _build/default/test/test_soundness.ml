(* Prediction-soundness property (DESIGN §5): on deterministic worlds —
   no injected system errors, healthy stacks, zero copy-ABI fragility —
   FEAM's extended prediction must equal the ground-truth execution
   outcome, for randomly generated site pairs and programs.

   This is the strongest correctness statement about the reproduction:
   whenever the world contains only information FEAM can observe, the
   four determinants plus resolution decide execution exactly. *)

open Feam_util
open Feam_sysmodel
open Feam_mpi

let v = Version.of_string_exn

(* -- random world generation -------------------------------------------------- *)

type world_spec = {
  home_glibc : string;
  target_glibc : string;
  home_gcc : string;
  target_gcc : string;
  home_impl : Impl.t;
  target_impls : Impl.t list;
  program_language : Stack.language;
  program_appetite : string;
}

let gen_world =
  QCheck.Gen.(
    let glibc = oneofl [ "2.3.4"; "2.5"; "2.11.1"; "2.12" ] in
    let gcc = oneofl [ "3.4.6"; "4.1.2"; "4.4.5" ] in
    let impl = oneofl [ Impl.Open_mpi; Impl.Mpich2; Impl.Mvapich2 ] in
    let impls = list_size (int_range 1 3) impl in
    let language = oneofl [ Stack.C; Stack.Fortran ] in
    let appetite = oneofl [ "2.2.5"; "2.3.4"; "2.5"; "2.7" ] in
    glibc >>= fun home_glibc ->
    glibc >>= fun target_glibc ->
    gcc >>= fun home_gcc ->
    gcc >>= fun target_gcc ->
    impl >>= fun home_impl ->
    impls >>= fun target_impls ->
    language >>= fun program_language ->
    appetite >>= fun program_appetite ->
    return
      {
        home_glibc;
        target_glibc;
        home_gcc;
        target_gcc;
        home_impl;
        target_impls;
        program_language;
        program_appetite;
      })

let print_world w =
  Printf.sprintf "home(glibc %s, gcc %s, %s) -> target(glibc %s, gcc %s, [%s]) %s app, appetite %s"
    w.home_glibc w.home_gcc (Impl.name w.home_impl) w.target_glibc w.target_gcc
    (String.concat ";" (List.map Impl.name w.target_impls))
    (match w.program_language with Stack.C -> "C" | Stack.Fortran -> "Fortran")
    w.program_appetite

let batch =
  Batch.make ~queues:[ { Batch.queue_name = "debug"; wait_seconds = 1.0 } ] Batch.Pbs

let make_stack impl gcc_version =
  Stack.make ~impl ~impl_version:(v "1.4")
    ~compiler:(Compiler.make Compiler.Gnu (v gcc_version))
    ~interconnect:
      (match impl with
      | Impl.Mvapich2 -> Interconnect.Infiniband
      | Impl.Open_mpi | Impl.Mpich2 -> Interconnect.Ethernet)

let make_site ~name ~glibc ~gcc ~impls =
  let compiler = Compiler.make Compiler.Gnu (v gcc) in
  let site =
    Site.make ~compilers:[ compiler ] ~seed:1 ~fault_model:Fault_model.none
      ~machine:Feam_elf.Types.X86_64
      ~distro:(Distro.make Distro.Centos ~version:(v "5.6") ~kernel:(v "2.6.18"))
      ~glibc:(v glibc) ~interconnect:Interconnect.Infiniband ~batch name
  in
  let installs =
    Feam_toolchain.Provision.provision_site site
      ~stacks:
        (List.map (fun impl -> (make_stack impl gcc, Stack_install.Functioning)) impls)
  in
  (site, installs)

(* -- the property --------------------------------------------------------------- *)

let check_world w =
  let home, home_installs =
    make_site ~name:"shome" ~glibc:w.home_glibc ~gcc:w.home_gcc
      ~impls:[ w.home_impl ]
  in
  let target, _ =
    make_site ~name:"starget" ~glibc:w.target_glibc ~gcc:w.target_gcc
      ~impls:w.target_impls
  in
  let program =
    Feam_toolchain.Compile.program ~language:w.program_language
      ~glibc_appetite:(v w.program_appetite) "soundapp"
  in
  let home_install = List.hd home_installs in
  match
    Feam_toolchain.Compile.compile_mpi_to home home_install program
      ~dir:"/home/user/apps"
  with
  | Error _ -> QCheck.assume_fail ()
  | Ok home_path ->
    (* the binary must run at home (guaranteed execution environment) *)
    let home_env = Modules_tool.load_stack (Site.base_env home) home_install in
    (match
       Feam_dynlinker.Exec.run home home_env ~binary_path:home_path
         ~mode:(Feam_dynlinker.Exec.Mpi 4)
     with
    | Feam_dynlinker.Exec.Failure _ -> QCheck.assume_fail ()
    | Feam_dynlinker.Exec.Success ->
      (* migrate: full FEAM, extended mode *)
      let config = Feam_core.Config.default in
      Vfs.remove_tree (Site.vfs target) "/tmp/feam";
      let bundle =
        match
          Feam_core.Phases.source_phase config home home_env
            ~binary_path:home_path
        with
        | Ok b -> b
        | Error e -> Alcotest.failf "source phase: %s" e
      in
      let bytes =
        match Vfs.find (Site.vfs home) home_path with
        | Some { Vfs.kind = Vfs.Elf b; _ } -> b
        | _ -> assert false
      in
      Vfs.add (Site.vfs target) "/home/user/migrated/soundapp" (Vfs.Elf bytes);
      let report =
        match
          Feam_core.Phases.target_phase config target (Site.base_env target)
            ~bundle ~binary_path:"/home/user/migrated/soundapp" ()
        with
        | Ok r -> r
        | Error e -> Alcotest.failf "target phase: %s" e
      in
      let prediction = Feam_core.Report.prediction report in
      (* ground truth under FEAM's configuration *)
      let actual =
        match prediction.Feam_core.Predict.verdict with
        | Feam_core.Predict.Ready plan ->
          let install =
            match plan.Feam_core.Predict.chosen_stack_slug with
            | Some slug -> Option.get (Site.find_stack_install target ~slug)
            | None -> Alcotest.fail "ready without stack"
          in
          let env = Modules_tool.load_stack (Site.base_env target) install in
          let env =
            List.fold_left
              (fun e d -> Env.prepend_path e "LD_LIBRARY_PATH" d)
              env plan.Feam_core.Predict.ld_library_path_additions
          in
          Feam_dynlinker.Exec.run target env
            ~binary_path:"/home/user/migrated/soundapp"
            ~mode:(Feam_dynlinker.Exec.Mpi 4)
        | Feam_core.Predict.Not_ready _ -> (
          (* best manual attempt: matching stack, no fixes *)
          let matching =
            Site.stack_installs target
            |> List.find_opt (fun i ->
                   Impl.equal
                     (Stack.impl (Stack_install.stack i))
                     w.home_impl)
          in
          match matching with
          | None -> Feam_dynlinker.Exec.Failure Feam_dynlinker.Exec.No_mpi_stack
          | Some install ->
            let env = Modules_tool.load_stack (Site.base_env target) install in
            Feam_dynlinker.Exec.run target env
              ~binary_path:"/home/user/migrated/soundapp"
              ~mode:(Feam_dynlinker.Exec.Mpi 4))
      in
      let predicted_ready = Feam_core.Predict.is_ready prediction in
      let actually_ran =
        match actual with
        | Feam_dynlinker.Exec.Success -> true
        | Feam_dynlinker.Exec.Failure _ -> false
      in
      if predicted_ready <> actually_ran then
        QCheck.Test.fail_reportf
          "prediction %b but execution %s in world: %s (reasons: %s)"
          predicted_ready
          (Feam_dynlinker.Exec.outcome_to_string actual)
          (print_world w)
          (String.concat "; " (Feam_core.Predict.reasons prediction)));
    true

let prop_soundness =
  QCheck.Test.make ~name:"extended prediction = ground truth on fault-free worlds"
    ~count:60
    (QCheck.make ~print:print_world gen_world)
    check_world

(* Basic prediction is also sound on fault-free worlds: with no hidden
   defects there is nothing only the shipped probes could see, so the
   target phase alone decides execution exactly (up to resolution, which
   basic mode cannot perform — so we compare against the unresolved
   run). *)
let check_world_basic w =
  let home, home_installs =
    make_site ~name:"bhome" ~glibc:w.home_glibc ~gcc:w.home_gcc
      ~impls:[ w.home_impl ]
  in
  let target, _ =
    make_site ~name:"btarget" ~glibc:w.target_glibc ~gcc:w.target_gcc
      ~impls:w.target_impls
  in
  let program =
    Feam_toolchain.Compile.program ~language:w.program_language
      ~glibc_appetite:(v w.program_appetite) "basicapp"
  in
  let home_install = List.hd home_installs in
  match
    Feam_toolchain.Compile.compile_mpi_to home home_install program
      ~dir:"/home/user/apps"
  with
  | Error _ -> QCheck.assume_fail ()
  | Ok home_path ->
    let home_env = Modules_tool.load_stack (Site.base_env home) home_install in
    (match
       Feam_dynlinker.Exec.run home home_env ~binary_path:home_path
         ~mode:(Feam_dynlinker.Exec.Mpi 4)
     with
    | Feam_dynlinker.Exec.Failure _ -> QCheck.assume_fail ()
    | Feam_dynlinker.Exec.Success ->
      let config = Feam_core.Config.default in
      Vfs.remove_tree (Site.vfs target) "/tmp/feam";
      let bytes =
        match Vfs.find (Site.vfs home) home_path with
        | Some { Vfs.kind = Vfs.Elf b; _ } -> b
        | _ -> assert false
      in
      Vfs.add (Site.vfs target) "/home/user/migrated/basicapp" (Vfs.Elf bytes);
      let report =
        match
          Feam_core.Phases.target_phase config target (Site.base_env target)
            ~binary_path:"/home/user/migrated/basicapp" ()
        with
        | Ok r -> r
        | Error e -> Alcotest.failf "target phase: %s" e
      in
      let p = Feam_core.Report.prediction report in
      let chosen =
        match p.Feam_core.Predict.determinants.Feam_core.Predict.stack with
        | Some sc -> sc.Feam_core.Predict.functioning
        | None -> None
      in
      let install =
        match chosen with
        | Some slug -> Site.find_stack_install target ~slug
        | None ->
          List.find_opt
            (fun i ->
              Impl.equal (Stack.impl (Stack_install.stack i)) w.home_impl)
            (Site.stack_installs target)
      in
      let actual =
        match install with
        | None -> Feam_dynlinker.Exec.Failure Feam_dynlinker.Exec.No_mpi_stack
        | Some install ->
          Feam_dynlinker.Exec.run target
            (Modules_tool.load_stack (Site.base_env target) install)
            ~binary_path:"/home/user/migrated/basicapp"
            ~mode:(Feam_dynlinker.Exec.Mpi 4)
      in
      let predicted = Feam_core.Predict.is_ready p in
      let ran = actual = Feam_dynlinker.Exec.Success in
      if predicted <> ran then
        QCheck.Test.fail_reportf
          "basic prediction %b but execution %s in world: %s (reasons: %s)"
          predicted
          (Feam_dynlinker.Exec.outcome_to_string actual)
          (print_world w)
          (String.concat "; " (Feam_core.Predict.reasons p)));
    true

let prop_soundness_basic =
  QCheck.Test.make
    ~name:"basic prediction = ground truth on fault-free worlds" ~count:40
    (QCheck.make ~print:print_world gen_world)
    check_world_basic

let suite =
  ( "soundness",
    [
      QCheck_alcotest.to_alcotest ~long:true prop_soundness;
      QCheck_alcotest.to_alcotest ~long:true prop_soundness_basic;
    ] )
