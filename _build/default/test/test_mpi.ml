(* Tests for the MPI stack model: implementations, compilers,
   interconnects, stack compatibility and dependency fingerprints. *)

open Feam_util
open Feam_mpi

let v = Version.of_string_exn

let test_impl_slugs () =
  List.iter
    (fun impl ->
      Alcotest.(check bool) (Impl.name impl) true
        (Impl.of_slug (Impl.slug impl) = Some impl))
    Impl.all

let test_impl_compat () =
  Alcotest.(check bool) "same type" true
    (Impl.compatible ~binary:Impl.Open_mpi ~site:Impl.Open_mpi);
  Alcotest.(check bool) "different type" false
    (Impl.compatible ~binary:Impl.Open_mpi ~site:Impl.Mvapich2);
  (* MPICH2 and MVAPICH2 share libmpich but are NOT compatible *)
  Alcotest.(check bool) "mpich2 vs mvapich2" false
    (Impl.compatible ~binary:Impl.Mpich2 ~site:Impl.Mvapich2)

let has_base base sonames = List.exists (fun s -> Soname.base s = base) sonames

let test_fingerprints () =
  (* Table I: Open MPI identified by libnsl/libutil, MVAPICH2 by
     libibverbs/libibumad, MPICH2 by absence of the others. *)
  let ompi = Impl.extra_system_libs Impl.Open_mpi in
  Alcotest.(check bool) "ompi libnsl" true (has_base "libnsl" ompi);
  Alcotest.(check bool) "ompi libutil" true (has_base "libutil" ompi);
  let mva = Impl.extra_system_libs Impl.Mvapich2 in
  Alcotest.(check bool) "mvapich ibverbs" true (has_base "libibverbs" mva);
  Alcotest.(check bool) "mvapich ibumad" true (has_base "libibumad" mva);
  Alcotest.(check (list string)) "mpich none" []
    (List.map Soname.to_string (Impl.extra_system_libs Impl.Mpich2))

let test_core_libs () =
  let ompi = Impl.core_libs Impl.Open_mpi ~version:(v "1.4") in
  Alcotest.(check bool) "libmpi" true (has_base "libmpi" ompi);
  let mpich = Impl.core_libs Impl.Mpich2 ~version:(v "1.4") in
  Alcotest.(check bool) "libmpich" true (has_base "libmpich" mpich);
  let mva = Impl.core_libs Impl.Mvapich2 ~version:(v "1.7a2") in
  Alcotest.(check bool) "mvapich uses libmpich too" true (has_base "libmpich" mva)

let test_compiler_runtimes () =
  let gnu34 = Compiler.make Compiler.Gnu (v "3.4.6") in
  let gnu41 = Compiler.make Compiler.Gnu (v "4.1.2") in
  let gnu44 = Compiler.make Compiler.Gnu (v "4.4.5") in
  let intel = Compiler.make Compiler.Intel (v "11.1") in
  let pgi = Compiler.make Compiler.Pgi (v "10.9") in
  let fort c = List.map Soname.to_string (Compiler.fortran_runtime_libs c) in
  Alcotest.(check (list string)) "g77 era" [ "libg2c.so.0" ] (fort gnu34);
  Alcotest.(check (list string)) "gcc 4.1" [ "libgfortran.so.1" ] (fort gnu41);
  Alcotest.(check (list string)) "gcc 4.4" [ "libgfortran.so.3" ] (fort gnu44);
  Alcotest.(check bool) "intel ifcore" true
    (has_base "libifcore" (Compiler.fortran_runtime_libs intel));
  Alcotest.(check bool) "pgi pgf90" true
    (has_base "libpgf90" (Compiler.fortran_runtime_libs pgi));
  Alcotest.(check bool) "intel c runtime imf" true
    (has_base "libimf" (Compiler.c_runtime_libs intel))

let test_compiler_letters () =
  Alcotest.(check char) "gnu" 'g' (Compiler.family_letter Compiler.Gnu);
  Alcotest.(check char) "intel" 'i' (Compiler.family_letter Compiler.Intel);
  Alcotest.(check char) "pgi" 'p' (Compiler.family_letter Compiler.Pgi);
  List.iter
    (fun f ->
      Alcotest.(check bool) (Compiler.family_name f) true
        (Compiler.family_of_slug (Compiler.family_slug f) = Some f))
    Compiler.all_families

let test_interconnect () =
  Alcotest.(check bool) "ethernet anywhere" true
    (Interconnect.supports ~binary:Interconnect.Ethernet ~site:Interconnect.Numalink);
  Alcotest.(check bool) "ib on ib" true
    (Interconnect.supports ~binary:Interconnect.Infiniband ~site:Interconnect.Infiniband);
  Alcotest.(check bool) "ib on ethernet" false
    (Interconnect.supports ~binary:Interconnect.Infiniband ~site:Interconnect.Ethernet);
  Alcotest.(check bool) "verbs libs" true
    (has_base "libibverbs" (Interconnect.runtime_libs Interconnect.Infiniband));
  Alcotest.(check (list string)) "ethernet no libs" []
    (List.map Soname.to_string (Interconnect.runtime_libs Interconnect.Ethernet))

let mk_stack impl iv family cv inter =
  Stack.make ~impl ~impl_version:(v iv)
    ~compiler:(Compiler.make family (v cv))
    ~interconnect:inter

let test_stack_slug () =
  let st = mk_stack Impl.Open_mpi "1.4.3" Compiler.Intel "11.1" Interconnect.Ethernet in
  Alcotest.(check string) "slug" "openmpi-1.4.3-intel" (Stack.slug st)

let test_stack_compat () =
  let a = mk_stack Impl.Open_mpi "1.3" Compiler.Gnu "3.4.6" Interconnect.Ethernet in
  let b = mk_stack Impl.Open_mpi "1.4" Compiler.Gnu "4.4.5" Interconnect.Infiniband in
  (* version differences are ignored by the compatibility rule *)
  Alcotest.(check bool) "versions ignored" true (Stack.compatible ~binary:a ~site:b);
  let c = mk_stack Impl.Open_mpi "1.4" Compiler.Intel "11.1" Interconnect.Ethernet in
  Alcotest.(check bool) "compiler family matters" false
    (Stack.compatible ~binary:a ~site:c);
  let d = mk_stack Impl.Mvapich2 "1.4" Compiler.Gnu "4.1.2" Interconnect.Infiniband in
  Alcotest.(check bool) "impl matters" false (Stack.compatible ~binary:a ~site:d)

let test_stack_needed_libs () =
  let st = mk_stack Impl.Mvapich2 "1.7a2" Compiler.Intel "11.1" Interconnect.Infiniband in
  let c_libs = Stack.needed_libs st Stack.C in
  let f_libs = Stack.needed_libs st Stack.Fortran in
  Alcotest.(check bool) "c has libmpich" true (has_base "libmpich" c_libs);
  Alcotest.(check bool) "c has ibverbs" true (has_base "libibverbs" c_libs);
  Alcotest.(check bool) "c has intel rt" true (has_base "libimf" c_libs);
  Alcotest.(check bool) "c lacks fortran bindings" false (has_base "libmpichf90" c_libs);
  Alcotest.(check bool) "fortran has bindings" true (has_base "libmpichf90" f_libs);
  Alcotest.(check bool) "fortran has ifcore" true (has_base "libifcore" f_libs)

let test_launcher () =
  Alcotest.(check string) "default" "mpiexec" Stack.default_launcher;
  Alcotest.(check bool) "wrappers" true (List.mem "mpicc" Stack.wrapper_names)

let suite =
  ( "mpi",
    [
      Alcotest.test_case "impl slugs" `Quick test_impl_slugs;
      Alcotest.test_case "impl compatibility" `Quick test_impl_compat;
      Alcotest.test_case "Table I fingerprints" `Quick test_fingerprints;
      Alcotest.test_case "core libs" `Quick test_core_libs;
      Alcotest.test_case "compiler runtimes" `Quick test_compiler_runtimes;
      Alcotest.test_case "compiler families" `Quick test_compiler_letters;
      Alcotest.test_case "interconnects" `Quick test_interconnect;
      Alcotest.test_case "stack slug" `Quick test_stack_slug;
      Alcotest.test_case "stack compatibility" `Quick test_stack_compat;
      Alcotest.test_case "stack needed libs" `Quick test_stack_needed_libs;
      Alcotest.test_case "launcher" `Quick test_launcher;
    ] )
