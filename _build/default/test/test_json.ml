(* Tests for the JSON codec and the machine-readable report. *)

open Feam_util

let test_render_basics () =
  Alcotest.(check string) "null" "null" (Json.render Json.Null);
  Alcotest.(check string) "bool" "true" (Json.render (Json.Bool true));
  Alcotest.(check string) "int" "-42" (Json.render (Json.Int (-42)));
  Alcotest.(check string) "string escape" "\"a\\\"b\\n\""
    (Json.render (Json.Str "a\"b\n"));
  Alcotest.(check string) "list" "[1,2]"
    (Json.render (Json.List [ Json.Int 1; Json.Int 2 ]));
  Alcotest.(check string) "obj" "{\"k\":\"v\"}"
    (Json.render (Json.Obj [ ("k", Json.Str "v") ]))

let test_parse_basics () =
  let ok s = Result.get_ok (Json.parse s) in
  Alcotest.(check bool) "null" true (ok "null" = Json.Null);
  Alcotest.(check bool) "int" true (ok " 42 " = Json.Int 42);
  Alcotest.(check bool) "float" true
    (match ok "3.5" with Json.Float f -> f = 3.5 | _ -> false);
  Alcotest.(check bool) "nested" true
    (ok "{\"a\": [1, {\"b\": false}]}"
    = Json.Obj
        [ ("a", Json.List [ Json.Int 1; Json.Obj [ ("b", Json.Bool false) ] ]) ]);
  Alcotest.(check bool) "escapes" true (ok "\"a\\nb\"" = Json.Str "a\nb");
  Alcotest.(check bool) "empty containers" true
    (ok "[]" = Json.List [] && ok "{}" = Json.Obj [])

let test_parse_rejects () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("reject " ^ s) true (Result.is_error (Json.parse s)))
    [ ""; "{"; "[1,]"; "{\"a\"}"; "tru"; "1 2"; "\"unterminated" ]

let gen_json =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          let scalar =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
                map (fun s -> Json.Str s) (string_size ~gen:printable (int_range 0 12));
              ]
          in
          if n <= 0 then scalar
          else
            oneof
              [
                scalar;
                map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2)));
                map
                  (fun kvs -> Json.Obj kvs)
                  (list_size (int_range 0 4)
                     (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 6))
                        (self (n / 2))));
              ])
        (min n 6))

let prop_roundtrip =
  QCheck.Test.make ~name:"json: render/parse roundtrip" ~count:300
    (QCheck.make ~print:Json.render gen_json) (fun j ->
      match Json.parse (Json.render j) with
      | Ok j' -> j = j'
      | Error _ -> false)

let test_report_json () =
  let site, installs = Fixtures.small_site () in
  let path, _ = Fixtures.compiled_binary site installs in
  let report =
    Fixtures.run_exn
      (Feam_core.Phases.target_phase Feam_core.Config.default site
         (Feam_sysmodel.Site.base_env site) ~binary_path:path ())
  in
  let json = Feam_core.Report.to_json report in
  (* the rendered JSON parses back *)
  let parsed = Result.get_ok (Json.parse (Json.render json)) in
  Alcotest.(check (option string)) "site" (Some "testbed")
    (Option.bind (Json.member "site" parsed) Json.to_string_opt);
  let prediction = Option.get (Json.member "prediction" parsed) in
  Alcotest.(check (option bool)) "ready" (Some true)
    (Option.bind (Json.member "ready" prediction) Json.to_bool_opt);
  Alcotest.(check bool) "determinants present" true
    (Json.member "determinants" parsed <> None)

let test_matrix () =
  let sites, binaries, migrations =
    let params = Feam_evalharness.Params.default in
    let sites = Feam_evalharness.Sites.build_all params in
    let benchmarks = [ List.hd Feam_suites.Npb.all ] in
    let binaries = Feam_evalharness.Testset.build params sites benchmarks in
    (sites, binaries, Feam_evalharness.Migrate.run_all params sites binaries)
  in
  ignore binaries;
  let m = Feam_evalharness.Matrix.build sites migrations in
  (* every migration lands in exactly one cell *)
  let total =
    List.fold_left
      (fun acc home ->
        List.fold_left
          (fun acc target ->
            match
              Feam_evalharness.Matrix.cell m ~home:(Feam_sysmodel.Site.name home)
                ~target:(Feam_sysmodel.Site.name target)
            with
            | Some c -> acc + c.Feam_evalharness.Matrix.attempts
            | None -> acc)
          acc sites)
      0 sites
  in
  Alcotest.(check int) "cells cover migrations" (List.length migrations) total;
  Alcotest.(check bool) "table renders" true
    (String.length (Feam_util.Table.render (Feam_evalharness.Matrix.table m)) > 0)

let suite =
  ( "json",
    [
      Alcotest.test_case "render basics" `Quick test_render_basics;
      Alcotest.test_case "parse basics" `Quick test_parse_basics;
      Alcotest.test_case "parse rejects" `Quick test_parse_rejects;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      Alcotest.test_case "report json" `Quick test_report_json;
      Alcotest.test_case "matrix" `Slow test_matrix;
    ] )
