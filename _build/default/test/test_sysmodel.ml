(* Tests for the site model: distro rendering, batch scripts, the site
   record, user-environment management tools and the tool emulations. *)

open Feam_util
open Feam_sysmodel

let v = Version.of_string_exn

(* -- Distro --------------------------------------------------------------- *)

let test_distro_release_files () =
  let centos = Distro.make Distro.Centos ~version:(v "5.6") ~kernel:(v "2.6.18") in
  let path, body = Distro.release_file centos in
  Alcotest.(check string) "centos path" "/etc/redhat-release" path;
  Alcotest.(check bool) "centos body" true (Str_split.contains ~sub:"CentOS" body);
  let sles = Distro.make Distro.Sles ~version:(v "11") ~kernel:(v "2.6.32") in
  let path, body = Distro.release_file sles in
  Alcotest.(check string) "sles path" "/etc/SuSE-release" path;
  Alcotest.(check bool) "sles body" true (Str_split.contains ~sub:"SUSE" body)

let test_distro_proc_version () =
  let rhel = Distro.make Distro.Rhel ~version:(v "5.6") ~kernel:(v "2.6.18") in
  let text = Distro.proc_version rhel ~machine:Feam_elf.Types.X86_64 in
  Alcotest.(check bool) "kernel in text" true (Str_split.contains ~sub:"2.6.18" text);
  Alcotest.(check bool) "starts with Linux version" true
    (String.starts_with ~prefix:"Linux version" text)

let test_distro_kernel_triple () =
  let d = Distro.make Distro.Centos ~version:(v "5.6") ~kernel:(v "2.6.18") in
  Alcotest.(check (triple int int int)) "triple" (2, 6, 18) (Distro.kernel_triple d)

let test_lib_dirs () =
  let dirs64 = Distro.default_lib_dirs ~bits:`B64 in
  Alcotest.(check string) "lib64 first" "/lib64" (List.hd dirs64);
  let dirs32 = Distro.default_lib_dirs ~bits:`B32 in
  Alcotest.(check string) "lib first" "/lib" (List.hd dirs32)

(* -- Batch ----------------------------------------------------------------- *)

let test_batch_render () =
  let b =
    Batch.make
      ~queues:[ { Batch.queue_name = "debug"; wait_seconds = 10.0 } ]
      Batch.Pbs
  in
  let script =
    Batch.render_script b.Batch.parallel_template ~queue:(Batch.debug_queue b)
      ~launcher:"mpiexec" ~np:16 ~command:"./bt.A"
  in
  Alcotest.(check bool) "queue substituted" true (Str_split.contains ~sub:"debug" script);
  Alcotest.(check bool) "np substituted" true (Str_split.contains ~sub:"-n 16" script);
  Alcotest.(check bool) "command substituted" true (Str_split.contains ~sub:"./bt.A" script);
  Alcotest.(check bool) "no leftover placeholder" false
    (Str_split.contains ~sub:"%queue%" script)

let test_batch_queues () =
  let b =
    Batch.make
      ~queues:
        [
          { Batch.queue_name = "debug"; wait_seconds = 5.0 };
          { Batch.queue_name = "batch"; wait_seconds = 600.0 };
        ]
      Batch.Slurm
  in
  Alcotest.(check string) "debug first" "debug" (Batch.debug_queue b).Batch.queue_name;
  Alcotest.(check bool) "lookup" true (Batch.queue_by_name b "batch" <> None);
  Alcotest.(check bool) "missing" true (Batch.queue_by_name b "zzz" = None);
  Alcotest.check_raises "no queues" (Invalid_argument "Batch.make: need at least one queue")
    (fun () -> ignore (Batch.make ~queues:[] Batch.Pbs))

(* -- Site ------------------------------------------------------------------ *)

let test_site_basics () =
  let site, installs = Fixtures.small_site () in
  Alcotest.(check string) "name" "testbed" (Site.name site);
  Alcotest.(check int) "two installs" 2 (List.length (Site.stack_installs site));
  Alcotest.(check bool) "64-bit" true (Site.bits site = `B64);
  let slug = Stack_install.module_name (List.hd installs) in
  Alcotest.(check bool) "find by slug" true (Site.find_stack_install site ~slug <> None);
  Alcotest.(check bool) "missing slug" true
    (Site.find_stack_install site ~slug:"nope" = None)

let test_site_keyed_bool_stable () =
  let site, _ = Fixtures.small_site () in
  let a = Site.keyed_bool site ~p:0.5 "k" in
  Alcotest.(check bool) "stable" a (Site.keyed_bool site ~p:0.5 "k")

let test_ld_conf () =
  let site, _ = Fixtures.small_site () in
  (* fixture compilers include Intel -> its runtime dir is registered *)
  Alcotest.(check bool) "intel dir registered" true
    (List.exists
       (fun d -> Str_split.contains ~sub:"intel" d)
       (Site.ld_conf_dirs site));
  let n = List.length (Site.ld_conf_dirs site) in
  Site.add_ld_conf_dir site "/custom/lib";
  Site.add_ld_conf_dir site "/custom/lib" (* idempotent *);
  Alcotest.(check int) "added once" (n + 1) (List.length (Site.ld_conf_dirs site))

(* -- Stack_install ----------------------------------------------------------- *)

let test_stack_install_health () =
  let site, installs = Fixtures.small_site () in
  ignore site;
  let install = List.hd installs in
  Alcotest.(check bool) "functioning launches" true (Stack_install.launches_native install);
  Alcotest.(check bool) "accepts same version" true
    (Stack_install.accepts_foreign_build install ~build_version:(v "1.4") = Ok ());
  let bad =
    Stack_install.make
      ~health:(Stack_install.Misconfigured "broken")
      ~prefix:"/opt/x" (Fixtures.ompi14 Fixtures.gnu412)
  in
  Alcotest.(check bool) "misconfigured does not launch" false
    (Stack_install.launches_native bad);
  let defect =
    Stack_install.make
      ~health:
        (Stack_install.Foreign_binary_defect
           {
             Stack_install.affected_build_versions = [ v "1.3" ];
             symptom = `Abi_incompatibility;
           })
      ~prefix:"/opt/y" (Fixtures.ompi14 Fixtures.gnu412)
  in
  Alcotest.(check bool) "defect launches native" true (Stack_install.launches_native defect);
  (match Stack_install.accepts_foreign_build defect ~build_version:(v "1.3") with
  | Error (`Defect `Abi_incompatibility) -> ()
  | _ -> Alcotest.fail "expected ABI defect");
  Alcotest.(check bool) "unaffected version fine" true
    (Stack_install.accepts_foreign_build defect ~build_version:(v "1.4") = Ok ())

(* -- Modules tool ------------------------------------------------------------ *)

let test_modules_avail () =
  let site, _ = Fixtures.small_site () in
  match Modules_tool.render_avail site with
  | Some listing ->
    Alcotest.(check bool) "lists ompi" true
      (Str_split.contains ~sub:"openmpi-1.4-gnu" listing);
    Alcotest.(check bool) "lists mvapich" true
      (Str_split.contains ~sub:"mvapich2-1.7a2-intel" listing)
  | None -> Alcotest.fail "no listing"

let test_modules_softenv () =
  let site, _ = Fixtures.small_site ~modules_flavor:Site.Softenv () in
  match Modules_tool.render_avail site with
  | Some listing ->
    Alcotest.(check bool) "softenv keys" true
      (Str_split.contains ~sub:"+openmpi-1.4-gnu" listing)
  | None -> Alcotest.fail "no softenv listing"

let test_modules_none () =
  let site, _ = Fixtures.small_site ~modules_flavor:Site.No_tool () in
  Alcotest.(check bool) "no tool" true (Modules_tool.render_avail site = None)

let test_modules_load_and_current () =
  let site, installs = Fixtures.small_site () in
  let install = List.hd installs in
  let env = Modules_tool.load_stack (Site.base_env site) install in
  Alcotest.(check (list string)) "loaded" [ Stack_install.module_name install ]
    (Modules_tool.loaded_modules env);
  Alcotest.(check bool) "lib dir on path" true
    (List.mem (Stack_install.lib_dir install) (Env.ld_library_path env));
  (match Modules_tool.current_stack site env with
  | Some found ->
    Alcotest.(check string) "current matches"
      (Stack_install.module_name install)
      (Stack_install.module_name found)
  | None -> Alcotest.fail "no current stack");
  Alcotest.(check bool) "empty session has none" true
    (Modules_tool.current_stack site (Site.base_env site) = None)

let test_current_stack_path_fallback () =
  let site, installs = Fixtures.small_site () in
  let install = List.hd installs in
  (* PATH contains the stack bin dir, but no LOADEDMODULES *)
  let env = Env.prepend_path (Site.base_env site) "PATH" (Stack_install.bin_dir install) in
  match Modules_tool.current_stack site env with
  | Some found ->
    Alcotest.(check string) "found via PATH"
      (Stack_install.module_name install)
      (Stack_install.module_name found)
  | None -> Alcotest.fail "PATH fallback failed"

let suite =
  ( "sysmodel",
    [
      Alcotest.test_case "distro release files" `Quick test_distro_release_files;
      Alcotest.test_case "distro /proc/version" `Quick test_distro_proc_version;
      Alcotest.test_case "distro kernel triple" `Quick test_distro_kernel_triple;
      Alcotest.test_case "default lib dirs" `Quick test_lib_dirs;
      Alcotest.test_case "batch render" `Quick test_batch_render;
      Alcotest.test_case "batch queues" `Quick test_batch_queues;
      Alcotest.test_case "site basics" `Quick test_site_basics;
      Alcotest.test_case "site keyed bool" `Quick test_site_keyed_bool_stable;
      Alcotest.test_case "ld.so.conf dirs" `Quick test_ld_conf;
      Alcotest.test_case "stack install health" `Quick test_stack_install_health;
      Alcotest.test_case "modules avail" `Quick test_modules_avail;
      Alcotest.test_case "softenv avail" `Quick test_modules_softenv;
      Alcotest.test_case "no tool" `Quick test_modules_none;
      Alcotest.test_case "module load/current" `Quick test_modules_load_and_current;
      Alcotest.test_case "current via PATH" `Quick test_current_stack_path_fallback;
    ] )
