(* Tests for FEAM's core components below the TEC: identification scheme
   (Table I), objdump output parsing, configuration, BDC and EDC. *)

open Feam_util
open Feam_sysmodel
open Feam_core

let v = Version.of_string_exn

(* -- Mpi_ident (Table I) ---------------------------------------------------- *)

let test_ident_open_mpi () =
  match Mpi_ident.identify [ "libmpi.so.0"; "libnsl.so.1"; "libutil.so.1"; "libc.so.6" ] with
  | Some i ->
    Alcotest.(check bool) "ompi" true (i.Mpi_ident.impl = Feam_mpi.Impl.Open_mpi);
    Alcotest.(check bool) "no fortran" false i.Mpi_ident.fortran_bindings
  | None -> Alcotest.fail "not identified"

let test_ident_mvapich2 () =
  match Mpi_ident.identify [ "libmpich.so.1"; "libibverbs.so.1"; "libibumad.so.3" ] with
  | Some i -> Alcotest.(check bool) "mvapich2" true (i.Mpi_ident.impl = Feam_mpi.Impl.Mvapich2)
  | None -> Alcotest.fail "not identified"

let test_ident_mpich2 () =
  match Mpi_ident.identify [ "libmpich.so.1"; "libmpichf90.so.1"; "librt.so.1" ] with
  | Some i ->
    Alcotest.(check bool) "mpich2" true (i.Mpi_ident.impl = Feam_mpi.Impl.Mpich2);
    Alcotest.(check bool) "fortran" true i.Mpi_ident.fortran_bindings
  | None -> Alcotest.fail "not identified"

let test_ident_serial () =
  Alcotest.(check bool) "serial" true
    (Mpi_ident.identify [ "libc.so.6"; "libm.so.6" ] = None)

let test_ident_evidence () =
  match Mpi_ident.identify [ "libmpi.so.0"; "libnsl.so.1" ] with
  | Some i ->
    Alcotest.(check bool) "evidence includes libnsl" true
      (List.mem "libnsl.so" i.Mpi_ident.evidence)
  | None -> Alcotest.fail "not identified"

(* -- Objdump_parse ------------------------------------------------------------ *)

let sample_objdump =
  "/home/user/bt.A:     file format elf64-x86-64\n\n\
   Dynamic Section:\n\
  \  NEEDED               libmpi.so.0\n\
  \  NEEDED               libc.so.6\n\
  \  SONAME               libexample.so.2\n\
  \  RPATH                /opt/x/lib\n\
  \  STRTAB               0x400000\n\n\
   Version References:\n\
  \  required from libc.so.6:\n\
  \    0x09691a75 0x00 02 GLIBC_2.2.5\n\
  \    0x09691a76 0x00 03 GLIBC_2.5\n"

let test_parse_objdump () =
  let info = Result.get_ok (Objdump_parse.parse_objdump_p sample_objdump) in
  Alcotest.(check string) "format" "elf64-x86-64" info.Objdump_parse.file_format;
  Alcotest.(check (list string)) "needed" [ "libmpi.so.0"; "libc.so.6" ]
    info.Objdump_parse.needed;
  Alcotest.(check (option string)) "soname" (Some "libexample.so.2")
    info.Objdump_parse.soname;
  Alcotest.(check (option string)) "rpath" (Some "/opt/x/lib") info.Objdump_parse.rpath;
  Alcotest.(check (list string)) "versions" [ "GLIBC_2.2.5"; "GLIBC_2.5" ]
    (List.assoc "libc.so.6" info.Objdump_parse.verneeds)

let test_parse_objdump_rejects () =
  Alcotest.(check bool) "garbage" true
    (Result.is_error (Objdump_parse.parse_objdump_p "garbage with no format line"))

let test_machine_of_format () =
  Alcotest.(check bool) "x86-64" true
    (Objdump_parse.machine_of_format "elf64-x86-64"
    = Some (Feam_elf.Types.X86_64, Feam_elf.Types.C64));
  Alcotest.(check bool) "unknown" true (Objdump_parse.machine_of_format "elf64-vax" = None)

let test_parse_readelf () =
  let text =
    "\nString dump of section '.comment':\n\
    \  [     0]  GCC: (GNU) 4.1.2 (CentOS 5.6)\n\
    \  [    1f]  GNU ld version 2.17\n"
  in
  let comments = Objdump_parse.parse_readelf_comment text in
  Alcotest.(check int) "two strings" 2 (List.length comments);
  let prov = Objdump_parse.provenance_of_comments comments in
  Alcotest.(check (option string)) "compiler" (Some "GCC: (GNU) 4.1.2 (CentOS 5.6)")
    prov.Objdump_parse.compiler_banner;
  Alcotest.(check (option string)) "os" (Some "CentOS") prov.Objdump_parse.build_os

(* -- Config -------------------------------------------------------------------- *)

let test_config_parse () =
  let body =
    "# comment\n\
     phase = both\n\
     binary = /home/user/bt.A\n\
     serial_queue = debug\n\
     probe_np = 8\n\
     launcher.mvapich2 = mpirun_rsh\n"
  in
  let config = Result.get_ok (Config.of_file_body body) in
  Alcotest.(check bool) "phase" true (config.Config.phase = Config.Both_phases);
  Alcotest.(check (option string)) "binary" (Some "/home/user/bt.A")
    config.Config.binary_path;
  Alcotest.(check int) "np" 8 config.Config.probe_np;
  Alcotest.(check string) "launcher override" "mpirun_rsh"
    (Config.launcher config Feam_mpi.Impl.Mvapich2);
  Alcotest.(check string) "default launcher" "mpiexec"
    (Config.launcher config Feam_mpi.Impl.Open_mpi)

let test_config_errors () =
  match Config.of_file_body "phase = sideways\nbogus_key = 1\nnot a line\n" with
  | Error errors -> Alcotest.(check int) "three errors" 3 (List.length errors)
  | Ok _ -> Alcotest.fail "expected errors"

(* -- BDC ------------------------------------------------------------------------ *)

let fortran_fixture () =
  let site, installs = Fixtures.small_site () in
  let path, install =
    Fixtures.compiled_binary ~program:Fixtures.fortran_program site installs
  in
  (site, installs, path, install)

let test_bdc_describe () =
  let site, _, path, _ = fortran_fixture () in
  let d = Fixtures.run_exn (Bdc.describe site (Site.base_env site) ~path) in
  Alcotest.(check string) "format" "elf64-x86-64" d.Description.file_format;
  Alcotest.(check bool) "identified ompi" true
    (match d.Description.mpi with
    | Some i -> i.Mpi_ident.impl = Feam_mpi.Impl.Open_mpi && i.Mpi_ident.fortran_bindings
    | None -> false);
  Alcotest.(check bool) "required glibc known" true (d.Description.required_glibc <> None);
  Alcotest.(check bool) "gfortran needed" true
    (List.mem "libgfortran.so.1" d.Description.needed);
  Alcotest.(check bool) "not a library" false (Description.is_shared_library d)

let test_bdc_describe_library () =
  let site, _ = Fixtures.small_site () in
  let d =
    Fixtures.run_exn
      (Bdc.describe site (Site.base_env site) ~path:"/usr/lib64/libgfortran.so.1")
  in
  Alcotest.(check bool) "is library" true (Description.is_shared_library d);
  Alcotest.(check bool) "embedded version" true
    (Description.library_version d = Some [ 1 ])

let test_bdc_fallback_without_objdump () =
  let site, installs =
    Fixtures.small_site ~tools:(Tools.with_objdump false Tools.full) ()
  in
  let path, install = Fixtures.compiled_binary site installs in
  (* with a session env ldd can resolve, so the fallback fills the fields *)
  let env = Fixtures.session_env site install in
  let d = Fixtures.run_exn (Bdc.describe site env ~path) in
  Alcotest.(check string) "format via file(1)" "elf64-x86-64" d.Description.file_format;
  Alcotest.(check bool) "needed via ldd" true (List.mem "libmpi.so.0" d.Description.needed)

let test_bdc_gather_source () =
  let site, _, path, install = fortran_fixture () in
  let env = Fixtures.session_env site install in
  let gathered = Fixtures.run_exn (Bdc.gather_source site env ~path) in
  Alcotest.(check (list string)) "nothing unlocatable" [] gathered.Bdc.unlocatable;
  let names = List.map (fun c -> c.Bdc.copy_request) gathered.Bdc.copies in
  Alcotest.(check bool) "gfortran copied" true (List.mem "libgfortran.so.1" names);
  Alcotest.(check bool) "libmpi copied" true (List.mem "libmpi.so.0" names);
  (* the C library is never copied (paper §V.A) *)
  Alcotest.(check bool) "no libc copy" false (List.mem "libc.so.6" names);
  (* copies carry their own descriptions *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Bdc.copy_request ^ " described as library")
        true
        (Description.is_shared_library c.Bdc.copy_description))
    gathered.Bdc.copies

let test_bdc_gather_without_ldd () =
  let site, installs =
    Fixtures.small_site ~tools:(Tools.with_ldd false Tools.full) ()
  in
  let path, install = Fixtures.compiled_binary site installs in
  let env = Fixtures.session_env site install in
  let gathered = Fixtures.run_exn (Bdc.gather_source site env ~path) in
  let names = List.map (fun c -> c.Bdc.copy_request) gathered.Bdc.copies in
  (* locate/find fallback still finds the direct dependencies *)
  Alcotest.(check bool) "libmpi via search" true (List.mem "libmpi.so.0" names)

(* -- EDC ------------------------------------------------------------------------ *)

let test_edc_discover () =
  let site, installs = Fixtures.small_site ~glibc:"2.5" () in
  let install = List.hd installs in
  let env = Fixtures.session_env site install in
  let d = Edc.discover ~env_type:`Target site env in
  Alcotest.(check bool) "isa" true (d.Discovery.machine = Some Feam_elf.Types.X86_64);
  Alcotest.(check bool) "glibc" true (d.Discovery.glibc = Some (v "2.5"));
  Alcotest.(check bool) "os" true
    (match d.Discovery.os with Some os -> Str_split.contains ~sub:"CentOS" os | None -> false);
  Alcotest.(check int) "two stacks" 2 (List.length d.Discovery.stacks);
  Alcotest.(check bool) "current stack" true
    (match d.Discovery.current_stack with
    | Some c -> c.Discovery.slug = Stack_install.module_name install
    | None -> false)

let test_edc_softenv () =
  let site, _ = Fixtures.small_site ~modules_flavor:Site.Softenv () in
  let d = Edc.discover ~env_type:`Target site (Site.base_env site) in
  Alcotest.(check bool) "stacks via softenv" true
    (List.for_all (fun s -> s.Discovery.discovered_via = Discovery.Softenv) d.Discovery.stacks
    && d.Discovery.stacks <> [])

let test_edc_path_search_fallback () =
  let site, _ = Fixtures.small_site ~modules_flavor:Site.No_tool () in
  let d = Edc.discover ~env_type:`Target site (Site.base_env site) in
  Alcotest.(check bool) "found by path search" true
    (List.exists
       (fun s -> s.Discovery.discovered_via = Discovery.Path_search)
       d.Discovery.stacks)

let test_edc_stack_slug_parse () =
  match Discovery.parse_stack_slug ~via:Discovery.Modules "openmpi-1.4.3-intel" with
  | Some s ->
    Alcotest.(check bool) "impl" true (s.Discovery.impl = Feam_mpi.Impl.Open_mpi);
    Alcotest.(check bool) "version" true (s.Discovery.impl_version = Some (v "1.4.3"));
    Alcotest.(check bool) "family" true
      (s.Discovery.compiler_family = Some Feam_mpi.Compiler.Intel)
  | None -> Alcotest.fail "slug not parsed"

let test_edc_slug_rejects_non_mpi () =
  Alcotest.(check bool) "compiler module ignored" true
    (Discovery.parse_stack_slug ~via:Discovery.Modules "intel-11.1" = None)

let test_edc_missing_libraries () =
  let site, installs = Fixtures.small_site () in
  let path, install = Fixtures.compiled_binary site installs in
  let d =
    Fixtures.run_exn (Bdc.describe site (Site.base_env site) ~path)
  in
  (* without the stack loaded, MPI libraries are missing *)
  let missing =
    Edc.missing_libraries site (Site.base_env site) ~binary_path:path
      ~needed:d.Description.needed
  in
  Alcotest.(check bool) "libmpi missing" true (List.mem "libmpi.so.0" missing);
  (* with the stack loaded, nothing is missing *)
  let env = Fixtures.session_env site install in
  Alcotest.(check (list string)) "none missing" []
    (Edc.missing_libraries site env ~binary_path:path ~needed:d.Description.needed)

let test_edc_glibc_banner_parse () =
  Alcotest.(check bool) "parse banner" true
    (Edc.parse_glibc_banner
       "GNU C Library stable release version 2.3.4, by Roland McGrath et al.\n"
    = Some (v "2.3.4"))

let suite =
  ( "core-components",
    [
      Alcotest.test_case "ident Open MPI" `Quick test_ident_open_mpi;
      Alcotest.test_case "ident MVAPICH2" `Quick test_ident_mvapich2;
      Alcotest.test_case "ident MPICH2" `Quick test_ident_mpich2;
      Alcotest.test_case "ident serial" `Quick test_ident_serial;
      Alcotest.test_case "ident evidence" `Quick test_ident_evidence;
      Alcotest.test_case "parse objdump" `Quick test_parse_objdump;
      Alcotest.test_case "parse objdump rejects" `Quick test_parse_objdump_rejects;
      Alcotest.test_case "machine of format" `Quick test_machine_of_format;
      Alcotest.test_case "parse readelf" `Quick test_parse_readelf;
      Alcotest.test_case "config parse" `Quick test_config_parse;
      Alcotest.test_case "config errors" `Quick test_config_errors;
      Alcotest.test_case "bdc describe" `Quick test_bdc_describe;
      Alcotest.test_case "bdc describe library" `Quick test_bdc_describe_library;
      Alcotest.test_case "bdc fallback without objdump" `Quick test_bdc_fallback_without_objdump;
      Alcotest.test_case "bdc gather source" `Quick test_bdc_gather_source;
      Alcotest.test_case "bdc gather without ldd" `Quick test_bdc_gather_without_ldd;
      Alcotest.test_case "edc discover" `Quick test_edc_discover;
      Alcotest.test_case "edc softenv" `Quick test_edc_softenv;
      Alcotest.test_case "edc path-search fallback" `Quick test_edc_path_search_fallback;
      Alcotest.test_case "edc slug parse" `Quick test_edc_stack_slug_parse;
      Alcotest.test_case "edc slug rejects non-MPI" `Quick test_edc_slug_rejects_non_mpi;
      Alcotest.test_case "edc missing libraries" `Quick test_edc_missing_libraries;
      Alcotest.test_case "edc glibc banner" `Quick test_edc_glibc_banner_parse;
    ] )
