(* Evaluation-harness tests: the Table II sites, the corpus, and — run
   once on the full pipeline — the paper's shape claims (Tables III/IV).
   These are the slowest tests in the suite. *)

open Feam_util
open Feam_sysmodel
open Feam_evalharness

let v = Version.of_string_exn

let params = Params.default

(* -- Sites (Table II) --------------------------------------------------------- *)

let test_five_sites () =
  let sites = Sites.build_all params in
  Alcotest.(check (list string)) "names"
    [ "ranger"; "forge"; "blacklight"; "india"; "fir" ]
    (List.map Site.name sites)

let test_site_characteristics () =
  let sites = Sites.build_all params in
  let glibc name = Site.glibc (Sites.find_by_name sites name) in
  Alcotest.check Fixtures.version "ranger" (v "2.3.4") (glibc "ranger");
  Alcotest.check Fixtures.version "forge" (v "2.12") (glibc "forge");
  Alcotest.check Fixtures.version "blacklight" (v "2.11.1") (glibc "blacklight");
  Alcotest.check Fixtures.version "india" (v "2.5") (glibc "india");
  Alcotest.check Fixtures.version "fir" (v "2.5") (glibc "fir");
  let stacks name =
    List.length (Site.stack_installs (Sites.find_by_name sites name))
  in
  Alcotest.(check int) "ranger 6 stacks" 6 (stacks "ranger");
  Alcotest.(check int) "forge 3 stacks" 3 (stacks "forge");
  Alcotest.(check int) "blacklight 2 stacks" 2 (stacks "blacklight");
  Alcotest.(check int) "india 6 stacks" 6 (stacks "india");
  Alcotest.(check int) "fir 9 stacks" 9 (stacks "fir")

let test_sites_deterministic () =
  let a = Sites.build_all params and b = Sites.build_all params in
  List.iter2
    (fun sa sb ->
      let health i =
        match Stack_install.health i with
        | Stack_install.Functioning -> "f"
        | Stack_install.Misconfigured _ -> "m"
        | Stack_install.Foreign_binary_defect _ -> "d"
      in
      Alcotest.(check (list string))
        (Site.name sa ^ " healths")
        (List.map health (Site.stack_installs sa))
        (List.map health (Site.stack_installs sb)))
    a b

(* -- Corpus (§VI.A) ------------------------------------------------------------- *)

let test_benchmark_suites () =
  Alcotest.(check int) "seven NPB" 7 (List.length Feam_suites.Npb.all);
  Alcotest.(check int) "seven SPEC" 7 (List.length Feam_suites.Specmpi.all);
  (* NPB: one C kernel (IS), six Fortran programs *)
  let fortran =
    List.filter
      (fun b -> b.Feam_suites.Benchmark.language = Feam_mpi.Stack.Fortran)
      Feam_suites.Npb.all
  in
  Alcotest.(check int) "NPB fortran count" 6 (List.length fortran)

(* -- Full pipeline (shared by the remaining tests) -------------------------------- *)

let pipeline =
  lazy
    (let sites = Sites.build_all params in
     let benchmarks = Feam_suites.Npb.all @ Feam_suites.Specmpi.all in
     let binaries = Testset.build params sites benchmarks in
     let migrations = Migrate.run_all params sites binaries in
     (sites, binaries, migrations))

let test_corpus_size () =
  let _, binaries, _ = Lazy.force pipeline in
  let nas, spec = Testset.count_by_suite binaries in
  (* paper: 110 NPB, 147 SPEC — the corpus must be in that neighbourhood *)
  Alcotest.(check bool) (Printf.sprintf "NPB count %d" nas) true (nas >= 95 && nas <= 125);
  Alcotest.(check bool) (Printf.sprintf "SPEC count %d" spec) true
    (spec >= 130 && spec <= 165)

let test_identification_100_percent () =
  let _, binaries, _ = Lazy.force pipeline in
  List.iter
    (fun (b : Testset.binary) ->
      let spec = Result.get_ok (Feam_elf.Reader.spec_of_bytes b.Testset.bytes) in
      match Feam_core.Mpi_ident.identify spec.Feam_elf.Spec.needed with
      | Some ident ->
        Alcotest.(check bool) b.Testset.id true
          (Feam_mpi.Impl.equal ident.Feam_core.Mpi_ident.impl
             (Feam_mpi.Stack.impl (Stack_install.stack b.Testset.install)))
      | None -> Alcotest.failf "%s not identified" b.Testset.id)
    binaries

let test_migrations_only_matching_impl () =
  let sites, _, migrations = Lazy.force pipeline in
  List.iter
    (fun (m : Migrate.migration) ->
      let target = Sites.find_by_name sites m.Migrate.target_name in
      Alcotest.(check bool) "matching impl exists" true
        (Migrate.has_matching_impl m.Migrate.binary target);
      Alcotest.(check bool) "not home" true
        (m.Migrate.target_name <> Site.name m.Migrate.binary.Testset.home))
    migrations

(* The paper's headline shape claims. *)

let accuracy mode suite migrations =
  Accuracy.suite_accuracy mode suite migrations

let test_accuracy_above_90 () =
  let _, _, migrations = Lazy.force pipeline in
  List.iter
    (fun (mode, suite, label) ->
      let a = accuracy mode suite migrations in
      Alcotest.(check bool) (Printf.sprintf "%s %.3f > 0.88" label a) true (a > 0.88))
    [
      (Accuracy.Basic, Feam_suites.Benchmark.Nas, "basic NAS");
      (Accuracy.Basic, Feam_suites.Benchmark.Spec_mpi2007, "basic SPEC");
      (Accuracy.Extended, Feam_suites.Benchmark.Nas, "extended NAS");
      (Accuracy.Extended, Feam_suites.Benchmark.Spec_mpi2007, "extended SPEC");
    ]

let test_extended_not_worse_than_basic () =
  let _, _, migrations = Lazy.force pipeline in
  List.iter
    (fun suite ->
      let b = accuracy Accuracy.Basic suite migrations in
      let e = accuracy Accuracy.Extended suite migrations in
      Alcotest.(check bool) "extended >= basic - eps" true (e >= b -. 0.02))
    [ Feam_suites.Benchmark.Nas; Feam_suites.Benchmark.Spec_mpi2007 ]

let test_resolution_impact_shape () =
  let _, _, migrations = Lazy.force pipeline in
  List.iter
    (fun suite ->
      let r = Resolution_impact.of_suite suite migrations in
      let before = Resolution_impact.rate_before r in
      let after = Resolution_impact.rate_after r in
      (* about half execute before resolution *)
      Alcotest.(check bool) (Printf.sprintf "before %.2f ~ half" before) true
        (before > 0.35 && before < 0.7);
      (* resolution strictly helps, by roughly a third *)
      Alcotest.(check bool) "after > before" true (after > before);
      let inc = Resolution_impact.relative_increase r in
      Alcotest.(check bool) (Printf.sprintf "increase %.2f" inc) true
        (inc > 0.2 && inc < 0.6))
    [ Feam_suites.Benchmark.Nas; Feam_suites.Benchmark.Spec_mpi2007 ]

let test_missing_libs_dominate_failures () =
  let _, _, migrations = Lazy.force pipeline in
  let stats = Resolution_impact.missing_lib_breakdown migrations in
  (* "Of the failing jobs, more than half were missing shared libraries" *)
  Alcotest.(check bool) "more than half" true
    (2 * stats.Resolution_impact.missing_lib_failures
    > stats.Resolution_impact.failures_before);
  Alcotest.(check bool) "some fixed" true (stats.Resolution_impact.missing_lib_fixed > 0)

let test_confusion_totals () =
  let _, _, migrations = Lazy.force pipeline in
  let c = Accuracy.confusion_of Accuracy.Basic migrations in
  Alcotest.(check int) "totals add up" (List.length migrations) (Accuracy.total c);
  Alcotest.(check bool) "correct <= total" true (Accuracy.correct c <= Accuracy.total c)

let test_timing_under_five_minutes () =
  let sites, binaries, _ = Lazy.force pipeline in
  let timings = Timing.sample_timings sites binaries in
  Alcotest.(check bool) "some timings" true (timings <> []);
  Alcotest.(check bool)
    (Printf.sprintf "max %.0fs under 5 minutes" (Timing.max_seconds timings))
    true
    (Timing.max_seconds timings < 300.0)

let test_bundle_sizes_realistic () =
  let sites, binaries, _ = Lazy.force pipeline in
  (* paper: per-site bundles averaged ~45 MB *)
  let reports = Timing.bundle_report sites binaries in
  let sizes = List.map (fun (_, b) -> Timing.mb b) reports in
  let avg = List.fold_left ( +. ) 0.0 sizes /. float_of_int (List.length sizes) in
  Alcotest.(check bool) (Printf.sprintf "avg %.1f MB in [20,80]" avg) true
    (avg > 20.0 && avg < 80.0)

let test_determinism_of_migrations () =
  (* the whole experiment is reproducible from the seed *)
  let sites = Sites.build_all params in
  let benchmarks = [ List.hd Feam_suites.Npb.all ] in
  let binaries = Testset.build params sites benchmarks in
  let m1 = Migrate.run_all params sites binaries in
  let sites2 = Sites.build_all params in
  let binaries2 = Testset.build params sites2 benchmarks in
  let m2 = Migrate.run_all params sites2 binaries2 in
  Alcotest.(check int) "same count" (List.length m1) (List.length m2);
  List.iter2
    (fun (a : Migrate.migration) (b : Migrate.migration) ->
      Alcotest.(check bool) "same basic" a.Migrate.basic_ready b.Migrate.basic_ready;
      Alcotest.(check bool) "same extended" a.Migrate.extended_ready b.Migrate.extended_ready;
      Alcotest.(check string) "same outcome"
        (Feam_dynlinker.Exec.outcome_to_string a.Migrate.actual_after)
        (Feam_dynlinker.Exec.outcome_to_string b.Migrate.actual_after))
    m1 m2

let suite =
  ( "evaluation",
    [
      Alcotest.test_case "five sites" `Quick test_five_sites;
      Alcotest.test_case "Table II characteristics" `Quick test_site_characteristics;
      Alcotest.test_case "sites deterministic" `Quick test_sites_deterministic;
      Alcotest.test_case "benchmark suites" `Quick test_benchmark_suites;
      Alcotest.test_case "corpus size" `Slow test_corpus_size;
      Alcotest.test_case "identification 100%" `Slow test_identification_100_percent;
      Alcotest.test_case "migrations matching impl" `Slow test_migrations_only_matching_impl;
      Alcotest.test_case "accuracy > 90%" `Slow test_accuracy_above_90;
      Alcotest.test_case "extended >= basic" `Slow test_extended_not_worse_than_basic;
      Alcotest.test_case "resolution impact shape" `Slow test_resolution_impact_shape;
      Alcotest.test_case "missing libs dominate" `Slow test_missing_libs_dominate_failures;
      Alcotest.test_case "confusion totals" `Slow test_confusion_totals;
      Alcotest.test_case "timing under 5 minutes" `Slow test_timing_under_five_minutes;
      Alcotest.test_case "bundle sizes" `Slow test_bundle_sizes_realistic;
      Alcotest.test_case "experiment determinism" `Slow test_determinism_of_migrations;
    ] )
