(* The stale-ldconfig channel: an administrator registered a runtime
   directory in ld.so.conf but forgot to run ldconfig.  The library is on
   disk yet invisible to the loader; execution fails with a missing
   library, FEAM (whose checks read the loader's truth) predicts exactly
   that, and the resolution model repairs it with a bundle copy. *)

open Feam_sysmodel
open Feam_core

let config = Config.default

(* Home and target both use Intel stacks; the target's Intel runtime
   directory is registered but uncached. *)
let world () =
  let make name =
    let site =
      Site.make ~compilers:[ Fixtures.intel11 ] ~seed:4
        ~fault_model:Fault_model.none ~machine:Feam_elf.Types.X86_64
        ~distro:
          (Distro.make Distro.Centos
             ~version:(Feam_util.Version.of_string_exn "5.6")
             ~kernel:(Feam_util.Version.of_string_exn "2.6.18"))
        ~glibc:(Feam_util.Version.of_string_exn "2.5")
        ~interconnect:Feam_mpi.Interconnect.Infiniband
        ~batch:Fixtures.default_batch name
    in
    let installs =
      Feam_toolchain.Provision.provision_site site
        ~stacks:[ (Fixtures.ompi14 Fixtures.intel11, Stack_install.Functioning) ]
    in
    (site, List.hd installs)
  in
  let home, home_install = make "cachehome" in
  let target, target_install = make "cachetarget" in
  Site.set_ld_cache_current target false;
  (home, home_install, target, target_install)

let compile_at home home_install =
  Result.get_ok
    (Feam_toolchain.Compile.compile_mpi_to home home_install
       (Feam_toolchain.Compile.program "intel_app")
       ~dir:"/home/user/bin")

let test_library_on_disk_but_unloadable () =
  let _, _, target, target_install = world () in
  (* the Intel runtime exists on disk... *)
  Alcotest.(check bool) "libimf on disk" true
    (Vfs.exists (Site.vfs target) "/opt/intel-11.1/lib/libimf.so");
  Alcotest.(check bool) "dir registered" true
    (List.mem "/opt/intel-11.1/lib" (Site.ld_conf_dirs target));
  (* ...but the loader cannot see it *)
  Alcotest.(check (list string)) "cache empty" [] (Site.ld_cache_dirs target);
  ignore target_install

let test_execution_fails_missing () =
  let home, home_install, target, target_install = world () in
  let path = compile_at home home_install in
  let bytes =
    match Vfs.find (Site.vfs home) path with
    | Some { Vfs.kind = Vfs.Elf b; _ } -> b
    | _ -> assert false
  in
  Vfs.add (Site.vfs target) "/home/user/intel_app" (Vfs.Elf bytes);
  let env = Fixtures.session_env target target_install in
  match
    Feam_dynlinker.Exec.run ~params:Fault_model.none target env
      ~binary_path:"/home/user/intel_app" ~mode:(Feam_dynlinker.Exec.Mpi 4)
  with
  | Feam_dynlinker.Exec.Failure (Feam_dynlinker.Exec.Missing_libraries libs) ->
    Alcotest.(check bool) "intel runtime missing" true (List.mem "libimf.so" libs)
  | o -> Alcotest.failf "unexpected: %s" (Feam_dynlinker.Exec.outcome_to_string o)

let test_feam_detects_and_repairs () =
  let home, home_install, target, _ = world () in
  let path = compile_at home home_install in
  let env = Fixtures.session_env home home_install in
  let bundle =
    Fixtures.run_exn (Phases.source_phase config home env ~binary_path:path)
  in
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let report =
    Fixtures.run_exn
      (Phases.target_phase config target (Site.base_env target) ~bundle ())
  in
  let p = Report.prediction report in
  Alcotest.(check bool) "predicted ready via resolution" true (Predict.is_ready p);
  match p.Predict.verdict with
  | Predict.Ready plan ->
    (* the Intel runtime was staged from the bundle *)
    Alcotest.(check bool) "libimf staged" true
      (List.mem_assoc "libimf.so" plan.Predict.staged_copies);
    (* and the run under FEAM's configuration succeeds *)
    let install = List.hd (Site.stack_installs target) in
    let env = Fixtures.session_env target install in
    let env =
      List.fold_left
        (fun e d -> Env.prepend_path e "LD_LIBRARY_PATH" d)
        env plan.Predict.ld_library_path_additions
    in
    (match
       Feam_dynlinker.Exec.run ~params:Fault_model.none target env
         ~binary_path:"/tmp/feam/binary/intel_app" ~mode:(Feam_dynlinker.Exec.Mpi 4)
     with
    | Feam_dynlinker.Exec.Success -> ()
    | o -> Alcotest.failf "unexpected: %s" (Feam_dynlinker.Exec.outcome_to_string o))
  | Predict.Not_ready reasons ->
    Alcotest.failf "not ready: %s" (String.concat "; " reasons)

let test_fresh_cache_needs_no_copies () =
  (* control: with a current cache, nothing is missing and nothing is
     staged *)
  let home, home_install, target, _ = world () in
  Site.set_ld_cache_current target true;
  let path = compile_at home home_install in
  let env = Fixtures.session_env home home_install in
  let bundle =
    Fixtures.run_exn (Phases.source_phase config home env ~binary_path:path)
  in
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let report =
    Fixtures.run_exn
      (Phases.target_phase config target (Site.base_env target) ~bundle ())
  in
  match (Report.prediction report).Predict.verdict with
  | Predict.Ready plan ->
    Alcotest.(check (list string)) "nothing staged" []
      (List.map fst plan.Predict.staged_copies)
  | Predict.Not_ready reasons ->
    Alcotest.failf "not ready: %s" (String.concat "; " reasons)

let suite =
  ( "stale-cache",
    [
      Alcotest.test_case "on disk but unloadable" `Quick
        test_library_on_disk_but_unloadable;
      Alcotest.test_case "execution fails missing" `Quick test_execution_fails_missing;
      Alcotest.test_case "FEAM detects and repairs" `Quick test_feam_detects_and_repairs;
      Alcotest.test_case "fresh cache control" `Quick test_fresh_cache_needs_no_copies;
    ] )
