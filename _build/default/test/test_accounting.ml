(* Cost-accounting tests: every simulated operation charges the clock it
   is given, retries multiply the charge, and the paper-facing tables
   render. *)

open Feam_sysmodel
open Feam_util

let test_exec_charges_per_attempt () =
  let site, installs = Fixtures.small_site ~name:"chargesite" () in
  let install = List.hd installs in
  let path, _ = Fixtures.compiled_binary site installs in
  let env = Fixtures.session_env site install in
  let queue_wait = (Batch.debug_queue (Site.batch site)).Batch.wait_seconds in
  (* one successful attempt charges one queue wait + one MPI run *)
  let clock = Sim_clock.create () in
  ignore
    (Feam_dynlinker.Exec.run ~clock ~params:Fault_model.none site env
       ~binary_path:path ~mode:(Feam_dynlinker.Exec.Mpi 4));
  Alcotest.(check (float 1e-6)) "one attempt"
    (queue_wait +. Cost.probe_run_mpi)
    (Sim_clock.elapsed clock);
  (* a sticky system error exhausts all five attempts *)
  let clock = Sim_clock.create () in
  ignore
    (Feam_dynlinker.Exec.run ~clock
       ~params:{ Fault_model.none with Fault_model.p_sticky = 1.0 }
       site env ~binary_path:path ~mode:(Feam_dynlinker.Exec.Mpi 4));
  Alcotest.(check (float 1e-6)) "five attempts"
    (5.0 *. (queue_wait +. Cost.probe_run_mpi))
    (Sim_clock.elapsed clock)

let test_source_phase_charges_copies () =
  (* the source phase charges for tool calls, probe compiles and the
     per-megabyte library copies *)
  let site, installs = Fixtures.small_site ~name:"chargesrc" () in
  let path, install =
    Fixtures.compiled_binary ~program:Fixtures.fortran_program site installs
  in
  let env = Fixtures.session_env site install in
  let clock = Sim_clock.create () in
  let bundle =
    Fixtures.run_exn
      (Feam_core.Phases.source_phase ~clock Feam_core.Config.default site env
         ~binary_path:path)
  in
  let elapsed = Sim_clock.elapsed clock in
  let copy_cost =
    Cost.copy_per_mb
    *. (float_of_int (Feam_core.Bundle.library_bytes bundle) /. 1048576.0)
  in
  Alcotest.(check bool) "charged at least the copies" true (elapsed >= copy_cost);
  Alcotest.(check bool) "under five minutes" true (elapsed < 300.0)

let test_ldd_transcript_golden () =
  let site, installs = Fixtures.small_site ~name:"lddgold" () in
  let path, install = Fixtures.compiled_binary site installs in
  let env = Fixtures.session_env site install in
  let r = Result.get_ok (Feam_dynlinker.Ldd.run site env path) in
  let text = Feam_dynlinker.Ldd.render path r in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) fragment true (Str_split.contains ~sub:fragment text))
    [
      "libmpi.so.0 => /opt/openmpi-1.4-gnu/lib/libmpi.so.0";
      "libc.so.6 => /lib64/libc.so.6";
      (* transitive dependency of libmpi, not a direct NEEDED *)
      "libopen-pal.so.0 => /opt/openmpi-1.4-gnu/lib/libopen-pal.so.0";
      "Version information:";
      "libc.so.6 (GLIBC_2.2.5) => /lib64/libc.so.6";
    ]

let test_paper_tables_render () =
  let params = Feam_evalharness.Params.default in
  let sites = Feam_evalharness.Sites.build_all params in
  let benchmarks = [ List.hd Feam_suites.Npb.all ] in
  let binaries = Feam_evalharness.Testset.build params sites benchmarks in
  let migrations = Feam_evalharness.Migrate.run_all params sites binaries in
  let t1, note = Feam_evalharness.Tables.table1 binaries in
  Alcotest.(check bool) "table1" true (String.length (Table.render t1) > 0);
  Alcotest.(check bool) "table1 note 100%" true
    (Str_split.contains ~sub:"100%" note);
  List.iter
    (fun t -> Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0))
    [
      Feam_evalharness.Tables.table2 sites;
      Feam_evalharness.Tables.table3 migrations;
      Feam_evalharness.Tables.table4 migrations;
      Feam_evalharness.Tables.accuracy_by_site migrations;
      Feam_evalharness.Tables.failure_breakdown migrations;
      Feam_evalharness.Corpus_stats.table sites binaries;
    ];
  (* Table II carries the paper's published site facts *)
  let t2 = Table.render (Feam_evalharness.Tables.table2 sites) in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) fragment true (Str_split.contains ~sub:fragment t2))
    [ "ranger"; "2.3.4"; "SUSE Linux Enterprise Server 11"; "mvapich2-1.7a-pgi" ]

let suite =
  ( "accounting",
    [
      Alcotest.test_case "exec charges per attempt" `Quick test_exec_charges_per_attempt;
      Alcotest.test_case "source phase charges copies" `Quick
        test_source_phase_charges_copies;
      Alcotest.test_case "ldd transcript golden" `Quick test_ldd_transcript_golden;
      Alcotest.test_case "paper tables render" `Slow test_paper_tables_render;
    ] )
