(* Tests for the remaining Feam_util modules: Prng, Table, Sim_clock. *)

open Feam_util

(* -- Prng ---------------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.int a 1000000 = Prng.int b 1000000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_copy () =
  let a = Prng.create 9 in
  ignore (Prng.int a 10);
  let b = Prng.copy a in
  Alcotest.(check int) "copy continues identically" (Prng.int a 1000) (Prng.int b 1000)

let test_keyed_bool_deterministic () =
  let x = Prng.keyed_bool ~seed:5 ~p:0.5 "some/key" in
  for _ = 1 to 10 do
    Alcotest.(check bool) "stable" x (Prng.keyed_bool ~seed:5 ~p:0.5 "some/key")
  done

let test_keyed_bool_rate () =
  let hits = ref 0 in
  let n = 5000 in
  for i = 1 to n do
    if Prng.keyed_bool ~seed:3 ~p:0.2 (string_of_int i) then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f near 0.2" rate)
    true
    (rate > 0.17 && rate < 0.23)

let test_prng_bounds () =
  let g = Prng.create 11 in
  for _ = 1 to 1000 do
    let x = Prng.int g 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7);
    let f = Prng.float g in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_prng_invalid () =
  let g = Prng.create 1 in
  Alcotest.check_raises "bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0));
  Alcotest.check_raises "probability"
    (Invalid_argument "Prng.bool: probability out of range") (fun () ->
      ignore (Prng.bool g 1.5))

let test_pick () =
  let g = Prng.create 4 in
  for _ = 1 to 50 do
    let x = Prng.pick g [ 1; 2; 3 ] in
    Alcotest.(check bool) "member" true (List.mem x [ 1; 2; 3 ])
  done

(* -- Table --------------------------------------------------------------- *)

let test_table_render () =
  let t =
    Table.make ~title:"T" ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let out = Table.render t in
  Alcotest.(check bool) "has title" true (String.length out > 0 && out.[0] = 'T');
  Alcotest.(check bool) "contains cell" true
    (Feam_sysmodel.Str_split.contains ~sub:"333" out);
  (* all lines of the body share a width *)
  let widths =
    String.split_on_char '\n' out
    |> List.filter (fun l -> String.length l > 0 && l.[0] = '+')
    |> List.map String.length
  in
  Alcotest.(check bool) "rules align" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_validation () =
  Alcotest.check_raises "row width"
    (Invalid_argument "Table.make: row width does not match header") (fun () ->
      ignore (Table.make ~header:[ "a" ] [ [ "1"; "2" ] ]))

let test_percent () =
  Alcotest.(check string) "round" "58%" (Table.percent 58 100);
  Alcotest.(check string) "n/a" "n/a" (Table.percent 3 0);
  Alcotest.(check string) "decimals" "33.3%" (Table.percent ~decimals:1 1 3)

(* -- Sim_clock ------------------------------------------------------------ *)

let test_clock () =
  let c = Sim_clock.create () in
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Sim_clock.elapsed c);
  Sim_clock.charge c 12.5;
  Sim_clock.charge c 7.5;
  Alcotest.(check (float 1e-9)) "sum" 20.0 (Sim_clock.elapsed c);
  Sim_clock.reset c;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Sim_clock.elapsed c);
  Alcotest.check_raises "negative"
    (Invalid_argument "Sim_clock.charge: negative duration") (fun () ->
      Sim_clock.charge c (-1.0))

let test_clock_render () =
  let c = Sim_clock.create () in
  Sim_clock.charge c 125.0;
  Alcotest.(check string) "minutes" "2m05s" (Sim_clock.to_string c);
  let d = Sim_clock.create () in
  Sim_clock.charge d 3.25;
  Alcotest.(check string) "seconds" "3.2s" (Sim_clock.to_string d)

(* -- Str_split ------------------------------------------------------------ *)

let test_str_split () =
  Alcotest.(check (list string)) "split" [ "a"; "b"; "c" ]
    (Feam_sysmodel.Str_split.split_on_string ~sep:"--" "a--b--c");
  Alcotest.(check (list string)) "no sep" [ "abc" ]
    (Feam_sysmodel.Str_split.split_on_string ~sep:"--" "abc");
  Alcotest.(check bool) "contains" true
    (Feam_sysmodel.Str_split.contains ~sub:"orl" "world");
  Alcotest.(check bool) "not contains" false
    (Feam_sysmodel.Str_split.contains ~sub:"xyz" "world")

let suite =
  ( "util-misc",
    [
      Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
      Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
      Alcotest.test_case "prng copy" `Quick test_prng_copy;
      Alcotest.test_case "keyed bool deterministic" `Quick test_keyed_bool_deterministic;
      Alcotest.test_case "keyed bool rate" `Quick test_keyed_bool_rate;
      Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
      Alcotest.test_case "prng validation" `Quick test_prng_invalid;
      Alcotest.test_case "pick" `Quick test_pick;
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "table validation" `Quick test_table_validation;
      Alcotest.test_case "percent" `Quick test_percent;
      Alcotest.test_case "sim clock" `Quick test_clock;
      Alcotest.test_case "sim clock render" `Quick test_clock_render;
      Alcotest.test_case "str split" `Quick test_str_split;
    ] )
