(* Tests for the ELF substrate: builder/reader round trips across
   classes, endiannesses and feature combinations, malformed-input
   handling, and structural invariants of the emitted images. *)

open Feam_elf

let sample_spec ?(machine = Types.X86_64) ?(file_type = Types.ET_EXEC) () =
  Spec.make ~file_type
    ~needed:[ "libmpi.so.0"; "libm.so.6"; "libc.so.6" ]
    ~rpath:"/opt/openmpi-1.4/lib"
    ~verneeds:
      [
        { Spec.vn_file = "libc.so.6"; vn_versions = [ "GLIBC_2.2.5"; "GLIBC_2.5" ] };
        { Spec.vn_file = "libm.so.6"; vn_versions = [ "GLIBC_2.2.5" ] };
      ]
    ~comments:[ "GCC: (GNU) 4.1.2"; "GNU ld version 2.17" ]
    ~abi_note:(2, 6, 18) machine

let roundtrip spec =
  let bytes = Builder.build spec in
  match Reader.parse bytes with
  | Ok t -> Reader.spec t
  | Error e -> Alcotest.failf "parse failed: %s" (Reader.error_to_string e)

let check_roundtrip name spec =
  let spec' = roundtrip spec in
  Alcotest.(check bool) name true (Spec.equal spec spec')

let test_roundtrip_exec () = check_roundtrip "exec x86-64" (sample_spec ())

let test_roundtrip_machines () =
  List.iter
    (fun machine ->
      check_roundtrip (Types.machine_name machine) (sample_spec ~machine ()))
    [ Types.I386; Types.X86_64; Types.PPC; Types.PPC64; Types.SPARC;
      Types.SPARCV9; Types.IA64 ]

let test_roundtrip_shared_library () =
  check_roundtrip "shared library"
    (Spec.make ~file_type:Types.ET_DYN ~soname:"libfoo.so.2"
       ~needed:[ "libc.so.6" ]
       ~verdefs:[ "libfoo.so.2"; "FOO_2.0"; "FOO_2.1" ]
       Types.X86_64)

let test_roundtrip_minimal () =
  check_roundtrip "no optional sections" (Spec.make Types.X86_64)

let test_roundtrip_runpath () =
  check_roundtrip "runpath"
    (Spec.make ~runpath:"/a:/b" ~needed:[ "libc.so.6" ] Types.X86_64)

let test_magic () =
  let bytes = Builder.build (sample_spec ()) in
  Alcotest.(check string) "magic" "\x7fELF" (String.sub bytes 0 4)

let test_not_elf () =
  (match Reader.parse "not an elf at all" with
  | Error Reader.Not_elf -> ()
  | _ -> Alcotest.fail "expected Not_elf");
  match Reader.parse "" with
  | Error Reader.Not_elf -> ()
  | _ -> Alcotest.fail "expected Not_elf on empty"

let test_truncated () =
  let bytes = Builder.build (sample_spec ()) in
  let cut = String.sub bytes 0 (String.length bytes / 2) in
  match Reader.parse cut with
  | Error (Reader.Malformed _) -> ()
  | Ok _ -> Alcotest.fail "truncated image parsed"
  | Error e -> Alcotest.failf "unexpected: %s" (Reader.error_to_string e)

let test_corrupt_class () =
  let bytes = Bytes.of_string (Builder.build (sample_spec ())) in
  Bytes.set bytes 4 '\x07';
  match Reader.parse (Bytes.to_string bytes) with
  | Error (Reader.Unsupported _) -> ()
  | _ -> Alcotest.fail "expected Unsupported class"

let test_sections_present () =
  let bytes = Builder.build (sample_spec ()) in
  let t = Reader.parse_exn bytes in
  let names = List.map (fun s -> s.Reader.name) (Reader.sections t) in
  List.iter
    (fun n -> Alcotest.(check bool) n true (List.mem n names))
    [ ".dynstr"; ".dynamic"; ".comment"; ".shstrtab"; ".gnu.version_r";
      ".note.ABI-tag" ]

let test_spec_helpers () =
  let spec = sample_spec () in
  Alcotest.(check (list string)) "versions from libc"
    [ "GLIBC_2.2.5"; "GLIBC_2.5" ]
    (Spec.versions_required_from spec "libc.so.6");
  Alcotest.(check (list string)) "absent provider" []
    (Spec.versions_required_from spec "libxyz.so");
  Alcotest.(check bool) "not a library" false (Spec.is_shared_library spec)

let test_elf_hash () =
  (* Known values of the System V ELF hash. *)
  Alcotest.(check int) "empty" 0 (Types.elf_hash "");
  Alcotest.(check int) "printf" 0x077905a6 (Types.elf_hash "printf");
  Alcotest.(check bool) "GLIBC_2.2.5 nonzero" true (Types.elf_hash "GLIBC_2.2.5" <> 0)

let test_machine_codes () =
  List.iter
    (fun m ->
      Alcotest.(check bool) (Types.machine_name m) true
        (Types.machine_of_code (Types.machine_code m) = Some m))
    [ Types.I386; Types.X86_64; Types.PPC; Types.PPC64; Types.SPARC;
      Types.SPARCV9; Types.IA64 ]

let test_machine_uname_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool) (Types.machine_uname m) true
        (Types.machine_of_uname (Types.machine_uname m) = Some m))
    [ Types.I386; Types.X86_64; Types.PPC; Types.PPC64; Types.SPARC;
      Types.SPARCV9; Types.IA64 ]

(* -- qcheck: arbitrary specs round trip ----------------------------------- *)

let gen_lib_name =
  QCheck.Gen.(
    map2
      (fun base ver -> Printf.sprintf "lib%s.so.%d" base ver)
      (oneofl [ "a"; "bb"; "mpi"; "gfortran"; "pthread" ])
      (int_range 0 9))

let gen_version_name =
  QCheck.Gen.(
    map (fun (a, b) -> Printf.sprintf "GLIBC_2.%d.%d" a b) (pair (int_range 0 9) (int_range 0 9)))

let gen_spec =
  QCheck.Gen.(
    let machine = oneofl [ Types.I386; Types.X86_64; Types.PPC64; Types.SPARC ] in
    let file_type = oneofl [ Types.ET_EXEC; Types.ET_DYN ] in
    let needed = list_size (int_range 0 6) gen_lib_name in
    let verneed =
      map2
        (fun file versions -> { Spec.vn_file = file; vn_versions = versions })
        gen_lib_name
        (list_size (int_range 1 3) gen_version_name)
    in
    let verneeds = list_size (int_range 0 3) verneed in
    let comments = list_size (int_range 0 3) (oneofl [ "GCC: 4.1"; "ld 2.17"; "x" ]) in
    let soname = opt gen_lib_name in
    let abi = opt (map (fun k -> (2, 6, k)) (int_range 0 32)) in
    machine >>= fun machine ->
    file_type >>= fun file_type ->
    needed >>= fun needed ->
    verneeds >>= fun verneeds ->
    comments >>= fun comments ->
    soname >>= fun soname ->
    abi >>= fun abi_note ->
    return (Spec.make ~file_type ?soname ~needed ~verneeds ~comments ?abi_note machine))

(* Distinct dynstr entries required: duplicate version names across files
   are fine, but the reader folds duplicate NEEDED entries into one seen
   set only when names repeat — normalize before comparing. *)
let normalize_needed spec = spec

let arb_spec =
  QCheck.make ~print:(fun s -> Fmt.str "%a" Spec.pp s) gen_spec

let prop_roundtrip =
  QCheck.Test.make ~name:"elf: build/parse roundtrip" ~count:200 arb_spec
    (fun spec ->
      let spec = normalize_needed spec in
      let bytes = Builder.build spec in
      match Reader.parse bytes with
      | Ok t -> Spec.equal spec (Reader.spec t)
      | Error _ -> false)

let prop_image_magic =
  QCheck.Test.make ~name:"elf: every image starts with magic" ~count:100
    arb_spec (fun spec ->
      let bytes = Builder.build spec in
      String.length bytes > 16 && String.sub bytes 0 4 = "\x7fELF")

let prop_size_reasonable =
  QCheck.Test.make ~name:"elf: image size linear in content" ~count:100
    arb_spec (fun spec ->
      let bytes = Builder.build spec in
      String.length bytes < 65536)

let suite =
  ( "elf",
    [
      Alcotest.test_case "roundtrip exec" `Quick test_roundtrip_exec;
      Alcotest.test_case "roundtrip all machines" `Quick test_roundtrip_machines;
      Alcotest.test_case "roundtrip shared library" `Quick test_roundtrip_shared_library;
      Alcotest.test_case "roundtrip minimal" `Quick test_roundtrip_minimal;
      Alcotest.test_case "roundtrip runpath" `Quick test_roundtrip_runpath;
      Alcotest.test_case "magic bytes" `Quick test_magic;
      Alcotest.test_case "reject non-ELF" `Quick test_not_elf;
      Alcotest.test_case "reject truncated" `Quick test_truncated;
      Alcotest.test_case "reject corrupt class" `Quick test_corrupt_class;
      Alcotest.test_case "sections present" `Quick test_sections_present;
      Alcotest.test_case "spec helpers" `Quick test_spec_helpers;
      Alcotest.test_case "elf hash" `Quick test_elf_hash;
      Alcotest.test_case "machine codes" `Quick test_machine_codes;
      Alcotest.test_case "machine uname" `Quick test_machine_uname_roundtrip;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_image_magic;
      QCheck_alcotest.to_alcotest prop_size_reasonable;
    ] )
