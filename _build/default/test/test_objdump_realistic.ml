(* Robustness of the objdump/readelf parsers against realistic GNU
   binutils output: extra dynamic tags, program/section header noise,
   hex columns, blank lines and trailing content that real tools emit
   but our emulation does not. *)

open Feam_core

(* A transcript shaped like real `objdump -p` output from binutils 2.17
   on a CentOS 5 system, including sections our parser must skip. *)
let realistic_objdump =
  "\n\
   /home/user/npb/bin/bt.A.16:     file format elf64-x86-64\n\n\
   Program Header:\n\
  \    PHDR off    0x0000000000000040 vaddr 0x0000000000400040 paddr 0x0000000000400040 align 2**3\n\
  \         filesz 0x00000000000001f8 memsz 0x00000000000001f8 flags r-x\n\
  \  INTERP off    0x0000000000000238 vaddr 0x0000000000400238 paddr 0x0000000000400238 align 2**0\n\
  \         filesz 0x000000000000001c memsz 0x000000000000001c flags r--\n\
  \    LOAD off    0x0000000000000000 vaddr 0x0000000000400000 paddr 0x0000000000400000 align 2**21\n\n\
   Dynamic Section:\n\
  \  NEEDED               libmpi_f77.so.0\n\
  \  NEEDED               libmpi.so.0\n\
  \  NEEDED               libopen-rte.so.0\n\
  \  NEEDED               libopen-pal.so.0\n\
  \  NEEDED               libnsl.so.1\n\
  \  NEEDED               libutil.so.1\n\
  \  NEEDED               libgfortran.so.1\n\
  \  NEEDED               libm.so.6\n\
  \  NEEDED               libc.so.6\n\
  \  RPATH                /opt/openmpi-1.4-gnu/lib\n\
  \  INIT                 0x0000000000401a18\n\
  \  FINI                 0x0000000000449e38\n\
  \  HASH                 0x0000000000400298\n\
  \  STRTAB               0x0000000000400f70\n\
  \  SYMTAB               0x00000000004004d8\n\
  \  STRSZ                0x0000000000000888\n\
  \  SYMENT               0x0000000000000018\n\
  \  DEBUG                0x0000000000000000\n\
  \  PLTGOT               0x0000000000650568\n\n\
   Version References:\n\
  \  required from libm.so.6:\n\
  \    0x09691a75 0x00 05 GLIBC_2.2.5\n\
  \  required from libc.so.6:\n\
  \    0x09691a75 0x00 04 GLIBC_2.2.5\n\
  \    0x0d696914 0x00 03 GLIBC_2.4\n\n"

let test_realistic_objdump () =
  let info = Result.get_ok (Objdump_parse.parse_objdump_p realistic_objdump) in
  Alcotest.(check string) "format" "elf64-x86-64" info.Objdump_parse.file_format;
  Alcotest.(check int) "nine NEEDED" 9 (List.length info.Objdump_parse.needed);
  Alcotest.(check (option string)) "rpath" (Some "/opt/openmpi-1.4-gnu/lib")
    info.Objdump_parse.rpath;
  Alcotest.(check (option string)) "no soname" None info.Objdump_parse.soname;
  Alcotest.(check (list string)) "libc versions" [ "GLIBC_2.2.5"; "GLIBC_2.4" ]
    (List.assoc "libc.so.6" info.Objdump_parse.verneeds);
  Alcotest.(check (list string)) "libm versions" [ "GLIBC_2.2.5" ]
    (List.assoc "libm.so.6" info.Objdump_parse.verneeds);
  (* a description built from it identifies Open MPI with Fortran *)
  let d =
    Result.get_ok
      (Description.of_dynamic_info ~path:"/home/user/npb/bin/bt.A.16"
         ~provenance:{ Objdump_parse.compiler_banner = None; build_os = None }
         info)
  in
  (match d.Description.mpi with
  | Some ident ->
    Alcotest.(check bool) "ompi" true
      (ident.Mpi_ident.impl = Feam_mpi.Impl.Open_mpi);
    Alcotest.(check bool) "fortran" true ident.Mpi_ident.fortran_bindings
  | None -> Alcotest.fail "not identified");
  Alcotest.(check bool) "required glibc 2.4" true
    (d.Description.required_glibc = Some (Feam_util.Version.of_string_exn "2.4"))

(* Shared-library output with a SONAME and version definitions. *)
let realistic_library_objdump =
  "/usr/lib64/libgfortran.so.1.0.0:     file format elf64-x86-64\n\n\
   Dynamic Section:\n\
  \  NEEDED               libm.so.6\n\
  \  NEEDED               libgcc_s.so.1\n\
  \  NEEDED               libc.so.6\n\
  \  SONAME               libgfortran.so.1\n\
  \  INIT                 0x000000000000dc78\n\n\
   Version definitions:\n\
   1 0x01 0x0865f4e6 libgfortran.so.1\n\
   2 0x00 0x0b792650 GFORTRAN_1.0\n\n\
   Version References:\n\
  \  required from libc.so.6:\n\
  \    0x09691a75 0x00 02 GLIBC_2.2.5\n"

let test_realistic_library () =
  let info = Result.get_ok (Objdump_parse.parse_objdump_p realistic_library_objdump) in
  Alcotest.(check (option string)) "soname" (Some "libgfortran.so.1")
    info.Objdump_parse.soname;
  Alcotest.(check (list string)) "verdefs"
    [ "libgfortran.so.1"; "GFORTRAN_1.0" ]
    info.Objdump_parse.verdefs

(* readelf -p .comment with the real dump format. *)
let realistic_readelf =
  "\nString dump of section '.comment':\n\
  \  [     0]  GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-46)\n\
  \  [    2e]  GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-46)\n\
  \  [    5c]  GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-48)\n\n"

let test_realistic_readelf () =
  let comments = Objdump_parse.parse_readelf_comment realistic_readelf in
  Alcotest.(check int) "three strings" 3 (List.length comments);
  let prov = Objdump_parse.provenance_of_comments comments in
  Alcotest.(check (option string)) "os" (Some "Red Hat") prov.Objdump_parse.build_os;
  Alcotest.(check bool) "compiler" true
    (prov.Objdump_parse.compiler_banner <> None)

let suite =
  ( "objdump-realistic",
    [
      Alcotest.test_case "realistic executable output" `Quick test_realistic_objdump;
      Alcotest.test_case "realistic library output" `Quick test_realistic_library;
      Alcotest.test_case "realistic readelf output" `Quick test_realistic_readelf;
    ] )
