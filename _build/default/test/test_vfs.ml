(* Tests for the virtual filesystem. *)

open Feam_sysmodel

let mk () = Vfs.create ()

let test_add_find () =
  let fs = mk () in
  Vfs.add fs "/etc/hosts" (Vfs.Text "localhost");
  Alcotest.(check bool) "exists" true (Vfs.exists fs "/etc/hosts");
  Alcotest.(check bool) "missing" false (Vfs.exists fs "/etc/nothing");
  match Vfs.kind_of fs "/etc/hosts" with
  | Some (Vfs.Text body) -> Alcotest.(check string) "body" "localhost" body
  | _ -> Alcotest.fail "wrong kind"

let test_normalize () =
  let fs = mk () in
  Vfs.add fs "/a//b/./c" (Vfs.Text "x");
  Alcotest.(check bool) "collapsed" true (Vfs.exists fs "/a/b/c");
  Vfs.add fs "/a/b/../d" (Vfs.Text "y");
  Alcotest.(check bool) "dotdot" true (Vfs.exists fs "/a/d");
  Alcotest.check_raises "relative rejected"
    (Invalid_argument "Vfs: path must be absolute: \"x/y\"") (fun () ->
      ignore (Vfs.exists fs "x/y"))

let test_dirname_basename () =
  Alcotest.(check string) "dirname" "/a/b" (Vfs.dirname "/a/b/c");
  Alcotest.(check string) "dirname root" "/" (Vfs.dirname "/c");
  Alcotest.(check string) "basename" "c" (Vfs.basename "/a/b/c")

let test_symlink () =
  let fs = mk () in
  Vfs.add fs "/lib64/libz.so.1.2.3" (Vfs.Text "real");
  Vfs.add fs "/lib64/libz.so.1" (Vfs.Symlink "/lib64/libz.so.1.2.3");
  Vfs.add fs "/lib64/libz.so" (Vfs.Symlink "libz.so.1") (* relative link *);
  (match Vfs.resolve fs "/lib64/libz.so" with
  | Some (path, _) -> Alcotest.(check string) "chain" "/lib64/libz.so.1.2.3" path
  | None -> Alcotest.fail "unresolved");
  (* cycles terminate *)
  Vfs.add fs "/x" (Vfs.Symlink "/y");
  Vfs.add fs "/y" (Vfs.Symlink "/x");
  Alcotest.(check bool) "cycle" true (Vfs.resolve fs "/x" = None)

let test_list_dir () =
  let fs = mk () in
  Vfs.add fs "/opt/a/lib/libx.so" (Vfs.Text "");
  Vfs.add fs "/opt/a/bin/tool" (Vfs.Text "");
  Vfs.add fs "/opt/b" (Vfs.Text "");
  Alcotest.(check (list string)) "children" [ "a"; "b" ] (Vfs.list_dir fs "/opt");
  Alcotest.(check (list string)) "nested" [ "bin"; "lib" ] (Vfs.list_dir fs "/opt/a");
  Alcotest.(check bool) "is_dir" true (Vfs.is_dir fs "/opt/a");
  Alcotest.(check bool) "file not dir" false (Vfs.is_dir fs "/opt/b/zzz")

let test_find_by_basename () =
  let fs = mk () in
  Vfs.add fs "/lib64/libmpi.so.0" (Vfs.Text "");
  Vfs.add fs "/opt/x/lib/libmpi.so.0" (Vfs.Text "");
  Vfs.add fs "/lib64/libmpich.so.1" (Vfs.Text "");
  let hits = Vfs.find_by_basename fs (fun b -> b = "libmpi.so.0") in
  Alcotest.(check int) "two hits" 2 (List.length hits);
  let under = Vfs.find_under fs "/opt" (fun b -> String.length b > 0 && b.[0] = 'l') in
  Alcotest.(check (list string)) "scoped" [ "/opt/x/lib/libmpi.so.0" ] under

let test_sizes () =
  let fs = mk () in
  Vfs.add ~declared_size:1000 fs "/opt/a/one" (Vfs.Text "tiny");
  Vfs.add ~declared_size:2000 fs "/opt/a/two" (Vfs.Text "tiny");
  Vfs.add fs "/opt/b/three" (Vfs.Text "12345");
  Alcotest.(check (option int)) "declared" (Some 1000) (Vfs.file_size fs "/opt/a/one");
  Alcotest.(check (option int)) "default = content" (Some 5)
    (Vfs.file_size fs "/opt/b/three");
  Alcotest.(check int) "du" 3000 (Vfs.du fs "/opt/a")

let test_remove () =
  let fs = mk () in
  Vfs.add fs "/tmp/feam/a" (Vfs.Text "");
  Vfs.add fs "/tmp/feam/sub/b" (Vfs.Text "");
  Vfs.add fs "/tmp/other" (Vfs.Text "");
  Vfs.remove_tree fs "/tmp/feam";
  Alcotest.(check bool) "removed" false (Vfs.exists fs "/tmp/feam/a");
  Alcotest.(check bool) "removed nested" false (Vfs.exists fs "/tmp/feam/sub/b");
  Alcotest.(check bool) "sibling kept" true (Vfs.exists fs "/tmp/other");
  Vfs.remove fs "/tmp/other";
  Alcotest.(check bool) "single removed" false (Vfs.exists fs "/tmp/other")

let test_copy_independent () =
  let fs = mk () in
  Vfs.add fs "/a" (Vfs.Text "1");
  let fs2 = Vfs.copy fs in
  Vfs.add fs2 "/b" (Vfs.Text "2");
  Alcotest.(check bool) "copy has both" true (Vfs.exists fs2 "/a" && Vfs.exists fs2 "/b");
  Alcotest.(check bool) "original untouched" false (Vfs.exists fs "/b")

let test_overwrite () =
  let fs = mk () in
  Vfs.add fs "/f" (Vfs.Text "old");
  Vfs.add fs "/f" (Vfs.Text "new");
  match Vfs.kind_of fs "/f" with
  | Some (Vfs.Text b) -> Alcotest.(check string) "replaced" "new" b
  | _ -> Alcotest.fail "missing"

(* qcheck: normalize is idempotent and stays absolute *)
let gen_path =
  QCheck.Gen.(
    let seg = oneofl [ "a"; "bb"; "."; ".."; "lib64"; "x" ] in
    map (fun segs -> "/" ^ String.concat "/" segs) (list_size (int_range 0 6) seg))

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"vfs: normalize idempotent" ~count:300
    (QCheck.make ~print:Fun.id gen_path) (fun p ->
      let n = Vfs.normalize p in
      Vfs.normalize n = n && String.length n > 0 && n.[0] = '/')

let suite =
  ( "vfs",
    [
      Alcotest.test_case "add/find" `Quick test_add_find;
      Alcotest.test_case "normalize" `Quick test_normalize;
      Alcotest.test_case "dirname/basename" `Quick test_dirname_basename;
      Alcotest.test_case "symlinks" `Quick test_symlink;
      Alcotest.test_case "list dir" `Quick test_list_dir;
      Alcotest.test_case "find by basename" `Quick test_find_by_basename;
      Alcotest.test_case "sizes" `Quick test_sizes;
      Alcotest.test_case "remove" `Quick test_remove;
      Alcotest.test_case "copy" `Quick test_copy_independent;
      Alcotest.test_case "overwrite" `Quick test_overwrite;
      QCheck_alcotest.to_alcotest prop_normalize_idempotent;
    ] )
