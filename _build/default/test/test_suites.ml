(* Tests for the benchmark-suite models: NPB classes, process-count
   rules, and the workload generator's compile behaviour. *)

open Feam_suites

let test_npb_class_names () =
  let bt_b = Npb_class.apply Npb_class.B Npb.bt in
  Alcotest.(check string) "renamed" "bt.B" bt_b.Benchmark.bench_name;
  Alcotest.(check bool) "bigger binary" true
    (bt_b.Benchmark.binary_size_mb > Npb.bt.Benchmark.binary_size_mb);
  let bt_s = Npb_class.apply Npb_class.S Npb.bt in
  Alcotest.(check string) "S class" "bt.S" bt_s.Benchmark.bench_name;
  Alcotest.(check bool) "smaller binary" true
    (bt_s.Benchmark.binary_size_mb < Npb.bt.Benchmark.binary_size_mb)

let test_npb_class_letters () =
  List.iter
    (fun cls ->
      Alcotest.(check bool) (Npb_class.letter cls) true
        (Npb_class.of_letter (Npb_class.letter cls) = Some cls))
    Npb_class.all

let test_npb_class_sizes_monotone () =
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "monotone" true
        (Npb_class.size_factor a < Npb_class.size_factor b);
      check rest
    | _ -> ()
  in
  check Npb_class.all;
  Alcotest.(check (float 1e-9)) "class A is the unit" 1.0
    (Npb_class.size_factor Npb_class.A);
  Alcotest.(check (float 1e-9)) "memory scales" 400.0
    (Npb_class.memory_mb ~base_mb:100.0 Npb_class.B)

let test_spectrum () =
  let specs = Npb_class.spectrum Npb.lu in
  Alcotest.(check int) "five classes" 5 (List.length specs);
  Alcotest.(check (list string)) "names"
    [ "lu.S"; "lu.W"; "lu.A"; "lu.B"; "lu.C" ]
    (List.map (fun b -> b.Benchmark.bench_name) specs)

let test_np_rules () =
  Alcotest.(check bool) "bt square" true (Npb.bt.Benchmark.np_rule = `Square);
  Alcotest.(check bool) "sp square" true (Npb.sp.Benchmark.np_rule = `Square);
  Alcotest.(check bool) "is pow2" true (Npb.is.Benchmark.np_rule = `Power_of_two);
  Alcotest.(check bool) "spec any" true
    (List.for_all (fun b -> b.Benchmark.np_rule = `Any) Specmpi.all)

let test_np_rule_enforced () =
  (* a BT binary launched with np = 6 (not a square) aborts at startup *)
  let site, installs = Fixtures.small_site () in
  let install = List.hd installs in
  let program = Benchmark.to_program ~site Npb.bt in
  let path =
    Result.get_ok
      (Feam_toolchain.Compile.compile_mpi_to site install program
         ~dir:"/home/user/apps")
  in
  let env = Fixtures.session_env site install in
  (match
     Feam_dynlinker.Exec.run ~params:Feam_sysmodel.Fault_model.none site env
       ~binary_path:path ~mode:(Feam_dynlinker.Exec.Mpi 6)
   with
  | Feam_dynlinker.Exec.Failure (Feam_dynlinker.Exec.Invalid_process_count f) ->
    Alcotest.(check int) "np recorded" 6 f.np
  | o -> Alcotest.failf "unexpected: %s" (Feam_dynlinker.Exec.outcome_to_string o));
  (* and np = 4 (a square) is fine *)
  match
    Feam_dynlinker.Exec.run ~params:Feam_sysmodel.Fault_model.none site env
      ~binary_path:path ~mode:(Feam_dynlinker.Exec.Mpi 4)
  with
  | Feam_dynlinker.Exec.Success -> ()
  | o -> Alcotest.failf "unexpected: %s" (Feam_dynlinker.Exec.outcome_to_string o)

let test_compiler_exclusions () =
  (* 115.fds4 never builds with PGI *)
  let pgi_stack =
    Feam_mpi.Stack.make ~impl:Feam_mpi.Impl.Open_mpi
      ~impl_version:(Feam_util.Version.of_string_exn "1.4")
      ~compiler:(Feam_mpi.Compiler.make Feam_mpi.Compiler.Pgi
                   (Feam_util.Version.of_string_exn "10.9"))
      ~interconnect:Feam_mpi.Interconnect.Ethernet
  in
  Alcotest.(check bool) "fds4 rejects pgi" false
    (Benchmark.compiles_with Specmpi.fds4 pgi_stack ~fragility_draw:false);
  Alcotest.(check bool) "fds4 accepts gnu" true
    (Benchmark.compiles_with Specmpi.fds4
       (Fixtures.ompi14 Fixtures.gnu412)
       ~fragility_draw:false);
  Alcotest.(check bool) "fragility draw kills" false
    (Benchmark.compiles_with Specmpi.fds4
       (Fixtures.ompi14 Fixtures.gnu412)
       ~fragility_draw:true)

let test_lib_families_resolve_per_site () =
  (* lammps links the site generation's FFTW soname *)
  let old_site, _ = Fixtures.small_site ~name:"oldgen" () in
  let program = Benchmark.to_program ~site:old_site Specmpi.lammps in
  let libs =
    List.map Feam_util.Soname.to_string program.Feam_toolchain.Compile.extra_libs
  in
  Alcotest.(check bool) "old gen fftw2" true (List.mem "libfftw.so.2" libs)

let suite =
  ( "suites",
    [
      Alcotest.test_case "npb class names" `Quick test_npb_class_names;
      Alcotest.test_case "npb class letters" `Quick test_npb_class_letters;
      Alcotest.test_case "npb class sizes" `Quick test_npb_class_sizes_monotone;
      Alcotest.test_case "npb spectrum" `Quick test_spectrum;
      Alcotest.test_case "np rules assigned" `Quick test_np_rules;
      Alcotest.test_case "np rule enforced" `Quick test_np_rule_enforced;
      Alcotest.test_case "compiler exclusions" `Quick test_compiler_exclusions;
      Alcotest.test_case "lib families per site" `Quick test_lib_families_resolve_per_site;
    ] )
