(** NPB problem classes (S, W, A, B, C).  The paper's test set uses a
    fixed class per benchmark; this module models the class dimension so
    workloads of other sizes can be generated. *)

type t = S | W | A | B | C

val all : t list
val letter : t -> string
val of_letter : string -> t option

(** Problem-size factor relative to class A (~4x per step). *)
val size_factor : t -> float

(** Minimum memory per process in MB, given a class-A footprint. *)
val memory_mb : base_mb:float -> t -> float

(** Re-key a benchmark at another class: renames "xx.A" to "xx.<cls>"
    and scales the binary size. *)
val apply : t -> Benchmark.t -> Benchmark.t

(** The benchmark at every class. *)
val spectrum : Benchmark.t -> Benchmark.t list
