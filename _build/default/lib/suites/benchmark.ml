(* A benchmark as the workload generator sees it: the source program
   handed to the toolchain plus its build fragility — not every benchmark
   compiles with every MPI stack combination, as the paper notes when
   explaining why the test set is a subset of the suites (§VI.A). *)

open Feam_util
open Feam_mpi

type suite = Nas | Spec_mpi2007

let suite_name = function Nas -> "NAS" | Spec_mpi2007 -> "SPEC"

type t = {
  bench_name : string;
  suite : suite;
  description : string;
  language : Stack.language;
  glibc_appetite : Version.t; (* newest glibc feature level the code uses *)
  extra_libs : Soname.t list;
  (* Site-local scientific libraries the code links (FFTW, HDF5): the
     concrete soname depends on the build site's distro generation. *)
  lib_families : Feam_toolchain.Libdb.scientific_family list;
  binary_size_mb : float;
  (* Probability a given MPI stack combination fails to build it. *)
  compile_fragility : float;
  (* Probability of application-code defects at a foreign site (FP traps
     on different hardware, data-layout assumptions). *)
  runtime_fragility : float;
  (* Deterministic build exclusions: compiler families the code is known
     not to build with. *)
  incompatible_compilers : Compiler.family list;
  (* Valid MPI process counts at startup. *)
  np_rule : [ `Any | `Power_of_two | `Square ];
}

let make ?(language = Stack.Fortran) ?(glibc_appetite = "2.3.4")
    ?(extra_libs = []) ?(lib_families = []) ?(binary_size_mb = 1.0)
    ?(compile_fragility = 0.0) ?(runtime_fragility = 0.0)
    ?(incompatible_compilers = []) ?(np_rule = `Any) ~suite ~description
    bench_name =
  {
    bench_name;
    suite;
    description;
    language;
    glibc_appetite = Version.of_string_exn glibc_appetite;
    extra_libs;
    lib_families;
    binary_size_mb;
    compile_fragility;
    runtime_fragility;
    incompatible_compilers;
    np_rule;
  }

(* The toolchain's view of the benchmark when built at [site]: scientific
   families resolve to the sonames the site's generation provides. *)
let to_program ~site t =
  let scientific =
    List.map (Feam_toolchain.Provision.scientific_soname site) t.lib_families
  in
  Feam_toolchain.Compile.program ~language:t.language
    ~glibc_appetite:t.glibc_appetite
    ~extra_libs:(t.extra_libs @ scientific)
    ~binary_size_mb:t.binary_size_mb ~runtime_fragility:t.runtime_fragility
    ~np_rule:t.np_rule t.bench_name

(* Does the benchmark build with [stack], given the per-coordinate
   deterministic draw [chance]?  [chance] is the value of a seeded
   Bernoulli with success probability [compile_fragility]. *)
let compiles_with t stack ~fragility_draw =
  (not
     (List.exists
        (Compiler.family_equal (Compiler.family (Stack.compiler stack)))
        t.incompatible_compilers))
  && not fragility_draw

let pp ppf t =
  Fmt.pf ppf "%s/%s (%s)" (suite_name t.suite) t.bench_name t.description
