lib/suites/benchmark.ml: Compiler Feam_mpi Feam_toolchain Feam_util Fmt List Soname Stack Version
