lib/suites/npb_class.ml: Benchmark Float List String
