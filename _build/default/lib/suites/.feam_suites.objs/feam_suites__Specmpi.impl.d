lib/suites/specmpi.ml: Benchmark Feam_mpi Feam_toolchain Feam_util Soname
