lib/suites/npb.mli: Benchmark
