lib/suites/benchmark.mli: Feam_mpi Feam_sysmodel Feam_toolchain Feam_util Fmt
