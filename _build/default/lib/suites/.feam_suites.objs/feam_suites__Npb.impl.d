lib/suites/npb.ml: Benchmark Feam_mpi
