lib/suites/npb_class.mli: Benchmark
