lib/suites/specmpi.mli: Benchmark
