(* SPEC MPI2007 (paper §VI.A): native MPI-parallel end-user applications.
   The seven codes of the paper's test set, with language mix and library
   appetite modelled from the real codes: milc is portable C, lammps is
   C++ (needs libstdc++), the CFD and hydro codes are modern Fortran with
   newer glibc appetites, which is what produces C-library failures when
   binaries built on newer sites (Forge, Blacklight) migrate to older
   ones (Ranger, India, Fir). *)

open Benchmark
open Feam_util

let suite = Spec_mpi2007

let so = Soname.make

let milc =
  make ~suite ~description:"quantum chromodynamics"
    ~language:Feam_mpi.Stack.C ~glibc_appetite:"2.3.4" ~binary_size_mb:2.4
    ~compile_fragility:0.09 ~runtime_fragility:0.09 "104.milc"

let leslie3d =
  make ~suite ~description:"computational fluid dynamics"
    ~glibc_appetite:"2.4" ~binary_size_mb:3.1 ~compile_fragility:0.16
    ~runtime_fragility:0.12 "107.leslie3d"

let fds4 =
  make ~suite ~description:"computational fluid dynamics (fire)"
    ~glibc_appetite:"2.5" ~binary_size_mb:4.2 ~compile_fragility:0.17
    ~runtime_fragility:0.12
    ~incompatible_compilers:[ Feam_mpi.Compiler.Pgi ] "115.fds4"

let tachyon =
  make ~suite ~description:"parallel ray tracing" ~language:Feam_mpi.Stack.C
    ~glibc_appetite:"2.3.4" ~binary_size_mb:1.1 ~compile_fragility:0.07
    ~runtime_fragility:0.07 "122.tachyon"

let lammps =
  make ~suite ~description:"molecular dynamics" ~language:Feam_mpi.Stack.C
    ~glibc_appetite:"2.4"
    ~extra_libs:[ so ~version:[ 6 ] "libstdc++" ]
    ~binary_size_mb:5.6 ~lib_families:[ Feam_toolchain.Libdb.Fftw ]
    ~compile_fragility:0.17 ~runtime_fragility:0.10 "126.lammps"

let gapgeofem =
  make ~suite ~description:"geophysical finite element (weather)"
    ~glibc_appetite:"2.4" ~binary_size_mb:2.8
    ~lib_families:[ Feam_toolchain.Libdb.Hdf5 ]
    ~compile_fragility:0.16 ~runtime_fragility:0.12 "127.GAPgeofem"

let tera_tf =
  make ~suite ~description:"3D Eulerian hydrodynamics" ~glibc_appetite:"2.5"
    ~binary_size_mb:3.4 ~lib_families:[ Feam_toolchain.Libdb.Hdf5 ]
    ~compile_fragility:0.17 ~runtime_fragility:0.12 "129.tera_tf"

let all = [ milc; leslie3d; fds4; tachyon; lammps; gapgeofem; tera_tf ]
