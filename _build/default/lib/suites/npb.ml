(* The NAS Parallel Benchmarks, MPI reference implementation version 2.4
   (paper §VI.A): four kernels — integer sort, embarrassingly parallel,
   conjugate gradient, multi-grid — and three pseudo-applications —
   block tridiagonal, scalar penta-diagonal and lower-upper Gauss-Seidel
   solvers.

   Compile fragilities are sized so that, across the Table II stack
   matrix, roughly the paper's fraction of (benchmark x stack) pairs
   survives into the test set (110 of the possible NPB builds). *)

open Benchmark

let suite = Nas

(* Legacy Fortran-77 kernels: portable (old glibc appetite) but fussy
   about Fortran compiler dialects. *)

let is =
  make ~suite ~description:"integer sort" ~language:Feam_mpi.Stack.C
    ~glibc_appetite:"2.2.5" ~binary_size_mb:0.4 ~compile_fragility:0.22
    ~runtime_fragility:0.012 ~np_rule:`Power_of_two "is.A"

let ep =
  make ~suite ~description:"embarrassingly parallel" ~glibc_appetite:"2.2.5"
    ~binary_size_mb:0.5 ~compile_fragility:0.27 ~runtime_fragility:0.008 ~np_rule:`Any "ep.A"

let cg =
  make ~suite ~description:"conjugate gradient" ~glibc_appetite:"2.3.4"
    ~binary_size_mb:0.7 ~compile_fragility:0.32 ~runtime_fragility:0.012 ~np_rule:`Power_of_two "cg.A"

let mg =
  make ~suite ~description:"multi-grid on a sequence of meshes"
    ~glibc_appetite:"2.3.4" ~binary_size_mb:0.8 ~compile_fragility:0.32
    ~runtime_fragility:0.012 ~np_rule:`Power_of_two "mg.A"

(* Pseudo-applications: bigger Fortran codes, harder to build. *)

let bt =
  make ~suite ~description:"block tridiagonal solver" ~glibc_appetite:"2.3.4"
    ~binary_size_mb:1.6 ~compile_fragility:0.42 ~runtime_fragility:0.015 ~np_rule:`Square "bt.A"

let sp =
  make ~suite ~description:"scalar penta-diagonal solver"
    ~glibc_appetite:"2.3.4" ~binary_size_mb:1.4 ~compile_fragility:0.42
    ~runtime_fragility:0.015 ~np_rule:`Square "sp.A"

let lu =
  make ~suite ~description:"lower-upper Gauss-Seidel solver"
    ~glibc_appetite:"2.3.4" ~binary_size_mb:1.5 ~compile_fragility:0.47
    ~runtime_fragility:0.015 ~np_rule:`Power_of_two "lu.A"

let all = [ is; ep; cg; mg; bt; sp; lu ]
