(** SPEC MPI2007 (paper §VI.A): the seven native MPI-parallel end-user
    applications of the paper's test set, with language mix and library
    appetite modelled from the real codes. *)

(** 104.milc — quantum chromodynamics (C). *)
val milc : Benchmark.t

(** 107.leslie3d — computational fluid dynamics (Fortran). *)
val leslie3d : Benchmark.t

(** 115.fds4 — fire-dynamics CFD (Fortran; does not build with PGI). *)
val fds4 : Benchmark.t

(** 122.tachyon — parallel ray tracing (C). *)
val tachyon : Benchmark.t

(** 126.lammps — molecular dynamics (C++, links libstdc++ and FFTW). *)
val lammps : Benchmark.t

(** 127.GAPgeofem — geophysical finite element / weather (links HDF5). *)
val gapgeofem : Benchmark.t

(** 129.tera_tf — 3D Eulerian hydrodynamics (links HDF5). *)
val tera_tf : Benchmark.t

(** All seven, in the paper's order. *)
val all : Benchmark.t list
