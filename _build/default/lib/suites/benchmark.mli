(** A benchmark as the workload generator sees it: the source program
    handed to the toolchain plus its build fragility — not every
    benchmark compiles with every MPI stack combination, which is why the
    paper's test set is a subset of the suites (§VI.A). *)

type suite = Nas | Spec_mpi2007

val suite_name : suite -> string

type t = {
  bench_name : string;
  suite : suite;
  description : string;
  language : Feam_mpi.Stack.language;
  glibc_appetite : Feam_util.Version.t;
      (** newest glibc feature level the code uses *)
  extra_libs : Feam_util.Soname.t list;
  lib_families : Feam_toolchain.Libdb.scientific_family list;
      (** site-local scientific libraries the code links (FFTW, HDF5) *)
  binary_size_mb : float;
  compile_fragility : float;
      (** probability a given MPI stack fails to build it *)
  runtime_fragility : float;
      (** probability of application-code defects at a foreign site *)
  incompatible_compilers : Feam_mpi.Compiler.family list;
      (** deterministic build exclusions *)
  np_rule : [ `Any | `Power_of_two | `Square ];
      (** valid MPI process counts at startup *)
}

val make :
  ?language:Feam_mpi.Stack.language ->
  ?glibc_appetite:string ->
  ?extra_libs:Feam_util.Soname.t list ->
  ?lib_families:Feam_toolchain.Libdb.scientific_family list ->
  ?binary_size_mb:float ->
  ?compile_fragility:float ->
  ?runtime_fragility:float ->
  ?incompatible_compilers:Feam_mpi.Compiler.family list ->
  ?np_rule:[ `Any | `Power_of_two | `Square ] ->
  suite:suite ->
  description:string ->
  string ->
  t

(** The toolchain's view of the benchmark when built at a site (scientific
    families resolve to the site generation's sonames). *)
val to_program : site:Feam_sysmodel.Site.t -> t -> Feam_toolchain.Compile.program

(** Does the benchmark build with the stack, given the seeded fragility
    draw? *)
val compiles_with : t -> Feam_mpi.Stack.t -> fragility_draw:bool -> bool

val pp : t Fmt.t
