(** The NAS Parallel Benchmarks, MPI reference implementation 2.4 (paper
    §VI.A): four kernels — integer sort, embarrassingly parallel,
    conjugate gradient, multi-grid — and three pseudo-applications —
    block tridiagonal, scalar penta-diagonal and lower-upper Gauss-Seidel
    solvers. *)

val is : Benchmark.t
val ep : Benchmark.t
val cg : Benchmark.t
val mg : Benchmark.t
val bt : Benchmark.t
val sp : Benchmark.t
val lu : Benchmark.t

(** All seven, in the paper's order. *)
val all : Benchmark.t list
