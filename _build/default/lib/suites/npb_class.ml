(* NPB problem classes.  The NAS Parallel Benchmarks are compiled per
   problem class — S (sample), W (workstation), A, B, C in increasing
   size — and the class is baked into the binary name ("bt.A", "bt.B").
   The paper's test set uses a fixed class per benchmark; this module
   models the class dimension so workloads of other sizes can be
   generated. *)

type t = S | W | A | B | C

let all = [ S; W; A; B; C ]

let letter = function S -> "S" | W -> "W" | A -> "A" | B -> "B" | C -> "C"

let of_letter = function
  | "S" -> Some S
  | "W" -> Some W
  | "A" -> Some A
  | "B" -> Some B
  | "C" -> Some C
  | _ -> None

(* Rough problem-size factor relative to class A: drives the binary's
   data segment and its runtime memory footprint.  (NPB class sizes grow
   roughly 4x per class step.) *)
let size_factor = function
  | S -> 0.05
  | W -> 0.25
  | A -> 1.0
  | B -> 4.0
  | C -> 16.0

(* Minimum memory per process, in MB, for a class-A footprint of
   [base_mb]. *)
let memory_mb ~base_mb t = base_mb *. size_factor t

(* Re-key a benchmark at another class: renames "xx.A" to "xx.<cls>" and
   scales the binary size (larger classes embed larger static arrays in
   Fortran codes). *)
let apply cls (bench : Benchmark.t) =
  let rename name =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name 0 i ^ "." ^ letter cls
    | None -> name ^ "." ^ letter cls
  in
  {
    bench with
    Benchmark.bench_name = rename bench.Benchmark.bench_name;
    binary_size_mb =
      bench.Benchmark.binary_size_mb *. Float.max 0.2 (size_factor cls ** 0.5);
  }

(* The benchmark at every class: a full NPB build matrix row. *)
let spectrum bench = List.map (fun cls -> apply cls bench) all
