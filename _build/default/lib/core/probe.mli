(** MPI stack probing (paper §III.B, §V.C): a stack is deemed usable only
    if a basic MPI program actually executes under it.

    Native probes (hello world compiled at the target) detect
    misconfigured stacks; foreign probes (shipped from the guaranteed
    environment, compiled with the application's stack) additionally
    detect ABI and floating-point defects that only foreign builds hit —
    the extended prediction's edge (§VI.C). *)

(** Directory probes are staged/compiled into at the target. *)
val probe_dir : string

type probe_result = (unit, string) result

(** The batch queue probes are submitted through: the user-configured
    queue when it exists at the site, the default (debug) queue
    otherwise. *)
val probe_queue :
  Config.t ->
  Feam_sysmodel.Site.t ->
  parallel:bool ->
  Feam_sysmodel.Batch.queue option

(** Compile and run a native MPI hello world under the install's stack;
    with a bundle, the probe runs with the bundle's staged copies
    exposed (a natively compiled probe can need them too, e.g. with a
    stale loader cache).  Fails when the site has no native compiler. *)
val native :
  ?clock:Feam_util.Sim_clock.t ->
  ?bundle:Bundle.t ->
  ?target_glibc:Feam_util.Version.t ->
  Config.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  Feam_sysmodel.Stack_install.t ->
  probe_result

(** Stage and run a shipped probe under the install's stack.  The probe
    travelled with the bundle, so its missing dependencies (typically the
    application's compiler runtime) are resolved from the bundle's copies
    before the run. *)
val foreign :
  ?clock:Feam_util.Sim_clock.t ->
  Config.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  Feam_sysmodel.Stack_install.t ->
  bundle:Bundle.t ->
  target_glibc:Feam_util.Version.t option ->
  Bundle.probe ->
  probe_result

(** Full stack test: native probe when possible, then every shipped
    probe.  Passes only if all applicable probes pass; errors when no
    probe can be run at all (the stack cannot be vouched for). *)
val test_stack :
  ?clock:Feam_util.Sim_clock.t ->
  Config.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  Feam_sysmodel.Stack_install.t ->
  bundle:Bundle.t option ->
  target_glibc:Feam_util.Version.t option ->
  probe_result
