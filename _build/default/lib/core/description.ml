(* The Binary Description Component's output record: the information
   paper Figure 3 lists — ISA and file format, library name/version when
   the binary is itself a shared library, required shared libraries,
   C library version requirements, and the MPI stack / OS / toolchain
   provenance that built the binary. *)

open Feam_util

type t = {
  path : string;
  file_format : string; (* objdump format descriptor, e.g. "elf64-x86-64" *)
  machine : Feam_elf.Types.machine;
  elf_class : Feam_elf.Types.elf_class;
  soname : Soname.t option; (* set when the binary is a shared library *)
  needed : string list;
  rpath : string option;
  runpath : string option;
  verneeds : (string * string list) list;
  (* The binary's *required C library version*: newest glibc symbol
     version referenced (paper §III.C), not the build version. *)
  required_glibc : Version.t option;
  mpi : Mpi_ident.identification option;
  provenance : Objdump_parse.provenance;
}

let is_shared_library t = t.soname <> None

(* Embedded version of a shared library, extracted from its official
   shared object name (paper §V.A). *)
let library_version t = Option.map Soname.version t.soname

let required_glibc_of_verneeds verneeds =
  verneeds
  |> List.concat_map snd
  |> List.filter_map Feam_toolchain.Glibc.version_of_symbol
  |> List.fold_left
       (fun acc v ->
         match acc with None -> Some v | Some a -> Some (Version.max a v))
       None

let of_dynamic_info ~path ~provenance (info : Objdump_parse.dynamic_info) =
  match Objdump_parse.machine_of_format info.Objdump_parse.file_format with
  | None -> Error ("unrecognized file format: " ^ info.Objdump_parse.file_format)
  | Some (machine, elf_class) ->
    Ok
      {
        path;
        file_format = info.Objdump_parse.file_format;
        machine;
        elf_class;
        soname = Option.bind info.Objdump_parse.soname Soname.of_string;
        needed = info.Objdump_parse.needed;
        rpath = info.Objdump_parse.rpath;
        runpath = info.Objdump_parse.runpath;
        verneeds = info.Objdump_parse.verneeds;
        required_glibc = required_glibc_of_verneeds info.Objdump_parse.verneeds;
        mpi = Mpi_ident.identify info.Objdump_parse.needed;
        provenance;
      }

let pp ppf t =
  Fmt.pf ppf
    "@[<v>binary: %s@ format: %s@ soname: %a@ needed: %a@ required C library: \
     %a@ MPI implementation: %a@ built by: %a@ built on: %a@]"
    t.path t.file_format
    Fmt.(option ~none:(any "-") (using Soname.to_string string))
    t.soname
    Fmt.(list ~sep:(any ", ") string)
    t.needed
    Fmt.(option ~none:(any "unknown") (using Version.to_string string))
    t.required_glibc
    Fmt.(
      option ~none:(any "none detected")
        (using (fun i -> Feam_mpi.Impl.name i.Mpi_ident.impl) string))
    t.mpi
    Fmt.(option ~none:(any "unknown") string)
    t.provenance.Objdump_parse.compiler_banner
    Fmt.(option ~none:(any "unknown") string)
    t.provenance.Objdump_parse.build_os
