(** The source phase's output (paper §V): the binary's description,
    optionally the binary itself, copies of its shared libraries,
    hello-world probes compiled with the binary's stack, and the
    guaranteed environment's discovery record — bundled for transfer to
    target sites. *)

type probe = {
  probe_name : string;
  probe_bytes : string;  (** ELF image compiled at the guaranteed site *)
  probe_stack_slug : string;  (** the stack it was compiled with *)
  probe_declared_size : int;
}

type t = {
  created_at : string;  (** guaranteed site name *)
  binary_description : Description.t;
  binary_bytes : string option;
  binary_declared_size : int;
  copies : Bdc.library_copy list;
  unlocatable : string list;
  probes : probe list;
  source_discovery : Discovery.t;
}

(** Size of the shared-library part of the bundle in bytes — the figure
    the paper reports averaging 45 MB per site (§VI.C). *)
val library_bytes : t -> int

(** Total bundle size, including the binary and probes. *)
val total_bytes : t -> int

(** Copies that can satisfy a given DT_NEEDED name, applying the soname
    compatibility convention (§III.D). *)
val copies_for : t -> string -> Bdc.library_copy list

(** Merged size of several bundles' distinct library copies (the
    evaluation's per-site bundles). *)
val merged_library_bytes : t list -> int
