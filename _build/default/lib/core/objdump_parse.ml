(* Parsers for the text output of the GNU binary utilities, which is the
   form in which the BDC consumes binary metadata (paper §V.A: "Most of
   the information about a binary can be extracted with ... objdump"). *)

type dynamic_info = {
  file_format : string;                     (* "elf64-x86-64" *)
  needed : string list;
  soname : string option;
  rpath : string option;
  runpath : string option;
  verneeds : (string * string list) list;   (* file -> version names *)
  verdefs : string list;
}

let empty_dynamic file_format =
  {
    file_format;
    needed = [];
    soname = None;
    rpath = None;
    runpath = None;
    verneeds = [];
    verdefs = [];
  }

(* Tokenize a line into whitespace-separated words. *)
let words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (( <> ) "")

(* Parse `objdump -p` output. *)
let parse_objdump_p text =
  let lines = String.split_on_char '\n' text in
  (* First line: "<path>:     file format <fmt>" *)
  let file_format =
    List.find_map
      (fun line ->
        match Feam_sysmodel.Str_split.split_on_string ~sep:"file format " line with
        | [ _; fmt ] -> Some (String.trim fmt)
        | _ -> None)
      lines
  in
  match file_format with
  | None -> Error "objdump output: no file format line"
  | Some file_format ->
    let info = ref (empty_dynamic file_format) in
    let section = ref `None in
    let current_verneed_file = ref None in
    let flush_verneed () = current_verneed_file := None in
    List.iter
      (fun raw_line ->
        let line = String.trim raw_line in
        if line = "" then ()
        else if line = "Dynamic Section:" then begin
          flush_verneed ();
          section := `Dynamic
        end
        else if line = "Version References:" then begin
          flush_verneed ();
          section := `Verneed
        end
        else if line = "Version definitions:" then begin
          flush_verneed ();
          section := `Verdef
        end
        else
          match !section with
          | `None -> ()
          | `Dynamic -> (
            match words line with
            | [ "NEEDED"; value ] -> info := { !info with needed = !info.needed @ [ value ] }
            | [ "SONAME"; value ] -> info := { !info with soname = Some value }
            | [ "RPATH"; value ] -> info := { !info with rpath = Some value }
            | [ "RUNPATH"; value ] -> info := { !info with runpath = Some value }
            | _ -> () (* STRTAB etc. *))
          | `Verneed ->
            if String.starts_with ~prefix:"required from " line then begin
              let file =
                String.sub line 14 (String.length line - 14)
                |> fun s ->
                if String.length s > 0 && s.[String.length s - 1] = ':' then
                  String.sub s 0 (String.length s - 1)
                else s
              in
              current_verneed_file := Some file;
              info := { !info with verneeds = !info.verneeds @ [ (file, []) ] }
            end
            else (
              (* "    0xHASH 0x00 02 GLIBC_2.3.4" *)
              match (List.rev (words line), !current_verneed_file) with
              | version :: _, Some file ->
                info :=
                  {
                    !info with
                    verneeds =
                      List.map
                        (fun (f, vs) ->
                          if f = file then (f, vs @ [ version ]) else (f, vs))
                        !info.verneeds;
                  }
              | _ -> ())
          | `Verdef -> (
            (* "1 0x01 0xHASH libfoo.so.1" *)
            match List.rev (words line) with
            | name :: _ when String.length name > 0 && name.[0] <> '0' ->
              info := { !info with verdefs = !info.verdefs @ [ name ] }
            | _ -> ()))
      lines;
    Ok !info

(* Map an objdump format descriptor back to machine and class. *)
let machine_of_format = function
  | "elf64-x86-64" -> Some (Feam_elf.Types.X86_64, Feam_elf.Types.C64)
  | "elf32-i386" -> Some (Feam_elf.Types.I386, Feam_elf.Types.C32)
  | "elf64-powerpc" -> Some (Feam_elf.Types.PPC64, Feam_elf.Types.C64)
  | "elf32-powerpc" -> Some (Feam_elf.Types.PPC, Feam_elf.Types.C32)
  | "elf64-sparc" -> Some (Feam_elf.Types.SPARCV9, Feam_elf.Types.C64)
  | "elf32-sparc" -> Some (Feam_elf.Types.SPARC, Feam_elf.Types.C32)
  | "elf64-ia64-little" -> Some (Feam_elf.Types.IA64, Feam_elf.Types.C64)
  | _ -> None

(* Parse `readelf -p .comment` output into its strings. *)
let parse_readelf_comment text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         (* "  [     0]  GCC: (GNU) 4.4.5" *)
         match String.index_opt line ']' with
         | Some i when String.length line > i + 2 && String.trim (String.sub line 0 i) <> "" ->
           let lbracket = String.index_opt line '[' in
           if lbracket = None then None
           else Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
         | _ -> None)

(* Extract compiler and OS provenance from .comment strings: the BDC uses
   these to report what toolchain and OS built the binary (§V.A). *)
type provenance = { compiler_banner : string option; build_os : string option }

let provenance_of_comments comments =
  let compiler_banner =
    List.find_opt
      (fun c ->
        String.starts_with ~prefix:"GCC:" c
        || String.starts_with ~prefix:"Intel(R)" c
        || String.starts_with ~prefix:"PGI" c)
      comments
  in
  let build_os =
    (* Distro names appear parenthesized in GCC/ld comment strings. *)
    List.find_map
      (fun c ->
        let find_tag tag = Feam_sysmodel.Str_split.contains ~sub:tag c in
        if find_tag "Red Hat" then Some "Red Hat"
        else if find_tag "CentOS" then Some "CentOS"
        else if find_tag "SUSE" then Some "SUSE"
        else None)
      comments
  in
  { compiler_banner; build_os }
