(* User-supplied configuration (paper §V): before running FEAM, the user
   specifies a serial and parallel submission script for the site — the
   only site knowledge FEAM requires — plus which phase to run, where the
   binary lives, and optional per-MPI-type launcher overrides. *)

open Feam_mpi

type phase_selection = Source_phase | Target_phase | Both_phases

type t = {
  phase : phase_selection;
  binary_path : string option;   (* required for the source phase and for
                                    target phases without a bundle *)
  serial_queue : string option;  (* submission queue names; site default
                                    (debug) queue when omitted *)
  parallel_queue : string option;
  (* mpiexec is used by default; the user can override per MPI type
     (paper §V.C). *)
  launcher_overrides : (Impl.t * string) list;
  staging_dir : string;          (* where resolved library copies land *)
  probe_np : int;                (* process count for MPI probes *)
}

let default =
  {
    phase = Target_phase;
    binary_path = None;
    serial_queue = None;
    parallel_queue = None;
    launcher_overrides = [];
    staging_dir = "/tmp/feam/staged_libs";
    probe_np = 4;
  }

let make ?(phase = Target_phase) ?binary_path ?serial_queue ?parallel_queue
    ?(launcher_overrides = []) ?(staging_dir = default.staging_dir)
    ?(probe_np = 4) () =
  {
    phase;
    binary_path;
    serial_queue;
    parallel_queue;
    launcher_overrides;
    staging_dir;
    probe_np;
  }

let launcher t impl =
  match List.assoc_opt impl t.launcher_overrides with
  | Some l -> l
  | None -> Stack.default_launcher

(* Serialize a configuration back to the "key = value" file format.
   [of_file_body] on the result reproduces the configuration. *)
let to_file_body t =
  let buf = Buffer.create 128 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "phase = %s\n"
    (match t.phase with
    | Source_phase -> "source"
    | Target_phase -> "target"
    | Both_phases -> "both");
  Option.iter (fun b -> addf "binary = %s\n" b) t.binary_path;
  Option.iter (fun q -> addf "serial_queue = %s\n" q) t.serial_queue;
  Option.iter (fun q -> addf "parallel_queue = %s\n" q) t.parallel_queue;
  addf "staging_dir = %s\n" t.staging_dir;
  addf "probe_np = %d\n" t.probe_np;
  List.iter
    (fun (impl, launcher) ->
      addf "launcher.%s = %s\n" (Impl.slug impl) launcher)
    t.launcher_overrides;
  Buffer.contents buf

(* Parse a simple "key = value" configuration file body, the format the
   CLI accepts.  Unknown keys are reported, not ignored. *)
let of_file_body body =
  let lines = String.split_on_char '\n' body in
  let trim = String.trim in
  let parse_line (config, errors) line =
    let line = trim line in
    if line = "" || line.[0] = '#' then (config, errors)
    else
      match String.index_opt line '=' with
      | None -> (config, Printf.sprintf "missing '=': %S" line :: errors)
      | Some i ->
        let key = trim (String.sub line 0 i) in
        let value = trim (String.sub line (i + 1) (String.length line - i - 1)) in
        (match key with
        | "phase" -> (
          match value with
          | "source" -> ({ config with phase = Source_phase }, errors)
          | "target" -> ({ config with phase = Target_phase }, errors)
          | "both" -> ({ config with phase = Both_phases }, errors)
          | _ -> (config, Printf.sprintf "bad phase: %S" value :: errors))
        | "binary" -> ({ config with binary_path = Some value }, errors)
        | "serial_queue" -> ({ config with serial_queue = Some value }, errors)
        | "parallel_queue" -> ({ config with parallel_queue = Some value }, errors)
        | "staging_dir" -> ({ config with staging_dir = value }, errors)
        | "probe_np" -> (
          match int_of_string_opt value with
          | Some n when n > 0 -> ({ config with probe_np = n }, errors)
          | _ -> (config, Printf.sprintf "bad probe_np: %S" value :: errors))
        | key when String.length key > 9 && String.sub key 0 9 = "launcher." -> (
          let slug = String.sub key 9 (String.length key - 9) in
          match Impl.of_slug slug with
          | Some impl ->
            ( { config with launcher_overrides = (impl, value) :: config.launcher_overrides },
              errors )
          | None -> (config, Printf.sprintf "unknown MPI type: %S" slug :: errors))
        | _ -> (config, Printf.sprintf "unknown key: %S" key :: errors))
  in
  let config, errors = List.fold_left parse_line (default, []) lines in
  if errors = [] then Ok config else Error (List.rev errors)
