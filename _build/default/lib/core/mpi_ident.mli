(** MPI implementation identification from link-level dependencies
    (paper Table I).

    MPI is an interface specification, not a link-level one: each
    implementation leaves a distinct fingerprint in a binary's DT_NEEDED
    list, which is how FEAM identifies the implementation a binary was
    compiled with. *)

type identification = {
  impl : Feam_mpi.Impl.t;
  evidence : string list;  (** the identifier libraries that matched *)
  fortran_bindings : bool;  (** Fortran MPI bindings are linked *)
}

(** [identify needed] inspects a DT_NEEDED list; [None] for serial
    binaries (no MPI implementation library present). *)
val identify : string list -> identification option

(** The rows of paper Table I, for reports and the table bench. *)
val table_rows : (string * string) list
