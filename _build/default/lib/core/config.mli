(** User-supplied configuration (paper §V).

    Before running FEAM, the user specifies the submission scripts/queues
    for the site — the only site knowledge FEAM requires — plus which
    phase to run, the binary's location, and optional per-MPI-type
    launcher overrides. *)

type phase_selection = Source_phase | Target_phase | Both_phases

type t = {
  phase : phase_selection;
  binary_path : string option;
      (** required for the source phase, and for target phases run
          without a bundle *)
  serial_queue : string option;
      (** submission queue for serial probes; the site's default (debug)
          queue when omitted *)
  parallel_queue : string option;
  launcher_overrides : (Feam_mpi.Impl.t * string) list;
      (** mpiexec is used by default; overridable per MPI type (§V.C) *)
  staging_dir : string;  (** where resolved library copies are placed *)
  probe_np : int;  (** process count used for MPI probes *)
}

(** Sensible defaults: target phase, mpiexec, 4-process probes. *)
val default : t

val make :
  ?phase:phase_selection ->
  ?binary_path:string ->
  ?serial_queue:string ->
  ?parallel_queue:string ->
  ?launcher_overrides:(Feam_mpi.Impl.t * string) list ->
  ?staging_dir:string ->
  ?probe_np:int ->
  unit ->
  t

(** The launch command to use for binaries of the given MPI type. *)
val launcher : t -> Feam_mpi.Impl.t -> string

(** Serialize to the "key = value" file format; {!of_file_body} on the
    result reproduces the configuration. *)
val to_file_body : t -> string

(** Parse a "key = value" configuration file body.  Unknown keys and
    malformed lines are collected as errors, not ignored. *)
val of_file_body : string -> (t, string list) result
