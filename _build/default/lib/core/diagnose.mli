(** Remediation guidance: turns a prediction's determinant record into
    concrete next steps, split by who can act (the scientist, the site
    administrators, or only a rebuild) — the paper's §IV observation
    about which determinants are fixable made actionable. *)

type severity =
  | User_fixable  (** the scientist can act alone *)
  | Needs_administrator  (** requires site privileges *)
  | Needs_rebuild  (** only recompilation can fix it *)

type remedy = { severity : severity; action : string }

val severity_to_string : severity -> string

(** Remedies for one prediction, in determinant order; empty when the
    prediction is ready. *)
val remedies : Predict.t -> remedy list

(** Render remediation guidance as report text. *)
val render : Predict.t -> string
