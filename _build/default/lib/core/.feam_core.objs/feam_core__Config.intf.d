lib/core/config.mli: Feam_mpi
