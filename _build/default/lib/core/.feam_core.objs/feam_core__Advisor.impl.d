lib/core/advisor.ml: Batch Cost Feam_sysmodel Feam_toolchain List Predict Printf Site Stack_install Tools
