lib/core/mpi_ident.mli: Feam_mpi
