lib/core/probe.mli: Bundle Config Feam_sysmodel Feam_util
