lib/core/discovery.ml: Compiler Feam_elf Feam_mpi Feam_util Fmt Impl String Version
