lib/core/objdump_parse.ml: Feam_elf Feam_sysmodel List String
