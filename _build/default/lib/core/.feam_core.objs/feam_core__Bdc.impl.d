lib/core/bdc.ml: Cost Description Env Feam_dynlinker Feam_elf Feam_sysmodel Feam_util Hashtbl List Mpi_ident Objdump_parse Site Soname Str_split Utilities Vfs
