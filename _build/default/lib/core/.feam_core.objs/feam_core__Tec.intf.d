lib/core/tec.mli: Bundle Config Description Discovery Feam_mpi Feam_sysmodel Feam_util Predict
