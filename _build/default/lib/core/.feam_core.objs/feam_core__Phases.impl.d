lib/core/phases.ml: Bdc Bundle Cost Description Discovery Edc Feam_mpi Feam_sysmodel Feam_toolchain List Logs Mpi_ident Report Site Tec Vfs
