lib/core/report.mli: Feam_util Predict
