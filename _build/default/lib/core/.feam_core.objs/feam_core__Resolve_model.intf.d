lib/core/resolve_model.mli: Bundle Config Feam_elf Feam_sysmodel Feam_util
