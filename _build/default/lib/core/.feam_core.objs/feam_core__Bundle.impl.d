lib/core/bundle.ml: Bdc Description Discovery Feam_util Hashtbl List Soname
