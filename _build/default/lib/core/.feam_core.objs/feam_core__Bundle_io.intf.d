lib/core/bundle_io.mli: Bundle
