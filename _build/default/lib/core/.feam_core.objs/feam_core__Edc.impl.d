lib/core/edc.ml: Bdc Cost Discovery Feam_dynlinker Feam_elf Feam_sysmodel Feam_toolchain Feam_util List Modules_tool Option Site Stack_install String Utilities Version Vfs
