lib/core/resolve_model.ml: Bdc Bundle Config Cost Description Env Feam_dynlinker Feam_sysmodel Feam_util Hashtbl List Option Predict Printf Site Version Vfs
