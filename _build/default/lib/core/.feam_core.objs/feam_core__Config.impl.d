lib/core/config.ml: Buffer Feam_mpi Impl List Option Printf Stack String
