lib/core/objdump_parse.mli: Feam_elf
