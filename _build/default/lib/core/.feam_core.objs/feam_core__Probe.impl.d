lib/core/probe.ml: Batch Bundle Config Cost Feam_dynlinker Feam_elf Feam_sysmodel Feam_toolchain List Modules_tool Option Printf Resolve_model Result Site Tools Vfs
