lib/core/mpi_ident.ml: Feam_mpi Feam_util Impl List Soname
