lib/core/bdc.mli: Description Feam_sysmodel Feam_util
