lib/core/description.ml: Feam_elf Feam_mpi Feam_toolchain Feam_util Fmt List Mpi_ident Objdump_parse Option Soname Version
