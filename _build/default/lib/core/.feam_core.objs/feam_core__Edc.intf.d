lib/core/edc.mli: Discovery Feam_elf Feam_sysmodel Feam_util
