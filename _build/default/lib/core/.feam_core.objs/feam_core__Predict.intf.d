lib/core/predict.mli: Feam_elf Feam_mpi Feam_util Fmt
