lib/core/phases.mli: Bundle Config Feam_sysmodel Feam_util Report
