lib/core/bundle.mli: Bdc Description Discovery
