lib/core/diagnose.mli: Predict
