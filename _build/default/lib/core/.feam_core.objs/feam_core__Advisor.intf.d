lib/core/advisor.mli: Feam_sysmodel Feam_toolchain Feam_util Predict
