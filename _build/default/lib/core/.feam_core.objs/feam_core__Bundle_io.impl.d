lib/core/bundle_io.ml: Base64 Bdc Buffer Bundle Description Discovery Feam_elf Feam_util List Mpi_ident Objdump_parse Option Printf Soname String Version
