lib/core/description.mli: Feam_elf Feam_util Fmt Mpi_ident Objdump_parse
