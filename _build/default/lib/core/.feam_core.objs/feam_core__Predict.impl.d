lib/core/predict.ml: Feam_elf Feam_mpi Feam_util Fmt List Version
