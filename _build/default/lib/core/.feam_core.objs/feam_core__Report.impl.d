lib/core/report.ml: Buffer Diagnose Feam_elf Feam_util Fmt List Option Predict Printf String
