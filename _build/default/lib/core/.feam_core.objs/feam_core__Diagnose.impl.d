lib/core/diagnose.ml: Buffer Feam_elf Feam_mpi Feam_sysmodel Feam_util List Predict Printf
