lib/core/discovery.mli: Feam_elf Feam_mpi Feam_util Fmt
