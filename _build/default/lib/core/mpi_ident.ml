(* MPI implementation identification from link-level dependencies
   (paper Table I).

   MPI is an interface specification, not a link-level one, so each
   implementation leaves a distinct fingerprint in DT_NEEDED:

     MVAPICH2 : libmpich/libmpichf90 plus libibverbs, libibumad
     Open MPI : libmpi (and libnsl, libutil)
     MPICH2   : libmpich/libmpichf90 and none of the other identifiers *)

open Feam_util
open Feam_mpi

type identification = {
  impl : Impl.t;
  (* Identifier libraries that matched, for the report. *)
  evidence : string list;
  (* Whether Fortran MPI bindings are linked. *)
  fortran_bindings : bool;
}

let base_of name =
  match Soname.of_string name with
  | Some s -> Soname.base s
  | None -> name

let has_lib needed base = List.exists (fun n -> base_of n = base) needed

(* [identify needed] inspects a DT_NEEDED list. [None] when no MPI
   implementation library is present (a serial binary). *)
let identify needed =
  let has = has_lib needed in
  let fortran_bindings =
    has "libmpichf90" || has "libmpi_f77" || has "libmpi_f90" || has "libfmpich"
  in
  if has "libmpi" then
    let evidence =
      List.filter has [ "libmpi"; "libnsl"; "libutil" ]
      |> List.map (fun b -> b ^ ".so")
    in
    Some { impl = Impl.Open_mpi; evidence; fortran_bindings }
  else if has "libmpich" || has "libmpichf90" then
    if has "libibverbs" || has "libibumad" then
      let evidence =
        List.filter has [ "libmpich"; "libmpichf90"; "libibverbs"; "libibumad" ]
        |> List.map (fun b -> b ^ ".so")
      in
      Some { impl = Impl.Mvapich2; evidence; fortran_bindings }
    else
      let evidence =
        List.filter has [ "libmpich"; "libmpichf90" ] |> List.map (fun b -> b ^ ".so")
      in
      Some { impl = Impl.Mpich2; evidence; fortran_bindings }
  else None

(* The rows of paper Table I, for the report and the table bench. *)
let table_rows =
  [
    ("MVAPICH2", "libmpich/libmpichf90, libibverbs, libibumad");
    ("Open MPI", "libnsl, libutil");
    ("MPICH2", "libmpich/libmpichf90 (and not other identifiers)");
  ]
