(** The prediction model (paper §III, Figure 1): four determinants decide
    whether an application binary is ready to execute at a target site —
    compatible ISA, a functioning compatible MPI stack, C library
    requirements met, and all required shared libraries available (after
    resolution). *)

type isa_check = {
  isa_compatible : bool;
  binary_machine : Feam_elf.Types.machine;
  binary_class : Feam_elf.Types.elf_class;
  site_machine : Feam_elf.Types.machine option;
}

type stack_check = {
  stack_compatible : bool;
  requested_impl : Feam_mpi.Impl.t option;  (** [None] for serial binaries *)
  candidates_found : string list;  (** slugs with a matching implementation *)
  functioning : string option;  (** the chosen, probe-verified stack *)
  probe_failures : (string * string) list;  (** slug, failure detail *)
}

type clib_check = {
  clib_compatible : bool;
  required : Feam_util.Version.t option;
  available : Feam_util.Version.t option;
}

type libs_check = {
  libs_compatible : bool;
  missing : string list;  (** before resolution *)
  resolved_by_copies : string list;  (** staged from the bundle *)
  unresolved : (string * string) list;  (** name, why resolution failed *)
}

type determinants = {
  isa : isa_check;
  stack : stack_check option;  (** [None] when evaluation stopped earlier *)
  clib : clib_check;
  libs : libs_check option;
}

(** An execution plan: what to set up so the predicted-ready binary
    runs — the paper's "matching configuration details". *)
type plan = {
  chosen_stack_slug : string option;  (** [None] for serial binaries *)
  module_loads : string list;
  ld_library_path_additions : string list;
  staged_copies : (string * string) list;  (** needed name -> staged path *)
  launcher : string;
}

type verdict = Ready of plan | Not_ready of string list

type t = { verdict : verdict; determinants : determinants }

val is_ready : t -> bool
val reasons : t -> string list

(** The ISA rule: exact machine match, or 32-bit x86 on x86-64. *)
val isa_rule :
  binary_machine:Feam_elf.Types.machine ->
  site_machine:Feam_elf.Types.machine ->
  bool

(** The C-library rule (§III.C): target version >= required version.
    An unknown target version is treated as incompatible. *)
val clib_rule :
  required:Feam_util.Version.t option ->
  available:Feam_util.Version.t option ->
  bool

(** One-per-determinant summary, mirroring Figure 1. *)
val pp_determinant_summary : t Fmt.t
