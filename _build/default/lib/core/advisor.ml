(* Migration-strategy advisor: the paper's future-work direction of
   handling MPI application *source* migration alongside binaries
   (§VII: "This will include migrating MPI application binaries as well
   as MPI application source code").

   Given a binary's readiness prediction at a target and, when the user
   owns the source, the target's recompilation prospects, the advisor
   recommends one of: run the migrated binary (fast, FEAM-configured),
   recompile at the target (slower, but native), or neither.  The
   trade-off mirrors the paper's introduction: moving binaries avoids
   long compile times and compiling community codes, at the price of
   stricter environment matching. *)

open Feam_sysmodel

(* Estimated wall-clock of recompiling a source tree at a site, in
   seconds: configure + build scaled by source size, through the same
   batch/debug-queue accounting as everything else. *)
let recompile_seconds ~source_size_mb site =
  let queue = Batch.debug_queue (Site.batch site) in
  queue.Batch.wait_seconds
  +. Cost.compile_mpi
  +. (240.0 *. source_size_mb) (* large scientific codes build slowly *)

type recompile_check = {
  rc_stack_slug : string;      (* stack whose wrappers would be used *)
  rc_estimate_seconds : float;
}

type strategy =
  | Use_binary of Predict.plan
      (* the migrated binary is predicted ready: run it as configured *)
  | Recompile of recompile_check
      (* binary not ready, but the target can rebuild from source *)
  | Not_viable of string list
      (* neither the binary nor a rebuild can work at this target *)

type advice = {
  strategy : strategy;
  binary_prediction : Predict.t;
  considered_recompile : recompile_check option;
  rationale : string;
}

(* Can [program] be rebuilt at [site]?  Needs a native toolchain and a
   stack whose wrappers accept the source (any MPI implementation: source
   is portable across implementations, unlike binaries). *)
let recompile_viability ?clock site (program : Feam_toolchain.Compile.program) =
  if not (Site.tools site).Tools.c_compiler then
    Error "no native compiler toolchain at the target"
  else
    let candidates =
      Site.stack_installs site |> List.filter Stack_install.launches_native
    in
    let viable =
      List.find_map
        (fun install ->
          match Feam_toolchain.Compile.compile_mpi ?clock site install program with
          | Ok _ ->
            Some
              {
                rc_stack_slug = Stack_install.module_name install;
                rc_estimate_seconds =
                  recompile_seconds
                    ~source_size_mb:program.Feam_toolchain.Compile.binary_size_mb
                    site;
              }
          | Error _ -> None)
        candidates
    in
    match viable with
    | Some check -> Ok check
    | None -> Error "no functioning MPI stack accepts the source"

(* [advise] combines the binary prediction with the recompilation check.
   [source] is the program model of the source tree when the user owns
   it; community codes distributed as binaries pass [None]. *)
let advise ?clock site ~(binary_prediction : Predict.t)
    ~(source : Feam_toolchain.Compile.program option) : advice =
  let considered_recompile =
    match source with
    | None -> None
    | Some program -> (
      match recompile_viability ?clock site program with
      | Ok check -> Some check
      | Error _ -> None)
  in
  match binary_prediction.Predict.verdict with
  | Predict.Ready plan ->
    {
      strategy = Use_binary plan;
      binary_prediction;
      considered_recompile;
      rationale =
        "the migrated binary is predicted ready: no compile time, no source \
         required";
    }
  | Predict.Not_ready reasons -> (
    match considered_recompile with
    | Some check ->
      {
        strategy = Recompile check;
        binary_prediction;
        considered_recompile;
        rationale =
          Printf.sprintf
            "binary migration fails (%s) but the target can rebuild from \
             source with %s in about %.0f s"
            (match reasons with r :: _ -> r | [] -> "unknown")
            check.rc_stack_slug check.rc_estimate_seconds;
      }
    | None ->
      {
        strategy = Not_viable reasons;
        binary_prediction;
        considered_recompile;
        rationale =
          (match source with
          | None ->
            "binary migration fails and no source is available to rebuild \
             from"
          | Some _ ->
            "binary migration fails and the target cannot rebuild the source");
      })

let strategy_to_string = function
  | Use_binary _ -> "use migrated binary"
  | Recompile check ->
    Printf.sprintf "recompile with %s (~%.0f s)" check.rc_stack_slug
      check.rc_estimate_seconds
  | Not_viable _ -> "not viable"
