(** Migration-strategy advisor: the paper's future-work direction of
    handling MPI application {e source} migration alongside binaries
    (§VII).  Compares running the migrated binary (fast, FEAM-configured)
    against recompiling at the target (slower, needs source and a
    toolchain). *)

(** Estimated wall-clock of recompiling a source tree at a site. *)
val recompile_seconds : source_size_mb:float -> Feam_sysmodel.Site.t -> float

type recompile_check = {
  rc_stack_slug : string;  (** stack whose wrappers would be used *)
  rc_estimate_seconds : float;
}

type strategy =
  | Use_binary of Predict.plan
      (** the migrated binary is predicted ready: run it as configured *)
  | Recompile of recompile_check
      (** binary not ready, but the target can rebuild from source *)
  | Not_viable of string list
      (** neither the binary nor a rebuild can work at this target *)

type advice = {
  strategy : strategy;
  binary_prediction : Predict.t;
  considered_recompile : recompile_check option;
  rationale : string;
}

(** Can the program be rebuilt at the site?  Needs a native toolchain and
    a functioning stack that accepts the source — any MPI implementation,
    since source (unlike binaries) is portable across them. *)
val recompile_viability :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Feam_toolchain.Compile.program ->
  (recompile_check, string) result

(** Combine a binary prediction with the recompilation check.  Pass
    [source = None] for community codes distributed as binaries. *)
val advise :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  binary_prediction:Predict.t ->
  source:Feam_toolchain.Compile.program option ->
  advice

val strategy_to_string : strategy -> string
