(** The user-facing output of a target phase (paper §V.C): the
    prediction, the reasons when execution is deemed impossible, and —
    when the site is predicted ready — the matching configuration details
    plus a script that sets them up automatically on execution. *)

type t = {
  site_name : string;
  binary : string;
  prediction : Predict.t;
  setup_script : string option;  (** present when predicted ready *)
}

val prediction : t -> Predict.t

(** Generate the setup script for a ready plan: module loads,
    LD_LIBRARY_PATH exports for staged copies, and the launch line. *)
val make_setup_script : Predict.plan -> binary:string -> string

val make : site_name:string -> binary:string -> Predict.t -> t

(** Machine-readable form of the report (extension: tooling output). *)
val to_json : t -> Feam_util.Json.t

(** Render the full human-readable report. *)
val render : t -> string
