(* The source phase's output: everything gathered at a guaranteed
   execution environment, bundled for transfer to target sites
   (paper §V: "The output from a source phase is bundled for the user and
   must be copied to each target site").

   Carrying the bundle enables the extended prediction (shipped
   hello-world probes) and the resolution model (library copies), and
   removes the need for the application binary to be present at the
   target. *)

open Feam_util

type probe = {
  probe_name : string;
  probe_bytes : string;          (* ELF image compiled at the guaranteed site *)
  probe_stack_slug : string;     (* stack it was compiled with *)
  probe_declared_size : int;
}

type t = {
  created_at : string;           (* guaranteed site name, informational *)
  binary_description : Description.t;
  binary_bytes : string option;  (* the application binary itself *)
  binary_declared_size : int;
  copies : Bdc.library_copy list;
  unlocatable : string list;
  probes : probe list;
  source_discovery : Discovery.t;
}

(* Size of the shared-library part of the bundle, in bytes: the figure
   the paper reports averaging 45 MB per site (§VI.C). *)
let library_bytes t =
  List.fold_left (fun acc c -> acc + c.Bdc.copy_declared_size) 0 t.copies

let total_bytes t =
  library_bytes t + t.binary_declared_size
  + List.fold_left (fun acc p -> acc + p.probe_declared_size) 0 t.probes

(* Copies that can satisfy a given DT_NEEDED name, applying the soname
   compatibility convention (same base and major version, §III.D). *)
let copies_for t name =
  let requested = Soname.of_string name in
  t.copies
  |> List.filter (fun c ->
         c.Bdc.copy_request = name
         ||
         match (requested, c.Bdc.copy_description.Description.soname) with
         | Some required, Some provided -> Soname.satisfies ~provided ~required
         | _ -> false)

(* Merge the copies of several bundles (used to bundle a whole corpus for
   one site, as the evaluation's per-site bundles do). *)
let merged_library_bytes bundles =
  let seen = Hashtbl.create 64 in
  List.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc c ->
          let key = c.Bdc.copy_origin_path in
          if Hashtbl.mem seen key then acc
          else begin
            Hashtbl.add seen key ();
            acc + c.Bdc.copy_declared_size
          end)
        acc b.copies)
    0 bundles
