(* The prediction model (paper §III, Figure 1): four determinants decide
   whether an application binary is ready to execute at a target site.

     1. Was the application compiled for a compatible ISA?
     2. Is there a compatible MPI stack functioning?
     3. Are the application's C library requirements met?
     4. Are all required shared libraries available (after resolution)? *)

open Feam_util

type isa_check = {
  isa_compatible : bool;
  binary_machine : Feam_elf.Types.machine;
  binary_class : Feam_elf.Types.elf_class;
  site_machine : Feam_elf.Types.machine option;
}

type stack_check = {
  stack_compatible : bool;
  requested_impl : Feam_mpi.Impl.t option; (* None for serial binaries *)
  candidates_found : string list;          (* slugs with matching implementation *)
  functioning : string option;             (* the chosen, probe-verified stack *)
  probe_failures : (string * string) list; (* slug, failure detail *)
}

type clib_check = {
  clib_compatible : bool;
  required : Version.t option;
  available : Version.t option;
}

type libs_check = {
  libs_compatible : bool;
  missing : string list;                 (* before resolution *)
  resolved_by_copies : string list;      (* staged from the bundle *)
  unresolved : (string * string) list;   (* name, why resolution failed *)
}

type determinants = {
  isa : isa_check;
  stack : stack_check option;  (* None when evaluation stopped earlier *)
  clib : clib_check;
  libs : libs_check option;
}

(* An execution plan: what to set up at the target so the predicted-ready
   binary runs. *)
type plan = {
  chosen_stack_slug : string option; (* None for serial binaries *)
  module_loads : string list;
  ld_library_path_additions : string list;
  staged_copies : (string * string) list; (* needed name -> staged path *)
  launcher : string;
}

type verdict = Ready of plan | Not_ready of string list

type t = { verdict : verdict; determinants : determinants }

let is_ready t = match t.verdict with Ready _ -> true | Not_ready _ -> false

let reasons t = match t.verdict with Ready _ -> [] | Not_ready r -> r

(* The prediction model's ISA rule: exact machine match, or the
   ubiquitous 32-bit-x86-on-x86-64 compatibility mode.  Word length is
   implied by the machine comparison (paper §III.A considers both ISA
   and bitness). *)
let isa_rule ~binary_machine ~site_machine =
  binary_machine = site_machine
  || (binary_machine = Feam_elf.Types.I386 && site_machine = Feam_elf.Types.X86_64)

(* The C-library rule (§III.C): the target's version must be greater than
   or equal to the binary's required version.  Unknown target version is
   treated as incompatible — the site cannot be vouched for. *)
let clib_rule ~required ~available =
  match (required, available) with
  | None, _ -> true (* binary states no versioned requirement *)
  | Some _, None -> false
  | Some r, Some a -> Version.(r <= a)

let pp_determinant_summary ppf t =
  let d = t.determinants in
  Fmt.pf ppf "@[<v>1) ISA compatible: %b@ " d.isa.isa_compatible;
  (match d.stack with
  | None -> Fmt.pf ppf "2) MPI stack: not evaluated@ "
  | Some s ->
    Fmt.pf ppf "2) MPI stack functioning: %b%a@ " s.stack_compatible
      Fmt.(option (fun ppf slug -> Fmt.pf ppf " (%s)" slug))
      s.functioning);
  Fmt.pf ppf "3) C library compatible: %b (requires %a, site has %a)@ "
    d.clib.clib_compatible
    Fmt.(option ~none:(any "none") (using Version.to_string string))
    d.clib.required
    Fmt.(option ~none:(any "unknown") (using Version.to_string string))
    d.clib.available;
  match d.libs with
  | None -> Fmt.pf ppf "4) shared libraries: not evaluated@]"
  | Some l ->
    Fmt.pf ppf
      "4) shared libraries available: %b (missing %d, resolved %d, unresolved %d)@]"
      l.libs_compatible (List.length l.missing)
      (List.length l.resolved_by_copies)
      (List.length l.unresolved)
