(** Environment Discovery Component (paper §V.B).

    Gathers information about a computing environment: ISA via uname, OS
    via /proc/version and /etc/*release, the C library version by running
    the C library binary (with an API fallback), and the available/loaded
    MPI stacks via the user-environment management tools with a
    path-search fallback. *)

val discover_isa :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Feam_elf.Types.machine option

val discover_os :
  ?clock:Feam_util.Sim_clock.t -> Feam_sysmodel.Site.t -> string option

val discover_kernel :
  ?clock:Feam_util.Sim_clock.t -> Feam_sysmodel.Site.t -> string option

(** Parse the banner the C library binary prints when executed. *)
val parse_glibc_banner : string -> Feam_util.Version.t option

val discover_glibc :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Feam_util.Version.t option

(** Available MPI stacks: user-environment management tools first,
    filesystem path search as fallback. *)
val discover_stacks :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Discovery.discovered_stack list

(** The stack loaded in the given session: module list first, PATH
    inspection second. *)
val discover_current_stack :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  Discovery.discovered_stack option

(** Shared libraries of a binary missing under the given environment:
    ldd when usable, name-by-name search otherwise. *)
val missing_libraries :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  binary_path:string ->
  needed:string list ->
  string list

(** Full environment discovery. *)
val discover :
  ?clock:Feam_util.Sim_clock.t ->
  env_type:[ `Target | `Guaranteed ] ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  Discovery.t
