(** Parsers for the text output of the GNU binary utilities — the form in
    which the BDC consumes binary metadata (paper §V.A). *)

type dynamic_info = {
  file_format : string;  (** "elf64-x86-64" *)
  needed : string list;
  soname : string option;
  rpath : string option;
  runpath : string option;
  verneeds : (string * string list) list;  (** file -> version names *)
  verdefs : string list;
}

(** Parse `objdump -p` output (format line, Dynamic Section, Version
    References/definitions). *)
val parse_objdump_p : string -> (dynamic_info, string) result

(** Map an objdump format descriptor back to machine and class. *)
val machine_of_format :
  string -> (Feam_elf.Types.machine * Feam_elf.Types.elf_class) option

(** Parse `readelf -p .comment` output into its strings. *)
val parse_readelf_comment : string -> string list

(** Compiler and OS provenance extracted from .comment strings (what
    toolchain and OS built the binary, §V.A). *)
type provenance = { compiler_banner : string option; build_os : string option }

val provenance_of_comments : string list -> provenance
