(** Serialization of source-phase bundles: the artifact the user copies
    from the guaranteed execution environment to each target site
    (paper §V).

    Line-oriented text container with base64-embedded ELF images.
    Derived description fields (required C library version, MPI
    identification) are recomputed on load from the stored primitives. *)

(** First line of every bundle artifact. *)
val magic : string

type parse_error = { line : int; message : string }

val parse_error_to_string : parse_error -> string

(** Serialize a bundle to its textual artifact. *)
val render : Bundle.t -> string

(** Read a bundle artifact back; errors carry a line/context message. *)
val parse : string -> (Bundle.t, string) result
