(** Target Evaluation Component (paper §V.C): matches the BDC's binary
    description against the EDC's environment description, probes
    candidate MPI stacks, applies the resolution model, and produces the
    prediction with its execution plan.

    Evaluation order follows the paper: ISA and C-library determinants
    first (fail fast), then MPI stack probing, then shared libraries with
    resolution. *)

type input = {
  config : Config.t;
  description : Description.t;
  binary_path : string option;
      (** the binary's location at the target, when it is present *)
  bundle : Bundle.t option;
  discovery : Discovery.t;
}

(** Compiler family of the binary, inferred from its .comment provenance;
    used to order candidate stacks so matching runtimes are preferred. *)
val binary_compiler_family : Description.t -> Feam_mpi.Compiler.family option

(** Candidate stacks: matching MPI implementation type only (§III.B),
    matching compiler family first. *)
val candidate_stacks :
  Description.t -> Discovery.t -> Discovery.discovered_stack list

(** Run the full evaluation. *)
val evaluate :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  input ->
  Predict.t
