(** Endian-aware byte codecs used by the ELF builder and reader. *)

exception Truncated of string

module Writer : sig
  type t

  val create : Types.endian -> t
  val length : t -> int
  val contents : t -> string
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int -> unit

  (** Class-dependent word: 32-bit field in ELF32, 64-bit in ELF64. *)
  val word : t -> Types.elf_class -> int -> unit

  val bytes : t -> string -> unit
  val zeros : t -> int -> unit

  (** Pad with zeros up to an absolute offset.
      @raise Invalid_argument when already past it. *)
  val pad_to : t -> int -> unit

  val align : t -> int -> unit
end

module Reader : sig
  type t

  val create : endian:Types.endian -> string -> t
  val length : t -> int
  val u8 : t -> int -> int
  val u16 : t -> int -> int
  val u32 : t -> int -> int
  val u64 : t -> int -> int
  val word : t -> Types.elf_class -> int -> int
  val word_size : Types.elf_class -> int
  val sub : t -> int -> int -> string

  (** NUL-terminated string starting at the offset.
      @raise Truncated when unterminated or out of bounds. *)
  val cstring : t -> int -> string
end
