(** Parses ELF images back into a {!Spec.t} plus section-level metadata.
    This is the only channel through which the migration framework and
    the dynamic-linker simulator see binaries. *)

type error =
  | Not_elf  (** missing \x7fELF magic *)
  | Unsupported of string  (** unknown class/endian/machine/type code *)
  | Malformed of string  (** structurally broken image *)

val error_to_string : error -> string

type section = {
  name : string;
  sh_type : int;
  sh_offset : int;
  sh_size : int;
  sh_link : int;
  sh_info : int;
  sh_addr : int;
}

type t

val spec : t -> Spec.t
val sections : t -> section list

(** Image size in bytes. *)
val size : t -> int

val section_by_name : t -> string -> section option

val parse : string -> (t, error) result

(** @raise Invalid_argument when {!parse} would return an error. *)
val parse_exn : string -> t

(** Convenience: parse and return just the spec. *)
val spec_of_bytes : string -> (Spec.t, error) result
