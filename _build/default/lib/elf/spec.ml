(* High-level description of an ELF object: exactly the information channel
   the migration framework reads through objdump/readelf.  {!Builder} turns
   a spec into real ELF bytes; {!Reader} recovers a spec from bytes. *)

(* One "Version References" block: versions required from one shared
   object, e.g. GLIBC_2.2.5 and GLIBC_2.3.4 required from libc.so.6. *)
type verneed = {
  vn_file : string;          (* soname of the supplying object *)
  vn_versions : string list; (* version names required from it *)
}

type t = {
  elf_class : Types.elf_class;
  endian : Types.endian;
  machine : Types.machine;
  file_type : Types.file_type;
  soname : string option;    (* DT_SONAME; present when the object is a shared library *)
  needed : string list;      (* DT_NEEDED entries, link order *)
  rpath : string option;     (* DT_RPATH *)
  runpath : string option;   (* DT_RUNPATH *)
  verneeds : verneed list;   (* .gnu.version_r *)
  verdefs : string list;     (* .gnu.version_d: version names defined by the object *)
  comments : string list;    (* .comment: toolchain provenance strings *)
  abi_note : (int * int * int) option; (* .note.ABI-tag: minimum kernel *)
  interp : string option;    (* PT_INTERP: the dynamic loader path *)
}

let make ?(file_type = Types.ET_EXEC) ?soname ?(needed = []) ?rpath ?runpath
    ?(verneeds = []) ?(verdefs = []) ?(comments = []) ?abi_note ?interp
    ?elf_class ?endian machine =
  let elf_class =
    match elf_class with Some c -> c | None -> Types.machine_class machine
  in
  let endian =
    match endian with Some e -> e | None -> Types.machine_endian machine
  in
  {
    elf_class;
    endian;
    machine;
    file_type;
    soname;
    needed;
    rpath;
    runpath;
    verneeds;
    verdefs;
    comments;
    abi_note;
    interp;
  }

let equal_verneed a b = a.vn_file = b.vn_file && a.vn_versions = b.vn_versions

let equal a b =
  a.elf_class = b.elf_class && a.endian = b.endian && a.machine = b.machine
  && a.file_type = b.file_type && a.soname = b.soname && a.needed = b.needed
  && a.rpath = b.rpath && a.runpath = b.runpath
  && List.length a.verneeds = List.length b.verneeds
  && List.for_all2 equal_verneed a.verneeds b.verneeds
  && a.verdefs = b.verdefs && a.comments = b.comments
  && a.abi_note = b.abi_note && a.interp = b.interp

(* All version names required from a given object, empty when none. *)
let versions_required_from t file =
  match List.find_opt (fun vn -> vn.vn_file = file) t.verneeds with
  | Some vn -> vn.vn_versions
  | None -> []

let is_shared_library t = t.soname <> None

let pp_verneed ppf vn =
  Fmt.pf ppf "@[<h>%s: %a@]" vn.vn_file
    Fmt.(list ~sep:(any ", ") string)
    vn.vn_versions

let pp ppf t =
  Fmt.pf ppf
    "@[<v>class: %a@ endian: %a@ machine: %a@ type: %a@ soname: %a@ needed: \
     %a@ rpath: %a@ runpath: %a@ verneeds: %a@ verdefs: %a@ comments: %a@]"
    Types.pp_class t.elf_class Types.pp_endian t.endian Types.pp_machine
    t.machine Types.pp_file_type t.file_type
    Fmt.(option ~none:(any "-") string)
    t.soname
    Fmt.(list ~sep:(any ", ") string)
    t.needed
    Fmt.(option ~none:(any "-") string)
    t.rpath
    Fmt.(option ~none:(any "-") string)
    t.runpath
    Fmt.(list ~sep:(any "; ") pp_verneed)
    t.verneeds
    Fmt.(list ~sep:(any ", ") string)
    t.verdefs
    Fmt.(list ~sep:(any " | ") string)
    t.comments
