lib/elf/reader.ml: Char Codec List Printf Result Spec String Types
