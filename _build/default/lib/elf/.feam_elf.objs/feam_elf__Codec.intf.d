lib/elf/codec.mli: Types
