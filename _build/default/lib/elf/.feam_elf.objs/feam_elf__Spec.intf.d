lib/elf/spec.mli: Fmt Types
