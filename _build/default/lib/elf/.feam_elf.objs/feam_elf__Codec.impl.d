lib/elf/codec.ml: Buffer Char Printf String Types
