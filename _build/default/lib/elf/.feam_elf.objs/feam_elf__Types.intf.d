lib/elf/types.mli: Fmt
