lib/elf/builder.ml: Buffer Codec List Option Spec String Types
