lib/elf/spec.ml: Fmt List Types
