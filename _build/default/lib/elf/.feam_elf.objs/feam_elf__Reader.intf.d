lib/elf/reader.mli: Spec
