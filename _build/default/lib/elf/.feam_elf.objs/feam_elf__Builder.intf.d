lib/elf/builder.mli: Spec
