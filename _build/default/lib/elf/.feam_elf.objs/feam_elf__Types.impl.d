lib/elf/types.ml: Char Fmt String
