(** Serializes a {!Spec.t} into a real ELF image.

    The emitted bytes follow the genuine on-disk encoding: ELF header,
    section bodies (.note.ABI-tag, .dynstr, .gnu.version_r/_d, .dynamic,
    .comment, .shstrtab) and the section header table, in the selected
    class and endianness.  No program headers are emitted: everything the
    framework and the dynamic-linker simulator read is section-level
    metadata, which is also all `objdump -p` needs. *)

(** Virtual base address given to allocated sections. *)
val image_base : int

(** [build spec] renders the spec as ELF bytes; the result parses back
    with {!Reader.parse} to an equal spec. *)
val build : Spec.t -> string
