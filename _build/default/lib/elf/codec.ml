(* Endian-aware byte codecs used by the ELF builder and reader. *)

exception Truncated of string

module Writer = struct
  type t = { buf : Buffer.t; endian : Types.endian }

  let create endian = { buf = Buffer.create 1024; endian }

  let length t = Buffer.length t.buf

  let contents t = Buffer.contents t.buf

  let u8 t v = Buffer.add_char t.buf (Char.chr (v land 0xff))

  let u16 t v =
    match t.endian with
    | Types.LE ->
      u8 t (v land 0xff);
      u8 t ((v lsr 8) land 0xff)
    | Types.BE ->
      u8 t ((v lsr 8) land 0xff);
      u8 t (v land 0xff)

  let u32 t v =
    match t.endian with
    | Types.LE ->
      u16 t (v land 0xffff);
      u16 t ((v lsr 16) land 0xffff)
    | Types.BE ->
      u16 t ((v lsr 16) land 0xffff);
      u16 t (v land 0xffff)

  let u64 t v =
    (* OCaml ints are 63-bit; file offsets here stay far below 2^62. *)
    match t.endian with
    | Types.LE ->
      u32 t (v land 0xffffffff);
      u32 t ((v lsr 32) land 0xffffffff)
    | Types.BE ->
      u32 t ((v lsr 32) land 0xffffffff);
      u32 t (v land 0xffffffff)

  (* Class-dependent word: 32-bit field in ELF32, 64-bit in ELF64. *)
  let word t cls v =
    match cls with Types.C32 -> u32 t v | Types.C64 -> u64 t v

  let bytes t s = Buffer.add_string t.buf s

  let zeros t n = Buffer.add_string t.buf (String.make n '\000')

  let pad_to t off =
    let cur = length t in
    if cur > off then invalid_arg "Codec.Writer.pad_to: already past offset";
    zeros t (off - cur)

  let align t n =
    let cur = length t in
    let rem = cur mod n in
    if rem <> 0 then zeros t (n - rem)
end

module Reader = struct
  type t = { data : string; endian : Types.endian }

  let create ~endian data = { data; endian }

  let length t = String.length t.data

  let check t off n =
    if off < 0 || n < 0 || off + n > String.length t.data then
      raise (Truncated (Printf.sprintf "read of %d bytes at offset %d (size %d)" n off (String.length t.data)))

  let u8 t off =
    check t off 1;
    Char.code t.data.[off]

  let u16 t off =
    check t off 2;
    let a = Char.code t.data.[off] and b = Char.code t.data.[off + 1] in
    match t.endian with Types.LE -> a lor (b lsl 8) | Types.BE -> (a lsl 8) lor b

  let u32 t off =
    check t off 4;
    match t.endian with
    | Types.LE -> u16 t off lor (u16 t (off + 2) lsl 16)
    | Types.BE -> (u16 t off lsl 16) lor u16 t (off + 2)

  let u64 t off =
    check t off 8;
    match t.endian with
    | Types.LE -> u32 t off lor (u32 t (off + 4) lsl 32)
    | Types.BE -> (u32 t off lsl 32) lor u32 t (off + 4)

  let word t cls off =
    match cls with Types.C32 -> u32 t off | Types.C64 -> u64 t off

  let word_size = function Types.C32 -> 4 | Types.C64 -> 8

  let sub t off n =
    check t off n;
    String.sub t.data off n

  (* NUL-terminated string starting at [off]. *)
  let cstring t off =
    check t off 0;
    let rec find i =
      if i >= String.length t.data then
        raise (Truncated (Printf.sprintf "unterminated string at offset %d" off))
      else if t.data.[i] = '\000' then i
      else find (i + 1)
    in
    let e = find off in
    String.sub t.data off (e - off)
end
