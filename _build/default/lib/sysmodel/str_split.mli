(** String helpers missing from the standard library. *)

(** Split on a multi-character separator.
    @raise Invalid_argument on an empty separator. *)
val split_on_string : sep:string -> string -> string list

(** Does the string contain the substring? *)
val contains : sub:string -> string -> bool
