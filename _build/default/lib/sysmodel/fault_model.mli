(** The stochastic fault model of a simulated site: the error classes the
    paper's evaluation attributes to the environment rather than to any
    determinant FEAM can check (§VI.C "system errors", plus ABI
    subtleties of staged library copies).

    Part of the site, so every run there — the ground-truth executor and
    FEAM's probes — sees the same world.  All draws are keyed and seeded:
    stochastic but reproducible. *)

type t = {
  p_transient : float;
      (** per-attempt transient system error (overcome by retries) *)
  p_sticky : float;
      (** per-migration sticky system error outlasting retries *)
  p_copy_abi : float;
      (** global scale on each library's provenance-recorded copy-ABI
          fragility (1.0 = as-is) *)
}

(** Realistic defaults, calibrated against the paper's evaluation. *)
val default : t

(** A fault-free world: demos and deterministic tests. *)
val none : t
