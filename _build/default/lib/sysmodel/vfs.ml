(* Virtual filesystem of a simulated computing site.

   Stores regular files (ELF images, scripts, plain text) and symlinks
   under absolute, normalized paths.  Directories are implicit: a
   directory exists when some file lives below it.  File contents of ELF
   images are real bytes produced by {!Feam_elf.Builder}; [declared_size]
   carries the realistic on-disk size (megabytes for shared libraries)
   used for bundle-size accounting, independent of the metadata image's
   actual length. *)

type kind =
  | Elf of string     (* ELF image bytes *)
  | Script of string  (* executable text: wrappers, submission scripts *)
  | Text of string    (* /etc/redhat-release, module files, ... *)
  | Symlink of string (* absolute or relative target *)

type file = { kind : kind; declared_size : int }

type t = { mutable files : (string, file) Hashtbl.t }

let create () = { files = Hashtbl.create 256 }

let copy t = { files = Hashtbl.copy t.files }

(* Normalize an absolute path: collapse "//" and trailing "/", resolve
   "." and ".." textually. *)
let normalize path =
  if path = "" || path.[0] <> '/' then
    invalid_arg (Printf.sprintf "Vfs: path must be absolute: %S" path);
  let parts = String.split_on_char '/' path in
  let stack =
    List.fold_left
      (fun stack part ->
        match part with
        | "" | "." -> stack
        | ".." -> ( match stack with [] -> [] | _ :: rest -> rest)
        | p -> p :: stack)
      [] parts
  in
  "/" ^ String.concat "/" (List.rev stack)

let dirname path =
  match String.rindex_opt path '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub path 0 i

let basename path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let default_size kind =
  match kind with
  | Elf bytes -> String.length bytes
  | Script s | Text s -> String.length s
  | Symlink _ -> 0

let add ?declared_size t path kind =
  let path = normalize path in
  let declared_size =
    match declared_size with Some s -> s | None -> default_size kind
  in
  Hashtbl.replace t.files path { kind; declared_size }

let remove t path = Hashtbl.remove t.files (normalize path)

(* Resolve symlinks (bounded depth to terminate on cycles). *)
let rec resolve ?(depth = 16) t path =
  if depth = 0 then None
  else
    let path = normalize path in
    match Hashtbl.find_opt t.files path with
    | Some { kind = Symlink target; _ } ->
      let target =
        if String.length target > 0 && target.[0] = '/' then target
        else dirname path ^ "/" ^ target
      in
      resolve ~depth:(depth - 1) t target
    | Some f -> Some (path, f)
    | None -> None

let find t path = Option.map snd (resolve t path)

let exists t path = find t path <> None

let kind_of t path = Option.map (fun f -> f.kind) (find t path)

(* Size in bytes as `du` would report it. *)
let file_size t path =
  match find t path with Some f -> Some f.declared_size | None -> None

let is_dir t path =
  let path = normalize path in
  let prefix = if path = "/" then "/" else path ^ "/" in
  Hashtbl.fold
    (fun p _ acc -> acc || String.starts_with ~prefix p)
    t.files false

(* Direct children names of a directory (files and subdirectories). *)
let list_dir t path =
  let path = normalize path in
  let prefix = if path = "/" then "/" else path ^ "/" in
  let plen = String.length prefix in
  let children = Hashtbl.create 16 in
  Hashtbl.iter
    (fun p _ ->
      if String.starts_with ~prefix p && String.length p > plen then begin
        let rest = String.sub p plen (String.length p - plen) in
        let child =
          match String.index_opt rest '/' with
          | Some i -> String.sub rest 0 i
          | None -> rest
        in
        Hashtbl.replace children child ()
      end)
    t.files;
  Hashtbl.fold (fun c () acc -> c :: acc) children [] |> List.sort String.compare

(* All file paths, sorted: the `locate` database view. *)
let all_paths t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.files [] |> List.sort String.compare

(* Paths whose basename matches [pred]. *)
let find_by_basename t pred =
  all_paths t |> List.filter (fun p -> pred (basename p))

(* Paths under [dir] whose basename matches [pred]: `find dir -name`. *)
let find_under t dir pred =
  let dir = normalize dir in
  let prefix = if dir = "/" then "/" else dir ^ "/" in
  all_paths t
  |> List.filter (fun p -> String.starts_with ~prefix p && pred (basename p))

(* Remove a whole subtree: `rm -rf`. *)
let remove_tree t dir =
  let dir = normalize dir in
  let prefix = if dir = "/" then "/" else dir ^ "/" in
  let doomed =
    Hashtbl.fold
      (fun p _ acc ->
        if String.starts_with ~prefix p || p = dir then p :: acc else acc)
      t.files []
  in
  List.iter (Hashtbl.remove t.files) doomed

(* Total declared size below a directory: `du -s`. *)
let du t dir =
  let dir = normalize dir in
  let prefix = if dir = "/" then "/" else dir ^ "/" in
  Hashtbl.fold
    (fun p f acc ->
      if String.starts_with ~prefix p || p = dir then acc + f.declared_size
      else acc)
    t.files 0
