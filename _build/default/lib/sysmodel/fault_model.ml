(* The stochastic fault model of a simulated site: the error classes the
   paper's evaluation attributes to the environment rather than to any
   determinant FEAM can check (§VI.C "system errors", plus the ABI
   subtleties of staged library copies).

   The model is part of the site so that every run at that site — the
   ground-truth executor, FEAM's probes — sees the same world.  All draws
   are keyed and seeded: the world is stochastic but reproducible. *)

type t = {
  (* per-attempt transient system error (overcome by the retry policy) *)
  p_transient : float;
  (* per-migration sticky system error: an overloaded or broken service
     window that outlasts retries *)
  p_sticky : float;
  (* global scale on each library's provenance-recorded copy-ABI
     fragility (1.0 = use the per-library value as-is) *)
  p_copy_abi : float;
}

(* Realistic defaults, calibrated with the paper's evaluation. *)
let default = { p_transient = 0.01; p_sticky = 0.008; p_copy_abi = 1.0 }

(* A fault-free world: demos and deterministic tests. *)
let none = { p_transient = 0.0; p_sticky = 0.0; p_copy_abi = 0.0 }
