(* Split a string on a multi-character separator (Stdlib only splits on
   single characters). *)

let split_on_string ~sep s =
  if sep = "" then invalid_arg "Str_split.split_on_string: empty separator";
  let seplen = String.length sep in
  let n = String.length s in
  let rec go start acc =
    let rec find i =
      if i + seplen > n then None
      else if String.sub s i seplen = sep then Some i
      else find (i + 1)
    in
    match find start with
    | None -> List.rev (String.sub s start (n - start) :: acc)
    | Some i -> go (i + seplen) (String.sub s start (i - start) :: acc)
  in
  go 0 []

let contains ~sub s =
  match split_on_string ~sep:sub s with [ _ ] -> false | _ -> true
