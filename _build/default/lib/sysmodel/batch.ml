(* Batch-system model: queue characteristics and the user-supplied
   submission scripts.  The submission format is "the only information
   about a new site our methods require the user to determine" (paper
   §V); FEAM runs its probes through these scripts, and queue waits are
   what the simulated clock charges for each probe run. *)

type system = Pbs | Sge | Slurm

type queue = {
  queue_name : string;
  (* Seconds of queue wait charged per submitted job. *)
  wait_seconds : float;
}

type t = {
  system : system;
  queues : queue list;       (* first entry is the default/debug queue *)
  serial_template : string;  (* submission script template, serial jobs *)
  parallel_template : string;(* submission script template, MPI jobs *)
}

let system_name = function Pbs -> "PBS" | Sge -> "SGE" | Slurm -> "SLURM"

let default_templates system =
  match system with
  | Pbs ->
    ( "#!/bin/sh\n#PBS -q %queue%\n#PBS -l nodes=1\n%command%\n",
      "#!/bin/sh\n#PBS -q %queue%\n#PBS -l nodes=%nodes%\n%launcher% -n %np% %command%\n" )
  | Sge ->
    ( "#!/bin/sh\n#$ -q %queue%\n%command%\n",
      "#!/bin/sh\n#$ -q %queue%\n#$ -pe mpi %np%\n%launcher% -n %np% %command%\n" )
  | Slurm ->
    ( "#!/bin/sh\n#SBATCH -p %queue%\n%command%\n",
      "#!/bin/sh\n#SBATCH -p %queue%\n#SBATCH -n %np%\nsrun %command%\n" )

let make ?serial_template ?parallel_template ~queues system =
  if queues = [] then invalid_arg "Batch.make: need at least one queue";
  let default_serial, default_parallel = default_templates system in
  {
    system;
    queues;
    serial_template = Option.value serial_template ~default:default_serial;
    parallel_template = Option.value parallel_template ~default:default_parallel;
  }

let debug_queue t = List.hd t.queues

let queue_by_name t name =
  List.find_opt (fun q -> q.queue_name = name) t.queues

(* Expand a submission template. *)
let render_script template ~queue ~launcher ~np ~command =
  let substitutions =
    [
      ("%queue%", queue.queue_name);
      ("%launcher%", launcher);
      ("%np%", string_of_int np);
      ("%nodes%", string_of_int (max 1 (np / 8)));
      ("%command%", command);
    ]
  in
  List.fold_left
    (fun acc (key, value) ->
      (* simple textual substitution; keys never overlap *)
      let parts = Str_split.split_on_string ~sep:key acc in
      String.concat value parts)
    template substitutions
