(** User-environment management tools: Environment Modules and SoftEnv.
    The EDC consults these to discover which MPI stacks a site offers and
    which stack a shell currently has loaded (paper §V.B). *)

(** Registered module names: one per registered MPI stack plus one per
    native compiler suite. *)
val available_modules : Site.t -> string list

(** `module avail` / softenv listing text; [None] when the site has no
    user-environment management tool. *)
val render_avail : Site.t -> string option

(** Tool configuration paths the EDC's presence probes check. *)
val config_paths : Site.t -> string list

(** Materialize the tool's configuration files into the site filesystem
    (done by provisioning). *)
val provision : Site.t -> unit

(** Load a stack's module into an environment: prepend its bin/lib
    directories to PATH / LD_LIBRARY_PATH and record it as loaded. *)
val load_stack : Env.t -> Stack_install.t -> Env.t

(** `module list` contents of an environment. *)
val loaded_modules : Env.t -> string list

(** The stack install a session currently has loaded: modules listing
    first, PATH inspection as fallback — the paper's two mechanisms. *)
val current_stack : Site.t -> Env.t -> Stack_install.t option
