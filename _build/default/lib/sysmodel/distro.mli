(** Linux distribution model: what /proc/version and /etc/*release say
    (the EDC's OS-identification channels, paper §V.B), plus the default
    library locations the search fallbacks scan. *)

type flavor = Centos | Rhel | Sles

type t

val make : flavor -> version:Feam_util.Version.t -> kernel:Feam_util.Version.t -> t
val flavor : t -> flavor
val version : t -> Feam_util.Version.t
val kernel : t -> Feam_util.Version.t
val flavor_name : flavor -> string
val name : t -> string

(** Path and contents of the release file the EDC consults. *)
val release_file : t -> string * string

(** Contents of /proc/version. *)
val proc_version : t -> machine:Feam_elf.Types.machine -> string

(** Default system library directories by word size, in search order —
    the "common library locations" of paper §V.A. *)
val default_lib_dirs : bits:[ `B32 | `B64 ] -> string list

(** Kernel version triple for .note.ABI-tag. *)
val kernel_triple : t -> int * int * int

val pp : t Fmt.t
