(** Simulated durations of site operations, in seconds, charged to a
    {!Feam_util.Sim_clock} (paper §VI.C timing). *)

val tool_call : float
val ldd_call : float
val locate_query : float
val find_walk : float
val module_query : float
val compile_serial : float
val compile_mpi : float
val probe_run_serial : float
val probe_run_mpi : float
val copy_per_mb : float
val bundle_pack_base : float

(** Charge a duration to an optional clock (no-op on [None]). *)
val charge : Feam_util.Sim_clock.t option -> float -> unit
