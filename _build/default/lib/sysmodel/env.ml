(* Shell environment of a simulated site session: variable map plus
   helpers for the colon-separated path variables the resolution model
   manipulates (PATH, LD_LIBRARY_PATH). *)

module M = Map.Make (String)

type t = string M.t

let empty : t = M.empty

let get t name = M.find_opt name t

let get_or t name ~default = Option.value (get t name) ~default

let set t name value = M.add name value t

let unset t name = M.remove name t

let bindings t = M.bindings t

let of_list l = List.fold_left (fun t (k, v) -> set t k v) empty l

(* Split a colon-separated path list, dropping empty components. *)
let split_paths value =
  String.split_on_char ':' value |> List.filter (fun s -> s <> "")

let paths t name =
  match get t name with None -> [] | Some v -> split_paths v

(* Prepend a directory to a path variable (the resolution model makes
   library copies visible this way, paper §IV). *)
let prepend_path t name dir =
  match get t name with
  | None | Some "" -> set t name dir
  | Some v -> set t name (dir ^ ":" ^ v)

let append_path t name dir =
  match get t name with
  | None | Some "" -> set t name dir
  | Some v -> set t name (v ^ ":" ^ dir)

let ld_library_path t = paths t "LD_LIBRARY_PATH"

let path t = paths t "PATH"

(* Render as `env` would print it. *)
let to_string t =
  bindings t
  |> List.map (fun (k, v) -> k ^ "=" ^ v)
  |> String.concat "\n"
