(* One MPI stack installed at a site: the stack definition plus where it
   lives and whether it actually works.  The paper found that advertised
   stack combinations can be unusable due to administrator
   misconfiguration (§III.B); [health] models that. *)

open Feam_mpi

type health =
  | Functioning
  (* Advertised but broken: no program launches under this stack.  The
     cause strings mirror the paper's examples (updated compiler,
     reconfigured network, ...). *)
  | Misconfigured of string
  (* Works for natively compiled programs but breaks foreign binaries
     built with particular implementation versions: the ABI and
     floating-point defects that only the extended prediction's
     shipped hello-world probes can detect (§VI.C). *)
  | Foreign_binary_defect of foreign_defect

and foreign_defect = {
  (* Binaries built with these implementation major.minor versions fail. *)
  affected_build_versions : Feam_util.Version.t list;
  symptom : [ `Abi_incompatibility | `Floating_point_error ];
}

type t = {
  stack : Stack.t;
  prefix : string;   (* install prefix, e.g. /opt/openmpi-1.4.3-intel *)
  health : health;
  registered : bool; (* appears in the user-environment management tool *)
  (* Whether the implementation was installed with static libraries
     (.a archives): without them, users cannot prepare statically
     linked binaries for migration (paper SVI.C). *)
  static_libs : bool;
}

let make ?(health = Functioning) ?(registered = true) ?(static_libs = false)
    ~prefix stack =
  { stack; prefix; health; registered; static_libs }

let stack t = t.stack
let prefix t = t.prefix
let health t = t.health
let registered t = t.registered
let static_libs t = t.static_libs

let lib_dir t = t.prefix ^ "/lib"
let bin_dir t = t.prefix ^ "/bin"

let module_name t = Stack.slug t.stack

(* Does a natively compiled program launch under this stack? *)
let launches_native t =
  match t.health with
  | Functioning | Foreign_binary_defect _ -> true
  | Misconfigured _ -> false

(* Does a foreign binary built with [build_version] of the same
   implementation launch under this stack (library-resolution aside)? *)
let accepts_foreign_build t ~build_version =
  match t.health with
  | Functioning -> Ok ()
  | Misconfigured why -> Error (`Misconfigured why)
  | Foreign_binary_defect d ->
    if List.exists (Feam_util.Version.equal build_version) d.affected_build_versions
    then Error (`Defect d.symptom)
    else Ok ()
