(** One MPI stack installed at a site: the stack definition plus where it
    lives and whether it actually works.  Advertised stacks can be
    unusable due to administrator misconfiguration (paper §III.B), or
    carry defects only foreign binaries hit (§VI.C). *)

type health =
  | Functioning
  | Misconfigured of string
      (** advertised but broken: no program launches under it *)
  | Foreign_binary_defect of foreign_defect
      (** natively compiled programs work; foreign binaries built with
          particular implementation versions fail — detectable only by
          the extended prediction's shipped probes *)

and foreign_defect = {
  affected_build_versions : Feam_util.Version.t list;
  symptom : [ `Abi_incompatibility | `Floating_point_error ];
}

type t

val make :
  ?health:health ->
  ?registered:bool ->
  ?static_libs:bool ->
  prefix:string ->
  Feam_mpi.Stack.t ->
  t

val stack : t -> Feam_mpi.Stack.t
val prefix : t -> string
val health : t -> health

(** Appears in the site's user-environment management tool. *)
val registered : t -> bool

(** Installed with static libraries (.a archives): only then can users
    prepare statically linked binaries for migration (paper SVI.C). *)
val static_libs : t -> bool

val lib_dir : t -> string
val bin_dir : t -> string

(** The module/softenv key name ("openmpi-1.4-gnu"). *)
val module_name : t -> string

(** Does a natively compiled program launch under this stack? *)
val launches_native : t -> bool

(** Does a foreign binary built with [build_version] of the same
    implementation launch (library resolution aside)? *)
val accepts_foreign_build :
  t ->
  build_version:Feam_util.Version.t ->
  ( unit,
    [ `Misconfigured of string
    | `Defect of [ `Abi_incompatibility | `Floating_point_error ] ] )
  result
