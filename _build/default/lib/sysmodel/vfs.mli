(** Virtual filesystem of a simulated computing site.

    Regular files (ELF images, scripts, plain text) and symlinks live
    under absolute, normalized paths; directories are implicit.  ELF
    contents are real bytes; [declared_size] carries the realistic
    on-disk size used for bundle accounting, independent of the metadata
    image's length. *)

type kind =
  | Elf of string  (** ELF image bytes *)
  | Script of string  (** executable text: wrappers, submission scripts *)
  | Text of string  (** /etc files, module files, ... *)
  | Symlink of string  (** absolute or relative target *)

type file = { kind : kind; declared_size : int }

type t

val create : unit -> t
val copy : t -> t

(** Normalize an absolute path (collapse "//", resolve "." and "..").
    @raise Invalid_argument on relative paths. *)
val normalize : string -> string

val dirname : string -> string
val basename : string -> string

(** Add or replace a file.  [declared_size] defaults to the content
    length (ELF image size / text length). *)
val add : ?declared_size:int -> t -> string -> kind -> unit

val remove : t -> string -> unit

(** Resolve symlinks (bounded depth; cycles yield [None]); returns the
    real path and the file. *)
val resolve : ?depth:int -> t -> string -> (string * file) option

val find : t -> string -> file option
val exists : t -> string -> bool
val kind_of : t -> string -> kind option

(** Declared size, as `du` would report for one file. *)
val file_size : t -> string -> int option

val is_dir : t -> string -> bool

(** Direct children names of a directory, sorted. *)
val list_dir : t -> string -> string list

(** All file paths, sorted: the `locate` database view. *)
val all_paths : t -> string list

(** Paths whose basename satisfies the predicate. *)
val find_by_basename : t -> (string -> bool) -> string list

(** Paths under a directory whose basename satisfies the predicate
    (`find DIR -name`). *)
val find_under : t -> string -> (string -> bool) -> string list

(** Remove a whole subtree (`rm -rf`). *)
val remove_tree : t -> string -> unit

(** Total declared size below a directory (`du -s`). *)
val du : t -> string -> int
