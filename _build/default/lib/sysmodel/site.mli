(** A simulated computing site: everything the paper's Table II records
    about an environment, backed by a virtual filesystem holding real ELF
    images for every installed library.

    Sites are the unit both FEAM and the ground-truth executor operate
    on; neither sees simulator internals directly — FEAM goes through the
    tool emulations, the executor through real dynamic-linker search
    semantics. *)

type modules_flavor = Environment_modules | Softenv | No_tool

type t

val make :
  ?description:string ->
  ?tools:Tools.t ->
  ?modules_flavor:modules_flavor ->
  ?compilers:Feam_mpi.Compiler.t list ->
  ?base_env:Env.t ->
  ?seed:int ->
  ?fault_model:Fault_model.t ->
  machine:Feam_elf.Types.machine ->
  distro:Distro.t ->
  glibc:Feam_util.Version.t ->
  interconnect:Feam_mpi.Interconnect.t ->
  batch:Batch.t ->
  string ->
  t

val name : t -> string
val description : t -> string
val machine : t -> Feam_elf.Types.machine
val distro : t -> Distro.t
val glibc : t -> Feam_util.Version.t
val interconnect : t -> Feam_mpi.Interconnect.t
val vfs : t -> Vfs.t
val base_env : t -> Env.t
val tools : t -> Tools.t
val stack_installs : t -> Stack_install.t list
val modules_flavor : t -> modules_flavor
val compilers : t -> Feam_mpi.Compiler.t list
val batch : t -> Batch.t
val seed : t -> int
val fault_model : t -> Fault_model.t
val elf_class : t -> Feam_elf.Types.elf_class
val bits : t -> [ `B32 | `B64 ]
val add_stack_install : t -> Stack_install.t -> unit

(** Extra directories registered in /etc/ld.so.conf: compiler runtime
    locations the administrator added. *)
val ld_conf_dirs : t -> string list

(** The directories the dynamic loader actually consults: the registered
    ones only while the cache is current. *)
val ld_cache_dirs : t -> string list

(** Whether ld.so.cache reflects ld.so.conf (an administrator who forgot
    ldconfig leaves libraries on disk but invisible to the loader). *)
val ld_cache_current : t -> bool

val set_ld_cache_current : t -> bool -> unit

val add_ld_conf_dir : t -> string -> unit
val find_stack_install : t -> slug:string -> Stack_install.t option

(** System default library directories for this site's word size. *)
val default_lib_dirs : t -> string list

val compiler_of_family :
  t -> Feam_mpi.Compiler.family -> Feam_mpi.Compiler.t option

(** Per-coordinate deterministic randomness for this site (draws are
    keyed by site name and seed). *)
val keyed_bool : t -> p:float -> string -> bool

val pp : t Fmt.t
