(* A simulated computing site: everything the paper's Table II records
   about a target environment, backed by a virtual filesystem that holds
   real ELF images for every installed shared library.

   A site is the unit both FEAM and the ground-truth executor operate on;
   neither ever sees simulator internals directly — FEAM goes through the
   tool emulations in {!Utilities}, the executor through the dynamic
   linker's search semantics. *)

open Feam_util
open Feam_mpi

type modules_flavor = Environment_modules | Softenv | No_tool

type t = {
  name : string;
  description : string; (* e.g. "MPP - 62,976 CPUs" *)
  machine : Feam_elf.Types.machine;
  distro : Distro.t;
  glibc : Version.t;
  interconnect : Interconnect.t;
  vfs : Vfs.t;
  base_env : Env.t;
  tools : Tools.t;
  mutable stack_installs : Stack_install.t list;
  (* Extra directories in the dynamic linker's cache (/etc/ld.so.conf):
     compiler runtime locations registered by the administrator. *)
  mutable ld_conf_dirs : string list;
  (* Whether ld.so.cache reflects ld.so.conf: administrators sometimes
     register a directory but forget to run ldconfig, leaving libraries
     on disk yet invisible to the loader. *)
  mutable ld_cache_current : bool;
  modules_flavor : modules_flavor;
  compilers : Compiler.t list; (* natively installed compiler suites *)
  batch : Batch.t;
  seed : int; (* per-site stochastic stream for transient system errors *)
  fault_model : Fault_model.t;
}

let make ?(description = "") ?(tools = Tools.full)
    ?(modules_flavor = Environment_modules) ?(compilers = []) ?(base_env = Env.empty)
    ?(seed = 0) ?(fault_model = Fault_model.default) ~machine ~distro ~glibc
    ~interconnect ~batch name =
  {
    name;
    description;
    machine;
    distro;
    glibc;
    interconnect;
    vfs = Vfs.create ();
    base_env;
    tools;
    stack_installs = [];
    ld_conf_dirs = [];
    ld_cache_current = true;
    modules_flavor;
    compilers;
    batch;
    seed;
    fault_model;
  }

let name t = t.name
let description t = t.description
let machine t = t.machine
let distro t = t.distro
let glibc t = t.glibc
let interconnect t = t.interconnect
let vfs t = t.vfs
let base_env t = t.base_env
let tools t = t.tools
let stack_installs t = t.stack_installs
let modules_flavor t = t.modules_flavor
let compilers t = t.compilers
let batch t = t.batch
let seed t = t.seed
let fault_model t = t.fault_model

let elf_class t = Feam_elf.Types.machine_class t.machine

let bits t = match elf_class t with Feam_elf.Types.C64 -> `B64 | Feam_elf.Types.C32 -> `B32

let add_stack_install t install =
  t.stack_installs <- t.stack_installs @ [ install ]

(* Directories the dynamic loader actually consults: the registered ones
   only when the cache has been rebuilt. *)
let ld_cache_dirs t = if t.ld_cache_current then t.ld_conf_dirs else []

let ld_conf_dirs t = t.ld_conf_dirs

let ld_cache_current t = t.ld_cache_current

let set_ld_cache_current t v = t.ld_cache_current <- v

let add_ld_conf_dir t dir =
  if not (List.mem dir t.ld_conf_dirs) then
    t.ld_conf_dirs <- t.ld_conf_dirs @ [ dir ]

let find_stack_install t ~slug =
  List.find_opt (fun i -> Stack.slug (Stack_install.stack i) = slug) t.stack_installs

(* System default library directories for this site's word size. *)
let default_lib_dirs t = Distro.default_lib_dirs ~bits:(bits t)

(* Installed compiler of a family, if any. *)
let compiler_of_family t family =
  List.find_opt (fun c -> Compiler.family_equal (Compiler.family c) family) t.compilers

(* Per-coordinate deterministic randomness for this site. *)
let keyed_bool t ~p key = Prng.keyed_bool ~seed:t.seed ~p (t.name ^ "/" ^ key)

let pp ppf t =
  Fmt.pf ppf "%s (%s, %s, glibc %a, %s)" t.name
    (Feam_elf.Types.machine_uname t.machine)
    (Distro.name t.distro) Version.pp t.glibc
    (Interconnect.name t.interconnect)
