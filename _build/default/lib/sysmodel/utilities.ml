(* Emulation of the standard Unix utilities FEAM composes (paper §V):
   objdump, readelf, uname, locate, find, plus /proc and /etc reads.

   Each emulation reads only the site's virtual filesystem and renders
   output in the real tool's text format; the framework components parse
   that text, exactly as the real implementation shells out and parses.
   When the site's {!Tools} record says a tool is absent, the emulation
   returns [Error `Tool_unavailable] and the framework must fall back. *)

open Feam_util

type error =
  [ `Tool_unavailable of string
  | `No_such_file of string
  | `Not_elf of string ]

let error_to_string = function
  | `Tool_unavailable t -> Printf.sprintf "%s: command not found" t
  | `No_such_file p -> Printf.sprintf "%s: No such file or directory" p
  | `Not_elf p -> Printf.sprintf "%s: file format not recognized" p

(* objdump-style format descriptor for a parsed ELF. *)
let file_format_string (spec : Feam_elf.Spec.t) =
  let open Feam_elf.Types in
  match (spec.machine, spec.elf_class) with
  | X86_64, _ -> "elf64-x86-64"
  | I386, _ -> "elf32-i386"
  | PPC64, _ -> "elf64-powerpc"
  | PPC, _ -> "elf32-powerpc"
  | SPARCV9, _ -> "elf64-sparc"
  | SPARC, _ -> "elf32-sparc"
  | IA64, _ -> "elf64-ia64-little"

let read_elf_bytes site path =
  match Vfs.find (Site.vfs site) path with
  | None -> Error (`No_such_file path)
  | Some { Vfs.kind = Vfs.Elf bytes; _ } -> Ok bytes
  | Some _ -> Error (`Not_elf path)

let parse_elf site path =
  match read_elf_bytes site path with
  | Error _ as e -> e
  | Ok bytes -> (
    match Feam_elf.Reader.parse bytes with
    | Ok t -> Ok t
    | Error _ -> Error (`Not_elf path))

(* `objdump -p PATH`: file format line, Dynamic Section, Version
   References and Version definitions — the BDC's primary information
   source. *)
let objdump_p ?clock site path =
  if not (Site.tools site).Tools.objdump then
    Error (`Tool_unavailable "objdump")
  else begin
    Cost.charge clock Cost.tool_call;
    match parse_elf site path with
    | Error _ as e -> e
    | Ok parsed ->
      let spec = Feam_elf.Reader.spec parsed in
      let buf = Buffer.create 512 in
      let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      addf "%s:     file format %s\n\n" path (file_format_string spec);
      (match spec.Feam_elf.Spec.interp with
      | Some interp ->
        addf "Program Header:\n";
        addf "    INTERP off    0x0000000000000200 vaddr 0x0000000000400200\n";
        addf "      [Requesting program interpreter: %s]\n\n" interp
      | None -> ());
      addf "Dynamic Section:\n";
      List.iter (fun dep -> addf "  NEEDED               %s\n" dep) spec.needed;
      Option.iter (fun s -> addf "  SONAME               %s\n" s) spec.soname;
      Option.iter (fun s -> addf "  RPATH                %s\n" s) spec.rpath;
      Option.iter (fun s -> addf "  RUNPATH              %s\n" s) spec.runpath;
      addf "  STRTAB               0x%x\n" 0x400000;
      addf "  STRSZ                0x%x\n" 0x100;
      if spec.verdefs <> [] then begin
        addf "\nVersion definitions:\n";
        List.iteri
          (fun i name ->
            addf "%d 0x%02x 0x%08x %s\n" (i + 1)
              (if i = 0 then 1 else 0)
              (Feam_elf.Types.elf_hash name) name)
          spec.verdefs
      end;
      if spec.verneeds <> [] then begin
        addf "\nVersion References:\n";
        List.iter
          (fun vn ->
            addf "  required from %s:\n" vn.Feam_elf.Spec.vn_file;
            List.iteri
              (fun j v ->
                addf "    0x%08x 0x00 %02d %s\n" (Feam_elf.Types.elf_hash v)
                  (j + 2) v)
              vn.Feam_elf.Spec.vn_versions)
          spec.verneeds
      end;
      Ok (Buffer.contents buf)
  end

(* `file PATH`: always available (file(1) is ubiquitous); the BDC's
   fallback for format/ISA identification when objdump is absent. *)
let file_cmd ?clock site path =
  Cost.charge clock Cost.tool_call;
  match Vfs.find (Site.vfs site) path with
  | None -> Error (`No_such_file path)
  | Some { Vfs.kind = Vfs.Script _; _ } ->
    Ok (path ^ ": POSIX shell script text executable")
  | Some { Vfs.kind = Vfs.Text _; _ } -> Ok (path ^ ": ASCII text")
  | Some { Vfs.kind = Vfs.Symlink target; _ } -> Ok (path ^ ": symbolic link to " ^ target)
  | Some { Vfs.kind = Vfs.Elf bytes; _ } -> (
    match Feam_elf.Reader.parse bytes with
    | Error _ -> Ok (path ^ ": data")
    | Ok parsed ->
      let spec = Feam_elf.Reader.spec parsed in
      let open Feam_elf.Types in
      let bits = match spec.Feam_elf.Spec.elf_class with C64 -> "64-bit" | C32 -> "32-bit" in
      let endian = match spec.Feam_elf.Spec.endian with LE -> "LSB" | BE -> "MSB" in
      let kind =
        match spec.Feam_elf.Spec.file_type with
        | ET_EXEC -> "executable"
        | ET_DYN -> "shared object"
      in
      Ok
        (Printf.sprintf "%s: ELF %s %s %s, %s, version 1 (SYSV), dynamically linked"
           path bits endian kind
           (machine_name spec.Feam_elf.Spec.machine)))

(* `readelf -p .comment PATH`. *)
let readelf_comment ?clock site path =
  if not (Site.tools site).Tools.readelf then
    Error (`Tool_unavailable "readelf")
  else begin
    Cost.charge clock Cost.tool_call;
    match parse_elf site path with
    | Error _ as e -> e
    | Ok parsed ->
      let spec = Feam_elf.Reader.spec parsed in
      let buf = Buffer.create 256 in
      if spec.comments = [] then
        Buffer.add_string buf
          "readelf: Warning: Section '.comment' was not dumped because it does not exist!\n"
      else begin
        Buffer.add_string buf "\nString dump of section '.comment':\n";
        let off = ref 0 in
        List.iter
          (fun c ->
            Buffer.add_string buf (Printf.sprintf "  [%6x]  %s\n" !off c);
            off := !off + String.length c + 1)
          spec.comments
      end;
      Ok (Buffer.contents buf)
  end

(* `uname -p`. *)
let uname_p ?clock site =
  if not (Site.tools site).Tools.uname then Error (`Tool_unavailable "uname")
  else begin
    Cost.charge clock Cost.tool_call;
    Ok (Feam_elf.Types.machine_uname (Site.machine site))
  end

(* `cat /proc/version`, always available. *)
let proc_version ?clock site =
  Cost.charge clock Cost.tool_call;
  Distro.proc_version (Site.distro site) ~machine:(Site.machine site)

(* `cat /etc/*release`, reading whatever release files the site's vfs
   holds. *)
let etc_release ?clock site =
  Cost.charge clock Cost.tool_call;
  let vfs = Site.vfs site in
  [ "/etc/redhat-release"; "/etc/SuSE-release"; "/etc/lsb-release" ]
  |> List.filter_map (fun p ->
         match Vfs.find vfs p with
         | Some { Vfs.kind = Vfs.Text body; _ } -> Some (p, body)
         | _ -> None)

(* `locate NAME`: every path in the (virtual) locate database whose
   basename starts with NAME. *)
let locate ?clock site name =
  if not (Site.tools site).Tools.locate then
    Error (`Tool_unavailable "locate")
  else begin
    Cost.charge clock Cost.locate_query;
    Ok
      (Vfs.find_by_basename (Site.vfs site) (fun base ->
           String.starts_with ~prefix:name base))
  end

(* `find DIR -name NAME*`: search specific directories. *)
let find_in_dirs ?clock site dirs name =
  if not (Site.tools site).Tools.find then Error (`Tool_unavailable "find")
  else begin
    Cost.charge clock Cost.find_walk;
    let vfs = Site.vfs site in
    Ok
      (List.concat_map
         (fun dir ->
           Vfs.find_under vfs dir (fun base ->
               String.starts_with ~prefix:name base))
         dirs)
  end

(* Identify the site's C library binary and its version banner.  Running
   libc.so.6 on a command line prints a banner whose first line carries
   the version; that is what the EDC parses (paper §V.B). *)
let glibc_banner ?clock site =
  Cost.charge clock Cost.tool_call;
  Printf.sprintf
    "GNU C Library stable release version %s, by Roland McGrath et al.\n\
     Compiled by GNU CC version 4.1.2.\n"
    (Version.to_string (Site.glibc site))

(* Locate libc.so.6 in the site's default library directories. *)
let find_libc ?clock site =
  Cost.charge clock Cost.tool_call;
  let vfs = Site.vfs site in
  Site.default_lib_dirs site
  |> List.find_map (fun dir ->
         let p = dir ^ "/libc.so.6" in
         if Vfs.exists vfs p then Some p else None)
