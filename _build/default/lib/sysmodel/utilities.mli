(** Emulation of the standard Unix utilities FEAM composes (paper §V):
    objdump, readelf, file, uname, locate, find, plus /proc and /etc
    reads.

    Each emulation reads only the site's virtual filesystem and renders
    output in the real tool's text format; the framework parses that
    text, exactly as the real implementation shells out and parses.  When
    the site's {!Tools} record marks a tool absent, the emulation returns
    [`Tool_unavailable] and the framework must fall back. *)

type error =
  [ `Tool_unavailable of string
  | `No_such_file of string
  | `Not_elf of string ]

val error_to_string : error -> string

(** objdump-style format descriptor ("elf64-x86-64", ...). *)
val file_format_string : Feam_elf.Spec.t -> string

(** Raw ELF bytes at a path (the `cp` view, no parsing). *)
val read_elf_bytes : Site.t -> string -> (string, error) result

(** Parse the ELF image at a path. *)
val parse_elf : Site.t -> string -> (Feam_elf.Reader.t, error) result

(** `objdump -p PATH`: format line, Dynamic Section, Version
    References/definitions — the BDC's primary information source. *)
val objdump_p :
  ?clock:Feam_util.Sim_clock.t -> Site.t -> string -> (string, error) result

(** `file PATH`: always available; the BDC's fallback for format/ISA
    identification. *)
val file_cmd :
  ?clock:Feam_util.Sim_clock.t -> Site.t -> string -> (string, error) result

(** `readelf -p .comment PATH`. *)
val readelf_comment :
  ?clock:Feam_util.Sim_clock.t -> Site.t -> string -> (string, error) result

(** `uname -p`. *)
val uname_p :
  ?clock:Feam_util.Sim_clock.t -> Site.t -> (string, error) result

(** `cat /proc/version` (always available). *)
val proc_version : ?clock:Feam_util.Sim_clock.t -> Site.t -> string

(** Contents of the /etc/*release files present at the site. *)
val etc_release :
  ?clock:Feam_util.Sim_clock.t -> Site.t -> (string * string) list

(** `locate NAME`: paths whose basename starts with NAME. *)
val locate :
  ?clock:Feam_util.Sim_clock.t ->
  Site.t ->
  string ->
  (string list, error) result

(** `find DIR... -name NAME*`. *)
val find_in_dirs :
  ?clock:Feam_util.Sim_clock.t ->
  Site.t ->
  string list ->
  string ->
  (string list, error) result

(** The banner the C library binary prints when executed; the EDC parses
    the version out of it (paper §V.B). *)
val glibc_banner : ?clock:Feam_util.Sim_clock.t -> Site.t -> string

(** Locate libc.so.6 in the site's default library directories. *)
val find_libc : ?clock:Feam_util.Sim_clock.t -> Site.t -> string option
