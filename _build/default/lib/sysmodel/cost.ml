(* Simulated durations of site operations, in seconds.  Charged to a
   {!Feam_util.Sim_clock} so the evaluation can report FEAM phase
   durations (paper §VI.C: each phase under five minutes, dominated by
   probe runs through the batch queue). *)

let tool_call = 0.05          (* objdump / readelf / uname / cat *)
let ldd_call = 0.2            (* runs the dynamic linker *)
let locate_query = 2.0        (* locate database scan *)
let find_walk = 15.0          (* find(1) over common library locations *)
let module_query = 0.5        (* module avail / softenv listing *)
let compile_serial = 5.0      (* native cc of a probe program *)
let compile_mpi = 12.0        (* mpicc of an MPI probe *)
let probe_run_serial = 2.0    (* running a serial probe on the login node *)
let probe_run_mpi = 8.0       (* MPI probe execution once scheduled *)
let copy_per_mb = 0.02        (* staging a shared-library copy *)
let bundle_pack_base = 3.0    (* tar/ssh overhead for the source bundle *)

let charge clock seconds =
  match clock with
  | None -> ()
  | Some c -> Feam_util.Sim_clock.charge c seconds
