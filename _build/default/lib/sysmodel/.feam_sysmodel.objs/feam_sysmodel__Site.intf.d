lib/sysmodel/site.mli: Batch Distro Env Fault_model Feam_elf Feam_mpi Feam_util Fmt Stack_install Tools Vfs
