lib/sysmodel/cost.ml: Feam_util
