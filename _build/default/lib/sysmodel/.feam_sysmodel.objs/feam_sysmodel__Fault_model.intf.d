lib/sysmodel/fault_model.mli:
