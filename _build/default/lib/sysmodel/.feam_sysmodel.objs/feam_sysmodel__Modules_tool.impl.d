lib/sysmodel/modules_tool.ml: Compiler Env Feam_mpi Feam_util List Printf Site Stack_install String Vfs
