lib/sysmodel/modules_tool.mli: Env Site Stack_install
