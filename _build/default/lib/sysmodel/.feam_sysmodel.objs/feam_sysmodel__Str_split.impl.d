lib/sysmodel/str_split.ml: List String
