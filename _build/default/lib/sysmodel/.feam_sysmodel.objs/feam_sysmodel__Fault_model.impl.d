lib/sysmodel/fault_model.ml:
