lib/sysmodel/env.ml: List Map Option String
