lib/sysmodel/utilities.mli: Feam_elf Feam_util Site
