lib/sysmodel/distro.mli: Feam_elf Feam_util Fmt
