lib/sysmodel/cost.mli: Feam_util
