lib/sysmodel/site.ml: Batch Compiler Distro Env Fault_model Feam_elf Feam_mpi Feam_util Fmt Interconnect List Prng Stack Stack_install Tools Version Vfs
