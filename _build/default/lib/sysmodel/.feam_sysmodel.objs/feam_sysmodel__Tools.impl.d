lib/sysmodel/tools.ml:
