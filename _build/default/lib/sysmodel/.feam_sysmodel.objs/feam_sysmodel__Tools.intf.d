lib/sysmodel/tools.mli:
