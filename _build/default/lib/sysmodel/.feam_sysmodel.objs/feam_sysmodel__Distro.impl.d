lib/sysmodel/distro.ml: Feam_elf Feam_util Fmt Printf Version
