lib/sysmodel/batch.ml: List Option Str_split String
