lib/sysmodel/str_split.mli:
