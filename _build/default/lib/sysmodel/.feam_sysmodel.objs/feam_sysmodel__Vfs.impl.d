lib/sysmodel/vfs.ml: Hashtbl List Option Printf String
