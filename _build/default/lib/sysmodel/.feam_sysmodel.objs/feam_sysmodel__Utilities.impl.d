lib/sysmodel/utilities.ml: Buffer Cost Distro Feam_elf Feam_util List Option Printf Site String Tools Version Vfs
