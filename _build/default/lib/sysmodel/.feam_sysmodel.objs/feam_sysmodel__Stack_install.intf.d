lib/sysmodel/stack_install.mli: Feam_mpi Feam_util
