lib/sysmodel/vfs.mli:
