lib/sysmodel/env.mli:
