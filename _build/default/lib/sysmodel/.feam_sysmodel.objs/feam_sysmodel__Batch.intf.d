lib/sysmodel/batch.mli:
