lib/sysmodel/stack_install.ml: Feam_mpi Feam_util List Stack
