(** Availability of the Unix utilities FEAM relies on.  The paper gathers
    each piece of information "in multiple ways ... in case some tools
    are not present or functioning" (§V); this record makes those
    fallback paths exercisable. *)

type t = {
  objdump : bool;
  readelf : bool;
  ldd : bool;
  locate : bool;  (** locate database present and fresh *)
  uname : bool;
  find : bool;
  c_compiler : bool;  (** native serial compiler for building probes *)
}

(** Everything available. *)
val full : t

(** A spartan login environment: no readelf, no ldd, no locate, no
    native compiler. *)
val minimal : t

val with_objdump : bool -> t -> t
val with_readelf : bool -> t -> t
val with_ldd : bool -> t -> t
val with_locate : bool -> t -> t
val with_uname : bool -> t -> t
val with_find : bool -> t -> t
val with_c_compiler : bool -> t -> t
