(* Linux distribution model: what /proc/version and /etc/*release say.
   The paper's EDC gathers distribution information "only to provide the
   user with more information about a system" (§V.B); we also use the
   distribution to provision realistic default library locations. *)

open Feam_util

type flavor = Centos | Rhel | Sles

type t = { flavor : flavor; version : Version.t; kernel : Version.t }

let make flavor ~version ~kernel = { flavor; version; kernel }

let flavor t = t.flavor
let version t = t.version
let kernel t = t.kernel

let flavor_name = function
  | Centos -> "CentOS"
  | Rhel -> "Red Hat Enterprise Linux Server"
  | Sles -> "SUSE Linux Enterprise Server"

let name t =
  Printf.sprintf "%s %s" (flavor_name t.flavor) (Version.to_string t.version)

(* Path and contents of the release file the EDC consults. *)
let release_file t =
  match t.flavor with
  | Centos ->
    ( "/etc/redhat-release",
      Printf.sprintf "CentOS release %s (Final)" (Version.to_string t.version) )
  | Rhel ->
    ( "/etc/redhat-release",
      Printf.sprintf "Red Hat Enterprise Linux Server release %s (Santiago)"
        (Version.to_string t.version) )
  | Sles ->
    ( "/etc/SuSE-release",
      Printf.sprintf "SUSE Linux Enterprise Server %s (x86_64)\nVERSION = %s"
        (Version.to_string t.version)
        (Version.to_string t.version) )

(* Contents of /proc/version. *)
let proc_version t ~machine =
  Printf.sprintf
    "Linux version %s-194.el5 (mockbuild@%s) (gcc version 4.1.2) #1 SMP %s"
    (Version.to_string t.kernel)
    (Feam_elf.Types.machine_uname machine)
    "Tue Mar 16 21:52:39 EDT 2010"

(* Default system library directories by word size, in search order.
   These are the "common library locations" FEAM's search fallback
   scans (paper §V.A). *)
let default_lib_dirs ~bits =
  match bits with
  | `B64 -> [ "/lib64"; "/usr/lib64"; "/usr/local/lib64"; "/lib"; "/usr/lib" ]
  | `B32 -> [ "/lib"; "/usr/lib"; "/usr/local/lib" ]

let kernel_triple t =
  match Version.components t.kernel with
  | maj :: min_ :: patch :: _ -> (maj, min_, patch)
  | [ maj; min_ ] -> (maj, min_, 0)
  | [ maj ] -> (maj, 0, 0)
  | [] -> (2, 6, 0)

let pp ppf t = Fmt.string ppf (name t)
