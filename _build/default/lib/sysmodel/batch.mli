(** Batch-system model: queue characteristics and submission-script
    templates.  The submission format is "the only information about a
    new site our methods require the user to determine" (paper §V); FEAM
    runs its probes through these scripts, and queue waits are what the
    simulated clock charges per probe run. *)

type system = Pbs | Sge | Slurm

type queue = {
  queue_name : string;
  wait_seconds : float;  (** queue wait charged per submitted job *)
}

type t = {
  system : system;
  queues : queue list;  (** first entry is the default/debug queue *)
  serial_template : string;
  parallel_template : string;
}

val system_name : system -> string

(** Default submission-script templates per batch system. *)
val default_templates : system -> string * string

(** @raise Invalid_argument when [queues] is empty. *)
val make :
  ?serial_template:string ->
  ?parallel_template:string ->
  queues:queue list ->
  system ->
  t

val debug_queue : t -> queue
val queue_by_name : t -> string -> queue option

(** Expand a submission template ([%queue%], [%launcher%], [%np%],
    [%nodes%], [%command%]). *)
val render_script :
  string -> queue:queue -> launcher:string -> np:int -> command:string -> string
