(* User-environment management tools: Environment Modules and SoftEnv.
   The EDC consults these to discover which MPI stacks a site offers and
   which stack a shell currently has loaded (paper §V.B). *)

open Feam_mpi

(* Registered module names: one per registered MPI stack install plus one
   per native compiler suite. *)
let available_modules site =
  let stack_modules =
    Site.stack_installs site
    |> List.filter Stack_install.registered
    |> List.map Stack_install.module_name
  in
  let compiler_modules =
    Site.compilers site
    |> List.map (fun c ->
           Printf.sprintf "%s-%s"
             (Compiler.family_slug (Compiler.family c))
             (Feam_util.Version.to_string (Compiler.version c)))
  in
  stack_modules @ compiler_modules

(* `module avail` / `softenv` listing text. *)
let render_avail site =
  match Site.modules_flavor site with
  | Site.No_tool -> None
  | Site.Environment_modules ->
    let lines = available_modules site in
    Some
      ("------------------- /usr/share/Modules/modulefiles -------------------\n"
      ^ String.concat "\n" lines ^ "\n")
  | Site.Softenv ->
    let lines =
      available_modules site |> List.map (fun m -> "+" ^ m)
    in
    Some ("SoftEnv: keys available on this system:\n" ^ String.concat "\n" lines ^ "\n")

(* Modulefile / softenv database paths, used by the EDC presence test. *)
let config_paths site =
  match Site.modules_flavor site with
  | Site.No_tool -> []
  | Site.Environment_modules ->
    [ "/usr/share/Modules/init/sh"; "/usr/share/Modules/modulefiles" ]
  | Site.Softenv -> [ "/etc/softenv/softenv.db"; "/usr/local/softenv/etc/softenv.db" ]

(* Materialize tool configuration files into the site's filesystem so the
   EDC's file-presence probes behave like on a real system. *)
let provision site =
  let vfs = Site.vfs site in
  match Site.modules_flavor site with
  | Site.No_tool -> ()
  | Site.Environment_modules ->
    Vfs.add vfs "/usr/share/Modules/init/sh" (Vfs.Text "# modules init\n");
    List.iter
      (fun m ->
        Vfs.add vfs
          ("/usr/share/Modules/modulefiles/" ^ m)
          (Vfs.Text ("#%Module1.0\nmodule-whatis " ^ m ^ "\n")))
      (available_modules site)
  | Site.Softenv ->
    let db =
      available_modules site
      |> List.map (fun m -> "+" ^ m)
      |> String.concat "\n"
    in
    Vfs.add vfs "/etc/softenv/softenv.db" (Vfs.Text (db ^ "\n"))

(* Load a stack's module into an environment: prepend its bin and lib
   directories to PATH / LD_LIBRARY_PATH and record it as loaded. *)
let load_stack env install =
  let env = Env.prepend_path env "PATH" (Stack_install.bin_dir install) in
  let env = Env.prepend_path env "LD_LIBRARY_PATH" (Stack_install.lib_dir install) in
  let name = Stack_install.module_name install in
  match Env.get env "LOADEDMODULES" with
  | None | Some "" -> Env.set env "LOADEDMODULES" name
  | Some v -> Env.set env "LOADEDMODULES" (v ^ ":" ^ name)

(* `module list` contents of an environment. *)
let loaded_modules env = Env.paths env "LOADEDMODULES"

(* Find the stack install a session currently has loaded, preferring the
   modules listing and falling back to PATH inspection — the same two
   mechanisms the paper describes. *)
let current_stack site env =
  let installs = Site.stack_installs site in
  let by_module =
    loaded_modules env
    |> List.filter_map (fun m ->
           List.find_opt (fun i -> Stack_install.module_name i = m) installs)
  in
  match by_module with
  | install :: _ -> Some install
  | [] ->
    (* PATH fallback: an install whose bin directory is on PATH. *)
    let path_dirs = Env.path env in
    List.find_opt
      (fun i -> List.mem (Stack_install.bin_dir i) path_dirs)
      installs
