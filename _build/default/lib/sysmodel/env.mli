(** Shell environment of a simulated site session: an immutable variable
    map plus helpers for the colon-separated path variables the
    resolution model manipulates (PATH, LD_LIBRARY_PATH). *)

type t

val empty : t
val get : t -> string -> string option
val get_or : t -> string -> default:string -> string
val set : t -> string -> string -> t
val unset : t -> string -> t
val bindings : t -> (string * string) list
val of_list : (string * string) list -> t

(** Split a colon-separated path list, dropping empty components. *)
val split_paths : string -> string list

(** Path components of a variable; empty when unset. *)
val paths : t -> string -> string list

(** Prepend a directory to a path variable (how the resolution model
    exposes staged library copies, paper §IV). *)
val prepend_path : t -> string -> string -> t

val append_path : t -> string -> string -> t
val ld_library_path : t -> string list
val path : t -> string list

(** Render as `env` would print it (sorted). *)
val to_string : t -> string
