(* Availability of the Unix utilities FEAM relies on.  The paper gathers
   each piece of information "in multiple ways ... in case some tools are
   not present or functioning at a particular target site" (§V); this
   record is what makes those fallback paths exercisable in tests. *)

type t = {
  objdump : bool;
  readelf : bool;
  ldd : bool;          (* also covers the "ldd does not recognize the binary" failure *)
  locate : bool;       (* locate database present and fresh *)
  uname : bool;
  find : bool;
  c_compiler : bool;   (* native serial compiler available to build probes *)
}

let full =
  {
    objdump = true;
    readelf = true;
    ldd = true;
    locate = true;
    uname = true;
    find = true;
    c_compiler = true;
  }

(* A deliberately spartan login environment: no locate database, no
   native compiler — common on stripped-down compute front-ends. *)
let minimal =
  {
    objdump = true;
    readelf = false;
    ldd = false;
    locate = false;
    uname = true;
    find = true;
    c_compiler = false;
  }

let with_objdump v t = { t with objdump = v }
let with_readelf v t = { t with readelf = v }
let with_ldd v t = { t with ldd = v }
let with_locate v t = { t with locate = v }
let with_uname v t = { t with uname = v }
let with_find v t = { t with find = v }
let with_c_compiler v t = { t with c_compiler = v }
