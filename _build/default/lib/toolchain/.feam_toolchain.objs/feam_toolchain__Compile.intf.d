lib/toolchain/compile.mli: Feam_mpi Feam_sysmodel Feam_util
