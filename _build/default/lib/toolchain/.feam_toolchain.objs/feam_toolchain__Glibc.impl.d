lib/toolchain/glibc.ml: Feam_util List Soname String Version
