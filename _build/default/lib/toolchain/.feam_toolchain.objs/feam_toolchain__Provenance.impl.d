lib/toolchain/provenance.ml: Digest Feam_mpi Feam_util Hashtbl Version
