lib/toolchain/build_id.mli:
