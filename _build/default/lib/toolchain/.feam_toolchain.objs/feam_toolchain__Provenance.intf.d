lib/toolchain/provenance.mli: Feam_mpi Feam_util
