lib/toolchain/provision.ml: Build_id Compiler Distro Feam_elf Feam_mpi Feam_sysmodel Feam_util Glibc Interconnect Libdb List Modules_tool Printf Provenance Site Soname Stack Stack_install Version Vfs
