lib/toolchain/compile.ml: Build_id Compiler Cost Distro Feam_elf Feam_mpi Feam_sysmodel Feam_util Glibc List Printf Provenance Provision Site Soname Stack Stack_install Tools Version Vfs
