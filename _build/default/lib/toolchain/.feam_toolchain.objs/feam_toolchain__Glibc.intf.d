lib/toolchain/glibc.mli: Feam_util
