lib/toolchain/provision.mli: Feam_mpi Feam_sysmodel Feam_util Libdb
