lib/toolchain/libdb.ml: Feam_mpi Feam_util Glibc List Soname Version
