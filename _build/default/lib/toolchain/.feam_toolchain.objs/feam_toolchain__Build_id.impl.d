lib/toolchain/build_id.ml: Digest Printf
