lib/toolchain/libdb.mli: Feam_mpi Feam_util
