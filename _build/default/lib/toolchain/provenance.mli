(** Ground-truth provenance of built images.

    A real binary physically carries its complete ABI (full dynamic
    symbol tables, calling conventions, build-time constants); our images
    model only the metadata channels FEAM reads.  The executor still
    needs the full ABI to decide subtle failures, so the toolchain
    registers each image's provenance here, keyed by the image bytes.
    FEAM never consults this registry. *)

type t = {
  program_name : string;
  build_site : string;
  build_glibc : Feam_util.Version.t;
  stack : Feam_mpi.Stack.t option;  (** [None] for non-MPI objects *)
  compiler : Feam_mpi.Compiler.t;
  runtime_fragility : float;
      (** probability the program's own numerics/assumptions break on a
          foreign site — invisible to hello-world probes *)
  copy_abi_fragility : float;
      (** for shared libraries: probability a staged copy breaks on ABI
          subtleties when used on a foreign site *)
  is_probe : bool;
      (** probe-scale jobs are immune to load-induced system errors *)
  np_rule : [ `Any | `Power_of_two | `Square ];
      (** valid MPI process counts for the program *)
}

val register : string -> t -> unit
val find : string -> t option
val clear : unit -> unit
