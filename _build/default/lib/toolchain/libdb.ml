(* Catalog of the shared libraries that populate simulated sites: system
   libraries, compiler runtimes, InfiniBand user-space libraries and MPI
   implementation libraries.

   Each entry records the library's soname, a realistic on-disk size
   (bundle-size accounting, paper §VI.C reports ~45 MB bundles), its
   dependency sonames, and its *glibc appetite*: the newest glibc feature
   level its own code uses.  Distribution-built libraries track the
   site's glibc closely (high appetite), while portable vendor runtimes
   (Intel, PGI) deliberately target old glibc versions (low appetite) —
   the distinction decides whether a copied library can be reused on a
   site with an older C library. *)

open Feam_util

type origin =
  | System            (* distro base system: always in default lib dirs *)
  | Gnu_runtime       (* distro-packaged GCC runtime, default lib dirs *)
  | Vendor_runtime of Feam_mpi.Compiler.family (* /opt install, ld.so.conf *)
  | Infiniband        (* user-space fabric libs, only on IB sites *)
  | Mpi               (* lives under an MPI stack's install prefix *)

type entry = {
  soname : Soname.t;
  size_mb : float;
  appetite : Version.t; (* newest glibc feature level used; capped by build glibc *)
  deps : Soname.t list; (* dependencies besides libc *)
  origin : origin;
  (* Part of the glibc package itself (libm, libpthread, ...): defines
     the GLIBC_* symbol versions of its release, like libc does. *)
  part_of_glibc : bool;
  (* Probability that a *copy* of this library, staged on a foreign
     site, breaks on ABI subtleties the metadata checks cannot see.
     Proprietary compiler runtimes are the worst offenders; plain C
     system libraries the safest. *)
  copy_abi_fragility : float;
}

let high_appetite = Version.of_ints [ 99 ] (* "tracks the build glibc" *)
let portable = Version.of_string_exn "2.3.4"

(* GNU runtime libraries use the glibc feature level of their GCC
   release's era: gcc-3.x runtimes are fully portable, gcc-4.1 runtimes
   need a mid-2000s glibc, gcc-4.4 runtimes need a late-2000s glibc.
   This is what makes copies from newer sites incompatible with older
   sites' C libraries — the paper's primary cause of unresolvable
   missing-library failures (§VI.C). *)
let gnu_runtime_appetite gcc_version =
  if Version.(gcc_version < of_string_exn "4") then portable
  else if Version.(gcc_version < of_string_exn "4.4") then
    Version.of_string_exn "2.4"
  else Version.of_string_exn "2.6"

let entry ?(size_mb = 0.3) ?(appetite = high_appetite) ?(deps = [])
    ?(part_of_glibc = false) ?copy_abi_fragility ~origin soname =
  let copy_abi_fragility =
    match copy_abi_fragility with
    | Some f -> f
    | None -> (
      match origin with
      | Vendor_runtime Feam_mpi.Compiler.Pgi -> 0.5
      | Vendor_runtime _ -> 0.25
      | Gnu_runtime -> 0.30
      | Mpi -> 0.15
      | Infiniband -> 0.05
      | System -> 0.03)
  in
  { soname; size_mb; appetite; deps; origin; part_of_glibc; copy_abi_fragility }

let so = Soname.make

(* -- Base system ------------------------------------------------------- *)

let glibc_component = entry ~part_of_glibc:true ~origin:System

let libm = glibc_component ~size_mb:0.6 Glibc.libm_soname
let libpthread = glibc_component ~size_mb:0.14 Glibc.libpthread_soname
let libdl = glibc_component ~size_mb:0.02 Glibc.libdl_soname
let librt = glibc_component ~size_mb:0.05 Glibc.librt_soname
let libutil = glibc_component ~size_mb:0.02 (so ~version:[ 1 ] "libutil")
let libnsl = glibc_component ~size_mb:0.1 (so ~version:[ 1 ] "libnsl")
let libz = entry ~origin:System ~size_mb:0.09 ~appetite:portable (so ~version:[ 1 ] "libz")
let libstdcxx =
  entry ~origin:Gnu_runtime ~size_mb:1.0
    ~appetite:(Version.of_string_exn "2.4")
    ~deps:[ Glibc.libm_soname; so ~version:[ 1 ] "libgcc_s" ]
    (so ~version:[ 6 ] "libstdc++")

let base_system = [ libm; libpthread; libdl; librt; libutil; libnsl; libz ]

(* -- GNU compiler runtime ---------------------------------------------- *)

let libgcc_s =
  entry ~origin:Gnu_runtime ~size_mb:0.09 ~appetite:portable
    (so ~version:[ 1 ] "libgcc_s")

let gnu_fortran_runtime version =
  (* soname follows the GCC release installed at the site *)
  Feam_mpi.Compiler.fortran_runtime_libs (Feam_mpi.Compiler.make Feam_mpi.Compiler.Gnu version)
  |> List.map (fun soname ->
         entry ~origin:Gnu_runtime ~size_mb:1.2
           ~appetite:(gnu_runtime_appetite version)
           ~deps:[ Glibc.libm_soname; so ~version:[ 1 ] "libgcc_s" ]
           soname)

(* -- Vendor compiler runtimes ------------------------------------------ *)

let intel_runtime =
  [
    entry ~origin:(Vendor_runtime Feam_mpi.Compiler.Intel) ~size_mb:2.8
      ~appetite:portable (so "libimf");
    entry ~origin:(Vendor_runtime Feam_mpi.Compiler.Intel) ~size_mb:6.0
      ~appetite:portable (so "libsvml");
    entry ~origin:(Vendor_runtime Feam_mpi.Compiler.Intel) ~size_mb:0.3
      ~appetite:portable (so ~version:[ 5 ] "libintlc");
    entry ~origin:(Vendor_runtime Feam_mpi.Compiler.Intel) ~size_mb:1.8
      ~appetite:portable
      ~deps:[ so "libimf"; so ~version:[ 5 ] "libintlc" ]
      (so ~version:[ 5 ] "libifcore");
    entry ~origin:(Vendor_runtime Feam_mpi.Compiler.Intel) ~size_mb:0.6
      ~appetite:portable (so ~version:[ 5 ] "libifport");
  ]

(* PGI runtimes are portable across the era's glibc versions, but their
   copies are the most ABI-fragile objects in the catalog: the runtime is
   tightly coupled to the compiler release that produced the binary. *)
let pgi_runtime _version =
  let appetite = portable in
  [
    entry ~origin:(Vendor_runtime Feam_mpi.Compiler.Pgi) ~size_mb:1.1 ~appetite
      (so "libpgc");
    entry ~origin:(Vendor_runtime Feam_mpi.Compiler.Pgi) ~size_mb:1.9 ~appetite
      ~deps:[ so "libpgc" ]
      (so "libpgf90");
    entry ~origin:(Vendor_runtime Feam_mpi.Compiler.Pgi) ~size_mb:0.4 ~appetite
      ~deps:[ so "libpgc" ]
      (so "libpgf90rtl");
  ]

(* -- Site-local scientific libraries ------------------------------------ *)

(* Numerical libraries that end-user MPI applications link (FFTW, HDF5).
   Their sonames differ across distribution generations — enterprise
   Linux 4/5 shipped FFTW 2 and early HDF5, newer systems FFTW 3 and
   HDF5 1.8 — so binaries crossing the generation divide arrive with
   unresolvable-by-the-site dependencies that a library copy satisfies
   (the copies are portable, built against old glibc). *)

type scientific_family = Fftw | Hdf5

type generation = Old_generation | New_generation

let scientific_soname family generation =
  match (family, generation) with
  | Fftw, Old_generation -> so ~version:[ 2 ] "libfftw"
  | Fftw, New_generation -> so ~version:[ 3 ] "libfftw3"
  | Hdf5, Old_generation -> so ~version:[ 0 ] "libhdf5"
  | Hdf5, New_generation -> so ~version:[ 6 ] "libhdf5"

let scientific_entry family generation =
  let size_mb = match family with Fftw -> 1.6 | Hdf5 -> 2.2 in
  (* New-generation builds use late-2000s glibc features, so their
     copies are rejected (predictably, by the C-library vetting rule)
     on the older sites; old-generation builds travel anywhere. *)
  let appetite =
    match generation with
    | Old_generation -> portable
    | New_generation -> Version.of_string_exn "2.6"
  in
  entry ~origin:System ~size_mb ~appetite ~copy_abi_fragility:0.25
    ~deps:[ Glibc.libm_soname ]
    (scientific_soname family generation)

let scientific_families = [ Fftw; Hdf5 ]

(* -- InfiniBand user space --------------------------------------------- *)

let infiniband_libs =
  [
    entry ~origin:Infiniband ~size_mb:0.07 (so ~version:[ 1 ] "libibverbs");
    entry ~origin:Infiniband ~size_mb:0.06 (so ~version:[ 3 ] "libibumad");
    entry ~origin:Infiniband ~size_mb:0.08
      ~deps:[ so ~version:[ 1 ] "libibverbs" ]
      (so ~version:[ 1 ] "librdmacm");
  ]

(* -- MPI implementation libraries --------------------------------------- *)

(* Dependency structure of the MPI libraries a stack installs under its
   prefix.  Open MPI layers libmpi over libopen-rte over libopen-pal and
   links libnsl/libutil (its Table I fingerprint); MPICH2/MVAPICH2 ship a
   monolithic libmpich, MVAPICH2's linked against the verbs stack. *)
let mpi_entries (stack : Feam_mpi.Stack.t) =
  let impl = Feam_mpi.Stack.impl stack in
  let fingerprints = Feam_mpi.Impl.extra_system_libs impl in
  match impl with
  | Feam_mpi.Impl.Open_mpi ->
    let pal = so ~version:[ 0 ] "libopen-pal" in
    let rte = so ~version:[ 0 ] "libopen-rte" in
    let mpi = so ~version:[ 0 ] "libmpi" in
    [
      entry ~origin:Mpi ~size_mb:1.8 ~deps:[ libutil.soname; libnsl.soname ] pal;
      entry ~origin:Mpi ~size_mb:1.2 ~deps:[ pal; libutil.soname; libnsl.soname ] rte;
      entry ~origin:Mpi ~size_mb:2.4 ~deps:[ rte; pal; Glibc.libm_soname ] mpi;
      entry ~origin:Mpi ~size_mb:0.3 ~deps:[ mpi ] (so ~version:[ 0 ] "libmpi_f77");
      entry ~origin:Mpi ~size_mb:0.2 ~deps:[ mpi ] (so ~version:[ 0 ] "libmpi_f90");
    ]
  | Feam_mpi.Impl.Mpich2 ->
    let mpich = so ~version:[ 1 ] "libmpich" in
    [
      entry ~origin:Mpi ~size_mb:3.1 ~deps:[ Glibc.librt_soname ] mpich;
      entry ~origin:Mpi ~size_mb:0.4 ~deps:[ mpich ] (so ~version:[ 1 ] "libmpichf90");
    ]
  | Feam_mpi.Impl.Mvapich2 ->
    let mpich = so ~version:[ 1 ] "libmpich" in
    [
      entry ~origin:Mpi ~size_mb:3.6
        ~deps:(Glibc.librt_soname :: fingerprints)
        mpich;
      entry ~origin:Mpi ~size_mb:0.4 ~deps:[ mpich ] (so ~version:[ 1 ] "libmpichf90");
    ]

let size_bytes e = int_of_float (e.size_mb *. 1024.0 *. 1024.0)
