(** Catalog of the shared libraries that populate simulated sites:
    system libraries, compiler runtimes, InfiniBand user-space libraries,
    scientific libraries and MPI implementation libraries.

    Each entry records the library's soname, a realistic on-disk size
    (bundle accounting, paper §VI.C), its dependencies, its {e glibc
    appetite} (newest glibc feature level its own code uses — deciding
    whether a copy can serve an older site) and its copy-ABI fragility. *)

type origin =
  | System
  | Gnu_runtime
  | Vendor_runtime of Feam_mpi.Compiler.family
  | Infiniband
  | Mpi

type entry = {
  soname : Feam_util.Soname.t;
  size_mb : float;
  appetite : Feam_util.Version.t;
  deps : Feam_util.Soname.t list;
  origin : origin;
  part_of_glibc : bool;
  copy_abi_fragility : float;
}

val high_appetite : Feam_util.Version.t
val portable : Feam_util.Version.t

(** Glibc feature level of a GCC release's runtime libraries. *)
val gnu_runtime_appetite : Feam_util.Version.t -> Feam_util.Version.t

val entry :
  ?size_mb:float ->
  ?appetite:Feam_util.Version.t ->
  ?deps:Feam_util.Soname.t list ->
  ?part_of_glibc:bool ->
  ?copy_abi_fragility:float ->
  origin:origin ->
  Feam_util.Soname.t ->
  entry

val libm : entry
val libpthread : entry
val libdl : entry
val librt : entry
val libutil : entry
val libnsl : entry
val libz : entry
val libstdcxx : entry
val base_system : entry list
val libgcc_s : entry

(** Fortran runtime entries for a GCC release (libg2c / libgfortran). *)
val gnu_fortran_runtime : Feam_util.Version.t -> entry list

val intel_runtime : entry list
val pgi_runtime : Feam_util.Version.t -> entry list

(** Site-local scientific libraries whose sonames differ across
    distribution generations (FFTW 2/3, HDF5). *)
type scientific_family = Fftw | Hdf5

type generation = Old_generation | New_generation

val scientific_soname : scientific_family -> generation -> Feam_util.Soname.t
val scientific_entry : scientific_family -> generation -> entry
val scientific_families : scientific_family list

val infiniband_libs : entry list

(** MPI libraries a stack installs under its prefix (dependency structure
    per implementation, including the Table I fingerprints). *)
val mpi_entries : Feam_mpi.Stack.t -> entry list

val size_bytes : entry -> int
