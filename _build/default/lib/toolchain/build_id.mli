(** Unique build identification: a process-global serial folded into a
    comment string in every built image, as real toolchains' build IDs
    and timestamps guarantee.  Keeps the bytes-keyed provenance registry
    collision-free and gives every probe compile an independent
    identity. *)

(** Reset the serial (done per evaluation world for reproducibility). *)
val reset : unit -> unit

(** A fresh .comment-style build-id string. *)
val next : site_name:string -> string
