(* Unique build identification.  Real toolchains stamp every object with
   a distinct build ID (and timestamps), so no two builds — even of the
   same source on identical systems — produce byte-identical images.
   The simulator reproduces that: a process-global serial is folded into
   a comment string embedded in each image, which keeps the ground-truth
   provenance registry (keyed by image bytes) collision-free and gives
   every probe compile an independent identity. *)

let counter = ref 0

let reset () = counter := 0

(* A .comment-style build-id string, unique per call. *)
let next ~site_name =
  incr counter;
  let raw = Printf.sprintf "%s/%d" site_name !counter in
  Printf.sprintf "GNU Build ID: %s" (Digest.to_hex (Digest.string raw))
