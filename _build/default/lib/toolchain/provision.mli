(** Provisioning: populates a site's virtual filesystem with the shared
    libraries, release files, tool configuration and MPI stack installs
    its Table II characteristics imply.  Every installed library is a
    real ELF image built against the site's glibc — so copies taken from
    one site carry that site's C-library requirements with them. *)

(** The ELF image of one catalog library as built/packaged on the site. *)
val library_image :
  Feam_sysmodel.Site.t ->
  Libdb.entry ->
  built_with:Feam_mpi.Compiler.t ->
  string

(** The C library image: defines every symbol version of its release. *)
val libc_image : Feam_sysmodel.Site.t -> string

(** Scientific-library generation of a site (enterprise Linux 4/5 = old
    FFTW 2 / early HDF5 sonames, newer = new ones). *)
val scientific_generation : Feam_sysmodel.Site.t -> Libdb.generation

(** The soname a program linking a scientific family gets on a site. *)
val scientific_soname :
  Feam_sysmodel.Site.t -> Libdb.scientific_family -> Feam_util.Soname.t

(** Default compiler that built the site's distro packages. *)
val distro_compiler : Feam_sysmodel.Site.t -> Feam_mpi.Compiler.t

(** Install one catalog library (plus its dev symlink) into a directory. *)
val install_library :
  Feam_sysmodel.Site.t ->
  dir:string ->
  built_with:Feam_mpi.Compiler.t ->
  Libdb.entry ->
  unit

(** Base system: libc and friends, GNU runtime, compat runtimes on EL5,
    scientific libraries, InfiniBand user space where the fabric exists,
    release files. *)
val provision_base : Feam_sysmodel.Site.t -> unit

(** Install prefix used for vendor compiler suites. *)
val compiler_prefix : Feam_mpi.Compiler.t -> string

(** Install a vendor compiler runtime under /opt and register it with the
    linker cache (GNU runtimes come with the base system). *)
val provision_compiler : Feam_sysmodel.Site.t -> Feam_mpi.Compiler.t -> unit

(** Install an MPI stack under its prefix (libraries, wrappers, launcher)
    and register it on the site. *)
val provision_stack :
  Feam_sysmodel.Site.t ->
  ?health:Feam_sysmodel.Stack_install.health ->
  ?registered:bool ->
  ?static_libs:bool ->
  Feam_mpi.Stack.t ->
  Feam_sysmodel.Stack_install.t

(** Provision the whole site: base system, native compilers, the given
    stacks, then the user-environment tool's database. *)
val provision_site :
  Feam_sysmodel.Site.t ->
  stacks:(Feam_mpi.Stack.t * Feam_sysmodel.Stack_install.health) list ->
  Feam_sysmodel.Stack_install.t list
