(* Ground-truth provenance of built images.

   A real binary physically carries its complete ABI (full dynamic symbol
   tables, calling conventions, build-time constant choices); our images
   model only the metadata channels FEAM reads.  The executor still needs
   the full ABI to decide subtle failures — foreign-binary defects,
   incompatible library copies — so the toolchain registers each image's
   provenance here, keyed by the image bytes themselves.  FEAM never
   consults this registry: it sees only ELF bytes through the tool
   emulations. *)

open Feam_util

type t = {
  program_name : string;
  build_site : string;
  build_glibc : Version.t;
  stack : Feam_mpi.Stack.t option; (* None for non-MPI objects *)
  compiler : Feam_mpi.Compiler.t;
  (* Probability that the program's own numerics/assumptions break on a
     foreign site (floating-point traps, endianness of data files, ...):
     defects in application code that no hello-world probe can reveal. *)
  runtime_fragility : float;
  (* For shared libraries: probability that a staged copy of this object
     breaks on ABI subtleties when used on a foreign site. *)
  copy_abi_fragility : float;
  (* Probe programs are sub-minute, single-node debug-queue jobs; the
     system-error class (daemon spawn failures, communication timeouts
     under load) afflicts full-scale application launches. *)
  is_probe : bool;
  (* Valid MPI process counts for the program. *)
  np_rule : [ `Any | `Power_of_two | `Square ];
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 1024

let key image = Digest.string image

let register image t = Hashtbl.replace registry (key image) t

let find image = Hashtbl.find_opt registry (key image)

let clear () = Hashtbl.reset registry
