(** Compile simulator: what `mpicc`/`mpif90` under a given stack produce
    on a given site.  The output is a real ELF image whose dependency
    set, symbol-version references and .comment provenance follow from
    the stack, compiler family and site glibc — the channels the
    prediction model later reads. *)

(** A program source as the toolchain sees it. *)
type program = {
  prog_name : string;
  language : Feam_mpi.Stack.language;
  uses_mpi : bool;
  glibc_appetite : Feam_util.Version.t;
      (** newest glibc feature level the source uses *)
  extra_libs : Feam_util.Soname.t list;
  binary_size_mb : float;
  runtime_fragility : float;
  is_probe : bool;
  np_rule : [ `Any | `Power_of_two | `Square ];
      (** valid MPI process counts (NPB BT/SP need squares, kernels
          powers of two) *)
}

val program :
  ?language:Feam_mpi.Stack.language ->
  ?uses_mpi:bool ->
  ?glibc_appetite:Feam_util.Version.t ->
  ?extra_libs:Feam_util.Soname.t list ->
  ?binary_size_mb:float ->
  ?runtime_fragility:float ->
  ?is_probe:bool ->
  ?np_rule:[ `Any | `Power_of_two | `Square ] ->
  string ->
  program

(** MPI "hello world" probe sources (paper §V.B), C and Fortran. *)
val hello_world_mpi : program

val hello_world_mpi_fortran : program
val hello_world_serial : program

type error =
  | Wrapper_missing of string
  | Compiler_unavailable
  | Source_incompatible of string
  | No_static_libraries

val error_to_string : error -> string

(** The base dependencies every program gets (libm, libpthread, libc). *)
val base_needed : string list

(** Compile with the stack's MPI wrapper; returns the ELF image bytes. *)
val compile_mpi :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Stack_install.t ->
  program ->
  (string, error) result

(** Statically linked build: no dynamic dependencies at all; available
    only where the MPI install ships static libraries (paper SVI.C). *)
val compile_mpi_static :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Stack_install.t ->
  program ->
  (string, error) result

(** Native serial compile (probe programs); needs a native compiler. *)
val compile_serial :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  program ->
  (string, error) result

(** Declared on-disk size of the program's binary. *)
val declared_size : program -> int

(** Compile and install the binary into the site filesystem; returns its
    path. *)
val compile_mpi_to :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Stack_install.t ->
  program ->
  dir:string ->
  (string, error) result
