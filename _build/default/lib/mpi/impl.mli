(** The three dominant open-source MPI implementations of the paper's
    era.  MPI is an interface specification, not a link-level one: each
    implementation produces different link-level dependencies, which is
    what the identification scheme (paper Table I) exploits. *)

type t = Open_mpi | Mpich2 | Mvapich2

val all : t list
val name : t -> string

(** Short identifier used in module names and install prefixes. *)
val slug : t -> string

val of_slug : string -> t option
val equal : t -> t -> bool
val compare : t -> t -> int

(** Core C-binding MPI libraries the implementation's wrapper links into
    every program. *)
val core_libs : t -> version:Feam_util.Version.t -> Feam_util.Soname.t list

(** Additional MPI libraries pulled in by Fortran programs. *)
val fortran_libs : t -> version:Feam_util.Version.t -> Feam_util.Soname.t list

(** System-supplied libraries the wrapper additionally links: the
    link-level fingerprints of paper Table I. *)
val extra_system_libs : t -> Feam_util.Soname.t list

(** The paper's MPI compatibility rule (§III.B): same implementation
    type only; versions are not trusted. *)
val compatible : binary:t -> site:t -> bool

val pp : t Fmt.t
