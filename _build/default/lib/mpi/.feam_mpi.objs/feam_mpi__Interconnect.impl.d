lib/mpi/interconnect.ml: Feam_util Fmt Soname
