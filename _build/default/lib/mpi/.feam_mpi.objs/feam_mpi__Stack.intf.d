lib/mpi/stack.mli: Compiler Feam_util Fmt Impl Interconnect
