lib/mpi/interconnect.mli: Feam_util Fmt
