lib/mpi/compiler.mli: Feam_util Fmt
