lib/mpi/impl.ml: Feam_util Fmt Soname Stdlib
