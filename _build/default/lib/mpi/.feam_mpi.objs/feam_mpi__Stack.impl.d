lib/mpi/stack.ml: Compiler Feam_util Fmt Impl Interconnect Printf Version
