lib/mpi/compiler.ml: Feam_util Fmt Printf Soname Version
