lib/mpi/impl.mli: Feam_util Fmt
