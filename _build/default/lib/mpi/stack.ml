(* An MPI stack: the combination of MPI implementation (with version),
   associated compiler, and interconnection network (paper §I, §III.B).
   Stacks are what sites advertise and what binaries were built with. *)

open Feam_util

type t = {
  impl : Impl.t;
  impl_version : Version.t;
  compiler : Compiler.t;
  interconnect : Interconnect.t;
}

type language = C | Fortran

let make ~impl ~impl_version ~compiler ~interconnect =
  { impl; impl_version; compiler; interconnect }

let impl t = t.impl
let impl_version t = t.impl_version
let compiler t = t.compiler
let interconnect t = t.interconnect

let equal a b =
  Impl.equal a.impl b.impl
  && Version.equal a.impl_version b.impl_version
  && Compiler.equal a.compiler b.compiler
  && Interconnect.equal a.interconnect b.interconnect

(* "openmpi-1.4.3-intel" — the slug used for install prefixes and module
   names; real sites' path-naming conventions reveal the stack this way
   (paper §V.B). *)
let slug t =
  Printf.sprintf "%s-%s-%s" (Impl.slug t.impl)
    (Version.to_string t.impl_version)
    (Compiler.family_slug (Compiler.family t.compiler))

let to_string t =
  Printf.sprintf "%s %s (%s, %s)" (Impl.name t.impl)
    (Version.to_string t.impl_version)
    (Compiler.to_string t.compiler)
    (Interconnect.name t.interconnect)

(* MPI shared libraries a program in [language] gets linked against. *)
let mpi_libs t language =
  let core = Impl.core_libs t.impl ~version:t.impl_version in
  match language with
  | C -> core
  | Fortran -> core @ Impl.fortran_libs t.impl ~version:t.impl_version

(* System libraries additionally linked by the wrapper: the Table I
   fingerprints plus the compiler runtime. *)
let system_libs t language =
  let runtime =
    match language with
    | C -> Compiler.c_runtime_libs t.compiler
    | Fortran ->
      Compiler.c_runtime_libs t.compiler
      @ Compiler.fortran_runtime_libs t.compiler
  in
  Impl.extra_system_libs t.impl @ runtime

(* Full dynamic dependency set (excluding libc/libm/libpthread, which the
   toolchain adds for every program). *)
let needed_libs t language = mpi_libs t language @ system_libs t language

(* The paper's stack-compatibility rule: same MPI implementation type
   (version ignored), same compiler family (its runtime libraries must
   match), and a fabric the binary's build supports. *)
let compatible ~binary ~site =
  Impl.compatible ~binary:binary.impl ~site:site.impl
  && Compiler.family_equal
       (Compiler.family binary.compiler)
       (Compiler.family site.compiler)
  && Interconnect.supports ~binary:binary.interconnect ~site:site.interconnect

(* Compiler wrapper names installed under the stack prefix. *)
let wrapper_names = [ "mpicc"; "mpicxx"; "mpif77"; "mpif90" ]

(* Default launch command (paper §V.C: mpiexec by default, user
   configurable per MPI type). *)
let default_launcher = "mpiexec"

let pp ppf t = Fmt.string ppf (to_string t)
