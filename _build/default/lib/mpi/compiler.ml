(* Compiler families associated with MPI stacks.  Matching the associated
   compiler matters (paper §III.B) because it determines which runtime
   shared libraries a binary is dynamically linked against. *)

open Feam_util

type family = Gnu | Intel | Pgi

type t = { family : family; version : Version.t }

let make family version = { family; version }

let family t = t.family
let version t = t.version

let all_families = [ Gnu; Intel; Pgi ]

let family_name = function Gnu -> "GNU" | Intel -> "Intel" | Pgi -> "PGI"

(* One-letter code used in the paper's Table II ("i:Intel, g:GNU, p:PGI"). *)
let family_letter = function Gnu -> 'g' | Intel -> 'i' | Pgi -> 'p'

let family_slug = function Gnu -> "gnu" | Intel -> "intel" | Pgi -> "pgi"

let family_of_slug = function
  | "gnu" | "gcc" -> Some Gnu
  | "intel" -> Some Intel
  | "pgi" -> Some Pgi
  | _ -> None

let family_equal (a : family) (b : family) = a = b

let equal a b = family_equal a.family b.family && Version.equal a.version b.version

(* C-side runtime libraries every binary built by this compiler links. *)
let c_runtime_libs t =
  match t.family with
  | Gnu -> [ Soname.make ~version:[ 1 ] "libgcc_s" ]
  | Intel ->
    [
      Soname.make "libimf";
      Soname.make "libsvml";
      Soname.make ~version:[ 5 ] "libintlc";
    ]
  | Pgi -> [ Soname.make "libpgc" ]

(* Fortran runtime libraries.  The GNU Fortran runtime soname changed
   across GCC releases, which is one real-world source of missing-library
   failures when migrating between sites with different GCC versions. *)
let fortran_runtime_libs t =
  match t.family with
  | Gnu ->
    let gfortran_major =
      let v = t.version in
      if Version.(v < of_ints [ 4 ]) then (* g77 era *) -1
      else if Version.(v < of_ints [ 4; 4 ]) then 1
      else 3
    in
    if gfortran_major < 0 then [ Soname.make ~version:[ 0 ] "libg2c" ]
    else [ Soname.make ~version:[ gfortran_major ] "libgfortran" ]
  | Intel ->
    [
      Soname.make ~version:[ 5 ] "libifcore";
      Soname.make ~version:[ 5 ] "libifport";
    ]
  | Pgi -> [ Soname.make "libpgf90"; Soname.make "libpgf90rtl" ]

(* The version string a compiler driver prints for "-V" / "--version",
   used by the environment-discovery heuristics. *)
let version_banner t =
  match t.family with
  | Gnu -> Printf.sprintf "gcc (GCC) %s" (Version.to_string t.version)
  | Intel ->
    Printf.sprintf "Intel(R) C Compiler, Version %s Build 20101201"
      (Version.to_string t.version)
  | Pgi -> Printf.sprintf "pgcc %s-0 64-bit target" (Version.to_string t.version)

(* The .comment string the compiler embeds in objects it produces. *)
let comment_string t =
  match t.family with
  | Gnu -> Printf.sprintf "GCC: (GNU) %s" (Version.to_string t.version)
  | Intel ->
    Printf.sprintf "Intel(R) C++ Compiler for applications, Version %s"
      (Version.to_string t.version)
  | Pgi -> Printf.sprintf "PGI Compilers: pgcc %s" (Version.to_string t.version)

let to_string t =
  Printf.sprintf "%s %s" (family_name t.family) (Version.to_string t.version)

let pp ppf t = Fmt.string ppf (to_string t)
