(** Compiler families associated with MPI stacks.  Matching the
    associated compiler matters (paper §III.B) because it determines
    which runtime shared libraries a binary is dynamically linked
    against. *)

type family = Gnu | Intel | Pgi

type t

val make : family -> Feam_util.Version.t -> t
val family : t -> family
val version : t -> Feam_util.Version.t
val all_families : family list
val family_name : family -> string

(** One-letter code, as in the paper's Table II ("i", "g", "p"). *)
val family_letter : family -> char

val family_slug : family -> string
val family_of_slug : string -> family option
val family_equal : family -> family -> bool
val equal : t -> t -> bool

(** C-side runtime libraries every binary built by this compiler links. *)
val c_runtime_libs : t -> Feam_util.Soname.t list

(** Fortran runtime libraries.  The GNU runtime soname changed across GCC
    releases (libg2c.so.0 / libgfortran.so.1 / libgfortran.so.3) — a real
    source of missing-library failures across sites. *)
val fortran_runtime_libs : t -> Feam_util.Soname.t list

(** Version banner the driver prints for "-V"/"--version". *)
val version_banner : t -> string

(** The .comment string the compiler embeds in objects it produces. *)
val comment_string : t -> string

val to_string : t -> string
val pp : t Fmt.t
