(* Interconnection networks.  Part of the MPI stack definition: a stack
   built for InfiniBand needs the user-space verbs libraries and a working
   fabric; on a site without them the stack cannot launch programs. *)

open Feam_util

type t = Ethernet | Infiniband | Numalink

let all = [ Ethernet; Infiniband; Numalink ]

let name = function
  | Ethernet -> "Ethernet"
  | Infiniband -> "InfiniBand"
  | Numalink -> "NUMAlink"

let equal (a : t) (b : t) = a = b

(* User-space libraries the fabric requires at runtime. *)
let runtime_libs = function
  | Ethernet -> []
  | Infiniband ->
    [
      Soname.make ~version:[ 1 ] "libibverbs";
      Soname.make ~version:[ 3 ] "libibumad";
      Soname.make ~version:[ 1 ] "librdmacm";
    ]
  | Numalink -> []

(* Can a binary whose stack assumed [binary] run over fabric [site]?
   MPI libraries fall back to TCP transports in practice only when the
   implementation was built with one, which this era's site builds
   generally were; a fabric-specific build on a site without that fabric
   fails at daemon/endpoint setup. *)
let supports ~binary ~site =
  match (binary, site) with
  | Ethernet, _ -> true (* TCP endpoints exist everywhere *)
  | Infiniband, Infiniband -> true
  | Infiniband, (Ethernet | Numalink) -> false
  | Numalink, Numalink -> true
  | Numalink, (Ethernet | Infiniband) -> false

let pp ppf t = Fmt.string ppf (name t)
