(** Interconnection networks: part of the MPI stack definition
    (paper §I).  A stack built for InfiniBand needs the user-space verbs
    libraries and a working fabric. *)

type t = Ethernet | Infiniband | Numalink

val all : t list
val name : t -> string
val equal : t -> t -> bool

(** User-space libraries the fabric requires at runtime. *)
val runtime_libs : t -> Feam_util.Soname.t list

(** Can a binary whose stack assumed [binary] run over fabric [site]?
    Ethernet/TCP endpoints exist everywhere; fabric-specific builds need
    their fabric. *)
val supports : binary:t -> site:t -> bool

val pp : t Fmt.t
