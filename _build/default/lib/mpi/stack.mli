(** An MPI stack: the combination of MPI implementation (with version),
    associated compiler, and interconnection network (paper §I, §III.B).
    Stacks are what sites advertise and what binaries were built with. *)

type t

type language = C | Fortran

val make :
  impl:Impl.t ->
  impl_version:Feam_util.Version.t ->
  compiler:Compiler.t ->
  interconnect:Interconnect.t ->
  t

val impl : t -> Impl.t
val impl_version : t -> Feam_util.Version.t
val compiler : t -> Compiler.t
val interconnect : t -> Interconnect.t
val equal : t -> t -> bool

(** "openmpi-1.4.3-intel": the slug used for install prefixes and module
    names; real sites' path naming reveals stacks this way (§V.B). *)
val slug : t -> string

val to_string : t -> string

(** MPI shared libraries a program in the given language links. *)
val mpi_libs : t -> language -> Feam_util.Soname.t list

(** System libraries additionally linked by the wrapper: Table I
    fingerprints plus the compiler runtime. *)
val system_libs : t -> language -> Feam_util.Soname.t list

(** Full dynamic dependency set, excluding libc/libm/libpthread. *)
val needed_libs : t -> language -> Feam_util.Soname.t list

(** The full stack-compatibility rule: same implementation type (version
    ignored), same compiler family, supportable fabric. *)
val compatible : binary:t -> site:t -> bool

(** Compiler wrapper names installed under a stack prefix. *)
val wrapper_names : string list

(** Default launch command ("mpiexec", §V.C). *)
val default_launcher : string

val pp : t Fmt.t
