(* The three dominant open-source MPI implementations of the paper's era.
   MPI is an interface specification, not a link-level one: each
   implementation produces different link-level dependencies, which is
   what the identification scheme (paper Table I) exploits. *)

open Feam_util

type t = Open_mpi | Mpich2 | Mvapich2

let all = [ Open_mpi; Mpich2; Mvapich2 ]

let name = function
  | Open_mpi -> "Open MPI"
  | Mpich2 -> "MPICH2"
  | Mvapich2 -> "MVAPICH2"

(* Short identifier used in module names and install prefixes,
   e.g. "openmpi-1.4.3-intel". *)
let slug = function
  | Open_mpi -> "openmpi"
  | Mpich2 -> "mpich2"
  | Mvapich2 -> "mvapich2"

let of_slug = function
  | "openmpi" -> Some Open_mpi
  | "mpich2" -> Some Mpich2
  | "mvapich2" -> Some Mvapich2
  | _ -> None

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

(* Core C-binding MPI libraries the implementation's compiler wrapper
   links into every program.  Open MPI 1.3/1.4 exposes libmpi.so.0 plus
   its runtime layers; MPICH2 and MVAPICH2 both descend from MPICH and
   expose libmpich — they are distinguished by MVAPICH2's InfiniBand
   user-space libraries (see {!extra_system_libs}). *)
let core_libs impl ~version =
  let mpi_major =
    (* Sonames of this era: Open MPI 1.3/1.4 -> libmpi.so.0;
       MPICH2/MVAPICH2 1.x -> libmpich.so.1. *)
    match impl with Open_mpi -> 0 | Mpich2 | Mvapich2 -> 1
  in
  ignore version;
  match impl with
  | Open_mpi ->
    [
      Soname.make ~version:[ mpi_major ] "libmpi";
      Soname.make ~version:[ mpi_major ] "libopen-rte";
      Soname.make ~version:[ mpi_major ] "libopen-pal";
    ]
  | Mpich2 | Mvapich2 -> [ Soname.make ~version:[ mpi_major ] "libmpich" ]

(* Additional MPI libraries pulled in by Fortran programs. *)
let fortran_libs impl ~version =
  ignore version;
  match impl with
  | Open_mpi ->
    [
      Soname.make ~version:[ 0 ] "libmpi_f77";
      Soname.make ~version:[ 0 ] "libmpi_f90";
    ]
  | Mpich2 | Mvapich2 -> [ Soname.make ~version:[ 1 ] "libmpichf90" ]

(* System-supplied shared libraries that the implementation's wrapper
   additionally links: the link-level fingerprints of paper Table I.
   Open MPI pulls in libnsl/libutil; MVAPICH2 pulls in the InfiniBand
   user-space stack. *)
let extra_system_libs = function
  | Open_mpi ->
    [ Soname.make ~version:[ 1 ] "libnsl"; Soname.make ~version:[ 1 ] "libutil" ]
  | Mpich2 -> []
  | Mvapich2 ->
    [
      Soname.make ~version:[ 1 ] "libibverbs";
      Soname.make ~version:[ 3 ] "libibumad";
      Soname.make ~version:[ 1 ] "librdmacm";
    ]

(* [compatible ~binary ~site] — the paper's MPI-implementation
   compatibility rule (§III.B): same implementation type only; versions
   are NOT trusted because no backwards-compatibility guarantee was found
   between versions of the same implementation. *)
let compatible ~binary ~site = equal binary site

let pp ppf t = Fmt.string ppf (name t)
