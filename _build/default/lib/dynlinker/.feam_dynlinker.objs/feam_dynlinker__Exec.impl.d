lib/dynlinker/exec.ml: Batch Cost Digest Fault_model Feam_elf Feam_mpi Feam_sysmodel Feam_toolchain Float Interconnect List Modules_tool Option Printf Resolve Site Stack Stack_install String Vfs
