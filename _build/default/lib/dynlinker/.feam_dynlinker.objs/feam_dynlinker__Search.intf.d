lib/dynlinker/search.mli: Feam_elf Feam_sysmodel
