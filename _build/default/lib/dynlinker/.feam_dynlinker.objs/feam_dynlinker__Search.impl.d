lib/dynlinker/search.ml: Env Feam_elf Feam_sysmodel List Site String Vfs
