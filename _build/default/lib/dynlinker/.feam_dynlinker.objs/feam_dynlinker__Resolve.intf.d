lib/dynlinker/resolve.mli: Feam_elf Feam_sysmodel
