lib/dynlinker/ldd.ml: Buffer Cost Feam_elf Feam_sysmodel List Option Printf Resolve Site Tools Vfs
