lib/dynlinker/exec.mli: Feam_elf Feam_sysmodel Feam_util Resolve
