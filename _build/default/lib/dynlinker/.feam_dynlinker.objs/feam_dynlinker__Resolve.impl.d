lib/dynlinker/resolve.ml: Feam_elf Hashtbl List Option Search
