lib/dynlinker/ldd.mli: Feam_sysmodel Feam_util Resolve
