(* Dynamic-linker library search semantics.

   Directory precedence follows ld.so: DT_RPATH (only when no DT_RUNPATH
   is present), LD_LIBRARY_PATH, DT_RUNPATH, the linker cache directories
   (/etc/ld.so.conf registrations), then the default system directories.
   Both the ground-truth executor and the ldd emulation use this module,
   so a library made visible by the resolution model's environment edits
   is found by exactly the rules a real system would apply. *)

open Feam_sysmodel

let split_path_list value = String.split_on_char ':' value |> List.filter (( <> ) "")

(* Search directories for resolving the dependencies of [spec] under
   [env] at [site]. *)
let search_dirs site env (spec : Feam_elf.Spec.t) =
  let rpath =
    match (spec.rpath, spec.runpath) with
    | Some rpath, None -> split_path_list rpath
    | _ -> [] (* DT_RUNPATH disables DT_RPATH *)
  in
  let ld_library_path = Env.ld_library_path env in
  let runpath =
    match spec.runpath with Some r -> split_path_list r | None -> []
  in
  rpath @ ld_library_path @ runpath @ Site.ld_cache_dirs site
  @ Site.default_lib_dirs site

(* First match for [name] across [dirs] that is a regular file. *)
let locate_in_dirs site dirs name =
  let vfs = Site.vfs site in
  List.find_map
    (fun dir ->
      let path = dir ^ "/" ^ name in
      match Vfs.resolve vfs path with
      | Some (real_path, { Vfs.kind = Vfs.Elf _; _ }) -> Some real_path
      | Some _ | None -> None)
    dirs

(* Locate and parse: returns the path, raw bytes and parsed image. *)
let locate_elf site dirs name =
  match locate_in_dirs site dirs name with
  | None -> None
  | Some path -> (
    match Vfs.find (Site.vfs site) path with
    | Some { Vfs.kind = Vfs.Elf bytes; _ } -> (
      match Feam_elf.Reader.parse bytes with
      | Ok parsed -> Some (path, bytes, parsed)
      | Error _ -> None)
    | _ -> None)
