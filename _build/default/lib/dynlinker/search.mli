(** Dynamic-linker library search semantics.

    Directory precedence follows ld.so: DT_RPATH (only when no DT_RUNPATH
    is present), LD_LIBRARY_PATH, DT_RUNPATH, the linker-cache
    directories (/etc/ld.so.conf registrations), then the system default
    directories.  Both the ground-truth executor and the ldd emulation
    use these rules, so a library exposed by the resolution model's
    environment edits is found exactly as a real system would. *)

(** Search directories for resolving the dependencies of a parsed object
    under an environment at a site. *)
val search_dirs :
  Feam_sysmodel.Site.t -> Feam_sysmodel.Env.t -> Feam_elf.Spec.t -> string list

(** First regular-file match for a name across the directories (symlinks
    followed). *)
val locate_in_dirs :
  Feam_sysmodel.Site.t -> string list -> string -> string option

(** Locate and parse: path, raw bytes and parsed image; [None] when not
    found or not parseable ELF. *)
val locate_elf :
  Feam_sysmodel.Site.t ->
  string list ->
  string ->
  (string * string * Feam_elf.Reader.t) option
