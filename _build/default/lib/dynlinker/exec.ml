(* Ground-truth execution: what actually happens when a binary is
   launched at a site.  This is the oracle FEAM's predictions are scored
   against (paper §VI.B).  It never shares state with the prediction
   code: the outcome is derived from the site's filesystem and
   environment through real link-time rules, from stack health, from
   hidden ABI provenance, and from seeded stochastic system errors — the
   same mix of predictable and unpredictable causes the paper reports. *)

open Feam_sysmodel
open Feam_mpi

type failure =
  | Not_executable of string        (* unparsable / not ELF *)
  | Wrong_isa of { binary_machine : Feam_elf.Types.machine; site_machine : Feam_elf.Types.machine }
  | Missing_libraries of string list
  | Arch_mismatched_libraries of string list
  | Unsatisfied_versions of Resolve.version_failure list
  | Interpreter_missing of string   (* PT_INTERP loader absent at the site *)
  | Invalid_process_count of { np : int; rule : string }
  | No_mpi_stack                    (* nothing loaded in the session *)
  | Stack_misconfigured of string
  | Abi_incompatibility of string
  | Floating_point_error of string
  | Interconnect_unavailable of string
  | System_error of [ `Daemon_spawn | `Timeout ]

type outcome = Success | Failure of failure

type mode = Serial | Mpi of int (* process count *)

(* Failure-injection parameters.  By default each run uses the fault
   model of the site it runs on; an explicit [?params] overrides it
   (e.g. [Fault_model.none] for deterministic what-if runs). *)
type params = Fault_model.t = {
  p_transient : float;
  p_sticky : float;
  p_copy_abi : float;
}

let default_params = Fault_model.default

let failure_to_string = function
  | Not_executable what -> "not executable: " ^ what
  | Wrong_isa { binary_machine; site_machine } ->
    Printf.sprintf "wrong ISA: binary is %s, site is %s"
      (Feam_elf.Types.machine_uname binary_machine)
      (Feam_elf.Types.machine_uname site_machine)
  | Missing_libraries libs -> "missing shared libraries: " ^ String.concat ", " libs
  | Arch_mismatched_libraries libs ->
    "wrong-architecture libraries: " ^ String.concat ", " libs
  | Unsatisfied_versions vfs ->
    "unsatisfied symbol versions: "
    ^ String.concat ", "
        (List.map
           (fun v -> Printf.sprintf "%s (%s)" v.Resolve.vf_version v.Resolve.vf_provider)
           vfs)
  | Interpreter_missing path -> "dynamic loader not found: " ^ path
  | Invalid_process_count { np; rule } ->
    Printf.sprintf "invalid process count %d (the program requires %s)" np rule
  | No_mpi_stack -> "no MPI stack loaded in the session"
  | Stack_misconfigured why -> "MPI stack misconfigured: " ^ why
  | Abi_incompatibility what -> "ABI incompatibility: " ^ what
  | Floating_point_error what -> "floating point error: " ^ what
  | Interconnect_unavailable what -> "interconnect unavailable: " ^ what
  | System_error `Daemon_spawn -> "system error: MPI daemon spawn failed"
  | System_error `Timeout -> "system error: communication timeout"

let outcome_to_string = function
  | Success -> "success"
  | Failure f -> "failure: " ^ failure_to_string f

(* Can a binary compiled for [binary_machine] execute on [site_machine]
   hardware?  Identity, plus the one ubiquitous compatibility mode of the
   era: 32-bit x86 on x86-64 processors. *)
let isa_compatible ~binary_machine ~site_machine =
  binary_machine = site_machine
  || (binary_machine = Feam_elf.Types.I386 && site_machine = Feam_elf.Types.X86_64)

let charge_attempt clock site mode queue =
  let queue =
    match queue with
    | Some q -> q
    | None -> Batch.debug_queue (Site.batch site)
  in
  Cost.charge clock queue.Batch.wait_seconds;
  Cost.charge clock
    (match mode with Serial -> Cost.probe_run_serial | Mpi _ -> Cost.probe_run_mpi)

(* ABI defect of one staged foreign library copy: deterministic in
   (library, build site, target site). *)
let copy_has_abi_defect params site (lib : Resolve.resolved_lib) =
  match Feam_toolchain.Provenance.find lib.Resolve.lib_bytes with
  | Some prov when prov.Feam_toolchain.Provenance.build_site <> Site.name site ->
    let p =
      Float.min 1.0
        (prov.Feam_toolchain.Provenance.copy_abi_fragility *. params.p_copy_abi)
    in
    let key =
      Printf.sprintf "copy-abi/%s/%s" lib.Resolve.lib_name
        prov.Feam_toolchain.Provenance.build_site
    in
    if p > 0.0 && Site.keyed_bool site ~p key then Some lib.Resolve.lib_name
    else None
  | _ -> None

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let is_square n =
  n > 0
  &&
  let r = int_of_float (sqrt (float_of_int n)) in
  r * r = n || (r + 1) * (r + 1) = n

(* Does the process count satisfy the program's startup rule? *)
let np_allowed rule np =
  match rule with
  | `Any -> np > 0
  | `Power_of_two -> is_power_of_two np
  | `Square -> is_square np

(* One execution attempt. *)
let attempt ?clock ?params ?queue site env ~binary_path ~mode ~attempt_no =
  let params = Option.value params ~default:(Site.fault_model site) in
  charge_attempt clock site mode queue;
  match Vfs.find (Site.vfs site) binary_path with
  | None -> Failure (Not_executable (binary_path ^ ": no such file"))
  | Some { Vfs.kind = Vfs.Script _ | Vfs.Text _ | Vfs.Symlink _; _ } ->
    Failure (Not_executable (binary_path ^ ": not an ELF binary"))
  | Some { Vfs.kind = Vfs.Elf bytes; _ } -> (
    match Feam_elf.Reader.parse bytes with
    | Error e -> Failure (Not_executable (Feam_elf.Reader.error_to_string e))
    | Ok parsed ->
      let spec = Feam_elf.Reader.spec parsed in
      let binary_machine = spec.Feam_elf.Spec.machine in
      let site_machine = Site.machine site in
      if not (isa_compatible ~binary_machine ~site_machine) then
        Failure (Wrong_isa { binary_machine; site_machine })
      else begin
        (* The program interpreter named by PT_INTERP must exist: e.g.
           32-bit binaries on a 64-bit site without the 32-bit runtime
           die here with "No such file or directory". *)
        match spec.Feam_elf.Spec.interp with
        | Some interp when not (Vfs.exists (Site.vfs site) interp) ->
          Failure (Interpreter_missing interp)
        | _ ->
        (* Link phase. *)
        let resolution = Resolve.run site env spec in
        if resolution.Resolve.missing <> [] then
          Failure (Missing_libraries resolution.Resolve.missing)
        else if resolution.Resolve.arch_mismatches <> [] then
          Failure
            (Arch_mismatched_libraries
               (List.map (fun m -> m.Resolve.am_lib) resolution.Resolve.arch_mismatches))
        else if resolution.Resolve.version_failures <> [] then
          Failure (Unsatisfied_versions resolution.Resolve.version_failures)
        else
          (* Launch phase. *)
          let provenance = Feam_toolchain.Provenance.find bytes in
          let np_check =
            match (mode, provenance) with
            | Mpi np, Some prov
              when not (np_allowed prov.Feam_toolchain.Provenance.np_rule np) ->
              Error
                (Invalid_process_count
                   {
                     np;
                     rule =
                       (match prov.Feam_toolchain.Provenance.np_rule with
                       | `Any -> "any positive count"
                       | `Power_of_two -> "a power of two"
                       | `Square -> "a perfect square");
                   })
            | _ -> Ok ()
          in
          let launch_result =
            match np_check with
            | Error f -> Error f
            | Ok () ->
            match mode with
            | Serial -> Ok ()
            | Mpi _np -> (
              match Modules_tool.current_stack site env with
              | None -> Error No_mpi_stack
              | Some install -> (
                match Stack_install.health install with
                | Stack_install.Misconfigured why ->
                  Error (Stack_misconfigured why)
                | Stack_install.Functioning
                | Stack_install.Foreign_binary_defect _ -> (
                  (* Foreign binaries can hit stack defects natively
                     compiled programs never see. *)
                  let foreign_check =
                    match provenance with
                    | Some { Feam_toolchain.Provenance.stack = Some bstack; _ }
                      when not (Stack.equal bstack (Stack_install.stack install)) ->
                      Stack_install.accepts_foreign_build install
                        ~build_version:(Stack.impl_version bstack)
                    | _ -> Ok ()
                  in
                  match foreign_check with
                  | Error (`Misconfigured why) -> Error (Stack_misconfigured why)
                  | Error (`Defect `Abi_incompatibility) ->
                    Error
                      (Abi_incompatibility
                         (Printf.sprintf "foreign binary under %s"
                            (Stack.slug (Stack_install.stack install))))
                  | Error (`Defect `Floating_point_error) ->
                    Error
                      (Floating_point_error
                         (Printf.sprintf "foreign binary under %s"
                            (Stack.slug (Stack_install.stack install))))
                  | Ok () -> (
                    (* Fabric assumed by the binary's build must exist. *)
                    match provenance with
                    | Some { Feam_toolchain.Provenance.stack = Some bstack; _ }
                      when not
                             (Interconnect.supports
                                ~binary:(Stack.interconnect bstack)
                                ~site:(Site.interconnect site)) ->
                      Error
                        (Interconnect_unavailable
                           (Interconnect.name (Stack.interconnect bstack)))
                    | _ -> Ok ()))))
          in
          match launch_result with
          | Error f -> Failure f
          | Ok () -> (
            (* Staged foreign library copies can still break on ABI. *)
            let copy_defects =
              List.filter_map (copy_has_abi_defect params site)
                resolution.Resolve.resolved
            in
            (* Application-code defects on foreign sites: numerics or
               data assumptions that break away from home (deterministic
               per program+target; invisible to hello-world probes). *)
            let app_defect =
              match provenance with
              | Some prov
                when prov.Feam_toolchain.Provenance.runtime_fragility > 0.0
                     && prov.Feam_toolchain.Provenance.build_site
                        <> Site.name site ->
                Site.keyed_bool site
                  ~p:prov.Feam_toolchain.Provenance.runtime_fragility
                  (Printf.sprintf "app-defect/%s/%s"
                     prov.Feam_toolchain.Provenance.program_name
                     prov.Feam_toolchain.Provenance.build_site)
              | _ -> false
            in
            match copy_defects with
            | lib :: _ ->
              Failure (Abi_incompatibility (Printf.sprintf "library copy %s" lib))
            | [] when app_defect ->
              Failure (Floating_point_error "application numerics trap")
            | [] ->
              (* System errors: a sticky per-migration draw (an overloaded
                 or broken service window) and a transient per-attempt
                 draw.  Probe-scale jobs (sub-minute, single node, debug
                 queue) do not trip the load-induced error class. *)
              let is_probe =
                match provenance with
                | Some prov -> prov.Feam_toolchain.Provenance.is_probe
                | None -> false
              in
              let digest = Digest.to_hex (Digest.string bytes) in
              let sticky_key = Printf.sprintf "sticky-sys/%s" digest in
              let transient_key =
                Printf.sprintf "transient-sys/%s/%d" digest attempt_no
              in
              if is_probe then Success
              else if
                mode <> Serial
                && Site.keyed_bool site ~p:params.p_sticky sticky_key
              then
                Failure
                  (System_error
                     (if Site.keyed_bool site ~p:0.5 (sticky_key ^ "/kind") then
                        `Daemon_spawn
                      else `Timeout))
              else if
                mode <> Serial
                && Site.keyed_bool site ~p:params.p_transient transient_key
              then Failure (System_error `Timeout)
              else Success)
      end)

(* Full run with the paper's retry policy: up to [attempts] tries, spaced
   in time (we only charge the clock); classified failed only when every
   attempt fails.  Deterministic failures return immediately. *)
let run ?clock ?params ?queue ?(attempts = 5) site env ~binary_path ~mode =
  let rec go n last =
    if n > attempts then last
    else
      match
        attempt ?clock ?params ?queue site env ~binary_path ~mode ~attempt_no:n
      with
      | Success -> Success
      | Failure (System_error _) as f ->
        (* Transient class: worth retrying. *)
        go (n + 1) f
      | Failure _ as f -> f (* deterministic: retries cannot help *)
  in
  go 1 (Failure (System_error `Timeout))
