(** Ground-truth execution: what actually happens when a binary is
    launched at a site — the oracle FEAM's predictions are scored against
    (paper §VI.B).

    The outcome is derived from the site's filesystem and environment
    through real link-time rules, from stack health, from hidden ABI
    provenance, and from the site's seeded fault model.  It shares no
    state with the prediction code. *)

type failure =
  | Not_executable of string  (** unparsable / not ELF / no such file *)
  | Wrong_isa of {
      binary_machine : Feam_elf.Types.machine;
      site_machine : Feam_elf.Types.machine;
    }
  | Missing_libraries of string list
  | Arch_mismatched_libraries of string list
  | Unsatisfied_versions of Resolve.version_failure list
  | Interpreter_missing of string
      (** the PT_INTERP loader is absent at the site *)
  | Invalid_process_count of { np : int; rule : string }
      (** the launch's process count violates the program's startup rule *)
  | No_mpi_stack  (** nothing loaded in the session *)
  | Stack_misconfigured of string
  | Abi_incompatibility of string
  | Floating_point_error of string
  | Interconnect_unavailable of string
  | System_error of [ `Daemon_spawn | `Timeout ]

type outcome = Success | Failure of failure

type mode = Serial | Mpi of int  (** process count *)

(** Failure-injection parameters.  Defaults to the fault model of the
    site the run happens on; override (e.g. with
    {!Feam_sysmodel.Fault_model.none}) for deterministic what-if runs. *)
type params = Feam_sysmodel.Fault_model.t = {
  p_transient : float;
  p_sticky : float;
  p_copy_abi : float;
}

val default_params : params

val failure_to_string : failure -> string
val outcome_to_string : outcome -> string

(** ISA execution rule: identity, plus 32-bit x86 on x86-64. *)
val isa_compatible :
  binary_machine:Feam_elf.Types.machine ->
  site_machine:Feam_elf.Types.machine ->
  bool

(** One execution attempt.  [queue] selects the batch queue whose wait
    is charged to the clock (default: the site's debug queue). *)
val attempt :
  ?clock:Feam_util.Sim_clock.t ->
  ?params:params ->
  ?queue:Feam_sysmodel.Batch.queue ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  binary_path:string ->
  mode:mode ->
  attempt_no:int ->
  outcome

(** Full run with the paper's retry policy: up to [attempts] tries
    (default 5); transient system errors are retried, deterministic
    failures return immediately. *)
val run :
  ?clock:Feam_util.Sim_clock.t ->
  ?params:params ->
  ?queue:Feam_sysmodel.Batch.queue ->
  ?attempts:int ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  binary_path:string ->
  mode:mode ->
  outcome
