(** `ldd -v` emulation: runs the same resolution as the dynamic linker
    and renders the familiar text report.  Mirrors ldd's real limitation
    (paper §V.A): it cannot inspect foreign-architecture binaries. *)

type error =
  [ `Tool_unavailable of string
  | `No_such_file of string
  | `Not_dynamic of string ]

val error_to_string : error -> string

val run :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  string ->
  (Resolve.t, error) result

(** Render the classic ldd text output (resolved arrows, "not found"
    lines, version information). *)
val render : string -> Resolve.t -> string

(** Direct or transitive dependencies that could not be located. *)
val missing_libraries : Resolve.t -> string list
