(** Site-pair migration matrix: post-resolution success rate per
    (home, target) pair — the environment boundaries the aggregate
    tables average away. *)

type cell = { attempts : int; successes : int }

type t

val build : Feam_sysmodel.Site.t list -> Migrate.migration list -> t
val cell : t -> home:string -> target:string -> cell option
val rate : cell -> float
val table : t -> Feam_util.Table.t
