(** Prediction-accuracy aggregation (paper Table III) and failure-cause
    classification (§VI.C results analysis). *)

type confusion = {
  true_ready : int;  (** predicted ready, ran *)
  false_ready : int;  (** predicted ready, failed *)
  true_not_ready : int;  (** predicted not ready, failed *)
  false_not_ready : int;  (** predicted not ready, ran *)
}

val empty : confusion
val total : confusion -> int
val correct : confusion -> int
val accuracy : confusion -> float
val add : confusion -> predicted:bool -> actual:bool -> confusion

type mode = Basic | Extended

val confusion_of : mode -> Migrate.migration list -> confusion

(** Per-suite accuracy for one mode, as a fraction. *)
val suite_accuracy :
  mode -> Feam_suites.Benchmark.suite -> Migrate.migration list -> float

type cause =
  | Missing_shared_libraries
  | C_library_version
  | Abi_or_fp
  | Stack_problem
  | System_errors
  | Other

val cause_name : cause -> string
val classify : Feam_dynlinker.Exec.failure -> cause

(** Histogram of failure causes for a selector over migrations. *)
val failure_histogram :
  (Migrate.migration -> Feam_dynlinker.Exec.outcome) ->
  Migrate.migration list ->
  (cause * int) list
