(** Site ranking: the paper's motivating use-case (§I, quicker access via
    shorter queues) as a decision aid.  Predicted-ready sites are ordered
    by expected time-to-first-result; blocked sites trail with their
    blocking reason. *)

type entry = {
  rank_site : string;
  ready : bool;
  queue_wait_seconds : float;
  phase_seconds : float;
  staged_libraries : int;
  blocking_reason : string option;
}

val time_to_first_result : entry -> float

val evaluate_site :
  Feam_core.Config.t -> Feam_core.Bundle.t -> Feam_sysmodel.Site.t -> entry

(** Rank candidate sites for a bundle. *)
val rank :
  Feam_core.Config.t ->
  Feam_core.Bundle.t ->
  Feam_sysmodel.Site.t list ->
  entry list

val table : entry list -> Feam_util.Table.t
