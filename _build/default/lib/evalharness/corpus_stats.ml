(* Corpus composition statistics: how many binaries each benchmark
   contributed per build site — the quantitative version of §VI.A's
   "our final test set ... is composed of a subset of the benchmark
   suites" narrative. *)

open Feam_suites

type row = {
  benchmark : string;
  suite : Benchmark.suite;
  per_site : (string * int) list; (* build-site name -> binaries *)
  total : int;
}

let compute sites (binaries : Testset.binary list) =
  let site_names = List.map Feam_sysmodel.Site.name sites in
  let benchmarks =
    List.sort_uniq compare
      (List.map
         (fun b ->
           ( b.Testset.benchmark.Benchmark.suite,
             b.Testset.benchmark.Benchmark.bench_name ))
         binaries)
  in
  List.map
    (fun (suite, name) ->
      let mine =
        List.filter
          (fun b -> b.Testset.benchmark.Benchmark.bench_name = name)
          binaries
      in
      let per_site =
        List.map
          (fun site_name ->
            ( site_name,
              List.length
                (List.filter
                   (fun b ->
                     Feam_sysmodel.Site.name b.Testset.home = site_name)
                   mine) ))
          site_names
      in
      { benchmark = name; suite; per_site; total = List.length mine })
    benchmarks

let table sites binaries =
  let rows = compute sites binaries in
  let site_names = List.map Feam_sysmodel.Site.name sites in
  let header = ("Benchmark" :: site_names) @ [ "Total" ] in
  let body =
    List.map
      (fun r ->
        (r.benchmark :: List.map (fun (_, n) -> string_of_int n) r.per_site)
        @ [ string_of_int r.total ])
      rows
  in
  let totals =
    ("all"
    :: List.map
         (fun site_name ->
           string_of_int
             (List.fold_left
                (fun acc r -> acc + List.assoc site_name r.per_site)
                0 rows))
         site_names)
    @ [ string_of_int (List.fold_left (fun acc r -> acc + r.total) 0 rows) ]
  in
  Feam_util.Table.make
    ~title:"Corpus composition: binaries per benchmark and build site (SVI.A)"
    ~header (body @ [ totals ])
