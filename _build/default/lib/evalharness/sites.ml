(* The five computing environments of paper Table II, provisioned as full
   simulated sites: OS, C library, native compilers, interconnect and the
   utilized MPI stack matrix.  Stack health (misconfigurations and
   foreign-binary defects) is drawn deterministically from the evaluation
   seed, per install. *)

open Feam_util
open Feam_mpi
open Feam_sysmodel
open Feam_toolchain

let v = Version.of_string_exn

let gnu ver = Compiler.make Compiler.Gnu (v ver)
let intel ver = Compiler.make Compiler.Intel (v ver)
let pgi ver = Compiler.make Compiler.Pgi (v ver)

(* Interconnect assumption baked into a stack's build: MVAPICH2 is the
   InfiniBand MPI; Open MPI and MPICH2 site builds of this era kept TCP
   transports and run over any fabric. *)
let stack_interconnect = function
  | Impl.Mvapich2 -> Interconnect.Infiniband
  | Impl.Open_mpi | Impl.Mpich2 -> Interconnect.Ethernet

let stack impl version compiler =
  Stack.make ~impl ~impl_version:(v version) ~compiler
    ~interconnect:(stack_interconnect impl)

(* Health of one stack install, drawn from the seed. *)
let draw_health (params : Params.t) ~site_name st =
  let slug = Stack.slug st in
  let key what = Printf.sprintf "%s/%s/%s" what site_name slug in
  if Prng.keyed_bool ~seed:params.Params.seed ~p:params.Params.p_misconfigured (key "misconfig")
  then
    Stack_install.Misconfigured
      "administrator updated the compiler without retesting this stack"
  else if
    Prng.keyed_bool ~seed:params.Params.seed ~p:params.Params.p_stack_defect
      (key "defect")
  then begin
    (* Foreign builds with any *other* version of this implementation hit
       the defect; same-version builds are fine. *)
    let all_versions =
      match Stack.impl st with
      | Impl.Open_mpi -> [ "1.3"; "1.4" ]
      | Impl.Mvapich2 -> [ "1.2"; "1.7rc1"; "1.7a2"; "1.7a" ]
      | Impl.Mpich2 -> [ "1.4"; "1.3" ]
    in
    let affected =
      all_versions |> List.map v
      |> List.filter (fun ver -> not (Version.equal ver (Stack.impl_version st)))
    in
    let symptom =
      if Prng.keyed_bool ~seed:params.Params.seed ~p:0.5 (key "symptom") then
        `Abi_incompatibility
      else `Floating_point_error
    in
    Stack_install.Foreign_binary_defect
      { Stack_install.affected_build_versions = affected; symptom }
  end
  else Stack_install.Functioning

type spec = {
  site_name : string;
  site_description : string;
  distro : Distro.t;
  glibc : string;
  interconnect : Interconnect.t;
  compilers : Compiler.t list;
  stacks : Stack.t list;
  modules_flavor : Site.modules_flavor;
  tools : Tools.t;
  batch : Batch.t;
}

let queue name wait = { Batch.queue_name = name; wait_seconds = wait }

let specs =
  [
    {
      site_name = "ranger";
      site_description = "XSEDE Ranger, TACC (MPP - 62,976 CPUs)";
      distro = Distro.make Distro.Centos ~version:(v "4.9") ~kernel:(v "2.6.9");
      glibc = "2.3.4";
      interconnect = Interconnect.Infiniband;
      compilers = [ gnu "3.4.6"; intel "10.1"; pgi "7.2" ];
      stacks =
        (let compilers = [ intel "10.1"; gnu "3.4.6"; pgi "7.2" ] in
         List.map (stack Impl.Open_mpi "1.3") compilers
         @ List.map (stack Impl.Mvapich2 "1.2") compilers);
      modules_flavor = Site.Environment_modules;
      tools = Tools.full;
      batch =
        Batch.make ~queues:[ queue "development" 20.0; queue "normal" 600.0 ]
          Batch.Sge;
    };
    {
      site_name = "forge";
      site_description = "XSEDE Forge, NCSA (Hybrid CPU/GPU - 576)";
      distro = Distro.make Distro.Rhel ~version:(v "6.1") ~kernel:(v "2.6.32");
      glibc = "2.12";
      interconnect = Interconnect.Infiniband;
      compilers = [ gnu "4.4.5"; intel "12" ];
      stacks =
        [
          stack Impl.Open_mpi "1.4" (gnu "4.4.5");
          stack Impl.Open_mpi "1.4" (intel "12");
          stack Impl.Mvapich2 "1.7rc1" (intel "12");
        ];
      modules_flavor = Site.Environment_modules;
      tools = Tools.full;
      batch = Batch.make ~queues:[ queue "debug" 15.0; queue "batch" 900.0 ] Batch.Pbs;
    };
    {
      site_name = "blacklight";
      site_description = "XSEDE Blacklight, PSC (SMP - 4,096)";
      distro = Distro.make Distro.Sles ~version:(v "11") ~kernel:(v "2.6.32");
      glibc = "2.11.1";
      interconnect = Interconnect.Numalink;
      compilers = [ gnu "4.4.3"; intel "11.1" ];
      stacks =
        [
          stack Impl.Open_mpi "1.4" (intel "11.1");
          stack Impl.Open_mpi "1.4" (gnu "4.4.3");
        ];
      modules_flavor = Site.Environment_modules;
      (* No locate database on the stripped SGI front-end: exercises the
         find(1) fallback of the search methods. *)
      tools = Tools.with_locate false Tools.full;
      batch =
        Batch.make ~queues:[ queue "debug" 30.0; queue "batch" 1200.0 ] Batch.Pbs;
    };
    {
      site_name = "india";
      site_description = "FutureGrid India, Indiana University (Cluster - 920)";
      distro = Distro.make Distro.Rhel ~version:(v "5.6") ~kernel:(v "2.6.18");
      glibc = "2.5";
      interconnect = Interconnect.Infiniband;
      compilers = [ gnu "4.1.2"; intel "11.1" ];
      stacks =
        (let compilers = [ intel "11.1"; gnu "4.1.2" ] in
         List.map (stack Impl.Open_mpi "1.4") compilers
         @ List.map (stack Impl.Mvapich2 "1.7a2") compilers
         @ List.map (stack Impl.Mpich2 "1.4") compilers);
      (* FutureGrid ran SoftEnv: exercises the second user-environment
         management tool (paper §V.B). *)
      modules_flavor = Site.Softenv;
      tools = Tools.full;
      batch =
        Batch.make ~queues:[ queue "debug" 10.0; queue "batch" 300.0 ] Batch.Pbs;
    };
    {
      site_name = "fir";
      site_description = "ITS Fir, University of Virginia (Cluster - 1,496)";
      distro = Distro.make Distro.Centos ~version:(v "5.6") ~kernel:(v "2.6.18");
      glibc = "2.5";
      interconnect = Interconnect.Infiniband;
      compilers = [ gnu "4.1.2"; intel "12"; pgi "10.9" ];
      stacks =
        (let compilers = [ intel "12"; gnu "4.1.2"; pgi "10.9" ] in
         List.map (stack Impl.Open_mpi "1.4") compilers
         @ List.map (stack Impl.Mvapich2 "1.7a") compilers
         @ List.map (stack Impl.Mpich2 "1.3") compilers);
      modules_flavor = Site.Environment_modules;
      tools = Tools.full;
      batch = Batch.make ~queues:[ queue "debug" 5.0; queue "batch" 240.0 ] Batch.Pbs;
    };
  ]

(* Build and provision one site. *)
let build_site (params : Params.t) spec =
  let site =
    Site.make ~description:spec.site_description ~tools:spec.tools
      ~modules_flavor:spec.modules_flavor ~compilers:spec.compilers
      ~seed:(Prng.hash_key params.Params.seed ("site/" ^ spec.site_name))
      ~fault_model:params.Params.exec
      ~machine:Feam_elf.Types.X86_64 ~distro:spec.distro ~glibc:(v spec.glibc)
      ~interconnect:spec.interconnect ~batch:spec.batch spec.site_name
  in
  let stacks =
    List.map
      (fun st -> (st, draw_health params ~site_name:spec.site_name st))
      spec.stacks
  in
  let _installs = Provision.provision_site site ~stacks in
  site

(* All five sites, freshly provisioned.  The build-id counter is reset so
   that an evaluation world — and everything later compiled in it — is
   byte-reproducible regardless of what the process built before. *)
(* Build an arbitrary spec list as a reproducible world. *)
let build_specs params specs_to_build =
  Build_id.reset ();
  List.map (build_site params) specs_to_build

let build_all params = build_specs params specs

let find_by_name sites name = List.find (fun s -> Site.name s = name) sites
