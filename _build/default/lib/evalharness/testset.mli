(** Test-set construction (paper §VI.A): compile each benchmark with each
    utilized MPI stack at each site; keep binaries that both compile and
    execute at their home site (the paper ended with 110 NPB + 147 SPEC
    binaries). *)

type binary = {
  id : string;  (** "NAS/bt.A\@ranger/openmpi-1.3-intel" *)
  benchmark : Feam_suites.Benchmark.t;
  home : Feam_sysmodel.Site.t;
  install : Feam_sysmodel.Stack_install.t;  (** build stack at home *)
  home_path : string;
  bytes : string;
  declared_size : int;
}

val binary_id :
  Feam_suites.Benchmark.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Stack_install.t ->
  string

(** Compile one (benchmark, stack install) pair, honouring the
    benchmark's compiler exclusions and seeded compile fragility. *)
val try_build :
  Params.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Stack_install.t ->
  Feam_suites.Benchmark.t ->
  binary option

(** Does the binary run at its home site (with its stack loaded)? *)
val runs_at_home : Params.t -> binary -> bool

(** The full test set over the given sites and benchmarks. *)
val build :
  Params.t ->
  Feam_sysmodel.Site.t list ->
  Feam_suites.Benchmark.t list ->
  binary list

val of_suite : Feam_suites.Benchmark.suite -> binary list -> binary list

(** (NPB count, SPEC count). *)
val count_by_suite : binary list -> int * int
