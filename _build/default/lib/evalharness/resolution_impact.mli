(** Resolution-impact aggregation (paper Table IV): successful executions
    before and after applying the resolution model, and the relative
    increase due to resolution. *)

type t = { migrations : int; successes_before : int; successes_after : int }

val measure : Migrate.migration list -> t
val of_suite : Feam_suites.Benchmark.suite -> Migrate.migration list -> t
val rate_before : t -> float
val rate_after : t -> float

(** "Increase in successful executions due to resolution": the increase
    divided by successes before resolution (paper §VI.B). *)
val relative_increase : t -> float

type missing_lib_stats = {
  failures_before : int;
  missing_lib_failures : int;
  missing_lib_fixed : int;
}

(** How many pre-resolution failures were missing-library failures, and
    how many of those resolution fixed (§VI.C). *)
val missing_lib_breakdown : Migrate.migration list -> missing_lib_stats
