(* Resolution-impact aggregation (paper Table IV): successful executions
   before and after applying the resolution model, and the relative
   increase due to resolution. *)


type t = {
  migrations : int;
  successes_before : int;
  successes_after : int;
}

let measure migrations =
  List.fold_left
    (fun acc (m : Migrate.migration) ->
      {
        migrations = acc.migrations + 1;
        successes_before =
          (acc.successes_before
          + if Migrate.success m.Migrate.actual_before then 1 else 0);
        successes_after =
          (acc.successes_after
          + if Migrate.success m.Migrate.actual_after then 1 else 0);
      })
    { migrations = 0; successes_before = 0; successes_after = 0 }
    migrations

let of_suite suite migrations = measure (Migrate.of_suite suite migrations)

let rate_before t =
  if t.migrations = 0 then 0.0
  else float_of_int t.successes_before /. float_of_int t.migrations

let rate_after t =
  if t.migrations = 0 then 0.0
  else float_of_int t.successes_after /. float_of_int t.migrations

(* "Increase in successful executions due to resolution": the increase
   divided by the successes before resolution (paper §VI.B). *)
let relative_increase t =
  if t.successes_before = 0 then 0.0
  else
    float_of_int (t.successes_after - t.successes_before)
    /. float_of_int t.successes_before

(* How many of the pre-resolution failures were missing-library failures,
   and how many of those the resolution model fixed (paper §VI.C: "more
   than half were missing shared libraries"; resolution "enabled
   execution for about half of the binaries that would have otherwise
   failed due to missing shared libraries"). *)
type missing_lib_stats = {
  failures_before : int;
  missing_lib_failures : int;
  missing_lib_fixed : int;
}

let missing_lib_breakdown migrations =
  List.fold_left
    (fun acc (m : Migrate.migration) ->
      match m.Migrate.actual_before with
      | Feam_dynlinker.Exec.Success -> acc
      | Feam_dynlinker.Exec.Failure f ->
        let is_missing =
          match Accuracy.classify f with
          | Accuracy.Missing_shared_libraries -> true
          | _ -> false
        in
        {
          failures_before = acc.failures_before + 1;
          missing_lib_failures =
            (acc.missing_lib_failures + if is_missing then 1 else 0);
          missing_lib_fixed =
            (acc.missing_lib_fixed
            + if is_missing && Migrate.success m.Migrate.actual_after then 1 else 0);
        })
    { failures_before = 0; missing_lib_failures = 0; missing_lib_fixed = 0 }
    migrations
