(** Scenario files: a small text format describing a world of simulated
    sites, so CLI users can model their own environments.  See
    {!template} for the syntax. *)

type site_spec

type parse_error = { line : int; message : string }

val parse_error_to_string : parse_error -> string

(** Parse scenario text into site specs. *)
val parse : string -> (site_spec list, parse_error) result

(** Build and provision one site from its spec. *)
val build_site : site_spec -> Feam_sysmodel.Site.t

(** Parse and build a whole scenario. *)
val load : string -> (Feam_sysmodel.Site.t list, string) result

(** A commented example scenario file. *)
val template : string
