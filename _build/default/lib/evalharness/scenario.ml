(* Scenario files: a small text format describing a world of sites, so
   CLI users can model their own environments instead of the built-in
   demo/eval worlds.

   Format (one directive per line, '#' comments):

     site ranger
       machine x86_64
       distro centos 4.9 kernel 2.6.9
       glibc 2.3.4
       interconnect infiniband
       compiler gnu 3.4.6
       compiler intel 10.1
       stack openmpi 1.3 intel
       stack mvapich2 1.2 gnu
       modules environment-modules
       queue development 20
       queue normal 600
       faults none

   Every `site` line opens a new site block; directives apply to the
   current block.  Sites are provisioned on build. *)

open Feam_util
open Feam_mpi
open Feam_sysmodel

type site_spec = {
  mutable s_name : string;
  mutable s_machine : Feam_elf.Types.machine;
  mutable s_distro : Distro.flavor;
  mutable s_distro_version : Version.t;
  mutable s_kernel : Version.t;
  mutable s_glibc : Version.t;
  mutable s_interconnect : Interconnect.t;
  mutable s_compilers : Compiler.t list;
  mutable s_stacks : Stack.t list;
  mutable s_modules : Site.modules_flavor;
  mutable s_queues : Batch.queue list;
  mutable s_faults : Fault_model.t;
  mutable s_seed : int;
}

let fresh_spec name =
  {
    s_name = name;
    s_machine = Feam_elf.Types.X86_64;
    s_distro = Distro.Centos;
    s_distro_version = Version.of_string_exn "5.6";
    s_kernel = Version.of_string_exn "2.6.18";
    s_glibc = Version.of_string_exn "2.5";
    s_interconnect = Interconnect.Ethernet;
    s_compilers = [];
    s_stacks = [];
    s_modules = Site.Environment_modules;
    s_queues = [];
    s_faults = Fault_model.none;
    s_seed = 11;
  }

type parse_error = { line : int; message : string }

let parse_error_to_string e =
  Printf.sprintf "scenario parse error at line %d: %s" e.line e.message

let parse_version lineno what s =
  match Version.of_string s with
  | Some v -> v
  | None -> raise (Failure (Printf.sprintf "line %d: bad %s version %S" lineno what s))

(* Parse the scenario text into site specs. *)
let parse (text : string) : (site_spec list, parse_error) result =
  let lines = String.split_on_char '\n' text in
  let sites = ref [] in
  let current : site_spec option ref = ref None in
  let fail lineno message = raise (Failure (Printf.sprintf "line %d: %s" lineno message)) in
  let need lineno =
    match !current with
    | Some s -> s
    | None -> fail lineno "directive outside a site block (start with 'site NAME')"
  in
  try
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then ()
        else
          match
            String.split_on_char ' ' line |> List.filter (( <> ) "")
          with
          | [ "site"; name ] ->
            let spec = fresh_spec name in
            sites := spec :: !sites;
            current := Some spec
          | [ "machine"; m ] -> (
            let s = need lineno in
            match Feam_elf.Types.machine_of_uname m with
            | Some machine -> s.s_machine <- machine
            | None -> fail lineno ("unknown machine " ^ m))
          | [ "distro"; flavor; version; "kernel"; kernel ] ->
            let s = need lineno in
            (match String.lowercase_ascii flavor with
            | "centos" -> s.s_distro <- Distro.Centos
            | "rhel" -> s.s_distro <- Distro.Rhel
            | "sles" -> s.s_distro <- Distro.Sles
            | other -> fail lineno ("unknown distro " ^ other));
            s.s_distro_version <- parse_version lineno "distro" version;
            s.s_kernel <- parse_version lineno "kernel" kernel
          | [ "glibc"; v ] -> (need lineno).s_glibc <- parse_version lineno "glibc" v
          | [ "interconnect"; i ] -> (
            let s = need lineno in
            match String.lowercase_ascii i with
            | "ethernet" -> s.s_interconnect <- Interconnect.Ethernet
            | "infiniband" -> s.s_interconnect <- Interconnect.Infiniband
            | "numalink" -> s.s_interconnect <- Interconnect.Numalink
            | other -> fail lineno ("unknown interconnect " ^ other))
          | [ "compiler"; family; version ] -> (
            let s = need lineno in
            match Compiler.family_of_slug family with
            | Some f ->
              s.s_compilers <-
                s.s_compilers @ [ Compiler.make f (parse_version lineno "compiler" version) ]
            | None -> fail lineno ("unknown compiler family " ^ family))
          | [ "stack"; impl; version; compiler ] -> (
            let s = need lineno in
            match (Impl.of_slug impl, Compiler.family_of_slug compiler) with
            | Some impl, Some family ->
              let compiler =
                match
                  List.find_opt
                    (fun c -> Compiler.family_equal (Compiler.family c) family)
                    s.s_compilers
                with
                | Some c -> c
                | None -> fail lineno "stack compiler not declared (add a 'compiler' line first)"
              in
              let interconnect =
                match impl with
                | Impl.Mvapich2 -> Interconnect.Infiniband
                | Impl.Open_mpi | Impl.Mpich2 -> Interconnect.Ethernet
              in
              s.s_stacks <-
                s.s_stacks
                @ [
                    Stack.make ~impl
                      ~impl_version:(parse_version lineno "stack" version)
                      ~compiler ~interconnect;
                  ]
            | None, _ -> fail lineno ("unknown MPI implementation " ^ impl)
            | _, None -> fail lineno ("unknown compiler family " ^ compiler))
          | [ "modules"; m ] -> (
            let s = need lineno in
            match String.lowercase_ascii m with
            | "environment-modules" | "modules" -> s.s_modules <- Site.Environment_modules
            | "softenv" -> s.s_modules <- Site.Softenv
            | "none" -> s.s_modules <- Site.No_tool
            | other -> fail lineno ("unknown modules tool " ^ other))
          | [ "queue"; name; wait ] -> (
            let s = need lineno in
            match float_of_string_opt wait with
            | Some wait_seconds ->
              s.s_queues <-
                s.s_queues @ [ { Batch.queue_name = name; wait_seconds } ]
            | None -> fail lineno ("bad queue wait " ^ wait))
          | [ "faults"; f ] -> (
            let s = need lineno in
            match String.lowercase_ascii f with
            | "none" -> s.s_faults <- Fault_model.none
            | "default" -> s.s_faults <- Fault_model.default
            | other -> fail lineno ("unknown fault model " ^ other))
          | [ "seed"; n ] -> (
            let s = need lineno in
            match int_of_string_opt n with
            | Some seed -> s.s_seed <- seed
            | None -> fail lineno ("bad seed " ^ n))
          | _ -> fail lineno ("unrecognized directive: " ^ line))
      lines;
    if !sites = [] then Error { line = 0; message = "no sites defined" }
    else Ok (List.rev !sites)
  with Failure message -> Error { line = 0; message }

(* Build and provision one site from its spec. *)
let build_site (spec : site_spec) : Site.t =
  let queues =
    if spec.s_queues = [] then
      [ { Batch.queue_name = "debug"; wait_seconds = 10.0 } ]
    else spec.s_queues
  in
  let site =
    Site.make ~compilers:spec.s_compilers ~seed:spec.s_seed
      ~fault_model:spec.s_faults ~modules_flavor:spec.s_modules
      ~machine:spec.s_machine
      ~distro:
        (Distro.make spec.s_distro ~version:spec.s_distro_version
           ~kernel:spec.s_kernel)
      ~glibc:spec.s_glibc ~interconnect:spec.s_interconnect
      ~batch:(Batch.make ~queues Batch.Pbs)
      spec.s_name
  in
  let _ =
    Feam_toolchain.Provision.provision_site site
      ~stacks:
        (List.map (fun st -> (st, Stack_install.Functioning)) spec.s_stacks)
  in
  site

(* Parse and build a whole scenario. *)
let load text =
  match parse text with
  | Error e -> Error (parse_error_to_string e)
  | Ok specs -> Ok (List.map build_site specs)

(* A commented example scenario, shipped for `feam scenario-template`. *)
let template =
  "# FEAM scenario file: a world of simulated sites.\n\
   # One directive per line; 'site NAME' opens a new site block.\n\n\
   site home\n\
  \  machine x86_64\n\
  \  distro centos 5.6 kernel 2.6.18\n\
  \  glibc 2.5\n\
  \  interconnect infiniband\n\
  \  compiler gnu 4.1.2\n\
  \  stack openmpi 1.4 gnu\n\
  \  modules environment-modules\n\
  \  queue debug 5\n\
  \  faults none\n\n\
   site target\n\
  \  machine x86_64\n\
  \  distro rhel 6.1 kernel 2.6.32\n\
  \  glibc 2.12\n\
  \  interconnect infiniband\n\
  \  compiler gnu 4.4.5\n\
  \  stack openmpi 1.4 gnu\n\
  \  modules environment-modules\n\
  \  queue debug 15\n\
  \  faults none\n"
