(* Test-set construction (paper §VI.A): compile each benchmark with each
   utilized MPI stack at each site, keep only the binaries that both
   compile and execute successfully at their home site.  The paper ended
   up with 110 NPB and 147 SPEC MPI2007 binaries this way. *)

open Feam_util
open Feam_sysmodel
open Feam_suites

type binary = {
  id : string; (* "NAS/bt.A@ranger/openmpi-1.3-intel" *)
  benchmark : Benchmark.t;
  home : Site.t;
  install : Stack_install.t; (* the build stack's install at home *)
  home_path : string;
  bytes : string;
  declared_size : int;
}

let binary_id benchmark site install =
  Printf.sprintf "%s/%s@%s/%s"
    (Benchmark.suite_name benchmark.Benchmark.suite)
    benchmark.Benchmark.bench_name (Site.name site)
    (Stack_install.module_name install)

let home_dir install = "/home/user/apps/" ^ Stack_install.module_name install

(* Compile one (benchmark, stack install) pair at its site, honouring the
   benchmark's deterministic compiler exclusions and its seeded compile
   fragility. *)
let try_build (params : Params.t) site install benchmark =
  let stack = Stack_install.stack install in
  let fragility_draw =
    Prng.keyed_bool ~seed:params.Params.seed
      ~p:benchmark.Benchmark.compile_fragility
      (Printf.sprintf "compile/%s/%s/%s" benchmark.Benchmark.bench_name
         (Site.name site)
         (Stack_install.module_name install))
  in
  if not (Benchmark.compiles_with benchmark stack ~fragility_draw) then None
  else
    let program = Benchmark.to_program ~site benchmark in
    match
      Feam_toolchain.Compile.compile_mpi_to site install program
        ~dir:(home_dir install)
    with
    | Error _ -> None
    | Ok path -> (
      match Vfs.find (Site.vfs site) path with
      | Some { Vfs.kind = Vfs.Elf bytes; declared_size } ->
        Some
          {
            id = binary_id benchmark site install;
            benchmark;
            home = site;
            install;
            home_path = path;
            bytes;
            declared_size;
          }
      | _ -> None)

(* Does the binary run at its home site (with its own stack loaded)?
   Binaries that fail at home are excluded from the test set, as in the
   paper. *)
let runs_at_home (params : Params.t) binary =
  let env =
    Modules_tool.load_stack (Site.base_env binary.home) binary.install
  in
  match
    Feam_dynlinker.Exec.run ~params:params.Params.exec
      ~attempts:params.Params.attempts binary.home env
      ~binary_path:binary.home_path ~mode:(Feam_dynlinker.Exec.Mpi 4)
  with
  | Feam_dynlinker.Exec.Success -> true
  | Feam_dynlinker.Exec.Failure _ -> false

(* Build the full test set over [sites] for [benchmarks]. *)
let build (params : Params.t) sites benchmarks =
  List.concat_map
    (fun site ->
      List.concat_map
        (fun install ->
          List.filter_map
            (fun benchmark ->
              match try_build params site install benchmark with
              | Some b when runs_at_home params b -> Some b
              | Some b ->
                (* failed at its own compile site: drop it and its file *)
                Vfs.remove (Site.vfs site) b.home_path;
                None
              | None -> None)
            benchmarks)
        (Site.stack_installs site))
    sites

let of_suite suite binaries =
  List.filter (fun b -> b.benchmark.Benchmark.suite = suite) binaries

let count_by_suite binaries =
  ( List.length (of_suite Benchmark.Nas binaries),
    List.length (of_suite Benchmark.Spec_mpi2007 binaries) )
