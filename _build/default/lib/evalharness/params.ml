(* Tunables of the evaluation: the master seed and the failure-injection
   rates that shape the reproduction.  Absolute values are calibrated so
   the regenerated tables land near the paper's numbers; the *shape*
   claims (extended >= basic accuracy, both > 90%; about half of
   migrations succeed before resolution; resolution adds about a third
   more successes; missing shared libraries dominate failures) hold over
   a wide range around these defaults. *)

type t = {
  seed : int;
  (* Probability an advertised MPI stack install carries a defect that
     only foreign binaries hit (ABI or floating-point, paper §VI.C). *)
  p_stack_defect : float;
  (* Probability an advertised stack is outright misconfigured: no
     program launches under it (paper §III.B). *)
  p_misconfigured : float;
  exec : Feam_sysmodel.Fault_model.t;
  attempts : int; (* the paper's five-attempt retry policy *)
}

let default =
  {
    seed = 42;
    p_stack_defect = 0.07;
    p_misconfigured = 0.04;
    exec =
      {
        Feam_dynlinker.Exec.p_transient = 0.01;
        p_sticky = 0.008;
        p_copy_abi = 1.0;
      };
    attempts = 5;
  }
