(* Prediction-accuracy aggregation (paper Table III) and failure-cause
   breakdowns (paper §VI.C's results analysis). *)


type confusion = {
  true_ready : int;      (* predicted ready, ran *)
  false_ready : int;     (* predicted ready, failed *)
  true_not_ready : int;  (* predicted not ready, failed *)
  false_not_ready : int; (* predicted not ready, ran *)
}

let empty = { true_ready = 0; false_ready = 0; true_not_ready = 0; false_not_ready = 0 }

let total c = c.true_ready + c.false_ready + c.true_not_ready + c.false_not_ready

let correct c = c.true_ready + c.true_not_ready

let accuracy c =
  let t = total c in
  if t = 0 then 0.0 else float_of_int (correct c) /. float_of_int t

let add c ~predicted ~actual =
  match (predicted, actual) with
  | true, true -> { c with true_ready = c.true_ready + 1 }
  | true, false -> { c with false_ready = c.false_ready + 1 }
  | false, false -> { c with true_not_ready = c.true_not_ready + 1 }
  | false, true -> { c with false_not_ready = c.false_not_ready + 1 }

type mode = Basic | Extended

let confusion_of mode migrations =
  List.fold_left
    (fun c (m : Migrate.migration) ->
      match mode with
      | Basic ->
        add c ~predicted:m.Migrate.basic_ready
          ~actual:(Migrate.success m.Migrate.actual_before)
      | Extended ->
        add c ~predicted:m.Migrate.extended_ready
          ~actual:(Migrate.success m.Migrate.actual_after))
    empty migrations

(* Per-suite accuracy for one mode, as a fraction. *)
let suite_accuracy mode suite migrations =
  accuracy (confusion_of mode (Migrate.of_suite suite migrations))

(* -- Failure-cause histogram -------------------------------------------- *)

type cause =
  | Missing_shared_libraries
  | C_library_version
  | Abi_or_fp
  | Stack_problem
  | System_errors
  | Other

let cause_name = function
  | Missing_shared_libraries -> "missing shared libraries"
  | C_library_version -> "C library version requirements"
  | Abi_or_fp -> "ABI / floating point errors"
  | Stack_problem -> "MPI stack not functioning"
  | System_errors -> "system errors"
  | Other -> "other"

let classify = function
  | Feam_dynlinker.Exec.Missing_libraries _
  | Feam_dynlinker.Exec.Arch_mismatched_libraries _
  | Feam_dynlinker.Exec.Interpreter_missing _ ->
    Missing_shared_libraries
  | Feam_dynlinker.Exec.Unsatisfied_versions _ -> C_library_version
  | Feam_dynlinker.Exec.Abi_incompatibility _
  | Feam_dynlinker.Exec.Floating_point_error _ ->
    Abi_or_fp
  | Feam_dynlinker.Exec.Stack_misconfigured _
  | Feam_dynlinker.Exec.No_mpi_stack
  | Feam_dynlinker.Exec.Interconnect_unavailable _ ->
    Stack_problem
  | Feam_dynlinker.Exec.System_error _ -> System_errors
  | Feam_dynlinker.Exec.Not_executable _ | Feam_dynlinker.Exec.Wrong_isa _
  | Feam_dynlinker.Exec.Invalid_process_count _ ->
    Other

(* Histogram of failure causes for a selector over migrations. *)
let failure_histogram select migrations =
  let table = Hashtbl.create 8 in
  List.iter
    (fun m ->
      match select m with
      | Feam_dynlinker.Exec.Success -> ()
      | Feam_dynlinker.Exec.Failure f ->
        let cause = classify f in
        Hashtbl.replace table cause
          (1 + Option.value (Hashtbl.find_opt table cause) ~default:0))
    migrations;
  [ Missing_shared_libraries; C_library_version; Abi_or_fp; Stack_problem;
    System_errors; Other ]
  |> List.filter_map (fun c ->
         match Hashtbl.find_opt table c with
         | Some n -> Some (c, n)
         | None -> None)
