(** Tunables of the evaluation: master seed and failure-injection rates.
    Absolute values are calibrated so the regenerated tables land near
    the paper's numbers; the shape claims hold over a wide range around
    these defaults (see EXPERIMENTS.md's seed sweep). *)

type t = {
  seed : int;
  p_stack_defect : float;
      (** probability an advertised stack carries a defect only foreign
          binaries hit (paper §VI.C) *)
  p_misconfigured : float;
      (** probability an advertised stack is outright misconfigured
          (§III.B) *)
  exec : Feam_sysmodel.Fault_model.t;
  attempts : int;  (** the paper's five-attempt retry policy *)
}

val default : t
