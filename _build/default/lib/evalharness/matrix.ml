(* Site-pair migration matrix: post-resolution success rate for each
   (home, target) pair — a compact view of which environment boundaries
   are hard (old glibc walls, missing vendor runtimes) that the paper's
   aggregate tables average away. *)

type cell = { attempts : int; successes : int }

type t = {
  site_names : string list;
  (* (home, target) -> cell *)
  cells : (string * string, cell) Hashtbl.t;
}

let build sites (migrations : Migrate.migration list) =
  let site_names = List.map Feam_sysmodel.Site.name sites in
  let cells = Hashtbl.create 32 in
  List.iter
    (fun (m : Migrate.migration) ->
      let key =
        (Feam_sysmodel.Site.name m.Migrate.binary.Testset.home, m.Migrate.target_name)
      in
      let prev =
        Option.value (Hashtbl.find_opt cells key) ~default:{ attempts = 0; successes = 0 }
      in
      Hashtbl.replace cells key
        {
          attempts = prev.attempts + 1;
          successes =
            (prev.successes + if Migrate.success m.Migrate.actual_after then 1 else 0);
        })
    migrations;
  { site_names; cells }

let cell t ~home ~target = Hashtbl.find_opt t.cells (home, target)

let rate c =
  if c.attempts = 0 then 0.0
  else float_of_int c.successes /. float_of_int c.attempts

let table t =
  let header = "from \\ to" :: t.site_names in
  let rows =
    List.map
      (fun home ->
        home
        :: List.map
             (fun target ->
               if home = target then "-"
               else
                 match cell t ~home ~target with
                 | None -> "n/a"
                 | Some c ->
                   Printf.sprintf "%.0f%% (%d/%d)" (100.0 *. rate c) c.successes
                     c.attempts)
             t.site_names)
      t.site_names
  in
  Feam_util.Table.make
    ~title:"Migration success after resolution, per site pair"
    ~header rows
