(** The five computing environments of paper Table II, provisioned as
    full simulated sites.  Stack health (misconfigurations,
    foreign-binary defects) is drawn deterministically from the
    evaluation seed, per install. *)

(** Interconnect assumption baked into a stack's build. *)
val stack_interconnect : Feam_mpi.Impl.t -> Feam_mpi.Interconnect.t

(** Health of one stack install, drawn from the seed. *)
val draw_health :
  Params.t ->
  site_name:string ->
  Feam_mpi.Stack.t ->
  Feam_sysmodel.Stack_install.health

type spec = {
  site_name : string;
  site_description : string;
  distro : Feam_sysmodel.Distro.t;
  glibc : string;
  interconnect : Feam_mpi.Interconnect.t;
  compilers : Feam_mpi.Compiler.t list;
  stacks : Feam_mpi.Stack.t list;
  modules_flavor : Feam_sysmodel.Site.modules_flavor;
  tools : Feam_sysmodel.Tools.t;
  batch : Feam_sysmodel.Batch.t;
}

(** Ranger, Forge, Blacklight, India, Fir — as published in Table II. *)
val specs : spec list

val build_site : Params.t -> spec -> Feam_sysmodel.Site.t

(** Build an arbitrary spec list as a reproducible world. *)
val build_specs : Params.t -> spec list -> Feam_sysmodel.Site.t list

(** All five sites, freshly provisioned. *)
val build_all : Params.t -> Feam_sysmodel.Site.t list

val find_by_name : Feam_sysmodel.Site.t list -> string -> Feam_sysmodel.Site.t
