(* Site ranking: the paper's motivating use-case ("scientists can gain
   quicker access to sites with more cores or sites experiencing shorter
   queuing delays", §I) turned into a decision aid.

   Given one binary's bundle and a list of candidate sites, run the
   target phase everywhere and order the sites: predicted-ready sites
   first, by expected time-to-first-result (queue wait + FEAM phase
   time); not-ready sites last, with their blocking reason. *)

open Feam_sysmodel

type entry = {
  rank_site : string;
  ready : bool;
  queue_wait_seconds : float;     (* default queue wait at the site *)
  phase_seconds : float;          (* simulated target-phase duration *)
  staged_libraries : int;         (* resolution work performed *)
  blocking_reason : string option;
}

(* Expected seconds until the user sees a first successful run. *)
let time_to_first_result e = e.queue_wait_seconds +. e.phase_seconds

let evaluate_site config bundle target =
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let clock = Feam_util.Sim_clock.create () in
  let queue = Batch.debug_queue (Site.batch target) in
  match
    Feam_core.Phases.target_phase ~clock config target (Site.base_env target)
      ~bundle ()
  with
  | Error e ->
    {
      rank_site = Site.name target;
      ready = false;
      queue_wait_seconds = queue.Batch.wait_seconds;
      phase_seconds = Feam_util.Sim_clock.elapsed clock;
      staged_libraries = 0;
      blocking_reason = Some e;
    }
  | Ok report ->
    let p = Feam_core.Report.prediction report in
    let staged =
      match p.Feam_core.Predict.verdict with
      | Feam_core.Predict.Ready plan ->
        List.length plan.Feam_core.Predict.staged_copies
      | Feam_core.Predict.Not_ready _ -> 0
    in
    {
      rank_site = Site.name target;
      ready = Feam_core.Predict.is_ready p;
      queue_wait_seconds = queue.Batch.wait_seconds;
      phase_seconds = Feam_util.Sim_clock.elapsed clock;
      staged_libraries = staged;
      blocking_reason =
        (match Feam_core.Predict.reasons p with r :: _ -> Some r | [] -> None);
    }

(* Rank candidate sites for a bundle: ready sites by time-to-first-result,
   then the rest. *)
let rank config bundle targets =
  let entries = List.map (evaluate_site config bundle) targets in
  let ready, blocked = List.partition (fun e -> e.ready) entries in
  let by_time =
    List.sort
      (fun a b -> Float.compare (time_to_first_result a) (time_to_first_result b))
      ready
  in
  by_time @ blocked

let table entries =
  let rows =
    List.mapi
      (fun i e ->
        [
          (if e.ready then string_of_int (i + 1) else "-");
          e.rank_site;
          (if e.ready then "READY" else "not ready");
          Printf.sprintf "%.0f s" (time_to_first_result e);
          string_of_int e.staged_libraries;
          (match e.blocking_reason with
          | Some r when not e.ready ->
            if String.length r > 46 then String.sub r 0 46 ^ "..." else r
          | _ -> "");
        ])
      entries
  in
  Feam_util.Table.make ~title:"Site ranking: where to run first"
    ~header:[ "#"; "Site"; "Prediction"; "Time to result"; "Copies"; "Blocker" ]
    rows
