(* What-if analysis for site administrators: FEAM's data answers not
   only "can this binary run here?" but also "what single installation
   would unlock the most migrations to my site?"  The analysis rebuilds
   the evaluation world with one hypothetical change to a target site —
   an extra compiler runtime, or an extra MPI stack — and measures the
   delta in post-resolution successes into that site.

   This closes the loop the paper opens in §VI.C: the dominant failures
   (missing vendor runtimes, absent MPI implementations) are exactly the
   things administrators can install. *)

open Feam_util
open Feam_mpi

type change =
  | Add_compiler of Compiler.t
      (* install a compiler suite (its runtime becomes resolvable) *)
  | Add_stack of Stack.t
      (* install an MPI stack *)

let change_to_string = function
  | Add_compiler c -> "install compiler " ^ Compiler.to_string c
  | Add_stack s -> "install MPI stack " ^ Stack.slug s

(* Apply a change to one site's spec. *)
let apply_change (spec : Sites.spec) = function
  | Add_compiler c -> { spec with Sites.compilers = spec.Sites.compilers @ [ c ] }
  | Add_stack s -> { spec with Sites.stacks = spec.Sites.stacks @ [ s ] }

type result = {
  site : string;
  change : string;
  successes_before_change : int;
  successes_after_change : int;
  migrations : int;
}

let delta r = r.successes_after_change - r.successes_before_change

(* Successes into [site_name] over a migration list. *)
let successes_into site_name migrations =
  List.length
    (List.filter
       (fun (m : Migrate.migration) ->
         m.Migrate.target_name = site_name
         && Migrate.success m.Migrate.actual_after)
       migrations)

let migrations_into site_name migrations =
  List.length
    (List.filter
       (fun (m : Migrate.migration) -> m.Migrate.target_name = site_name)
       migrations)

(* Evaluate one hypothetical change at one site.  Both worlds are built
   from scratch so each is internally consistent; residual differences
   from the stochastic draws (corpus membership, system errors) are
   small compared to the structural delta the change produces.  Note the
   migration count itself can change: installing a new MPI
   implementation widens the matching-implementation universe. *)
let evaluate (params : Params.t) ~site_name ~change =
  let benchmarks = Feam_suites.Npb.all @ Feam_suites.Specmpi.all in
  let run specs =
    let sites = Sites.build_specs params specs in
    let binaries = Testset.build params sites benchmarks in
    Migrate.run_all params sites binaries
  in
  let baseline = run Sites.specs in
  let changed_specs =
    List.map
      (fun spec ->
        if spec.Sites.site_name = site_name then apply_change spec change
        else spec)
      Sites.specs
  in
  let changed = run changed_specs in
  {
    site = site_name;
    change = change_to_string change;
    successes_before_change = successes_into site_name baseline;
    successes_after_change = successes_into site_name changed;
    migrations = migrations_into site_name changed;
  }

let table results =
  Feam_util.Table.make
    ~title:"What-if: additional successful migrations per hypothetical install"
    ~aligns:
      [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Site"; "Change"; "Before"; "After"; "Delta" ]
    (List.map
       (fun r ->
         [
           r.site;
           r.change;
           Printf.sprintf "%d/%d" r.successes_before_change r.migrations;
           Printf.sprintf "%d/%d" r.successes_after_change r.migrations;
           Printf.sprintf "%+d" (delta r);
         ])
       results)
