(* Ablation study: how much each design choice of the extended prediction
   contributes.  Each variant strips one capability out of the bundle
   before the target phase runs and re-measures Table III's extended
   accuracy and Table IV's after-resolution success rate:

   - "full FEAM": the complete system (the baseline);
   - "no foreign probes": native hello worlds only — the basic
     prediction's blindness to foreign-binary ABI/FP stack defects;
   - "C probes only": drop the Fortran hello world — probes stop
     exercising the Fortran runtime and its staged copies;
   - "no resolution": drop the library copies — the bundle still enables
     probing but nothing can be repaired (Table IV "before" plus probe
     knowledge);
   - "no bundle at all": equivalent to basic prediction, for reference. *)

open Feam_core

type variant = {
  variant_name : string;
  bundle_filter : Bundle.t -> Bundle.t;
}

let full = { variant_name = "full FEAM"; bundle_filter = (fun b -> b) }

let no_foreign_probes =
  {
    variant_name = "no foreign probes";
    bundle_filter = (fun b -> { b with Bundle.probes = [] });
  }

let c_probes_only =
  {
    variant_name = "C probes only";
    bundle_filter =
      (fun b ->
        {
          b with
          Bundle.probes =
            List.filter
              (fun p -> p.Bundle.probe_name = "hello_mpi")
              b.Bundle.probes;
        });
  }

let no_resolution =
  {
    variant_name = "no resolution";
    bundle_filter = (fun b -> { b with Bundle.copies = [] });
  }

let variants = [ full; no_foreign_probes; c_probes_only; no_resolution ]

type result = {
  variant : string;
  extended_accuracy_nas : float;
  extended_accuracy_spec : float;
  after_nas : float;
  after_spec : float;
}

(* Run the migration matrix once per variant (the corpus and sites are
   rebuilt each time so per-run state cannot leak between variants). *)
let run (params : Params.t) =
  List.map
    (fun variant ->
      let sites = Sites.build_all params in
      let benchmarks = Feam_suites.Npb.all @ Feam_suites.Specmpi.all in
      let binaries = Testset.build params sites benchmarks in
      let migrations =
        Migrate.run_all ~bundle_filter:variant.bundle_filter params sites
          binaries
      in
      let acc suite = Accuracy.suite_accuracy Accuracy.Extended suite migrations in
      let after suite =
        Resolution_impact.rate_after (Resolution_impact.of_suite suite migrations)
      in
      {
        variant = variant.variant_name;
        extended_accuracy_nas = acc Feam_suites.Benchmark.Nas;
        extended_accuracy_spec = acc Feam_suites.Benchmark.Spec_mpi2007;
        after_nas = after Feam_suites.Benchmark.Nas;
        after_spec = after Feam_suites.Benchmark.Spec_mpi2007;
      })
    variants

let table results =
  let pct f = Printf.sprintf "%.0f%%" (100.0 *. f) in
  Feam_util.Table.make
    ~title:"Ablation: contribution of each extended-prediction capability"
    ~aligns:
      [ Feam_util.Table.Left; Feam_util.Table.Right; Feam_util.Table.Right;
        Feam_util.Table.Right; Feam_util.Table.Right ]
    ~header:
      [ "Variant"; "Ext. acc NAS"; "Ext. acc SPEC"; "Success NAS"; "Success SPEC" ]
    (List.map
       (fun r ->
         [
           r.variant;
           pct r.extended_accuracy_nas;
           pct r.extended_accuracy_spec;
           pct r.after_nas;
           pct r.after_spec;
         ])
       results)
