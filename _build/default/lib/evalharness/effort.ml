(* User-effort model: the paper's second future-work direction —
   "quantifying the amount of user effort required to perform migration
   tasks so that we can more concretely compute the efficiency gains of
   using our methods" (§VII).

   The model assigns wall-clock minutes of *human* effort to the manual
   workflow (reading site documentation, discovering MPI stacks by hand,
   trial-and-error submissions, chasing missing libraries) and to the
   FEAM workflow (writing the small configuration file, launching phases,
   reading the report), then aggregates both over the evaluation's
   migration matrix.  The constants are deliberately conservative
   estimates of the paper's "many hours to familiarize themselves with
   just one new environment" (§I). *)

(* -- Manual workflow constants (minutes of human attention) --------------- *)

let manual_env_study = 45.0
(* reading user guides, module lists, picking an MPI stack by hand *)

let manual_submission_attempt = 12.0
(* writing/adjusting a submission script, submitting, inspecting output *)

let manual_missing_lib_chase = 40.0
(* identifying a missing library, locating a copy, wiring LD_LIBRARY_PATH *)

let manual_dead_end = 25.0
(* concluding (after failed attempts) that a site cannot work *)

(* -- FEAM workflow constants ------------------------------------------------ *)

let feam_configuration = 5.0
(* writing the configuration file: submission formats, binary location *)

let feam_phase_attention = 3.0
(* launching a phase and reading its report *)

(* -- Per-migration estimates ------------------------------------------------ *)

(* Manual effort for one migration, from what actually happened: the user
   studies the environment, then iterates failed submissions; missing
   libraries trigger a by-hand chase; an ultimately failing site costs a
   dead-end investigation on top. *)
let manual_minutes (m : Migrate.migration) =
  let base = manual_env_study +. manual_submission_attempt in
  match m.Migrate.actual_after with
  | Feam_dynlinker.Exec.Success ->
    (* how hard was success? add the library chase when resolution was
       what made it work *)
    if Migrate.success m.Migrate.actual_before then base
    else base +. manual_submission_attempt +. manual_missing_lib_chase
  | Feam_dynlinker.Exec.Failure f -> (
    match Accuracy.classify f with
    | Accuracy.Missing_shared_libraries ->
      base +. manual_submission_attempt +. manual_missing_lib_chase
      +. manual_dead_end
    | Accuracy.C_library_version | Accuracy.Abi_or_fp | Accuracy.Stack_problem
      ->
      base +. (2.0 *. manual_submission_attempt) +. manual_dead_end
    | Accuracy.System_errors | Accuracy.Other ->
      base +. manual_submission_attempt +. manual_dead_end)

(* FEAM effort for one migration: configuration is per-site, phases are
   launch-and-read.  The machine time (under five minutes per phase) is
   not human attention and is excluded, as the paper's framing implies. *)
let feam_minutes (_m : Migrate.migration) =
  feam_configuration +. (2.0 *. feam_phase_attention)

type summary = {
  migrations : int;
  manual_total_minutes : float;
  feam_total_minutes : float;
}

let summarize migrations =
  List.fold_left
    (fun acc m ->
      {
        migrations = acc.migrations + 1;
        manual_total_minutes = acc.manual_total_minutes +. manual_minutes m;
        feam_total_minutes = acc.feam_total_minutes +. feam_minutes m;
      })
    { migrations = 0; manual_total_minutes = 0.0; feam_total_minutes = 0.0 }
    migrations

let of_suite suite migrations =
  summarize (Migrate.of_suite suite migrations)

(* Efficiency gain: manual effort divided by FEAM effort. *)
let gain s =
  if s.feam_total_minutes = 0.0 then 0.0
  else s.manual_total_minutes /. s.feam_total_minutes

let hours minutes = minutes /. 60.0

(* Render the effort table printed by evaltool/bench. *)
let table migrations =
  let nas = of_suite Feam_suites.Benchmark.Nas migrations in
  let spec = of_suite Feam_suites.Benchmark.Spec_mpi2007 migrations in
  let row label f =
    [ label; f nas; f spec ]
  in
  Feam_util.Table.make
    ~title:
      "User-effort model (paper SVII future work: quantifying efficiency gains)"
    ~aligns:[ Feam_util.Table.Left; Feam_util.Table.Right; Feam_util.Table.Right ]
    ~header:[ ""; "NAS"; "SPEC" ]
    [
      row "Migrations" (fun s -> string_of_int s.migrations);
      row "Manual effort (hours)" (fun s ->
          Printf.sprintf "%.0f" (hours s.manual_total_minutes));
      row "FEAM effort (hours)" (fun s ->
          Printf.sprintf "%.0f" (hours s.feam_total_minutes));
      row "Efficiency gain" (fun s -> Printf.sprintf "%.1fx" (gain s));
    ]
