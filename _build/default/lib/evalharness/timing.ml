(* Phase timing and bundle-size measurement (paper §VI.C: both FEAM
   phases always completed in under five minutes, and a per-site bundle
   of shared-library copies averaged about 45 MB). *)

open Feam_util
open Feam_sysmodel

type phase_timing = {
  binary_id : string;
  target : string;
  source_seconds : float;
  target_seconds : float;
}

(* Time FEAM's phases for one migration, on simulated wall clocks. *)
let time_migration binary target =
  let config = Feam_core.Config.default in
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let source_clock = Sim_clock.create () in
  let home_env =
    Modules_tool.load_stack
      (Site.base_env binary.Testset.home)
      binary.Testset.install
  in
  let bundle =
    Feam_core.Phases.source_phase ~clock:source_clock config
      binary.Testset.home home_env ~binary_path:binary.Testset.home_path
  in
  let target_clock = Sim_clock.create () in
  (match bundle with
  | Ok bundle ->
    ignore
      (Feam_core.Phases.target_phase ~clock:target_clock config target
         (Site.base_env target) ~bundle ())
  | Error _ -> ());
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  {
    binary_id = binary.Testset.id;
    target = Site.name target;
    source_seconds = Sim_clock.elapsed source_clock;
    target_seconds = Sim_clock.elapsed target_clock;
  }

(* Time a sample of migrations: one binary per home site to every other
   matching site. *)
let sample_timings sites binaries =
  let sample =
    (* first binary homed at each site *)
    List.filter_map
      (fun site ->
        List.find_opt
          (fun b -> Site.name b.Testset.home = Site.name site)
          binaries)
      sites
  in
  List.concat_map
    (fun binary ->
      sites
      |> List.filter (fun t ->
             Site.name t <> Site.name binary.Testset.home
             && Migrate.has_matching_impl binary t)
      |> List.map (fun t -> time_migration binary t))
    sample

let max_seconds timings =
  List.fold_left
    (fun acc t -> Float.max acc (Float.max t.source_seconds t.target_seconds))
    0.0 timings

(* Per-site bundle sizes: the source-phase bundles of every test binary
   homed at a site, merged (distinct library copies counted once) — the
   quantity the paper reports averaging ~45 MB. *)
let site_bundle_bytes binaries site =
  let config = Feam_core.Config.default in
  let bundles =
    binaries
    |> List.filter (fun b -> Site.name b.Testset.home = Site.name site)
    |> List.filter_map (fun b ->
           let env =
             Modules_tool.load_stack (Site.base_env site) b.Testset.install
           in
           match
             Feam_core.Phases.source_phase config site env
               ~binary_path:b.Testset.home_path
           with
           | Ok bundle -> Some bundle
           | Error _ -> None)
  in
  Feam_core.Bundle.merged_library_bytes bundles

let bundle_report sites binaries =
  List.map
    (fun site ->
      (Site.name site, site_bundle_bytes binaries site))
    sites

let mb bytes = float_of_int bytes /. (1024.0 *. 1024.0)
