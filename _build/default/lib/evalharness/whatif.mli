(** What-if analysis for site administrators: measure how many more
    migrations into a site would succeed if one hypothetical
    installation (a compiler runtime, an MPI stack) were made — turning
    FEAM's evaluation data into an install-prioritization aid. *)

type change =
  | Add_compiler of Feam_mpi.Compiler.t
  | Add_stack of Feam_mpi.Stack.t

val change_to_string : change -> string

type result = {
  site : string;
  change : string;
  successes_before_change : int;
  successes_after_change : int;
  migrations : int;
}

(** Additional successes the change unlocks. *)
val delta : result -> int

(** Evaluate one hypothetical change at one Table II site (runs the full
    evaluation twice: baseline and changed world). *)
val evaluate : Params.t -> site_name:string -> change:change -> result

val table : result list -> Feam_util.Table.t
