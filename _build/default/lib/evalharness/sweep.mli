(** Seed sweep: rerun the full evaluation over several seeds and
    aggregate each headline metric against the paper's values. *)

type metrics = (string * float) list

(** The headline metrics of one evaluation run, as percentages. *)
val measure : Migrate.migration list -> metrics

(** The paper's values for the same metrics. *)
val paper_values : (string * float) list

(** One full evaluation at a seed. *)
val run_once : ?on_progress:(int -> unit) -> int -> metrics

type aggregate = {
  metric : string;
  paper : float;
  mean : float;
  minimum : float;
  maximum : float;
}

(** Sweep [n] consecutive seeds. *)
val run : ?on_progress:(int -> unit) -> ?first_seed:int -> int -> aggregate list

val table : seeds:int -> aggregate list -> Feam_util.Table.t
