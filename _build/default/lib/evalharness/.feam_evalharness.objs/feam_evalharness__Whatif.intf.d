lib/evalharness/whatif.mli: Feam_mpi Feam_util Params
