lib/evalharness/testset.mli: Feam_suites Feam_sysmodel Params
