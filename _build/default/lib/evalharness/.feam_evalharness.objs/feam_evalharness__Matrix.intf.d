lib/evalharness/matrix.mli: Feam_sysmodel Feam_util Migrate
