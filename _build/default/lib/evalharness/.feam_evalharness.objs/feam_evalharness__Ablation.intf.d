lib/evalharness/ablation.mli: Feam_core Feam_util Params
