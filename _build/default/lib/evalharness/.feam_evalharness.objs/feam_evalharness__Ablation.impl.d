lib/evalharness/ablation.ml: Accuracy Bundle Feam_core Feam_suites Feam_util List Migrate Params Printf Resolution_impact Sites Testset
