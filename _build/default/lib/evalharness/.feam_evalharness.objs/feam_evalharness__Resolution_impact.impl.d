lib/evalharness/resolution_impact.ml: Accuracy Feam_dynlinker List Migrate
