lib/evalharness/scenario.ml: Batch Compiler Distro Fault_model Feam_elf Feam_mpi Feam_sysmodel Feam_toolchain Feam_util Impl Interconnect List Printf Site Stack Stack_install String Version
