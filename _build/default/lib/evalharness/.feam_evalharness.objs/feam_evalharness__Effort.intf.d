lib/evalharness/effort.mli: Feam_suites Feam_util Migrate
