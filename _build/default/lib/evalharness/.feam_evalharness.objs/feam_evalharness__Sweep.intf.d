lib/evalharness/sweep.mli: Feam_util Migrate
