lib/evalharness/timing.ml: Feam_core Feam_sysmodel Feam_util Float List Migrate Modules_tool Sim_clock Site Testset Vfs
