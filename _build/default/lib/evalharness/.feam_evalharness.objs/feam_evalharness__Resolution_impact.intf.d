lib/evalharness/resolution_impact.mli: Feam_suites Migrate
