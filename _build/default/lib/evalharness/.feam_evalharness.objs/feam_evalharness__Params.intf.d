lib/evalharness/params.mli: Feam_sysmodel
