lib/evalharness/corpus_stats.ml: Benchmark Feam_suites Feam_sysmodel Feam_util List Testset
