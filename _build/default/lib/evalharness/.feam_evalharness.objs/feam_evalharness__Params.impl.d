lib/evalharness/params.ml: Feam_dynlinker Feam_sysmodel
