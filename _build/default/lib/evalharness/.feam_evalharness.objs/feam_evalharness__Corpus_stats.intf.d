lib/evalharness/corpus_stats.mli: Feam_suites Feam_sysmodel Feam_util Testset
