lib/evalharness/ranking.mli: Feam_core Feam_sysmodel Feam_util
