lib/evalharness/migrate.ml: Benchmark Compiler Env Feam_core Feam_dynlinker Feam_mpi Feam_suites Feam_sysmodel Impl List Modules_tool Params Site Stack Stack_install Testset Vfs
