lib/evalharness/ranking.ml: Batch Feam_core Feam_sysmodel Feam_util Float List Printf Site String Vfs
