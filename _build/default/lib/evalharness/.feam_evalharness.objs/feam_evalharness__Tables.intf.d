lib/evalharness/tables.mli: Feam_sysmodel Feam_util Migrate Testset
