lib/evalharness/effort.ml: Accuracy Feam_dynlinker Feam_suites Feam_util List Migrate Printf
