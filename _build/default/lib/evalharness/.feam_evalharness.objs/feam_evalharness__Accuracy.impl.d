lib/evalharness/accuracy.ml: Feam_dynlinker Hashtbl List Migrate Option
