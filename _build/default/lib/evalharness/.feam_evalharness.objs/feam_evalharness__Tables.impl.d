lib/evalharness/tables.ml: Accuracy Benchmark Feam_core Feam_elf Feam_mpi Feam_suites Feam_sysmodel Feam_util List Migrate Printf Resolution_impact String Table Testset Version
