lib/evalharness/whatif.ml: Compiler Feam_mpi Feam_suites Feam_util List Migrate Params Printf Sites Stack Table Testset
