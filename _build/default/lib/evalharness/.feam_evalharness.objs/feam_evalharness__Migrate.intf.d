lib/evalharness/migrate.mli: Feam_core Feam_dynlinker Feam_suites Feam_sysmodel Feam_util Params Testset
