lib/evalharness/timing.mli: Feam_sysmodel Testset
