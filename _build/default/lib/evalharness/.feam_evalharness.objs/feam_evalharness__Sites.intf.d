lib/evalharness/sites.mli: Feam_mpi Feam_sysmodel Params
