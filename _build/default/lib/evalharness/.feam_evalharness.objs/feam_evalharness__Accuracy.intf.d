lib/evalharness/accuracy.mli: Feam_dynlinker Feam_suites Migrate
