lib/evalharness/sweep.ml: Accuracy Benchmark Feam_suites Feam_util Float List Migrate Npb Params Printf Resolution_impact Sites Specmpi Testset
