lib/evalharness/testset.ml: Benchmark Feam_dynlinker Feam_suites Feam_sysmodel Feam_toolchain Feam_util List Modules_tool Params Printf Prng Site Stack_install Vfs
