lib/evalharness/scenario.mli: Feam_sysmodel
