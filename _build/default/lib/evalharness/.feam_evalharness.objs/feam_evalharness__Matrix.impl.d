lib/evalharness/matrix.ml: Feam_sysmodel Feam_util Hashtbl List Migrate Option Printf Testset
