(** User-effort model: the paper's future-work direction of quantifying
    the user effort migration tasks require, to compute the efficiency
    gains of FEAM's automation (§VII).

    Assigns minutes of human attention to the manual workflow (studying a
    site, trial-and-error submissions, chasing missing libraries) and to
    the FEAM workflow (configuration, launch-and-read), aggregated over
    the migration matrix. *)

(** Manual effort for one migration, derived from what actually
    happened. *)
val manual_minutes : Migrate.migration -> float

(** FEAM effort for one migration (human attention only; machine time is
    excluded). *)
val feam_minutes : Migrate.migration -> float

type summary = {
  migrations : int;
  manual_total_minutes : float;
  feam_total_minutes : float;
}

val summarize : Migrate.migration list -> summary
val of_suite : Feam_suites.Benchmark.suite -> Migrate.migration list -> summary

(** Efficiency gain: manual effort divided by FEAM effort. *)
val gain : summary -> float

val hours : float -> float

(** The effort table printed by evaltool/bench. *)
val table : Migrate.migration list -> Feam_util.Table.t
