(** The migration experiment (paper §VI.B): every test binary is migrated
    to every other site offering a matching MPI implementation — only
    those migrations are reported, as in the paper.

    Each migration records the basic prediction (target phase only), the
    extended prediction (both phases), and the ground-truth executions
    before resolution (matching stack, no library fixes — Table IV
    "before") and after resolution (FEAM's configuration — "after").
    Table III scores basic against the before-run and extended against
    the after-run, the executions each mode configures. *)

type migration = {
  binary : Testset.binary;
  target_name : string;
  basic_ready : bool;
  basic_reasons : string list;
  extended_ready : bool;
  extended_reasons : string list;
  staged_copies : string list;
  actual_before : Feam_dynlinker.Exec.outcome;
  actual_after : Feam_dynlinker.Exec.outcome;
}

val success : Feam_dynlinker.Exec.outcome -> bool
val basic_correct : migration -> bool
val extended_correct : migration -> bool

(** The stack a knowledgeable user selects by hand: matching MPI
    implementation, preferring the build compiler family. *)
val user_stack_choice :
  Testset.binary -> Feam_sysmodel.Site.t -> Feam_sysmodel.Stack_install.t option

val has_matching_impl : Testset.binary -> Feam_sysmodel.Site.t -> bool

(** Run one migration (cleans target-side staging before and after).
    [bundle_filter] transforms the source-phase bundle before the
    extended target phase — the ablation study's hook. *)
val migrate :
  ?clock:Feam_util.Sim_clock.t ->
  ?bundle_filter:(Feam_core.Bundle.t -> Feam_core.Bundle.t) ->
  Params.t ->
  Testset.binary ->
  Feam_sysmodel.Site.t ->
  migration

(** All migrations of a corpus. *)
val run_all :
  ?clock:Feam_util.Sim_clock.t ->
  ?bundle_filter:(Feam_core.Bundle.t -> Feam_core.Bundle.t) ->
  Params.t ->
  Feam_sysmodel.Site.t list ->
  Testset.binary list ->
  migration list

val of_suite : Feam_suites.Benchmark.suite -> migration list -> migration list
