(** Corpus composition statistics: binaries per benchmark and build site
    (the quantitative version of §VI.A's subset narrative). *)

type row = {
  benchmark : string;
  suite : Feam_suites.Benchmark.suite;
  per_site : (string * int) list;
  total : int;
}

val compute : Feam_sysmodel.Site.t list -> Testset.binary list -> row list
val table : Feam_sysmodel.Site.t list -> Testset.binary list -> Feam_util.Table.t
