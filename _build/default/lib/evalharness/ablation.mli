(** Ablation study: how much each design choice of the extended
    prediction contributes.  Each variant strips one capability out of
    the bundle and re-measures the extended accuracy (Table III) and the
    after-resolution success rate (Table IV). *)

type variant = {
  variant_name : string;
  bundle_filter : Feam_core.Bundle.t -> Feam_core.Bundle.t;
}

val full : variant
val no_foreign_probes : variant
val c_probes_only : variant
val no_resolution : variant

(** All variants, baseline first. *)
val variants : variant list

type result = {
  variant : string;
  extended_accuracy_nas : float;
  extended_accuracy_spec : float;
  after_nas : float;
  after_spec : float;
}

(** Run the migration matrix once per variant. *)
val run : Params.t -> result list

val table : result list -> Feam_util.Table.t
