(* Shared-object naming convention: lib<name>.so.<major>[.<minor>[.<patch>]].
   The prediction model's shared-library determinant (paper §III.D) is built
   on this convention: a library with the same base name and the same major
   version is API compatible. *)

type t = {
  base : string;          (* "libmpi", "libgfortran", ... *)
  version : int list;     (* the trailing dotted numbers; [] for "libfoo.so" *)
}

let make ?(version = []) base =
  if base = "" then invalid_arg "Soname.make: empty base";
  if List.exists (fun c -> c < 0) version then
    invalid_arg "Soname.make: negative version component";
  { base; version }

let base t = t.base
let version t = t.version

let major t =
  match t.version with
  | [] -> None
  | v :: _ -> Some v

let to_string t =
  let suffix = List.map (fun c -> "." ^ string_of_int c) t.version in
  t.base ^ ".so" ^ String.concat "" suffix

(* The link name used at compile time: "libfoo.so". *)
let link_name t = t.base ^ ".so"

(* Parse "libfoo.so.1.2.3".  Returns [None] when there is no ".so"
   component, e.g. for ordinary file names. *)
let of_string s =
  let is_digit c = c >= '0' && c <= '9' in
  (* Find the last ".so" occurrence that is followed only by dotted
     numbers (or nothing). *)
  let n = String.length s in
  let rec find_so i =
    if i + 3 > n then None
    else if String.sub s i 3 = ".so" then
      let rest = String.sub s (i + 3) (n - i - 3) in
      let ok, version =
        if rest = "" then (true, [])
        else if rest.[0] <> '.' then (false, [])
        else
          let parts = String.split_on_char '.' (String.sub rest 1 (String.length rest - 1)) in
          let numeric p = p <> "" && String.for_all is_digit p in
          if List.for_all numeric parts then (true, List.map int_of_string parts)
          else (false, [])
      in
      if ok && i > 0 then Some { base = String.sub s 0 i; version }
      else find_so (i + 1)
    else find_so (i + 1)
  in
  find_so 0

let of_string_exn s =
  match of_string s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Soname.of_string_exn: %S" s)

let equal a b = a.base = b.base && a.version = b.version

let compare a b =
  let c = String.compare a.base b.base in
  if c <> 0 then c else Stdlib.compare a.version b.version

(* [satisfies ~provided ~required]: can a library named [provided] satisfy a
   dependency on [required]?  Same base name and, when the requirement names
   a major version, the same major version (libraries sharing a major
   version are API compatible by convention).  A requirement without a
   version ("libfoo.so") is satisfied by any version of the library. *)
let satisfies ~provided ~required =
  provided.base = required.base
  &&
  match (major required, major provided) with
  | None, _ -> true
  | Some _, None -> false
  | Some r, Some p -> r = p

(* Order candidate providers for one requirement: higher versions first so
   that searches pick the newest compatible copy. *)
let newest_first a b = Stdlib.compare b.version a.version

let pp ppf t = Fmt.string ppf (to_string t)
