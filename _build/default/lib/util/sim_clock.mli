(** Simulated wall-clock accounting.  Site operations (tool invocations,
    compiles, batch-queue waits, probe runs) charge seconds to a clock so
    the evaluation can report FEAM phase durations (paper §VI.C: both
    phases always under five minutes). *)

type t

val create : unit -> t

(** @raise Invalid_argument on negative durations. *)
val charge : t -> float -> unit

val elapsed : t -> float
val reset : t -> unit

(** "3m42s"-style rendering. *)
val to_string : t -> string
