(* RFC 4648 base64, used to embed binary ELF images in the textual
   bundle format (the artifact FEAM's source phase writes and users copy
   to target sites). *)

let alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let decode_table =
  let t = Array.make 256 (-1) in
  String.iteri (fun i c -> t.(Char.code c) <- i) alphabet;
  t

let encode (s : string) : string =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let byte i = Char.code s.[i] in
  let rec go i =
    if i + 3 <= n then begin
      let b = (byte i lsl 16) lor (byte (i + 1) lsl 8) lor byte (i + 2) in
      Buffer.add_char out alphabet.[(b lsr 18) land 63];
      Buffer.add_char out alphabet.[(b lsr 12) land 63];
      Buffer.add_char out alphabet.[(b lsr 6) land 63];
      Buffer.add_char out alphabet.[b land 63];
      go (i + 3)
    end
    else if i + 2 = n then begin
      let b = (byte i lsl 16) lor (byte (i + 1) lsl 8) in
      Buffer.add_char out alphabet.[(b lsr 18) land 63];
      Buffer.add_char out alphabet.[(b lsr 12) land 63];
      Buffer.add_char out alphabet.[(b lsr 6) land 63];
      Buffer.add_char out '='
    end
    else if i + 1 = n then begin
      let b = byte i lsl 16 in
      Buffer.add_char out alphabet.[(b lsr 18) land 63];
      Buffer.add_char out alphabet.[(b lsr 12) land 63];
      Buffer.add_string out "=="
    end
  in
  go 0;
  Buffer.contents out

type error = Bad_length | Bad_character of char

let error_to_string = function
  | Bad_length -> "base64: input length not a multiple of 4"
  | Bad_character c -> Printf.sprintf "base64: invalid character %C" c

let decode (s : string) : (string, error) result =
  let n = String.length s in
  if n mod 4 <> 0 then Error Bad_length
  else begin
    let out = Buffer.create (n / 4 * 3) in
    let exception Bad of char in
    let value i =
      let c = s.[i] in
      let v = decode_table.(Char.code c) in
      if v < 0 then raise (Bad c) else v
    in
    try
      let rec go i =
        if i < n then begin
          let pad =
            if i + 4 = n then
              if s.[i + 3] = '=' then if s.[i + 2] = '=' then 2 else 1 else 0
            else 0
          in
          let v0 = value i and v1 = value (i + 1) in
          let v2 = if pad >= 2 then 0 else value (i + 2) in
          let v3 = if pad >= 1 then 0 else value (i + 3) in
          let b = (v0 lsl 18) lor (v1 lsl 12) lor (v2 lsl 6) lor v3 in
          Buffer.add_char out (Char.chr ((b lsr 16) land 0xff));
          if pad < 2 then Buffer.add_char out (Char.chr ((b lsr 8) land 0xff));
          if pad < 1 then Buffer.add_char out (Char.chr (b land 0xff));
          go (i + 4)
        end
      in
      go 0;
      Ok (Buffer.contents out)
    with Bad c -> Error (Bad_character c)
  end

let decode_exn s =
  match decode s with
  | Ok v -> v
  | Error e -> invalid_arg ("Base64.decode_exn: " ^ error_to_string e)
