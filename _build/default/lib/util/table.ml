(* Plain-text table rendering for evaluation reports and the bench harness
   output that mirrors the paper's tables. *)

type align = Left | Right | Center

type t = {
  title : string option;
  header : string list;
  rows : string list list;
  aligns : align list option;
}

let make ?title ?aligns ~header rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Table.make: row width does not match header")
    rows;
  (match aligns with
  | Some a when List.length a <> List.length header ->
    invalid_arg "Table.make: alignment width does not match header"
  | _ -> ());
  { title; header; rows; aligns }

let column_widths t =
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure t.header;
  List.iter measure t.rows;
  widths

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
      let l = fill / 2 in
      String.make l ' ' ^ s ^ String.make (fill - l) ' '

let render t =
  let widths = column_widths t in
  let aligns =
    match t.aligns with
    | Some a -> Array.of_list a
    | None -> Array.make (Array.length widths) Left
  in
  let buf = Buffer.create 256 in
  let rule () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let emit_row row =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell);
        Buffer.add_char buf ' ')
      row;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  emit_row t.header;
  rule ();
  List.iter emit_row t.rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let percent ?(decimals = 0) num den =
  if den = 0 then "n/a"
  else Printf.sprintf "%.*f%%" decimals (100.0 *. float_of_int num /. float_of_int den)
