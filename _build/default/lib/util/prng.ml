(* Deterministic splittable PRNG (splitmix64).  All stochastic behaviour in
   the simulators — system errors, site quirks, compile failures — draws
   from seeded streams so that every evaluation run is reproducible. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's int without wrapping *)
  let v = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

(* Uniform float in [0, 1). *)
let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Prng.bool: probability out of range";
  float t < p

(* Derive an independent stream from a string key: used to give each
   (site, stack, benchmark) coordinate its own deterministic quirk draw
   without ordering sensitivity. *)
let hash_key seed key =
  let h = ref (Int64.of_int (seed * 1000003 + 257)) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    key;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)

let of_key ~seed key = create (hash_key seed key)

(* One-shot deterministic Bernoulli draw for a keyed coordinate. *)
let keyed_bool ~seed ~p key = bool (of_key ~seed key) p

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int t (List.length l))
