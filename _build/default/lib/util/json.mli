(** Minimal JSON emitter and parser for machine-readable FEAM reports.
    ASCII-oriented (\\u escapes above 127 decode to a placeholder). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering with proper string escaping. *)
val render : t -> string

(** Parse a complete JSON document. *)
val parse : string -> (t, string) result

(** Object field lookup; [None] on non-objects and missing keys. *)
val member : string -> t -> t option

val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
