(* Dotted release versions with an optional pre-release tag, e.g. "2.3.4",
   "1.7rc1", "1.7a2".  Used for glibc versions, MPI implementation versions,
   compiler versions and shared-object version suffixes. *)

type t = {
  components : int list; (* numeric dotted components, most significant first *)
  tag : string option;   (* pre-release tag: "rc1", "a2", ... *)
}

let make ?tag components =
  if components = [] then invalid_arg "Version.make: empty component list";
  if List.exists (fun c -> c < 0) components then
    invalid_arg "Version.make: negative component";
  { components; tag }

let components t = t.components
let tag t = t.tag

let of_ints components = make components

(* Major component, e.g. 2 for "2.3.4". *)
let major t =
  match t.components with
  | [] -> assert false
  | c :: _ -> c

let minor t =
  match t.components with
  | _ :: c :: _ -> Some c
  | _ -> None

let to_string t =
  let base = String.concat "." (List.map string_of_int t.components) in
  match t.tag with
  | None -> base
  | Some tag -> base ^ tag

(* Parse "2.3.4" or "1.7rc1".  The tag is whatever non-digit/dot suffix
   trails the last numeric component. *)
let of_string s =
  let is_digit c = c >= '0' && c <= '9' in
  let n = String.length s in
  if n = 0 then None
  else
    let rec split_components i acc =
      (* invariant: position [i] starts a numeric component *)
      let rec digits_end j = if j < n && is_digit s.[j] then digits_end (j + 1) else j in
      let j = digits_end i in
      if j = i then None (* expected a digit *)
      else
        let comp = int_of_string (String.sub s i (j - i)) in
        let acc = comp :: acc in
        if j = n then Some (List.rev acc, None)
        else if s.[j] = '.' && j + 1 < n && is_digit s.[j + 1] then
          split_components (j + 1) acc
        else Some (List.rev acc, Some (String.sub s j (n - j)))
    in
    match split_components 0 [] with
    | None -> None
    | Some (components, tag) ->
      let tag = match tag with Some "" -> None | t -> t in
      Some { components; tag }

let of_string_exn s =
  match of_string s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Version.of_string_exn: %S" s)

(* Total order: numeric components compared elementwise with implicit zero
   padding ("1.7" = "1.7.0"); a tagged version is a pre-release and orders
   before the untagged version with the same components ("1.7rc1" < "1.7");
   two tags compare lexicographically. *)
let compare a b =
  let rec cmp_components xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], y :: ys -> if y <> 0 then Stdlib.compare 0 y else cmp_components [] ys
    | x :: xs, [] -> if x <> 0 then Stdlib.compare x 0 else cmp_components xs []
    | x :: xs, y :: ys ->
      let c = Stdlib.compare x y in
      if c <> 0 then c else cmp_components xs ys
  in
  let c = cmp_components a.components b.components in
  if c <> 0 then c
  else
    match (a.tag, b.tag) with
    | None, None -> 0
    | None, Some _ -> 1 (* release > pre-release *)
    | Some _, None -> -1
    | Some x, Some y -> String.compare x y

let equal a b = compare a b = 0
let ( <= ) a b = compare a b <= 0
let ( < ) a b = compare a b < 0
let ( >= ) a b = compare a b >= 0
let ( > ) a b = compare a b > 0

let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b
let min a b = if Stdlib.( <= ) (compare a b) 0 then a else b

let pp ppf t = Fmt.string ppf (to_string t)
