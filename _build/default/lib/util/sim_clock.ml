(* Simulated wall-clock accounting.  Site operations (tool invocations,
   compiles, batch-queue waits, probe runs) charge seconds to a clock so
   that the evaluation can report how long FEAM phases take (paper §VI.C:
   both phases always completed in under five minutes). *)

type t = { mutable elapsed : float }

let create () = { elapsed = 0.0 }

let charge t seconds =
  if seconds < 0.0 then invalid_arg "Sim_clock.charge: negative duration";
  t.elapsed <- t.elapsed +. seconds

let elapsed t = t.elapsed

let reset t = t.elapsed <- 0.0

(* Render "3m42s" style durations. *)
let to_string t =
  let s = t.elapsed in
  let minutes = int_of_float (s /. 60.0) in
  let rest = s -. (float_of_int minutes *. 60.0) in
  if minutes > 0 then Printf.sprintf "%dm%02.0fs" minutes rest
  else Printf.sprintf "%.1fs" rest
