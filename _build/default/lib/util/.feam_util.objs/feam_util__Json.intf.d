lib/util/json.mli:
