lib/util/json.ml: Buffer Char Float List Printf String
