lib/util/sim_clock.ml: Printf
