lib/util/sim_clock.mli:
