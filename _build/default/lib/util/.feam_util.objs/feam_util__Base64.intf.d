lib/util/base64.mli:
