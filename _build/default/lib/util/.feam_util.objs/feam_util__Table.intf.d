lib/util/table.mli:
