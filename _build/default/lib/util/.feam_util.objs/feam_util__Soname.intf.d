lib/util/soname.mli: Fmt
