lib/util/version.ml: Fmt List Printf Stdlib String
