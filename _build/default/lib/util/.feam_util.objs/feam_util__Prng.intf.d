lib/util/prng.mli:
