lib/util/base64.ml: Array Buffer Char Printf String
