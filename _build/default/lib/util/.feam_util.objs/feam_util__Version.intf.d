lib/util/version.mli: Fmt
