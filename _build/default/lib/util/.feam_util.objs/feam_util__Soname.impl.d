lib/util/soname.ml: Fmt List Printf Stdlib String
