(** RFC 4648 base64, used to embed binary ELF images in the textual
    bundle format. *)

val encode : string -> string

type error = Bad_length | Bad_character of char

val error_to_string : error -> string
val decode : string -> (string, error) result

(** @raise Invalid_argument when {!decode} would return an error. *)
val decode_exn : string -> string
