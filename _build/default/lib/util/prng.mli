(** Deterministic splittable PRNG (splitmix64).

    All stochastic behaviour in the simulators — transient system errors,
    per-site quirks, compile failures — draws from seeded streams so that
    every evaluation run is exactly reproducible. *)

type t

val create : int -> t
val copy : t -> t
val next_int64 : t -> int64

(** Uniform int in [\[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** Bernoulli draw with success probability [p].
    @raise Invalid_argument when [p] is outside [\[0, 1\]]. *)
val bool : t -> float -> bool

(** FNV-style hash of a seed and key: the stream index behind
    {!of_key}, also usable directly as a derived seed. *)
val hash_key : int -> string -> int

(** Derive an independent stream from a seed and a string key.  Gives each
    keyed coordinate (site, stack, benchmark, ...) its own deterministic
    draw, insensitive to evaluation order. *)
val of_key : seed:int -> string -> t

(** One-shot deterministic Bernoulli draw for a keyed coordinate. *)
val keyed_bool : seed:int -> p:float -> string -> bool

(** Uniform choice.
    @raise Invalid_argument on an empty list. *)
val pick : t -> 'a list -> 'a
