(** Plain-text table rendering for evaluation reports and the bench
    harness output that mirrors the paper's tables. *)

type align = Left | Right | Center

type t

(** [make ?title ?aligns ~header rows] builds a table.
    @raise Invalid_argument when a row or the alignment list does not match
    the header width. *)
val make : ?title:string -> ?aligns:align list -> header:string list -> string list list -> t

val render : t -> string
val print : t -> unit

(** [percent num den] renders "num/den" as a percentage string, "n/a" when
    [den] is zero. *)
val percent : ?decimals:int -> int -> int -> string
