(* Minimal JSON: emitter and parser, enough for machine-readable FEAM
   reports and their round-trip tests.  No external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* -- rendering ------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec render_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        render_into buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string key);
        Buffer.add_string buf "\":";
        render_into buf value)
      fields;
    Buffer.add_char buf '}'

let render json =
  let buf = Buffer.create 256 in
  render_into buf json;
  Buffer.contents buf

(* -- parsing ---------------------------------------------------------------- *)

exception Parse_failure of int * string

type parser_state = { text : string; mutable pos : int }

let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let fail st message = raise (Parse_failure (st.pos, message))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  if
    st.pos + String.length word <= String.length st.text
    && String.sub st.text st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else fail st ("expected " ^ word)

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
      | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.text then fail st "bad \\u escape";
        let hex = String.sub st.text st.pos 4 in
        st.pos <- st.pos + 4;
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
        | Some _ -> Buffer.add_char buf '?' (* non-ASCII: placeholder *)
        | None -> fail st "bad \\u escape");
        go ()
      | _ -> fail st "bad escape")
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let token = String.sub st.text start (st.pos - start) in
  match int_of_string_opt token with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt token with
    | Some f -> Float f
    | None -> fail st ("bad number: " ^ token))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string_body st)
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let rec go acc =
      let item = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        go (item :: acc)
      | Some ']' ->
        advance st;
        List (List.rev (item :: acc))
      | _ -> fail st "expected ',' or ']'"
    in
    go []
  end

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec go acc =
      skip_ws st;
      let key = parse_string_body st in
      skip_ws st;
      expect st ':';
      let value = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        go ((key, value) :: acc)
      | Some '}' ->
        advance st;
        Obj (List.rev ((key, value) :: acc))
      | _ -> fail st "expected ',' or '}'"
    in
    go []
  end

let parse text =
  let st = { text; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length text then Error "trailing garbage"
    else Ok v
  with Parse_failure (pos, message) ->
    Error (Printf.sprintf "at offset %d: %s" pos message)

(* -- accessors ----------------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
