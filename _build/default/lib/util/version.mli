(** Dotted release versions with an optional pre-release tag.

    Handles the version strings that appear throughout site and binary
    descriptions: glibc versions ("2.3.4"), MPI implementation versions
    ("1.4", "1.7rc1", "1.7a2"), compiler versions ("4.4.5", "11.1") and
    shared-object version suffixes ("6.0.13"). *)

type t

(** [make ?tag components] builds a version from its numeric components,
    most significant first.
    @raise Invalid_argument on an empty list or a negative component. *)
val make : ?tag:string -> int list -> t

(** [of_ints cs] is [make cs]. *)
val of_ints : int list -> t

val components : t -> int list
val tag : t -> string option

(** First numeric component ("2" in "2.3.4"). *)
val major : t -> int

(** Second numeric component, if present. *)
val minor : t -> int option

val to_string : t -> string

(** Parse "2.3.4" or "1.7rc1"; [None] if the string does not start with a
    numeric component. Trailing non-numeric text becomes the tag. *)
val of_string : string -> t option

(** @raise Invalid_argument when {!of_string} would return [None]. *)
val of_string_exn : string -> t

(** Total order: components compared elementwise with zero padding
    ("1.7" = "1.7.0"); a tagged version is a pre-release and orders before
    the same untagged components ("1.7rc1" < "1.7"). *)
val compare : t -> t -> int

val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t
val pp : t Fmt.t
