bin/evaltool.mli:
