bin/feam.mli:
