(* Recursive dependency resolution: the load-time half of the ground
   truth.  Walks the DT_NEEDED closure of a binary under given search
   semantics, checking class/machine of every object and every GNU
   symbol-version requirement against the providers actually found. *)

type resolved_lib = {
  lib_name : string;   (* the requested DT_NEEDED string *)
  lib_path : string;   (* where it was found *)
  lib_bytes : string;
  lib_spec : Feam_elf.Spec.t;
}

type version_failure = {
  vf_object : string;   (* object that required the version *)
  vf_provider : string; (* closure member consulted for the version *)
  vf_scope_pos : int option; (* the provider's position in load order *)
  vf_version : string;  (* the version name, e.g. GLIBC_2.7 *)
}

type arch_mismatch = {
  am_lib : string;
  am_path : string;
}

type t = {
  root_spec : Feam_elf.Spec.t;
  resolved : resolved_lib list;       (* transitive closure, load order *)
  missing : string list;              (* DT_NEEDED names never located *)
  arch_mismatches : arch_mismatch list;
  version_failures : version_failure list;
}

let ok t = t.missing = [] && t.arch_mismatches = [] && t.version_failures = []

(* The object ld.so would consult for versions required from [file]: the
   first closure member, in load order, that was loaded under that name
   or whose DT_SONAME claims it.  Shared with symcheck so that both
   analyses agree on which object was consulted. *)
let consulted_provider resolved file =
  let rec go pos = function
    | [] -> None
    | r :: rest ->
      if r.lib_name = file || r.lib_spec.Feam_elf.Spec.soname = Some file then
        Some (pos, r)
      else go (pos + 1) rest
  in
  go 0 resolved

(* [run site env spec] resolves the dependency closure of an object whose
   parsed spec is [spec].  Each dependency is searched with the root
   object's search directories plus the dependency's own DT_RPATH chain,
   an adequate approximation of ld.so's per-object rpath stacking. *)
let run site env (root : Feam_elf.Spec.t) =
  let root_dirs = Search.search_dirs site env root in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let resolved = ref [] in
  let missing = ref [] in
  let arch_mismatches = ref [] in
  let rec visit ~requester_dirs name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      match Search.locate_elf site (requester_dirs @ root_dirs) name with
      | None -> missing := name :: !missing
      | Some (path, bytes, parsed) ->
        let spec = Feam_elf.Reader.spec parsed in
        if spec.elf_class <> root.elf_class || spec.machine <> root.machine
        then arch_mismatches := { am_lib = name; am_path = path } :: !arch_mismatches
        else begin
          resolved :=
            { lib_name = name; lib_path = path; lib_bytes = bytes; lib_spec = spec }
            :: !resolved;
          let own_dirs = Search.search_dirs site env spec in
          List.iter (visit ~requester_dirs:own_dirs) spec.needed
        end
    end
  in
  List.iter (visit ~requester_dirs:[]) root.needed;
  let resolved = List.rev !resolved in
  (* Version-requirement check: every verneed of the root and of each
     resolved library must be satisfied by the verdefs of the closure
     member actually consulted for that name — the first in load order
     loaded under the name or claiming it by soname, whose position is
     recorded alongside the failure. *)
  let check_object obj_name (spec : Feam_elf.Spec.t) =
    List.concat_map
      (fun vn ->
        match consulted_provider resolved vn.Feam_elf.Spec.vn_file with
        | None -> [] (* provider missing entirely: reported in [missing] *)
        | Some (pos, provider) ->
          let defs = provider.lib_spec.Feam_elf.Spec.verdefs in
          vn.Feam_elf.Spec.vn_versions
          |> List.filter (fun v -> not (List.mem v defs))
          |> List.map (fun v ->
                 {
                   vf_object = obj_name;
                   vf_provider = provider.lib_name;
                   vf_scope_pos = Some pos;
                   vf_version = v;
                 }))
      spec.verneeds
  in
  let version_failures =
    check_object "a.out" root
    @ List.concat_map (fun r -> check_object r.lib_name r.lib_spec) resolved
  in
  let result =
    {
      root_spec = root;
      resolved;
      missing = List.rev !missing;
      arch_mismatches = List.rev !arch_mismatches;
      version_failures;
    }
  in
  (* Journal the resolution: the load order with each provider's scope
     position is the evidence the version check and symcheck verdicts
     rest on. *)
  let open Feam_util in
  Feam_flightrec.Recorder.evidence ~stage:"dynlinker" ~kind:"resolve"
    [
      ( "resolved",
        Json.List
          (List.mapi
             (fun pos r ->
               Json.Obj
                 [
                   ("library", Json.Str r.lib_name);
                   ("path", Json.Str r.lib_path);
                   ("position", Json.Int pos);
                 ])
             result.resolved) );
      ("missing", Json.List (List.map (fun m -> Json.Str m) result.missing));
      ( "arch_mismatches",
        Json.List
          (List.map (fun m -> Json.Str m.am_lib) result.arch_mismatches) );
      ( "version_failures",
        Json.List
          (List.map
             (fun vf ->
               Json.Obj
                 [
                   ("object", Json.Str vf.vf_object);
                   ("provider", Json.Str vf.vf_provider);
                   ( "provider_position",
                     match vf.vf_scope_pos with
                     | Some p -> Json.Int p
                     | None -> Json.Null );
                   ("version", Json.Str vf.vf_version);
                 ])
             result.version_failures) );
    ];
  result
