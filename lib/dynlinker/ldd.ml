(* `ldd -v` emulation.  Runs the same resolution as the real dynamic
   linker and renders the familiar text report.  Mirrors ldd's real
   limitation that the paper works around (§V.A): it cannot inspect
   binaries for a foreign architecture ("not a dynamic executable"), so
   FEAM cannot rely on it alone. *)

open Feam_sysmodel

type error =
  [ `Tool_unavailable of string
  | `No_such_file of string
  | `Not_dynamic of string ]

let error_to_string = function
  | `Tool_unavailable t -> t ^ ": command not found"
  | `No_such_file p -> p ^ ": No such file or directory"
  | `Not_dynamic p -> "\tnot a dynamic executable (" ^ p ^ ")"

let run ?clock site env path =
  if not (Site.tools site).Tools.ldd then Error (`Tool_unavailable "ldd")
  else begin
    Cost.charge clock Cost.ldd_call;
    match Vfs.find (Site.vfs site) path with
    | None -> Error (`No_such_file path)
    | Some { Vfs.kind = Vfs.Elf bytes; _ } -> (
      match Feam_elf.Reader.parse bytes with
      | Error _ -> Error (`Not_dynamic path)
      | Ok parsed ->
        let spec = Feam_elf.Reader.spec parsed in
        (* ldd executes the binary under the dynamic linker: it cannot
           handle foreign-architecture objects. *)
        if
          spec.Feam_elf.Spec.machine <> Site.machine site
          || spec.Feam_elf.Spec.elf_class
             <> Feam_elf.Types.machine_class (Site.machine site)
        then Error (`Not_dynamic path)
        else Ok (Resolve.run site env spec))
    | Some _ -> Error (`Not_dynamic path)
  end

(* Render the classic ldd text output. *)
let render path (resolution : Resolve.t) =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let root_needed = resolution.Resolve.root_spec.Feam_elf.Spec.needed in
  List.iter
    (fun name ->
      match
        List.find_opt (fun r -> r.Resolve.lib_name = name) resolution.Resolve.resolved
      with
      | Some r -> addf "\t%s => %s (0x00002b1a00000000)\n" name r.Resolve.lib_path
      | None -> addf "\t%s => not found\n" name)
    root_needed;
  (* Transitively discovered libraries beyond the root's direct needs. *)
  List.iter
    (fun r ->
      if not (List.mem r.Resolve.lib_name root_needed) then
        addf "\t%s => %s (0x00002b1a00000000)\n" r.Resolve.lib_name r.Resolve.lib_path)
    resolution.Resolve.resolved;
  List.iter
    (fun m -> addf "\t%s => not found\n" m)
    (List.filter (fun m -> not (List.mem m root_needed)) resolution.Resolve.missing);
  addf "\n\tVersion information:\n\t%s:\n" path;
  List.iter
    (fun vn ->
      List.iter
        (fun v ->
          let consulted =
            Resolve.consulted_provider resolution.Resolve.resolved
              vn.Feam_elf.Spec.vn_file
          in
          let satisfied =
            not
              (List.exists
                 (fun f ->
                   f.Resolve.vf_version = v
                   &&
                   match consulted with
                   | Some (_, r) -> f.Resolve.vf_provider = r.Resolve.lib_name
                   | None -> f.Resolve.vf_provider = vn.Feam_elf.Spec.vn_file)
                 resolution.Resolve.version_failures)
          in
          let provider_path =
            Option.map (fun (_, r) -> r.Resolve.lib_path) consulted
          in
          match (satisfied, provider_path) with
          | true, Some p -> addf "\t\t%s (%s) => %s\n" vn.Feam_elf.Spec.vn_file v p
          | _ -> addf "\t\t%s (%s) => not found\n" vn.Feam_elf.Spec.vn_file v)
        vn.Feam_elf.Spec.vn_versions)
    resolution.Resolve.root_spec.Feam_elf.Spec.verneeds;
  Buffer.contents buf

(* Names of direct or transitive dependencies that could not be located:
   what the EDC uses to list missing shared libraries. *)
let missing_libraries (resolution : Resolve.t) = resolution.Resolve.missing
