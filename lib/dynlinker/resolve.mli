(** Recursive dependency resolution: the load-time half of the ground
    truth.  Walks the DT_NEEDED closure of a binary, checking
    class/machine of every object and every GNU symbol-version
    requirement against the providers actually found. *)

type resolved_lib = {
  lib_name : string;  (** the requested DT_NEEDED string *)
  lib_path : string;  (** where it was found *)
  lib_bytes : string;
  lib_spec : Feam_elf.Spec.t;
}

type version_failure = {
  vf_object : string;  (** object that required the version *)
  vf_provider : string;  (** closure member consulted for the version *)
  vf_scope_pos : int option;
      (** the provider's position in load order ([None] only for
          failures constructed outside a live resolution) *)
  vf_version : string;  (** the version name, e.g. GLIBC_2.7 *)
}

type arch_mismatch = { am_lib : string; am_path : string }

type t = {
  root_spec : Feam_elf.Spec.t;
  resolved : resolved_lib list;  (** transitive closure, load order *)
  missing : string list;  (** DT_NEEDED names never located *)
  arch_mismatches : arch_mismatch list;
  version_failures : version_failure list;
}

(** No missing libraries, architecture mismatches or version failures. *)
val ok : t -> bool

(** [consulted_provider resolved file] — the closure member ld.so would
    consult for versions required from [file]: the first, in load order,
    loaded under that name or claiming it by DT_SONAME, with its
    position.  Shared by the version check and by symcheck so both agree
    on the consulted object. *)
val consulted_provider :
  resolved_lib list -> string -> (int * resolved_lib) option

(** Resolve the dependency closure of an object under the given
    environment at the given site. *)
val run : Feam_sysmodel.Site.t -> Feam_sysmodel.Env.t -> Feam_elf.Spec.t -> t
