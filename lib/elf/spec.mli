(** High-level description of an ELF object: exactly the information
    channel the migration framework reads through objdump/readelf.
    {!Builder} turns a spec into real ELF bytes; {!Reader} recovers a
    spec from bytes. *)

(** One "Version References" block: version names required from one
    shared object (e.g. GLIBC_2.3.4 required from libc.so.6). *)
type verneed = { vn_file : string; vn_versions : string list }

(** Dynamic-symbol binding (the high nibble of st_info).  Local symbols
    never reach [.dynsym], so only the external bindings are modelled. *)
type sym_binding = Global | Weak

(** One [.dynsym] entry with its [.gnu.version] association resolved to
    a version name ([None] = unversioned). *)
type dynsym = {
  sym_name : string;
  sym_defined : bool;  (** st_shndx <> SHN_UNDEF *)
  sym_binding : sym_binding;
  sym_version : string option;
}

type t = {
  elf_class : Types.elf_class;
  endian : Types.endian;
  machine : Types.machine;
  file_type : Types.file_type;
  soname : string option;  (** DT_SONAME; present for shared libraries *)
  needed : string list;  (** DT_NEEDED entries, link order *)
  rpath : string option;  (** DT_RPATH *)
  runpath : string option;  (** DT_RUNPATH *)
  verneeds : verneed list;  (** .gnu.version_r *)
  verdefs : string list;  (** .gnu.version_d: version names defined *)
  dynsyms : dynsym list;  (** .dynsym entries (index-0 null entry excluded) *)
  comments : string list;  (** .comment: toolchain provenance strings *)
  abi_note : (int * int * int) option;  (** .note.ABI-tag: minimum kernel *)
  interp : string option;  (** PT_INTERP: the dynamic loader path *)
}

(** Build a spec; class and endianness default to the machine's natural
    ones. *)
val make :
  ?file_type:Types.file_type ->
  ?soname:string ->
  ?needed:string list ->
  ?rpath:string ->
  ?runpath:string ->
  ?verneeds:verneed list ->
  ?verdefs:string list ->
  ?dynsyms:dynsym list ->
  ?comments:string list ->
  ?abi_note:int * int * int ->
  ?interp:string ->
  ?elf_class:Types.elf_class ->
  ?endian:Types.endian ->
  Types.machine ->
  t

val equal_verneed : verneed -> verneed -> bool
val equal_dynsym : dynsym -> dynsym -> bool
val equal : t -> t -> bool

(** All version names required from a given object; empty when none. *)
val versions_required_from : t -> string -> string list

val is_shared_library : t -> bool

(** Undefined [.dynsym] entries: what the object imports at link time. *)
val imports : t -> dynsym list

(** Defined [.dynsym] entries: what the object offers to the scope. *)
val exports : t -> dynsym list

val binding_to_string : sym_binding -> string
val pp_verneed : verneed Fmt.t
val pp_dynsym : dynsym Fmt.t
val pp : t Fmt.t
