(* Parses ELF images back into a {!Spec.t} plus section-level metadata.
   This is the only channel through which the migration framework and the
   dynamic-linker simulator see binaries: everything downstream of the
   builder goes through real byte-level parsing. *)

type error =
  | Not_elf                      (* missing \x7fELF magic *)
  | Unsupported of string        (* unknown class/endian/machine/type code *)
  | Malformed of string          (* structurally broken image *)

let error_to_string = function
  | Not_elf -> "not an ELF file"
  | Unsupported what -> "unsupported ELF: " ^ what
  | Malformed what -> "malformed ELF: " ^ what

exception Parse_error of error

let fail e = raise (Parse_error e)

type section = {
  name : string;
  sh_type : int;
  sh_offset : int;
  sh_size : int;
  sh_link : int;
  sh_info : int;
  sh_addr : int;
}

type t = {
  spec : Spec.t;
  sections : section list;
  by_name : (string, section) Hashtbl.t; (* memoized name lookup *)
  size : int; (* image size in bytes *)
}

let spec t = t.spec
let sections t = t.sections
let size t = t.size

(* Built once at parse time; keeps the first section of each name, the
   same answer [List.find_opt] would give.  Symcheck performs a name
   lookup per symbol table per object, so the linear scan mattered. *)
let index_sections sections =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s -> if not (Hashtbl.mem tbl s.name) then Hashtbl.add tbl s.name s)
    sections;
  tbl

let section_by_name t name =
  match Hashtbl.find_opt t.by_name name with
  | Some s ->
    Feam_obs.Metrics.incr "elf.section_memo.hit";
    (* Each hit skips a linear scan over the section table; credit the
       section's bytes as the traffic the memo avoided re-walking. *)
    Feam_obs.Metrics.incr ~by:s.sh_size "elf.section_memo.saved_bytes";
    Some s
  | None ->
    Feam_obs.Metrics.incr "elf.section_memo.miss";
    None

(* Split a NUL-separated blob into its strings, dropping empties. *)
let split_nul blob =
  String.split_on_char '\000' blob |> List.filter (fun s -> s <> "")

let header_size = function Types.C32 -> 52 | Types.C64 -> 64

let parse_ident data =
  if String.length data < 16 then fail Not_elf;
  if String.sub data 0 4 <> "\x7fELF" then fail Not_elf;
  let cls =
    match Types.class_of_code (Char.code data.[4]) with
    | Some c -> c
    | None -> fail (Unsupported (Printf.sprintf "class code %d" (Char.code data.[4])))
  in
  let endian =
    match Types.endian_of_code (Char.code data.[5]) with
    | Some e -> e
    | None -> fail (Unsupported (Printf.sprintf "data encoding %d" (Char.code data.[5])))
  in
  if Char.code data.[6] <> 1 then
    fail (Unsupported (Printf.sprintf "ELF version %d" (Char.code data.[6])));
  (cls, endian)

let parse_sections r cls ~shoff ~shentsize ~shnum ~shstrndx =
  if shnum > 0 && (shstrndx < 0 || shstrndx >= shnum) then
    fail (Malformed "section name table index out of range");
  let raw =
    List.init shnum (fun i ->
        let base = shoff + (i * shentsize) in
        match cls with
        | Types.C64 ->
          ( Codec.Reader.u32 r base,
            Codec.Reader.u32 r (base + 4),
            Codec.Reader.u64 r (base + 16),
            Codec.Reader.u64 r (base + 24),
            Codec.Reader.u64 r (base + 32),
            Codec.Reader.u32 r (base + 40),
            Codec.Reader.u32 r (base + 44) )
        | Types.C32 ->
          ( Codec.Reader.u32 r base,
            Codec.Reader.u32 r (base + 4),
            Codec.Reader.u32 r (base + 12),
            Codec.Reader.u32 r (base + 16),
            Codec.Reader.u32 r (base + 20),
            Codec.Reader.u32 r (base + 24),
            Codec.Reader.u32 r (base + 28) ))
  in
  let shstr_off =
    if shnum = 0 then 0
    else
      let _, _, _, off, _, _, _ = List.nth raw shstrndx in
      off
  in
  List.map
    (fun (name_off, sh_type, sh_addr, sh_offset, sh_size, sh_link, sh_info) ->
      let name =
        if shnum = 0 then ""
        else
          try Codec.Reader.cstring r (shstr_off + name_off)
          with Codec.Truncated _ -> fail (Malformed "section name out of bounds")
      in
      { name; sh_type; sh_offset; sh_size; sh_link; sh_info; sh_addr })
    raw

(* Dynamic section: list of (tag, value) pairs up to DT_NULL. *)
let parse_dynamic r cls section =
  let entsize = 2 * Codec.Reader.word_size cls in
  let n = section.sh_size / entsize in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let base = section.sh_offset + (i * entsize) in
      let tag = Codec.Reader.word r cls base in
      let value = Codec.Reader.word r cls (base + Codec.Reader.word_size cls) in
      if tag = Types.Dt.null then List.rev acc else go (i + 1) ((tag, value) :: acc)
  in
  go 0 []

let parse_verneed r section ~dynstr_off =
  let str off = Codec.Reader.cstring r (dynstr_off + off) in
  let rec records off acc =
    let vn_cnt = Codec.Reader.u16 r (off + 2) in
    let vn_file = Codec.Reader.u32 r (off + 4) in
    let vn_aux = Codec.Reader.u32 r (off + 8) in
    let vn_next = Codec.Reader.u32 r (off + 12) in
    let rec auxes aoff k acc =
      if k = 0 then List.rev acc
      else
        let vna_name = Codec.Reader.u32 r (aoff + 8) in
        let vna_next = Codec.Reader.u32 r (aoff + 12) in
        let acc = str vna_name :: acc in
        if vna_next = 0 then List.rev acc else auxes (aoff + vna_next) (k - 1) acc
    in
    let versions = if vn_cnt = 0 then [] else auxes (off + vn_aux) vn_cnt [] in
    let acc = { Spec.vn_file = str vn_file; vn_versions = versions } :: acc in
    if vn_next = 0 then List.rev acc else records (off + vn_next) acc
  in
  if section.sh_size = 0 then [] else records section.sh_offset []

let parse_verdef r section ~dynstr_off =
  let str off = Codec.Reader.cstring r (dynstr_off + off) in
  let rec records off acc =
    let vd_aux = Codec.Reader.u32 r (off + 12) in
    let vd_next = Codec.Reader.u32 r (off + 16) in
    let vda_name = Codec.Reader.u32 r (off + vd_aux) in
    let acc = str vda_name :: acc in
    if vd_next = 0 then List.rev acc else records (off + vd_next) acc
  in
  if section.sh_size = 0 then [] else records section.sh_offset []

let sym_entry_size = function Types.C32 -> 16 | Types.C64 -> 24

(* .dynsym entries (the index-0 null entry excluded), with versions
   resolved through .gnu.version.  The version-index tables mirror the
   builder's assignment: undefined symbols bind into the verneed
   numbering (vna_other, 2 + flattened position), defined symbols into
   the verdef numbering (vd_ndx = position + 1); which table applies is
   decided by st_shndx, exactly as on the write side.  Out-of-range or
   special (0 = local, 1 = global) indices degrade to an unversioned
   symbol rather than failing the parse. *)
let parse_dynsyms r cls sections ~dynstr_off ~verneeds ~verdefs dynsym_sec
    versym_sec =
  let entsize = sym_entry_size cls in
  let n = dynsym_sec.sh_size / entsize in
  let strtab_off =
    if dynsym_sec.sh_link > 0 && dynsym_sec.sh_link < List.length sections then
      (List.nth sections dynsym_sec.sh_link).sh_offset
    else dynstr_off
  in
  let need_index =
    let tbl = Hashtbl.create 16 in
    let next = ref 2 in
    List.iter
      (fun vn ->
        List.iter
          (fun v ->
            if not (Hashtbl.mem tbl !next) then Hashtbl.add tbl !next v;
            incr next)
          vn.Spec.vn_versions)
      verneeds;
    tbl
  in
  let def_index =
    let tbl = Hashtbl.create 16 in
    List.iteri
      (fun i v -> if not (Hashtbl.mem tbl (i + 1)) then Hashtbl.add tbl (i + 1) v)
      verdefs;
    tbl
  in
  let versym_at i =
    match versym_sec with
    | None -> None
    | Some vs ->
      let off = 2 * i in
      if off + 2 <= vs.sh_size then Some (Codec.Reader.u16 r (vs.sh_offset + off))
      else None
  in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let base = dynsym_sec.sh_offset + (i * entsize) in
      let name_off = Codec.Reader.u32 r base in
      let st_info, st_shndx =
        match cls with
        | Types.C64 ->
          (Codec.Reader.u8 r (base + 4), Codec.Reader.u16 r (base + 6))
        | Types.C32 ->
          (Codec.Reader.u8 r (base + 12), Codec.Reader.u16 r (base + 14))
      in
      let sym_name = Codec.Reader.cstring r (strtab_off + name_off) in
      let sym_defined = st_shndx <> Types.Shn.undef in
      let sym_binding =
        if st_info lsr 4 = Types.Stb.weak then Spec.Weak else Spec.Global
      in
      let sym_version =
        match versym_at i with
        | None -> None
        | Some raw -> (
          let ndx = raw land 0x7fff (* mask the VERSYM_HIDDEN bit *) in
          if ndx <= 1 then None
          else
            Hashtbl.find_opt (if sym_defined then def_index else need_index) ndx)
      in
      go (i + 1) ({ Spec.sym_name; sym_defined; sym_binding; sym_version } :: acc)
  in
  if n <= 1 then [] else go 1 []

(* Program headers: (p_type, p_offset, p_filesz) triples. *)
let parse_program_headers r cls ~phoff ~phentsize ~phnum =
  List.init phnum (fun i ->
      let base = phoff + (i * phentsize) in
      match cls with
      | Types.C64 ->
        ( Codec.Reader.u32 r base,
          Codec.Reader.u64 r (base + 8),
          Codec.Reader.u64 r (base + 32) )
      | Types.C32 ->
        ( Codec.Reader.u32 r base,
          Codec.Reader.u32 r (base + 4),
          Codec.Reader.u32 r (base + 16) ))

let parse_abi_note r section =
  (* namesz, descsz, type, "GNU\0", os, maj, min, patch *)
  if section.sh_size < 32 then None
  else
    let base = section.sh_offset in
    let namesz = Codec.Reader.u32 r base in
    let typ = Codec.Reader.u32 r (base + 8) in
    if namesz <> 4 || typ <> 1 then None
    else if Codec.Reader.sub r (base + 12) 4 <> "GNU\000" then None
    else
      let maj = Codec.Reader.u32 r (base + 20) in
      let min_ = Codec.Reader.u32 r (base + 24) in
      let patch = Codec.Reader.u32 r (base + 28) in
      Some (maj, min_, patch)

let parse (data : string) : (t, error) result =
  try
    let cls, endian = parse_ident data in
    let r = Codec.Reader.create ~endian data in
    if String.length data < header_size cls then fail (Malformed "truncated header");
    let e_type = Codec.Reader.u16 r 16 in
    let e_machine = Codec.Reader.u16 r 18 in
    let file_type =
      match Types.file_type_of_code e_type with
      | Some t -> t
      | None -> fail (Unsupported (Printf.sprintf "file type %d" e_type))
    in
    let machine =
      match Types.machine_of_code e_machine with
      | Some m -> m
      | None -> fail (Unsupported (Printf.sprintf "machine %d" e_machine))
    in
    let word = Codec.Reader.word_size cls in
    (* e_entry, e_phoff and e_shoff are class-sized words starting at
       offset 24. *)
    let phoff = Codec.Reader.word r cls (24 + word) in
    let shoff = Codec.Reader.word r cls (24 + (2 * word)) in
    let tail = 24 + (3 * word) + 4 (* e_flags *) + 2 (* e_ehsize *) in
    let phentsize = Codec.Reader.u16 r tail in
    let phnum = Codec.Reader.u16 r (tail + 2) in
    let shentsize = Codec.Reader.u16 r (tail + 4) in
    let shnum = Codec.Reader.u16 r (tail + 6) in
    let shstrndx = Codec.Reader.u16 r (tail + 8) in
    let program_headers =
      if phoff = 0 || phnum = 0 then []
      else parse_program_headers r cls ~phoff ~phentsize ~phnum
    in
    let interp =
      List.find_map
        (fun (p_type, off, size) ->
          if p_type = Types.Pt.interp && size > 0 then
            Some (Codec.Reader.cstring r off)
          else None)
        program_headers
    in
    let sections = parse_sections r cls ~shoff ~shentsize ~shnum ~shstrndx in
    let find_type ty = List.find_opt (fun s -> s.sh_type = ty) sections in
    let find_name n = List.find_opt (fun s -> s.name = n) sections in
    (* Dynamic metadata. *)
    let dynamic =
      match find_type Types.Sht.dynamic with
      | Some s -> parse_dynamic r cls s
      | None -> []
    in
    let dynstr_off =
      (* Locate .dynstr via the dynamic section's sh_link when possible,
         falling back to the section name. *)
      match find_type Types.Sht.dynamic with
      | Some dyn when dyn.sh_link > 0 && dyn.sh_link < List.length sections ->
        (List.nth sections dyn.sh_link).sh_offset
      | _ -> (
        match find_name ".dynstr" with
        | Some s -> s.sh_offset
        | None -> 0)
    in
    let dynstr_at off = Codec.Reader.cstring r (dynstr_off + off) in
    let tagged tag = List.filter_map (fun (t, v) -> if t = tag then Some v else None) dynamic in
    let needed = List.map dynstr_at (tagged Types.Dt.needed) in
    let opt_tag tag =
      match tagged tag with v :: _ -> Some (dynstr_at v) | [] -> None
    in
    let soname = opt_tag Types.Dt.soname in
    let rpath = opt_tag Types.Dt.rpath in
    let runpath = opt_tag Types.Dt.runpath in
    let verneeds =
      match find_type Types.Sht.gnu_verneed with
      | Some s -> parse_verneed r s ~dynstr_off
      | None -> []
    in
    let verdefs =
      match find_type Types.Sht.gnu_verdef with
      | Some s -> parse_verdef r s ~dynstr_off
      | None -> []
    in
    let dynsyms =
      match find_type Types.Sht.dynsym with
      | Some s ->
        parse_dynsyms r cls sections ~dynstr_off ~verneeds ~verdefs s
          (find_type Types.Sht.gnu_versym)
      | None -> []
    in
    let comments =
      match find_name ".comment" with
      | Some s -> split_nul (Codec.Reader.sub r s.sh_offset s.sh_size)
      | None -> []
    in
    let abi_note =
      match find_name ".note.ABI-tag" with
      | Some s -> parse_abi_note r s
      | None -> None
    in
    let spec =
      Spec.make ~file_type ?soname ~needed ?rpath ?runpath ~verneeds ~verdefs
        ~dynsyms ~comments ?abi_note ?interp ~elf_class:cls ~endian machine
    in
    Ok { spec; sections; by_name = index_sections sections; size = String.length data }
  with
  | Parse_error e -> Error e
  | Codec.Truncated what -> Error (Malformed ("truncated: " ^ what))

let parse_exn data =
  match parse data with
  | Ok t -> t
  | Error e -> invalid_arg ("Elf.Reader.parse_exn: " ^ error_to_string e)

(* Convenience used throughout the framework: just the spec. *)
let spec_of_bytes data = Result.map (fun t -> t.spec) (parse data)
