(** Core ELF enumerations and constants.  Only what the migration
    framework needs is modelled, but the on-disk encoding is the real ELF
    one. *)

type elf_class = C32 | C64
type endian = LE | BE

(** Machines relevant to the ISA-compatibility determinant. *)
type machine = I386 | X86_64 | PPC | PPC64 | SPARC | SPARCV9 | IA64

type file_type = ET_EXEC | ET_DYN
type osabi = SYSV | GNU_LINUX

val class_code : elf_class -> int
val class_of_code : int -> elf_class option
val endian_code : endian -> int
val endian_of_code : int -> endian option
val machine_code : machine -> int
val machine_of_code : int -> machine option
val file_type_code : file_type -> int
val file_type_of_code : int -> file_type option
val osabi_code : osabi -> int
val osabi_of_code : int -> osabi option

(** Natural word size of a machine. *)
val machine_class : machine -> elf_class

(** Natural endianness of a machine. *)
val machine_endian : machine -> endian

(** The descriptive name objdump/file print ("Advanced Micro Devices
    X86-64"). *)
val machine_name : machine -> string

(** The `uname -p` style processor string. *)
val machine_uname : machine -> string

val machine_of_uname : string -> machine option

(** Conventional PT_INTERP dynamic-loader path per machine. *)
val default_interp : machine -> string

val pp_machine : machine Fmt.t
val pp_class : elf_class Fmt.t
val pp_endian : endian Fmt.t
val pp_file_type : file_type Fmt.t

(** Program header type codes. *)
module Pt : sig
  val load : int
  val dynamic : int
  val interp : int
end

(** Section header type codes. *)
module Sht : sig
  val null : int
  val progbits : int
  val strtab : int
  val dynamic : int
  val note : int
  val dynsym : int
  val gnu_verdef : int
  val gnu_verneed : int
  val gnu_versym : int
end

(** Dynamic-section tags. *)
module Dt : sig
  val null : int
  val needed : int
  val strtab : int
  val symtab : int
  val strsz : int
  val syment : int
  val soname : int
  val rpath : int
  val runpath : int
  val versym : int
  val verdef : int
  val verdefnum : int
  val verneed : int
  val verneednum : int
end

(** Symbol binding codes (the high nibble of st_info). *)
module Stb : sig
  val global : int
  val weak : int
end

(** Special section indices. *)
module Shn : sig
  val undef : int
  val abs : int
end

(** Classic System V ELF hash (vna_hash / vd_hash of version names). *)
val elf_hash : string -> int
