(* Serializes a {!Spec.t} into a real ELF image.

   Layout: ELF header, program header table (PT_INTERP when the spec
   names a loader, PT_LOAD covering the image, PT_DYNAMIC), then section
   contents in a fixed order (.interp, .note.ABI-tag, .dynstr, .dynsym,
   .gnu.version, .gnu.version_r, .gnu.version_d, .dynamic, .comment,
   .shstrtab), then the section header table.  Allocated sections get virtual addresses
   at [image_base + file offset] so that DT_STRTAB / DT_VERNEED hold
   resolvable addresses. *)

let image_base = 0x400000

(* A section under construction. *)
type section = {
  name : string;
  sh_type : int;
  sh_flags : int;
  body : string;
  sh_link : int; (* filled with the .dynstr index where relevant *)
  sh_info : int;
  sh_entsize : int;
  sh_addralign : int;
  allocated : bool;
}

let shf_alloc = 2

(* Incremental string table: interns strings, returns offsets. *)
module Strtab = struct
  type t = { buf : Buffer.t; mutable index : (string * int) list }

  let create () =
    let buf = Buffer.create 64 in
    Buffer.add_char buf '\000';
    { buf; index = [] }

  let add t s =
    match List.assoc_opt s t.index with
    | Some off -> off
    | None ->
      let off = Buffer.length t.buf in
      Buffer.add_string t.buf s;
      Buffer.add_char t.buf '\000';
      t.index <- (s, off) :: t.index;
      off

  let contents t = Buffer.contents t.buf
end

let header_size = function Types.C32 -> 52 | Types.C64 -> 64

let shentsize = function Types.C32 -> 40 | Types.C64 -> 64

let phentsize = function Types.C32 -> 32 | Types.C64 -> 56

let dyn_entry_size = function Types.C32 -> 8 | Types.C64 -> 16

let sym_entry_size = function Types.C32 -> 16 | Types.C64 -> 24

(* .note.ABI-tag body: 4-byte name "GNU\0", 16-byte desc
   (os = 0 Linux, then the minimum kernel version triple). *)
let note_body endian (maj, min_, patch) =
  let w = Codec.Writer.create endian in
  Codec.Writer.u32 w 4 (* namesz *);
  Codec.Writer.u32 w 16 (* descsz *);
  Codec.Writer.u32 w 1 (* NT_GNU_ABI_TAG *);
  Codec.Writer.bytes w "GNU\000";
  Codec.Writer.u32 w 0 (* ELF_NOTE_OS_LINUX *);
  Codec.Writer.u32 w maj;
  Codec.Writer.u32 w min_;
  Codec.Writer.u32 w patch;
  Codec.Writer.contents w

(* .gnu.version_r body: one Verneed record per depended-on file, each with
   one Vernaux per required version name.  Version indices (vna_other)
   start at 2 (0 = local, 1 = global). *)
let verneed_body endian dynstr (verneeds : Spec.verneed list) =
  let w = Codec.Writer.create endian in
  let n = List.length verneeds in
  let next_index = ref 2 in
  List.iteri
    (fun i vn ->
      let cnt = List.length vn.Spec.vn_versions in
      let file_off = Strtab.add dynstr vn.Spec.vn_file in
      Codec.Writer.u16 w 1 (* vn_version *);
      Codec.Writer.u16 w cnt;
      Codec.Writer.u32 w file_off;
      Codec.Writer.u32 w 16 (* vn_aux: auxes follow immediately *);
      (* vn_next: byte distance to the next Verneed record *)
      Codec.Writer.u32 w (if i = n - 1 then 0 else 16 + (cnt * 16));
      List.iteri
        (fun j name ->
          let name_off = Strtab.add dynstr name in
          Codec.Writer.u32 w (Types.elf_hash name);
          Codec.Writer.u16 w 0 (* vna_flags *);
          Codec.Writer.u16 w !next_index;
          incr next_index;
          Codec.Writer.u32 w name_off;
          Codec.Writer.u32 w (if j = cnt - 1 then 0 else 16))
        vn.Spec.vn_versions)
    verneeds;
  Codec.Writer.contents w

(* .gnu.version_d body: one Verdef + Verdaux per defined version name. *)
let verdef_body endian dynstr verdefs =
  let w = Codec.Writer.create endian in
  let n = List.length verdefs in
  List.iteri
    (fun i name ->
      let name_off = Strtab.add dynstr name in
      Codec.Writer.u16 w 1 (* vd_version *);
      Codec.Writer.u16 w (if i = 0 then 1 else 0) (* VER_FLG_BASE on first *);
      Codec.Writer.u16 w (i + 1) (* vd_ndx *);
      Codec.Writer.u16 w 1 (* vd_cnt *);
      Codec.Writer.u32 w (Types.elf_hash name);
      Codec.Writer.u32 w 20 (* vd_aux *);
      Codec.Writer.u32 w (if i = n - 1 then 0 else 28 (* 20 + 8 *));
      Codec.Writer.u32 w name_off;
      Codec.Writer.u32 w 0 (* vda_next *))
    verdefs;
  Codec.Writer.contents w

(* .dynsym body: the mandatory null entry at index 0, then one entry per
   symbol.  Defined symbols get SHN_ABS (the framework never models
   addresses), undefined ones SHN_UNDEF; st_info carries the binding in
   its high nibble with STT_FUNC below. *)
let symtab_body cls endian dynstr (dynsyms : Spec.dynsym list) =
  let w = Codec.Writer.create endian in
  let entry ~name_off ~info ~shndx =
    match cls with
    | Types.C64 ->
      Codec.Writer.u32 w name_off;
      Codec.Writer.u8 w info;
      Codec.Writer.u8 w 0 (* st_other *);
      Codec.Writer.u16 w shndx;
      Codec.Writer.u64 w 0 (* st_value *);
      Codec.Writer.u64 w 0 (* st_size *)
    | Types.C32 ->
      Codec.Writer.u32 w name_off;
      Codec.Writer.u32 w 0 (* st_value *);
      Codec.Writer.u32 w 0 (* st_size *);
      Codec.Writer.u8 w info;
      Codec.Writer.u8 w 0 (* st_other *);
      Codec.Writer.u16 w shndx
  in
  entry ~name_off:0 ~info:0 ~shndx:0;
  List.iter
    (fun (s : Spec.dynsym) ->
      let binding =
        match s.Spec.sym_binding with
        | Spec.Global -> Types.Stb.global
        | Spec.Weak -> Types.Stb.weak
      in
      entry
        ~name_off:(Strtab.add dynstr s.Spec.sym_name)
        ~info:((binding lsl 4) lor 2 (* STT_FUNC *))
        ~shndx:(if s.Spec.sym_defined then Types.Shn.abs else Types.Shn.undef))
    dynsyms;
  Codec.Writer.contents w

(* .gnu.version body: one u16 version index per .dynsym entry including
   the null entry (index 0).  Undefined symbols bind to verneed indices
   (vna_other numbering: 2 + flattened position), defined symbols to
   verdef indices (vd_ndx = position + 1); unversioned symbols get 1
   (VER_NDX_GLOBAL). *)
let versym_body endian (spec : Spec.t) =
  let need_index =
    let next = ref 2 in
    List.concat_map
      (fun vn ->
        List.map
          (fun v ->
            let i = !next in
            incr next;
            (v, i))
          vn.Spec.vn_versions)
      spec.Spec.verneeds
  in
  let def_index = List.mapi (fun i v -> (v, i + 1)) spec.Spec.verdefs in
  let w = Codec.Writer.create endian in
  Codec.Writer.u16 w 0;
  List.iter
    (fun (s : Spec.dynsym) ->
      let ndx =
        match s.Spec.sym_version with
        | None -> 1
        | Some v -> (
          let table = if s.Spec.sym_defined then def_index else need_index in
          match List.assoc_opt v table with Some i -> i | None -> 1)
      in
      Codec.Writer.u16 w ndx)
    spec.Spec.dynsyms;
  Codec.Writer.contents w

let comment_body comments =
  String.concat "" (List.map (fun c -> c ^ "\000") comments)

let dynamic_body spec cls endian dynstr ~dynstr_addr ~dynstr_size ~symtab_addr
    ~versym_addr ~verneed_addr ~verdef_addr =
  let w = Codec.Writer.create endian in
  let entry tag value =
    Codec.Writer.word w cls tag;
    Codec.Writer.word w cls value
  in
  List.iter (fun dep -> entry Types.Dt.needed (Strtab.add dynstr dep)) spec.Spec.needed;
  Option.iter (fun s -> entry Types.Dt.soname (Strtab.add dynstr s)) spec.Spec.soname;
  Option.iter (fun s -> entry Types.Dt.rpath (Strtab.add dynstr s)) spec.Spec.rpath;
  Option.iter (fun s -> entry Types.Dt.runpath (Strtab.add dynstr s)) spec.Spec.runpath;
  entry Types.Dt.strtab dynstr_addr;
  entry Types.Dt.strsz dynstr_size;
  (match symtab_addr with
  | Some addr ->
    entry Types.Dt.symtab addr;
    entry Types.Dt.syment (sym_entry_size cls)
  | None -> ());
  (match versym_addr with
  | Some addr -> entry Types.Dt.versym addr
  | None -> ());
  (match verneed_addr with
  | Some addr ->
    entry Types.Dt.verneed addr;
    entry Types.Dt.verneednum (List.length spec.Spec.verneeds)
  | None -> ());
  (match verdef_addr with
  | Some addr ->
    entry Types.Dt.verdef addr;
    entry Types.Dt.verdefnum (List.length spec.Spec.verdefs)
  | None -> ());
  entry Types.Dt.null 0;
  Codec.Writer.contents w

(* [build spec] renders the spec as ELF bytes. *)
let build (spec : Spec.t) : string =
  let cls = spec.elf_class and endian = spec.endian in
  let dynstr = Strtab.create () in
  (* Build string-referencing bodies first so that .dynstr is complete
     before it is laid out.  The dynamic section references .dynstr offsets
     only, so it can be rendered after layout (when addresses are known) as
     long as its strings are interned now. *)
  List.iter (fun d -> ignore (Strtab.add dynstr d)) spec.needed;
  Option.iter (fun s -> ignore (Strtab.add dynstr s)) spec.soname;
  Option.iter (fun s -> ignore (Strtab.add dynstr s)) spec.rpath;
  Option.iter (fun s -> ignore (Strtab.add dynstr s)) spec.runpath;
  let symtab =
    if spec.dynsyms = [] then "" else symtab_body cls endian dynstr spec.dynsyms
  in
  let verneed = verneed_body endian dynstr spec.verneeds in
  let verdef = verdef_body endian dynstr spec.verdefs in
  let dynstr_body = Strtab.contents dynstr in

  (* Dynamic entry count: needed + optional singletons + strtab/strsz +
     symbol-table entries + version entries + null terminator. *)
  let dyn_entries =
    List.length spec.needed
    + (match spec.soname with Some _ -> 1 | None -> 0)
    + (match spec.rpath with Some _ -> 1 | None -> 0)
    + (match spec.runpath with Some _ -> 1 | None -> 0)
    + 2 (* strtab, strsz *)
    + (if spec.dynsyms = [] then 0 else 3) (* symtab, syment, versym *)
    + (if spec.verneeds = [] then 0 else 2)
    + (if spec.verdefs = [] then 0 else 2)
    + 1 (* null *)
  in
  let dynamic_size = dyn_entries * dyn_entry_size cls in

  (* Program header table: PT_INTERP (optional), PT_LOAD, PT_DYNAMIC. *)
  let phnum = 2 + (match spec.interp with Some _ -> 1 | None -> 0) in

  (* Lay out section contents after the ELF header and the program
     header table, 8-byte aligned. *)
  let align8 off = (off + 7) land lnot 7 in
  let cursor = ref (header_size cls + (phnum * phentsize cls)) in
  let place size =
    let off = align8 !cursor in
    cursor := off + size;
    off
  in
  let interp_body = Option.map (fun i -> i ^ "\000") spec.interp in
  let interp_off = Option.map (fun b -> place (String.length b)) interp_body in
  let note =
    Option.map (fun v -> note_body endian v) spec.abi_note
  in
  let note_off = Option.map (fun b -> place (String.length b)) note in
  let dynstr_off = place (String.length dynstr_body) in
  let symtab_off =
    if spec.dynsyms = [] then None else Some (place (String.length symtab))
  in
  let versym = if spec.dynsyms = [] then "" else versym_body endian spec in
  let versym_off =
    if spec.dynsyms = [] then None else Some (place (String.length versym))
  in
  let verneed_off = if spec.verneeds = [] then None else Some (place (String.length verneed)) in
  let verdef_off = if spec.verdefs = [] then None else Some (place (String.length verdef)) in
  let dynamic_off = place dynamic_size in
  let comment = comment_body spec.comments in
  let comment_off = place (String.length comment) in

  let addr_of off = image_base + off in
  let dynamic =
    dynamic_body spec cls endian dynstr ~dynstr_addr:(addr_of dynstr_off)
      ~dynstr_size:(String.length dynstr_body)
      ~symtab_addr:(Option.map addr_of symtab_off)
      ~versym_addr:(Option.map addr_of versym_off)
      ~verneed_addr:(Option.map addr_of verneed_off)
      ~verdef_addr:(Option.map addr_of verdef_off)
  in
  assert (String.length dynamic = dynamic_size);
  (* .dynstr must not have grown while rendering the dynamic section. *)
  assert (String.length (Strtab.contents dynstr) = String.length dynstr_body);

  (* Section descriptors in index order (0 = NULL). *)
  let sections = ref [] in
  let add_section s = sections := s :: !sections in
  add_section
    {
      name = "";
      sh_type = Types.Sht.null;
      sh_flags = 0;
      body = "";
      sh_link = 0;
      sh_info = 0;
      sh_entsize = 0;
      sh_addralign = 0;
      allocated = false;
    };
  let section ?(flags = 0) ?(link = 0) ?(info = 0) ?(entsize = 0)
      ?(align = 8) ~allocated name sh_type body =
    add_section
      {
        name;
        sh_type;
        sh_flags = flags;
        body;
        sh_link = link;
        sh_info = info;
        sh_entsize = entsize;
        sh_addralign = align;
        allocated;
      }
  in
  (* Section indices depend on which optional sections exist; track the
     index of .dynstr for sh_link fields. *)
  let idx = ref 1 in
  Option.iter
    (fun body ->
      section ~flags:shf_alloc ~align:1 ~allocated:true ".interp"
        Types.Sht.progbits body;
      incr idx)
    interp_body;
  Option.iter
    (fun body ->
      section ~flags:shf_alloc ~align:4 ~allocated:true ".note.ABI-tag"
        Types.Sht.note body;
      incr idx)
    note;
  let dynstr_idx = !idx in
  section ~flags:shf_alloc ~allocated:true ".dynstr" Types.Sht.strtab dynstr_body;
  incr idx;
  if spec.dynsyms <> [] then begin
    let dynsym_idx = !idx in
    section ~flags:shf_alloc ~link:dynstr_idx ~info:1
      ~entsize:(sym_entry_size cls) ~allocated:true ".dynsym" Types.Sht.dynsym
      symtab;
    incr idx;
    section ~flags:shf_alloc ~link:dynsym_idx ~entsize:2 ~align:2
      ~allocated:true ".gnu.version" Types.Sht.gnu_versym versym;
    incr idx
  end;
  if spec.verneeds <> [] then begin
    section ~flags:shf_alloc ~link:dynstr_idx ~info:(List.length spec.verneeds)
      ~allocated:true ".gnu.version_r" Types.Sht.gnu_verneed verneed;
    incr idx
  end;
  if spec.verdefs <> [] then begin
    section ~flags:shf_alloc ~link:dynstr_idx ~info:(List.length spec.verdefs)
      ~allocated:true ".gnu.version_d" Types.Sht.gnu_verdef verdef;
    incr idx
  end;
  section ~flags:shf_alloc ~link:dynstr_idx ~entsize:(dyn_entry_size cls)
    ~allocated:true ".dynamic" Types.Sht.dynamic dynamic;
  incr idx;
  section ~align:1 ~allocated:false ".comment" Types.Sht.progbits comment;
  incr idx;

  (* .shstrtab names all sections including itself. *)
  let shstrtab = Strtab.create () in
  let sections_so_far = List.rev !sections in
  List.iter (fun s -> ignore (Strtab.add shstrtab s.name)) sections_so_far;
  ignore (Strtab.add shstrtab ".shstrtab");
  let shstrtab_body = Strtab.contents shstrtab in
  section ~align:1 ~allocated:false ".shstrtab" Types.Sht.strtab shstrtab_body;
  let shstrndx = !idx in
  let sections = List.rev !sections in

  (* Assign file offsets: the bodies were placed above in the same order;
     recompute to keep a single source of truth. *)
  let offsets =
    let cursor = ref (header_size cls + (phnum * phentsize cls)) in
    List.map
      (fun s ->
        if s.sh_type = Types.Sht.null then 0
        else begin
          let off = align8 !cursor in
          cursor := off + String.length s.body;
          off
        end)
      sections
  in
  (* The precomputed offsets must agree with the layout used for
     addresses embedded in .dynamic. *)
  List.iteri
    (fun i s ->
      let off = List.nth offsets i in
      match s.name with
      | ".interp" -> assert (Some off = interp_off)
      | ".note.ABI-tag" -> assert (Some off = note_off)
      | ".dynstr" -> assert (off = dynstr_off)
      | ".dynsym" -> assert (Some off = symtab_off)
      | ".gnu.version" -> assert (Some off = versym_off)
      | ".gnu.version_r" -> assert (Some off = verneed_off)
      | ".gnu.version_d" -> assert (Some off = verdef_off)
      | ".dynamic" -> assert (off = dynamic_off)
      | ".comment" -> assert (off = comment_off)
      | _ -> ())
    sections;

  let last_off = List.fold_left2 (fun acc s off -> max acc (off + String.length s.body)) 0 sections offsets in
  let shoff = align8 last_off in
  let shnum = List.length sections in

  (* Emit: header, bodies, section header table. *)
  let w = Codec.Writer.create endian in
  (* e_ident *)
  Codec.Writer.bytes w "\x7fELF";
  Codec.Writer.u8 w (Types.class_code cls);
  Codec.Writer.u8 w (Types.endian_code endian);
  Codec.Writer.u8 w 1 (* EV_CURRENT *);
  Codec.Writer.u8 w (Types.osabi_code Types.GNU_LINUX);
  Codec.Writer.u8 w 0 (* ABI version *);
  Codec.Writer.zeros w 7;
  Codec.Writer.u16 w (Types.file_type_code spec.file_type);
  Codec.Writer.u16 w (Types.machine_code spec.machine);
  Codec.Writer.u32 w 1 (* e_version *);
  Codec.Writer.word w cls (image_base + header_size cls) (* e_entry: synthetic *);
  Codec.Writer.word w cls (header_size cls) (* e_phoff *);
  Codec.Writer.word w cls shoff;
  Codec.Writer.u32 w 0 (* e_flags *);
  Codec.Writer.u16 w (header_size cls);
  Codec.Writer.u16 w (phentsize cls);
  Codec.Writer.u16 w phnum;
  Codec.Writer.u16 w (shentsize cls);
  Codec.Writer.u16 w shnum;
  Codec.Writer.u16 w shstrndx;
  (* Program header table. *)
  let total_size = shoff + (shnum * shentsize cls) in
  let phdr p_type ~flags ~off ~size ~align =
    match cls with
    | Types.C64 ->
      Codec.Writer.u32 w p_type;
      Codec.Writer.u32 w flags;
      Codec.Writer.u64 w off;
      Codec.Writer.u64 w (image_base + off) (* p_vaddr *);
      Codec.Writer.u64 w (image_base + off) (* p_paddr *);
      Codec.Writer.u64 w size;
      Codec.Writer.u64 w size;
      Codec.Writer.u64 w align
    | Types.C32 ->
      Codec.Writer.u32 w p_type;
      Codec.Writer.u32 w off;
      Codec.Writer.u32 w (image_base + off);
      Codec.Writer.u32 w (image_base + off);
      Codec.Writer.u32 w size;
      Codec.Writer.u32 w size;
      Codec.Writer.u32 w flags;
      Codec.Writer.u32 w align
  in
  (match (interp_body, interp_off) with
  | Some body, Some off ->
    phdr Types.Pt.interp ~flags:4 ~off ~size:(String.length body) ~align:1
  | _ -> ());
  phdr Types.Pt.load ~flags:5 ~off:0 ~size:total_size ~align:0x1000;
  phdr Types.Pt.dynamic ~flags:6 ~off:dynamic_off ~size:dynamic_size ~align:8;
  (* Bodies. *)
  List.iter2
    (fun s off ->
      if s.sh_type <> Types.Sht.null then begin
        Codec.Writer.pad_to w off;
        Codec.Writer.bytes w s.body
      end)
    sections offsets;
  Codec.Writer.pad_to w shoff;
  (* Section header table. *)
  List.iter2
    (fun s off ->
      let name_off = if s.name = "" then 0 else Strtab.add shstrtab s.name in
      let addr = if s.allocated then image_base + off else 0 in
      match cls with
      | Types.C64 ->
        Codec.Writer.u32 w name_off;
        Codec.Writer.u32 w s.sh_type;
        Codec.Writer.u64 w s.sh_flags;
        Codec.Writer.u64 w addr;
        Codec.Writer.u64 w (if s.sh_type = Types.Sht.null then 0 else off);
        Codec.Writer.u64 w (String.length s.body);
        Codec.Writer.u32 w s.sh_link;
        Codec.Writer.u32 w s.sh_info;
        Codec.Writer.u64 w s.sh_addralign;
        Codec.Writer.u64 w s.sh_entsize
      | Types.C32 ->
        Codec.Writer.u32 w name_off;
        Codec.Writer.u32 w s.sh_type;
        Codec.Writer.u32 w s.sh_flags;
        Codec.Writer.u32 w addr;
        Codec.Writer.u32 w (if s.sh_type = Types.Sht.null then 0 else off);
        Codec.Writer.u32 w (String.length s.body);
        Codec.Writer.u32 w s.sh_link;
        Codec.Writer.u32 w s.sh_info;
        Codec.Writer.u32 w s.sh_addralign;
        Codec.Writer.u32 w s.sh_entsize)
    sections offsets;
  Codec.Writer.contents w
