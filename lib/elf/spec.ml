(* High-level description of an ELF object: exactly the information channel
   the migration framework reads through objdump/readelf.  {!Builder} turns
   a spec into real ELF bytes; {!Reader} recovers a spec from bytes. *)

(* One "Version References" block: versions required from one shared
   object, e.g. GLIBC_2.2.5 and GLIBC_2.3.4 required from libc.so.6. *)
type verneed = {
  vn_file : string;          (* soname of the supplying object *)
  vn_versions : string list; (* version names required from it *)
}

(* Dynamic-symbol binding: the high nibble of st_info.  Local symbols
   never reach .dynsym in practice, so only the two external bindings
   are modelled. *)
type sym_binding = Global | Weak

(* One .dynsym entry, with its .gnu.version association already resolved
   to a version name (imports bind to a verneed version, exports to a
   verdef; [None] means unversioned). *)
type dynsym = {
  sym_name : string;
  sym_defined : bool;            (* st_shndx <> SHN_UNDEF *)
  sym_binding : sym_binding;
  sym_version : string option;
}

type t = {
  elf_class : Types.elf_class;
  endian : Types.endian;
  machine : Types.machine;
  file_type : Types.file_type;
  soname : string option;    (* DT_SONAME; present when the object is a shared library *)
  needed : string list;      (* DT_NEEDED entries, link order *)
  rpath : string option;     (* DT_RPATH *)
  runpath : string option;   (* DT_RUNPATH *)
  verneeds : verneed list;   (* .gnu.version_r *)
  verdefs : string list;     (* .gnu.version_d: version names defined by the object *)
  dynsyms : dynsym list;     (* .dynsym entries (the index-0 null entry excluded) *)
  comments : string list;    (* .comment: toolchain provenance strings *)
  abi_note : (int * int * int) option; (* .note.ABI-tag: minimum kernel *)
  interp : string option;    (* PT_INTERP: the dynamic loader path *)
}

let make ?(file_type = Types.ET_EXEC) ?soname ?(needed = []) ?rpath ?runpath
    ?(verneeds = []) ?(verdefs = []) ?(dynsyms = []) ?(comments = [])
    ?abi_note ?interp ?elf_class ?endian machine =
  let elf_class =
    match elf_class with Some c -> c | None -> Types.machine_class machine
  in
  let endian =
    match endian with Some e -> e | None -> Types.machine_endian machine
  in
  {
    elf_class;
    endian;
    machine;
    file_type;
    soname;
    needed;
    rpath;
    runpath;
    verneeds;
    verdefs;
    dynsyms;
    comments;
    abi_note;
    interp;
  }

let equal_verneed a b = a.vn_file = b.vn_file && a.vn_versions = b.vn_versions

let equal_dynsym a b =
  a.sym_name = b.sym_name && a.sym_defined = b.sym_defined
  && a.sym_binding = b.sym_binding && a.sym_version = b.sym_version

let equal a b =
  a.elf_class = b.elf_class && a.endian = b.endian && a.machine = b.machine
  && a.file_type = b.file_type && a.soname = b.soname && a.needed = b.needed
  && a.rpath = b.rpath && a.runpath = b.runpath
  && List.length a.verneeds = List.length b.verneeds
  && List.for_all2 equal_verneed a.verneeds b.verneeds
  && a.verdefs = b.verdefs
  && List.length a.dynsyms = List.length b.dynsyms
  && List.for_all2 equal_dynsym a.dynsyms b.dynsyms
  && a.comments = b.comments
  && a.abi_note = b.abi_note && a.interp = b.interp

(* All version names required from a given object, empty when none. *)
let versions_required_from t file =
  match List.find_opt (fun vn -> vn.vn_file = file) t.verneeds with
  | Some vn -> vn.vn_versions
  | None -> []

let is_shared_library t = t.soname <> None

(* Undefined entries: what the object imports at link time. *)
let imports t = List.filter (fun s -> not s.sym_defined) t.dynsyms

(* Defined entries: what the object offers to the link scope. *)
let exports t = List.filter (fun s -> s.sym_defined) t.dynsyms

let binding_to_string = function Global -> "GLOBAL" | Weak -> "WEAK"

let pp_verneed ppf vn =
  Fmt.pf ppf "@[<h>%s: %a@]" vn.vn_file
    Fmt.(list ~sep:(any ", ") string)
    vn.vn_versions

let pp_dynsym ppf s =
  Fmt.pf ppf "%s%s %s%s"
    (if s.sym_defined then "" else "U ")
    (binding_to_string s.sym_binding)
    s.sym_name
    (match s.sym_version with Some v -> "@" ^ v | None -> "")

let pp ppf t =
  Fmt.pf ppf
    "@[<v>class: %a@ endian: %a@ machine: %a@ type: %a@ soname: %a@ needed: \
     %a@ rpath: %a@ runpath: %a@ verneeds: %a@ verdefs: %a@ dynsyms: %a@ \
     comments: %a@]"
    Types.pp_class t.elf_class Types.pp_endian t.endian Types.pp_machine
    t.machine Types.pp_file_type t.file_type
    Fmt.(option ~none:(any "-") string)
    t.soname
    Fmt.(list ~sep:(any ", ") string)
    t.needed
    Fmt.(option ~none:(any "-") string)
    t.rpath
    Fmt.(option ~none:(any "-") string)
    t.runpath
    Fmt.(list ~sep:(any "; ") pp_verneed)
    t.verneeds
    Fmt.(list ~sep:(any ", ") string)
    t.verdefs
    Fmt.(list ~sep:(any "; ") pp_dynsym)
    t.dynsyms
    Fmt.(list ~sep:(any " | ") string)
    t.comments
