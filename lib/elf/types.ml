(* Core ELF enumerations and constants.  Only what the migration framework
   needs is modelled, but the on-disk encoding is the real ELF one: images
   built by {!Builder} parse with the standard layout rules. *)

type elf_class = C32 | C64

type endian = LE | BE

(* Machines relevant to the paper's ISA-compatibility determinant
   (x86 vs ppc vs sparc vs itanium, 32- vs 64-bit). *)
type machine =
  | I386
  | X86_64
  | PPC
  | PPC64
  | SPARC
  | SPARCV9
  | IA64

type file_type =
  | ET_EXEC (* fixed-address executable *)
  | ET_DYN  (* shared object or PIE *)

type osabi = SYSV | GNU_LINUX

let class_code = function C32 -> 1 | C64 -> 2

let class_of_code = function 1 -> Some C32 | 2 -> Some C64 | _ -> None

let endian_code = function LE -> 1 | BE -> 2

let endian_of_code = function 1 -> Some LE | 2 -> Some BE | _ -> None

let machine_code = function
  | I386 -> 3
  | SPARC -> 2
  | PPC -> 20
  | PPC64 -> 21
  | SPARCV9 -> 43
  | IA64 -> 50
  | X86_64 -> 62

let machine_of_code = function
  | 3 -> Some I386
  | 2 -> Some SPARC
  | 20 -> Some PPC
  | 21 -> Some PPC64
  | 43 -> Some SPARCV9
  | 50 -> Some IA64
  | 62 -> Some X86_64
  | _ -> None

let file_type_code = function ET_EXEC -> 2 | ET_DYN -> 3

let file_type_of_code = function 2 -> Some ET_EXEC | 3 -> Some ET_DYN | _ -> None

let osabi_code = function SYSV -> 0 | GNU_LINUX -> 3

let osabi_of_code = function 0 -> Some SYSV | 3 -> Some GNU_LINUX | _ -> None

(* Natural word size and endianness of each machine, used by the builder
   defaults and by the site models. *)
let machine_class = function
  | I386 | PPC | SPARC -> C32
  | X86_64 | PPC64 | SPARCV9 | IA64 -> C64

let machine_endian = function
  | I386 | X86_64 | IA64 -> LE
  | PPC | PPC64 | SPARC | SPARCV9 -> BE

let machine_name = function
  | I386 -> "Intel 80386"
  | X86_64 -> "Advanced Micro Devices X86-64"
  | PPC -> "PowerPC"
  | PPC64 -> "PowerPC64"
  | SPARC -> "Sparc"
  | SPARCV9 -> "Sparc v9"
  | IA64 -> "Intel IA-64"

(* The `uname -p` style processor string for a machine. *)
let machine_uname = function
  | I386 -> "i686"
  | X86_64 -> "x86_64"
  | PPC -> "ppc"
  | PPC64 -> "ppc64"
  | SPARC -> "sparc"
  | SPARCV9 -> "sparc64"
  | IA64 -> "ia64"

let machine_of_uname = function
  | "i686" | "i586" | "i386" -> Some I386
  | "x86_64" -> Some X86_64
  | "ppc" -> Some PPC
  | "ppc64" -> Some PPC64
  | "sparc" -> Some SPARC
  | "sparc64" -> Some SPARCV9
  | "ia64" -> Some IA64
  | _ -> None

let pp_machine ppf m = Fmt.string ppf (machine_name m)

let pp_class ppf = function
  | C32 -> Fmt.string ppf "32-bit"
  | C64 -> Fmt.string ppf "64-bit"

let pp_endian ppf = function
  | LE -> Fmt.string ppf "little-endian"
  | BE -> Fmt.string ppf "big-endian"

let pp_file_type ppf = function
  | ET_EXEC -> Fmt.string ppf "EXEC (Executable file)"
  | ET_DYN -> Fmt.string ppf "DYN (Shared object file)"

(* Conventional dynamic-loader path for each machine: what PT_INTERP
   carries in executables of the era.  A missing loader at a site is a
   real execution-failure channel (e.g. 32-bit x86 binaries on x86-64
   systems without the 32-bit runtime). *)
let default_interp = function
  | X86_64 -> "/lib64/ld-linux-x86-64.so.2"
  | I386 -> "/lib/ld-linux.so.2"
  | PPC64 -> "/lib64/ld64.so.1"
  | PPC -> "/lib/ld.so.1"
  | SPARC -> "/lib/ld-linux.so.2"
  | SPARCV9 -> "/lib64/ld-linux.so.2"
  | IA64 -> "/lib/ld-linux-ia64.so.2"

(* Program header types used by the builder/reader. *)
module Pt = struct
  let load = 1
  let dynamic = 2
  let interp = 3
end

(* Section header types used by the builder/reader. *)
module Sht = struct
  let null = 0
  let progbits = 1
  let strtab = 3
  let dynamic = 6
  let note = 7
  let dynsym = 11
  let gnu_verdef = 0x6ffffffd
  let gnu_verneed = 0x6ffffffe
  let gnu_versym = 0x6fffffff
end

(* Dynamic-section tags. *)
module Dt = struct
  let null = 0
  let needed = 1
  let strtab = 5
  let symtab = 6
  let strsz = 10
  let syment = 11
  let soname = 14
  let rpath = 15
  let runpath = 29
  let versym = 0x6ffffff0
  let verdef = 0x6ffffffc
  let verdefnum = 0x6ffffffd
  let verneed = 0x6ffffffe
  let verneednum = 0x6fffffff
end

(* Symbol bindings (the high nibble of st_info) and the special section
   indices the reader/builder care about. *)
module Stb = struct
  let global = 1
  let weak = 2
end

module Shn = struct
  let undef = 0
  let abs = 0xfff1
end

(* Classic System V ELF hash, used for vna_hash / vd_hash of version
   names. *)
let elf_hash s =
  let h = ref 0 in
  String.iter
    (fun c ->
      h := (!h lsl 4) + Char.code c;
      let g = !h land 0xf0000000 in
      if g <> 0 then h := !h lxor (g lsr 24);
      h := !h land lnot g)
    s;
  !h land 0xffffffff
