(** Per-cell flight-recorder journals for the migration matrix: one
    self-contained journal per (binary, target site) cell, written
    through an injected writer. *)

(** Make a name safe for use as a journal file name. *)
val sanitize : string -> string

(** The journal file name for one matrix cell. *)
val cell_name : Testset.binary -> Feam_sysmodel.Site.t -> string

(** Journal one cell (the extended prediction when the source phase
    succeeds, the basic one otherwise); returns the name written. *)
val journal_cell :
  ?clock:Feam_util.Sim_clock.t ->
  write:(name:string -> string -> unit) ->
  Testset.binary ->
  Feam_sysmodel.Site.t ->
  string

(** Journal every reported cell of the migration matrix (each binary at
    every other site with a matching MPI implementation); returns the
    journal names written. *)
val write_cells :
  ?clock:Feam_util.Sim_clock.t ->
  write:(name:string -> string -> unit) ->
  Feam_sysmodel.Site.t list ->
  Testset.binary list ->
  string list
