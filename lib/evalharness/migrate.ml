(* The migration experiment (paper §VI.B): every test binary is migrated
   to every other site that offers a matching MPI implementation — only
   there is successful execution possible, and only those migrations are
   reported.  For each migration we record:

   - the *basic* prediction: FEAM's required target phase only;
   - the *extended* prediction: source phase at the guaranteed site plus
     target phase with the bundle (enables probes and resolution);
   - actual execution *before resolution*: the user selects a matching
     stack and runs, no library fixes (Table IV "before");
   - actual execution *after resolution*: FEAM's configuration applied
     (Table IV "after").

   Prediction accuracy (Table III) scores basic against the
   before-resolution run and extended against the after-resolution run,
   since those are the executions each mode configures. *)

open Feam_sysmodel
open Feam_mpi
open Feam_suites

type migration = {
  binary : Testset.binary;
  target_name : string;
  basic_ready : bool;
  basic_reasons : string list;
  extended_ready : bool;
  extended_reasons : string list;
  staged_copies : string list; (* libraries FEAM resolved from the bundle *)
  actual_before : Feam_dynlinker.Exec.outcome;
  actual_after : Feam_dynlinker.Exec.outcome;
}

let success = function
  | Feam_dynlinker.Exec.Success -> true
  | Feam_dynlinker.Exec.Failure _ -> false

let basic_correct m = m.basic_ready = success m.actual_before
let extended_correct m = m.extended_ready = success m.actual_after

let migrated_dir = "/home/user/migrated"

(* The stack a knowledgeable user selects by hand: matching MPI
   implementation, preferring the build compiler family (paper §VI:
   "choosing an execution site only by matching the MPI implementation"). *)
let user_stack_choice binary target =
  let build_stack = Stack_install.stack binary.Testset.install in
  let impl = Stack.impl build_stack in
  let family = Compiler.family (Stack.compiler build_stack) in
  let matching =
    Site.stack_installs target
    |> List.filter (fun i -> Impl.equal (Stack.impl (Stack_install.stack i)) impl)
  in
  let same_family =
    List.filter
      (fun i ->
        Compiler.family_equal
          (Compiler.family (Stack.compiler (Stack_install.stack i)))
          family)
      matching
  in
  match (same_family, matching) with
  | i :: _, _ -> Some i
  | [], i :: _ -> Some i
  | [], [] -> None

let has_matching_impl binary target = user_stack_choice binary target <> None

(* Stage the binary at the target, as the user's scp would. *)
let stage_binary binary target =
  let path =
    migrated_dir ^ "/" ^ Vfs.basename binary.Testset.home_path
  in
  Vfs.add ~declared_size:binary.Testset.declared_size (Site.vfs target) path
    (Vfs.Elf binary.Testset.bytes);
  path

let cleanup target =
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  Vfs.remove_tree (Site.vfs target) migrated_dir

let run_binary (params : Params.t) target env path =
  Feam_obs.Ledger.with_stage "exec.ground_truth" @@ fun () ->
  Feam_dynlinker.Exec.run ~params:params.Params.exec
    ~attempts:params.Params.attempts target env ~binary_path:path
    ~mode:(Feam_dynlinker.Exec.Mpi 4)

(* One migration.  [bundle_filter] transforms the source-phase bundle
   before the extended target phase runs — the hook the ablation study
   uses to strip probes or library copies. *)
let migrate ?clock ?(bundle_filter = fun b -> b) (params : Params.t) binary
    target =
  (* One matrix cell in the cost ledger, named binary->site like the
     evaluation tables; the Prof timer sees the same work per target. *)
  Feam_obs.Ledger.with_cell
    (binary.Testset.id ^ "->" ^ Site.name target)
  @@ fun () ->
  Feam_obs.Prof.with_timer
    ~labels:[ ("target", Site.name target) ]
    "evalharness.migrate"
  @@ fun () ->
  let config = Feam_core.Config.default in
  let base_env = Site.base_env target in
  cleanup target;
  let staged_path = stage_binary binary target in

  (* -- Basic prediction: target phase only, no bundle. ------------------ *)
  let basic =
    Feam_core.Phases.target_phase ?clock config target base_env
      ~binary_path:staged_path ()
  in
  let basic_ready, basic_reasons, basic_slug =
    match basic with
    | Ok report ->
      let p = Feam_core.Report.prediction report in
      let slug =
        match p.Feam_core.Predict.determinants.Feam_core.Predict.stack with
        | Some s -> s.Feam_core.Predict.functioning
        | None -> None
      in
      (Feam_core.Predict.is_ready p, Feam_core.Predict.reasons p, slug)
    | Error e -> (false, [ e ], None)
  in

  (* -- Actual execution before resolution. ------------------------------ *)
  (* The stack FEAM's target phase selected (falling back to the user's
     own matching choice when FEAM found none), with no library fixes. *)
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let before_install =
    match basic_slug with
    | Some slug -> Site.find_stack_install target ~slug
    | None -> user_stack_choice binary target
  in
  let actual_before =
    match before_install with
    | None -> Feam_dynlinker.Exec.Failure Feam_dynlinker.Exec.No_mpi_stack
    | Some install ->
      let env = Modules_tool.load_stack base_env install in
      run_binary params target env staged_path
  in

  (* -- Extended prediction: source phase at home, bundle to target. ----- *)
  let bundle =
    Feam_core.Phases.source_phase ?clock config binary.Testset.home
      (Modules_tool.load_stack
         (Site.base_env binary.Testset.home)
         binary.Testset.install)
      ~binary_path:binary.Testset.home_path
  in
  let extended =
    match bundle with
    | Error e -> Error e
    | Ok bundle ->
      Feam_core.Phases.target_phase ?clock config target base_env
        ~bundle:(bundle_filter bundle) ~binary_path:staged_path ()
  in
  let extended_ready, extended_reasons, staged_copies, chosen_slug =
    match extended with
    | Ok report -> (
      let p = Feam_core.Report.prediction report in
      match p.Feam_core.Predict.verdict with
      | Feam_core.Predict.Ready plan ->
        ( true,
          [],
          List.map fst plan.Feam_core.Predict.staged_copies,
          plan.Feam_core.Predict.chosen_stack_slug )
      | Feam_core.Predict.Not_ready reasons ->
        (* Copies staged before the verdict remain available to the
           after-resolution run below. *)
        let staged =
          match p.Feam_core.Predict.determinants.Feam_core.Predict.libs with
          | Some l -> l.Feam_core.Predict.resolved_by_copies
          | None -> []
        in
        (false, reasons, staged, None))
    | Error e -> (false, [ e ], [], None)
  in

  (* -- Actual execution after resolution. -------------------------------- *)
  let after_install =
    match chosen_slug with
    | Some slug -> Site.find_stack_install target ~slug
    | None -> user_stack_choice binary target
  in
  let actual_after =
    match after_install with
    | None -> Feam_dynlinker.Exec.Failure Feam_dynlinker.Exec.No_mpi_stack
    | Some install ->
      let env = Modules_tool.load_stack base_env install in
      let env =
        if staged_copies = [] then env
        else
          Env.prepend_path env "LD_LIBRARY_PATH"
            config.Feam_core.Config.staging_dir
      in
      run_binary params target env staged_path
  in
  cleanup target;
  {
    binary;
    target_name = Site.name target;
    basic_ready;
    basic_reasons;
    extended_ready;
    extended_reasons;
    staged_copies;
    actual_before;
    actual_after;
  }

(* All migrations of the corpus: each binary to every *other* site with a
   matching MPI implementation.  The describe memo is enabled for the
   run: the same library image re-described at the same site across
   cells parses once (hit rate surfaces in bdc.describe_cache metrics). *)
let run_all ?clock ?bundle_filter params sites binaries =
  Feam_core.Bdc.set_describe_memo ();
  Fun.protect ~finally:Feam_core.Bdc.clear_describe_memo @@ fun () ->
  List.concat_map
    (fun binary ->
      sites
      |> List.filter (fun target ->
             Site.name target <> Site.name binary.Testset.home
             && has_matching_impl binary target)
      |> List.map (fun target -> migrate ?clock ?bundle_filter params binary target))
    binaries

let of_suite suite migrations =
  List.filter
    (fun m -> m.binary.Testset.benchmark.Benchmark.suite = suite)
    migrations
