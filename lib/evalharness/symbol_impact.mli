(** Validates the soname-major heuristic against the symbol closure:
    for every migration pair, re-runs the library-level resolution at
    the target and diffs it against a {!Feam_symcheck.Symcheck} walk.
    An *overturn* is a pair the library-level determinant accepts but
    the symbol closure refutes. *)

type t = {
  migrations : int;  (** pairs examined (matching MPI impl, other site) *)
  lib_accepted : int;  (** the library-level determinant accepts *)
  overturned : int;  (** accepted, yet the symbol closure refutes *)
  miss_symbols : int;  (** definitive strong misses across overturned pairs *)
}

val measure : Feam_sysmodel.Site.t list -> Testset.binary list -> t

val of_suite :
  Feam_suites.Benchmark.suite ->
  Feam_sysmodel.Site.t list ->
  Testset.binary list ->
  t

(** Share of pairs the library-level determinant accepts. *)
val acceptance_rate : t -> float

(** Share of library-level acceptances the symbol closure refutes —
    the unsoundness rate of the soname-major heuristic. *)
val overturn_rate : t -> float
