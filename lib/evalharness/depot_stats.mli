(** Depot-backed transfer accounting over the migration matrix: one
    shared content-addressed store for every source-phase bundle, one
    transfer plan per reported cell against a per-site possession index.
    Quantifies how much of the legacy per-cell bundle traffic is
    duplicate bytes. *)

type cell = {
  dc_binary : Testset.binary;
  dc_target : string;
  dc_wants : Feam_depot.Planner.want list;
  dc_plan : Feam_depot.Planner.t;
  dc_legacy_bytes : int;
      (** the self-contained bundle for this cell, shipped in full *)
}

type t = {
  ds_store : Feam_depot.Store.t;
  ds_cells : cell list;
  ds_skipped : string list;  (** binaries whose source phase failed *)
  ds_legacy_total : int;
  ds_shipped_total : int;
}

(** Intern every binary's bundle into a fresh shared store and plan
    every reported matrix cell (same cell filter as
    {!Migrate.run_all}) in deterministic corpus order.  Enables the
    {!Feam_core.Bdc} describe memo for the duration of the run. *)
val run :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t list ->
  Testset.binary list ->
  t

(** Legacy bytes over depot bytes shipped (>= 1 when dedup helps). *)
val dedup_ratio : t -> float

(** Percentage of legacy traffic the depot avoids. *)
val saved_percent : t -> float

(** Per-(home, target) totals: cells, legacy bytes, shipped bytes. *)
val pair_rows : t -> ((string * string) * (int * int * int)) list

val pair_table : t -> Feam_util.Table.t

(** The summary block evaltool prints: store size, totals, dedup ratio,
    describe-cache hit rate, per-pair table. *)
val render : t -> string

(** Every cell's plan rendered in corpus order — byte-identical across
    builds of the same matrix (the CI determinism artifact). *)
val plans_text : t -> string

(** Journal the largest cell's transfer plan as a replayable journal via
    the injected writer; returns the name written (None on an empty
    matrix). *)
val journal_plan : write:(name:string -> string -> unit) -> t -> string option
