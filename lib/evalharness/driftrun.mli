(** The seeded drift sequence: replay fleet change as numbered epochs
    over the migration matrix, snapshotting evidence per epoch and
    re-evaluating only the cells the invalidation engine marks
    affected.  Byte-deterministic for a given (seed, epochs, world). *)

type perturbation = {
  pe_site : string;
  pe_what : Scengen.perturbation;  (** [Remove_lib] or [Stale_ld_cache] *)
}

val perturbation_label : perturbation -> string

type epoch_result = {
  er_snapshot : Feam_drift.Snapshot.t;
  er_label : string;  (** the toggle applied; [""] at baseline *)
  er_plan : Feam_drift.Invalidate.plan option;  (** [None] at baseline *)
  er_flips : Feam_drift.Invalidate.flip list;
  er_entry : Feam_drift.Timeline.entry;
}

type t = {
  dr_seed : int;
  dr_epochs : epoch_result list;  (** baseline first *)
  dr_cells_total : int;
  dr_cells_reevaluated : int;  (** post-baseline incremental work *)
  dr_cells_full : int;  (** what full re-evaluation would have cost *)
  dr_crosscheck : (unit, string) result;
      (** byte-identity of the final incremental verdict table against
          a full prediction pass over the final world *)
}

(** Replay a drift sequence.  [specs]/[benchmarks] default to the full
    Table II fleet and NPB+SPEC corpus; tests and benches pass reduced
    worlds. *)
val run :
  ?specs:Sites.spec list ->
  ?benchmarks:Feam_suites.Benchmark.t list ->
  ?progress:(string -> unit) ->
  seed:int ->
  epochs:int ->
  unit ->
  t

(** Project a full [Migrate] result onto the snapshot cell schema —
    the bridge the byte-identity cross-check tests compare through. *)
val cell_of_migration : Migrate.migration -> Feam_drift.Snapshot.cell

(** The sequence's building blocks, exposed so tests and benches can
    replay single epochs without running a whole sequence. *)

(** Loader-visible library basenames a [Remove_lib] draw may target
    (loader and libc excluded), from a pristine world. *)
val removal_candidates : Feam_sysmodel.Site.t list -> string list

(** The keyed PRNG draw for epoch [epoch] ("drift/epoch/<k>" stream). *)
val draw :
  seed:int ->
  epoch:int ->
  site_names:string list ->
  candidates:string list ->
  perturbation

(** Fresh world (specs + testset, compiled before perturbations) with
    the active perturbation set applied on top. *)
val build_world :
  Params.t ->
  Sites.spec list ->
  Feam_suites.Benchmark.t list ->
  perturbation list ->
  Feam_sysmodel.Site.t list * Testset.binary list

(** Capture one site's evidence (discovery + loader-visible library
    inventory) as a snapshot site record. *)
val capture_site : Feam_sysmodel.Site.t -> Feam_drift.Snapshot.site_state

(** Capture one binary's evidence (description + bundle digests) as a
    snapshot binary record. *)
val capture_binary : Testset.binary -> Feam_drift.Snapshot.binary_state

(** The matrix: every binary against every other site with a matching
    MPI implementation — [Migrate.run_all]'s cell criterion. *)
val all_cells :
  Feam_sysmodel.Site.t list ->
  Testset.binary list ->
  (Testset.binary * Feam_sysmodel.Site.t) list

(** Prediction-only evaluation of one cell: [Migrate.migrate]'s steps
    minus the two ground-truth executions. *)
val predict_cell :
  Testset.binary -> Feam_sysmodel.Site.t -> Feam_drift.Snapshot.cell

(** Capture a world as a normalized epoch snapshot around an
    already-computed verdict table. *)
val snapshot_of_world :
  epoch:int ->
  seed:int ->
  label:string ->
  Feam_sysmodel.Site.t list ->
  Testset.binary list ->
  cells:Feam_drift.Snapshot.cell list ->
  Feam_drift.Snapshot.t

(** Serialize just a verdict table, for byte-level comparison between
    incremental and full re-evaluation. *)
val cells_doc : epoch:int -> seed:int -> Feam_drift.Snapshot.cell list -> string

val timeline : t -> Feam_drift.Timeline.entry list

val snapshots : t -> Feam_drift.Snapshot.t list

(** The reduced two-site, two-benchmark world shared by tests, benches,
    and quick CLI runs. *)
val small_specs : unit -> Sites.spec list

val small_benchmarks : unit -> Feam_suites.Benchmark.t list
