(** Builds the fleet view [feam audit] analyzes: one
    {!Feam_analysis.Fleet.t} over the whole migration matrix — every
    Table II site, every corpus binary, every library copy observed at
    its home site, every (binary, target) cell verdict, and the shared
    depot store with per-object referenced-by-a-plan flags.

    Everything is sorted per the {!Feam_analysis.Fleet} determinism
    contract, so the audit report is byte-identical across runs of the
    same seed. *)

(** [build sites binaries migrations] — one source-phase pass per
    binary (bundles intern into a fresh shared store, library copies
    become per-home-site observations keyed by content hash), one
    transfer plan per reported matrix cell against the accumulating
    per-site possession index (plan items mark store objects
    referenced), and one fleet cell per migration verdict. *)
val build :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t list ->
  Testset.binary list ->
  Migrate.migration list ->
  Feam_analysis.Fleet.t

(** Provision the Table II sites, compile the corpus, run the matrix,
    and build the fleet — the whole [feam audit] pipeline for one seed.
    [on_progress] receives one human-readable line per stage. *)
val of_seed :
  ?on_progress:(string -> unit) -> seed:int -> unit -> Feam_analysis.Fleet.t
