(* Depot-backed transfer accounting over the migration matrix: every
   source-phase bundle is interned into one shared content-addressed
   store, and each reported matrix cell gets a transfer plan against the
   per-site possession index — so an object already shipped to a site by
   an earlier migration is never shipped again.  The totals quantify how
   much of the paper's per-cell bundle traffic (§VI.C, ~45 MB of
   libraries per site) is duplicate bytes. *)

open Feam_sysmodel
module Store = Feam_depot.Store
module Planner = Feam_depot.Planner
module Manifest = Feam_core.Bundle_manifest

type cell = {
  dc_binary : Testset.binary;
  dc_target : string;
  dc_wants : Planner.want list;
  dc_plan : Planner.t;
  dc_legacy_bytes : int; (* the self-contained bundle, shipped in full *)
}

type t = {
  ds_store : Store.t;
  ds_cells : cell list;
  ds_skipped : string list; (* binaries whose source phase failed *)
  ds_legacy_total : int;
  ds_shipped_total : int;
}

(* [run ?clock sites binaries] — intern every binary's bundle into a
   fresh shared store and plan every reported matrix cell (same cell
   filter as {!Migrate.run_all}) against one possession index, in
   deterministic corpus order.  The describe memo is enabled for the
   run: the same library image re-described across bundles parses
   once per site. *)
let run ?clock sites binaries =
  let config = Feam_core.Config.default in
  let store = Store.create () in
  let possession = Planner.Possession.create () in
  Feam_core.Bdc.set_describe_memo ();
  Fun.protect ~finally:Feam_core.Bdc.clear_describe_memo @@ fun () ->
  let skipped = ref [] in
  let cells =
    List.concat_map
      (fun (binary : Testset.binary) ->
        let bundle =
          Feam_core.Phases.source_phase ?clock config binary.Testset.home
            (Modules_tool.load_stack
               (Site.base_env binary.Testset.home)
               binary.Testset.install)
            ~binary_path:binary.Testset.home_path
        in
        match bundle with
        | Error _ ->
          skipped := binary.Testset.id :: !skipped;
          []
        | Ok bundle ->
          let manifest = Manifest.of_bundle store bundle in
          let wants = Manifest.wants manifest in
          let legacy = Planner.legacy_bytes wants in
          sites
          |> List.filter (fun target ->
                 Site.name target <> Site.name binary.Testset.home
                 && Migrate.has_matching_impl binary target)
          |> List.map (fun target ->
                 let site = Site.name target in
                 let plan =
                   Planner.compute ~site
                     ~possessed:(Planner.Possession.mem possession ~site)
                     wants
                 in
                 Planner.Possession.commit possession plan;
                 {
                   dc_binary = binary;
                   dc_target = site;
                   dc_wants = wants;
                   dc_plan = plan;
                   dc_legacy_bytes = legacy;
                 }))
      binaries
  in
  {
    ds_store = store;
    ds_cells = cells;
    ds_skipped = List.rev !skipped;
    ds_legacy_total = List.fold_left (fun a c -> a + c.dc_legacy_bytes) 0 cells;
    ds_shipped_total =
      List.fold_left (fun a c -> a + c.dc_plan.Planner.shipped_bytes) 0 cells;
  }

(* Legacy bytes over depot bytes: how many times over the per-cell
   bundles would have shipped the same content. *)
let dedup_ratio t =
  if t.ds_shipped_total = 0 then 0.0
  else float_of_int t.ds_legacy_total /. float_of_int t.ds_shipped_total

let saved_percent t =
  if t.ds_legacy_total = 0 then 0.0
  else
    100.0
    *. float_of_int (t.ds_legacy_total - t.ds_shipped_total)
    /. float_of_int t.ds_legacy_total

(* Per-site-pair bytes: (home, target) -> cells, legacy, shipped. *)
let pair_rows t =
  let tbl : (string * string, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let key = (Site.name c.dc_binary.Testset.home, c.dc_target) in
      let n, legacy, shipped =
        Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0, 0)
      in
      Hashtbl.replace tbl key
        ( n + 1,
          legacy + c.dc_legacy_bytes,
          shipped + c.dc_plan.Planner.shipped_bytes ))
    t.ds_cells;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mb bytes = Printf.sprintf "%.1f" (float_of_int bytes /. 1048576.0)

let pair_table t =
  Feam_util.Table.make ~title:"Bytes shipped per site pair (depot vs legacy)"
    ~aligns:
      Feam_util.Table.[ Left; Left; Right; Right; Right; Right ]
    ~header:[ "home"; "target"; "cells"; "legacy MB"; "depot MB"; "saved" ]
    (List.map
       (fun ((home, target), (n, legacy, shipped)) ->
         [
           home;
           target;
           string_of_int n;
           mb legacy;
           mb shipped;
           Printf.sprintf "%.1f%%"
             (if legacy = 0 then 0.0
              else
                100.0
                *. float_of_int (legacy - shipped)
                /. float_of_int legacy);
         ])
       (pair_rows t))

(* The summary block evaltool prints. *)
let render t =
  let buf = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "Depot transfer planning (shared store, per-site possession)\n";
  addf "  store: %d objects, %s MB\n"
    (Store.object_count t.ds_store)
    (mb (Store.total_bytes t.ds_store));
  addf "  matrix cells planned: %d%s\n"
    (List.length t.ds_cells)
    (match t.ds_skipped with
    | [] -> ""
    | s -> Printf.sprintf " (%d binaries skipped: no bundle)" (List.length s));
  addf "  legacy bytes (self-contained bundle per cell): %s MB\n"
    (mb t.ds_legacy_total);
  addf "  depot bytes shipped: %s MB\n" (mb t.ds_shipped_total);
  addf "  dedup ratio: %.2fx (%.1f%% of legacy traffic saved)\n"
    (dedup_ratio t) (saved_percent t);
  let counter name =
    Option.value (Feam_obs.Metrics.counter_value name) ~default:0
  in
  let hits = counter "bdc.describe_cache.hit" in
  let misses = counter "bdc.describe_cache.miss" in
  if hits + misses > 0 then
    addf "  describe cache: %d hits / %d misses (%.1f%% hit rate)\n" hits
      misses
      (100.0 *. float_of_int hits /. float_of_int (hits + misses));
  Buffer.add_string buf (Feam_util.Table.render (pair_table t));
  Buffer.contents buf

(* Every cell's plan, rendered in corpus order — the CI determinism
   artifact: two builds of the same matrix must produce this text
   byte-identically. *)
let plans_text t =
  let buf = Buffer.create 65536 in
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "== %s -> %s\n" c.dc_binary.Testset.id c.dc_target);
      Buffer.add_string buf (Planner.render c.dc_plan))
    t.ds_cells;
  Buffer.contents buf

(* Journal one cell's transfer plan as a replayable flight-recorder
   journal ([feam replay] re-plans from the recorded wants and compares
   renderings byte-for-byte).  The cell with the largest shipped plan is
   chosen — deterministically, ties broken by corpus order. *)
let journal_plan ~write t =
  match t.ds_cells with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun acc c ->
          if
            c.dc_plan.Planner.shipped_bytes
            > acc.dc_plan.Planner.shipped_bytes
          then c
          else acc)
        first rest
    in
    let name =
      Printf.sprintf "plan_%s__to__%s.journal"
        (Journals.sanitize best.dc_binary.Testset.id)
        (Journals.sanitize best.dc_target)
    in
    Feam_flightrec.Recorder.configure ~tool:"evaltool"
      ~emit:(fun body -> write ~name body)
      ();
    Planner.journal ~wants:best.dc_wants best.dc_plan;
    Feam_flightrec.Recorder.flush ();
    Feam_flightrec.Recorder.disable ();
    Some name
