(* The seeded drift sequence: replay fleet change as N numbered epochs
   over the migration matrix, snapshotting evidence at each epoch and
   re-evaluating only the cells the invalidation engine marks affected.

   Epoch k's world is rebuilt from scratch (Sites.build_specs resets
   image counters, so worlds are byte-reproducible) and the currently
   active perturbation set is applied on top — binaries are compiled
   *before* perturbations land, so the matrix shape is constant across
   the sequence and cells can be compared epoch to epoch.

   Perturbations reuse the scenario generator's vocabulary (Remove_lib,
   Stale_ld_cache), pinned to a Table II site, drawn from the keyed
   PRNG stream "drift/epoch/<k>".  Draws toggle: re-drawing an active
   perturbation deactivates it, so sequences include recoveries
   (not-ready -> ready flips), not just decay. *)

open Feam_sysmodel

module Snapshot = Feam_drift.Snapshot
module Invalidate = Feam_drift.Invalidate
module Timeline = Feam_drift.Timeline
module Chash = Feam_depot.Chash
module Json = Feam_util.Json
module Prng = Feam_util.Prng

type perturbation = { pe_site : string; pe_what : Scengen.perturbation }

let perturbation_label p =
  Printf.sprintf "%s @ %s" (Scengen.perturbation_to_string p.pe_what) p.pe_site

let digest bytes = Chash.to_hex (Chash.of_bytes bytes)

(* -- perturbation draws ------------------------------------------------ *)

(* Loader-visible library basenames a Remove_lib draw may target,
   computed from the pristine world so the candidate list never depends
   on what is already broken.  The loader and libc stay off the menu:
   removing either collapses every cell of a site at once, which makes
   for a dull timeline. *)
let removal_candidates sites =
  List.concat_map
    (fun site ->
      let vfs = Site.vfs site in
      List.concat_map
        (fun dir -> Vfs.find_under vfs dir (fun _ -> true))
        (Site.default_lib_dirs site))
    sites
  |> List.map Vfs.basename
  |> List.filter (fun b ->
         not
           (String.length b >= 3
            && (String.sub b 0 3 = "ld-" || String.sub b 0 3 = "ld.")
           || String.length b >= 7 && String.sub b 0 7 = "libc.so"))
  |> List.sort_uniq compare

let draw ~seed ~epoch ~site_names ~candidates =
  let rng = Prng.of_key ~seed (Printf.sprintf "drift/epoch/%d" epoch) in
  let site = Prng.pick rng site_names in
  let what =
    if Prng.bool rng 0.25 then Scengen.Stale_ld_cache
    else Scengen.Remove_lib (Prng.pick rng candidates)
  in
  { pe_site = site; pe_what = what }

(* Toggle semantics: drawing an active perturbation deactivates it. *)
let toggle active p =
  if List.mem p active then
    (List.filter (fun q -> q <> p) active, "undo " ^ perturbation_label p)
  else (active @ [ p ], perturbation_label p)

(* -- world construction ------------------------------------------------ *)

let remove_lib site name =
  List.iter (Vfs.remove (Site.vfs site)) (Vfs.find_by_basename (Site.vfs site) (fun b -> b = name))

let apply_perturbation sites p =
  let site = Sites.find_by_name sites p.pe_site in
  match p.pe_what with
  | Scengen.Stale_ld_cache -> Site.set_ld_cache_current site false
  | Scengen.Remove_lib name -> remove_lib site name
  | _ -> () (* the drift draw only emits the two kinds above *)

(* Fresh world + testset, then the active perturbation set on top.
   Testset.build runs before perturbations so the corpus (and with it
   the matrix shape) is identical at every epoch. *)
let build_world params specs benchmarks active =
  let sites = Sites.build_specs params specs in
  let binaries = Testset.build params sites benchmarks in
  List.iter (apply_perturbation sites) active;
  (sites, binaries)

(* -- evidence capture -------------------------------------------------- *)

let capture_site site =
  let vfs = Site.vfs site in
  let inventory =
    List.concat_map
      (fun dir -> Vfs.find_under vfs dir (fun _ -> true))
      (List.sort_uniq compare (Site.default_lib_dirs site @ Site.ld_conf_dirs site))
    |> List.sort_uniq compare
    |> List.filter_map (fun path ->
           match Vfs.find vfs path with
           | Some { Vfs.kind = Vfs.Elf bytes; _ } -> Some (path, digest bytes)
           | Some { Vfs.kind = Vfs.Symlink target; _ } ->
             Some (path, "->" ^ target)
           | Some { Vfs.kind = Vfs.Script bytes | Vfs.Text bytes; _ } ->
             Some (path, digest bytes)
           | None -> None)
  in
  {
    Snapshot.ss_name = Site.name site;
    ss_ld_cache_current = Site.ld_cache_current site;
    ss_discovery =
      Feam_core.Discovery.to_json
        (Feam_core.Edc.discover ~env_type:`Target site (Site.base_env site));
    ss_inventory = inventory;
  }

(* Probe images embed a fresh [Build_id] per compile, so raw probe bytes
   differ between two captures of the same world (and between epochs
   that didn't touch the home site).  Fingerprint the parsed spec with
   the provenance comments dropped instead: the probe's loader-relevant
   content, stable across recompiles, still sensitive to real home-site
   change (different needed libs, different interp, ...). *)
let probe_fingerprint bytes =
  match Feam_elf.Reader.spec_of_bytes bytes with
  | Ok spec ->
    digest
      (Fmt.str "%a" Feam_elf.Spec.pp { spec with Feam_elf.Spec.comments = [] })
  | Error _ -> digest bytes

let capture_binary (binary : Testset.binary) =
  let config = Feam_core.Config.default in
  let env =
    Modules_tool.load_stack (Site.base_env binary.Testset.home)
      binary.Testset.install
  in
  let bundle =
    Feam_core.Phases.source_phase config binary.Testset.home env
      ~binary_path:binary.Testset.home_path
  in
  match bundle with
  | Error e ->
    {
      Snapshot.bs_id = binary.Testset.id;
      bs_home = Site.name binary.Testset.home;
      bs_digest = digest binary.Testset.bytes;
      bs_error = Some e;
      bs_description = Json.Null;
      bs_bundle = [];
    }
  | Ok bundle ->
    let open Feam_core in
    {
      Snapshot.bs_id = binary.Testset.id;
      bs_home = Site.name binary.Testset.home;
      bs_digest = digest binary.Testset.bytes;
      bs_error = None;
      bs_description = Description.to_json bundle.Bundle.binary_description;
      bs_bundle =
        List.map
          (fun c -> ("copy:" ^ c.Bdc.copy_request, digest c.Bdc.copy_bytes))
          bundle.Bundle.copies
        @ List.map
            (fun p ->
              ("probe:" ^ p.Bundle.probe_name,
               probe_fingerprint p.Bundle.probe_bytes))
            bundle.Bundle.probes
        @ List.map (fun u -> ("unlocatable:" ^ u, "missing")) bundle.Bundle.unlocatable
        @ [
            ( "source_discovery",
              digest (Json.render (Discovery.to_json bundle.Bundle.source_discovery)) );
          ];
    }

(* -- prediction-only cell evaluation ----------------------------------- *)

(* The matrix: each binary against every *other* site with a matching
   MPI implementation — exactly Migrate.run_all's cell criterion. *)
let all_cells sites binaries =
  List.concat_map
    (fun (binary : Testset.binary) ->
      sites
      |> List.filter (fun target ->
             Site.name target <> Site.name binary.Testset.home
             && Migrate.has_matching_impl binary target)
      |> List.map (fun target -> (binary, target)))
    binaries

let migrated_dir = "/home/user/migrated"

let cleanup target =
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  Vfs.remove_tree (Site.vfs target) migrated_dir

(* Replay Migrate.migrate's prediction steps — stage, basic target
   phase, source phase, extended target phase — skipping the two
   ground-truth executions.  Predictions never consume the exec PRNG,
   so the fields here are byte-identical to a full Migrate.run_all at
   the same epoch (the cross-check below proves it per run). *)
let predict_cell (binary : Testset.binary) target =
  let open Feam_core in
  let config = Config.default in
  let base_env = Site.base_env target in
  cleanup target;
  let staged_path = migrated_dir ^ "/" ^ Vfs.basename binary.Testset.home_path in
  Vfs.add ~declared_size:binary.Testset.declared_size (Site.vfs target)
    staged_path
    (Vfs.Elf binary.Testset.bytes);
  let basic =
    Phases.target_phase config target base_env ~binary_path:staged_path ()
  in
  let basic_ready, basic_reasons =
    match basic with
    | Ok report ->
      let p = Report.prediction report in
      (Predict.is_ready p, Predict.reasons p)
    | Error e -> (false, [ e ])
  in
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let bundle =
    Phases.source_phase config binary.Testset.home
      (Modules_tool.load_stack
         (Site.base_env binary.Testset.home)
         binary.Testset.install)
      ~binary_path:binary.Testset.home_path
  in
  let extended =
    match bundle with
    | Error e -> Error e
    | Ok bundle ->
      Phases.target_phase config target base_env ~bundle
        ~binary_path:staged_path ()
  in
  let extended_ready, extended_reasons, staged =
    match extended with
    | Ok report -> (
      let p = Report.prediction report in
      match p.Predict.verdict with
      | Predict.Ready plan ->
        (true, [], List.map fst plan.Predict.staged_copies)
      | Predict.Not_ready reasons ->
        let staged =
          match p.Predict.determinants.Predict.libs with
          | Some l -> l.Predict.resolved_by_copies
          | None -> []
        in
        (false, reasons, staged))
    | Error e -> (false, [ e ], [])
  in
  cleanup target;
  {
    Snapshot.cl_binary = binary.Testset.id;
    cl_target = Site.name target;
    cl_basic = basic_ready;
    cl_basic_reasons = basic_reasons;
    cl_extended = extended_ready;
    cl_extended_reasons = extended_reasons;
    cl_staged = staged;
  }

let cell_of_migration (m : Migrate.migration) =
  {
    Snapshot.cl_binary = m.Migrate.binary.Testset.id;
    cl_target = m.Migrate.target_name;
    cl_basic = m.Migrate.basic_ready;
    cl_basic_reasons = m.Migrate.basic_reasons;
    cl_extended = m.Migrate.extended_ready;
    cl_extended_reasons = m.Migrate.extended_reasons;
    cl_staged = m.Migrate.staged_copies;
  }

(* Depot possession per target site, derived from ready cells: the
   bundle objects (by content address) their plans staged there. *)
let derive_possession binaries cells =
  let bundle_digest =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (b : Snapshot.binary_state) ->
        List.iter
          (fun (name, d) -> Hashtbl.replace tbl (b.Snapshot.bs_id, name) d)
          b.Snapshot.bs_bundle)
      binaries;
    fun id name -> Hashtbl.find_opt tbl (id, "copy:" ^ name)
  in
  List.filter (fun (c : Snapshot.cell) -> c.Snapshot.cl_extended) cells
  |> List.concat_map (fun (c : Snapshot.cell) ->
         List.filter_map
           (fun name ->
             Option.map
               (fun d -> (c.Snapshot.cl_target, d))
               (bundle_digest c.Snapshot.cl_binary name))
           c.Snapshot.cl_staged)
  |> List.sort_uniq compare
  |> List.fold_left
       (fun acc (site, d) ->
         match acc with
         | (s, ds) :: rest when s = site -> (s, d :: ds) :: rest
         | acc -> (site, [ d ]) :: acc)
       []
  |> List.map (fun (s, ds) -> (s, List.rev ds))
  |> List.rev

(* Capture a whole world as an epoch snapshot around an already-computed
   verdict table.  Top-level (not a closure inside [run]) so tests and
   benches snapshot the same way the sequence does. *)
let snapshot_of_world ~epoch ~seed ~label sites binaries ~cells =
  let site_states = List.map capture_site sites in
  let binary_states = List.map capture_binary binaries in
  Snapshot.normalize
    {
      Snapshot.epoch;
      seed;
      label;
      sites = site_states;
      binaries = binary_states;
      possession = derive_possession binary_states cells;
      cells;
    }

(* -- the sequence ------------------------------------------------------ *)

type epoch_result = {
  er_snapshot : Snapshot.t;
  er_label : string;
  er_plan : Invalidate.plan option; (* None at the baseline epoch *)
  er_flips : Invalidate.flip list;
  er_entry : Timeline.entry;
}

type t = {
  dr_seed : int;
  dr_epochs : epoch_result list;
  dr_cells_total : int;
  dr_cells_reevaluated : int; (* post-baseline incremental work *)
  dr_cells_full : int; (* what full re-evaluation would have cost *)
  dr_crosscheck : (unit, string) result;
}

let entry_of_epoch ~label ~reevaluated ~plan ~flips snapshot =
  {
    Timeline.te_epoch = snapshot.Snapshot.epoch;
    te_hash = Snapshot.hash snapshot;
    te_label = label;
    te_cells_total = List.length snapshot.Snapshot.cells;
    te_ready = Snapshot.ready_cells snapshot;
    te_rate = Snapshot.readiness_rate snapshot;
    te_reevaluated = reevaluated;
    te_flips =
      List.map
        (fun (f : Invalidate.flip) ->
          {
            Timeline.fe_cell = Invalidate.cell_id_key f.Invalidate.fp_cell;
            fe_before = f.Invalidate.fp_before;
            fe_after = f.Invalidate.fp_after;
          })
        flips;
    te_attribution =
      (match plan with
      | None -> []
      | Some plan ->
        List.map
          (fun (at : Invalidate.attribution) ->
            let ch = at.Invalidate.at_change in
            {
              Timeline.ae_atom =
                Snapshot.owner_to_string ch.Invalidate.ch_owner
                ^ " " ^ ch.Invalidate.ch_path;
              ae_cells = List.length ch.Invalidate.ch_cells;
              ae_to_ready = at.Invalidate.at_to_ready;
              ae_to_not_ready = at.Invalidate.at_to_not_ready;
            })
          (Invalidate.attribute plan flips));
  }

(* Serialize just the verdict table, for byte-level comparison between
   the incremental result and a full re-evaluation. *)
let cells_doc ~epoch ~seed cells =
  Snapshot.to_jsonl
    {
      Snapshot.epoch;
      seed;
      label = "";
      sites = [];
      binaries = [];
      possession = [];
      cells;
    }

let run ?(specs = Sites.specs) ?(benchmarks = Feam_suites.Npb.all @ Feam_suites.Specmpi.all)
    ?(progress = fun _ -> ()) ~seed ~epochs () =
  let params = { Params.default with Params.seed } in
  Feam_core.Bdc.set_describe_memo ();
  Fun.protect ~finally:Feam_core.Bdc.clear_describe_memo @@ fun () ->
  (* Candidate removals come from the pristine epoch-0 world. *)
  let sites0, binaries0 = build_world params specs benchmarks [] in
  let candidates = removal_candidates sites0 in
  let site_names = List.map Site.name sites0 in
  let snapshot_of ~epoch ~label ~sites ~binaries ~cells =
    snapshot_of_world ~epoch ~seed ~label sites binaries ~cells
  in
  (* Baseline: evaluate every cell once. *)
  let cells0 =
    List.map (fun (b, t) -> predict_cell b t) (all_cells sites0 binaries0)
  in
  let base_snapshot =
    snapshot_of ~epoch:0 ~label:"" ~sites:sites0 ~binaries:binaries0
      ~cells:cells0
  in
  Invalidate.record_epoch_gauges base_snapshot;
  let base_entry =
    entry_of_epoch ~label:"" ~reevaluated:(List.length cells0) ~plan:None
      ~flips:[] base_snapshot
  in
  progress
    (Printf.sprintf "epoch 0: baseline, %d cells evaluated" (List.length cells0));
  let cells_total = List.length cells0 in
  let rec go k active prev acc reeval =
    if k > epochs then (List.rev acc, reeval)
    else begin
      let p = draw ~seed ~epoch:k ~site_names ~candidates in
      let active, label = toggle active p in
      let sites, binaries = build_world params specs benchmarks active in
      (* Capture the new epoch's evidence with the previous verdicts
         still in place, diff, then re-evaluate only the plan. *)
      let candidate =
        snapshot_of ~epoch:k ~label ~sites ~binaries
          ~cells:prev.er_snapshot.Snapshot.cells
      in
      let plan = Invalidate.affected prev.er_snapshot candidate in
      let reevaluated =
        List.map
          (fun (c : Invalidate.cell_id) ->
            let binary =
              List.find
                (fun (b : Testset.binary) ->
                  b.Testset.id = c.Invalidate.ci_binary)
                binaries
            in
            predict_cell binary (Sites.find_by_name sites c.Invalidate.ci_target))
          plan.Invalidate.pl_affected
      in
      let cells =
        Invalidate.merge ~base:prev.er_snapshot.Snapshot.cells ~reevaluated
      in
      let flips = Invalidate.flips ~before:prev.er_snapshot.Snapshot.cells ~after:cells in
      let snapshot =
        Snapshot.normalize
          {
            candidate with
            Snapshot.cells;
            possession = derive_possession candidate.Snapshot.binaries cells;
          }
      in
      Invalidate.record_metrics plan;
      Invalidate.record_epoch_gauges snapshot;
      let entry =
        entry_of_epoch ~label
          ~reevaluated:(List.length plan.Invalidate.pl_affected)
          ~plan:(Some plan) ~flips snapshot
      in
      progress
        (Printf.sprintf "epoch %d: %s — %d/%d cells re-evaluated, %d flip%s" k
           label
           (List.length plan.Invalidate.pl_affected)
           cells_total (List.length flips)
           (if List.length flips = 1 then "" else "s"));
      let er =
        { er_snapshot = snapshot; er_label = label; er_plan = Some plan;
          er_flips = flips; er_entry = entry }
      in
      go (k + 1) active er (er :: acc)
        (reeval + List.length plan.Invalidate.pl_affected)
    end
  in
  let base =
    { er_snapshot = base_snapshot; er_label = ""; er_plan = None; er_flips = [];
      er_entry = base_entry }
  in
  let later, reeval = go 1 [] base [] 0 in
  let epochs_list = base :: later in
  (* Cross-check: a full prediction pass over the final world must agree
     byte-for-byte with the incrementally maintained verdict table. *)
  let final = List.nth epochs_list (List.length epochs_list - 1) in
  let crosscheck =
    let full =
      List.map
        (fun (b, t) -> predict_cell b t)
        (let active =
           (* replay the toggles to recover the final active set *)
           let rec replay k active =
             if k > epochs then active
             else
               let p = draw ~seed ~epoch:k ~site_names ~candidates in
               replay (k + 1) (fst (toggle active p))
           in
           replay 1 []
         in
         let sites, binaries = build_world params specs benchmarks active in
         all_cells sites binaries)
    in
    let a =
      cells_doc ~epoch:final.er_snapshot.Snapshot.epoch ~seed
        final.er_snapshot.Snapshot.cells
    in
    let b = cells_doc ~epoch:final.er_snapshot.Snapshot.epoch ~seed full in
    if String.equal a b then Ok ()
    else
      Error
        (Printf.sprintf
           "incremental verdicts diverge from full re-evaluation at epoch %d"
           final.er_snapshot.Snapshot.epoch)
  in
  {
    dr_seed = seed;
    dr_epochs = epochs_list;
    dr_cells_total = cells_total;
    dr_cells_reevaluated = reeval;
    dr_cells_full = cells_total * epochs;
    dr_crosscheck = crosscheck;
  }

let timeline t = List.map (fun er -> er.er_entry) t.dr_epochs

let snapshots t = List.map (fun er -> er.er_snapshot) t.dr_epochs

(* A reduced world — the last two Table II sites (india and fir share a
   glibc and overlapping MPI stacks, so the matrix has cells in both
   directions) over two NPB kernels.  Tests, benches, and quick CLI
   runs share it so their sequences stay comparable. *)
let small_specs () =
  let n = List.length Sites.specs in
  List.filteri (fun i _ -> i >= n - 2) Sites.specs

let small_benchmarks () = List.filteri (fun i _ -> i < 2) Feam_suites.Npb.all
