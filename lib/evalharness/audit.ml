(* Fleet-view construction for `feam audit`.  The per-cell pipeline
   answers "can this binary move to that site"; the fleet rules need the
   questions only the whole matrix can answer — which sites skew, which
   binaries are stranded, which stored bytes are dead weight.  This
   module reduces the corpus to the sorted, content-addressed Fleet.t
   those rules check. *)

open Feam_sysmodel
module Fleet = Feam_analysis.Fleet
module Factbase = Feam_analysis.Factbase
module Store = Feam_depot.Store
module Planner = Feam_depot.Planner
module Manifest = Feam_core.Bundle_manifest

let site_of site =
  {
    Fleet.site_name = Site.name site;
    site_machine = Site.machine site;
    site_glibc = Site.glibc site;
    site_stacks =
      Site.stack_installs site
      |> List.map (fun i ->
             Feam_mpi.Impl.slug
               (Feam_mpi.Stack.impl (Feam_sysmodel.Stack_install.stack i)))
      |> List.sort_uniq compare;
  }

let binary_of (b : Testset.binary) =
  {
    Fleet.bin_id = b.Testset.id;
    bin_home = Site.name b.Testset.home;
    bin_impl =
      Some
        (Feam_mpi.Impl.slug
           (Feam_mpi.Stack.impl
              (Feam_sysmodel.Stack_install.stack b.Testset.install)));
    bin_facts = Factbase.facts_of_bytes b.Testset.bytes;
  }

let cell_of (m : Migrate.migration) =
  {
    Fleet.cell_binary = m.Migrate.binary.Testset.id;
    cell_home = Site.name m.Migrate.binary.Testset.home;
    cell_target = m.Migrate.target_name;
    cell_basic = m.Migrate.basic_ready;
    cell_extended = m.Migrate.extended_ready;
  }

let build ?clock sites binaries migrations =
  let config = Feam_core.Config.default in
  let store = Store.create () in
  let possession = Planner.Possession.create () in
  let referenced : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  (* only migrations predicted ready actually ship bytes: an object
     planned solely for not-ready cells stays unreferenced (the depot's
     dead weight) *)
  let ready : (string * string, bool) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (m : Migrate.migration) ->
      Hashtbl.replace ready
        (m.Migrate.binary.Testset.id, m.Migrate.target_name)
        m.Migrate.extended_ready)
    migrations;
  let is_ready binary_id target =
    Option.value (Hashtbl.find_opt ready (binary_id, target)) ~default:false
  in
  (* (name, site, key) -> observation, for dedup *)
  let observed : (string * string * string, Fleet.library) Hashtbl.t =
    Hashtbl.create 256
  in
  Feam_core.Bdc.set_describe_memo ();
  Fun.protect ~finally:Feam_core.Bdc.clear_describe_memo @@ fun () ->
  Feam_obs.Trace.with_span "audit.build" @@ fun () ->
  List.iter
    (fun (binary : Testset.binary) ->
      let bundle =
        Feam_core.Phases.source_phase ?clock config binary.Testset.home
          (Modules_tool.load_stack
             (Site.base_env binary.Testset.home)
             binary.Testset.install)
          ~binary_path:binary.Testset.home_path
      in
      match bundle with
      | Error _ -> ()
      | Ok bundle ->
        let home = Site.name binary.Testset.home in
        List.iter
          (fun (c : Feam_core.Bdc.library_copy) ->
            let facts = Factbase.facts_of_bytes c.Feam_core.Bdc.copy_bytes in
            let key =
              ( c.Feam_core.Bdc.copy_request,
                home,
                Feam_depot.Chash.to_hex facts.Factbase.fb_key )
            in
            if not (Hashtbl.mem observed key) then
              Hashtbl.add observed key
                {
                  Fleet.lib_name = c.Feam_core.Bdc.copy_request;
                  lib_site = home;
                  lib_facts = facts;
                })
          bundle.Feam_core.Bundle.copies;
        let manifest = Manifest.of_bundle store bundle in
        let wants = Manifest.wants manifest in
        sites
        |> List.filter (fun target ->
               Site.name target <> home
               && Migrate.has_matching_impl binary target
               && is_ready binary.Testset.id (Site.name target))
        |> List.iter (fun target ->
               let site = Site.name target in
               let plan =
                 Planner.compute ~site
                   ~possessed:(Planner.Possession.mem possession ~site)
                   wants
               in
               Planner.Possession.commit possession plan;
               List.iter
                 (fun (it : Planner.item) ->
                   Hashtbl.replace referenced
                     (Feam_depot.Chash.to_hex it.Planner.it_key)
                     ())
                 plan.Planner.items))
    binaries;
  let libraries =
    Hashtbl.fold (fun _ l acc -> l :: acc) observed []
    |> List.sort (fun (a : Fleet.library) (b : Fleet.library) ->
           compare
             ( a.Fleet.lib_name,
               a.Fleet.lib_site,
               Feam_depot.Chash.to_hex a.Fleet.lib_facts.Factbase.fb_key )
             ( b.Fleet.lib_name,
               b.Fleet.lib_site,
               Feam_depot.Chash.to_hex b.Fleet.lib_facts.Factbase.fb_key ))
  in
  let store_objects =
    Store.entries store
    |> List.map (fun (e : Store.entry) ->
           {
             Fleet.sto_key = e.Store.e_key;
             sto_soname = e.Store.e_meta.Store.m_soname;
             sto_size = e.Store.e_meta.Store.m_size;
             sto_referenced =
               Hashtbl.mem referenced (Feam_depot.Chash.to_hex e.Store.e_key);
           })
  in
  {
    Fleet.sites =
      List.map site_of sites
      |> List.sort (fun (a : Fleet.site) b ->
             compare a.Fleet.site_name b.Fleet.site_name);
    binaries =
      List.map binary_of binaries
      |> List.sort (fun (a : Fleet.binary) b ->
             compare a.Fleet.bin_id b.Fleet.bin_id);
    libraries;
    cells =
      List.map cell_of migrations
      |> List.sort (fun (a : Fleet.cell) b ->
             compare
               (a.Fleet.cell_binary, a.Fleet.cell_target)
               (b.Fleet.cell_binary, b.Fleet.cell_target));
    store = store_objects;
  }

let of_seed ?(on_progress = fun _ -> ()) ~seed () =
  let params = { Params.default with Params.seed } in
  on_progress "Provisioning the five Table II sites...";
  let sites = Sites.build_all params in
  on_progress "Compiling benchmark corpus (NPB 2.4 + SPEC MPI2007)...";
  let benchmarks = Feam_suites.Npb.all @ Feam_suites.Specmpi.all in
  let binaries = Testset.build params sites benchmarks in
  on_progress "Running migrations...";
  let migrations = Migrate.run_all params sites binaries in
  on_progress "Building the fleet view...";
  build sites binaries migrations
