(* Phase timing and bundle-size measurement (paper §VI.C: both FEAM
   phases always completed in under five minutes, and a per-site bundle
   of shared-library copies averaged about 45 MB).

   The measurement itself is a thin wrapper over the observability
   layer: each phase runs under an `eval.*` span via
   {!Feam_obs.with_sim_phase}, which also feeds the shared
   eval.phase_s{phase=...} histograms that
   {!phase_breakdown_table} and the sweep report read back. *)

open Feam_util
open Feam_sysmodel

type phase_timing = {
  binary_id : string;
  target : string;
  source_seconds : float;
  target_seconds : float;
}

let phase_metric = "eval.phase_s"

(* Time FEAM's phases for one migration, on simulated wall clocks. *)
let time_migration binary target =
  Feam_obs.Trace.with_span "eval.migration"
    ~attrs:
      [
        ("binary", Feam_obs.Span.Str binary.Testset.id);
        ("target", Feam_obs.Span.Str (Site.name target));
      ]
  @@ fun () ->
  let config = Feam_core.Config.default in
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  let source_clock = Sim_clock.create () in
  let home_env =
    Modules_tool.load_stack
      (Site.base_env binary.Testset.home)
      binary.Testset.install
  in
  let bundle =
    Feam_obs.with_sim_phase ~name:"eval.source_phase" ~metric:phase_metric
      ~phase:"source" source_clock
    @@ fun () ->
    Feam_core.Phases.source_phase ~clock:source_clock config
      binary.Testset.home home_env ~binary_path:binary.Testset.home_path
  in
  let target_clock = Sim_clock.create () in
  Feam_obs.with_sim_phase ~name:"eval.target_phase" ~metric:phase_metric
    ~phase:"target" target_clock
  @@ fun () ->
  (match bundle with
  | Ok bundle ->
    ignore
      (Feam_core.Phases.target_phase ~clock:target_clock config target
         (Site.base_env target) ~bundle ())
  | Error _ -> ());
  Vfs.remove_tree (Site.vfs target) "/tmp/feam";
  {
    binary_id = binary.Testset.id;
    target = Site.name target;
    source_seconds = Sim_clock.elapsed source_clock;
    target_seconds = Sim_clock.elapsed target_clock;
  }

(* Time a sample of migrations: one binary per home site to every other
   matching site. *)
let sample_timings sites binaries =
  let sample =
    (* first binary homed at each site *)
    List.filter_map
      (fun site ->
        List.find_opt
          (fun b -> Site.name b.Testset.home = Site.name site)
          binaries)
      sites
  in
  List.concat_map
    (fun binary ->
      sites
      |> List.filter (fun t ->
             Site.name t <> Site.name binary.Testset.home
             && Migrate.has_matching_impl binary t)
      |> List.map (fun t -> time_migration binary t))
    sample

(* Per-phase breakdown, read back from the observability registry: one
   row per phase the harness timed since the last reset, with the count
   of runs over the paper's five-minute budget as its own column. *)
let phase_breakdown_table () =
  let row phase =
    match
      Feam_obs.Metrics.histogram_value phase_metric
        ~labels:[ ("phase", phase) ]
    with
    | None -> [ phase; "0"; "-"; "-"; "0" ]
    | Some h ->
      let over_300s =
        (* the overflow bucket of sim_seconds_bounds ends at 300 s *)
        h.Feam_obs.Metrics.counts.(Array.length h.Feam_obs.Metrics.counts - 1)
      in
      [
        phase;
        string_of_int h.Feam_obs.Metrics.count;
        Printf.sprintf "%.1f" (Feam_obs.Metrics.hist_mean h);
        Printf.sprintf "%.1f" h.Feam_obs.Metrics.sum;
        string_of_int over_300s;
      ]
  in
  Table.make ~title:"FEAM phase breakdown (simulated seconds, via feam.obs)"
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Phase"; "Runs"; "Mean s"; "Total s"; "> 5 min" ]
    [ row "source"; row "target" ]

let max_seconds timings =
  List.fold_left
    (fun acc t -> Float.max acc (Float.max t.source_seconds t.target_seconds))
    0.0 timings

(* Per-site bundle sizes: the source-phase bundles of every test binary
   homed at a site, merged (distinct library copies counted once) — the
   quantity the paper reports averaging ~45 MB. *)
let site_bundle_bytes binaries site =
  let config = Feam_core.Config.default in
  let bundles =
    binaries
    |> List.filter (fun b -> Site.name b.Testset.home = Site.name site)
    |> List.filter_map (fun b ->
           let env =
             Modules_tool.load_stack (Site.base_env site) b.Testset.install
           in
           match
             Feam_core.Phases.source_phase config site env
               ~binary_path:b.Testset.home_path
           with
           | Ok bundle -> Some bundle
           | Error _ -> None)
  in
  Feam_core.Bundle.merged_library_bytes bundles

let bundle_report sites binaries =
  List.map
    (fun site ->
      (Site.name site, site_bundle_bytes binaries site))
    sites

let mb bytes = float_of_int bytes /. (1024.0 *. 1024.0)
