(* Validation of the soname-major heuristic against the symbol closure.

   For every migration pair the harness re-runs the library-level
   resolution (the determinant behind the paper's readiness verdict) at
   the target with the user's matching stack, then walks the same
   closure with {!Feam_symcheck.Symcheck}.  A pair where the
   library-level check accepts but the symbol walk finds a definitive
   strong miss is an *overturn*: the soname-major acceptance was
   unsound for that closure.  The overturn rate is the headline number
   quantifying how often the heuristic over-promises. *)

open Feam_sysmodel

type t = {
  migrations : int;  (** pairs examined (matching MPI impl, other site) *)
  lib_accepted : int;  (** the library-level determinant accepts *)
  overturned : int;  (** accepted, yet the symbol closure refutes *)
  miss_symbols : int;  (** definitive strong misses across overturned pairs *)
}

let empty = { migrations = 0; lib_accepted = 0; overturned = 0; miss_symbols = 0 }

(* One pair: resolve at the target under the user's stack choice and
   diff the closure's exports against its imports.  The binary itself
   is examined from its bytes — resolution only needs the spec, so no
   staging into the target's file system is required. *)
let examine binary target =
  match Migrate.user_stack_choice binary target with
  | None -> None
  | Some install -> (
    match Feam_analysis.Factbase.spec_of_bytes binary.Testset.bytes with
    | Error _ -> None
    | Ok spec ->
      let env = Modules_tool.load_stack (Site.base_env target) install in
      let r = Feam_dynlinker.Resolve.run target env spec in
      let sc = Feam_symcheck.Symcheck.of_resolve r in
      Some (Feam_dynlinker.Resolve.ok r, Feam_symcheck.Symcheck.overturns sc))

let measure sites binaries =
  List.fold_left
    (fun acc (binary : Testset.binary) ->
      List.fold_left
        (fun acc target ->
          if
            Site.name target = Site.name binary.Testset.home
            || not (Migrate.has_matching_impl binary target)
          then acc
          else
            match examine binary target with
            | None -> acc
            | Some (accepted, overturns) ->
              let overturned = accepted && overturns <> [] in
              {
                migrations = acc.migrations + 1;
                lib_accepted = (acc.lib_accepted + if accepted then 1 else 0);
                overturned = (acc.overturned + if overturned then 1 else 0);
                miss_symbols =
                  (acc.miss_symbols
                  + if overturned then List.length overturns else 0);
              })
        acc sites)
    empty binaries

let of_suite suite sites binaries =
  measure sites
    (List.filter
       (fun (b : Testset.binary) ->
         b.Testset.benchmark.Feam_suites.Benchmark.suite = suite)
       binaries)

let acceptance_rate t =
  if t.migrations = 0 then 0.0
  else float_of_int t.lib_accepted /. float_of_int t.migrations

(* Share of library-level acceptances the symbol closure refutes. *)
let overturn_rate t =
  if t.lib_accepted = 0 then 0.0
  else float_of_int t.overturned /. float_of_int t.lib_accepted
