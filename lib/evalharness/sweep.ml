(* Seed sweep: rerun the full evaluation over several seeds and
   aggregate each headline metric.  The shape claims must hold across
   re-drawn stochastic worlds, not just at the calibrated default. *)

open Feam_suites

type metrics = (string * float) list

(* The headline metrics of one evaluation run, as percentages. *)
let measure migrations : metrics =
  let acc mode suite = 100.0 *. Accuracy.suite_accuracy mode suite migrations in
  let res suite = Resolution_impact.of_suite suite migrations in
  let nas = res Benchmark.Nas and spec = res Benchmark.Spec_mpi2007 in
  [
    ("basic NAS", acc Accuracy.Basic Benchmark.Nas);
    ("basic SPEC", acc Accuracy.Basic Benchmark.Spec_mpi2007);
    ("extended NAS", acc Accuracy.Extended Benchmark.Nas);
    ("extended SPEC", acc Accuracy.Extended Benchmark.Spec_mpi2007);
    ("before NAS", 100.0 *. Resolution_impact.rate_before nas);
    ("before SPEC", 100.0 *. Resolution_impact.rate_before spec);
    ("after NAS", 100.0 *. Resolution_impact.rate_after nas);
    ("after SPEC", 100.0 *. Resolution_impact.rate_after spec);
    ("increase NAS", 100.0 *. Resolution_impact.relative_increase nas);
    ("increase SPEC", 100.0 *. Resolution_impact.relative_increase spec);
  ]

(* The paper's values for the same metrics. *)
let paper_values =
  [
    ("basic NAS", 94.0); ("basic SPEC", 92.0); ("extended NAS", 99.0);
    ("extended SPEC", 93.0); ("before NAS", 58.0); ("before SPEC", 47.0);
    ("after NAS", 78.0); ("after SPEC", 66.0); ("increase NAS", 33.0);
    ("increase SPEC", 39.0);
  ]

(* One full evaluation at a seed, under an eval.sweep_seed span with
   the headline metrics gauged into the observability registry — the
   per-scenario breakdown the ad-hoc progress callbacks used to be the
   only window into. *)
let run_once ?on_progress seed =
  Feam_obs.Trace.with_span "eval.sweep_seed"
    ~attrs:[ ("seed", Feam_obs.Span.Int seed) ]
  @@ fun () ->
  let params = { Params.default with Params.seed } in
  let sites =
    Feam_obs.Trace.with_span "eval.build_sites" (fun () ->
        Sites.build_all params)
  in
  let benchmarks = Npb.all @ Specmpi.all in
  let binaries =
    Feam_obs.Trace.with_span "eval.build_testset" (fun () ->
        Testset.build params sites benchmarks)
  in
  let migrations =
    Feam_obs.Trace.with_span "eval.migrate_all" (fun () ->
        Migrate.run_all params sites binaries)
  in
  Feam_obs.Metrics.incr "sweep.seeds_run";
  (match on_progress with Some f -> f seed | None -> ());
  let metrics = measure migrations in
  List.iter
    (fun (name, value) ->
      Feam_obs.Metrics.observe
        ~labels:[ ("metric", name) ]
        ~bounds:[| 20.0; 40.0; 60.0; 80.0; 100.0 |]
        "sweep.headline_pct" value)
    metrics;
  metrics

type aggregate = {
  metric : string;
  paper : float;
  mean : float;
  minimum : float;
  maximum : float;
}

(* Sweep [n] consecutive seeds starting at the default. *)
let run ?on_progress ?(first_seed = Params.default.Params.seed) n : aggregate list =
  let seeds = List.init n (fun i -> first_seed + i) in
  let all = List.map (run_once ?on_progress) seeds in
  List.map
    (fun (metric, paper) ->
      let values = List.map (fun m -> List.assoc metric m) all in
      let count = float_of_int (List.length values) in
      {
        metric;
        paper;
        mean = List.fold_left ( +. ) 0.0 values /. count;
        minimum = List.fold_left Float.min infinity values;
        maximum = List.fold_left Float.max neg_infinity values;
      })
    paper_values

let table ~seeds aggregates =
  Feam_util.Table.make
    ~title:(Printf.sprintf "Seed sweep over %d seed(s)" seeds)
    ~aligns:
      [ Feam_util.Table.Left; Feam_util.Table.Right; Feam_util.Table.Right;
        Feam_util.Table.Right ]
    ~header:[ "Metric"; "Paper"; "Mean"; "Range" ]
    (List.map
       (fun a ->
         [
           a.metric;
           Printf.sprintf "%.0f%%" a.paper;
           Printf.sprintf "%.1f%%" a.mean;
           Printf.sprintf "[%.0f%%, %.0f%%]" a.minimum a.maximum;
         ])
       aggregates)
