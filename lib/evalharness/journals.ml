(* Per-cell flight-recorder journals for the migration matrix
   (paper §VI.B): one journal file per (binary, target site) cell, each
   self-contained — it carries the config/description/discovery
   payloads and every determinant decision of that cell's extended
   target phase, so any single cell can be replayed or diffed against
   a later sweep without the rest of the matrix.

   The file writer is injected so the harness stays free of host
   filesystem knowledge (evaltool writes real files; tests capture). *)

open Feam_sysmodel
module Recorder = Feam_flightrec.Recorder

let migrated_dir = "/home/user/migrated"

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
      | _ -> '-')
    s

let cell_name binary target =
  Printf.sprintf "%s__to__%s.journal" (sanitize binary.Testset.id)
    (sanitize (Site.name target))

(* Journal one cell: the extended prediction (source-phase bundle, then
   the journaled target phase) of [binary] at [target]. *)
let journal_cell ?clock ~write binary target =
  let config = Feam_core.Config.default in
  let base_env = Site.base_env target in
  let vfs = Site.vfs target in
  Vfs.remove_tree vfs "/tmp/feam";
  Vfs.remove_tree vfs migrated_dir;
  let staged_path = migrated_dir ^ "/" ^ Vfs.basename binary.Testset.home_path in
  Vfs.add ~declared_size:binary.Testset.declared_size vfs staged_path
    (Vfs.Elf binary.Testset.bytes);
  (* The source phase runs before the recorder is armed: the cell's
     journal covers the target phase, which re-journals everything
     replay needs (payloads included). *)
  let bundle =
    Feam_core.Phases.source_phase ?clock config binary.Testset.home
      (Modules_tool.load_stack
         (Site.base_env binary.Testset.home)
         binary.Testset.install)
      ~binary_path:binary.Testset.home_path
  in
  let name = cell_name binary target in
  Recorder.configure ~tool:"evaltool" ~emit:(fun body -> write ~name body) ();
  (match bundle with
  | Ok bundle ->
    ignore
      (Feam_core.Phases.target_phase ?clock config target base_env ~bundle
         ~binary_path:staged_path ()
        : (Feam_core.Report.t, string) result)
  | Error _ ->
    (* No bundle: journal the basic prediction instead. *)
    ignore
      (Feam_core.Phases.target_phase ?clock config target base_env
         ~binary_path:staged_path ()
        : (Feam_core.Report.t, string) result));
  Recorder.flush ();
  Recorder.disable ();
  Vfs.remove_tree vfs "/tmp/feam";
  Vfs.remove_tree vfs migrated_dir;
  name

(* Journal every cell of the migration matrix: each binary at every
   other site with a matching MPI implementation (the reported cells,
   as in the paper).  Returns the journal names written. *)
let write_cells ?clock ~write sites binaries =
  List.concat_map
    (fun binary ->
      sites
      |> List.filter (fun target ->
             Site.name target <> Site.name binary.Testset.home
             && Migrate.has_matching_impl binary target)
      |> List.map (fun target -> journal_cell ?clock ~write binary target))
    binaries
