(** Renders the paper's tables from evaluation results. *)

(** Table I plus a note with the identification scheme's measured
    accuracy over the corpus (§VI.B reports 100 %). *)
val table1 : Testset.binary list -> Feam_util.Table.t * string

(** Table II: the site inventory actually provisioned. *)
val table2 : Feam_sysmodel.Site.t list -> Feam_util.Table.t

(** Table III: basic/extended prediction accuracy per suite. *)
val table3 : Migrate.migration list -> Feam_util.Table.t

(** Table IV: resolution impact per suite. *)
val table4 : Migrate.migration list -> Feam_util.Table.t

(** Soname-major acceptances vs. symbol-closure overturns per suite:
    how often the library-level heuristic over-promises. *)
val symbol_impact :
  Feam_sysmodel.Site.t list -> Testset.binary list -> Feam_util.Table.t

(** Prediction accuracy of both modes per target site. *)
val accuracy_by_site : Migrate.migration list -> Feam_util.Table.t

(** Failure-cause breakdown before resolution (§VI.C analysis). *)
val failure_breakdown : Migrate.migration list -> Feam_util.Table.t
