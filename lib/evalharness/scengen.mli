(** Seeded scenario generator: the fuzzing front-end of the differential
    predictor-agreement harness (ROADMAP item 5).

    A scenario is one binary × site configuration: a home site where the
    binary is compiled, a target site it migrates to, and a drawn set of
    {e perturbations} — library version skews within and across majors,
    stripped [.comment]/version sections, symbol drops hidden behind
    stable sonames, rpath/runpath tricks, partial module databases,
    LD_LIBRARY_PATH interposition, missing bundle objects.

    Generation is fully deterministic and {e splittable}: every scenario
    is a pure function of [(seed, index, keep)], where [keep] selects
    which of the drawn perturbations are actually applied.  Parameter
    draws always happen (from per-coordinate keyed streams), whether or
    not a perturbation is kept — so undoing one perturbation never
    shifts another, which is what lets the disagreement minimizer shrink
    a scenario by toggling [keep] bits. *)

(** One drawn perturbation.  The payload names the library whose image,
    search path or bundle copy is being tampered with. *)
type perturbation =
  | Cross_isa  (** target is a different architecture (PPC64) *)
  | Glibc_downgrade  (** target forced to the oldest distro profile *)
  | Drop_stack  (** target offers no MPI stack of the binary's type *)
  | Unregistered_stack
      (** stack installed but absent from the module database *)
  | Misconfigured_stack  (** stack advertised but broken *)
  | Stale_ld_cache  (** ld.so.conf edited, ldconfig never re-run *)
  | Remove_lib of string  (** library deleted from the target *)
  | Major_skew of string  (** target only carries the next soname major *)
  | Vintage_downgrade of string
      (** target build drops its newest feature symbol, same soname *)
  | Foreign_lib of string
      (** target's copy was taken from a newer-glibc system: its version
          needs exceed what the target's C library defines *)
  | Ld_path_interpose of string
      (** LD_LIBRARY_PATH interposes a stale build of the library *)
  | Rpath_decoy of string
      (** binary DT_RPATH points at a decoy dir with a wrong-arch build *)
  | Runpath_ghost  (** binary DT_RUNPATH names a directory that is gone *)
  | Strip_comments  (** binary .comment section stripped *)
  | Strip_verneed  (** binary .gnu.version_r stripped *)
  | Drop_bundle_copy of string
      (** the source phase's bundle loses this library's copy *)
  | Remove_interp  (** the dynamic loader is absent at the target *)

val perturbation_to_string : perturbation -> string

val perturbation_of_string : string -> perturbation option

(** A generated scenario, built and ready to run predictors over. *)
type t = {
  sc_seed : int;
  sc_index : int;
  sc_all : perturbation list;  (** full drawn list, canonical order *)
  sc_keep : int list;  (** indices into [sc_all] that were applied *)
  sc_home : Feam_sysmodel.Site.t;
  sc_target : Feam_sysmodel.Site.t;
  sc_home_install : Feam_sysmodel.Stack_install.t option;
      (** the stack the binary was built with; [None] for serial *)
  sc_target_install : Feam_sysmodel.Stack_install.t option;
      (** the matching stack at the target, when one is installed *)
  sc_program : Feam_toolchain.Compile.program;
  sc_binary_path : string;  (** the compiled binary's path at home *)
  sc_binary_bytes : string;  (** its image after binary perturbations *)
  sc_extra_ld_dirs : string list;
      (** directories the target session's LD_LIBRARY_PATH carries *)
}

(** "seed/index" — the scenario's stable identity. *)
val id : t -> string

(** Perturbations actually applied ([sc_all] filtered by [sc_keep]). *)
val applied : t -> perturbation list

(** Build scenario [index] of stream [seed].  [keep] (default: all)
    selects which drawn perturbations to apply, by index into the drawn
    list.  Each build starts from [Build_id.reset], so a scenario built
    standalone is byte-identical to the same scenario built mid-corpus. *)
val build : seed:int -> index:int -> ?keep:int list -> unit -> t

(** Drop the bundle copies a kept [Drop_bundle_copy] names. *)
val bundle_filter : t -> Feam_core.Bundle.t -> Feam_core.Bundle.t

(** One-line summary: id, program kind, applied perturbations. *)
val describe : t -> string
