(** Phase timing and bundle-size measurement (paper §VI.C: both FEAM
    phases always under five minutes; per-site library bundles averaged
    about 45 MB). *)

type phase_timing = {
  binary_id : string;
  target : string;
  source_seconds : float;
  target_seconds : float;
}

(** Time FEAM's phases for one migration on simulated clocks. *)
val time_migration : Testset.binary -> Feam_sysmodel.Site.t -> phase_timing

(** One binary per home site, timed to every matching target. *)
val sample_timings :
  Feam_sysmodel.Site.t list -> Testset.binary list -> phase_timing list

val max_seconds : phase_timing list -> float

(** Per-phase breakdown read back from the observability registry's
    eval.phase_s histograms: runs, mean/total simulated seconds, and the
    count of runs over the paper's five-minute budget. *)
val phase_breakdown_table : unit -> Feam_util.Table.t

(** Merged size of the source-phase bundles of every binary homed at a
    site — the quantity the paper reports averaging ~45 MB. *)
val site_bundle_bytes : Testset.binary list -> Feam_sysmodel.Site.t -> int

val bundle_report :
  Feam_sysmodel.Site.t list -> Testset.binary list -> (string * int) list

val mb : int -> float
