(* Renders the paper's tables from evaluation results. *)

open Feam_util
open Feam_suites

let pct f = Printf.sprintf "%.0f%%" (100.0 *. f)

(* -- Table I: identifying libraries of MPI implementations -------------- *)

(* Also verifies the identification scheme over the whole corpus: §VI.B
   reports "Our methods were 100% accurate at assessing whether a
   matching MPI implementation was available" — identification is its
   foundation. *)
let table1 binaries =
  let correct, total =
    List.fold_left
      (fun (correct, total) (b : Testset.binary) ->
        match Feam_analysis.Factbase.spec_of_bytes b.Testset.bytes with
        | Error _ -> (correct, total + 1)
        | Ok spec -> (
          match Feam_core.Mpi_ident.identify spec.Feam_elf.Spec.needed with
          | Some ident
            when Feam_mpi.Impl.equal ident.Feam_core.Mpi_ident.impl
                   (Feam_mpi.Stack.impl
                      (Feam_sysmodel.Stack_install.stack b.Testset.install)) ->
            (correct + 1, total + 1)
          | _ -> (correct, total + 1)))
      (0, 0) binaries
  in
  let rows =
    List.map (fun (impl, deps) -> [ impl; deps ]) Feam_core.Mpi_ident.table_rows
  in
  let table =
    Table.make ~title:"TABLE I. IDENTIFYING LIBRARIES OF MPI IMPLEMENTATIONS"
      ~header:[ "MPI Implementation"; "Library Dependencies" ]
      rows
  in
  ( table,
    Printf.sprintf "identification accuracy over corpus: %s (%d/%d binaries)"
      (Table.percent correct total) correct total )

(* -- Table II: target site characteristics ------------------------------- *)

let table2 sites =
  let rows =
    List.map
      (fun site ->
        let stacks =
          Feam_sysmodel.Site.stack_installs site
          |> List.map (fun i ->
                 Feam_sysmodel.Stack_install.module_name i)
          |> String.concat ", "
        in
        let compilers =
          Feam_sysmodel.Site.compilers site
          |> List.map Feam_mpi.Compiler.to_string
          |> String.concat ", "
        in
        [
          Feam_sysmodel.Site.name site;
          Feam_sysmodel.Distro.name (Feam_sysmodel.Site.distro site);
          Version.to_string (Feam_sysmodel.Site.glibc site);
          compilers;
          stacks;
        ])
      sites
  in
  Table.make ~title:"TABLE II. TARGET SITE CHARACTERISTICS"
    ~header:[ "Computing Site"; "Operating System"; "C Library"; "Compilers"; "Utilized MPI Stacks" ]
    rows

(* -- Table III: accuracy of prediction model ------------------------------ *)

let table3 migrations =
  let acc mode suite = Accuracy.suite_accuracy mode suite migrations in
  Table.make ~title:"TABLE III. ACCURACY OF PREDICTION MODEL"
    ~aligns:[ Table.Left; Table.Right; Table.Right ]
    ~header:[ ""; "NAS"; "SPEC" ]
    [
      [
        "Basic Prediction";
        pct (acc Accuracy.Basic Benchmark.Nas);
        pct (acc Accuracy.Basic Benchmark.Spec_mpi2007);
      ];
      [
        "Extended Prediction";
        pct (acc Accuracy.Extended Benchmark.Nas);
        pct (acc Accuracy.Extended Benchmark.Spec_mpi2007);
      ];
    ]

(* -- Table IV: impact of resolution model --------------------------------- *)

let table4 migrations =
  let nas = Resolution_impact.of_suite Benchmark.Nas migrations in
  let spec = Resolution_impact.of_suite Benchmark.Spec_mpi2007 migrations in
  Table.make ~title:"TABLE IV. IMPACT OF RESOLUTION MODEL"
    ~aligns:[ Table.Left; Table.Right; Table.Right ]
    ~header:[ ""; "NAS"; "SPEC" ]
    [
      [
        "Successes before resolution";
        pct (Resolution_impact.rate_before nas);
        pct (Resolution_impact.rate_before spec);
      ];
      [
        "Successes after resolution";
        pct (Resolution_impact.rate_after nas);
        pct (Resolution_impact.rate_after spec);
      ];
      [
        "Increase due to resolution";
        pct (Resolution_impact.relative_increase nas);
        pct (Resolution_impact.relative_increase spec);
      ];
    ]

(* -- Soname heuristic vs. symbol closure (symcheck validation) ------------ *)

let symbol_impact sites binaries =
  let row label t =
    [
      label;
      string_of_int t.Symbol_impact.migrations;
      pct (Symbol_impact.acceptance_rate t);
      string_of_int t.Symbol_impact.overturned;
      string_of_int t.Symbol_impact.miss_symbols;
      pct (Symbol_impact.overturn_rate t);
    ]
  in
  let nas = Symbol_impact.of_suite Benchmark.Nas sites binaries in
  let spec = Symbol_impact.of_suite Benchmark.Spec_mpi2007 sites binaries in
  Table.make ~title:"Soname-major heuristic vs. symbol closure (symcheck)"
    ~aligns:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:
      [
        "";
        "Migrations";
        "Lib-level accepted";
        "Overturned";
        "Missing symbols";
        "Overturn rate";
      ]
    [ row "NAS" nas; row "SPEC" spec ]

(* -- Accuracy by target site ---------------------------------------------- *)

(* Where do mispredictions happen?  Accuracy of both modes per target
   site — the environment-level view behind Table III's aggregates. *)
let accuracy_by_site migrations =
  let targets =
    List.sort_uniq String.compare
      (List.map (fun (m : Migrate.migration) -> m.Migrate.target_name) migrations)
  in
  let rows =
    List.map
      (fun target ->
        let mine =
          List.filter
            (fun (m : Migrate.migration) -> m.Migrate.target_name = target)
            migrations
        in
        let basic = Accuracy.confusion_of Accuracy.Basic mine in
        let extended = Accuracy.confusion_of Accuracy.Extended mine in
        [
          target;
          string_of_int (List.length mine);
          pct (Accuracy.accuracy basic);
          pct (Accuracy.accuracy extended);
        ])
      targets
  in
  Table.make ~title:"Prediction accuracy by target site"
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Target"; "Migrations"; "Basic"; "Extended" ]
    rows

(* -- Failure-cause breakdown (results analysis, §VI.C) -------------------- *)

let failure_breakdown migrations =
  let hist =
    Accuracy.failure_histogram (fun m -> m.Migrate.actual_before) migrations
  in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 hist in
  let rows =
    List.map
      (fun (cause, n) ->
        [ Accuracy.cause_name cause; string_of_int n; Table.percent n total ])
      hist
  in
  Table.make ~title:"Failure causes before resolution (analysis of §VI.C)"
    ~aligns:[ Table.Left; Table.Right; Table.Right ]
    ~header:[ "Cause"; "Migrations"; "Share" ]
    rows
